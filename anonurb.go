// Package anonurb implements Uniform Reliable Broadcast (URB) for
// anonymous asynchronous message-passing systems with fair lossy
// channels, reproducing Tang, Larrea, Arévalo and Jiménez, "Implementing
// Uniform Reliable Broadcast in Anonymous Distributed Systems with Fair
// Lossy Channels" (IPDPS Workshops 2015).
//
// # What URB gives you
//
// URB_broadcast(m) / URB_deliver(m) with three guarantees, even though
// processes have no identifiers, any of them may crash, and the network
// may lose arbitrarily many messages (as long as it is "fair": a message
// retransmitted forever is eventually received):
//
//   - Validity: a correct broadcaster eventually delivers its own m.
//   - Uniform agreement: if ANY process delivers m — even one that
//     crashes right after — every correct process eventually delivers m.
//   - Uniform integrity: m is delivered at most once, and only if it was
//     broadcast.
//
// # The two algorithms
//
// NewMajority (the paper's Algorithm 1) needs no failure detector but
// assumes a majority of processes never crash; it retransmits forever
// (non-quiescent). NewQuiescent (Algorithm 2) consumes the anonymous
// failure detectors AΘ and AP* (package view: fd.Detector), tolerates any
// number of crashes, and eventually stops sending entirely.
//
// # How to run them
//
// The algorithms are deterministic state machines (Process); you feed
// them received messages and periodic ticks and execute the broadcasts
// and deliveries they return. Three hosts are provided:
//
//   - NewNode: the production surface — one Node per process, each on a
//     pluggable Transport (in-process mesh, real UDP sockets, or either
//     behind a Chaos loss injector), with a context-scoped lifecycle;
//   - SimConfig/NewSimEngine: the deterministic discrete-event simulator
//     used by the experiment suite (internal/sim);
//   - StartCluster: an index-addressed convenience wrapper that runs N
//     nodes on an in-process mesh (internal/liverun) — see examples/.
//
// # Quick start
//
// Byte payloads in, deliveries out; the transport decides what network
// the node lives on:
//
//	const n = 3
//	mesh := anonurb.NewMeshNetwork(anonurb.MeshConfig{
//		N:    n,
//		Link: anonurb.Bernoulli{P: 0.2, D: anonurb.UniformDelay{Min: 1, Max: 5}},
//	})
//	ctx := context.Background()
//	nodes := make([]*anonurb.Node, n)
//	for i := range nodes {
//		proc := anonurb.NewMajority(n, anonurb.NewTagSource(uint64(i+1)), anonurb.Config{})
//		nodes[i] = anonurb.NewNode(proc, mesh.Endpoint(i), anonurb.WithSeed(uint64(i)))
//		defer nodes[i].Stop()
//	}
//	deliveries := nodes[0].Deliveries() // subscribe before Start
//	for _, nd := range nodes {
//		nd.Start(ctx)
//	}
//	nodes[2].Broadcast([]byte("hello, anonymous world"))
//	d := <-deliveries
//	fmt.Printf("node 0 URB-delivered %q\n", d.Body())
//
// Swap mesh.Endpoint(i) for a transport from UDPGroup to run the same
// code over real sockets, or wrap any transport with NewChaosTransport
// to inject simulator loss models into it. See examples/quickstart for
// the complete program (both transports, same node code), DESIGN.md for
// the architecture and EXPERIMENTS.md for the evaluation suite.
package anonurb

import (
	"context"
	"io"
	"time"

	"anonurb/internal/admit"
	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/liverun"
	"anonurb/internal/node"
	"anonurb/internal/obs"
	"anonurb/internal/rb"
	"anonurb/internal/sim"
	"anonurb/internal/store"
	"anonurb/internal/transport"
	"anonurb/internal/urb"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// Core algorithm surface (internal/urb).
type (
	// Process is a URB algorithm instance: a deterministic state machine
	// driven by Receive/Tick/Broadcast.
	Process = urb.Process
	// Step is the output of one state-machine transition.
	Step = urb.Step
	// Delivery is one URB-delivery.
	Delivery = urb.Delivery
	// Stats reports a process's internal set sizes.
	Stats = urb.Stats
	// Config carries the algorithm knobs; the zero value is the
	// paper-faithful configuration.
	Config = urb.Config
	// Snapshotter is the state export/import surface of the durable
	// algorithms (DESIGN.md §9).
	Snapshotter = urb.Snapshotter
	// DurableProcess is the full crash-recovery contract: Process plus
	// snapshot export/import, WAL replay and the post-recovery Rejoin.
	// Both paper algorithms and the heartbeat host implement it.
	DurableProcess = urb.Durable
	// DurableEvent is one write-ahead record (delivery, tag_ack pin or
	// local broadcast).
	DurableEvent = urb.DurableEvent
	// SnapshotInfo summarises a verified state snapshot.
	SnapshotInfo = urb.SnapshotInfo
)

// VerifySnapshot decodes a durable-state snapshot, recomputes its state
// fingerprint and checks it against the embedded digest (what
// `urbcheck -snapshot` runs).
func VerifySnapshot(data []byte) (SnapshotInfo, error) { return urb.VerifySnapshot(data) }

// NewMajority builds the paper's Algorithm 1 (majority-based URB, no
// failure detector, non-quiescent) for a system of n processes.
func NewMajority(n int, tags *TagSource, cfg Config) Process {
	return urb.NewMajority(n, tags, cfg)
}

// NewQuiescent builds the paper's Algorithm 2 (quiescent URB with AΘ and
// AP*, any number of crashes).
func NewQuiescent(det Detector, tags *TagSource, cfg Config) Process {
	return urb.NewQuiescent(det, tags, cfg)
}

// NewHeartbeatHost builds the oracle-free stack: Algorithm 2 over a
// heartbeat-realised detector, ALIVE beats multiplexed on the same mesh.
// timeout is the trust window and beatEvery emits a beat on every k-th
// tick, both in the host runtime's time units.
func NewHeartbeatHost(tags *TagSource, timeout int64, beatEvery int, clock func() int64, cfg Config) Process {
	return urb.NewHeartbeatHost(tags, timeout, beatEvery, clock, cfg)
}

// Baselines (internal/rb), for comparison studies. None of these is a
// URB: see the package documentation of internal/rb and experiments T5,
// T6 and F7 for what each gives up.

// NewBestEffort builds the best-effort broadcast baseline (send once,
// deliver on reception; integrity only).
func NewBestEffort(tags *TagSource) Process { return rb.NewBestEffort(tags) }

// NewEagerRB builds the eager (one-shot flooding) reliable broadcast
// baseline; its guarantees assume reliable channels.
func NewEagerRB(tags *TagSource) Process { return rb.NewEagerRB(tags) }

// NewAnonymousRB builds the companion technical report's anonymous
// reliable (non-uniform) broadcast: deliver on first reception,
// retransmit forever.
func NewAnonymousRB(tags *TagSource) Process { return rb.NewAnonymousRB(tags) }

// NewIDedURB builds the classic identifier-based majority URB, the
// non-anonymous comparator.
func NewIDedURB(id, n int, tags *TagSource) Process { return rb.NewIDed(id, n, tags) }

// Identifiers (internal/ident, internal/wire).
type (
	// Tag is a 128-bit anonymous identifier (message tag, ack tag, or
	// failure detector label).
	Tag = ident.Tag
	// TagSource draws fresh tags deterministically.
	TagSource = ident.Source
	// MsgID identifies an application message: (payload, tag).
	MsgID = wire.MsgID
	// Message is a wire message (MSG or ACK).
	Message = wire.Message
)

// NewTagSource returns a tag stream seeded from seed.
func NewTagSource(seed uint64) *TagSource {
	return ident.NewSource(xrand.New(seed))
}

// NewFlowTagSource returns a tag stream whose tags all carry flow as
// their Hi half (Lo stays a fresh draw per tag), giving every broadcast
// a per-process flow key the admission stage can classify on with zero
// wire changes. This trades linkability for fairness — all of one
// process's broadcasts share a visible prefix — and is strictly opt-in;
// NewTagSource keeps full anonymity. flow must be nonzero.
func NewFlowTagSource(flow, seed uint64) *TagSource {
	return ident.NewFlowSource(flow, xrand.New(seed))
}

// Failure detectors (internal/fd).
type (
	// Detector is the per-process AΘ/AP* handle Algorithm 2 consumes.
	Detector = fd.Detector
	// FDPair is one (label, number) view element.
	FDPair = fd.Pair
	// FDView is a failure detector output.
	FDView = fd.View
	// Oracle synthesises legal AΘ/AP* views for a known crash schedule.
	Oracle = fd.Oracle
	// OracleConfig parameterises the oracle.
	OracleConfig = fd.OracleConfig
	// NoiseMode selects the oracle's pre-stabilisation behaviour.
	NoiseMode = fd.NoiseMode
	// Heartbeat realises the detectors from periodic ALIVE messages
	// under partial synchrony.
	Heartbeat = fd.Heartbeat
)

// Oracle noise modes.
const (
	NoiseExact       = fd.NoiseExact
	NoiseBenign      = fd.NoiseBenign
	NoiseAdversarial = fd.NoiseAdversarial
)

// NewOracle builds a grounded failure detector oracle; correct[i] states
// whether process i stays up in the run.
func NewOracle(cfg OracleConfig, correct []bool) *Oracle {
	return fd.NewOracle(cfg, correct)
}

// NewHeartbeat builds the heartbeat realisation of the detectors.
func NewHeartbeat(label Tag, timeout int64, clock func() int64) *Heartbeat {
	return fd.NewHeartbeat(label, timeout, clock)
}

// Channel models (internal/channel).
type (
	// LinkModel decides drop/delay per copy on a directed link.
	LinkModel = channel.LinkModel
	// Verdict is a link's decision for one copy.
	Verdict = channel.Verdict
	// Delayer draws per-copy latencies.
	Delayer = channel.Delayer
	// Reliable never drops.
	Reliable = channel.Reliable
	// Bernoulli drops each copy independently with probability P.
	Bernoulli = channel.Bernoulli
	// GilbertElliott is the two-state burst-loss model.
	GilbertElliott = channel.GilbertElliott
	// DropFirst drops the first K copies per link.
	DropFirst = channel.DropFirst
	// Partition cuts cross-group traffic until a given time.
	Partition = channel.Partition
	// Blackhole drops everything (NOT fair; for impossibility studies).
	Blackhole = channel.Blackhole
	// SlowSink starves one destination for its first K inbound copies.
	SlowSink = channel.SlowSink
	// FixedDelay is a constant latency.
	FixedDelay = channel.FixedDelay
	// UniformDelay draws latencies uniformly from [Min, Max].
	UniformDelay = channel.UniformDelay
	// ExpDelay draws Base + Exp(Mean) latencies.
	ExpDelay = channel.ExpDelay
)

// Deterministic simulation (internal/sim).
type (
	// SimConfig describes a deterministic simulator run.
	SimConfig = sim.Config
	// SimEngine executes one run.
	SimEngine = sim.Engine
	// SimResult summarises a completed run.
	SimResult = sim.Result
	// SimEnv is what a process factory receives.
	SimEnv = sim.Env
	// ScheduledBroadcast injects a URB-broadcast into a run.
	ScheduledBroadcast = sim.ScheduledBroadcast
)

// Never marks a process that does not crash in a simulator schedule.
const Never = sim.Never

// NewSimEngine builds a deterministic simulation run.
func NewSimEngine(cfg SimConfig) *SimEngine {
	return sim.NewEngine(cfg)
}

// Node runtime (internal/node): one process on a pluggable transport.
type (
	// Node hosts one Process on a Transport with a context-scoped
	// lifecycle: Start(ctx), Broadcast([]byte), Deliveries(), Stop().
	Node = node.Node
	// NodeDelivery is one URB-delivery observed on a Node.
	NodeDelivery = node.Delivery
	// NodeOption configures a Node (WithTickEvery, WithSeed,
	// WithObserver, WithInboxDepth).
	NodeOption = node.Option
	// Observer receives node events (send/receive/deliver/quiescence).
	Observer = node.Observer
	// NodeMetrics is an Observer aggregating node events with the
	// internal metrics toolkit.
	NodeMetrics = node.Metrics
	// NodeMetricsSnapshot is a point-in-time copy of NodeMetrics.
	NodeMetricsSnapshot = node.Snapshot
)

// Node lifecycle errors.
var (
	ErrNodeNotRunning     = node.ErrNotRunning
	ErrNodeAlreadyStarted = node.ErrAlreadyStarted
	ErrNodeBodyTooLarge   = node.ErrBodyTooLarge
)

// MaxBody is the largest payload the wire codec carries; Node.Broadcast
// rejects longer bodies with ErrNodeBodyTooLarge.
const MaxBody = wire.MaxBody

// MaxUDPFrame is the UDP transport's frame budget (the real IPv4
// datagram payload ceiling); it is also the default mesh frame budget,
// so batch framing behaves identically on both transports.
const MaxUDPFrame = transport.MaxUDPFrame

// NewNode builds a node hosting proc on tr. The node takes ownership of
// the transport (Stop closes it). Call Start to run it.
func NewNode(proc Process, tr Transport, opts ...NodeOption) *Node {
	return node.New(proc, tr, opts...)
}

// WithTickEvery sets a node's Task-1 tick period (default 10ms).
func WithTickEvery(d time.Duration) NodeOption { return node.WithTickEvery(d) }

// WithSeed seeds a node's local randomness (tick phase).
func WithSeed(seed uint64) NodeOption { return node.WithSeed(seed) }

// WithObserver installs a node event observer.
func WithObserver(obs Observer) NodeOption { return node.WithObserver(obs) }

// WithInboxDepth sets the capacity of a node's delivery queue.
func WithInboxDepth(depth int) NodeOption { return node.WithInboxDepth(depth) }

// Observability (internal/obs): per-message lifecycle tracing, the live
// introspection endpoint and the delivery stall explainer (DESIGN.md
// §14).
type (
	// Tracer is a bounded per-node ring of typed lifecycle events
	// (BROADCAST, FIRST_SEND, RECV, ACK_PROGRESS, DELIVER, RETIRE, ...).
	Tracer = obs.Tracer
	// TraceEvent is one recorded lifecycle event.
	TraceEvent = obs.Event
	// Explanation is the stall explainer's report: exactly which
	// delivery evidence a message is still missing.
	Explanation = obs.Explanation
	// DebugServer is the live introspection endpoint (obs.Serve).
	DebugServer = obs.Server
	// DebugOptions configures the endpoint's routes.
	DebugOptions = obs.ServeOptions
)

// NewTracer builds a lifecycle tracer for the given node index with a
// ring of capacity events (0 selects the default) and wall-clock
// timestamps. Install it with WithTracer; read it with Tracer.Events,
// WriteChromeTrace or MergeTraces.
func NewTracer(nodeIndex, capacity int) *Tracer {
	return obs.New(nodeIndex, capacity, func() int64 { return time.Now().UnixNano() })
}

// WithTracer installs a lifecycle tracer into a node and its hosted
// algorithm. The zero configuration — no tracer — has no overhead.
func WithTracer(t *Tracer) NodeOption { return node.WithTracer(t) }

// MergeTraces merges per-node traces into one time-ordered event list.
func MergeTraces(tracers ...*Tracer) []TraceEvent { return obs.Merge(tracers...) }

// WriteChromeTrace writes events as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Pass nanos=true
// for traces stamped by NewTracer's wall clock.
func WriteChromeTrace(w io.Writer, evs []TraceEvent, nanos bool) error {
	return obs.WriteChromeTrace(w, evs, nanos)
}

// ServeDebug starts the live introspection endpoint on addr
// ("127.0.0.1:0" picks a free port): /debug/vars, /debug/pprof,
// /metrics (Prometheus text over m's aggregates, when m is non-nil),
// /trace.json, /report and /explain. Close the returned server when
// done.
func ServeDebug(addr string, tracers []*Tracer, m *NodeMetrics) (*DebugServer, error) {
	opts := obs.ServeOptions{Tracers: tracers, Nanos: true}
	if m != nil {
		opts.Gauges = m.Gauges
	}
	return obs.Serve(addr, opts)
}

// WithBatching enables or disables batched sending (default enabled):
// all broadcasts of one algorithm step are coalesced into concatenated
// batch frames no larger than the transport's FrameBudget. Batch
// framing adds zero bytes; disabling restores one frame per wire
// message. Receiving handles batch frames in both modes.
func WithBatching(enabled bool) NodeOption { return node.WithBatching(enabled) }

// WithEncodeCacheSize bounds the node's per-message encode cache, which
// serves the byte-identical MSG frames Task 1 retransmits every tick.
func WithEncodeCacheSize(entries int) NodeOption { return node.WithEncodeCacheSize(entries) }

// Flow-fairness admission (internal/admit, DESIGN.md §11).
type (
	// AdmitConfig parameterises a node's admission stage: per-flow fair
	// share (Rate bytes/s, Burst bytes), demotion Penalty, lane depths,
	// tracked-flow table size, and the FIFO measurement baseline.
	AdmitConfig = admit.Config
	// AdmitStats is an admission stage's counter snapshot.
	AdmitStats = admit.Stats
	// AdmitFlowStats is one demoted flow's accounting within AdmitStats.
	AdmitFlowStats = admit.FlowStats
)

// WithAdmission interposes a flow-fairness admission stage between a
// node's transport and its inbox: traffic is classified per broadcaster
// flow (see NewFlowTagSource), heavy hitters exceeding cfg's fair share
// are demoted to a droppable low-priority lane, and everyone else's
// MSG/ACK frames keep flowing. Admission only drops or reorders before
// the algorithm sees a message — behaviour a fair lossy channel was
// always allowed — so D1–D5 are untouched (DESIGN.md §11). Inspect the
// stage with Node.AdmitStats, per-flow deliveries with
// Node.FlowDeliveries.
func WithAdmission(cfg AdmitConfig) NodeOption { return node.WithAdmission(cfg) }

// NewNodeMetrics returns an empty metrics-collecting Observer.
func NewNodeMetrics() *NodeMetrics { return node.NewMetrics() }

// Durable state (internal/store + the node recovery path, DESIGN.md §9).
type (
	// Store persists a node's durable URB state: compacted snapshots
	// plus a write-ahead log of deliveries, tag_ack pins and local
	// broadcasts.
	Store = store.Store
	// MemStore is the in-memory Store (tests and simulations).
	MemStore = store.Mem
	// FileStore is the file-backed Store: snapshot.bin (atomic
	// replacement) and wal.log (append-only, checksummed, torn-tail
	// tolerant) in one directory per process.
	FileStore = store.File
	// StoreStats reports a store's size counters.
	StoreStats = store.Stats
	// NodeStoreStats reports a node's durability activity.
	NodeStoreStats = node.StoreStats
)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return store.NewMem() }

// OpenFileStore opens (creating if needed) a file-backed store
// directory.
func OpenFileStore(dir string) (*FileStore, error) { return store.OpenFile(dir) }

// WithStore makes a node durable: durable events are write-ahead-logged
// to st and the state machine is checkpointed on the WithCheckpointEvery
// cadence. The process must implement DurableProcess and st must be
// empty (a populated store is a restart — use RecoverNode); NewNode
// panics on either violation.
func WithStore(st Store) NodeOption { return node.WithStore(st) }

// WithCheckpointEvery sets a durable node's checkpoint cadence (default
// 1s). Shorter cadences bound the WAL replayed at recovery.
func WithCheckpointEvery(d time.Duration) NodeOption { return node.WithCheckpointEvery(d) }

// RecoverNode rebuilds a node from its durable state: proc must be a
// freshly constructed process with the same constructor parameters (and
// tag-stream seed) as the crashed one; the store's snapshot is restored
// into it, the WAL replayed, and the returned node — once started —
// resumes where its predecessor stopped: it re-delivers nothing it
// delivered and re-acks under the tag_acks it pinned.
func RecoverNode(proc Process, st Store, tr Transport, opts ...NodeOption) (*Node, error) {
	return node.Recover(proc, st, tr, opts...)
}

// JoinNode bootstraps a brand-new process into a running cluster
// (DESIGN.md §13): it solicits a state snapshot from the live peers over
// tr (SNAPREQ/SNAPCHUNK, chunked under the transport's frame budget,
// resumable under loss), verifies whichever container completes first,
// restores it into proc and adopts it under a fresh anonymous identity —
// the donor's delivered history is never re-delivered. proc must be a
// freshly constructed DurableProcess; st (which must be empty) becomes
// the joiner's durable store. The returned node is already started.
// There is no leave call: a departing node just stops — to the survivors
// a leave is indistinguishable from a crash, and the detectors' label
// purge eventually forgets it.
func JoinNode(ctx context.Context, proc Process, st Store, tr Transport, opts ...NodeOption) (*Node, error) {
	nd, err := node.Join(ctx, proc, st, tr, opts...)
	if err != nil {
		return nil, err
	}
	if err := nd.Start(ctx); err != nil {
		return nil, err
	}
	return nd, nil
}

// WithJoinFloor makes JoinNode reject donor snapshots below the given
// incarnation — protection against a stale donor serving state from
// before a known restart.
func WithJoinFloor(incarnation uint64) NodeOption { return node.WithJoinFloor(incarnation) }

// WithJoinTimeout sets how long JoinNode lets a transfer stall before
// abandoning it and re-soliciting from scratch (default 500ms) — this is
// how a mid-transfer donor crash is survived.
func WithJoinTimeout(d time.Duration) NodeOption { return node.WithJoinTimeout(d) }

// Transports (internal/transport): the swappable communication
// substrate carrying encoded wire frames.
type (
	// Transport carries encoded frames from one node to every node
	// (self included): Send, Receive, Close.
	Transport = transport.Transport
	// MeshNetwork joins N in-process endpoints over a lossy link mesh.
	MeshNetwork = transport.Mesh
	// MeshConfig describes a MeshNetwork.
	MeshConfig = transport.MeshConfig
	// UDPTransport is a Transport over real UDP sockets.
	UDPTransport = transport.UDP
	// ChaosTransport wraps another Transport with a LinkModel.
	ChaosTransport = transport.Chaos
	// ChaosConfig parameterises a ChaosTransport.
	ChaosConfig = transport.ChaosConfig
	// OverflowCounter is implemented by transports that count inbound
	// frames shed on a full inbox (receiver-side saturation, distinct
	// from link loss). See Node.InboxOverflows.
	OverflowCounter = transport.OverflowCounter
)

// NewMeshNetwork builds an in-process mesh; node i's transport is
// Endpoint(i).
func NewMeshNetwork(cfg MeshConfig) *MeshNetwork { return transport.NewMesh(cfg) }

// ListenUDP binds a UDP transport on addr (e.g. "127.0.0.1:0"); set its
// peer set with SetPeers before sending.
func ListenUDP(addr string, depth int) (*UDPTransport, error) {
	return transport.ListenUDP(addr, depth)
}

// UDPGroup binds n loopback UDP transports wired into one
// fully-connected group (self included).
func UDPGroup(n, depth int) ([]*UDPTransport, error) { return transport.UDPGroup(n, depth) }

// NewChaosTransport wraps inner with a loss/delay model, turning any
// transport into a reproduction of any simulator loss scenario.
func NewChaosTransport(inner Transport, cfg ChaosConfig) *ChaosTransport {
	return transport.NewChaos(inner, cfg)
}

// Live runtime (internal/liverun).
type (
	// ClusterConfig describes a live goroutine cluster.
	ClusterConfig = liverun.Config
	// Cluster is a running live cluster.
	Cluster = liverun.Cluster
	// ClusterDelivery is a delivery observed on a live cluster.
	ClusterDelivery = liverun.Delivery
	// ClusterFactory builds one live process.
	ClusterFactory = liverun.Factory
)

// StartCluster launches a live cluster.
func StartCluster(cfg ClusterConfig) *Cluster {
	return liverun.Start(cfg)
}
