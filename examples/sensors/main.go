// Sensors: a swarm of anonymous, identical sensor nodes disseminates
// alarm readings. Mass-produced nodes with no configured identities and a
// radio that loses packets is exactly the system model of the paper:
// anonymous processes, fair lossy channels, crashes.
//
// The twist versus the bulletin example: MOST of the swarm dies — 4 of 6
// nodes, far beyond the t < n/2 bound of Algorithm 1. Algorithm 2 with
// the failure detectors AΘ/AP* still guarantees that every alarm any node
// acted on (delivered) is eventually acted on by every surviving node,
// and once the alarms have propagated, the radio goes silent (quiescence
// — battery matters on sensors).
//
// Run with:
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"sync"
	"time"

	"anonurb"
)

func main() {
	const n = 6

	// Ground truth of this run: nodes 2..5 will die. The oracle plays
	// the role the detector modules play in the paper's model — see
	// DESIGN.md for how it is grounded.
	correct := []bool{true, true, false, false, false, false}
	oracle := anonurb.NewOracle(anonurb.OracleConfig{
		N: n, Noise: anonurb.NoiseBenign, GST: 150, NoisePeriod: 20, Seed: 3,
	}, correct)

	var mu sync.Mutex
	acted := map[string]map[int]bool{} // alarm -> set of nodes that delivered

	cluster := anonurb.StartCluster(anonurb.ClusterConfig{
		N: n,
		Factory: func(i int, tags *anonurb.TagSource, clock func() int64) anonurb.Process {
			return anonurb.NewQuiescent(oracle.Handle(i, clock), tags, anonurb.Config{})
		},
		Link:      anonurb.Bernoulli{P: 0.3, D: anonurb.UniformDelay{Min: 1, Max: 6}},
		Unit:      time.Millisecond,
		TickEvery: 10,
		Seed:      99,
		OnDeliver: func(d anonurb.ClusterDelivery) {
			mu.Lock()
			if acted[d.ID.Body] == nil {
				acted[d.ID.Body] = map[int]bool{}
			}
			acted[d.ID.Body][d.Proc] = true
			mu.Unlock()
			fast := ""
			if d.Fast {
				fast = " (from acknowledgements alone)"
			}
			fmt.Printf("  node %d raised alarm %q%s\n", d.Proc, d.ID.Body, fast)
		},
	})
	defer cluster.Stop()

	fmt.Printf("sensor swarm: %d anonymous nodes, 30%% packet loss, 4 nodes about to fail\n\n", n)

	// A doomed node detects something and broadcasts before dying.
	cluster.Broadcast(2, []byte("ALARM:overheat@zone-7"))
	time.Sleep(30 * time.Millisecond)
	cluster.Crash(2)
	fmt.Println("node 2 died right after broadcasting")

	// More of the swarm fails.
	cluster.Crash(3)
	cluster.Crash(4)
	time.Sleep(10 * time.Millisecond)
	cluster.Crash(5)
	fmt.Println("nodes 3, 4, 5 died — only a one-third minority survives")

	// The survivors (nodes 0 and 1) must still deliver the alarm: with
	// AΘ/AP* the majority assumption is unnecessary.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		got := len(acted["ALARM:overheat@zone-7"])
		mu.Unlock()
		if got >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	surviving := 0
	for node := range acted["ALARM:overheat@zone-7"] {
		if node == 0 || node == 1 {
			surviving++
		}
	}
	mu.Unlock()
	if surviving == 2 {
		fmt.Println("\nboth survivors acted on the alarm despite losing 2/3 of the swarm")
	} else {
		fmt.Printf("\nonly %d survivor(s) acted (should be 2)\n", surviving)
	}

	// Quiescence: the radios must go silent (battery!).
	fmt.Println("waiting for the radio to go silent...")
	for !cluster.QuietFor(150 * time.Millisecond) {
		time.Sleep(10 * time.Millisecond)
	}
	sends, drops := cluster.NetStats()
	fmt.Printf("silence. %d packets transmitted in total, %d lost by the channel.\n", sends, drops)
	for _, node := range []int{0, 1} {
		st := cluster.Stats(node)
		fmt.Printf("  node %d: retransmission queue empty=%v (retired %d)\n",
			node, st.MsgSet == 0, st.Retired)
	}
}
