// Recovery: a durable node is killed mid-run and restarted from its
// on-disk store — it re-delivers nothing it already delivered, catches
// up on everything it missed, and keeps acknowledging under the same
// anonymous tag_acks as before the crash. All of it under a
// chaos-injected 20% frame loss, because crash-recovery that only works
// on reliable links is not worth having.
//
// The durable state is DESIGN.md §9's store: an append-only write-ahead
// log of deliveries/pins/broadcasts plus periodic compacted snapshots,
// in one directory the restarted process points back at.
//
// Run with:
//
//	go run ./examples/recovery
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"anonurb"
)

const (
	n        = 5
	lossRate = 0.2
	durable  = 2 // the node that crashes and recovers
)

// chaos wraps a transport in Bernoulli frame loss with small delays.
func chaos(tr anonurb.Transport, seed uint64) anonurb.Transport {
	return anonurb.NewChaosTransport(tr, anonurb.ChaosConfig{
		Model: anonurb.Bernoulli{P: lossRate, D: anonurb.UniformDelay{Min: 0, Max: 2}},
		Unit:  time.Millisecond,
		Seed:  seed,
	})
}

// delivered tracks per-node delivery counts per message, so re-delivery
// would be caught immediately.
type delivered struct {
	mu sync.Mutex
	m  map[int]map[string]int
}

func (d *delivered) add(node int, body []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.m == nil {
		d.m = make(map[int]map[string]int)
	}
	if d.m[node] == nil {
		d.m[node] = make(map[string]int)
	}
	d.m[node][string(body)]++
}

func (d *delivered) count(node int, body string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m[node][body]
}

func (d *delivered) waitFor(ctx context.Context, node int, body string) error {
	for {
		if d.count(node, body) >= 1 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("node %d never delivered %q: %w", node, body, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Println("recovery example failed:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	dir, err := os.MkdirTemp("", "anonurb-recovery-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := anonurb.OpenFileStore(dir)
	if err != nil {
		return err
	}
	defer st.Close()

	mesh := anonurb.NewMeshNetwork(anonurb.MeshConfig{
		N:    n,
		Link: anonurb.Reliable{D: anonurb.FixedDelay(0)},
		Seed: 11,
	})
	defer mesh.Close()

	log := &delivered{}
	mkProc := func(i int) anonurb.Process {
		// Same seed per index: a recovered process must rebuild its tag
		// stream from the same seed so it resumes, not impersonates.
		return anonurb.NewMajority(n, anonurb.NewTagSource(uint64(2000+i)), anonurb.Config{})
	}
	track := func(i int, nd *anonurb.Node) {
		inbox := nd.Deliveries()
		go func() {
			for d := range inbox {
				log.add(i, d.Body())
			}
		}()
	}

	nodes := make([]*anonurb.Node, n)
	for i := range nodes {
		opts := []anonurb.NodeOption{
			anonurb.WithTickEvery(5 * time.Millisecond),
			anonurb.WithSeed(uint64(i)),
		}
		if i == durable {
			opts = append(opts, anonurb.WithStore(st),
				anonurb.WithCheckpointEvery(20*time.Millisecond))
		}
		nodes[i] = anonurb.NewNode(mkProc(i), chaos(mesh.Endpoint(i), uint64(i)), opts...)
		track(i, nodes[i])
		if err := nodes[i].Start(ctx); err != nil {
			return err
		}
		defer nodes[i].Stop()
	}

	// Phase 1: everyone (the durable node included) delivers a message.
	if _, err := nodes[0].Broadcast([]byte("before the crash")); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := log.waitFor(ctx, i, "before the crash"); err != nil {
			return err
		}
	}
	// Give the checkpoint cadence a beat so the crash lands after a
	// snapshot (recovery then replays snapshot + WAL, not WAL alone).
	for nodes[durable].StoreStats().Checkpoints == 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("no checkpoint: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
	ss := nodes[durable].StoreStats()
	fmt.Printf("phase 1: all %d nodes delivered %q (node %d durably: %d WAL records, %d checkpoint(s))\n",
		n, "before the crash", durable, ss.WALAppends, ss.Checkpoints)

	// Phase 2: kill the durable node; the survivors keep going.
	nodes[durable].Stop()
	fmt.Printf("phase 2: node %d crashed\n", durable)
	if _, err := nodes[0].Broadcast([]byte("while it was down")); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if i == durable {
			continue
		}
		if err := log.waitFor(ctx, i, "while it was down"); err != nil {
			return err
		}
	}

	// Phase 3: restart it from the store. Same constructor parameters,
	// same tag seed, a fresh endpoint on the same mesh slot.
	rec, err := anonurb.RecoverNode(mkProc(durable), st, chaos(mesh.Reopen(durable), 77),
		anonurb.WithTickEvery(5*time.Millisecond),
		anonurb.WithSeed(uint64(durable)),
		anonurb.WithCheckpointEvery(20*time.Millisecond))
	if err != nil {
		return err
	}
	snapBytes, walRecords := rec.RecoveryStats()
	fmt.Printf("phase 3: node %d recovered (snapshot %dB + %d WAL records replayed)\n",
		durable, snapBytes, walRecords)
	track(durable, rec)
	if err := rec.Start(ctx); err != nil {
		return err
	}
	defer rec.Stop()

	// It catches up on what it missed and serves new traffic.
	if err := log.waitFor(ctx, durable, "while it was down"); err != nil {
		return err
	}
	if _, err := rec.Broadcast([]byte("back in business")); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := log.waitFor(ctx, i, "back in business"); err != nil {
			return err
		}
	}

	// The verdict: across the restart, nothing was delivered twice.
	for _, body := range []string{"before the crash", "while it was down", "back in business"} {
		for i := 0; i < n; i++ {
			if c := log.count(i, body); c > 1 {
				return fmt.Errorf("node %d delivered %q %d times", i, body, c)
			}
		}
	}
	if c := log.count(durable, "before the crash"); c != 1 {
		return fmt.Errorf("node %d delivered the pre-crash message %d times across the restart", durable, c)
	}
	fmt.Printf("\nnode %d crashed, recovered from disk, re-delivered nothing, caught up on "+
		"everything — under %d%% frame loss. URB held across the restart.\n", durable, int(lossRate*100))
	return nil
}
