// Bulletin: an anonymous bulletin board. Several writers post notes
// concurrently over a bursty, lossy network; every process ends up with
// the same set of notes even though nobody knows who posted what — the
// scenario the paper's introduction motivates (dissemination with
// delivery guarantees and no identities).
//
// This example uses Algorithm 1 (majority-based, no failure detector):
// as long as a majority of board members stay up, every note any member
// shows was — or will be — shown by all surviving members, even notes
// posted by members that crashed mid-post.
//
// Run with:
//
//	go run ./examples/bulletin
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"anonurb"
)

// board collects each process's view of the bulletin board.
type board struct {
	mu    sync.Mutex
	notes map[int][]string // per process, in delivery order
}

func (b *board) post(proc int, note string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.notes[proc] = append(b.notes[proc], note)
}

func (b *board) snapshot(proc int) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := append([]string(nil), b.notes[proc]...)
	sort.Strings(out)
	return out
}

func main() {
	const n = 7
	const posts = 3

	b := &board{notes: map[int][]string{}}
	cluster := anonurb.StartCluster(anonurb.ClusterConfig{
		N: n,
		Factory: func(_ int, tags *anonurb.TagSource, _ func() int64) anonurb.Process {
			// Algorithm 1 needs no failure detector — just the system
			// size and a majority of correct members.
			return anonurb.NewMajority(n, tags, anonurb.Config{})
		},
		// A bursty network: usually fine, occasionally terrible.
		Link: anonurb.GilbertElliott{
			PGood: 0.05, PBad: 0.8,
			GoodToBad: 0.05, BadToGood: 0.2,
			D: anonurb.UniformDelay{Min: 1, Max: 8},
		},
		Unit:      time.Millisecond,
		TickEvery: 8,
		Seed:      2015,
		OnDeliver: func(d anonurb.ClusterDelivery) { b.post(d.Proc, d.ID.Body) },
	})
	defer cluster.Stop()

	fmt.Printf("an anonymous bulletin board with %d members (bursty lossy links)\n", n)

	// Three members post concurrently...
	for w := 0; w < posts; w++ {
		writer := w * 2 // members 0, 2, 4
		note := fmt.Sprintf("note-%c from an anonymous member", 'A'+w)
		cluster.Broadcast(writer, []byte(note))
	}
	// ...and one of the writers crashes right after posting, plus two
	// lurkers die too: 3 crashes < n/2 keeps the majority assumption.
	time.Sleep(20 * time.Millisecond)
	cluster.Crash(4)
	cluster.Crash(5)
	cluster.Crash(6)
	fmt.Println("members 4, 5, 6 crashed (one of them mid-post)")

	// Wait until the four survivors agree on all posts.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		agreed := true
		for p := 0; p < 4; p++ {
			if len(b.snapshot(p)) < posts {
				agreed = false
				break
			}
		}
		if agreed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	fmt.Println("\nfinal board at every surviving member:")
	reference := b.snapshot(0)
	consistent := true
	for p := 0; p < 4; p++ {
		view := b.snapshot(p)
		fmt.Printf("  member %d sees %d notes\n", p, len(view))
		for i, note := range view {
			fmt.Printf("      %d. %s\n", i+1, note)
		}
		if len(view) != len(reference) {
			consistent = false
		} else {
			for i := range view {
				if view[i] != reference[i] {
					consistent = false
				}
			}
		}
	}
	if consistent && len(reference) == posts {
		fmt.Println("\nall surviving members agree on the full board — uniform reliable broadcast at work")
	} else {
		fmt.Println("\nviews diverged (should not happen)")
	}
}
