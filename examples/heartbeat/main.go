// Heartbeat: the fully self-contained stack — no oracle anywhere. Each
// process runs Algorithm 2 on top of a heartbeat-realised AΘ/AP* failure
// detector; detector ALIVE beats and algorithm MSG/ACK traffic share the
// same lossy links.
//
// Watch for two things:
//
//  1. A crash is detected by silence: after the victim's last heartbeat
//     expires, the survivors' views shrink and the algorithm keeps
//     working with the smaller correct set.
//  2. Quiescence applies to the ALGORITHM's traffic only: MSG/ACK
//     retransmission stops once every message is retired, but heartbeats
//     keep flowing — implementable failure detection has a permanent
//     background cost (measured in experiment F8).
//
// Run with:
//
//	go run ./examples/heartbeat
package main

import (
	"fmt"
	"sync"
	"time"

	"anonurb"
)

func main() {
	const n = 4

	var mu sync.Mutex
	delivered := map[string]map[int]bool{}

	cluster := anonurb.StartCluster(anonurb.ClusterConfig{
		N: n,
		Factory: func(_ int, tags *anonurb.TagSource, clock func() int64) anonurb.Process {
			// The full stack: a fresh anonymous label, a heartbeat
			// detector with a 120-unit trust timeout, Algorithm 2 wired
			// to it, beats multiplexed on the same mesh. No index, no
			// oracle, no ground truth.
			return anonurb.NewHeartbeatHost(tags, 120, 1, clock, anonurb.Config{})
		},
		Link:      anonurb.Bernoulli{P: 0.15, D: anonurb.UniformDelay{Min: 1, Max: 5}},
		Unit:      time.Millisecond,
		TickEvery: 10,
		Seed:      2015,
		OnDeliver: func(d anonurb.ClusterDelivery) {
			mu.Lock()
			if delivered[d.ID.Body] == nil {
				delivered[d.ID.Body] = map[int]bool{}
			}
			delivered[d.ID.Body][d.Proc] = true
			mu.Unlock()
			fmt.Printf("  p%d delivered %q after %v\n",
				d.Proc, d.ID.Body, d.Elapsed.Round(time.Millisecond))
		},
	})
	defer cluster.Stop()

	fmt.Printf("%d processes, heartbeat-realised detectors, no oracle anywhere\n\n", n)

	// Give the detectors a few beat rounds to learn all labels.
	time.Sleep(100 * time.Millisecond)

	fmt.Println("phase 1: broadcast with everyone alive")
	cluster.Broadcast(0, []byte("first"))
	waitAll := func(body string, want int) bool {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			got := len(delivered[body])
			mu.Unlock()
			if got >= want {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return false
	}
	if !waitAll("first", n) {
		fmt.Println("did not converge (unexpected)")
		return
	}

	fmt.Println("\nphase 2: p3 crashes; silence is the only evidence")
	cluster.Crash(3)
	// Wait past the trust timeout so the survivors' detectors drop p3.
	time.Sleep(300 * time.Millisecond)

	fmt.Println("phase 3: broadcast again — the smaller correct set carries it")
	cluster.Broadcast(1, []byte("second"))
	if !waitAll("second", n-1) {
		fmt.Println("survivors did not converge (unexpected)")
		return
	}

	// Algorithm-level quiescence: retransmission sets empty...
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		quiet := true
		for p := 0; p < n-1; p++ {
			if cluster.Stats(p).MsgSet != 0 {
				quiet = false
			}
		}
		if quiet {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for p := 0; p < n-1; p++ {
		st := cluster.Stats(p)
		fmt.Printf("  p%d: delivered=%d retired=%d retransmission-set empty=%v\n",
			p, st.Delivered, st.Retired, st.MsgSet == 0)
	}

	// ...but the beats never stop (that is the price of message-based
	// failure detection).
	s1, _ := cluster.NetStats()
	time.Sleep(200 * time.Millisecond)
	s2, _ := cluster.NetStats()
	fmt.Printf("\nalgorithm traffic is quiescent, yet %d copies flowed in the last 200ms — all heartbeats.\n", s2-s1)
}
