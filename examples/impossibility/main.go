// Impossibility: a walk-through of the paper's Theorem 2 — uniform
// reliable broadcast cannot be solved in an anonymous asynchronous system
// with fair lossy channels when half or more of the processes may crash
// (absent extra assumptions such as the failure detectors AΘ/AP*).
//
// The proof constructs two runs a sub-majority algorithm cannot tell
// apart. This program executes both runs on the deterministic simulator,
// once with the hypothetical algorithm (Algorithm 1 with its delivery
// threshold lowered to ⌈n/2⌉ acknowledgements) and once with the real
// Algorithm 1 — showing the dilemma: deliver and violate agreement, or
// stay safe and block forever.
//
// Run with:
//
//	go run ./examples/impossibility
package main

import (
	"fmt"

	"anonurb/internal/channel"
	"anonurb/internal/harness"
	"anonurb/internal/trace"
	"anonurb/internal/workload"
	"anonurb/internal/xrand"
)

// theoremLink builds the R2 network: reliable inside each half, a black
// hole across. Legal fair-lossy behaviour, because the only cross-half
// traffic ever offered comes from processes that crash after finitely
// many sends.
type theoremLink struct{ s1 int }

func (l theoremLink) Judge(now int64, src, dst int, attempt uint64, rng *xrand.Source) channel.Verdict {
	if (src < l.s1) != (dst < l.s1) {
		return channel.Verdict{Drop: true}
	}
	return channel.Verdict{Delay: 2}
}

func (l theoremLink) String() string { return fmt.Sprintf("theorem2(s1=%d)", l.s1) }

func run(n int, algo harness.Algo) harness.Outcome {
	s1 := (n + 1) / 2
	crashAfter := make([]int, n)
	for i := 0; i < s1; i++ {
		crashAfter[i] = 1 // every S1 member dies right after delivering
	}
	return harness.Run(harness.Scenario{
		Name:                 "impossibility",
		N:                    n,
		Algo:                 algo,
		Link:                 theoremLink{s1: s1},
		Workload:             workload.SingleShot{At: 2, Proc: 0, Body: []byte("m")},
		CrashAfterDeliveries: crashAfter,
		Seed:                 2015,
		MaxTime:              1_500,
	})
}

func main() {
	const n = 4
	s1 := (n + 1) / 2
	fmt.Printf("Theorem 2, executed. n=%d processes, split S1=p0..p%d, S2=p%d..p%d.\n",
		n, s1-1, s1, n-1)
	fmt.Println(`
Run R2: p0 URB-broadcasts m. Every copy crossing S1→S2 is lost — legal
for a fair lossy channel, because S1's members crash right after
delivering and so send only finitely many copies. S2 sends nothing (it
never hears anything). An algorithm that delivers on evidence from only
⌈n/2⌉ processes cannot distinguish this run from run R1, in which S2
crashed at time zero — so it delivers:`)

	bad := run(n, harness.AlgoMajorityLowered)
	printOutcome(bad, s1, true)
	agreementViolated := false
	for _, v := range bad.Report.Violations {
		if v.Property == "uniform-agreement" {
			agreementViolated = true
			fmt.Printf("  checker: %s\n", v.Error())
		}
	}
	if agreementViolated {
		fmt.Println("  → S1 delivered and died; correct S2 can never deliver. Uniform agreement is violated.")
	}

	fmt.Println(`
The real Algorithm 1 (strict majority, > n/2 acknowledgements) refuses
the bait — but then nobody ever delivers, in S1 or S2:`)
	good := run(n, harness.AlgoMajority)
	printOutcome(good, s1, false)
	if totalDeliveries(good) == 0 {
		fmt.Println("  → safe, but blocked forever. With t ≥ n/2 you cannot have both: that is Theorem 2.")
	}

	fmt.Println(`
The paper's way out is to enrich the model: the failure detectors AΘ and
AP* (Algorithm 2) restore liveness for ANY number of crashes — run
'go run ./examples/sensors' to see that side of the trade.`)
}

func totalDeliveries(o harness.Outcome) int {
	total := 0
	for _, ds := range o.Result.Deliveries {
		total += len(ds)
	}
	return total
}

// printOutcome summarises a run. convergent selects whether the eventual
// properties apply: the blocked run never converges by design, so only
// the safety properties are meaningful for it.
func printOutcome(o harness.Outcome, s1 int, convergent bool) {
	var events []trace.Event
	for _, b := range o.Result.Broadcasts {
		events = append(events, trace.Event{At: b.At, Kind: trace.KindBroadcast, Proc: b.Proc, ID: b.ID})
	}
	for p, ds := range o.Result.Deliveries {
		for _, d := range ds {
			events = append(events, trace.Event{At: d.At, Kind: trace.KindDeliver, Proc: p, ID: d.ID})
		}
	}
	checker := trace.NewChecker(len(o.Result.Deliveries), o.Result.Crashed)
	checker.CheckConvergent = convergent
	rep := checker.Check(events)
	for p, ds := range o.Result.Deliveries {
		group := "S2"
		if p < s1 {
			group = "S1"
		}
		state := "correct"
		if o.Result.Crashed[p] {
			state = "crashed"
		}
		fmt.Printf("  p%d (%s, %s): %d delivery(ies)\n", p, group, state, len(ds))
	}
	fmt.Printf("  properties: %d violation(s)\n", len(rep.Violations))
}
