// Quickstart: five anonymous processes, one broadcasts, everyone
// URB-delivers exactly once — despite 20% of all frames being dropped by
// a chaos-injected Bernoulli loss model.
//
// The same node code runs twice: first on the in-process mesh
// transport, then on real UDP sockets over loopback. Only the transport
// constructor changes; the algorithm, the node lifecycle and the
// delivery plumbing are identical — that is the point of the
// transport-agnostic Node API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"anonurb"
)

const (
	n        = 5
	lossRate = 0.2
)

// chaos wraps any transport in a 20% Bernoulli frame-loss model with a
// small random delay — the quintessential fair lossy channel.
func chaos(tr anonurb.Transport, seed uint64) anonurb.Transport {
	return anonurb.NewChaosTransport(tr, anonurb.ChaosConfig{
		Model: anonurb.Bernoulli{P: lossRate, D: anonurb.UniformDelay{Min: 0, Max: 2}},
		Unit:  time.Millisecond,
		Seed:  seed,
	})
}

// run starts one node per transport, URB-broadcasts a single message
// from node 2, and waits until every node has delivered it. The code is
// completely transport-agnostic. Node 0 additionally runs durable
// (WithStore): its deliveries and tag_ack pins are write-ahead-logged
// and its state checkpointed, so a crashed node 0 could be restarted
// with anonurb.RecoverNode — see examples/recovery for that full story.
func run(name string, transports []anonurb.Transport) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st := anonurb.NewMemStore()
	metrics := anonurb.NewNodeMetrics()
	nodes := make([]*anonurb.Node, n)
	inboxes := make([]<-chan anonurb.NodeDelivery, n)
	tracers := make([]*anonurb.Tracer, n)
	for i := range nodes {
		// Each process: Algorithm 1 (majority URB), its own private tag
		// stream, no identity anywhere.
		proc := anonurb.NewMajority(n, anonurb.NewTagSource(uint64(1000+i)), anonurb.Config{})
		// Every node records its message lifecycle (broadcast, first
		// send, receptions, evidence progress, delivery) into a bounded
		// trace ring, and feeds one shared metrics collector.
		tracers[i] = anonurb.NewTracer(i, 0)
		opts := []anonurb.NodeOption{
			anonurb.WithTickEvery(5 * time.Millisecond),
			anonurb.WithSeed(uint64(i)),
			anonurb.WithTracer(tracers[i]),
			anonurb.WithObserver(metrics),
		}
		if i == 0 {
			opts = append(opts, anonurb.WithStore(st),
				anonurb.WithCheckpointEvery(10*time.Millisecond))
		}
		nodes[i] = anonurb.NewNode(proc, chaos(transports[i], uint64(i)), opts...)
		inboxes[i] = nodes[i].Deliveries() // subscribe before Start
	}
	for _, nd := range nodes {
		if err := nd.Start(ctx); err != nil {
			return err
		}
		defer nd.Stop()
	}

	start := time.Now()
	id, err := nodes[2].Broadcast([]byte("hello, anonymous world"))
	if err != nil {
		return err
	}
	fmt.Printf("[%s] node 2 URB-broadcast %s\n", name, id)

	for i, inbox := range inboxes {
		select {
		case d := <-inbox:
			fmt.Printf("[%s] node %d URB-delivered %q after %v (fast=%v)\n",
				name, i, d.Body(), time.Since(start).Round(time.Millisecond), d.Fast)
		case <-ctx.Done():
			return fmt.Errorf("[%s] node %d never delivered: %w", name, i, ctx.Err())
		}
	}
	ss := nodes[0].StoreStats()
	if err := ss.Err; err != nil {
		return fmt.Errorf("[%s] durable node store error: %w", name, err)
	}
	if ss.WALAppends == 0 {
		return fmt.Errorf("[%s] durable node logged nothing", name)
	}
	fmt.Printf("[%s] node 0 persisted its state along the way: %d WAL records (%dB), %d checkpoint(s)\n",
		name, ss.WALAppends, ss.WALBytes, ss.Checkpoints)

	// Live introspection: the same trace and metrics every long-running
	// deployment would watch, served over HTTP for the duration of a few
	// requests — /metrics (Prometheus text), /trace.json (load it in
	// ui.perfetto.dev), /debug/pprof, /explain.
	srv, err := anonurb.ServeDebug("127.0.0.1:0", tracers, metrics)
	if err != nil {
		return fmt.Errorf("[%s] debug endpoint: %w", name, err)
	}
	defer srv.Close()
	promText, err := fetch("http://" + srv.Addr() + "/metrics")
	if err != nil {
		return fmt.Errorf("[%s] debug endpoint: %w", name, err)
	}
	for _, line := range strings.Split(strings.TrimSpace(promText), "\n") {
		if strings.HasPrefix(line, "urb_deliveries_total") ||
			strings.HasPrefix(line, "urb_deliver_latency_ms_p99") {
			fmt.Printf("[%s] /metrics: %s\n", name, line)
		}
	}
	merged := anonurb.MergeTraces(tracers...)
	fmt.Printf("[%s] lifecycle trace: %d events across %d nodes (GET /trace.json for Perfetto)\n",
		name, len(merged), n)
	return nil
}

// fetch GETs a debug-endpoint URL and returns the body.
func fetch(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b), nil
}

func main() {
	// Round 1: in-process mesh transport. The mesh's own links are
	// reliable here — all the loss comes from the chaos wrapper.
	mesh := anonurb.NewMeshNetwork(anonurb.MeshConfig{
		N:    n,
		Link: anonurb.Reliable{D: anonurb.FixedDelay(0)},
		Seed: 7,
	})
	meshTransports := make([]anonurb.Transport, n)
	for i := range meshTransports {
		meshTransports[i] = mesh.Endpoint(i)
	}
	if err := run("mesh", meshTransports); err != nil {
		fmt.Println("mesh run failed:", err)
		return
	}

	// Round 2: the SAME node code over real UDP sockets on loopback,
	// still under 20% injected loss (on top of whatever the kernel
	// drops).
	udp, err := anonurb.UDPGroup(n, 0)
	if err != nil {
		fmt.Println("udp setup failed:", err)
		return
	}
	udpTransports := make([]anonurb.Transport, n)
	for i := range udpTransports {
		udpTransports[i] = udp[i]
	}
	if err := run("udp", udpTransports); err != nil {
		fmt.Println("udp run failed:", err)
		return
	}

	fmt.Printf("\nsame node code, two networks, %d%% loss on both: URB held.\n",
		int(lossRate*100))
}
