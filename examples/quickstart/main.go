// Quickstart: five anonymous processes over lossy links, one of them
// broadcasts a message, everyone delivers it exactly once — then, because
// the quiescent algorithm is used, the whole cluster goes silent.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"time"

	"anonurb"
)

func main() {
	const n = 5

	// The failure detector oracle needs to know which processes stay up
	// for the whole run; here, everyone does.
	correct := make([]bool, n)
	for i := range correct {
		correct[i] = true
	}
	oracle := anonurb.NewOracle(anonurb.OracleConfig{
		N: n, Noise: anonurb.NoiseExact, Seed: 7,
	}, correct)

	var mu sync.Mutex
	delivered := map[int]bool{}

	cluster := anonurb.StartCluster(anonurb.ClusterConfig{
		N: n,
		Factory: func(i int, tags *anonurb.TagSource, clock func() int64) anonurb.Process {
			// Each process gets its own detector handle and tag stream.
			// Note the algorithm never learns i — anonymity is preserved;
			// the index only wires up the oracle.
			return anonurb.NewQuiescent(oracle.Handle(i, clock), tags, anonurb.Config{})
		},
		// 20% of all copies are lost; retransmission shrugs it off.
		Link:      anonurb.Bernoulli{P: 0.2, D: anonurb.UniformDelay{Min: 1, Max: 5}},
		Unit:      time.Millisecond,
		TickEvery: 10,
		Seed:      42,
		OnDeliver: func(d anonurb.ClusterDelivery) {
			mu.Lock()
			delivered[d.Proc] = true
			count := len(delivered)
			mu.Unlock()
			fmt.Printf("  process %d URB-delivered %q after %v (%d/%d)\n",
				d.Proc, d.ID.Body, d.Elapsed.Round(time.Millisecond), count, n)
		},
	})
	defer cluster.Stop()

	fmt.Println("broadcasting one message on a 20%-lossy anonymous network...")
	cluster.Broadcast(2, "hello, anonymous world")

	deadline := time.After(10 * time.Second)
	for {
		mu.Lock()
		done := len(delivered) == n
		mu.Unlock()
		if done {
			break
		}
		select {
		case <-deadline:
			fmt.Println("timed out — this should not happen")
			return
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Algorithm 2 is quiescent: wait for the traffic to stop entirely.
	fmt.Println("all delivered; waiting for quiescence...")
	for !cluster.QuietFor(100 * time.Millisecond) {
		time.Sleep(10 * time.Millisecond)
	}
	sends, drops := cluster.NetStats()
	fmt.Printf("quiescent: the network is silent. %d copies sent, %d lost to the channel.\n",
		sends, drops)
	for i := 0; i < n; i++ {
		st := cluster.Stats(i)
		fmt.Printf("  process %d: delivered=%d retired=%d, retransmission set empty=%v\n",
			i, st.Delivered, st.Retired, st.MsgSet == 0)
	}
}
