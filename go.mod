module anonurb

go 1.24
