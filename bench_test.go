// Benchmarks for the evaluation suite: one benchmark per table (T1-T6)
// and per figure (F1-F8) of DESIGN.md §4 — each op regenerates the whole
// experiment at quick scale — plus micro-benchmarks for the hot paths
// (tag generation, codec, channel verdicts, state-machine steps, oracle
// views).
//
// Run with:
//
//	go test -bench=. -benchmem
package anonurb

import (
	"fmt"
	"testing"

	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/harness"
	"anonurb/internal/ident"
	"anonurb/internal/sim"
	"anonurb/internal/urb"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// benchExperiment runs one experiment generator per op.
func benchExperiment(b *testing.B, gen func(harness.Params) *harness.Table) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := gen(harness.Params{Seed: 2015 + uint64(i), Quick: true})
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkT1MajorityCorrectness(b *testing.B) { benchExperiment(b, harness.T1Correctness) }
func BenchmarkT2Impossibility(b *testing.B)       { benchExperiment(b, harness.T2Impossibility) }
func BenchmarkT3CrashTolerance(b *testing.B)      { benchExperiment(b, harness.T3CrashTolerance) }
func BenchmarkT4FDAblation(b *testing.B)          { benchExperiment(b, harness.T4FDAblation) }
func BenchmarkT5Baselines(b *testing.B)           { benchExperiment(b, harness.T5BaselineGuarantees) }
func BenchmarkT6PriceOfUniformity(b *testing.B)   { benchExperiment(b, harness.T6PriceOfUniformity) }
func BenchmarkF1QuiescenceCurve(b *testing.B)     { benchExperiment(b, harness.F1QuiescenceCurve) }
func BenchmarkF2LatencyVsLoss(b *testing.B)       { benchExperiment(b, harness.F2LatencyVsLoss) }
func BenchmarkF3MessagesVsN(b *testing.B)         { benchExperiment(b, harness.F3MessagesVsN) }
func BenchmarkF4QuiescenceVsGST(b *testing.B)     { benchExperiment(b, harness.F4QuiescenceVsGST) }
func BenchmarkF5MemoryFootprint(b *testing.B)     { benchExperiment(b, harness.F5MemoryFootprint) }
func BenchmarkF6FastDelivery(b *testing.B)        { benchExperiment(b, harness.F6FastDelivery) }
func BenchmarkF7AnonymityCost(b *testing.B)       { benchExperiment(b, harness.F7AnonymityCost) }
func BenchmarkF8HeartbeatVsOracle(b *testing.B)   { benchExperiment(b, harness.F8HeartbeatVsOracle) }

// BenchmarkSimulatedRun measures raw simulator throughput: one full
// Algorithm 2 convergence run per op, n=5, 20% loss.
func BenchmarkSimulatedRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		correct := []bool{true, true, true, true, true}
		oracle := fd.NewOracle(fd.OracleConfig{N: 5, Noise: fd.NoiseExact, Seed: uint64(i)}, correct)
		res := sim.NewEngine(sim.Config{
			N: 5,
			Factory: func(env sim.Env) urb.Process {
				return urb.NewQuiescent(oracle.Handle(env.Index, env.Now), env.Tags, urb.Config{})
			},
			Link:             channel.Bernoulli{P: 0.2, D: channel.UniformDelay{Min: 1, Max: 5}},
			Seed:             uint64(i),
			MaxTime:          100_000,
			Broadcasts:       []sim.ScheduledBroadcast{{At: 5, Proc: 0, Body: []byte("bench")}},
			StopWhenQuiet:    200,
			ExpectDeliveries: 1,
		}).Run()
		if !res.Quiescent {
			b.Fatal("bench run did not quiesce")
		}
	}
}

// BenchmarkTickPeriod is the ablation bench for the Task-1 period: the
// latency/overhead trade-off called out in DESIGN.md §5.
func BenchmarkTickPeriod(b *testing.B) {
	for _, period := range []sim.Time{5, 10, 20, 40} {
		b.Run(fmt.Sprintf("period=%d", period), func(b *testing.B) {
			var lastLatency float64
			for i := 0; i < b.N; i++ {
				res := sim.NewEngine(sim.Config{
					N: 5,
					Factory: func(env sim.Env) urb.Process {
						return urb.NewMajority(5, env.Tags, urb.Config{})
					},
					Link:             channel.Bernoulli{P: 0.2, D: channel.UniformDelay{Min: 1, Max: 5}},
					Seed:             uint64(i),
					TickEvery:        period,
					MaxTime:          100_000,
					Broadcasts:       []sim.ScheduledBroadcast{{At: 5, Proc: 0, Body: []byte("tick")}},
					ExpectDeliveries: 1,
				}).Run()
				lastLatency = float64(res.EndTime)
			}
			b.ReportMetric(lastLatency, "vtime/convergence")
		})
	}
}

// --- micro-benchmarks -------------------------------------------------

func BenchmarkTagGeneration(b *testing.B) {
	src := ident.NewSource(xrand.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = src.Next()
	}
}

func BenchmarkWireEncodeAck(b *testing.B) {
	labels := make([]ident.Tag, 8)
	rng := xrand.New(2)
	for i := range labels {
		labels[i] = ident.Tag{Hi: rng.Uint64() | 1, Lo: rng.Uint64()}
	}
	m := wire.NewLabeledAck(wire.MsgID{Tag: ident.Tag{Hi: 1, Lo: 2}, Body: "payload"},
		ident.Tag{Hi: 3, Lo: 4}, labels)
	buf := make([]byte, 0, m.EncodedSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.Encode(buf[:0])
	}
}

func BenchmarkWireDecodeAck(b *testing.B) {
	labels := make([]ident.Tag, 8)
	rng := xrand.New(3)
	for i := range labels {
		labels[i] = ident.Tag{Hi: rng.Uint64() | 1, Lo: rng.Uint64()}
	}
	enc := wire.NewLabeledAck(wire.MsgID{Tag: ident.Tag{Hi: 1, Lo: 2}, Body: "payload"},
		ident.Tag{Hi: 3, Lo: 4}, labels).Encode(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelBernoulliVerdict(b *testing.B) {
	w := channel.NewNetwork(8, channel.Bernoulli{P: 0.2, D: channel.UniformDelay{Min: 1, Max: 5}},
		xrand.New(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Send(int64(i), i&7, (i+1)&7, 64)
	}
}

func BenchmarkMajorityReceiveMsg(b *testing.B) {
	p := urb.NewMajority(5, ident.NewSource(xrand.New(5)), urb.Config{})
	msgs := make([]wire.Message, 64)
	rng := xrand.New(6)
	for i := range msgs {
		msgs[i] = wire.NewMsg(wire.MsgID{
			Tag:  ident.Tag{Hi: rng.Uint64() | 1, Lo: rng.Uint64()},
			Body: "m",
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Receive(msgs[i&63])
	}
}

func BenchmarkQuiescentReceiveAck(b *testing.B) {
	view := fd.Normalize(fd.View{
		{Label: ident.Tag{Hi: 1, Lo: 1}, Number: 1 << 30}, // never deliver: pure bookkeeping cost
		{Label: ident.Tag{Hi: 2, Lo: 1}, Number: 1 << 30},
		{Label: ident.Tag{Hi: 3, Lo: 1}, Number: 1 << 30},
	})
	det := fd.Static{Theta: view, Star: view}
	p := urb.NewQuiescent(det, ident.NewSource(xrand.New(7)), urb.Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	labels := []ident.Tag{{Hi: 1, Lo: 1}, {Hi: 2, Lo: 1}, {Hi: 3, Lo: 1}}
	acks := make([]wire.Message, 64)
	rng := xrand.New(8)
	for i := range acks {
		acks[i] = wire.NewLabeledAck(id, ident.Tag{Hi: rng.Uint64() | 1, Lo: rng.Uint64()}, labels)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Receive(acks[i&63])
	}
}

func BenchmarkOracleViewExact(b *testing.B) {
	correct := make([]bool, 16)
	for i := range correct {
		correct[i] = i%3 != 0
	}
	o := fd.NewOracle(fd.OracleConfig{N: 16, Noise: fd.NoiseExact, Seed: 9}, correct)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.ATheta(1, int64(i))
	}
}

func BenchmarkOracleViewAdversarial(b *testing.B) {
	correct := make([]bool, 16)
	for i := range correct {
		correct[i] = i%3 != 0
	}
	o := fd.NewOracle(fd.OracleConfig{
		N: 16, Noise: fd.NoiseAdversarial, GST: 1 << 40, NoisePeriod: 10, Seed: 10,
	}, correct)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.ATheta(1, int64(i))
	}
}
