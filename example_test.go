package anonurb_test

import (
	"fmt"

	"anonurb"
)

// Example runs the paper's quiescent Algorithm 2 on the deterministic
// simulator: four anonymous processes, lossy links, one crash — one
// broadcast delivered by every correct process, after which the network
// goes silent.
func Example() {
	const n = 4
	correct := []bool{true, true, true, false} // p3 will crash
	oracle := anonurb.NewOracle(anonurb.OracleConfig{
		N: n, Noise: anonurb.NoiseExact, Seed: 1,
	}, correct)

	res := anonurb.NewSimEngine(anonurb.SimConfig{
		N: n,
		Factory: func(env anonurb.SimEnv) anonurb.Process {
			return anonurb.NewQuiescent(oracle.Handle(env.Index, env.Now), env.Tags, anonurb.Config{})
		},
		Link:             anonurb.Bernoulli{P: 0.2, D: anonurb.UniformDelay{Min: 1, Max: 5}},
		Seed:             1,
		MaxTime:          100_000,
		CrashAt:          []int64{anonurb.Never, anonurb.Never, anonurb.Never, 60},
		Broadcasts:       []anonurb.ScheduledBroadcast{{At: 5, Proc: 0, Body: []byte("hello")}},
		StopWhenQuiet:    200,
		ExpectDeliveries: 1,
	}).Run()

	for p := 0; p < 3; p++ {
		fmt.Printf("p%d delivered %d message(s)\n", p, len(res.Deliveries[p]))
	}
	fmt.Printf("quiescent: %v\n", res.Quiescent)
	// Output:
	// p0 delivered 1 message(s)
	// p1 delivered 1 message(s)
	// p2 delivered 1 message(s)
	// quiescent: true
}

// ExampleNewMajority shows Algorithm 1 (no failure detector, majority of
// correct processes) on the simulator.
func ExampleNewMajority() {
	const n = 3
	res := anonurb.NewSimEngine(anonurb.SimConfig{
		N: n,
		Factory: func(env anonurb.SimEnv) anonurb.Process {
			return anonurb.NewMajority(n, env.Tags, anonurb.Config{})
		},
		Link:             anonurb.Reliable{D: anonurb.FixedDelay(2)},
		Seed:             7,
		MaxTime:          10_000,
		Broadcasts:       []anonurb.ScheduledBroadcast{{At: 1, Proc: 2, Body: []byte("majority")}},
		ExpectDeliveries: 1,
	}).Run()

	total := 0
	for _, ds := range res.Deliveries {
		total += len(ds)
	}
	fmt.Printf("%d deliveries across %d processes\n", total, n)
	// Output:
	// 3 deliveries across 3 processes
}
