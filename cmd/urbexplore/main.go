// Command urbexplore runs the bounded-exhaustive model checker
// (internal/explore) over the paper's algorithms: it enumerates every
// schedule of deliveries, drops, ticks and crashes within the given
// bounds and checks uniform integrity and evidence support in every
// reachable state.
//
// Examples:
//
//	urbexplore -algo majority -n 2                 # verify Algorithm 1
//	urbexplore -algo quiescent -n 2                # verify Algorithm 2
//	urbexplore -algo lowered -n 2                  # watch Theorem 2 bite
//	urbexplore -algo majority -n 3 -max-states 200000
//
// Exit status: 0 if no violation was found, 1 if one was (with its
// schedule printed).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"anonurb/internal/explore"
	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/urb"
	"anonurb/internal/xrand"
)

func main() {
	algo := flag.String("algo", "majority", "algorithm: majority | quiescent | lowered")
	n := flag.Int("n", 2, "number of processes (2-3 are tractable)")
	ticks := flag.Int("ticks", 1, "Task-1 executions per process")
	crashes := flag.Int("crashes", 1, "crash budget")
	flightCap := flag.Int("flight-cap", 4, "in-flight buffer bound")
	maxStates := flag.Int("max-states", 2_000_000, "state budget")
	seed := flag.Uint64("seed", 99, "tag stream seed")
	flag.Parse()

	var builder explore.Builder
	switch *algo {
	case "majority", "lowered":
		threshold := *n/2 + 1
		if *algo == "lowered" {
			threshold = (*n + 1) / 2
		}
		nn, th, sd := *n, threshold, *seed
		builder = func() []urb.Process {
			root := xrand.New(sd)
			out := make([]urb.Process, nn)
			for i := range out {
				out[i] = urb.NewMajorityThreshold(nn, th, ident.NewSource(root.Split()), urb.Config{})
			}
			return out
		}
	case "quiescent":
		nn, sd := *n, *seed
		view := make(fd.View, nn)
		for i := range view {
			view[i] = fd.Pair{Label: ident.Tag{Hi: uint64(i) + 100, Lo: 7}, Number: nn}
		}
		view = fd.Normalize(view)
		builder = func() []urb.Process {
			root := xrand.New(sd)
			out := make([]urb.Process, nn)
			for i := range out {
				det := fd.Static{Theta: view.Clone(), Star: view.Clone()}
				out[i] = urb.NewQuiescent(det, ident.NewSource(root.Split()), urb.Config{})
			}
			return out
		}
	default:
		fmt.Fprintf(os.Stderr, "urbexplore: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	bounds := explore.Bounds{
		TicksPerProc: *ticks,
		MaxCrashes:   *crashes,
		FlightCap:    *flightCap,
		MaxStates:    *maxStates,
	}
	fmt.Printf("exploring %s, n=%d, bounds: ticks=%d crashes=%d flight=%d states<=%d\n",
		*algo, *n, *ticks, *crashes, *flightCap, *maxStates)

	start := time.Now()
	stats, violation := explore.New(builder, bounds,
		[]explore.Seed{{Proc: 0, Body: []byte("m")}}, nil).Run()
	elapsed := time.Since(start).Round(time.Millisecond)

	fmt.Printf("visited  : %d states, %d maximal schedules, %d merged, truncated=%v (%v)\n",
		stats.States, stats.Schedules, stats.Merged, stats.Truncated, elapsed)
	fmt.Printf("delivered: %d (process,message) pairs across schedules\n", stats.Deliveries)
	if violation == nil {
		fmt.Println("verdict  : no safety violation in any explored schedule")
		return
	}
	fmt.Printf("verdict  : VIOLATION — %s\n", violation.Detail)
	fmt.Println("schedule :")
	for i, step := range violation.Path {
		fmt.Printf("  %2d. %s\n", i+1, step)
	}
	os.Exit(1)
}
