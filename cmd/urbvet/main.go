// Command urbvet runs the repo's static-analysis suite
// (internal/analysis): exhaustive wire.Kind switches, determinism
// hygiene, guarded-by conventions, zero-valued deviation knobs and
// hot-path allocation discipline. See DESIGN.md §12 for the invariant
// table.
//
// It speaks two protocols:
//
//   - Standalone: `urbvet [dir|dir/...]...` (default ./...) loads the
//     enclosing module from source and prints findings. Exit 2 on
//     findings, 1 on load errors, 0 when clean.
//
//   - Vet tool: `go vet -vettool=$(which urbvet) ./...`. The go
//     command invokes the tool once per package with a JSON config
//     file argument ending in .cfg, after probing `-V=full` (version
//     stamp for its cache key) and `-flags` (supported flags; none).
//     Packages are type-checked from the compiler export data the go
//     command already built, so this path needs no source re-loading.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"anonurb/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	jsonOut := false
	var operands []string
	for _, a := range args {
		switch {
		case a == "-V=full":
			printVersion()
			return 0
		case a == "-flags":
			// The suite exposes no flags; go vet probes this list to
			// decide what it may pass through.
			fmt.Println("[]")
			return 0
		case a == "-json":
			jsonOut = true
		case strings.HasPrefix(a, "-"):
			// Tolerate unknown flags (go vet may grow new probes);
			// they cannot change what the suite checks.
		default:
			operands = append(operands, a)
		}
	}
	if len(operands) == 1 && strings.HasSuffix(operands[0], ".cfg") {
		return runUnit(operands[0], jsonOut)
	}
	return runStandalone(operands, jsonOut)
}

// printVersion emits the stamp `go vet` hashes into its cache key: the
// conventional "name version ... buildID=<hash of executable>" line, so
// rebuilding the tool invalidates cached vet results.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// vetConfig is the JSON the go command writes for each package when a
// vettool is installed (cmd/go/internal/work's vet.cfg).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single package described by a go vet config
// file. Imports resolve through the export data the go command lists in
// the config, so no source outside the package is touched.
func runUnit(cfgPath string, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urbvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "urbvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite carries no cross-package facts, but the go command
	// caches and feeds back whatever the tool writes here — the file
	// must exist even when empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "urbvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "urbvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is already canonical (post-ImportMap).
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor(cfg.Compiler, os.Getenv("GOARCH"))}
	if conf.Sizes == nil {
		conf.Sizes = types.SizesFor("gc", "amd64")
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "urbvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	lp := &analysis.LoadedPackage{Fset: fset, Files: files, Pkg: pkg, Info: info, Dir: cfg.Dir}
	diags, err := analysis.RunAll(lp, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "urbvet: %v\n", err)
		return 1
	}
	return report(fset, cfg.ImportPath, diags, jsonOut)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runStandalone loads packages from source: each operand is a
// directory or dir/... pattern inside a module (default "./...").
func runStandalone(operands []string, jsonOut bool) int {
	if len(operands) == 0 {
		operands = []string{"./..."}
	}
	root, modPath, err := analysis.FindModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "urbvet: %v\n", err)
		return 1
	}
	paths, err := expandOperands(root, modPath, operands)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urbvet: %v\n", err)
		return 1
	}
	loader := analysis.NewLoader(analysis.ModuleResolver(root, modPath))
	status := 0
	for _, p := range paths {
		lp, err := loader.Load(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbvet: %v\n", err)
			status = 1
			continue
		}
		diags, err := analysis.RunAll(lp, analysis.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbvet: %v\n", err)
			status = 1
			continue
		}
		if s := report(loader.Fset, p, diags, jsonOut); s > status {
			status = s
		}
	}
	return status
}

// expandOperands turns directory and dir/... operands into module
// import paths, deduplicated in first-seen order.
func expandOperands(root, modPath string, operands []string) ([]string, error) {
	seen := make(map[string]bool)
	var paths []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, op := range operands {
		dir, recursive := op, false
		if rest, ok := strings.CutSuffix(op, "/..."); ok {
			dir, recursive = rest, true
			if dir == "" || dir == "." {
				dir = "."
			}
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s is outside module %s", op, modPath)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		if !recursive {
			add(importPath)
			continue
		}
		sub, err := analysis.ModulePackages(abs, importPath)
		if err != nil {
			return nil, err
		}
		for _, p := range sub {
			add(p)
		}
	}
	return paths, nil
}

// report prints diagnostics and returns the exit status they imply: 0
// when clean, 2 on findings (plain mode; JSON mode reports findings on
// stdout and succeeds, mirroring `go vet -json`).
func report(fset *token.FileSet, pkgPath string, diags []analysis.Diagnostic, jsonOut bool) int {
	if len(diags) == 0 {
		if jsonOut {
			fmt.Printf("%s\n", mustJSON(map[string]any{pkgPath: map[string]any{}}))
		}
		return 0
	}
	if jsonOut {
		byAnalyzer := make(map[string][]map[string]string)
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], map[string]string{
				"posn":    fset.Position(d.Pos).String(),
				"message": d.Message,
			})
		}
		fmt.Printf("%s\n", mustJSON(map[string]any{pkgPath: byAnalyzer}))
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return 2
}

func mustJSON(v any) []byte {
	data, err := json.MarshalIndent(v, "", "\t")
	if err != nil {
		panic(err)
	}
	return data
}
