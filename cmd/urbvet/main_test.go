package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildTool builds the urbvet binary once per test run and returns its
// path.
var buildTool = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "urbvet")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "urbvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", &buildError{out: out, err: err}
	}
	return bin, nil
})

type buildError struct {
	out []byte
	err error
}

func (e *buildError) Error() string { return e.err.Error() + "\n" + string(e.out) }

func tool(t *testing.T) string {
	t.Helper()
	bin, err := buildTool()
	if err != nil {
		t.Fatalf("building urbvet: %v", err)
	}
	return bin
}

// runTool runs the built binary in dir and returns exit code + output.
func runTool(t *testing.T, dir string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(tool(t), args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running urbvet: %v", err)
	}
	return code, buf.String()
}

// TestBrokenModuleFails is the red-path guarantee: on a module whose
// urb package reads the wall clock, the tool exits non-zero and names
// the offence.
func TestBrokenModuleFails(t *testing.T) {
	code, out := runTool(t, filepath.Join("testdata", "broken"), "./...")
	if code != 2 {
		t.Fatalf("urbvet on broken module: exit %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "time.Now") {
		t.Errorf("output does not name the time.Now violation:\n%s", out)
	}
	if !strings.Contains(out, "determinism") {
		t.Errorf("output does not name the determinism analyzer:\n%s", out)
	}
}

// TestVersionAndFlags checks the two probes the go command sends before
// trusting a vettool.
func TestVersionAndFlags(t *testing.T) {
	code, out := runTool(t, ".", "-V=full")
	if code != 0 {
		t.Fatalf("-V=full: exit %d\n%s", code, out)
	}
	if !strings.HasPrefix(out, "urbvet version ") || !strings.Contains(out, "buildID=") {
		t.Errorf("-V=full output %q lacks the name/version/buildID shape go vet hashes", out)
	}
	code, out = runTool(t, ".", "-flags")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Errorf("-flags: exit %d, output %q; want 0 and []", code, out)
	}
}

// TestOwnModuleClean runs the standalone tool over this repository —
// the same gate CI applies via go vet.
func TestOwnModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module from source")
	}
	code, out := runTool(t, "../..", "./...")
	if code != 0 {
		t.Fatalf("urbvet on own module: exit %d\n%s", code, out)
	}
}

// TestGoVetVettool exercises the unitchecker protocol end to end:
// `go vet -vettool=urbvet` over the broken fixture module must fail,
// and over a single clean package of this module must pass.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go build machinery")
	}
	bin := tool(t)

	run := func(dir string, pkgs ...string) (int, string) {
		args := append([]string{"vet", "-vettool=" + bin}, pkgs...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running go vet: %v", err)
		}
		return code, buf.String()
	}

	code, out := run(filepath.Join("testdata", "broken"), "./...")
	if code == 0 {
		t.Errorf("go vet -vettool on broken module: exit 0, want non-zero\n%s", out)
	}
	if !strings.Contains(out, "time.Now") {
		t.Errorf("go vet output does not name the time.Now violation:\n%s", out)
	}

	code, out = run("../..", "./internal/wire")
	if code != 0 {
		t.Errorf("go vet -vettool on internal/wire: exit %d\n%s", code, out)
	}
}
