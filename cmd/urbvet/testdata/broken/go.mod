module broken

go 1.24
