// Package urb is a deliberately broken fixture: its package path ends
// in "urb", so the determinism analyzer treats it as deterministic
// code, and Tick reads the wall clock without a //urbvet:wallclock
// justification. cmd/urbvet's tests assert the binary exits non-zero
// here.
package urb

import "time"

// Tick leaks wall-clock time into supposedly deterministic state.
func Tick() int64 {
	return time.Now().UnixNano()
}
