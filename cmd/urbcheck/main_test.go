package main

import (
	"strings"
	"testing"
)

// TestExplainDemoNamesMissingEvidence is the ISSUE-9 acceptance test:
// on a cluster with partitioned ackers, the stall explainer must name
// the evidence the undelivered message is missing.
func TestExplainDemoNamesMissingEvidence(t *testing.T) {
	ex, ok := runExplainDemo()
	if !ok {
		t.Fatalf("demo did not produce a stalled explanation: %+v", ex)
	}
	if ex.Delivered {
		t.Fatal("partitioned cluster delivered")
	}
	if ex.Ackers != 2 || ex.Need != 3 {
		t.Fatalf("evidence = %d/%d ackers, want 2/3 (two reachable processes, majority of 5)", ex.Ackers, ex.Need)
	}
	rep := ex.String()
	if !strings.Contains(rep, "NOT delivered") ||
		!strings.Contains(rep, "2/3 distinct tag_acks") ||
		!strings.Contains(rep, "missing 1 acker(s) for the majority guard") {
		t.Fatalf("report does not name the missing evidence:\n%s", rep)
	}
}
