// Command urbcheck verifies a recorded run against the URB specification:
// validity, uniform agreement, uniform integrity, the crash model and
// channel integrity (see internal/trace).
//
// Usage:
//
//	urbcheck trace.jsonl          # verify a trace file
//	urbsim ... -trace out.jsonl && urbcheck out.jsonl
//	urbcheck -selftest            # record a fresh run and verify it
//
// Exit status: 0 if all properties hold, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"anonurb/internal/channel"
	"anonurb/internal/sim"
	"anonurb/internal/trace"
	"anonurb/internal/urb"
)

func main() {
	selftest := flag.Bool("selftest", false, "record a run in-process and verify it")
	truncated := flag.Bool("truncated", false, "trace is a run prefix: skip the eventual properties")
	flag.Parse()

	var h trace.Header
	var events []trace.Event
	var err error

	switch {
	case *selftest:
		h, events = recordSelftest()
	case flag.NArg() == 1:
		f, ferr := os.Open(flag.Arg(0))
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "urbcheck: %v\n", ferr)
			os.Exit(2)
		}
		defer f.Close()
		h, events, err = trace.Read(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbcheck: %v\n", err)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: urbcheck [-truncated] trace.jsonl | urbcheck -selftest")
		os.Exit(2)
	}

	checker := trace.NewChecker(h.N, h.Crashed)
	checker.CheckConvergent = !*truncated
	rep := checker.Check(events)
	fmt.Printf("trace    : n=%d, %d events, %d broadcasts, %d deliveries (%d fast)\n",
		h.N, len(events), rep.Broadcast, rep.TotalDeliveries, rep.FastDeliveries)
	if rep.OK() {
		fmt.Println("verdict  : all URB properties hold")
		return
	}
	fmt.Printf("verdict  : %d violation(s)\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  - %s\n", v.Error())
	}
	os.Exit(1)
}

// recordSelftest runs a small lossy scenario with crashes and returns its
// trace.
func recordSelftest() (trace.Header, []trace.Event) {
	const n = 5
	rec := trace.NewRecorder(trace.Options{Wire: true})
	res := sim.NewEngine(sim.Config{
		N: n,
		Factory: func(env sim.Env) urb.Process {
			return urb.NewMajority(n, env.Tags, urb.Config{})
		},
		Link:    channel.Bernoulli{P: 0.25, D: channel.UniformDelay{Min: 1, Max: 5}},
		Seed:    2015,
		MaxTime: 100_000,
		CrashAt: []sim.Time{sim.Never, sim.Never, sim.Never, 60, 80},
		Broadcasts: []sim.ScheduledBroadcast{
			{At: 5, Proc: 0, Body: []byte("selftest-a")},
			{At: 9, Proc: 1, Body: []byte("selftest-b")},
		},
		Observers:        []sim.Observer{rec},
		ExpectDeliveries: 2,
	}).Run()
	return trace.Header{Version: 1, N: n, Crashed: res.Crashed}, rec.Events()
}
