// Command urbcheck verifies a recorded run against the URB specification:
// validity, uniform agreement, uniform integrity, the crash model and
// channel integrity (see internal/trace). With -snapshot it instead
// verifies a saved durable-state snapshot (DESIGN.md §9): the codec
// version, the structure, and the embedded fingerprint digest.
//
// Usage:
//
//	urbcheck trace.jsonl          # verify a trace file
//	urbsim ... -trace out.jsonl && urbcheck out.jsonl
//	urbcheck -selftest            # record a fresh run and verify it
//	urbcheck -snapshot snapshot.bin   # verify a durable-state snapshot
//
// -snapshot accepts both a store container file (a File store's
// snapshot.bin) and a raw snapshot payload (urb.Snapshotter output).
//
// Exit status: 0 if all properties hold, 1 otherwise (2 on usage or
// unreadable input).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"anonurb/internal/channel"
	"anonurb/internal/sim"
	"anonurb/internal/store"
	"anonurb/internal/trace"
	"anonurb/internal/urb"
)

func main() {
	selftest := flag.Bool("selftest", false, "record a run in-process and verify it")
	truncated := flag.Bool("truncated", false, "trace is a run prefix: skip the eventual properties")
	snapshot := flag.String("snapshot", "", "verify a durable-state snapshot file instead of a trace")
	flag.Parse()

	if *snapshot != "" {
		os.Exit(checkSnapshot(*snapshot))
	}

	var h trace.Header
	var events []trace.Event
	var err error

	switch {
	case *selftest:
		h, events = recordSelftest()
	case flag.NArg() == 1:
		f, ferr := os.Open(flag.Arg(0))
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "urbcheck: %v\n", ferr)
			os.Exit(2)
		}
		defer f.Close()
		h, events, err = trace.Read(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbcheck: %v\n", err)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: urbcheck [-truncated] trace.jsonl | urbcheck -selftest | urbcheck -snapshot snapshot.bin")
		os.Exit(2)
	}

	checker := trace.NewChecker(h.N, h.Crashed)
	checker.CheckConvergent = !*truncated
	rep := checker.Check(events)
	fmt.Printf("trace    : n=%d, %d events, %d broadcasts, %d deliveries (%d fast)\n",
		h.N, len(events), rep.Broadcast, rep.TotalDeliveries, rep.FastDeliveries)
	if rep.OK() {
		fmt.Println("verdict  : all URB properties hold")
		return
	}
	fmt.Printf("verdict  : %d violation(s)\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  - %s\n", v.Error())
	}
	os.Exit(1)
}

// checkSnapshot decodes and verifies a durable-state snapshot and
// returns the process exit code: 0 for a healthy snapshot, 1 for
// corruption or a version/kind mismatch, 2 for unreadable input.
func checkSnapshot(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urbcheck: %v\n", err)
		return 2
	}
	// A store container (snapshot.bin) wraps the payload in framing and
	// a checksum of its own; unwrap it first so both layers get checked.
	if store.IsSnapshotFile(data) {
		payload, err := store.ParseSnapshotFile(data)
		if err != nil {
			fmt.Printf("snapshot : %s (%d bytes, store container)\n", path, len(data))
			fmt.Printf("verdict  : CORRUPT — %v\n", err)
			return 1
		}
		fmt.Printf("snapshot : %s (%d bytes, store container; payload %d bytes)\n", path, len(data), len(payload))
		data = payload
	} else {
		fmt.Printf("snapshot : %s (%d bytes, raw payload)\n", path, len(data))
	}
	info, err := urb.VerifySnapshot(data)
	if err != nil {
		switch {
		case errors.Is(err, urb.ErrSnapshotVersion):
			fmt.Printf("verdict  : VERSION MISMATCH — codec version %d is not supported\n", info.Version)
		case errors.Is(err, urb.ErrSnapshotCorrupt):
			fmt.Println("verdict  : CORRUPT — recomputed fingerprint digest does not match the stored one")
		default:
			fmt.Printf("verdict  : CORRUPT — %v\n", err)
		}
		return 1
	}
	fmt.Printf("kind     : %s (codec v%d)\n", info.Kind, info.Version)
	if info.Kind == "majority" {
		fmt.Printf("system   : n=%d, threshold=%d\n", info.N, info.Threshold)
	}
	fmt.Printf("config   : %+v\n", info.Config)
	fmt.Printf("state    : msgs=%d delivered=%d acked=%d ackEntries=%d retired=%d draws=%d\n",
		info.Stats.MsgSet, info.Stats.Delivered, info.Stats.MyAcks,
		info.Stats.AckEntries, info.Stats.Retired, info.Draws)
	fmt.Printf("digest   : %016x (recomputed fingerprint digest matches)\n", info.Digest)
	fmt.Println("verdict  : snapshot is healthy")
	return 0
}

// recordSelftest runs a small lossy scenario with crashes and returns its
// trace.
func recordSelftest() (trace.Header, []trace.Event) {
	const n = 5
	rec := trace.NewRecorder(trace.Options{Wire: true})
	res := sim.NewEngine(sim.Config{
		N: n,
		Factory: func(env sim.Env) urb.Process {
			return urb.NewMajority(n, env.Tags, urb.Config{})
		},
		Link:    channel.Bernoulli{P: 0.25, D: channel.UniformDelay{Min: 1, Max: 5}},
		Seed:    2015,
		MaxTime: 100_000,
		CrashAt: []sim.Time{sim.Never, sim.Never, sim.Never, 60, 80},
		Broadcasts: []sim.ScheduledBroadcast{
			{At: 5, Proc: 0, Body: []byte("selftest-a")},
			{At: 9, Proc: 1, Body: []byte("selftest-b")},
		},
		Observers:        []sim.Observer{rec},
		ExpectDeliveries: 2,
	}).Run()
	return trace.Header{Version: 1, N: n, Crashed: res.Crashed}, rec.Events()
}
