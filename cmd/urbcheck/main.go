// Command urbcheck verifies a recorded run against the URB specification:
// validity, uniform agreement, uniform integrity, the crash model and
// channel integrity (see internal/trace). With -snapshot it instead
// verifies a saved durable-state snapshot (DESIGN.md §9): the codec
// version, the structure, and the embedded fingerprint digest.
//
// Usage:
//
//	urbcheck trace.jsonl          # verify a trace file
//	urbsim ... -trace out.jsonl && urbcheck out.jsonl
//	urbcheck -selftest            # record a fresh run and verify it
//	urbcheck -snapshot snapshot.bin   # verify a durable-state snapshot
//	urbcheck -explain             # stall-explainer demo on a partitioned cluster
//	urbcheck -chrometrace t.json  # validate a Chrome trace-event export
//
// -snapshot accepts both a store container file (a File store's
// snapshot.bin) and a raw snapshot payload (urb.Snapshotter output).
//
// -explain runs a built-in majority cluster whose broadcast stalls — a
// majority of the ackers is partitioned away — and prints the stall
// explainer's report (DESIGN.md §14): which delivery evidence is
// missing, named exactly. Exit 0 iff the explainer names the shortfall.
//
// -chrometrace re-parses a Chrome trace-event JSON file (as written by
// urbsim -trace-out or served at /trace.json) and validates it: valid
// JSON, required fields, per-process monotone timestamps.
//
// Exit status: 0 if all properties hold, 1 otherwise (2 on usage or
// unreadable input).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"anonurb/internal/channel"
	"anonurb/internal/obs"
	"anonurb/internal/sim"
	"anonurb/internal/store"
	"anonurb/internal/trace"
	"anonurb/internal/urb"
	"anonurb/internal/wire"
)

func main() {
	selftest := flag.Bool("selftest", false, "record a run in-process and verify it")
	truncated := flag.Bool("truncated", false, "trace is a run prefix: skip the eventual properties")
	snapshot := flag.String("snapshot", "", "verify a durable-state snapshot file instead of a trace")
	explain := flag.Bool("explain", false, "run the stall-explainer demo: a partitioned cluster, the report names the missing evidence")
	chrometrace := flag.String("chrometrace", "", "validate a Chrome trace-event JSON file instead of a trace")
	flag.Parse()

	if *snapshot != "" {
		os.Exit(checkSnapshot(*snapshot))
	}
	if *explain {
		os.Exit(explainDemo())
	}
	if *chrometrace != "" {
		os.Exit(checkChromeTrace(*chrometrace))
	}

	var h trace.Header
	var events []trace.Event
	var err error

	switch {
	case *selftest:
		h, events = recordSelftest()
	case flag.NArg() == 1:
		f, ferr := os.Open(flag.Arg(0))
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "urbcheck: %v\n", ferr)
			os.Exit(2)
		}
		defer f.Close()
		h, events, err = trace.Read(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbcheck: %v\n", err)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: urbcheck [-truncated] trace.jsonl | urbcheck -selftest | urbcheck -snapshot snapshot.bin")
		os.Exit(2)
	}

	checker := trace.NewChecker(h.N, h.Crashed)
	checker.CheckConvergent = !*truncated
	rep := checker.Check(events)
	fmt.Printf("trace    : n=%d, %d events, %d broadcasts, %d deliveries (%d fast)\n",
		h.N, len(events), rep.Broadcast, rep.TotalDeliveries, rep.FastDeliveries)
	if rep.OK() {
		fmt.Println("verdict  : all URB properties hold")
		return
	}
	fmt.Printf("verdict  : %d violation(s)\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  - %s\n", v.Error())
	}
	os.Exit(1)
}

// checkSnapshot decodes and verifies a durable-state snapshot and
// returns the process exit code: 0 for a healthy snapshot, 1 for
// corruption or a version/kind mismatch, 2 for unreadable input.
func checkSnapshot(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urbcheck: %v\n", err)
		return 2
	}
	// A store container (snapshot.bin) wraps the payload in framing and
	// a checksum of its own; unwrap it first so both layers get checked.
	if store.IsSnapshotFile(data) {
		payload, err := store.ParseSnapshotFile(data)
		if err != nil {
			fmt.Printf("snapshot : %s (%d bytes, store container)\n", path, len(data))
			fmt.Printf("verdict  : CORRUPT — %v\n", err)
			return 1
		}
		fmt.Printf("snapshot : %s (%d bytes, store container; payload %d bytes)\n", path, len(data), len(payload))
		data = payload
	} else {
		fmt.Printf("snapshot : %s (%d bytes, raw payload)\n", path, len(data))
	}
	info, err := urb.VerifySnapshot(data)
	if err != nil {
		switch {
		case errors.Is(err, urb.ErrSnapshotVersion):
			fmt.Printf("verdict  : VERSION MISMATCH — codec version %d is not supported\n", info.Version)
		case errors.Is(err, urb.ErrSnapshotCorrupt):
			fmt.Println("verdict  : CORRUPT — recomputed fingerprint digest does not match the stored one")
		default:
			fmt.Printf("verdict  : CORRUPT — %v\n", err)
		}
		return 1
	}
	fmt.Printf("kind     : %s (codec v%d)\n", info.Kind, info.Version)
	if info.Kind == "majority" {
		fmt.Printf("system   : n=%d, threshold=%d\n", info.N, info.Threshold)
	}
	fmt.Printf("config   : %+v\n", info.Config)
	fmt.Printf("state    : msgs=%d delivered=%d acked=%d ackEntries=%d retired=%d draws=%d\n",
		info.Stats.MsgSet, info.Stats.Delivered, info.Stats.MyAcks,
		info.Stats.AckEntries, info.Stats.Retired, info.Draws)
	fmt.Printf("digest   : %016x (recomputed fingerprint digest matches)\n", info.Digest)
	fmt.Println("verdict  : snapshot is healthy")
	return 0
}

// explainDemo runs the stall scenario and prints the explainer's
// report, returning the exit code.
func explainDemo() int {
	ex, ok := runExplainDemo()
	fmt.Printf("scenario : n=5 majority, 3 processes partitioned away before the broadcast\n")
	fmt.Println(ex)
	if !ok {
		fmt.Println("verdict  : explainer FAILED to name the missing evidence")
		return 1
	}
	fmt.Printf("verdict  : stall explained — %d/%d ackers, %d more needed for the majority guard\n",
		ex.Ackers, ex.Need, ex.Need-ex.Ackers)
	return 0
}

// runExplainDemo builds a 5-process majority cluster, partitions 3
// processes away (as crashes at t=1, before the broadcast at t=5), runs
// the simulator to its horizon and asks the broadcaster's process to
// explain the undelivered message. ok reports whether the explanation
// names the evidence shortfall: known, not delivered, ackers < need.
func runExplainDemo() (ex obs.Explanation, ok bool) {
	const n = 5
	var procs []*urb.Majority
	lifecycle := sim.NewTraceObserver(0)
	res := sim.NewEngine(sim.Config{
		N: n,
		Factory: func(env sim.Env) urb.Process {
			p := urb.NewMajority(n, env.Tags, urb.Config{})
			procs = append(procs, p)
			return p
		},
		Link:       channel.Bernoulli{P: 0, D: channel.UniformDelay{Min: 1, Max: 2}},
		Seed:       2015,
		MaxTime:    2_000,
		CrashAt:    []sim.Time{sim.Never, sim.Never, 1, 1, 1},
		Broadcasts: []sim.ScheduledBroadcast{{At: 5, Proc: 0, Body: []byte("stalled")}},
		Observers:  []sim.Observer{lifecycle},
	}).Run()
	var id wire.MsgID
	for _, e := range lifecycle.Events() {
		if e.Kind == obs.EvBroadcast {
			id = e.Msg
		}
	}
	for _, ds := range res.Deliveries {
		if len(ds) != 0 {
			return ex, false // a partitioned majority must not deliver
		}
	}
	ex = procs[0].Explain(id)
	return ex, ex.Known && ex.Stalled() && ex.Ackers > 0 && ex.Ackers < ex.Need
}

// checkChromeTrace validates a Chrome trace-event JSON export and
// returns the exit code.
func checkChromeTrace(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urbcheck: %v\n", err)
		return 2
	}
	defer f.Close()
	tr, err := obs.ReadChromeTrace(f)
	if err != nil {
		fmt.Printf("verdict  : INVALID — %v\n", err)
		return 1
	}
	if err := obs.CheckChromeTrace(tr); err != nil {
		fmt.Printf("trace    : %d events\n", len(tr.TraceEvents))
		fmt.Printf("verdict  : INVALID — %v\n", err)
		return 1
	}
	fmt.Printf("trace    : %d events\n", len(tr.TraceEvents))
	fmt.Println("verdict  : valid Chrome trace-event JSON, per-process timestamps monotone")
	return 0
}

// recordSelftest runs a small lossy scenario with crashes and returns its
// trace.
func recordSelftest() (trace.Header, []trace.Event) {
	const n = 5
	rec := trace.NewRecorder(trace.Options{Wire: true})
	res := sim.NewEngine(sim.Config{
		N: n,
		Factory: func(env sim.Env) urb.Process {
			return urb.NewMajority(n, env.Tags, urb.Config{})
		},
		Link:    channel.Bernoulli{P: 0.25, D: channel.UniformDelay{Min: 1, Max: 5}},
		Seed:    2015,
		MaxTime: 100_000,
		CrashAt: []sim.Time{sim.Never, sim.Never, sim.Never, 60, 80},
		Broadcasts: []sim.ScheduledBroadcast{
			{At: 5, Proc: 0, Body: []byte("selftest-a")},
			{At: 9, Proc: 1, Body: []byte("selftest-b")},
		},
		Observers:        []sim.Observer{rec},
		ExpectDeliveries: 2,
	}).Run()
	return trace.Header{Version: 1, N: n, Crashed: res.Crashed}, rec.Events()
}
