// Command urbbench regenerates the full evaluation suite: every table
// (T1-T4) and figure (F1-F6) listed in DESIGN.md §4, printed as aligned
// text (default) or CSV.
//
// Usage:
//
//	urbbench [-quick] [-csv] [-seed N] [-only T1,F2,...]
//
// The output of a full run is what EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"anonurb/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced sweeps (CI sizes)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	seed := flag.Uint64("seed", 2015, "base seed for every experiment (2015: the paper's year)")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. T1,F2); empty = all")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	params := harness.Params{Seed: *seed, Quick: *quick}
	ran := 0
	for _, exp := range harness.AllExperiments() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		start := time.Now()
		table := exp.Gen(params)
		ran++
		if *csv {
			fmt.Printf("# %s\n%s\n", table.Title, table.CSV())
		} else {
			fmt.Println(table.Render())
			fmt.Printf("(%s generated in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "urbbench: no experiment matched %q\n", *only)
		os.Exit(2)
	}
}
