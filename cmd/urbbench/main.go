// Command urbbench regenerates the evaluation artefacts.
//
// Default mode regenerates the full simulator suite: every table
// (T1-T4) and figure (F1-F6) listed in DESIGN.md §4, printed as aligned
// text (default) or CSV.
//
// Batching mode (-batching) instead runs the live-runtime batching
// benchmark: each workload of the {majority, quiescent} × {mesh, udp} ×
// n matrix runs twice — batched sending off, then on — and the frames,
// bytes and allocations per URB-delivered message are compared. The
// JSON written with -out is what BENCH_batching.json records.
//
// Recovery mode (-recovery) measures the durable-state subsystem
// (DESIGN.md §9): checkpoint and WAL overhead per delivered message
// while a file-backed node runs, and the restart cost — recovery latency
// vs WAL length, catch-up time, zero re-deliveries — when it is killed
// and restarted from its store. The JSON written with -out is what
// BENCH_recovery.json records.
//
// Fairness mode (-fairness) runs the flow-fairness admission benchmark
// (DESIGN.md §11): every scenario of the fairness matrix — uniform
// controls, Zipf, burst trains, adversarial flood — runs twice, FIFO
// admission then fair admission, and the deadline-bounded victim losses
// are compared. The JSON written with -out is what BENCH_fairness.json
// records.
//
// Churn mode (-churn) runs the membership-churn benchmark (DESIGN.md
// §13): heartbeat-stack clusters accumulate pre-join history of varying
// size, a fresh node joins through the real SNAPREQ/SNAPCHUNK snapshot
// transfer, and join latency, catch-up bytes and post-join convergence
// are measured under both ACK encodings — with a hard gate that no
// process ever re-delivers (the joiner's adopted history included). The
// JSON written with -out is what BENCH_churn.json records.
//
// Nemesis mode (-nemesis) runs the staged fault campaigns (DESIGN.md
// §15): every campaign preset — split/heal partitions, asymmetric
// cuts, crash-recover storms with torn WALs, churn mid-partition —
// under both algorithm stacks in the simulator plus one live-cluster
// cell, with hard gates: uniform agreement within the heal deadline
// after the last fault lifts, zero re-deliveries anywhere, no pending
// joins. A deliberately broken campaign (heal deadline zero) then
// checks the failure machinery itself: its report must name the
// campaign stage each stalled message was born under. The JSON written
// with -out is what BENCH_nemesis.json records.
//
// Obs mode (-obs) runs the observability overhead benchmark (DESIGN.md
// §14): every workload of the obs matrix runs twice — lifecycle tracing
// off (the production default), then on — and the steady-state frames
// and wall time per delivered message are compared. The gate is hard:
// tracing must not change the wire traffic at all (frames ratio 1.0)
// and must cost no more than 5% throughput. The JSON written with -out
// is what BENCH_obs.json records.
//
// Usage:
//
//	urbbench [-quick] [-csv] [-seed N] [-only T1,F2,...]
//	urbbench -list
//	urbbench -batching [-quick] [-seed N] [-out BENCH_batching.json]
//	urbbench -recovery [-quick] [-seed N] [-out BENCH_recovery.json]
//	urbbench -fairness [-quick] [-seed N] [-out BENCH_fairness.json]
//	urbbench -churn [-quick] [-seed N] [-out BENCH_churn.json]
//	urbbench -nemesis [-quick] [-seed N] [-out BENCH_nemesis.json]
//	urbbench -obs [-quick] [-seed N] [-out BENCH_obs.json]
//
// Every mode accepts -cpuprofile and -memprofile, writing pprof
// profiles of the run so perf work can attach evidence without ad-hoc
// harnesses (the heap profile is written at exit, after a forced GC).
//
// The output of a full run is what EXPERIMENTS.md records.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"anonurb/internal/bench"
	"anonurb/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced sweeps (CI sizes)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	seed := flag.Uint64("seed", 2015, "base seed for every experiment (2015: the paper's year)")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. T1,F2); empty = all")
	batching := flag.Bool("batching", false, "run the batching benchmark matrix instead of the table/figure suite")
	recovery := flag.Bool("recovery", false, "run the crash-recovery benchmark matrix instead of the table/figure suite")
	fairness := flag.Bool("fairness", false, "run the flow-fairness admission benchmark matrix instead of the table/figure suite")
	churn := flag.Bool("churn", false, "run the membership-churn benchmark matrix instead of the table/figure suite")
	nemesisMode := flag.Bool("nemesis", false, "run the staged fault-campaign matrix instead of the table/figure suite")
	obs := flag.Bool("obs", false, "run the observability overhead benchmark (tracing on vs off) instead of the table/figure suite")
	list := flag.Bool("list", false, "list the available modes and exit")
	out := flag.String("out", "", "with a benchmark mode: write the results as JSON to this file")
	baseline := flag.String("baseline", "", "with -batching: fail if frames-, allocs- or beat-bytes-per-delivery regresses >25% against this checked-in results file")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	// exit routes every termination through the profile writers (the
	// benchmark modes return codes rather than calling os.Exit directly,
	// so deferred writers would be skipped).
	exit := func(code int) {
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "urbbench: memprofile: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // profile retained state, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "urbbench: memprofile: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		os.Exit(code)
	}

	// Mode dispatch. Exactly one mode may be selected, and leftover
	// positional arguments are an error: a typo like `urbbench batching`
	// or `urbbench -batching -recovery` must fail loudly, not silently
	// run the (expensive) default suite or an arbitrary winner.
	modes := []struct {
		name string
		on   bool
		desc string
	}{
		{"suite", !*batching && !*recovery && !*fairness && !*churn && !*nemesisMode && !*obs, "tables T1-T4 and figures F1-F6 from the simulator (default)"},
		{"-batching", *batching, "live-runtime batching benchmark (BENCH_batching.json)"},
		{"-recovery", *recovery, "durable-state crash-recovery benchmark (BENCH_recovery.json)"},
		{"-fairness", *fairness, "flow-fairness admission benchmark (BENCH_fairness.json)"},
		{"-churn", *churn, "membership-churn join/leave benchmark (BENCH_churn.json)"},
		{"-nemesis", *nemesisMode, "staged fault-campaign matrix with convergence gates (BENCH_nemesis.json)"},
		{"-obs", *obs, "observability tracing overhead benchmark (BENCH_obs.json)"},
	}
	if *list {
		for _, m := range modes {
			fmt.Printf("%-10s %s\n", m.name, m.desc)
		}
		exit(0)
	}
	usage := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "urbbench: "+format+"\n", a...)
		fmt.Fprintln(os.Stderr, "usage: urbbench [-quick] [-seed N] [mode flag]; urbbench -list shows modes")
		exit(2)
	}
	var selected []string
	for _, m := range modes[1:] {
		if m.on {
			selected = append(selected, m.name)
		}
	}
	if len(selected) > 1 {
		usage("conflicting modes %s: pick one", strings.Join(selected, " "))
	}
	if flag.NArg() > 0 {
		usage("unexpected arguments %q (modes are flags, e.g. -%s)",
			flag.Args(), strings.TrimPrefix(flag.Arg(0), "-"))
	}
	if len(selected) == 1 {
		if *csv || *only != "" {
			usage("-csv and -only apply to the table/figure suite (use -out for machine-readable JSON)")
		}
		if *baseline != "" && !*batching {
			usage("-baseline applies only to -batching mode")
		}
	}
	if *batching {
		exit(runBatching(*seed, *quick, *out, *baseline))
	}
	if *recovery {
		exit(runRecovery(*seed, *quick, *out))
	}
	if *fairness {
		exit(runFairness(*seed, *quick, *out))
	}
	if *churn {
		exit(runChurn(*seed, *quick, *out))
	}
	if *nemesisMode {
		exit(runNemesis(*seed, *quick, *out))
	}
	if *obs {
		exit(runObs(*seed, *quick, *out))
	}
	if *out != "" || *baseline != "" {
		usage("-out and -baseline apply only to the benchmark modes")
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	params := harness.Params{Seed: *seed, Quick: *quick}
	ran := 0
	for _, exp := range harness.AllExperiments() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		start := time.Now()
		table := exp.Gen(params)
		ran++
		if *csv {
			fmt.Printf("# %s\n%s\n", table.Title, table.CSV())
		} else {
			fmt.Println(table.Render())
			fmt.Printf("(%s generated in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "urbbench: no experiment matched %q\n", *only)
		exit(2)
	}
}

// batchingReport is the JSON document -batching -out writes. Schema v2
// added the ack-encoding comparisons and the ack_bytes /
// inbox_overflows counters inside every result; schema v3 adds the
// compaction and beat-encoding comparisons plus the steady-state
// heap/retained-label counters (DESIGN.md §10).
type batchingReport struct {
	Schema      string             `json:"schema"`
	Seed        uint64             `json:"seed"`
	Quick       bool               `json:"quick"`
	GoVersion   string             `json:"go_version"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	NumCPU      int                `json:"num_cpu"`
	GeneratedAt string             `json:"generated_at"`
	Comparisons []bench.Comparison `json:"comparisons"`
	// AckEncoding compares delta against full-set labeled ACKs on the
	// quiescent cells (DESIGN.md §8).
	AckEncoding []bench.AckComparison `json:"ack_encoding,omitempty"`
	// Compaction compares compacted against uncompacted steady state on
	// the mesh quiescent cells (DESIGN.md §10).
	Compaction []bench.CompactionComparison `json:"compaction,omitempty"`
	// BeatEncoding compares delta against legacy beat streams on the
	// heartbeat-stack cells (DESIGN.md §10).
	BeatEncoding []bench.BeatComparison `json:"beat_encoding,omitempty"`
}

// runBatching executes the batching benchmark matrix and returns the
// process exit code.
func runBatching(seed uint64, quick bool, out, baseline string) int {
	// Warm the runtime before measuring: netpoll init (first UDP
	// socket), timer wheels and heap growth are one-time costs that
	// would otherwise land in the first cell's allocation delta —
	// always on its unbatched run, biasing AllocsRatio.
	for _, net := range []bench.Net{bench.NetMesh, bench.NetUDP} {
		_, _ = bench.Run(bench.Workload{
			Algo: bench.AlgoMajority, Net: net, N: 3, Messages: 1,
			Batching: true, TickEvery: 5 * time.Millisecond, SteadyTicks: 1,
			Seed: seed, Timeout: 30 * time.Second,
		})
	}

	matrix := bench.Matrix(seed, quick)
	report := batchingReport{
		Schema:      "anonurb-bench-batching/v3",
		Seed:        seed,
		Quick:       quick,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Printf("%-22s %10s %10s %9s %9s %9s %10s\n",
		"workload", "frames/d", "frames/d", "frames", "bytes", "allocs", "oversized")
	fmt.Printf("%-22s %10s %10s %9s %9s %9s %10s\n",
		"", "(off)", "(on)", "improv.", "ratio", "ratio", "(on)")
	failed := false
	for _, w := range matrix {
		start := time.Now()
		c, err := bench.Compare(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: %s: %v\n", w, err)
			failed = true
			continue
		}
		offFrames, onFrames := c.Off.SteadyFramesPerDelivery, c.On.SteadyFramesPerDelivery
		if w.Algo == bench.AlgoQuiescent {
			offFrames, onFrames = c.Off.FramesPerDelivery, c.On.FramesPerDelivery
		}
		fmt.Printf("%-22s %10.1f %10.1f %8.2fx %9.4f %9.3f %10d   (%v)\n",
			c.Name, offFrames, onFrames, c.FramesImprovement, c.BytesRatio,
			c.AllocsRatio, c.On.Oversized, time.Since(start).Round(time.Millisecond))
		report.Comparisons = append(report.Comparisons, c)
	}

	// Ack-encoding phase: delta versus full-set labeled ACKs on the
	// quiescent cells (batching on in both runs). The batching phase
	// above already measured each cell's batched delta run — reuse it
	// instead of re-executing the workload (the large quiescent cells
	// cost real wall-clock).
	measured := make(map[string]bench.Result, len(report.Comparisons))
	for _, c := range report.Comparisons {
		if c.On.Workload.Algo == bench.AlgoQuiescent {
			measured[c.Name] = c.On
		}
	}
	fmt.Printf("\n%-22s %12s %12s %9s %9s %10s %10s\n",
		"ack encoding", "ackB/d", "ackB/d", "ackB", "frames", "quiesce", "overflows")
	fmt.Printf("%-22s %12s %12s %9s %9s %10s %10s\n",
		"", "(full)", "(delta)", "improv.", "improv.", "improv.", "full→delta")
	for _, w := range bench.AckMatrix(seed, quick) {
		start := time.Now()
		var a bench.AckComparison
		var err error
		if delta, ok := measured[fmt.Sprintf("%s/%s/n=%d", w.Algo, w.Net, w.N)]; ok {
			a, err = bench.CompareAckEncodingAgainst(w, delta)
		} else {
			a, err = bench.CompareAckEncoding(w)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: ack-encoding %s: %v\n", w, err)
			failed = true
			continue
		}
		fmt.Printf("%-22s %12.1f %12.1f %8.2fx %8.2fx %9.2fx %5d→%-5d (%v)\n",
			a.Name, a.FullSet.AckBytesPerDelivery, a.Delta.AckBytesPerDelivery,
			a.AckBytesImprovement, a.FramesImprovement, a.QuiescenceImprovement,
			a.FullSet.InboxOverflows, a.Delta.InboxOverflows,
			time.Since(start).Round(time.Millisecond))
		report.AckEncoding = append(report.AckEncoding, a)
	}

	// Compaction phase: compacted versus uncompacted steady state on the
	// mesh quiescent cells. The batching phase's batched delta runs are
	// the compacted side — reuse them.
	fmt.Printf("\n%-22s %12s %12s %9s %9s %9s %9s\n",
		"compaction", "labels", "labels", "storage", "heap", "allocs", "quiesce")
	fmt.Printf("%-22s %12s %12s %9s %9s %9s %9s\n",
		"", "(plain)", "(compact)", "improv.", "ratio", "ratio", "ratio")
	for _, w := range bench.CompactionMatrix(seed, quick) {
		start := time.Now()
		var cc bench.CompactionComparison
		var err error
		if compacted, ok := measured[fmt.Sprintf("%s/%s/n=%d", w.Algo, w.Net, w.N)]; ok {
			cc, err = bench.CompareCompactionAgainst(w, compacted)
		} else {
			cc, err = bench.CompareCompaction(w)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: compaction %s: %v\n", w, err)
			failed = true
			continue
		}
		fmt.Printf("%-22s %12d %12d %8.2fx %9.3f %9.3f %9.3f   (%v)\n",
			cc.Name, cc.Uncompacted.AckLabelStorage, cc.Compacted.AckLabelStorage,
			cc.LabelStorageImprovement, cc.HeapRatio, cc.AllocsRatio, cc.QuiescenceRatio,
			time.Since(start).Round(time.Millisecond))
		report.Compaction = append(report.Compaction, cc)
	}

	// Beat-encoding phase: the heartbeat stack's steady detector traffic,
	// delta BEATΔ streams versus legacy full beats (DESIGN.md §10).
	fmt.Printf("\n%-22s %12s %12s %9s %9s %9s\n",
		"beat encoding", "beatB/win", "beatB/win", "beatB", "frameB", "frameB")
	fmt.Printf("%-22s %12s %12s %9s %9s %9s\n",
		"", "(legacy)", "(delta)", "improv.", "(legacy)", "(delta)")
	for _, w := range bench.BeatMatrix(seed, quick) {
		start := time.Now()
		bc, err := bench.CompareBeatEncoding(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: beat-encoding %s: %v\n", w, err)
			failed = true
			continue
		}
		fmt.Printf("%-22s %12.0f %12.0f %8.2fx %9.1f %9.1f   (%v)\n",
			bc.Name, bc.Legacy.SteadyBeatBytes, bc.Delta.SteadyBeatBytes,
			bc.BeatBytesImprovement, bc.LegacyBeatFrameB, bc.DeltaBeatFrameB,
			time.Since(start).Round(time.Millisecond))
		report.BeatEncoding = append(report.BeatEncoding, bc)
	}

	if baseline != "" {
		if err := checkBaseline(baseline, report); err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: baseline regression: %v\n", err)
			failed = true
		} else {
			fmt.Printf("\nno frames/allocs/beat-bytes per-delivery regression >%d%% against %s\n", int(regressionTolerance*100-100), baseline)
		}
	}

	// Write whatever completed even when some workloads failed: hours of
	// measurement should not vanish because one cell timed out.
	if out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: marshal: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: write %s: %v\n", out, err)
			return 1
		}
		fmt.Printf("\nwrote %s (%d comparisons)\n", out, len(report.Comparisons))
	}
	if failed {
		return 1
	}
	return 0
}

// recoveryReport is the JSON document -recovery -out writes.
type recoveryReport struct {
	Schema      string                 `json:"schema"`
	Seed        uint64                 `json:"seed"`
	Quick       bool                   `json:"quick"`
	GoVersion   string                 `json:"go_version"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	NumCPU      int                    `json:"num_cpu"`
	GeneratedAt string                 `json:"generated_at"`
	Results     []bench.RecoveryResult `json:"results"`
}

// runRecovery executes the crash-recovery benchmark matrix and returns
// the process exit code.
func runRecovery(seed uint64, quick bool, out string) int {
	report := recoveryReport{
		Schema:      "anonurb-bench-recovery/v1",
		Seed:        seed,
		Quick:       quick,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("%-36s %8s %9s %9s %8s %9s %9s %7s\n",
		"workload", "ckptB/d", "walB/d", "walRecs", "snapB", "recovMS", "catchMS", "redeliv")
	failed := false
	for _, w := range bench.RecoveryMatrix(seed, quick) {
		start := time.Now()
		r, err := bench.RunRecovery(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: %s: %v\n", w, err)
			failed = true
			continue
		}
		fmt.Printf("%-36s %8.1f %9.1f %9d %8d %9.2f %9.2f %7d   (%v)\n",
			w, r.CheckpointBytesPerDelivery, r.WALBytesPerDelivery,
			r.WALRecordsReplayed, r.SnapshotBytesReplayed,
			r.RecoveryMS, r.CatchupMS, r.Redelivered,
			time.Since(start).Round(time.Millisecond))
		if r.Redelivered != 0 {
			fmt.Fprintf(os.Stderr, "urbbench: %s: recovered node re-delivered %d messages\n", w, r.Redelivered)
			failed = true
		}
		report.Results = append(report.Results, r)
	}
	if out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: marshal: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: write %s: %v\n", out, err)
			return 1
		}
		fmt.Printf("\nwrote %s (%d results)\n", out, len(report.Results))
	}
	if failed {
		return 1
	}
	return 0
}

// fairnessReport is the JSON document -fairness -out writes.
type fairnessReport struct {
	Schema      string                     `json:"schema"`
	Seed        uint64                     `json:"seed"`
	Quick       bool                       `json:"quick"`
	GoVersion   string                     `json:"go_version"`
	GOOS        string                     `json:"goos"`
	GOARCH      string                     `json:"goarch"`
	NumCPU      int                        `json:"num_cpu"`
	GeneratedAt string                     `json:"generated_at"`
	Comparisons []bench.FairnessComparison `json:"comparisons"`
}

// runFairness executes the flow-fairness benchmark matrix and returns
// the process exit code. Beyond running the matrix it enforces the
// design's own bars: the uniform controls must show zero damage and
// zero demotions, and the flood must show the fair stage protecting the
// victims (fewer deadline losses than the FIFO baseline).
func runFairness(seed uint64, quick bool, out string) int {
	report := fairnessReport{
		Schema:      "anonurb-bench-fairness/v1",
		Seed:        seed,
		Quick:       quick,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("%-16s %14s %14s %9s %9s %9s %8s\n",
		"scenario", "victim lost", "victim lost", "improv.", "demoted", "false", "split")
	fmt.Printf("%-16s %14s %14s %9s %9s %9s %8s\n",
		"", "(fifo)", "(fair)", "", "flows", "demot.", "frames")
	failed := false
	for _, sc := range bench.FairnessMatrix(seed, quick) {
		start := time.Now()
		c, err := bench.CompareFairness(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: fairness %s: %v\n", sc.Name, err)
			failed = true
			continue
		}
		fmt.Printf("%-16s %8d/%-5d %8d/%-5d %8.1fx %9d %9d %8d   (%v)\n",
			sc.Name,
			c.Baseline.VictimLost, c.Baseline.VictimExpected,
			c.FairRun.VictimLost, c.FairRun.VictimExpected,
			c.VictimLossImprovement, c.FairRun.DemotedFlows,
			c.FairRun.FalseDemotions, c.FairRun.SplitFrames,
			time.Since(start).Round(time.Millisecond))
		switch {
		case strings.HasPrefix(sc.Name, "uniform") && !c.ZeroDamage:
			fmt.Fprintf(os.Stderr, "urbbench: fairness %s: fair stage damaged a uniform workload: %+v\n", sc.Name, c.FairRun)
			failed = true
		case c.FairRun.FalseDemotions != 0:
			fmt.Fprintf(os.Stderr, "urbbench: fairness %s: %d false demotions\n", sc.Name, c.FairRun.FalseDemotions)
			failed = true
		case sc.Name == "flood" && c.FairRun.VictimLost >= c.Baseline.VictimLost && c.Baseline.VictimLost > 0:
			fmt.Fprintf(os.Stderr, "urbbench: fairness %s: fair stage did not protect victims (%d lost vs %d)\n",
				sc.Name, c.FairRun.VictimLost, c.Baseline.VictimLost)
			failed = true
		}
		report.Comparisons = append(report.Comparisons, c)
	}
	if out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: marshal: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: write %s: %v\n", out, err)
			return 1
		}
		fmt.Printf("\nwrote %s (%d comparisons)\n", out, len(report.Comparisons))
	}
	if failed {
		return 1
	}
	return 0
}

// churnReport is the JSON document -churn -out writes.
type churnReport struct {
	Schema      string              `json:"schema"`
	Seed        uint64              `json:"seed"`
	Quick       bool                `json:"quick"`
	GoVersion   string              `json:"go_version"`
	GOOS        string              `json:"goos"`
	GOARCH      string              `json:"goarch"`
	NumCPU      int                 `json:"num_cpu"`
	GeneratedAt string              `json:"generated_at"`
	Results     []bench.ChurnResult `json:"results"`
}

// runChurn executes the membership-churn benchmark matrix and returns
// the process exit code. Latency and byte figures are reported; the
// uniformity bar is enforced: any re-delivery anywhere — the joiner's
// adopted history above all — fails the run.
func runChurn(seed uint64, quick bool, out string) int {
	report := churnReport{
		Schema:      "anonurb-bench-churn/v1",
		Seed:        seed,
		Quick:       quick,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("%-14s %10s %12s %10s %11s %11s %8s\n",
		"scenario", "snapshot", "catchup", "join", "converge", "deliveries", "redeliv")
	failed := false
	for _, sc := range bench.ChurnMatrix(seed, quick) {
		r, err := bench.RunChurn(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: churn %s: %v\n", sc.Name, err)
			failed = true
			continue
		}
		fmt.Printf("%-14s %8d B %10d B %8.1fms %9.1fms %11d %8d\n",
			sc.Name, r.SnapshotBytes, r.CatchupWireBytes,
			r.JoinLatencyMS, r.ConvergeMS, r.Deliveries, r.Redelivered)
		if r.Redelivered != 0 {
			fmt.Fprintf(os.Stderr, "urbbench: churn %s: %d re-deliveries — uniformity across the join is broken\n",
				sc.Name, r.Redelivered)
			failed = true
		}
		if r.CatchupWireBytes < uint64(r.SnapshotBytes) {
			fmt.Fprintf(os.Stderr, "urbbench: churn %s: catch-up wire bytes %d below the container size %d — transfer accounting is broken\n",
				sc.Name, r.CatchupWireBytes, r.SnapshotBytes)
			failed = true
		}
		report.Results = append(report.Results, r)
	}
	if out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: marshal: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: write %s: %v\n", out, err)
			return 1
		}
		fmt.Printf("\nwrote %s (%d results)\n", out, len(report.Results))
	}
	if failed {
		return 1
	}
	return 0
}

// nemesisReport is the JSON document -nemesis -out writes.
type nemesisReport struct {
	Schema      string                `json:"schema"`
	Seed        uint64                `json:"seed"`
	Quick       bool                  `json:"quick"`
	GoVersion   string                `json:"go_version"`
	GOOS        string                `json:"goos"`
	GOARCH      string                `json:"goarch"`
	NumCPU      int                   `json:"num_cpu"`
	GeneratedAt string                `json:"generated_at"`
	Results     []bench.NemesisResult `json:"results"`
	// BrokenCampaignOK records the failure-machinery self-test: the
	// zero-deadline campaign failed as it must, with every stalled
	// message attributed to a campaign stage.
	BrokenCampaignOK bool `json:"broken_campaign_ok"`
}

// runNemesis executes the fault-campaign matrix and returns the
// process exit code. Every cell's gate is hard — agreement within the
// heal deadline, zero re-deliveries, no pending joins — and the
// broken-campaign self-test must produce a stage-named failure report.
func runNemesis(seed uint64, quick bool, out string) int {
	report := nemesisReport{
		Schema:      "anonurb-bench-nemesis/v1",
		Seed:        seed,
		Quick:       quick,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("%-26s %6s %12s %10s %8s %7s %7s\n",
		"campaign", "gate", "heal-latency", "deadline", "redeliv", "surviv", "stalls")
	failed := false
	for _, sc := range bench.NemesisMatrix(seed) {
		r, err := bench.RunNemesis(sc, quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: nemesis %s: %v\n", sc.Name, err)
			failed = true
			continue
		}
		gate := "PASS"
		if !r.Passed {
			gate = "FAIL"
			failed = true
		}
		fmt.Printf("%-26s %6s %10d u %8d u %8d %7d %7d\n",
			sc.Name, gate, r.HealLatencyUnits, r.DeadlineUnits,
			r.Redelivered, r.Survivors, r.Stalls)
		if !r.Passed {
			fmt.Fprintf(os.Stderr, "urbbench: nemesis %s:\n%s\n", sc.Name, r.Report)
		}
		report.Results = append(report.Results, r)
	}
	brokenReport, brokenOK, err := bench.RunNemesisBroken(seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urbbench: nemesis broken-campaign self-test: %v\n", err)
		failed = true
	} else {
		report.BrokenCampaignOK = brokenOK
		if !brokenOK {
			fmt.Fprintf(os.Stderr,
				"urbbench: nemesis: the broken campaign did not fail with stage-attributed stalls:\n%s\n",
				brokenReport)
			failed = true
		} else {
			fmt.Printf("%-26s %6s (deliberate failure correctly stage-attributed)\n",
				"sim/majority/broken", "OK")
		}
	}
	if out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: marshal: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: write %s: %v\n", out, err)
			return 1
		}
		fmt.Printf("\nwrote %s (%d results)\n", out, len(report.Results))
	}
	if failed {
		return 1
	}
	return 0
}

// obsTolerance is the tracer-on/tracer-off elapsed ratio above which
// the observability overhead gate fails: tracing may cost at most 5%
// of frames-path throughput (DESIGN.md §14). Frames get no tolerance
// at all — tracing observes steps, it never touches the wire.
const obsTolerance = 1.05

// obsRepeats is how many times each configuration runs; the comparison
// uses the fastest of each, estimating the noise floor rather than the
// noisy mean.
const obsRepeats = 3

// obsReport is the JSON document -obs -out writes.
type obsReport struct {
	Schema      string                `json:"schema"`
	Seed        uint64                `json:"seed"`
	Quick       bool                  `json:"quick"`
	GoVersion   string                `json:"go_version"`
	GOOS        string                `json:"goos"`
	GOARCH      string                `json:"goarch"`
	NumCPU      int                   `json:"num_cpu"`
	GeneratedAt string                `json:"generated_at"`
	Results     []bench.ObsComparison `json:"results"`
}

// runObs executes the observability overhead matrix and returns the
// process exit code: non-zero when tracing changed the wire traffic or
// cost more than the 5% throughput budget.
func runObs(seed uint64, quick bool, out string) int {
	report := obsReport{
		Schema:      "anonurb-bench-obs/v1",
		Seed:        seed,
		Quick:       quick,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("%-34s %10s %12s %12s %10s\n",
		"workload", "events", "frames-ratio", "elapsed-off", "elapsed-on")
	failed := false
	for _, w := range bench.ObsMatrix(seed, quick) {
		c, err := bench.CompareObsOverhead(w, obsRepeats)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: obs %s: %v\n", w.String(), err)
			failed = true
			continue
		}
		fmt.Printf("%-34s %10d %12.4f %10.1fms %8.1fms  (x%.3f)\n",
			c.Name, c.Events, c.FramesRatio, c.Off.ElapsedMS, c.On.ElapsedMS, c.ElapsedRatio)
		if c.Events == 0 {
			fmt.Fprintf(os.Stderr, "urbbench: obs %s: traced run recorded zero lifecycle events — the tracer is not wired\n", c.Name)
			failed = true
		}
		if c.FramesRatio != 1.0 {
			fmt.Fprintf(os.Stderr, "urbbench: obs %s: frames ratio %.4f != 1.0 — tracing changed the wire traffic\n",
				c.Name, c.FramesRatio)
			failed = true
		}
		if c.ElapsedRatio > obsTolerance {
			fmt.Fprintf(os.Stderr, "urbbench: obs %s: elapsed ratio %.3f exceeds the %.0f%% tracing budget\n",
				c.Name, c.ElapsedRatio, (obsTolerance-1)*100)
			failed = true
		}
		report.Results = append(report.Results, c)
	}
	if out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: marshal: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: write %s: %v\n", out, err)
			return 1
		}
		fmt.Printf("\nwrote %s (%d results)\n", out, len(report.Results))
	}
	if failed {
		return 1
	}
	return 0
}

// regressionTolerance is the frames-per-delivery ratio above which a
// cell counts as regressed against the checked-in baseline: >25% worse
// fails. Generous enough for shared-runner noise on the quick matrix,
// tight enough to catch a broken batching or delta-ACK pipeline (whose
// regressions are multiples, not percentages).
const regressionTolerance = 1.25

// onFramesBasis is the frames-per-delivery figure a comparison is
// gated on: the steady-state window for Majority (its totals include
// an unbounded dissemination phase), whole-run for Quiescent (its
// steady state is silence).
func onFramesBasis(c bench.Comparison) float64 {
	if c.On.Workload.Algo == bench.AlgoQuiescent {
		return c.On.FramesPerDelivery
	}
	return c.On.SteadyFramesPerDelivery
}

// checkBaseline compares the current run's batched frames-per-delivery,
// allocs-per-delivery and steady beat-bytes against the checked-in
// results file, cell by cell on the name intersection (a quick run
// gates against the quick-sized subset of the full baseline matrix).
// Metrics the baseline file does not carry (older schemas) are skipped,
// so the gate tightens as the baseline is regenerated.
func checkBaseline(path string, cur batchingReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base batchingReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	var regressions []string
	checked := 0
	gate := func(name, metric string, baseV, curV float64) {
		if baseV <= 0 || curV <= 0 {
			return
		}
		checked++
		if curV > baseV*regressionTolerance {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.2f %s vs baseline %.2f (+%.0f%%)",
				name, curV, metric, baseV, (curV/baseV-1)*100))
		}
	}
	byName := make(map[string]bench.Comparison, len(base.Comparisons))
	for _, c := range base.Comparisons {
		byName[c.Name] = c
	}
	for _, c := range cur.Comparisons {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		gate(c.Name, "frames/delivery", onFramesBasis(b), onFramesBasis(c))
		gate(c.Name, "allocs/delivery", b.On.AllocsPerDelivery, c.On.AllocsPerDelivery)
	}
	beatByName := make(map[string]bench.BeatComparison, len(base.BeatEncoding))
	for _, b := range base.BeatEncoding {
		beatByName[b.Name] = b
	}
	for _, c := range cur.BeatEncoding {
		b, ok := beatByName[c.Name]
		if !ok {
			continue
		}
		gate(c.Name, "beatB/window", b.Delta.SteadyBeatBytes, c.Delta.SteadyBeatBytes)
	}
	if checked == 0 {
		return fmt.Errorf("no overlapping cells between this run and %s", path)
	}
	if len(regressions) > 0 {
		return errors.New(strings.Join(regressions, "; "))
	}
	return nil
}
