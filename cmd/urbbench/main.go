// Command urbbench regenerates the evaluation artefacts.
//
// Default mode regenerates the full simulator suite: every table
// (T1-T4) and figure (F1-F6) listed in DESIGN.md §4, printed as aligned
// text (default) or CSV.
//
// Batching mode (-batching) instead runs the live-runtime batching
// benchmark: each workload of the {majority, quiescent} × {mesh, udp} ×
// n matrix runs twice — batched sending off, then on — and the frames,
// bytes and allocations per URB-delivered message are compared. The
// JSON written with -out is what BENCH_batching.json records.
//
// Usage:
//
//	urbbench [-quick] [-csv] [-seed N] [-only T1,F2,...]
//	urbbench -batching [-quick] [-seed N] [-out BENCH_batching.json]
//
// The output of a full run is what EXPERIMENTS.md records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"anonurb/internal/bench"
	"anonurb/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced sweeps (CI sizes)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	seed := flag.Uint64("seed", 2015, "base seed for every experiment (2015: the paper's year)")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. T1,F2); empty = all")
	batching := flag.Bool("batching", false, "run the batching benchmark matrix instead of the table/figure suite")
	out := flag.String("out", "", "with -batching: write the results as JSON to this file")
	flag.Parse()

	if *batching {
		if *csv || *only != "" {
			fmt.Fprintln(os.Stderr, "urbbench: -csv and -only apply to the table/figure suite, not -batching (use -out for machine-readable JSON)")
			os.Exit(2)
		}
		os.Exit(runBatching(*seed, *quick, *out))
	}
	if *out != "" {
		fmt.Fprintln(os.Stderr, "urbbench: -out applies only to -batching mode")
		os.Exit(2)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	params := harness.Params{Seed: *seed, Quick: *quick}
	ran := 0
	for _, exp := range harness.AllExperiments() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		start := time.Now()
		table := exp.Gen(params)
		ran++
		if *csv {
			fmt.Printf("# %s\n%s\n", table.Title, table.CSV())
		} else {
			fmt.Println(table.Render())
			fmt.Printf("(%s generated in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "urbbench: no experiment matched %q\n", *only)
		os.Exit(2)
	}
}

// batchingReport is the JSON document -batching -out writes.
type batchingReport struct {
	Schema      string             `json:"schema"`
	Seed        uint64             `json:"seed"`
	Quick       bool               `json:"quick"`
	GoVersion   string             `json:"go_version"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	NumCPU      int                `json:"num_cpu"`
	GeneratedAt string             `json:"generated_at"`
	Comparisons []bench.Comparison `json:"comparisons"`
}

// runBatching executes the batching benchmark matrix and returns the
// process exit code.
func runBatching(seed uint64, quick bool, out string) int {
	// Warm the runtime before measuring: netpoll init (first UDP
	// socket), timer wheels and heap growth are one-time costs that
	// would otherwise land in the first cell's allocation delta —
	// always on its unbatched run, biasing AllocsRatio.
	for _, net := range []bench.Net{bench.NetMesh, bench.NetUDP} {
		_, _ = bench.Run(bench.Workload{
			Algo: bench.AlgoMajority, Net: net, N: 3, Messages: 1,
			Batching: true, TickEvery: 5 * time.Millisecond, SteadyTicks: 1,
			Seed: seed, Timeout: 30 * time.Second,
		})
	}

	matrix := bench.Matrix(seed, quick)
	report := batchingReport{
		Schema:      "anonurb-bench-batching/v1",
		Seed:        seed,
		Quick:       quick,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Printf("%-22s %10s %10s %9s %9s %9s %10s\n",
		"workload", "frames/d", "frames/d", "frames", "bytes", "allocs", "oversized")
	fmt.Printf("%-22s %10s %10s %9s %9s %9s %10s\n",
		"", "(off)", "(on)", "improv.", "ratio", "ratio", "(on)")
	failed := false
	for _, w := range matrix {
		start := time.Now()
		c, err := bench.Compare(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: %s: %v\n", w, err)
			failed = true
			continue
		}
		offFrames, onFrames := c.Off.SteadyFramesPerDelivery, c.On.SteadyFramesPerDelivery
		if w.Algo == bench.AlgoQuiescent {
			offFrames, onFrames = c.Off.FramesPerDelivery, c.On.FramesPerDelivery
		}
		fmt.Printf("%-22s %10.1f %10.1f %8.2fx %9.4f %9.3f %10d   (%v)\n",
			c.Name, offFrames, onFrames, c.FramesImprovement, c.BytesRatio,
			c.AllocsRatio, c.On.Oversized, time.Since(start).Round(time.Millisecond))
		report.Comparisons = append(report.Comparisons, c)
	}

	// Write whatever completed even when some workloads failed: hours of
	// measurement should not vanish because one cell timed out.
	if out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: marshal: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "urbbench: write %s: %v\n", out, err)
			return 1
		}
		fmt.Printf("\nwrote %s (%d comparisons)\n", out, len(report.Comparisons))
	}
	if failed {
		return 1
	}
	return 0
}
