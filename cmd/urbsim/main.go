// Command urbsim runs one scenario of the anonymous-URB simulator from
// flags and reports deliveries, property checks and traffic statistics.
// It is the interactive companion to cmd/urbbench: where urbbench sweeps,
// urbsim lets you poke at a single configuration.
//
// Examples:
//
//	urbsim -n 7 -algo majority -loss 0.3 -crashes 3 -msgs 4
//	urbsim -n 5 -algo quiescent -loss 0.2 -crashes 4 -gst 200 -noise benign
//	urbsim -n 4 -algo lowered -loss 0 -v   # unsafe threshold, watch it break
//
// Record/replay (DESIGN.md §11): -record writes the run's broadcast
// schedule to a compact trace file; -replay drives a scenario from such
// a file instead of the built-in workload (same trace + same seed =
// byte-identical deliveries — the printed delivery digest line is what
// CI diffs):
//
//	urbsim -n 5 -seed 7 -record run.sched
//	urbsim -replay run.sched -seed 7        # identical digest every time
//	urbsim -replay run.sched -speed 2       # same schedule, twice the pace
//
// Membership churn (DESIGN.md §13): -join and -leave schedule joins and
// leaves as comma-separated proc@time entries. A joiner pulls its state
// snapshot over the same lossy links as all other traffic; a leaver
// simply falls silent. Churn needs the heartbeat stack (-algo heartbeat)
// so the detector views follow membership instead of a fixed oracle.
// Churn composes with -replay: the same recorded schedule driven through
// a churning cluster still prints the same digest every run:
//
//	urbsim -n 4 -algo heartbeat -join 3@600 -leave 1@2500 -msgs 3
//	urbsim -replay run.sched -algo heartbeat -join 4@800
//
// Nemesis campaigns (DESIGN.md §15): -nemesis runs a staged fault
// campaign — a preset name (split, asym, crashstorm, churnsplit,
// broken) or a spec string like "split@100-400:0,1;loss@100-800:0.1;
// deadline=6000" — merged over the scenario, then audits convergence
// after the last fault lifts. Campaigns need -algo majority or
// heartbeat: the oracle detectors are built before the campaign faults
// are merged and would contradict them. Composes with -replay (same
// digest line every run):
//
//	urbsim -n 5 -nemesis split -msgs 3
//	urbsim -replay run.sched -nemesis crashstorm
//	urbsim -n 5 -nemesis 'oneway@100-300:1,2>0;deadline=5000'
//	urbsim -n 5 -msgs 8 -nemesis broken   # deliberate failure: stage-named stall report
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"strings"

	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/harness"
	"anonurb/internal/nemesis"
	"anonurb/internal/obs"
	"anonurb/internal/replay"
	"anonurb/internal/sim"
	"anonurb/internal/trace"
	"anonurb/internal/workload"
)

func main() {
	n := flag.Int("n", 5, "number of processes")
	algo := flag.String("algo", "majority", "algorithm: majority | quiescent | lowered | heartbeat")
	loss := flag.Float64("loss", 0.2, "per-copy loss probability")
	delayMax := flag.Int64("delay", 5, "max link delay (uniform in [1,delay])")
	crashes := flag.Int("crashes", 0, "how many processes crash")
	crashAt := flag.Int64("crash-at", 50, "crash time")
	msgs := flag.Int("msgs", 2, "messages to broadcast (1 writer)")
	gst := flag.Int64("gst", 0, "failure detector stabilisation time (quiescent)")
	noise := flag.String("noise", "exact", "fd noise: exact | benign | adversarial")
	seed := flag.Uint64("seed", 1, "run seed")
	maxTime := flag.Int64("max-time", 200_000, "virtual-time horizon")
	verbose := flag.Bool("v", false, "print per-process deliveries")
	traceOut := flag.String("trace", "", "write the run trace (JSONL) to this file for urbcheck")
	chromeOut := flag.String("trace-out", "", "write a Chrome trace-event JSON lifecycle trace (load in Perfetto / chrome://tracing)")
	timeline := flag.Bool("timeline", false, "print an event timeline (broadcast/deliver/crash)")
	timelineWire := flag.Bool("timeline-wire", false, "include send/receive events in the timeline")
	record := flag.String("record", "", "record the run's broadcast schedule to this trace file")
	replayFrom := flag.String("replay", "", "replay the broadcast schedule from this trace file instead of the built-in workload")
	speed := flag.Float64("speed", 1, "with -replay: time-scale the schedule (2 = twice as fast)")
	joinSpec := flag.String("join", "", "late joiners as proc@time,... (snapshot transfer over the lossy links; needs -algo heartbeat)")
	leaveSpec := flag.String("leave", "", "leavers as proc@time,... (a leave looks like a crash on the wire)")
	nemesisSpec := flag.String("nemesis", "", "run a staged fault campaign: a preset name ("+strings.Join(nemesis.PresetNames(), "|")+") or a campaign spec string (needs -algo majority or heartbeat)")
	flag.Parse()

	if *record != "" && *replayFrom != "" {
		fmt.Fprintln(os.Stderr, "urbsim: -record and -replay conflict: replaying a trace while recording it again is a no-op copy")
		os.Exit(2)
	}

	var a harness.Algo
	switch *algo {
	case "majority":
		a = harness.AlgoMajority
	case "quiescent":
		a = harness.AlgoQuiescent
	case "lowered":
		a = harness.AlgoMajorityLowered
	case "heartbeat":
		a = harness.AlgoHeartbeat
	default:
		fmt.Fprintf(os.Stderr, "urbsim: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	var nm fd.NoiseMode
	switch *noise {
	case "exact":
		nm = fd.NoiseExact
	case "benign":
		nm = fd.NoiseBenign
	case "adversarial":
		nm = fd.NoiseAdversarial
	default:
		fmt.Fprintf(os.Stderr, "urbsim: unknown noise mode %q\n", *noise)
		os.Exit(2)
	}

	var rec *trace.Recorder
	var observers []sim.Observer
	if *traceOut != "" || *timeline || *timelineWire {
		rec = trace.NewRecorder(trace.Options{Wire: *traceOut != "" || *timelineWire})
		observers = []sim.Observer{rec}
	}
	var schedRec *replay.Recorder
	if *record != "" {
		schedRec = replay.NewRecorder()
		observers = append(observers, schedRec)
	}
	var lifecycle *sim.TraceObserver
	if *chromeOut != "" {
		lifecycle = sim.NewTraceObserver(0)
		observers = append(observers, lifecycle)
	}

	var wl workload.Broadcasts = workload.MultiWriter{
		Writers: 1, PerWriter: *msgs, Start: 5, Interval: 30,
	}
	if *replayFrom != "" {
		sched, err := replay.ReadFile(*replayFrom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbsim: read %s: %v\n", *replayFrom, err)
			os.Exit(2)
		}
		// The trace's proc indices only make sense at the recorded
		// cluster size, so -replay pins n.
		if *n != sched.N {
			fmt.Printf("replay   : n=%d from %s overrides -n %d\n", sched.N, *replayFrom, *n)
			*n = sched.N
		}
		wl = replay.Replayer{Schedule: sched, Speed: *speed}
	}

	// Churn schedules parse after -replay may have pinned n, so the
	// proc indices are validated against the size that actually runs.
	joinAt := parseChurnSpec(*joinSpec, *n, "join")
	leaveAt := parseChurnSpec(*leaveSpec, *n, "leave")
	if (joinAt != nil || leaveAt != nil) && a != harness.AlgoHeartbeat {
		fmt.Fprintln(os.Stderr, "urbsim: -join/-leave need -algo heartbeat: the oracle detectors assume fixed membership (DESIGN.md §13)")
		os.Exit(2)
	}

	// The oracle algorithms stop when the wire goes quiet; the heartbeat
	// stack beats forever, so its runs stop on delivery convergence
	// instead (the engine credits a joiner's adopted history).
	stopQuiet := sim.Time(300)
	if a == harness.AlgoHeartbeat {
		stopQuiet = 0
	}

	scen := harness.Scenario{
		Name:          "urbsim",
		Observers:     observers,
		N:             *n,
		Algo:          a,
		Link:          channel.Bernoulli{P: *loss, D: channel.UniformDelay{Min: 1, Max: *delayMax}},
		FD:            fd.OracleConfig{Noise: nm, GST: *gst, NoisePeriod: 25},
		Workload:      wl,
		Crashes:       workload.CrashCount{Count: *crashes, From: *crashAt, To: *crashAt},
		JoinAt:        joinAt,
		LeaveAt:       leaveAt,
		Seed:          *seed,
		MaxTime:       sim.Time(*maxTime),
		StopWhenQuiet: stopQuiet,
	}
	if *nemesisSpec != "" {
		if a != harness.AlgoMajority && a != harness.AlgoHeartbeat {
			fmt.Fprintln(os.Stderr, "urbsim: -nemesis needs -algo majority or heartbeat: the oracle detectors are built before campaign faults merge and would contradict them (DESIGN.md §15)")
			os.Exit(2)
		}
		if *record != "" || *traceOut != "" || *chromeOut != "" || *timeline || *timelineWire {
			fmt.Fprintln(os.Stderr, "urbsim: -nemesis does not compose with -record/-trace/-trace-out/-timeline (campaign runs have their own auditor; record schedules without -nemesis, then replay them under it)")
			os.Exit(2)
		}
		os.Exit(runNemesisCampaign(scen, *nemesisSpec, *verbose))
	}

	out := harness.Run(scen)

	fmt.Printf("scenario : n=%d algo=%v link=%s crashes=%d seed=%d\n",
		*n, a, scen.Link, *crashes, *seed)
	fmt.Printf("run      : end=%d lastSend=%d quiescent=%v\n",
		out.Result.EndTime, out.Result.LastSend, out.Result.Quiescent)
	fmt.Printf("traffic  : %d copies offered, %d dropped (%.1f%%), %d bytes\n",
		out.Result.Net.Sent, out.Result.Net.Dropped,
		100*float64(out.Result.Net.Dropped)/max1(float64(out.Result.Net.Sent)),
		out.Result.Net.Bytes)
	fmt.Printf("delivery : issued=%d deliveredAll=%v latency mean/p50/p99/max = %s fast=%.1f%%\n",
		out.Issued, out.DeliveredAll, out.Latency.Summary(), 100*out.FastFraction)
	if joinAt != nil || leaveAt != nil {
		line := ""
		for p, at := range joinAt {
			if at <= 0 {
				continue
			}
			if out.Result.JoinedAt[p] == sim.Never {
				line += fmt.Sprintf(" p%d never finished joining;", p)
			} else {
				line += fmt.Sprintf(" p%d joined at %d (snapshot %d B, adopted %d);",
					p, out.Result.JoinedAt[p], out.Result.JoinBytes[p], len(out.Result.Adopted[p]))
			}
		}
		for p, at := range leaveAt {
			if at > 0 && out.Result.Left[p] {
				line += fmt.Sprintf(" p%d left at %d;", p, at)
			}
		}
		fmt.Printf("churn    :%s\n", line)
	}
	// The digest covers every process's ordered delivery sequence
	// (proc, time, message id): two runs print the same digest iff their
	// deliveries are identical. CI's replay smoke diffs this line.
	fmt.Printf("digest   : %016x\n", deliveryDigest(out.Result.Deliveries))

	if out.Report.OK() {
		fmt.Println("checks   : validity ok, uniform agreement ok, uniform integrity ok")
	} else {
		fmt.Printf("checks   : %d VIOLATION(S)\n", len(out.Report.Violations))
		for _, v := range out.Report.Violations {
			fmt.Printf("  - %s\n", v.Error())
		}
	}

	if *timeline || *timelineWire {
		fmt.Println()
		fmt.Print(trace.Timeline(*n, rec.Events(), trace.TimelineOptions{
			Wire:      *timelineWire,
			MaxEvents: 400,
		}))
	}

	if rec != nil && *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbsim: %v\n", err)
			os.Exit(2)
		}
		if err := trace.Write(f, *n, out.Result.Crashed, rec.Events()); err != nil {
			fmt.Fprintf(os.Stderr, "urbsim: %v\n", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "urbsim: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("trace    : %d events written to %s\n", len(rec.Events()), *traceOut)
	}

	if lifecycle != nil {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "urbsim: %v\n", err)
			os.Exit(2)
		}
		evs := lifecycle.Events()
		// Virtual time, not wall nanos: Chrome ts stays in raw units.
		if err := obs.WriteChromeTrace(f, evs, false); err != nil {
			fmt.Fprintf(os.Stderr, "urbsim: %v\n", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "urbsim: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("chrome   : %d lifecycle events written to %s (load in Perfetto)\n", len(evs), *chromeOut)
	}

	if schedRec != nil {
		if err := schedRec.Schedule(*n).WriteFile(*record); err != nil {
			fmt.Fprintf(os.Stderr, "urbsim: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("schedule : %d broadcasts written to %s\n", schedRec.Len(), *record)
	}

	if *verbose {
		for p, ds := range out.Result.Deliveries {
			status := "correct"
			if out.Result.Crashed[p] {
				status = "crashed"
			}
			fmt.Printf("p%-2d (%s): %d deliveries\n", p, status, len(ds))
			for _, d := range ds {
				kind := ""
				if d.Fast {
					kind = " (fast)"
				}
				fmt.Printf("    t=%-8d %s%s\n", d.At, d.ID, kind)
			}
		}
	}
	if !out.Report.OK() {
		os.Exit(1)
	}
}

// runNemesisCampaign resolves and runs one fault campaign over the
// assembled scenario and prints its audit. The digest line covers the
// full delivery history exactly like the plain path, so CI can diff a
// replayed schedule under a campaign (replay-under-nemesis).
func runNemesisCampaign(scen harness.Scenario, spec string, verbose bool) int {
	campaign, err := nemesis.Resolve(spec, scen.N)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urbsim: -nemesis %q: %v\n", spec, err)
		return 2
	}
	cfg, _ := scen.Build()
	res, err := nemesis.RunSim(cfg, campaign)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urbsim: %v\n", err)
		return 2
	}
	fmt.Printf("scenario : n=%d algo=%v link=%s seed=%d\n",
		scen.N, scen.Algo, scen.Link, scen.Seed)
	fmt.Printf("campaign : %s (%d stages, heal@%d, deadline %d)\n",
		campaign.Name, len(campaign.Stages), campaign.HealTime(), campaign.HealDeadline)
	for _, st := range campaign.Stages {
		fmt.Printf("  stage  : %s\n", st.Name)
	}
	fmt.Printf("run      : end=%d lastSend=%d\n", res.Result.EndTime, res.Result.LastSend)
	fmt.Printf("traffic  : %d copies offered, %d dropped, %d duplicated, %d mutated, %d bytes\n",
		res.Result.Net.Sent, res.Result.Net.Dropped,
		res.Result.Net.Duplicated, res.Result.Net.Mutated, res.Result.Net.Bytes)
	fmt.Printf("digest   : %016x\n", deliveryDigest(res.Result.Deliveries))
	fmt.Printf("audit    : %s\n", res.Audit.Report())
	if verbose {
		for p, ds := range res.Result.Deliveries {
			fmt.Printf("p%-2d: %d deliveries\n", p, len(ds))
			for _, d := range ds {
				fmt.Printf("    t=%-8d %s\n", d.At, d.ID)
			}
		}
	}
	if !res.Audit.OK() {
		return 1
	}
	return 0
}

// parseChurnSpec turns "proc@time,proc@time" into a per-process time
// slice of length n (the shape sim.Config.JoinAt/LeaveAt expect), or nil
// when the spec is empty.
func parseChurnSpec(spec string, n int, flagName string) []sim.Time {
	if spec == "" {
		return nil
	}
	out := make([]sim.Time, n)
	for _, part := range strings.Split(spec, ",") {
		var proc int
		var at int64
		if _, err := fmt.Sscanf(part, "%d@%d", &proc, &at); err != nil || proc < 0 || proc >= n || at <= 0 {
			fmt.Fprintf(os.Stderr, "urbsim: bad -%s entry %q: want proc@time with 0 <= proc < %d and time > 0\n",
				flagName, part, n)
			os.Exit(2)
		}
		out[proc] = sim.Time(at)
	}
	return out
}

// deliveryDigest folds every process's ordered delivery sequence into
// one 64-bit FNV-1a value, so identical runs can be compared by one
// printed line instead of full -v dumps.
func deliveryDigest(deliveries [][]sim.DeliveryAt) uint64 {
	h := fnv.New64a()
	for p, ds := range deliveries {
		for _, d := range ds {
			fmt.Fprintf(h, "p%d t%d %s %v\n", p, d.At, d.ID, d.Fast)
		}
	}
	return h.Sum64()
}

func max1(f float64) float64 {
	if f < 1 {
		return 1
	}
	return f
}
