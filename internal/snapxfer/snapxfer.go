// Package snapxfer implements the snapshot-transfer state machines of
// the join protocol (DESIGN.md §13): a Donor chunks a state snapshot —
// framed in the internal/store container format — into KindSnapChunk
// wire messages sized under the transport's frame budget, and an
// Assembler at the joining side reassembles them, tolerant of loss,
// duplication and reordering.
//
// The package is pure protocol: it moves bytes, it never interprets
// them. Validating the assembled container (store.ParseSnapshotFile,
// urb.VerifySnapshot, the staleness floor) is the caller's job, exactly
// as the wire codec leaves zero-tag semantics to the algorithms.
//
// The transfer is pull-based and resumable. A joiner broadcasts a fresh
// SNAPREQ (ref 0); any live peer may answer by serving a window of
// chunks from its current snapshot under a transfer reference (a digest
// of the container bytes, wire.SnapRef). The joiner then requests the
// lowest offset it is missing — re-requesting after loss, or after the
// chunks of a window arrive out of order — until the container is
// complete. Chunks carry the reference, so concurrent answers from
// several donors do not interleave: the assembler locks onto the first
// reference it accepts and ignores the rest. If the donor dies
// mid-transfer the reference goes silent; the joiner's retry policy
// resets the assembler and solicits a fresh transfer, which any other
// peer may answer.
package snapxfer

import (
	"sort"

	"anonurb/internal/wire"
)

// chunkOverhead is the encoded size of a SNAPCHUNK frame minus its
// payload: version, kind, ref, total, off, sum, chunkLen.
const chunkOverhead = 2 + 8 + 8 + 8 + 4 + 4

// minChunk keeps pathological frame budgets from degenerating into
// one-byte chunks.
const minChunk = 64

// ChunkPayload returns the chunk payload size a donor uses under the
// given frame budget (0 = unbudgeted, use the codec's maximum).
func ChunkPayload(frameBudget int) int {
	size := wire.MaxBody
	if frameBudget > 0 && frameBudget-chunkOverhead < size {
		size = frameBudget - chunkOverhead
	}
	if size < minChunk {
		size = minChunk
	}
	return size
}

// Donor serves one snapshot container as chunk messages. It is a value
// over immutable bytes: hosts build one per transfer reference and cache
// it while requests for that reference keep arriving.
type Donor struct {
	container []byte
	ref       uint64
	chunk     int
}

// NewDonor wraps a container (the store snapshot-file framing of a state
// snapshot, see store.EncodeSnapshotFile) for serving. The container
// must be non-empty and at most wire.MaxSnapshot bytes; frameBudget
// bounds each chunk frame's encoded size as the transport's Mesh
// FrameBudget does (0 = unbudgeted).
func NewDonor(container []byte, frameBudget int) *Donor {
	if len(container) == 0 || len(container) > wire.MaxSnapshot {
		return nil
	}
	return &Donor{
		container: container,
		ref:       wire.SnapRef(container),
		chunk:     ChunkPayload(frameBudget),
	}
}

// Ref returns the transfer reference this donor serves under.
func (d *Donor) Ref() uint64 { return d.ref }

// Size returns the container's total byte length.
func (d *Donor) Size() uint64 { return uint64(len(d.container)) }

// Serve returns up to maxChunks chunk messages covering the container
// from byte offset off. An offset at or past the end returns nothing
// (the joiner asking is already complete, or confused; either way the
// donor stays silent rather than flood).
func (d *Donor) Serve(off uint64, maxChunks int) []wire.Message {
	total := uint64(len(d.container))
	if off >= total || maxChunks <= 0 {
		return nil
	}
	// Align to the chunk grid so duplicate requests re-serve identical
	// frames (dedup-friendly) whatever offset the joiner names.
	off -= off % uint64(d.chunk)
	var out []wire.Message
	for len(out) < maxChunks && off < total {
		end := off + uint64(d.chunk)
		if end > total {
			end = total
		}
		out = append(out, wire.NewSnapChunk(d.ref, total, off, d.container[off:end]))
		off = end
	}
	return out
}

// span is one received byte range [from, to).
type span struct{ from, to uint64 }

// Assembler reassembles one snapshot container from chunk messages. The
// zero value is not ready; use NewAssembler.
type Assembler struct {
	ref   uint64
	total uint64
	buf   []byte
	spans []span // sorted, merged, non-overlapping
}

// NewAssembler returns an empty assembler: it locks onto the first
// chunk's transfer reference and ignores chunks of any other.
func NewAssembler() *Assembler { return &Assembler{} }

// Ref returns the transfer reference locked onto, or 0 before the first
// accepted chunk.
func (a *Assembler) Ref() uint64 { return a.ref }

// Offer feeds one wire message to the assembler and reports whether it
// covered bytes that were missing. Non-chunk messages, chunks of other
// transfers, and duplicates are ignored (false). The chunk's checksum
// and bounds were already verified by the wire codec.
func (a *Assembler) Offer(m wire.Message) bool {
	if m.Kind != wire.KindSnapChunk {
		return false
	}
	if a.ref == 0 {
		a.ref = m.Ref
		a.total = m.Total
		a.buf = make([]byte, m.Total)
	}
	if m.Ref != a.ref || m.Total != a.total {
		return false
	}
	from, to := m.Off, m.Off+uint64(len(m.Body))
	if !a.covers(from, to) {
		copy(a.buf[from:to], m.Body)
		a.insert(span{from, to})
		return true
	}
	return false
}

// covers reports whether [from, to) is already fully received.
func (a *Assembler) covers(from, to uint64) bool {
	for _, s := range a.spans {
		if s.from <= from && to <= s.to {
			return true
		}
	}
	return false
}

// insert merges one new span into the sorted set.
func (a *Assembler) insert(n span) {
	i := sort.Search(len(a.spans), func(i int) bool { return a.spans[i].from > n.from })
	a.spans = append(a.spans, span{})
	copy(a.spans[i+1:], a.spans[i:])
	a.spans[i] = n
	merged := a.spans[:1]
	for _, s := range a.spans[1:] {
		last := &merged[len(merged)-1]
		if s.from <= last.to {
			if s.to > last.to {
				last.to = s.to
			}
			continue
		}
		merged = append(merged, s)
	}
	a.spans = merged
}

// NextGap returns the lowest byte offset not yet received — the offset
// the joiner's next resume request should name. Equal to the total when
// the transfer is complete, 0 before the first chunk.
func (a *Assembler) NextGap() uint64 {
	if len(a.spans) == 0 || a.spans[0].from > 0 {
		return 0
	}
	return a.spans[0].to
}

// Total returns the container length the locked transfer announced
// (0 before the first accepted chunk).
func (a *Assembler) Total() uint64 { return a.total }

// Received returns the count of distinct bytes received so far.
func (a *Assembler) Received() uint64 {
	var n uint64
	for _, s := range a.spans {
		n += s.to - s.from
	}
	return n
}

// Done reports whether the whole container has been received.
func (a *Assembler) Done() bool {
	return a.ref != 0 && len(a.spans) == 1 && a.spans[0].from == 0 && a.spans[0].to == a.total
}

// Bytes returns the assembled container. Only valid when Done.
func (a *Assembler) Bytes() []byte { return a.buf }

// Request builds the wire request that advances this transfer: a fresh
// solicitation before any chunk arrived, a resume naming the lowest gap
// afterwards.
func (a *Assembler) Request() wire.Message {
	if a.ref == 0 {
		return wire.NewSnapReq(0, 0)
	}
	return wire.NewSnapReq(a.ref, a.NextGap())
}

// Reset abandons the current transfer so the next Offer locks onto a
// fresh reference — the retry path after a donor dies mid-transfer or
// the assembled snapshot is rejected (stale, or failing verification).
func (a *Assembler) Reset() {
	*a = Assembler{}
}
