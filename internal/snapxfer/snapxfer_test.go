package snapxfer

import (
	"bytes"
	"testing"

	"anonurb/internal/store"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

func container(n int) []byte {
	payload := make([]byte, n)
	r := xrand.New(42)
	for i := range payload {
		payload[i] = byte(r.Uint64())
	}
	return store.EncodeSnapshotFile(payload)
}

// TestTransferLossless: a donor's chunks reassemble byte-identically,
// whatever frame budget slices them.
func TestTransferLossless(t *testing.T) {
	c := container(10_000)
	for _, budget := range []int{0, 256, 1024, 1 << 16} {
		d := NewDonor(c, budget)
		if d == nil {
			t.Fatalf("budget %d: nil donor", budget)
		}
		a := NewAssembler()
		rounds := 0
		for !a.Done() {
			rounds++
			if rounds > 1000 {
				t.Fatalf("budget %d: transfer did not complete", budget)
			}
			req := a.Request()
			for _, m := range d.Serve(req.Off, 4) {
				a.Offer(roundTrip(t, m))
			}
		}
		if !bytes.Equal(a.Bytes(), c) {
			t.Fatalf("budget %d: reassembly mismatch", budget)
		}
		if _, err := store.ParseSnapshotFile(a.Bytes()); err != nil {
			t.Fatalf("budget %d: assembled container rejected: %v", budget, err)
		}
	}
}

// roundTrip pushes a message through the codec, as the real transports
// do — chunk checksums are verified on this path.
func roundTrip(t *testing.T, m wire.Message) wire.Message {
	t.Helper()
	got, err := wire.Decode(m.Encode(nil))
	if err != nil {
		t.Fatalf("chunk does not decode: %v", err)
	}
	return got
}

// TestTransferUnderLossAndReorder: drop 30% of chunks and shuffle the
// rest; resume requests must still complete the transfer.
func TestTransferUnderLossAndReorder(t *testing.T) {
	c := container(20_000)
	d := NewDonor(c, 512)
	a := NewAssembler()
	r := xrand.New(7)
	rounds := 0
	for !a.Done() {
		rounds++
		if rounds > 10_000 {
			t.Fatal("transfer did not complete under loss")
		}
		req := a.Request()
		window := d.Serve(req.Off, 8)
		// Shuffle the window, then drop ~30%.
		for i := len(window) - 1; i > 0; i-- {
			j := int(r.Uint64() % uint64(i+1))
			window[i], window[j] = window[j], window[i]
		}
		for _, m := range window {
			if r.Uint64()%10 < 3 {
				continue
			}
			a.Offer(m)
		}
	}
	if !bytes.Equal(a.Bytes(), c) {
		t.Fatal("reassembly mismatch under loss")
	}
}

// TestAssemblerLocksRef: chunks of a competing transfer are ignored, so
// two donors answering one solicitation cannot interleave bytes.
func TestAssemblerLocksRef(t *testing.T) {
	c1, c2 := container(3000), append(container(3000), 0xAA)
	d1, d2 := NewDonor(c1, 512), NewDonor(c2, 512)
	if d1.Ref() == d2.Ref() {
		t.Fatal("distinct containers share a ref")
	}
	a := NewAssembler()
	a.Offer(d1.Serve(0, 1)[0])
	if a.Ref() != d1.Ref() {
		t.Fatal("assembler did not lock onto the first ref")
	}
	for _, m := range d2.Serve(0, 100) {
		if a.Offer(m) {
			t.Fatal("assembler accepted a chunk of another transfer")
		}
	}
	for !a.Done() {
		for _, m := range d1.Serve(a.NextGap(), 4) {
			a.Offer(m)
		}
	}
	if !bytes.Equal(a.Bytes(), c1) {
		t.Fatal("reassembly mismatch after competing transfer")
	}
}

// TestAssemblerResetRetargets: after Reset the assembler accepts a fresh
// transfer — the donor-crash retry path.
func TestAssemblerResetRetargets(t *testing.T) {
	c1, c2 := container(3000), append(container(3000), 0xBB)
	d1, d2 := NewDonor(c1, 512), NewDonor(c2, 512)
	a := NewAssembler()
	a.Offer(d1.Serve(0, 1)[0]) // partial transfer, then the donor dies
	a.Reset()
	if a.Ref() != 0 || a.Received() != 0 {
		t.Fatal("reset did not clear the transfer")
	}
	if a.Request().Ref != 0 {
		t.Fatal("post-reset request must solicit a fresh transfer")
	}
	for !a.Done() {
		for _, m := range d2.Serve(a.NextGap(), 4) {
			a.Offer(m)
		}
	}
	if !bytes.Equal(a.Bytes(), c2) {
		t.Fatal("retry against the second donor failed")
	}
}

// TestDonorGridAlignment: duplicate resume requests re-serve identical
// frames, and offsets past the end stay silent.
func TestDonorGridAlignment(t *testing.T) {
	c := container(2000)
	d := NewDonor(c, 512)
	a1 := d.Serve(700, 1)
	b1 := d.Serve(701, 1)
	if len(a1) != 1 || len(b1) != 1 || !a1[0].Equal(b1[0]) {
		t.Fatal("mid-chunk offsets must align to the chunk grid")
	}
	if d.Serve(d.Size(), 4) != nil {
		t.Fatal("donor served past the end")
	}
	if d.Serve(0, 0) != nil {
		t.Fatal("donor served a zero-chunk window")
	}
}

// TestChunkPayloadBudget: chunk frames respect the frame budget they
// were sized for.
func TestChunkPayloadBudget(t *testing.T) {
	c := container(5000)
	for _, budget := range []int{256, 300, 1024} {
		d := NewDonor(c, budget)
		for _, m := range d.Serve(0, 100) {
			if m.EncodedSize() > budget {
				t.Fatalf("budget %d: chunk frame is %dB", budget, m.EncodedSize())
			}
		}
	}
	if ChunkPayload(10) != minChunk {
		t.Fatal("pathological budget must clamp to the minimum chunk")
	}
	if ChunkPayload(0) != wire.MaxBody {
		t.Fatal("unbudgeted chunks must use the codec maximum")
	}
}

// TestDonorRejectsUnservable: empty and oversized containers refuse to
// construct rather than emit unsendable frames.
func TestDonorRejectsUnservable(t *testing.T) {
	if NewDonor(nil, 0) != nil {
		t.Fatal("empty container accepted")
	}
	if NewDonor(make([]byte, wire.MaxSnapshot+1), 0) != nil {
		t.Fatal("oversized container accepted")
	}
}
