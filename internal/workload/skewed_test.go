package workload

import (
	"reflect"
	"testing"

	"anonurb/internal/xrand"
)

// generators is every stochastic Broadcasts implementation, old and
// new: the replay harness's determinism guarantee rests on each of
// these producing identical schedules from identical seeds.
func generators() map[string]Broadcasts {
	return map[string]Broadcasts{
		"poisson": PoissonWriters{Count: 20, MeanGap: 7, Start: 1, BodyStamp: "p"},
		"zipf":    ZipfWriters{Count: 30, S: 1.1, MeanGap: 5, Payload: 64},
		"burst":   BurstTrains{Trains: 4, PerTrain: 6, Spacing: 2, Gap: 40, Payload: 48},
		"flood":   Flood{Flooder: 1, Count: 25, Spacing: 2, Payload: 256, VictimMsgs: 3, VictimSize: 16},
	}
}

// TestGeneratorDeterminism: same seed, same schedule — byte-identical
// bodies included; different seeds diverge.
func TestGeneratorDeterminism(t *testing.T) {
	for name, g := range generators() {
		a := g.Generate(6, xrand.New(41))
		b := g.Generate(6, xrand.New(41))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different schedules", name)
		}
		c := g.Generate(6, xrand.New(42))
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical schedules", name)
		}
		if len(a) == 0 {
			t.Errorf("%s: empty schedule", name)
		}
		for i, sb := range a {
			if sb.Proc < 0 || sb.Proc >= 6 {
				t.Fatalf("%s: entry %d proc %d out of range", name, i, sb.Proc)
			}
			if sb.At < 0 {
				t.Fatalf("%s: entry %d at %d negative", name, i, sb.At)
			}
		}
	}
}

// TestZipfSkew: the Zipf head (rank 0) must broadcast more than the
// tail.
func TestZipfSkew(t *testing.T) {
	sched := ZipfWriters{Count: 400, S: 1.3, MeanGap: 1}.Generate(8, xrand.New(3))
	counts := make([]int, 8)
	for _, b := range sched {
		counts[b.Proc]++
	}
	if counts[0] <= counts[7] {
		t.Fatalf("no skew: head %d msgs, tail %d", counts[0], counts[7])
	}
	if counts[0] < len(sched)/4 {
		t.Fatalf("head owns only %d of %d broadcasts", counts[0], len(sched))
	}
}

// TestFloodShape: the flooder owns exactly Count broadcasts, every
// other process exactly VictimMsgs, and the victims' payloads are the
// small ones.
func TestFloodShape(t *testing.T) {
	f := Flood{Flooder: 2, Count: 30, Spacing: 1, Payload: 512, VictimMsgs: 4, VictimSize: 16}
	sched := f.Generate(5, xrand.New(9))
	counts := make([]int, 5)
	for _, b := range sched {
		counts[b.Proc]++
		if b.Proc == 2 {
			if len(b.Body) != 512 {
				t.Fatalf("flood body %d bytes, want 512", len(b.Body))
			}
		} else if len(b.Body) != 16 {
			t.Fatalf("victim body %d bytes, want 16", len(b.Body))
		}
	}
	for p, c := range counts {
		want := 4
		if p == 2 {
			want = 30
		}
		if c != want {
			t.Fatalf("proc %d broadcast %d times, want %d", p, c, want)
		}
	}
}

// TestBurstShape: trains land as tight runs of PerTrain broadcasts from
// a single process.
func TestBurstShape(t *testing.T) {
	b := BurstTrains{Trains: 3, PerTrain: 5, Spacing: 1, Gap: 100, Payload: 32}
	sched := b.Generate(4, xrand.New(5))
	if len(sched) != 15 {
		t.Fatalf("%d broadcasts, want 15", len(sched))
	}
	for train := 0; train < 3; train++ {
		first := sched[train*5]
		for i := 1; i < 5; i++ {
			e := sched[train*5+i]
			if e.Proc != first.Proc {
				t.Fatalf("train %d switched process mid-train", train)
			}
			if int64(e.At) != int64(first.At)+int64(i) {
				t.Fatalf("train %d not spaced by 1: %d vs %d", train, e.At, first.At)
			}
		}
	}
}
