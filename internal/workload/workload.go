// Package workload generates the application-level inputs of a run: which
// process URB-broadcasts what and when, and which processes crash and
// when. These are the knobs the paper's motivation varies informally
// (senders that crash, any number of crashes, messages in flight during
// failures); the experiment harness sweeps them systematically.
package workload

import (
	"fmt"

	"anonurb/internal/sim"
	"anonurb/internal/xrand"
)

// Broadcasts is a generator of scheduled URB-broadcasts.
type Broadcasts interface {
	// Generate produces the schedule for a system of n processes. The
	// rng must be used for all randomness so runs stay reproducible.
	Generate(n int, rng *xrand.Source) []sim.ScheduledBroadcast
	// String describes the workload for tables.
	String() string
}

// SingleShot is one broadcast from one process.
type SingleShot struct {
	At   sim.Time
	Proc int
	Body []byte
}

// Generate implements Broadcasts.
func (w SingleShot) Generate(n int, _ *xrand.Source) []sim.ScheduledBroadcast {
	return []sim.ScheduledBroadcast{{At: w.At, Proc: w.Proc % n, Body: w.Body}}
}

// String implements Broadcasts.
func (w SingleShot) String() string { return fmt.Sprintf("single(p%d@%d)", w.Proc, w.At) }

// MultiWriter has Writers distinct processes broadcast PerWriter messages
// each, paced Interval apart starting at Start. Writers are the lowest
// indices (simulator bookkeeping only; the processes themselves stay
// anonymous).
type MultiWriter struct {
	Writers   int
	PerWriter int
	Start     sim.Time
	Interval  sim.Time
}

// Generate implements Broadcasts.
func (w MultiWriter) Generate(n int, _ *xrand.Source) []sim.ScheduledBroadcast {
	writers := w.Writers
	if writers > n {
		writers = n
	}
	if writers < 1 {
		writers = 1
	}
	per := w.PerWriter
	if per < 1 {
		per = 1
	}
	interval := w.Interval
	if interval < 1 {
		interval = 1
	}
	var out []sim.ScheduledBroadcast
	for k := 0; k < per; k++ {
		for wr := 0; wr < writers; wr++ {
			out = append(out, sim.ScheduledBroadcast{
				At:   w.Start + sim.Time(k)*interval + sim.Time(wr),
				Proc: wr,
				Body: fmt.Appendf(nil, "w%d-m%d", wr, k),
			})
		}
	}
	return out
}

// String implements Broadcasts.
func (w MultiWriter) String() string {
	return fmt.Sprintf("multi(%dx%d@%d+%d)", w.Writers, w.PerWriter, w.Start, w.Interval)
}

// Count returns the total number of broadcasts MultiWriter generates for
// a system of n processes.
func (w MultiWriter) Count(n int) int {
	writers := w.Writers
	if writers > n {
		writers = n
	}
	if writers < 1 {
		writers = 1
	}
	per := w.PerWriter
	if per < 1 {
		per = 1
	}
	return writers * per
}

// PoissonWriters draws Count broadcasts with exponential inter-arrival
// times of the given mean, each from a uniformly random process.
type PoissonWriters struct {
	Count     int
	MeanGap   float64
	Start     sim.Time
	BodyStamp string
}

// Generate implements Broadcasts.
func (w PoissonWriters) Generate(n int, rng *xrand.Source) []sim.ScheduledBroadcast {
	at := float64(w.Start)
	var out []sim.ScheduledBroadcast
	for i := 0; i < w.Count; i++ {
		at += rng.Exp(w.MeanGap)
		out = append(out, sim.ScheduledBroadcast{
			At:   sim.Time(at) + 1,
			Proc: rng.Intn(n),
			Body: fmt.Appendf(nil, "%s-%d", w.BodyStamp, i),
		})
	}
	return out
}

// String implements Broadcasts.
func (w PoissonWriters) String() string {
	return fmt.Sprintf("poisson(%d,gap=%g)", w.Count, w.MeanGap)
}

// Crashes is a generator of crash schedules.
type Crashes interface {
	// Generate returns CrashAt (one entry per process, sim.Never for
	// correct processes).
	Generate(n int, rng *xrand.Source) []sim.Time
	// String describes the plan for tables.
	String() string
}

// NoCrashes leaves every process correct.
type NoCrashes struct{}

// Generate implements Crashes.
func (NoCrashes) Generate(n int, _ *xrand.Source) []sim.Time {
	out := make([]sim.Time, n)
	for i := range out {
		out[i] = sim.Never
	}
	return out
}

// String implements Crashes.
func (NoCrashes) String() string { return "none" }

// CrashCount crashes Count processes (the highest indices, so writers at
// the low indices keep their role unless Count reaches them), spread
// between From and To.
type CrashCount struct {
	Count int
	From  sim.Time
	To    sim.Time
}

// Generate implements Crashes.
func (c CrashCount) Generate(n int, rng *xrand.Source) []sim.Time {
	out := make([]sim.Time, n)
	for i := range out {
		out[i] = sim.Never
	}
	count := c.Count
	if count > n {
		count = n
	}
	span := c.To - c.From
	for k := 0; k < count; k++ {
		at := c.From
		if span > 0 {
			at += rng.Int63n(span + 1)
		}
		out[n-1-k] = at
	}
	return out
}

// String implements Crashes.
func (c CrashCount) String() string { return fmt.Sprintf("crash(%d@[%d,%d])", c.Count, c.From, c.To) }

// MaxMinority returns the largest t compatible with Algorithm 1's
// assumption t < n/2.
func MaxMinority(n int) int {
	if n <= 1 {
		return 0
	}
	return (n - 1) / 2
}
