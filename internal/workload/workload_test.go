package workload

import (
	"bytes"
	"testing"
	"testing/quick"

	"anonurb/internal/sim"
	"anonurb/internal/xrand"
)

func TestSingleShot(t *testing.T) {
	w := SingleShot{At: 5, Proc: 7, Body: []byte("x")}
	bs := w.Generate(3, xrand.New(1))
	if len(bs) != 1 || bs[0].Proc != 1 || bs[0].At != 5 || !bytes.Equal(bs[0].Body, []byte("x")) {
		t.Fatalf("%+v", bs)
	}
	if w.String() == "" {
		t.Fatal("string")
	}
}

func TestMultiWriter(t *testing.T) {
	w := MultiWriter{Writers: 3, PerWriter: 4, Start: 10, Interval: 20}
	bs := w.Generate(5, xrand.New(1))
	if len(bs) != 12 || w.Count(5) != 12 {
		t.Fatalf("count %d", len(bs))
	}
	bodies := map[string]bool{}
	for _, b := range bs {
		if b.Proc < 0 || b.Proc >= 3 {
			t.Fatalf("writer out of range: %d", b.Proc)
		}
		if b.At < 10 {
			t.Fatalf("broadcast before start: %d", b.At)
		}
		if bodies[string(b.Body)] {
			t.Fatalf("duplicate body %q", b.Body)
		}
		bodies[string(b.Body)] = true
	}
}

func TestMultiWriterClamps(t *testing.T) {
	w := MultiWriter{Writers: 10, PerWriter: 0, Start: 0, Interval: 0}
	bs := w.Generate(2, xrand.New(1))
	if len(bs) != 2 || w.Count(2) != 2 {
		t.Fatalf("clamped count %d", len(bs))
	}
	for _, b := range bs {
		if b.Proc >= 2 {
			t.Fatalf("writer %d out of range", b.Proc)
		}
	}
}

func TestPoissonWriters(t *testing.T) {
	w := PoissonWriters{Count: 50, MeanGap: 10, Start: 5, BodyStamp: "p"}
	bs := w.Generate(4, xrand.New(2))
	if len(bs) != 50 {
		t.Fatalf("count %d", len(bs))
	}
	var prev sim.Time
	bodies := map[string]bool{}
	for _, b := range bs {
		if b.At < prev {
			t.Fatal("arrival times must be non-decreasing")
		}
		prev = b.At
		if b.Proc < 0 || b.Proc >= 4 {
			t.Fatalf("proc %d", b.Proc)
		}
		if bodies[string(b.Body)] {
			t.Fatalf("duplicate body %q", b.Body)
		}
		bodies[string(b.Body)] = true
	}
}

func TestPoissonDeterministic(t *testing.T) {
	w := PoissonWriters{Count: 20, MeanGap: 5, BodyStamp: "d"}
	a := w.Generate(3, xrand.New(7))
	b := w.Generate(3, xrand.New(7))
	for i := range a {
		if a[i].At != b[i].At || a[i].Proc != b[i].Proc || !bytes.Equal(a[i].Body, b[i].Body) {
			t.Fatal("not deterministic")
		}
	}
}

func TestNoCrashes(t *testing.T) {
	cs := NoCrashes{}.Generate(4, xrand.New(1))
	for _, c := range cs {
		if c != sim.Never {
			t.Fatal("NoCrashes crashed someone")
		}
	}
}

func TestCrashCount(t *testing.T) {
	plan := CrashCount{Count: 2, From: 10, To: 30}
	cs := plan.Generate(5, xrand.New(3))
	crashed := 0
	for i, c := range cs {
		if c == sim.Never {
			continue
		}
		crashed++
		if c < 10 || c > 30 {
			t.Fatalf("crash time %d out of window", c)
		}
		if i < 3 {
			t.Fatalf("crashed a low-index writer slot: %d", i)
		}
	}
	if crashed != 2 {
		t.Fatalf("crashed %d, want 2", crashed)
	}
}

func TestCrashCountClamp(t *testing.T) {
	cs := CrashCount{Count: 9, From: 1, To: 1}.Generate(3, xrand.New(4))
	for _, c := range cs {
		if c != 1 {
			t.Fatalf("expected everyone to crash at 1, got %v", cs)
		}
	}
}

func TestMaxMinority(t *testing.T) {
	cases := map[int]int{1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2, 7: 3, 15: 7}
	for n, want := range cases {
		if got := MaxMinority(n); got != want {
			t.Fatalf("MaxMinority(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMaxMinorityPropertyQuick(t *testing.T) {
	f := func(n uint8) bool {
		if n == 0 {
			return true
		}
		t := MaxMinority(int(n))
		// t must satisfy the paper's constraint strictly: t < n/2,
		// and be maximal: t+1 >= n/2.
		return 2*t < int(n) && 2*(t+1) >= int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
