package workload

import (
	"fmt"
	"math"

	"anonurb/internal/sim"
	"anonurb/internal/xrand"
)

// fill pads body out to size bytes with a deterministic pattern keyed by
// stamp, so skewed workloads can model payload weight (the admission
// stage meters bytes, not messages) without the schedule losing its
// human-readable prefix.
func fill(body []byte, size int, stamp uint64) []byte {
	if len(body) >= size {
		return body
	}
	pad := xrand.New(xrand.HashStream(stamp, uint64(len(body)), uint64(size)))
	for len(body) < size {
		body = append(body, byte(pad.Uint64()))
	}
	return body
}

// ZipfWriters draws Count broadcasts with exponential inter-arrival times
// of mean MeanGap, attributing each to a process by a Zipf law over
// process rank: process r is chosen with probability proportional to
// 1/(r+1)^S. S=0 degenerates to uniform (PoissonWriters); S around 1 is
// the classic web-traffic skew; larger S concentrates almost everything
// on process 0. This is the "plausibly skewed production traffic" point
// between the uniform generators and the adversarial Flood.
type ZipfWriters struct {
	Count   int
	S       float64
	MeanGap float64
	Start   sim.Time
	Payload int
}

// Generate implements Broadcasts.
func (w ZipfWriters) Generate(n int, rng *xrand.Source) []sim.ScheduledBroadcast {
	count := w.Count
	if count < 1 {
		count = 1
	}
	// Inverse-CDF sampling over the n ranks. Precomputing the CDF keeps
	// the draw O(log n)-ish via linear scan on small n and, crucially,
	// consumes exactly one rng draw per broadcast for the rank, so the
	// schedule is a stable function of (seed, parameters).
	cdf := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), w.S)
		cdf[r] = total
	}
	at := float64(w.Start)
	out := make([]sim.ScheduledBroadcast, 0, count)
	for i := 0; i < count; i++ {
		at += rng.Exp(w.MeanGap)
		u := rng.Float64() * total
		proc := n - 1
		for r := 0; r < n; r++ {
			if u < cdf[r] {
				proc = r
				break
			}
		}
		body := fmt.Appendf(nil, "z%d-%d", proc, i)
		out = append(out, sim.ScheduledBroadcast{
			At:   sim.Time(at) + 1,
			Proc: proc,
			Body: fill(body, w.Payload, uint64(i)),
		})
	}
	return out
}

// String implements Broadcasts.
func (w ZipfWriters) String() string {
	return fmt.Sprintf("zipf(%d,s=%g,gap=%g)", w.Count, w.S, w.MeanGap)
}

// BurstTrains schedules Trains bursts; each burst is PerTrain broadcasts
// back-to-back (Spacing apart) from one uniformly random process, and
// consecutive bursts are separated by exponential gaps of mean Gap. It
// models the thundering-herd pattern — a quiet system where one producer
// periodically dumps a backlog — that uniform Poisson traffic never
// produces.
type BurstTrains struct {
	Trains   int
	PerTrain int
	Spacing  sim.Time
	Gap      float64
	Start    sim.Time
	Payload  int
}

// Generate implements Broadcasts.
func (w BurstTrains) Generate(n int, rng *xrand.Source) []sim.ScheduledBroadcast {
	trains := w.Trains
	if trains < 1 {
		trains = 1
	}
	per := w.PerTrain
	if per < 1 {
		per = 1
	}
	spacing := w.Spacing
	if spacing < 1 {
		spacing = 1
	}
	at := float64(w.Start)
	out := make([]sim.ScheduledBroadcast, 0, trains*per)
	for t := 0; t < trains; t++ {
		at += rng.Exp(w.Gap)
		proc := rng.Intn(n)
		for k := 0; k < per; k++ {
			body := fmt.Appendf(nil, "b%d-%d-%d", t, proc, k)
			out = append(out, sim.ScheduledBroadcast{
				At:   sim.Time(at) + 1 + sim.Time(k)*spacing,
				Proc: proc,
				Body: fill(body, w.Payload, uint64(t)<<32|uint64(k)),
			})
		}
	}
	return out
}

// String implements Broadcasts.
func (w BurstTrains) String() string {
	return fmt.Sprintf("burst(%dx%d,gap=%g)", w.Trains, w.PerTrain, w.Gap)
}

// Flood is the adversarial single-broadcaster workload: process Flooder
// emits Count broadcasts of Payload bytes at Spacing apart — as fast and
// as heavy as the caller dares — while every other process broadcasts
// VictimMsgs small messages spread evenly across the flood window. The
// fair lossy channel model permits this sender ("fair" constrains the
// channel, not the producers), and without an admission stage the flood's
// MSG/ACK retransmissions legally evict the victims' frames from finite
// inboxes. This is the scenario BENCH_fairness.json quantifies.
type Flood struct {
	Flooder    int
	Count      int
	Spacing    sim.Time
	Payload    int
	VictimMsgs int
	VictimSize int
	Start      sim.Time
}

// Generate implements Broadcasts.
func (w Flood) Generate(n int, rng *xrand.Source) []sim.ScheduledBroadcast {
	count := w.Count
	if count < 1 {
		count = 1
	}
	spacing := w.Spacing
	if spacing < 1 {
		spacing = 1
	}
	flooder := w.Flooder % n
	if flooder < 0 {
		flooder += n
	}
	span := sim.Time(count-1)*spacing + 1
	out := make([]sim.ScheduledBroadcast, 0, count+(n-1)*w.VictimMsgs)
	for i := 0; i < count; i++ {
		body := fmt.Appendf(nil, "flood-%d", i)
		out = append(out, sim.ScheduledBroadcast{
			At:   w.Start + 1 + sim.Time(i)*spacing,
			Proc: flooder,
			Body: fill(body, w.Payload, uint64(i)),
		})
	}
	for p := 0; p < n; p++ {
		if p == flooder {
			continue
		}
		for k := 0; k < w.VictimMsgs; k++ {
			// Victims spread evenly across the flood window with a small
			// per-process jitter so their frames interleave with the
			// flood rather than clustering at one instant.
			at := w.Start + 1 + span*sim.Time(k)/sim.Time(maxInt(w.VictimMsgs, 1)) +
				sim.Time(rng.Int63n(int64(spacing)+1))
			body := fmt.Appendf(nil, "v%d-%d", p, k)
			out = append(out, sim.ScheduledBroadcast{
				At:   at,
				Proc: p,
				Body: fill(body, w.VictimSize, uint64(p)<<32|uint64(k)),
			})
		}
	}
	return out
}

// String implements Broadcasts.
func (w Flood) String() string {
	return fmt.Sprintf("flood(p%d x%d@%d,%dB)", w.Flooder, w.Count, w.Spacing, w.Payload)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
