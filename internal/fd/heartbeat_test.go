package fd

import (
	"testing"

	"anonurb/internal/ident"
)

func TestHeartbeatTrustsOwnLabel(t *testing.T) {
	now := int64(0)
	h := NewHeartbeat(lbl(1), 50, func() int64 { return now })
	v := h.ATheta()
	if len(v) != 1 || v[0].Label != lbl(1) || v[0].Number != 1 {
		t.Fatalf("initial view %v", v)
	}
	if h.Label() != lbl(1) {
		t.Fatal("label accessor")
	}
}

func TestHeartbeatTrustAndExpiry(t *testing.T) {
	now := int64(0)
	h := NewHeartbeat(lbl(1), 50, func() int64 { return now })
	h.Hear(lbl(2))
	h.Hear(lbl(3))
	v := h.ATheta()
	if len(v) != 3 {
		t.Fatalf("want 3 trusted, got %v", v)
	}
	for _, p := range v {
		if p.Number != 3 {
			t.Fatalf("number should be |trusted| = 3: %v", v)
		}
	}
	// lbl(2) keeps beating, lbl(3) goes silent.
	now = 40
	h.Hear(lbl(2))
	now = 80 // lbl(3) last heard at 0: expired (80 > 0+50)
	v = h.APStar()
	if len(v) != 2 || v.Has(lbl(3)) {
		t.Fatalf("expired label still trusted: %v", v)
	}
	if n, _ := v.Lookup(lbl(2)); n != 2 {
		t.Fatalf("number should shrink with the trusted set: %v", v)
	}
	// A late heartbeat re-trusts (pre-GST behaviour).
	h.Hear(lbl(3))
	if !h.ATheta().Has(lbl(3)) {
		t.Fatal("revived label not trusted")
	}
}

func TestHeartbeatOwnLabelNeverExpires(t *testing.T) {
	now := int64(0)
	h := NewHeartbeat(lbl(1), 10, func() int64 { return now })
	now = 1_000_000
	if !h.ATheta().Has(lbl(1)) {
		t.Fatal("own label expired")
	}
}

func TestHeartbeatHearingOwnLabelHarmless(t *testing.T) {
	now := int64(0)
	h := NewHeartbeat(lbl(1), 10, func() int64 { return now })
	h.Hear(lbl(1)) // own heartbeats loop back over the self-link
	v := h.ATheta()
	if len(v) != 1 {
		t.Fatalf("own label double-counted: %v", v)
	}
}

func TestHeartbeatSynchronousRunSatisfiesAxioms(t *testing.T) {
	// Three processes, one crashes at t=100. Heartbeats every 10 with
	// delay 1, timeout 30: after the crash expires, every live
	// detector's view must be exactly the correct labels with
	// number = |Correct| — the post-GST oracle shape.
	labels := []ident.Tag{lbl(1), lbl(2), lbl(3)}
	now := int64(0)
	clock := func() int64 { return now }
	hs := []*Heartbeat{
		NewHeartbeat(labels[0], 30, clock),
		NewHeartbeat(labels[1], 30, clock),
		NewHeartbeat(labels[2], 30, clock),
	}
	crashAt := map[int]int64{2: 100}
	for ; now < 300; now++ {
		if now%10 != 0 {
			continue
		}
		for i, h := range hs {
			if at, dead := crashAt[i]; dead && now >= at {
				continue // crashed: no more beats
			}
			for j := range hs {
				if at, dead := crashAt[j]; dead && now >= at {
					continue // crashed: hears nothing
				}
				hs[j].Hear(h.Label()) // delay < 1 tick, synchronous
			}
		}
	}
	for i := 0; i < 2; i++ {
		v := hs[i].APStar()
		if len(v) != 2 {
			t.Fatalf("p%d view %v, want the 2 correct labels", i, v)
		}
		if v.Has(labels[2]) {
			t.Fatalf("crashed label still trusted at p%d", i)
		}
		for _, p := range v {
			if p.Number != 2 {
				t.Fatalf("number %d, want |Correct| = 2", p.Number)
			}
		}
	}
}

func TestHeartbeatPanicsOnBadTimeout(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHeartbeat(lbl(1), 0, func() int64 { return 0 })
}
