package fd

import (
	"fmt"

	"anonurb/internal/ident"
	"anonurb/internal/xrand"
)

// NoiseMode selects how the Oracle behaves before its stabilisation time.
type NoiseMode int

const (
	// NoiseExact: views are perfect from time zero (GST is effectively 0).
	NoiseExact NoiseMode = iota
	// NoiseBenign: pre-GST, AΘ views may omit some correct pairs and
	// carry jittered numbers; AP* views keep every correct pair (with
	// number possibly inflated) and may list still-alive faulty pairs.
	NoiseBenign
	// NoiseAdversarial: pre-GST, maximal legal noise — AΘ additionally
	// shows labels of (still alive) faulty processes to correct
	// processes, exercising Algorithm 2's stale-label purge.
	NoiseAdversarial
)

// String implements fmt.Stringer.
func (m NoiseMode) String() string {
	switch m {
	case NoiseExact:
		return "exact"
	case NoiseBenign:
		return "benign"
	case NoiseAdversarial:
		return "adversarial"
	default:
		return fmt.Sprintf("NoiseMode(%d)", int(m))
	}
}

// OracleConfig parameterises a grounded failure detector oracle.
type OracleConfig struct {
	// N is the number of processes.
	N int
	// GST is the virtual time at which views become exact and permanent.
	// 0 means perfect from the start.
	GST int64
	// Noise selects the pre-GST behaviour.
	Noise NoiseMode
	// NoisePeriod is how often (in virtual time) pre-GST views are
	// re-rolled. Defaults to 50 if zero.
	NoisePeriod int64
	// RevealToFaulty is an ABLATION knob: how many faulty processes are
	// added to the audience S(ℓ) of each correct process's label ℓ.
	//
	// The default 0 is required for Algorithm 2 to be safe and quiescent:
	// the class axioms permit S(ℓ) to contain faulty processes (accuracy
	// only demands any Number-sized subset of S(ℓ) contains a correct
	// process), but then a frozen ACK from a crashed process can stand in
	// for a correct process in the retirement guard (paper line 55) and
	// the retransmission of m can stop before every correct process has
	// received it. Experiment T4 demonstrates exactly this. The paper's
	// own quiescence proof implicitly assumes the audience of every label
	// is {owner} ∪ Correct, which is what 0 enforces.
	RevealToFaulty int
	// Seed drives all pre-GST noise deterministically.
	Seed uint64
}

// Oracle synthesises AΘ and AP* views that satisfy the class axioms for a
// known crash schedule. It is the simulation-grade substitute for a real
// failure detector implementation (see DESIGN.md §2); the heartbeat
// realisation in this package shows how the same views arise from message
// exchange under partial synchrony.
//
// Soundness invariants the Oracle maintains at every time τ and process i:
//
//  1. Audience control: label ℓ_j appears in i's views only if
//     i ∈ S(ℓ_j) := {j} ∪ Correct ∪ Reveal_j, with Reveal_j ⊆ Faulty and
//     |Reveal_j| = RevealToFaulty (0 by default).
//  2. Perpetual AΘ-accuracy: every pair (ℓ_j, k) shown anywhere has
//     k ≥ |S(ℓ_j) ∩ Faulty| + 1, so every k-subset of S(ℓ_j) contains a
//     correct process.
//  3. Perpetual AP* containment: at correct processes, the AP* view
//     always contains (ℓ_c, k_c) with k_c ≥ |Correct| for every correct
//     c. (Required for the safety of retiring messages; see
//     quiescent.go.)
//  4. Post-GST exactness: from GST on, views at correct processes are
//     exactly {(ℓ_c, |Correct|) : c ∈ Correct}.
type Oracle struct {
	cfg     OracleConfig
	labels  []ident.Tag
	correct []bool
	nCor    int
	// reveal[f] reports whether faulty process f is in the audience of
	// correct labels (the T4 ablation).
	reveal []bool
}

// NewOracle builds an oracle for a run in which process i crashes iff
// correct[i] is false. (The crash *times* live in the simulator's
// schedule; the oracle only needs the final correct set, because its
// pre-GST noise already covers every legal transient.)
func NewOracle(cfg OracleConfig, correct []bool) *Oracle {
	if cfg.N != len(correct) {
		panic("fd: OracleConfig.N disagrees with correct slice")
	}
	if cfg.NoisePeriod <= 0 {
		cfg.NoisePeriod = 50
	}
	o := &Oracle{
		cfg:     cfg,
		labels:  make([]ident.Tag, cfg.N),
		correct: append([]bool(nil), correct...),
		reveal:  make([]bool, cfg.N),
	}
	src := ident.NewSource(xrand.SplitLabeled(cfg.Seed, "fd-labels"))
	for i := range o.labels {
		o.labels[i] = src.Next()
		if correct[i] {
			o.nCor++
		}
	}
	// Choose which faulty processes receive correct labels (ablation).
	if cfg.RevealToFaulty > 0 {
		left := cfg.RevealToFaulty
		for i := 0; i < cfg.N && left > 0; i++ {
			if !o.correct[i] {
				o.reveal[i] = true
				left--
			}
		}
	}
	return o
}

// Label exposes process i's label for tests and trace annotation. The
// algorithms never see this mapping.
func (o *Oracle) Label(i int) ident.Tag { return o.labels[i] }

// NumCorrect returns |Correct| for the run.
func (o *Oracle) NumCorrect() int { return o.nCor }

// CorrectLabels returns the labels of all correct processes, in index
// order, for validators.
func (o *Oracle) CorrectLabels() []ident.Tag {
	out := make([]ident.Tag, 0, o.nCor)
	for i, c := range o.correct {
		if c {
			out = append(out, o.labels[i])
		}
	}
	return out
}

// exactView is the post-GST view at a correct process.
func (o *Oracle) exactView() View {
	v := make(View, 0, o.nCor)
	for i, c := range o.correct {
		if c {
			v = append(v, Pair{Label: o.labels[i], Number: o.nCor})
		}
	}
	return Normalize(v)
}

// faultySelfView is the view at a faulty process: its own label with the
// minimum accurate number (2: any 2-subset of {owner} ∪ Correct contains a
// correct process), plus — under the reveal ablation — the correct pairs.
func (o *Oracle) faultySelfView(i int) View {
	v := View{{Label: o.labels[i], Number: 2}}
	if o.reveal[i] {
		for j, c := range o.correct {
			if c {
				v = append(v, Pair{Label: o.labels[j], Number: o.nCor})
			}
		}
	}
	return Normalize(v)
}

// noiseFor derives the deterministic pre-GST noise stream for (proc,
// epoch, which) where which distinguishes AΘ from AP*.
func (o *Oracle) noiseFor(proc int, now int64, which uint64) *xrand.Source {
	epoch := uint64(now / o.cfg.NoisePeriod)
	return xrand.New(xrand.HashStream(o.cfg.Seed, uint64(proc), epoch, which))
}

// ATheta returns process i's AΘ view at virtual time now.
func (o *Oracle) ATheta(i int, now int64) View {
	if !o.correct[i] {
		return o.faultySelfView(i)
	}
	if o.cfg.Noise == NoiseExact || now >= o.cfg.GST {
		return o.exactView()
	}
	rng := o.noiseFor(i, now, 1)
	v := make(View, 0, o.cfg.N)
	for j, c := range o.correct {
		if c {
			// Pre-GST a correct pair may be missing (completeness is
			// eventual) and its number may be anything ≥ 1 (any subset of
			// S(ℓ) ⊆ Correct∪{owner} of size ≥ 1 … any 1-subset of a set of
			// correct processes is correct, so accuracy holds for all k ≥ 1).
			if rng.Bool(0.3) {
				continue // omitted this epoch
			}
			n := 1 + rng.Intn(o.cfg.N)
			v = append(v, Pair{Label: o.labels[j], Number: n})
		} else if o.cfg.Noise == NoiseAdversarial {
			// Show a faulty process's label to correct processes with an
			// accurate number (≥ 2 guards the subset property, because
			// S(ℓ_j) = Correct ∪ {j} and any 2-subset contains a correct
			// process).
			if rng.Bool(0.5) {
				n := 2 + rng.Intn(o.cfg.N)
				v = append(v, Pair{Label: o.labels[j], Number: n})
			}
		}
	}
	return Normalize(v)
}

// APStar returns process i's AP* view at virtual time now.
func (o *Oracle) APStar(i int, now int64) View {
	if !o.correct[i] {
		return o.faultySelfView(i)
	}
	if o.cfg.Noise == NoiseExact || now >= o.cfg.GST {
		return o.exactView()
	}
	rng := o.noiseFor(i, now, 2)
	// Perpetual containment (invariant 3): every correct pair is always
	// present with number ≥ |Correct|. Numbers may be inflated pre-GST.
	v := make(View, 0, o.cfg.N)
	for j, c := range o.correct {
		if c {
			n := o.nCor
			if rng.Bool(0.4) {
				n += rng.Intn(o.cfg.N - o.nCor + 1)
			}
			v = append(v, Pair{Label: o.labels[j], Number: n})
		} else if rng.Bool(0.5) {
			// A not-yet-removed faulty pair (AP*-accuracy is eventual).
			v = append(v, Pair{Label: o.labels[j], Number: 2 + rng.Intn(o.cfg.N)})
		}
	}
	return Normalize(v)
}

// Handle binds the oracle to one process with a clock, yielding the
// Detector the algorithm consumes.
func (o *Oracle) Handle(proc int, clock func() int64) Detector {
	return Func{
		ThetaFn: func() View { return o.ATheta(proc, clock()) },
		StarFn:  func() View { return o.APStar(proc, clock()) },
	}
}
