package fd

import (
	"sort"

	"anonurb/internal/ident"
)

// Heartbeat is a message-exchange realisation of AΘ and AP* for runs that
// are synchronous enough, mirroring how Θ and P are realised in
// non-anonymous systems. It shows the oracle classes are implementable —
// the axioms are not free lunch, they encode a synchrony assumption.
//
// Protocol: every process draws one permanent random label and
// periodically broadcasts ALIVE(label). Each process tracks, per label,
// the time it last heard it. A label is trusted while it was heard within
// Timeout; the output views are
//
//	{(label, number) : label trusted}, number = |trusted labels|,
//
// with the process's own label always trusted. Under the assumptions
// below, after every crashed process's last heartbeat has expired and
// every correct process's heartbeats flow within the timeout, the views
// are exactly the correct labels with number = |Correct| — the post-GST
// shape of the grounded oracle — and the class axioms hold:
//
//   - Crash detection (AP*-accuracy): a crashed process stops beating, so
//     its label expires everywhere, permanently.
//   - Completeness: correct processes beat forever, so their labels stay
//     trusted with the right count.
//   - Perpetual AΘ-accuracy and the audience invariant hold because a
//     heartbeat reveals a label precisely to the processes that receive
//     it: processes that have crashed stop refreshing S(label), and —
//     KEY ASSUMPTION — timeouts never fire for live correct processes
//     (synchrony), so `number` never under-counts the correct knowers.
//
// On a truly asynchronous network the timeout can lie; Heartbeat is then
// NOT a legal AΘ/AP* (accuracy breaks), which is exactly why the paper
// posits the detectors axiomatically instead of building them. The
// simulator experiments therefore use the grounded oracle; Heartbeat
// exists for the live runtime and for the synchrony ablation test.
//
// Heartbeat is not safe for concurrent use; the hosting runtime
// serialises calls as it does for urb.Process.
type Heartbeat struct {
	label   ident.Tag
	timeout int64
	clock   func() int64
	// lastHeard[label] = last time the label was heard; the own label is
	// implicitly always fresh.
	lastHeard map[ident.Tag]int64
	order     []ident.Tag
}

// NewHeartbeat builds a heartbeat detector with the given permanent
// label, trust timeout and clock.
func NewHeartbeat(label ident.Tag, timeout int64, clock func() int64) *Heartbeat {
	if timeout <= 0 {
		panic("fd: heartbeat timeout must be positive")
	}
	return &Heartbeat{
		label:     label,
		timeout:   timeout,
		clock:     clock,
		lastHeard: make(map[ident.Tag]int64),
	}
}

// Label returns the detector's own label (to be broadcast in ALIVE
// messages by the hosting runtime).
func (h *Heartbeat) Label() ident.Tag { return h.label }

// Timeout returns the trust timeout the detector was built with
// (snapshot-compatibility checks need it).
func (h *Heartbeat) Timeout() int64 { return h.timeout }

// Relabel replaces the detector's own label. It exists for crash
// recovery: the label is the process's persistent anonymous identity
// towards its peers, so a process restored from a snapshot must adopt
// the label it beat under before the crash rather than the fresh one its
// reconstruction drew.
func (h *Heartbeat) Relabel(label ident.Tag) { h.label = label }

// HeardLabel is one entry of the detector's heard map: a label and the
// clock time it was last heard (snapshot support for crash-recovery
// hosts).
type HeardLabel struct {
	Label ident.Tag
	At    int64
}

// Heard returns every label ever heard, in first-heard order, with its
// last-heard time.
func (h *Heartbeat) Heard() []HeardLabel {
	out := make([]HeardLabel, 0, len(h.order))
	for _, l := range h.order {
		out = append(out, HeardLabel{Label: l, At: h.lastHeard[l]})
	}
	return out
}

// RestoreHeard replaces the heard map wholesale with the given entries
// (in first-heard order). Crash-recovery hosts use it to reload a
// snapshot; entries whose times predate the restarted clock's epoch
// simply read as expired, the conservative outcome.
func (h *Heartbeat) RestoreHeard(entries []HeardLabel) {
	h.lastHeard = make(map[ident.Tag]int64, len(entries))
	h.order = h.order[:0]
	for _, e := range entries {
		if _, known := h.lastHeard[e.Label]; !known {
			h.order = append(h.order, e.Label)
		}
		h.lastHeard[e.Label] = e.At
	}
}

// Hear records an ALIVE(label) reception.
func (h *Heartbeat) Hear(label ident.Tag) {
	if _, known := h.lastHeard[label]; !known {
		h.order = append(h.order, label)
	}
	h.lastHeard[label] = h.clock()
}

// trusted returns the currently trusted labels (own label included),
// sorted for determinism.
func (h *Heartbeat) trusted() []ident.Tag {
	now := h.clock()
	out := []ident.Tag{h.label}
	for _, l := range h.order {
		if l == h.label {
			continue
		}
		if now-h.lastHeard[l] <= h.timeout {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// view builds the (label, number) view from the trusted set.
func (h *Heartbeat) view() View {
	ts := h.trusted()
	v := make(View, len(ts))
	for i, l := range ts {
		v[i] = Pair{Label: l, Number: len(ts)}
	}
	return v
}

// ATheta implements Detector.
func (h *Heartbeat) ATheta() View { return h.view() }

// APStar implements Detector.
func (h *Heartbeat) APStar() View { return h.view() }

var _ Detector = (*Heartbeat)(nil)
