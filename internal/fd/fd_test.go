package fd

import (
	"strings"
	"testing"

	"anonurb/internal/ident"
)

func lbl(h uint64) ident.Tag { return ident.Tag{Hi: h, Lo: 1} }

func TestNormalizeSortsAndDedups(t *testing.T) {
	v := View{
		{Label: lbl(3), Number: 2},
		{Label: lbl(1), Number: 5},
		{Label: lbl(3), Number: 7},
		{Label: lbl(2), Number: 1},
	}
	v = Normalize(v)
	if len(v) != 3 {
		t.Fatalf("len %d, want 3", len(v))
	}
	if v[0].Label != lbl(1) || v[1].Label != lbl(2) || v[2].Label != lbl(3) {
		t.Fatalf("not sorted: %v", v)
	}
	if v[2].Number != 7 {
		t.Fatalf("dedup should keep max number, got %d", v[2].Number)
	}
}

func TestViewLookupHasLabels(t *testing.T) {
	v := Normalize(View{{Label: lbl(1), Number: 3}, {Label: lbl(2), Number: 4}})
	if n, ok := v.Lookup(lbl(2)); !ok || n != 4 {
		t.Fatalf("lookup: %d %v", n, ok)
	}
	if _, ok := v.Lookup(lbl(9)); ok {
		t.Fatal("phantom lookup")
	}
	if !v.Has(lbl(1)) || v.Has(lbl(9)) {
		t.Fatal("Has broken")
	}
	ls := v.Labels()
	if ls.Len() != 2 || !ls.Has(lbl(1)) {
		t.Fatal("Labels broken")
	}
}

func TestViewEqualClone(t *testing.T) {
	a := Normalize(View{{Label: lbl(1), Number: 3}})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone should be equal")
	}
	b[0].Number = 9
	if a.Equal(b) || a[0].Number == 9 {
		t.Fatal("clone must be independent")
	}
	c := Normalize(View{{Label: lbl(1), Number: 3}, {Label: lbl(2), Number: 1}})
	if a.Equal(c) {
		t.Fatal("different lengths cannot be equal")
	}
}

func TestViewString(t *testing.T) {
	v := Normalize(View{{Label: lbl(1), Number: 3}})
	s := v.String()
	if !strings.HasPrefix(s, "{") || !strings.Contains(s, ":3") {
		t.Fatalf("view string %q", s)
	}
}

func TestStaticAndFuncDetectors(t *testing.T) {
	v := Normalize(View{{Label: lbl(1), Number: 2}})
	s := Static{Theta: v, Star: v}
	if !s.ATheta().Equal(v) || !s.APStar().Equal(v) {
		t.Fatal("static detector")
	}
	calls := 0
	f := Func{
		ThetaFn: func() View { calls++; return v },
		StarFn:  func() View { calls++; return nil },
	}
	f.ATheta()
	f.APStar()
	if calls != 2 {
		t.Fatal("func detector not invoked")
	}
}
