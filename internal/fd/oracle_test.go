package fd

import (
	"testing"
)

// mkOracle builds an oracle over the given correctness vector.
func mkOracle(t *testing.T, cfg OracleConfig, correct []bool) (*Oracle, *GroundTruth) {
	t.Helper()
	cfg.N = len(correct)
	o := NewOracle(cfg, correct)
	return o, NewGroundTruth(o)
}

func TestOracleExactViews(t *testing.T) {
	correct := []bool{true, false, true, true, false}
	o, g := mkOracle(t, OracleConfig{Noise: NoiseExact, Seed: 1}, correct)
	if o.NumCorrect() != 3 {
		t.Fatalf("NumCorrect %d", o.NumCorrect())
	}
	for i, c := range correct {
		if !c {
			continue
		}
		for _, now := range []int64{0, 100, 100000} {
			v := o.ATheta(i, now)
			if err := g.CheckExactness(i, v); err != nil {
				t.Fatalf("ATheta: %v", err)
			}
			if err := g.CheckAccuracy(i, v); err != nil {
				t.Fatalf("ATheta accuracy: %v", err)
			}
			w := o.APStar(i, now)
			if err := g.CheckExactness(i, w); err != nil {
				t.Fatalf("APStar: %v", err)
			}
		}
	}
}

func TestOracleFaultyProcessView(t *testing.T) {
	correct := []bool{true, false, true}
	o, g := mkOracle(t, OracleConfig{Noise: NoiseExact, Seed: 2}, correct)
	v := o.ATheta(1, 0)
	if len(v) != 1 || v[0].Label != o.Label(1) || v[0].Number != 2 {
		t.Fatalf("faulty self view: %v", v)
	}
	if err := g.CheckAccuracy(1, v); err != nil {
		t.Fatalf("faulty view accuracy: %v", err)
	}
}

func TestOraclePreGSTAccuracyHolds(t *testing.T) {
	// Accuracy is perpetual: every pre-GST view in every noise mode must
	// satisfy it.
	correct := []bool{true, false, true, true, false, true}
	for _, mode := range []NoiseMode{NoiseBenign, NoiseAdversarial} {
		o, g := mkOracle(t, OracleConfig{Noise: mode, GST: 1000, NoisePeriod: 10, Seed: 3}, correct)
		for now := int64(0); now < 1000; now += 7 {
			for i, c := range correct {
				if !c {
					continue
				}
				if err := g.CheckAccuracy(i, o.ATheta(i, now)); err != nil {
					t.Fatalf("mode %v, t=%d, p%d ATheta: %v", mode, now, i, err)
				}
				if err := g.CheckAccuracy(i, o.APStar(i, now)); err != nil {
					t.Fatalf("mode %v, t=%d, p%d APStar: %v", mode, now, i, err)
				}
			}
		}
	}
}

func TestOracleAPStarPerpetualContainment(t *testing.T) {
	// Invariant 3: AP* at correct processes always contains all correct
	// labels with number ≥ |Correct|, in every noise mode.
	correct := []bool{true, true, false, true, false}
	for _, mode := range []NoiseMode{NoiseExact, NoiseBenign, NoiseAdversarial} {
		o, g := mkOracle(t, OracleConfig{Noise: mode, GST: 500, NoisePeriod: 13, Seed: 4}, correct)
		for now := int64(0); now < 800; now += 11 {
			for i, c := range correct {
				if !c {
					continue
				}
				if err := g.CheckAPStarContainment(i, o.APStar(i, now)); err != nil {
					t.Fatalf("mode %v t=%d: %v", mode, now, err)
				}
			}
		}
	}
}

func TestOraclePostGSTExactInAllModes(t *testing.T) {
	correct := []bool{true, false, true}
	for _, mode := range []NoiseMode{NoiseExact, NoiseBenign, NoiseAdversarial} {
		o, g := mkOracle(t, OracleConfig{Noise: mode, GST: 100, Seed: 5}, correct)
		for _, now := range []int64{100, 101, 5000} {
			for i, c := range correct {
				if !c {
					continue
				}
				if err := g.CheckExactness(i, o.ATheta(i, now)); err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				if err := g.CheckExactness(i, o.APStar(i, now)); err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
			}
		}
	}
}

func TestOracleDeterministicViews(t *testing.T) {
	correct := []bool{true, false, true, true}
	mk := func() *Oracle {
		return NewOracle(OracleConfig{N: 4, Noise: NoiseAdversarial, GST: 1000, NoisePeriod: 10, Seed: 6}, correct)
	}
	a, b := mk(), mk()
	for now := int64(0); now < 200; now += 3 {
		for i := 0; i < 4; i++ {
			if !a.ATheta(i, now).Equal(b.ATheta(i, now)) {
				t.Fatalf("ATheta diverged at p%d t=%d", i, now)
			}
			if !a.APStar(i, now).Equal(b.APStar(i, now)) {
				t.Fatalf("APStar diverged at p%d t=%d", i, now)
			}
		}
	}
}

func TestOracleBenignNeverShowsFaultyLabelsInTheta(t *testing.T) {
	correct := []bool{true, false, true, false, true}
	o, _ := mkOracle(t, OracleConfig{Noise: NoiseBenign, GST: 10000, NoisePeriod: 7, Seed: 7}, correct)
	faulty1, faulty3 := o.Label(1), o.Label(3)
	for now := int64(0); now < 500; now += 5 {
		for i, c := range correct {
			if !c {
				continue
			}
			v := o.ATheta(i, now)
			if v.Has(faulty1) || v.Has(faulty3) {
				t.Fatalf("benign ATheta leaked a faulty label at t=%d", now)
			}
		}
	}
}

func TestOracleAdversarialShowsFaultyLabelsPreGST(t *testing.T) {
	correct := []bool{true, false, true}
	o, _ := mkOracle(t, OracleConfig{Noise: NoiseAdversarial, GST: 10000, NoisePeriod: 7, Seed: 8}, correct)
	faulty := o.Label(1)
	seen := false
	for now := int64(0); now < 2000 && !seen; now += 7 {
		if o.ATheta(0, now).Has(faulty) {
			seen = true
		}
	}
	if !seen {
		t.Fatal("adversarial mode never exercised the stale-label path")
	}
}

func TestOracleRevealToFaultyAudience(t *testing.T) {
	correct := []bool{true, false, true, false}
	o, g := mkOracle(t, OracleConfig{Noise: NoiseExact, RevealToFaulty: 1, Seed: 9}, correct)
	// Faulty p1 is the revealed one; it sees correct labels.
	v := o.ATheta(1, 0)
	if !v.Has(o.Label(0)) || !v.Has(o.Label(2)) {
		t.Fatalf("revealed faulty process should see correct labels: %v", v)
	}
	// Faulty p3 is not revealed; it sees only itself.
	w := o.ATheta(3, 0)
	if len(w) != 1 || w[0].Label != o.Label(3) {
		t.Fatalf("unrevealed faulty process view: %v", w)
	}
	// Ground truth audience must reflect the reveal.
	if !g.Audience[0][1] {
		t.Fatal("audience of p0's label should include revealed faulty p1")
	}
	if g.Audience[0][3] {
		t.Fatal("audience of p0's label must exclude unrevealed faulty p3")
	}
	// Accuracy still holds for the revealed views.
	if err := g.CheckAccuracy(1, v); err != nil {
		t.Fatalf("revealed view accuracy: %v", err)
	}
}

func TestOracleHandleBindsClock(t *testing.T) {
	correct := []bool{true, true}
	o, g := mkOracle(t, OracleConfig{Noise: NoiseBenign, GST: 100, NoisePeriod: 5, Seed: 10}, correct)
	now := int64(0)
	h := o.Handle(0, func() int64 { return now })
	_ = h.ATheta() // pre-GST, may be anything legal
	now = 200
	if err := g.CheckExactness(0, h.ATheta()); err != nil {
		t.Fatalf("handle did not follow clock: %v", err)
	}
	if err := g.CheckExactness(0, h.APStar()); err != nil {
		t.Fatalf("handle APStar: %v", err)
	}
}

func TestOracleConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for N mismatch")
		}
	}()
	NewOracle(OracleConfig{N: 3}, []bool{true})
}

func TestOracleAllCorrect(t *testing.T) {
	correct := []bool{true, true, true}
	o, g := mkOracle(t, OracleConfig{Noise: NoiseBenign, GST: 50, NoisePeriod: 5, Seed: 11}, correct)
	for now := int64(0); now < 100; now += 3 {
		for i := range correct {
			if err := g.CheckAccuracy(i, o.ATheta(i, now)); err != nil {
				t.Fatal(err)
			}
			if err := g.CheckAPStarContainment(i, o.APStar(i, now)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(o.CorrectLabels()) != 3 {
		t.Fatal("CorrectLabels")
	}
}

func TestNoiseModeString(t *testing.T) {
	if NoiseExact.String() != "exact" || NoiseBenign.String() != "benign" ||
		NoiseAdversarial.String() != "adversarial" {
		t.Fatal("mode strings")
	}
	if NoiseMode(9).String() == "" {
		t.Fatal("unknown mode string empty")
	}
}
