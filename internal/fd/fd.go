// Package fd implements the paper's two anonymous failure detector
// classes, AΘ and AP*.
//
// Both classes give each process a read-only view: a set of
// (label, number) pairs, where a label is a random anonymous identifier
// standing for some process (nobody, including the owner, knows the
// mapping) and number says how many correct processes "know" that label.
// Knowing a label ℓ means having (ℓ, –) in one's own view at some time;
// the set of knowers is called S(ℓ).
//
// The classes' properties (Sections V-A and V-B of the paper):
//
//	AΘ-completeness: eventually, every correct process's view permanently
//	  contains pairs for all correct processes, and every pair (ℓ, k) in
//	  the view has k = |S(ℓ) ∩ Correct|.
//	AΘ-accuracy (perpetual): for every pair (ℓ, k) ever output, every
//	  k-sized subset of S(ℓ) contains at least one correct process.
//	AP*-completeness: as AΘ-completeness.
//	AP*-accuracy: the label of a crashed process is eventually and
//	  permanently removed from every view.
//
// This package provides the View/Pair types, the Detector interface the
// algorithms consume, a grounded Oracle that synthesises legal views from
// the run's crash schedule (the standard way to evaluate FD-based
// algorithms in simulation), and validators that check a view stream
// against the class axioms. A heartbeat-based realisation for partially
// synchronous runs lives in heartbeat.go.
package fd

import (
	"fmt"
	"sort"
	"strings"

	"anonurb/internal/ident"
)

// Pair is one (label, number) element of a failure detector view.
type Pair struct {
	Label  ident.Tag
	Number int
}

// View is a failure detector output: a set of pairs, sorted by label so
// that equal views have equal representations (determinism).
type View []Pair

// Detector is the per-process handle Algorithm 2 consumes. Both methods
// return the current view; implementations must be cheap to call, as the
// algorithm reads them on every ACK receipt and every Task-1 tick.
type Detector interface {
	// ATheta returns the current AΘ view.
	ATheta() View
	// APStar returns the current AP* view.
	APStar() View
}

// Normalize sorts v by label and merges duplicate labels (keeping the
// largest number, the conservative choice for both guards that use
// numbers). It returns v for chaining.
func Normalize(v View) View {
	sort.Slice(v, func(i, j int) bool { return v[i].Label.Less(v[j].Label) })
	out := v[:0]
	for _, p := range v {
		if len(out) > 0 && out[len(out)-1].Label == p.Label {
			if p.Number > out[len(out)-1].Number {
				out[len(out)-1].Number = p.Number
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// Labels returns the label set of v.
func (v View) Labels() *ident.Set {
	s := ident.NewSet()
	for _, p := range v {
		s.Add(p.Label)
	}
	return s
}

// Lookup returns the number associated with label, if present.
func (v View) Lookup(label ident.Tag) (int, bool) {
	for _, p := range v {
		if p.Label == label {
			return p.Number, true
		}
	}
	return 0, false
}

// Has reports whether label appears in v.
func (v View) Has(label ident.Tag) bool {
	_, ok := v.Lookup(label)
	return ok
}

// Equal reports whether two normalized views are identical.
func (v View) Equal(o View) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of v.
func (v View) Clone() View {
	return append(View(nil), v...)
}

// String renders a compact form for traces: {label:number, ...}.
func (v View) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", p.Label, p.Number)
	}
	b.WriteByte('}')
	return b.String()
}

// Static is a fixed Detector, handy in unit tests of Algorithm 2.
type Static struct {
	Theta View
	Star  View
}

// ATheta implements Detector.
func (s Static) ATheta() View { return s.Theta }

// APStar implements Detector.
func (s Static) APStar() View { return s.Star }

// Func adapts a pair of closures to the Detector interface.
type Func struct {
	ThetaFn func() View
	StarFn  func() View
}

// ATheta implements Detector.
func (f Func) ATheta() View { return f.ThetaFn() }

// APStar implements Detector.
func (f Func) APStar() View { return f.StarFn() }
