package fd

import (
	"fmt"

	"anonurb/internal/ident"
)

// GroundTruth carries what a validator needs to check views against the
// class axioms: the hidden label↦process mapping and the correct set.
// Only tests and the trace checker see this; algorithms never do.
type GroundTruth struct {
	// Labels[i] is process i's label.
	Labels []ident.Tag
	// Correct[i] reports whether process i is correct in the run.
	Correct []bool
	// Audience[i] lists which processes may ever have Labels[i] in their
	// views (the oracle's S(ℓ_i)). Used for the subset-accuracy check.
	Audience [][]bool
}

// NewGroundTruth derives the ground truth for an Oracle.
func NewGroundTruth(o *Oracle) *GroundTruth {
	n := len(o.labels)
	g := &GroundTruth{
		Labels:   append([]ident.Tag(nil), o.labels...),
		Correct:  append([]bool(nil), o.correct...),
		Audience: make([][]bool, n),
	}
	for j := 0; j < n; j++ {
		aud := make([]bool, n)
		aud[j] = true
		for i := 0; i < n; i++ {
			if o.correct[i] {
				aud[i] = true
			}
			if !o.correct[i] && o.reveal[i] && o.correct[j] {
				aud[i] = true
			}
		}
		g.Audience[j] = aud
	}
	return g
}

// owner resolves a label to its process, or -1.
func (g *GroundTruth) owner(label ident.Tag) int {
	for i, l := range g.Labels {
		if l == label {
			return i
		}
	}
	return -1
}

// numCorrect counts correct processes.
func (g *GroundTruth) numCorrect() int {
	n := 0
	for _, c := range g.Correct {
		if c {
			n++
		}
	}
	return n
}

// CheckAccuracy verifies the perpetual AΘ-accuracy of a single view
// observed at process proc: for each pair (ℓ, k), every k-sized subset of
// S(ℓ) must contain a correct process, which holds iff
// k > |S(ℓ) ∩ Faulty|. It also checks audience control (proc must be
// allowed to see each label). Returns the first violation.
func (g *GroundTruth) CheckAccuracy(proc int, v View) error {
	for _, p := range v {
		j := g.owner(p.Label)
		if j < 0 {
			return fmt.Errorf("fd: view at p%d contains unknown label %s", proc, p.Label)
		}
		if !g.Audience[j][proc] {
			return fmt.Errorf("fd: label of p%d leaked to p%d outside its audience", j, proc)
		}
		faultyInS := 0
		for i, inAud := range g.Audience[j] {
			if inAud && !g.Correct[i] {
				faultyInS++
			}
		}
		if p.Number <= faultyInS {
			return fmt.Errorf("fd: pair (%s,%d) violates accuracy: |S∩Faulty|=%d",
				p.Label, p.Number, faultyInS)
		}
	}
	return nil
}

// CheckExactness verifies the post-GST shape at a correct process: the
// view must be exactly {(ℓ_c, |Correct|) : c correct}.
func (g *GroundTruth) CheckExactness(proc int, v View) error {
	nc := g.numCorrect()
	want := make(map[ident.Tag]bool)
	for i, c := range g.Correct {
		if c {
			want[g.Labels[i]] = true
		}
	}
	if len(v) != len(want) {
		return fmt.Errorf("fd: post-GST view at p%d has %d pairs, want %d", proc, len(v), len(want))
	}
	for _, p := range v {
		if !want[p.Label] {
			return fmt.Errorf("fd: post-GST view at p%d contains non-correct label %s", proc, p.Label)
		}
		if p.Number != nc {
			return fmt.Errorf("fd: post-GST pair (%s,%d), want number %d", p.Label, p.Number, nc)
		}
	}
	return nil
}

// CheckAPStarContainment verifies the perpetual containment invariant the
// retirement guard relies on: at a correct process, the AP* view contains
// every correct label with number ≥ |Correct|.
func (g *GroundTruth) CheckAPStarContainment(proc int, v View) error {
	nc := g.numCorrect()
	for i, c := range g.Correct {
		if !c {
			continue
		}
		k, ok := v.Lookup(g.Labels[i])
		if !ok {
			return fmt.Errorf("fd: AP* view at p%d is missing correct label of p%d", proc, i)
		}
		if k < nc {
			return fmt.Errorf("fd: AP* number %d for correct label of p%d below |Correct|=%d", k, i, nc)
		}
	}
	return nil
}
