package urb

import (
	"fmt"
	"sort"
	"strings"

	"anonurb/internal/ident"
	"anonurb/internal/wire"
)

// Fingerprinter is implemented by process types that can produce a
// canonical, behaviour-complete digest of their state: two instances with
// equal fingerprints react identically to any future input sequence. The
// bounded model checker (internal/explore) uses fingerprints to merge
// states reached by different interleavings.
type Fingerprinter interface {
	Fingerprint() string
}

var (
	_ Fingerprinter = (*Majority)(nil)
	_ Fingerprinter = (*Quiescent)(nil)
)

// fpWriter accumulates canonical key/value fragments.
type fpWriter struct {
	b strings.Builder
}

func (w *fpWriter) section(name string) { fmt.Fprintf(&w.b, "|%s:", name) }

func (w *fpWriter) sortedIDs(ids []wire.MsgID) {
	keys := make([]string, len(ids))
	for i, id := range ids {
		keys[i] = id.Tag.String() + "~" + id.Body
	}
	sort.Strings(keys)
	w.b.WriteString(strings.Join(keys, ","))
}

func (w *fpWriter) sortedTags(tags []ident.Tag) {
	keys := make([]string, len(tags))
	for i, t := range tags {
		keys[i] = t.String()
	}
	sort.Strings(keys)
	w.b.WriteString(strings.Join(keys, ","))
}

// commonFingerprint digests the state shared by both algorithms.
func (c *common) commonFingerprint(w *fpWriter) {
	w.section("draws")
	fmt.Fprintf(&w.b, "%d", c.tags.Draws())
	w.section("msgs")
	w.sortedIDs(c.msgs.snapshotIDs())
	w.section("mine")
	keys := make([]string, 0, len(c.mine))
	for id, ack := range c.mine {
		keys = append(keys, id.Tag.String()+"~"+id.Body+"="+ack.String())
	}
	sort.Strings(keys)
	w.b.WriteString(strings.Join(keys, ","))
	w.section("delivered")
	ids := make([]wire.MsgID, 0, len(c.delivered))
	for id := range c.delivered {
		ids = append(ids, id)
	}
	w.sortedIDs(ids)
	w.section("saw")
	ids = ids[:0]
	for id := range c.sawMsg {
		ids = append(ids, id)
	}
	w.sortedIDs(ids)
}

// Fingerprint implements Fingerprinter.
func (p *Majority) Fingerprint() string {
	var w fpWriter
	w.b.WriteString("majority")
	w.section("n")
	fmt.Fprintf(&w.b, "%d/%d", p.n, p.threshold)
	p.commonFingerprint(&w)
	w.section("acks")
	keys := make([]string, 0, len(p.acks))
	for id, set := range p.acks {
		var inner fpWriter
		inner.sortedTags(set.Slice())
		keys = append(keys, id.Tag.String()+"~"+id.Body+"={"+inner.b.String()+"}")
	}
	sort.Strings(keys)
	w.b.WriteString(strings.Join(keys, ","))
	return w.b.String()
}

// Fingerprint implements Fingerprinter.
func (p *Quiescent) Fingerprint() string {
	var w fpWriter
	w.b.WriteString("quiescent")
	p.commonFingerprint(&w)
	w.section("retired")
	fmt.Fprintf(&w.b, "%d", p.retired)
	w.section("acks")
	keys := make([]string, 0, len(p.acks))
	for id, st := range p.acks {
		ackers := make([]string, 0, len(st.ackerOrder))
		for _, acker := range st.ackerOrder {
			var inner fpWriter
			inner.sortedTags(st.byAcker[acker].Slice())
			ackers = append(ackers, acker.String()+"->{"+inner.b.String()+"}")
		}
		sort.Strings(ackers)
		keys = append(keys, id.Tag.String()+"~"+id.Body+"=["+strings.Join(ackers, ";")+"]")
	}
	sort.Strings(keys)
	w.b.WriteString(strings.Join(keys, ","))
	return w.b.String()
}
