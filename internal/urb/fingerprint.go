package urb

import (
	"fmt"
	"sort"
	"strings"

	"anonurb/internal/ident"
	"anonurb/internal/wire"
)

// Fingerprinter is implemented by process types that can produce a
// canonical, behaviour-complete digest of their state: two instances with
// equal fingerprints react identically to any future input sequence. The
// bounded model checker (internal/explore) uses fingerprints to merge
// states reached by different interleavings.
type Fingerprinter interface {
	Fingerprint() string
}

var (
	_ Fingerprinter = (*Majority)(nil)
	_ Fingerprinter = (*Quiescent)(nil)
)

// fpWriter accumulates canonical key/value fragments.
type fpWriter struct {
	b strings.Builder
}

func (w *fpWriter) section(name string) { fmt.Fprintf(&w.b, "|%s:", name) }

func (w *fpWriter) sortedIDs(ids []wire.MsgID) {
	keys := make([]string, len(ids))
	for i, id := range ids {
		keys[i] = id.Tag.String() + "~" + id.Body
	}
	sort.Strings(keys)
	w.b.WriteString(strings.Join(keys, ","))
}

func (w *fpWriter) sortedTags(tags []ident.Tag) {
	keys := make([]string, len(tags))
	for i, t := range tags {
		keys[i] = t.String()
	}
	sort.Strings(keys)
	w.b.WriteString(strings.Join(keys, ","))
}

// commonFingerprint digests the state shared by both algorithms.
func (c *common) commonFingerprint(w *fpWriter) {
	w.section("draws")
	fmt.Fprintf(&w.b, "%d", c.tags.Draws())
	w.section("msgs")
	w.sortedIDs(c.msgs.snapshotIDs())
	w.section("mine")
	keys := make([]string, 0, len(c.mine))
	for id, ack := range c.mine {
		keys = append(keys, id.Tag.String()+"~"+id.Body+"="+ack.String())
	}
	sort.Strings(keys)
	w.b.WriteString(strings.Join(keys, ","))
	w.section("delivered")
	ids := make([]wire.MsgID, 0, len(c.delivered))
	for id := range c.delivered {
		ids = append(ids, id)
	}
	w.sortedIDs(ids)
	w.section("saw")
	ids = ids[:0]
	for id := range c.sawMsg {
		ids = append(ids, id)
	}
	w.sortedIDs(ids)
}

// Fingerprint implements Fingerprinter.
func (p *Majority) Fingerprint() string {
	var w fpWriter
	w.b.WriteString("majority")
	w.section("n")
	fmt.Fprintf(&w.b, "%d/%d", p.n, p.threshold)
	p.commonFingerprint(&w)
	w.section("acks")
	keys := make([]string, 0, len(p.acks))
	for id, set := range p.acks {
		var inner fpWriter
		inner.sortedTags(set.Slice())
		keys = append(keys, id.Tag.String()+"~"+id.Body+"={"+inner.b.String()+"}")
	}
	sort.Strings(keys)
	w.b.WriteString(strings.Join(keys, ","))
	return w.b.String()
}

// Fingerprint implements Fingerprinter.
func (p *Quiescent) Fingerprint() string {
	var w fpWriter
	w.b.WriteString("quiescent")
	p.commonFingerprint(&w)
	w.section("retired")
	fmt.Fprintf(&w.b, "%d", p.retired)
	w.section("acks")
	keys := make([]string, 0, len(p.acks))
	for id, st := range p.acks {
		ackers := make([]string, 0, len(st.ackerOrder))
		for _, acker := range st.ackerOrder {
			v := st.byAcker[acker]
			var inner fpWriter
			inner.sortedTags(v.labels.Slice())
			ackers = append(ackers, fmt.Sprintf("%s@%d/%t->{%s}", acker, v.epoch, v.synced, inner.b.String()))
		}
		sort.Strings(ackers)
		keys = append(keys, id.Tag.String()+"~"+id.Body+"=["+strings.Join(ackers, ";")+"]")
	}
	sort.Strings(keys)
	w.b.WriteString(strings.Join(keys, ","))
	// The delta-path rate limiters and the sender ledger are keyed to
	// the tick counter; folding them in unconditionally would needlessly
	// split states that behave identically (the monotonic tick counter
	// alone would make every state unique). But the gate must be on the
	// *state*, not the config flag: reception of delta frames and resync
	// answering are always on, so even a full-set-mode process can hold
	// a populated ledger or pending request limiters — and two states
	// differing only in a still-owed resync must not merge.
	deltaState := p.cfg.DeltaAcks || len(p.ackSend) > 0 || p.epochFloor > 0
	if !deltaState {
		for _, st := range p.acks {
			if len(st.reqTick) > 0 {
				deltaState = true
				break
			}
		}
	}
	if deltaState {
		w.section("ticks")
		fmt.Fprintf(&w.b, "%d", p.ticks)
		w.section("floor")
		fmt.Fprintf(&w.b, "%d", p.epochFloor)
		w.section("ledger")
		keys = keys[:0]
		for id, st := range p.ackSend {
			var inner fpWriter
			inner.sortedTags(st.sent.Slice())
			keys = append(keys, fmt.Sprintf("%s~%s@%d/%d/%d={%s}",
				id.Tag, id.Body, st.epoch, st.reAckTick, st.snapTick, inner.b.String()))
		}
		sort.Strings(keys)
		w.b.WriteString(strings.Join(keys, ","))
		w.section("reqs")
		keys = keys[:0]
		for id, st := range p.acks {
			for acker, tick := range st.reqTick {
				keys = append(keys, fmt.Sprintf("%s~%s/%s=%d", id.Tag, id.Body, acker, tick))
			}
		}
		sort.Strings(keys)
		w.b.WriteString(strings.Join(keys, ","))
	}
	return w.b.String()
}
