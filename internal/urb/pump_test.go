package urb

import (
	"testing"

	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// pump is a minimal lossless in-test network: it runs a set of Process
// instances to convergence by delivering every broadcast to every process
// (FIFO), interleaved with ticks. It exists so the urb package's unit
// tests need no simulator; lossy and adversarial schedules are exercised
// in internal/sim's tests.
type pump struct {
	t     *testing.T
	procs []Process
	queue []wire.Message
	// deliveries[i] accumulates URB-deliveries at process i.
	deliveries [][]Delivery
	crashed    []bool
}

func newPump(t *testing.T, procs ...Process) *pump {
	return &pump{
		t:          t,
		procs:      procs,
		deliveries: make([][]Delivery, len(procs)),
		crashed:    make([]bool, len(procs)),
	}
}

func (p *pump) absorb(i int, s Step) {
	p.deliveries[i] = append(p.deliveries[i], s.Deliveries...)
	p.queue = append(p.queue, s.Broadcasts...)
}

// broadcast has process i URB-broadcast body.
func (p *pump) broadcast(i int, body string) {
	_, s := p.procs[i].Broadcast([]byte(body))
	p.absorb(i, s)
}

// crash removes process i from all future activity.
func (p *pump) crash(i int) { p.crashed[i] = true }

// drain delivers queued wire messages to every live process until the
// queue is empty, bounding total work.
func (p *pump) drain() {
	const maxWork = 1 << 20
	work := 0
	for len(p.queue) > 0 {
		m := p.queue[0]
		p.queue = p.queue[1:]
		for i, proc := range p.procs {
			if p.crashed[i] {
				continue
			}
			p.absorb(i, proc.Receive(m))
			if work++; work > maxWork {
				p.t.Fatal("pump: message storm, protocol not converging")
			}
		}
	}
}

// round ticks every live process once and drains.
func (p *pump) round() {
	for i, proc := range p.procs {
		if p.crashed[i] {
			continue
		}
		p.absorb(i, proc.Tick())
	}
	p.drain()
}

// run executes k rounds.
func (p *pump) run(k int) {
	for i := 0; i < k; i++ {
		p.round()
	}
}

// deliveredIDs returns the IDs delivered at process i, in order.
func (p *pump) deliveredIDs(i int) []wire.MsgID {
	out := make([]wire.MsgID, len(p.deliveries[i]))
	for j, d := range p.deliveries[i] {
		out[j] = d.ID
	}
	return out
}

// tagsFor builds n independent tag sources for tests.
func tagsFor(seed uint64, n int) []*ident.Source {
	root := xrand.New(seed)
	out := make([]*ident.Source, n)
	for i := range out {
		out[i] = ident.NewSource(root.Split())
	}
	return out
}
