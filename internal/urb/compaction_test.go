package urb

import (
	"fmt"
	"testing"

	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// --- unit tests for the compacted representation --------------------------

// TestQuiescentCompactionSharesSets: once a message is delivered under
// CompactDelivered, ackers with equal label views share one interned
// set, and the Stats report the collapse.
func TestQuiescentCompactionSharesSets(t *testing.T) {
	view := fd.Normalize(fd.View{{Label: lbl(1), Number: 3}})
	det := fd.Static{Theta: view, Star: view}
	p := NewQuiescent(det, ident.NewSource(xrand.New(1)), Config{CompactDelivered: true})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	labels := []ident.Tag{lbl(1), lbl(2)}
	for i := uint64(0); i < 3; i++ {
		p.Receive(wire.NewLabeledAck(id, lbl(100+i), labels))
	}
	if !p.HasDelivered(id) {
		t.Fatal("setup: not delivered")
	}
	st := p.Stats()
	if st.CompactedMsgs != 1 {
		t.Fatalf("CompactedMsgs = %d, want 1", st.CompactedMsgs)
	}
	if st.AckLabels != 6 {
		t.Fatalf("AckLabels = %d, want 6 (3 ackers × 2 labels)", st.AckLabels)
	}
	if st.AckLabelStorage != 2 {
		t.Fatalf("AckLabelStorage = %d, want 2 (one shared set)", st.AckLabelStorage)
	}
	// Claims are untouched by the representation change.
	if p.Claims(id, lbl(1)) != 3 || p.Claims(id, lbl(2)) != 3 {
		t.Fatalf("claims perturbed: l1=%d l2=%d", p.Claims(id, lbl(1)), p.Claims(id, lbl(2)))
	}
}

// TestQuiescentCompactionCopyOnWrite: a delta folding into one shared
// view must not leak into the other ackers sharing the set.
func TestQuiescentCompactionCopyOnWrite(t *testing.T) {
	view := fd.Normalize(fd.View{{Label: lbl(1), Number: 2}})
	det := fd.Static{Theta: view, Star: view}
	p := NewQuiescent(det, ident.NewSource(xrand.New(2)), Config{CompactDelivered: true})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	p.Receive(wire.NewAckSnapshot(id, lbl(100), 1, []ident.Tag{lbl(1)}))
	p.Receive(wire.NewAckSnapshot(id, lbl(101), 1, []ident.Tag{lbl(1)})) // delivers, compacts
	if !p.HasDelivered(id) {
		t.Fatal("setup: not delivered")
	}
	// Acker 100 gains lbl(2); acker 101's view must not change.
	p.Receive(wire.NewAckDelta(id, lbl(100), 2, []ident.Tag{lbl(2)}, nil))
	if p.Claims(id, lbl(2)) != 1 {
		t.Fatalf("claims[l2] = %d, want 1", p.Claims(id, lbl(2)))
	}
	if got := p.acks[id].byAcker[lbl(101)].labels.Len(); got != 1 {
		t.Fatalf("shared set mutated through the other acker: len=%d", got)
	}
	// And dropping it again re-merges the two views onto one set.
	p.Receive(wire.NewAckDelta(id, lbl(100), 3, nil, []ident.Tag{lbl(2)}))
	if st := p.Stats(); st.AckLabelStorage != 1 {
		t.Fatalf("AckLabelStorage = %d, want 1 after re-convergence", st.AckLabelStorage)
	}
}

// TestQuiescentRetirementIndexReactsToViewShift: with the dirty index,
// a message evaluated (and left unretired) under one AP* view must be
// re-evaluated when the view changes, even if no ACK arrived in between
// — several clean no-op ticks notwithstanding.
func TestQuiescentRetirementIndexReactsToViewShift(t *testing.T) {
	for _, compact := range []bool{false, true} {
		t.Run(fmt.Sprintf("compact=%v", compact), func(t *testing.T) {
			theta := fd.Normalize(fd.View{{Label: lbl(1), Number: 2}})
			var star fd.View // empty: retirement disabled
			det := &fd.Func{
				ThetaFn: func() fd.View { return theta },
				StarFn:  func() fd.View { return star },
			}
			p := NewQuiescent(det, ident.NewSource(xrand.New(3)), Config{CompactDelivered: compact})
			id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
			p.Receive(wire.NewMsg(id))
			p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
			p.Receive(wire.NewLabeledAck(id, lbl(101), []ident.Tag{lbl(1)}))
			if !p.HasDelivered(id) {
				t.Fatal("setup: not delivered")
			}
			// Clean ticks: delivered, claims satisfied, but AP* is empty —
			// never retire, and the dirty flags drain.
			for i := 0; i < 4; i++ {
				if s := p.Tick(); len(s.Broadcasts) != 1 {
					t.Fatalf("tick %d: want 1 retransmission, got %d", i, len(s.Broadcasts))
				}
			}
			if p.RetiredCount() != 0 {
				t.Fatal("retired with an empty AP* view")
			}
			// AP* reveals: the view key changes, the clean message must be
			// re-evaluated and retire.
			star = fd.Normalize(fd.View{{Label: lbl(1), Number: 2}})
			p.Tick()
			if p.RetiredCount() != 1 {
				t.Fatal("view shift alone did not trigger re-evaluation")
			}
			if s := p.Tick(); len(s.Broadcasts) != 0 {
				t.Fatalf("retired message still retransmitting: %v", s.Broadcasts)
			}
		})
	}
}

// TestQuiescentDeliveredAfterPurgeStillRetires is the regression guard
// for the ackState.purge / retireReady interplay: an acker whose labels
// were entirely purged (a dead acker) is dropped from the bookkeeping,
// and a message DELIVERED ONLY AFTER that purge must still pass the
// retirement guard — the dead acker must neither linger in the
// byAcker/ackerOrder scan nor block the "no acker claims a foreign
// label" clause. Guards the compaction refactor against reintroducing
// the dead-acker retention bug the D4 drop fixed.
func TestQuiescentDeliveredAfterPurgeStillRetires(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{CompactDelivered: true},
		{DeltaAcks: true},
		{DeltaAcks: true, CompactDelivered: true},
	} {
		t.Run(fmt.Sprintf("delta=%v/compact=%v", cfg.DeltaAcks, cfg.CompactDelivered), func(t *testing.T) {
			live := fd.Normalize(fd.View{{Label: lbl(1), Number: 2}})
			var star fd.View
			det := &fd.Func{
				ThetaFn: func() fd.View { return live },
				StarFn:  func() fd.View { return star },
			}
			p := NewQuiescent(det, ident.NewSource(xrand.New(4)), cfg)
			id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
			p.Receive(wire.NewMsg(id))
			// A doomed acker claims only a label outside every view (its
			// owner crashed before GST).
			p.Receive(wire.NewLabeledAck(id, lbl(66), []ident.Tag{lbl(99)}))
			p.Tick() // D4 purge: lbl(99) dies, acker 66 is dropped whole
			if p.Ackers(id) != 0 {
				t.Fatal("purged-empty acker not dropped")
			}
			// Delivery happens only now, after the purge.
			p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
			p.Receive(wire.NewLabeledAck(id, lbl(101), []ident.Tag{lbl(1)}))
			if !p.HasDelivered(id) {
				t.Fatal("setup: not delivered after purge")
			}
			// AP* reveals; the dead acker must not block retirement.
			star = fd.Normalize(fd.View{{Label: lbl(1), Number: 2}})
			p.Tick()
			if p.RetiredCount() != 1 {
				t.Fatalf("message delivered after a D4 purge did not retire (%+v)", p.Stats())
			}
		})
	}
}

// --- the compaction equivalence property test -----------------------------

// recoverProc crash-recovers process i of an eqCluster at the current
// point: snapshot, rebuild from the same constructor parameters,
// restore, rejoin — a crash landing exactly on a checkpoint. In-flight
// frames queued for i survive (fair-lossy channels may deliver late);
// the recovered instance processes them as a fresh incarnation.
func (c *eqCluster) recoverProc(t *testing.T, i int, seed uint64, cfg Config) {
	t.Helper()
	snap := c.procs[i].Snapshot()
	det := &fd.Func{
		ThetaFn: func() fd.View { return c.theta },
		StarFn:  func() fd.View { return c.star },
	}
	fresh := NewQuiescent(det, ident.NewSource(xrand.New(seed+uint64(i)*7919)), cfg)
	if err := fresh.Restore(snap); err != nil {
		t.Fatalf("recover p%d: %v", i, err)
	}
	fresh.Rejoin()
	c.procs[i] = fresh
}

// TestQuiescentCompactionEquivalence drives randomized schedules through
// two clusters that differ only in Config.CompactDelivered and requires
// identical claims maps, delivered sets and retirement endgames — under
// both ACK encodings, with a mid-run detector-view shift and a mid-run
// crash-recovery of a random process. Same two-phase structure as
// TestQuiescentDeltaEquivalence: phase 1 reaches the claims fixpoint
// with retirement disabled, phase 2 reveals AP* and requires identical
// quiescence.
func TestQuiescentCompactionEquivalence(t *testing.T) {
	for _, deltaAcks := range []bool{false, true} {
		for seed := uint64(1); seed <= 5; seed++ {
			deltaAcks, seed := deltaAcks, seed
			t.Run(fmt.Sprintf("delta=%v/seed=%d", deltaAcks, seed), func(t *testing.T) {
				rng := xrand.New(seed * 0x51ed2701)
				n := 3 + int(rng.Uint64()%3)
				msgs := 3 + int(rng.Uint64()%4)
				base := Config{
					DeltaAcks:        deltaAcks,
					CheckOnTick:      rng.Uint64()%2 == 0,
					RetireBeforeSend: rng.Uint64()%2 == 0,
					EagerFirstSend:   rng.Uint64()%2 == 0,
				}
				compactCfg := base
				compactCfg.CompactDelivered = true

				viewA := fd.Normalize(fd.View{
					{Label: lbl(1), Number: n},
					{Label: lbl(2), Number: n},
				})
				viewB := fd.Normalize(fd.View{
					{Label: lbl(1), Number: n},
					{Label: lbl(3), Number: n},
				})

				plain := newEqCluster(n, seed, base, viewA.Clone())
				compact := newEqCluster(n, seed, compactCfg, viewA.Clone())

				steps := 200 + int(rng.Uint64()%200)
				shiftAt := steps/4 + int(rng.Uint64()%(uint64(steps)/2))
				crashAt := steps/4 + int(rng.Uint64()%(uint64(steps)/2))
				crashProc := int(rng.Uint64() % uint64(n))
				sent := 0
				for step := 0; step < steps; step++ {
					if step == shiftAt {
						plain.theta = viewB.Clone()
						compact.theta = viewB.Clone()
					}
					if step == crashAt {
						plain.recoverProc(t, crashProc, seed, base)
						compact.recoverProc(t, crashProc, seed, compactCfg)
					}
					switch op := rng.Uint64() % 10; {
					case op < 6:
						i := int(rng.Uint64() % uint64(n))
						plain.deliverOne(i)
						compact.deliverOne(i)
					case op < 8:
						i := int(rng.Uint64() % uint64(n))
						plain.absorb(plain.procs[i].Tick())
						compact.absorb(compact.procs[i].Tick())
					default:
						if sent >= msgs {
							continue
						}
						i := int(rng.Uint64() % uint64(n))
						body := []byte(fmt.Sprintf("m%d", sent))
						sent++
						_, s := plain.procs[i].Broadcast(body)
						plain.absorb(s)
						_, s = compact.procs[i].Broadcast(body)
						compact.absorb(s)
					}
				}
				for ; sent < msgs; sent++ {
					body := []byte(fmt.Sprintf("m%d", sent))
					_, s := plain.procs[0].Broadcast(body)
					plain.absorb(s)
					_, s = compact.procs[0].Broadcast(body)
					compact.absorb(s)
				}

				plain.theta = viewB.Clone()
				compact.theta = viewB.Clone()
				plain.settle(6)
				compact.settle(6)
				compareClusters(t, "fixpoint", plain, compact, msgs)

				plain.star = viewB.Clone()
				compact.star = viewB.Clone()
				plain.drain(t, "plain")
				compact.drain(t, "compacted")
				compareClusters(t, "quiescence", plain, compact, msgs)
				for i := range compact.procs {
					if got := compact.procs[i].RetiredCount(); got != msgs {
						t.Fatalf("p%d retired %d/%d after AP* reveal", i, got, msgs)
					}
					// The compaction must actually be in effect, not just
					// harmless: every delivered message runs compacted.
					st := compact.procs[i].Stats()
					if st.CompactedMsgs == 0 {
						t.Fatalf("p%d: no compacted messages despite %d deliveries", i, st.Delivered)
					}
					if st.AckLabelStorage > st.AckLabels {
						t.Fatalf("p%d: storage %d exceeds logical %d", i, st.AckLabelStorage, st.AckLabels)
					}
				}
			})
		}
	}
}
