package urb

import (
	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/wire"
)

// HeartbeatHost runs Algorithm 2 over a MESSAGE-BASED failure detector
// instead of an oracle: it wraps a Quiescent process together with an
// fd.Heartbeat module, multiplexing ALIVE beats (wire.KindBeat) onto the
// same lossy mesh the algorithm uses.
//
// On every Tick the host emits one ALIVE(label) beat and forwards the
// tick to the wrapped algorithm; received beats feed the detector and
// everything else goes to the algorithm. This is the full stack of the
// paper's Section VI realised end-to-end with no oracle: detector and
// algorithm share one network.
//
// Caveat, inherited from fd.Heartbeat: the heartbeat detector is a legal
// AΘ/AP* only when the run is synchronous enough that a live correct
// process is never timed out. With a generous timeout relative to the
// link delays and loss rate this holds with overwhelming probability (and
// deterministically in the tests' seeds); under true asynchrony the
// oracle is the only sound choice — which is the point the paper makes by
// positing the classes axiomatically.
//
// A deliberate consequence of beating forever: a HeartbeatHost system is
// quiescent in the algorithm's traffic (MSG/ACK stop) but not in
// detector traffic — beats never stop, exactly like the heartbeat-based
// quiescence literature the paper builds on (Aguilera, Chen, Toueg). The
// Stats and the harness count the two kinds separately.
type HeartbeatHost struct {
	inner *Quiescent
	hb    *fd.Heartbeat
	// beatEvery emits a beat every k-th Tick (k >= 1).
	beatEvery int
	tickCount int
	beatsSent uint64
}

var _ Process = (*HeartbeatHost)(nil)

// NewHeartbeatHost builds the full heartbeat stack: a fresh label drawn
// from tags, an fd.Heartbeat with the given timeout, and a Quiescent
// process wired to it. beatEvery emits an ALIVE on every beatEvery-th
// tick (1 = every tick).
func NewHeartbeatHost(tags *ident.Source, timeout int64, beatEvery int, clock func() int64, cfg Config) *HeartbeatHost {
	if beatEvery < 1 {
		beatEvery = 1
	}
	hb := fd.NewHeartbeat(tags.Next(), timeout, clock)
	return &HeartbeatHost{
		inner:     NewQuiescent(hb, tags, cfg),
		hb:        hb,
		beatEvery: beatEvery,
	}
}

// Inner exposes the wrapped Algorithm 2 instance (test hook).
func (h *HeartbeatHost) Inner() *Quiescent { return h.inner }

// Detector exposes the heartbeat module (test hook).
func (h *HeartbeatHost) Detector() *fd.Heartbeat { return h.hb }

// BeatsSent reports how many ALIVE messages this host has emitted.
func (h *HeartbeatHost) BeatsSent() uint64 { return h.beatsSent }

// Broadcast implements Process.
func (h *HeartbeatHost) Broadcast(body []byte) (wire.MsgID, Step) {
	return h.inner.Broadcast(body)
}

// Receive implements Process: beats feed the detector, the rest feeds
// the algorithm.
func (h *HeartbeatHost) Receive(m wire.Message) Step {
	if m.Kind == wire.KindBeat {
		h.hb.Hear(m.Tag)
		return Step{}
	}
	return h.inner.Receive(m)
}

// Tick implements Process: emit the periodic ALIVE, then run Task 1.
func (h *HeartbeatHost) Tick() Step {
	var out Step
	h.tickCount++
	if h.tickCount%h.beatEvery == 0 {
		h.beatsSent++
		out.Broadcasts = append(out.Broadcasts, wire.NewBeat(h.hb.Label()))
	}
	out.Merge(h.inner.Tick())
	return out
}

// Stats implements Process. Beats are reported on top of the inner
// algorithm's wire count so the quiescence accounting can separate
// algorithm traffic from detector traffic.
func (h *HeartbeatHost) Stats() Stats {
	st := h.inner.Stats()
	st.WireSent += h.beatsSent
	return st
}
