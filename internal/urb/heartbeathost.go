package urb

import (
	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/obs"
	"anonurb/internal/wire"
)

// HeartbeatHost runs Algorithm 2 over a MESSAGE-BASED failure detector
// instead of an oracle: it wraps a Quiescent process together with an
// fd.Heartbeat module, multiplexing ALIVE beats (wire.KindBeat) onto the
// same lossy mesh the algorithm uses.
//
// On every Tick the host emits one ALIVE(label) beat and forwards the
// tick to the wrapped algorithm; received beats feed the detector and
// everything else goes to the algorithm. This is the full stack of the
// paper's Section VI realised end-to-end with no oracle: detector and
// algorithm share one network.
//
// Caveat, inherited from fd.Heartbeat: the heartbeat detector is a legal
// AΘ/AP* only when the run is synchronous enough that a live correct
// process is never timed out. With a generous timeout relative to the
// link delays and loss rate this holds with overwhelming probability (and
// deterministically in the tests' seeds); under true asynchrony the
// oracle is the only sound choice — which is the point the paper makes by
// positing the classes axiomatically.
//
// A deliberate consequence of beating forever: a HeartbeatHost system is
// quiescent in the algorithm's traffic (MSG/ACK stop) but not in
// detector traffic — beats never stop, exactly like the heartbeat-based
// quiescence literature the paper builds on (Aguilera, Chen, Toueg). The
// Stats and the harness count the two kinds separately.
//
// With Config.DeltaBeats the never-stopping traffic shrinks (DESIGN.md
// §10): the host announces its label once in a snapshot BEATΔ and then
// beats 15-byte refreshes; receivers that miss the snapshot (or detect
// an epoch gap, or a ref collision) broadcast a BEATREQ the owner
// answers with a fresh snapshot — the detector-layer mirror of the D5
// delta-ACK discipline. Reception of every beat form is always on, so
// delta and legacy hosts interoperate.
type HeartbeatHost struct {
	inner *Quiescent
	hb    *fd.Heartbeat
	// born is the detector label drawn at construction: the host's own
	// identity, as opposed to the label a Restore may install (recovery
	// resumes the snapshot's identity; a join must not — see Adopt).
	born ident.Tag
	// beatEvery emits a beat every k-th Tick (k >= 1).
	beatEvery int
	tickCount int
	beatsSent uint64
	// beatReqsSent counts BEATREQ resync requests (detector repair
	// traffic, reported in Stats.WireSent but not in BeatsSent).
	beatReqsSent uint64

	// --- delta-beat sender state (Config.DeltaBeats) ------------------
	// beatEpoch versions the announced label set, starting at 1. The
	// low 16 bits count announcement changes within an incarnation, the
	// high bits are bumped by Rejoin so a recovered host's stream never
	// regresses below epochs its predecessor sent after the checkpoint.
	beatEpoch uint32
	// beatSnapSent records that the current announcement went out as a
	// snapshot at least once; refreshes suffice until it changes.
	beatSnapSent bool
	// beatSnapTick-1 is the tick of the last snapshot broadcast (0 =
	// never): one snapshot per tick serves every requester at once.
	beatSnapTick int

	// --- delta-beat receiver state (always on) ------------------------
	// streams maps a beat stream ref to what its snapshots taught us.
	// Soft wire-level state: losing it (e.g. across a crash-recovery
	// restart) costs one BEATREQ/snapshot exchange per stream, so it is
	// deliberately not part of snapshots or fingerprints.
	streams map[uint64]*beatStream
	// beatReqTick rate-limits BEATREQs per ref per tick; dropped
	// wholesale on Tick, like ackState.reqTick.
	beatReqTick map[uint64]int
	// resync is the D9 per-tick BEATREQ budget (Config.PaceResyncs),
	// independent of the inner algorithm's ACKREQ budget; pacing state
	// only, excluded from snapshots and fingerprints.
	resync resyncBudget
}

// beatStream is one sender's beat stream as a receiver tracks it.
type beatStream struct {
	// labels is the announced set the stream's latest applied snapshot
	// or change delta established; refreshes re-Hear exactly these.
	labels []ident.Tag
	// key is labels' canonical identity (collision detection).
	key string
	// epoch is the announcement version the labels correspond to.
	epoch uint32
	// ambiguous marks a ref two different streams collided on (same
	// epoch, different sets): the mapping can no longer attribute
	// refreshes, so liveness flows through snapshots only — which carry
	// full labels and therefore never mis-attribute.
	ambiguous bool
}

var _ Process = (*HeartbeatHost)(nil)

// NewHeartbeatHost builds the full heartbeat stack: a fresh label drawn
// from tags, an fd.Heartbeat with the given timeout, and a Quiescent
// process wired to it. beatEvery emits an ALIVE on every beatEvery-th
// tick (1 = every tick).
func NewHeartbeatHost(tags *ident.Source, timeout int64, beatEvery int, clock func() int64, cfg Config) *HeartbeatHost {
	if beatEvery < 1 {
		beatEvery = 1
	}
	label := tags.Next()
	hb := fd.NewHeartbeat(label, timeout, clock)
	return &HeartbeatHost{
		inner:     NewQuiescent(hb, tags, cfg),
		hb:        hb,
		born:      label,
		beatEvery: beatEvery,
		beatEpoch: 1,
	}
}

// Inner exposes the wrapped Algorithm 2 instance (test hook).
func (h *HeartbeatHost) Inner() *Quiescent { return h.inner }

// Detector exposes the heartbeat module (test hook).
func (h *HeartbeatHost) Detector() *fd.Heartbeat { return h.hb }

// BeatsSent reports how many ALIVE messages this host has emitted.
func (h *HeartbeatHost) BeatsSent() uint64 { return h.beatsSent }

// beatRef is the host's own beat stream reference.
func (h *HeartbeatHost) beatRef() uint64 { return wire.BeatRef(h.hb.Label()) }

// announced is the host's current announcement: its own detector label.
// (The wire format carries whole sets so richer detectors — e.g.
// recovery-aware ones vouching for restarted labels — can reuse it.)
func (h *HeartbeatHost) announced() []ident.Tag {
	return []ident.Tag{h.hb.Label()}
}

// Broadcast implements Process.
func (h *HeartbeatHost) Broadcast(body []byte) (wire.MsgID, Step) {
	return h.inner.Broadcast(body)
}

// Receive implements Process: beats feed the detector, the rest feeds
// the algorithm.
func (h *HeartbeatHost) Receive(m wire.Message) Step {
	//urbvet:partial non-beat kinds fall through to the wrapped algorithm's dispatch
	switch m.Kind {
	case wire.KindBeat:
		h.hb.Hear(m.Tag)
		return Step{}
	case wire.KindBeatDelta:
		return h.receiveBeatDelta(m)
	case wire.KindBeatReq:
		return h.receiveBeatReq(m)
	}
	return h.inner.Receive(m)
}

// receiveBeatDelta feeds one incremental beat into the detector.
//
// Attribution rule: a snapshot (or an applied change delta) names its
// labels explicitly, so Hear-ing them is always sound. A refresh names
// only the ref; its labels are Heard only while the local mapping is
// unambiguous and epoch-synchronised — otherwise the host asks for a
// snapshot instead of guessing, so a collided or stale mapping can delay
// liveness refreshes (repaired within a tick) but never mis-attribute
// them. That preserves the fd.Heartbeat accuracy argument untouched.
func (h *HeartbeatHost) receiveBeatDelta(m wire.Message) Step {
	var out Step
	st := h.streams[m.Ref]
	epoch := uint32(m.Epoch)
	switch {
	case m.Flags&wire.BeatFlagSnapshot != 0:
		for _, l := range m.Labels {
			h.hb.Hear(l)
		}
		key := beatSetKey(m.Labels)
		switch {
		case st == nil:
			if h.streams == nil {
				h.streams = make(map[uint64]*beatStream)
			}
			h.streams[m.Ref] = &beatStream{
				labels: append([]ident.Tag(nil), m.Labels...),
				key:    key, epoch: epoch,
			}
		case st.ambiguous:
			// Mapping stays unusable; the labels above were still Heard.
		case epoch > st.epoch:
			st.labels = append(st.labels[:0], m.Labels...)
			st.key = key
			st.epoch = epoch
		case epoch == st.epoch && key != st.key:
			// Two streams share this ref: same epoch, different sets.
			st.ambiguous = true
		}
	case m.Flags&wire.BeatFlagDelta != 0:
		switch {
		case st != nil && !st.ambiguous && epoch < st.epoch:
			// Our mapping is ahead of the frame: either a delayed
			// duplicate (harmless to re-request — the answer is
			// rate-limited) or a second stream colliding on this ref at a
			// lower epoch, whose liveness would starve if we stayed
			// silent. Ask for a snapshot; snapshots carry full labels and
			// therefore attribute soundly either way.
			h.beatResync(&out, m.Ref)
		case st != nil && !st.ambiguous && epoch == st.epoch+1:
			// In sequence: fold removals then additions, mirroring
			// ackState.applyDelta.
			next := make([]ident.Tag, 0, len(st.labels)+len(m.Labels))
			for _, l := range st.labels {
				if !tagIn(m.DelLabels, l) {
					next = append(next, l)
				}
			}
			for _, l := range m.Labels {
				if !tagIn(next, l) {
					next = append(next, l)
				}
			}
			st.labels = next
			st.key = beatSetKey(next)
			st.epoch = epoch
			for _, l := range st.labels {
				h.hb.Hear(l)
			}
		case st != nil && !st.ambiguous && epoch == st.epoch:
			// Duplicate of the delta that produced our state: ignore.
		default:
			h.beatResync(&out, m.Ref)
		}
	default: // refresh
		switch {
		case st != nil && !st.ambiguous && epoch == st.epoch:
			for _, l := range st.labels {
				h.hb.Hear(l)
			}
		default:
			// Unknown ref, ambiguous ref, epoch gap — or a refresh BEHIND
			// our mapping, which is either a delayed duplicate or a
			// second stream colliding on this ref at a lower epoch. The
			// latter would starve silently if ignored, so every
			// unattributable beat asks for a snapshot (rate-limited per
			// ref per tick; snapshots carry full labels and attribute
			// soundly whatever the cause).
			h.beatResync(&out, m.Ref)
		}
	}
	return out
}

// beatResync broadcasts a BEATREQ for ref, at most once per ref per
// tick.
func (h *HeartbeatHost) beatResync(out *Step, ref uint64) {
	if h.beatReqTick[ref] == h.tickCount+1 {
		return
	}
	// Per-tick BEATREQ budget (D9): a denied request leaves no trace —
	// the stream asks again next tick, the ordinary repair cadence.
	if !h.resync.take(h.inner.cfg.resyncLimit(), uint64(h.tickCount)+1) {
		return
	}
	if h.beatReqTick == nil {
		h.beatReqTick = make(map[uint64]int)
	}
	h.beatReqTick[ref] = h.tickCount + 1
	h.beatReqsSent++
	out.Broadcasts = append(out.Broadcasts, wire.NewBeatResync(ref))
}

// receiveBeatReq answers a resync request for this host's own beat
// stream with a snapshot, at most once per tick (every send is a
// broadcast, so one snapshot serves all requesters). Hosts beating in
// legacy mode never opened a stream and stay silent.
func (h *HeartbeatHost) receiveBeatReq(m wire.Message) Step {
	var out Step
	if !h.inner.cfg.DeltaBeats || m.Ref != h.beatRef() {
		return out
	}
	if h.beatSnapTick == h.tickCount+1 {
		return out
	}
	h.beatSnapTick = h.tickCount + 1
	h.beatSnapSent = true
	h.beatsSent++ // the answer is an ALIVE announcement like any beat
	out.Broadcasts = append(out.Broadcasts, wire.NewBeatSnapshot(h.beatRef(), h.beatEpoch, h.announced()))
	return out
}

// Tick implements Process: emit the periodic ALIVE, then run Task 1.
func (h *HeartbeatHost) Tick() Step {
	var out Step
	h.tickCount++
	h.beatReqTick = nil
	if h.tickCount%h.beatEvery == 0 {
		h.beatsSent++
		if !h.inner.cfg.DeltaBeats {
			out.Broadcasts = append(out.Broadcasts, wire.NewBeat(h.hb.Label()))
		} else if !h.beatSnapSent {
			h.beatSnapSent = true
			h.beatSnapTick = h.tickCount + 1
			out.Broadcasts = append(out.Broadcasts, wire.NewBeatSnapshot(h.beatRef(), h.beatEpoch, h.announced()))
		} else {
			out.Broadcasts = append(out.Broadcasts, wire.NewBeatRefresh(h.beatRef(), h.beatEpoch))
		}
	}
	out.Merge(h.inner.Tick())
	return out
}

// Stats implements Process. Beats are reported on top of the inner
// algorithm's wire count so the quiescence accounting can separate
// algorithm traffic from detector traffic.
func (h *HeartbeatHost) Stats() Stats {
	st := h.inner.Stats()
	st.WireSent += h.beatsSent + h.beatReqsSent
	return st
}

// HasDelivered reports whether id has been URB-delivered locally.
func (h *HeartbeatHost) HasDelivered(id wire.MsgID) bool { return h.inner.HasDelivered(id) }

// SetTracer installs the lifecycle tracer on the wrapped algorithm
// (obs.Traceable); detector beat traffic stays untraced — only the
// BEATREQ resync count surfaces, through Stats.
func (h *HeartbeatHost) SetTracer(t *obs.Tracer) { h.inner.SetTracer(t) }

// Explain forwards the stall explainer to the wrapped Algorithm 2
// instance (obs.Explainer).
func (h *HeartbeatHost) Explain(id wire.MsgID) obs.Explanation { return h.inner.Explain(id) }

// beatSetKey renders a label list's order-insensitive identity.
func beatSetKey(labels []ident.Tag) string {
	return setKey(ident.NewSet(labels...))
}

// tagIn reports membership in a small slice (beat announcements hold a
// handful of labels at most; a map would cost more than it saves).
func tagIn(tags []ident.Tag, t ident.Tag) bool {
	for _, u := range tags {
		if u == t {
			return true
		}
	}
	return false
}
