package urb

import (
	"fmt"
	"testing"

	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/store"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// TestQuiescentRejoinRebasesDeltaEpochs pins the incarnation rule: a
// recovered acker's fresh streams must start above every epoch its
// previous incarnation sent, or receivers still synced at the (lost)
// higher epochs discard its ACKs as stale — silently, forever.
func TestQuiescentRejoinRebasesDeltaEpochs(t *testing.T) {
	view := fd.Normalize(fd.View{{Label: lbl(1), Number: 99}})
	det := &fd.Func{
		ThetaFn: func() fd.View { return view },
		StarFn:  func() fd.View { return view },
	}
	sender := NewQuiescent(det, ident.NewSource(xrand.New(21)), Config{DeltaAcks: true})
	receiver := NewQuiescent(det, ident.NewSource(xrand.New(22)), Config{DeltaAcks: true})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}

	// Epoch 1 snapshot reaches the receiver; the checkpoint lands here.
	s := sender.Receive(wire.NewMsg(id))
	ack := s.Broadcasts[0].AckTag
	receiver.Receive(s.Broadcasts[0])
	checkpoint := sender.Snapshot()

	// After the checkpoint the view changes: the epoch-2 delta also
	// reaches the receiver (now synced at epoch 2 with {l1, l2}).
	view = fd.Normalize(fd.View{{Label: lbl(1), Number: 99}, {Label: lbl(2), Number: 99}})
	sender.Tick()
	s = sender.Receive(wire.NewMsg(id))
	receiver.Receive(s.Broadcasts[0])
	if receiver.Claims(id, lbl(2)) != 1 {
		t.Fatal("setup: epoch-2 delta not applied")
	}

	// Crash. The successor restores the checkpoint (ledger at epoch 1 —
	// the epoch-2 increment is in the lost window) and rejoins.
	succ := NewQuiescent(det, ident.NewSource(xrand.New(21)), Config{DeltaAcks: true})
	if err := succ.Restore(checkpoint); err != nil {
		t.Fatal(err)
	}
	succ.Rejoin()

	// The view shifts again while the successor is live: {l1, l3}. Its
	// re-ACK opens a fresh stream; the receiver must end up holding
	// exactly {l1, l3} for this acker.
	view = fd.Normalize(fd.View{{Label: lbl(1), Number: 99}, {Label: lbl(3), Number: 99}})
	succ.Tick()
	s = succ.Receive(wire.NewMsg(id))
	if len(s.Broadcasts) != 1 {
		t.Fatalf("successor did not re-ACK: %v", s.Broadcasts)
	}
	snap := s.Broadcasts[0]
	if snap.AckTag != ack {
		t.Fatalf("successor acked under %s, predecessor used %s", snap.AckTag, ack)
	}
	if snap.Flags&wire.AckFlagSnapshot == 0 || snap.Epoch <= 2 {
		t.Fatalf("rejoined stream must open with a snapshot above the old epochs, got %v", snap)
	}
	receiver.Receive(snap)
	if receiver.Claims(id, lbl(2)) != 0 || receiver.Claims(id, lbl(3)) != 1 || receiver.Claims(id, lbl(1)) != 1 {
		t.Fatalf("receiver diverged after recovery: l1=%d l2=%d l3=%d",
			receiver.Claims(id, lbl(1)), receiver.Claims(id, lbl(2)), receiver.Claims(id, lbl(3)))
	}
	// A second recovery rebases again (the floor is persisted).
	snap2 := succ.Snapshot()
	succ2 := NewQuiescent(det, ident.NewSource(xrand.New(21)), Config{DeltaAcks: true})
	if err := succ2.Restore(snap2); err != nil {
		t.Fatal(err)
	}
	floorBefore := succ2.epochFloor
	succ2.Rejoin()
	if succ2.epochFloor <= floorBefore {
		t.Fatalf("second rejoin did not advance the floor: %d -> %d", floorBefore, succ2.epochFloor)
	}
}

// --- randomized crash-recover equivalence ---------------------------------

// recHost wraps one process of the crash-recovery cluster with its
// durability plumbing: a store receiving write-ahead events and periodic
// checkpoints, and the seed needed to rebuild an identical tag stream.
type recHost struct {
	proc  *Quiescent
	store *store.Mem
	seed  uint64
}

// recCluster is the eqCluster of the delta-equivalence test extended
// with per-process stores and crash/recover support: lossless in-order
// queues, shared oracle-style views, and a harness that persists durable
// events exactly as the live node does.
type recCluster struct {
	hosts  []*recHost
	queues [][]wire.Message
	theta  fd.View
	star   fd.View
	det    fd.Detector
	cfg    Config
}

func newRecCluster(n int, seed uint64, cfg Config, theta fd.View) *recCluster {
	c := &recCluster{queues: make([][]wire.Message, n), theta: theta}
	c.det = &fd.Func{
		ThetaFn: func() fd.View { return c.theta },
		StarFn:  func() fd.View { return c.star },
	}
	c.cfg = cfg
	for i := 0; i < n; i++ {
		s := seed + uint64(i)*7919
		c.hosts = append(c.hosts, &recHost{
			proc:  NewQuiescent(c.det, ident.NewSource(xrand.New(s)), cfg),
			store: store.NewMem(),
			seed:  s,
		})
	}
	return c
}

// absorb persists a Step's durable events write-ahead (as the node
// does), then broadcasts its wire messages to every queue.
func (c *recCluster) absorb(i int, s Step) {
	h := c.hosts[i]
	for _, ev := range s.Durable {
		if err := h.store.AppendWAL(ev.EncodeWAL()); err != nil {
			panic(err)
		}
	}
	for _, d := range s.Deliveries {
		if err := h.store.AppendWAL(DeliverEvent(d).EncodeWAL()); err != nil {
			panic(err)
		}
	}
	for _, m := range s.Broadcasts {
		for j := range c.queues {
			c.queues[j] = append(c.queues[j], m)
		}
	}
}

func (c *recCluster) deliverOne(i int) {
	if len(c.queues[i]) == 0 {
		return
	}
	m := c.queues[i][0]
	c.queues[i] = c.queues[i][1:]
	c.absorb(i, c.hosts[i].proc.Receive(m))
}

// checkpoint snapshots process i into its store.
func (c *recCluster) checkpoint(i int) {
	if err := c.hosts[i].store.SaveSnapshot(c.hosts[i].proc.Snapshot()); err != nil {
		panic(err)
	}
}

// crashRecover kills process i — its queued frames are lost — and
// rebuilds it from its store, exactly as the hosts do: restore, replay,
// rejoin, compact.
func (c *recCluster) crashRecover(t *testing.T, i int) {
	t.Helper()
	h := c.hosts[i]
	c.queues[i] = nil // in-flight frames die with the process
	snap, wal, err := h.store.Load()
	if err != nil {
		t.Fatal(err)
	}
	p := NewQuiescent(c.det, ident.NewSource(xrand.New(h.seed)), c.cfg)
	if snap != nil {
		if err := p.Restore(snap); err != nil {
			t.Fatalf("proc %d restore: %v", i, err)
		}
	}
	for k, raw := range wal {
		rec, err := DecodeWALRecord(raw)
		if err != nil {
			t.Fatalf("proc %d wal %d: %v", i, k, err)
		}
		if err := p.ApplyWAL(rec); err != nil {
			t.Fatalf("proc %d replay %d: %v", i, k, err)
		}
	}
	p.Rejoin()
	if err := h.store.SaveSnapshot(p.Snapshot()); err != nil {
		t.Fatal(err)
	}
	h.proc = p
}

// settle and drain mirror the delta-equivalence harness.
func (c *recCluster) settle(rounds int) {
	for r := 0; r < rounds; r++ {
		for i := range c.hosts {
			c.absorb(i, c.hosts[i].proc.Tick())
		}
		for i := range c.hosts {
			for len(c.queues[i]) > 0 {
				c.deliverOne(i)
			}
		}
	}
}

func (c *recCluster) drain(t *testing.T, name string) {
	t.Helper()
	for round := 0; round < 400; round++ {
		for i := range c.hosts {
			for len(c.queues[i]) > 0 {
				c.deliverOne(i)
			}
		}
		sent := 0
		for i := range c.hosts {
			s := c.hosts[i].proc.Tick()
			sent += len(s.Broadcasts)
			c.absorb(i, s)
		}
		if sent == 0 {
			empty := true
			for i := range c.hosts {
				if len(c.queues[i]) > 0 {
					empty = false
					break
				}
			}
			if empty {
				return
			}
		}
	}
	t.Fatalf("%s cluster did not quiesce within the drain budget", name)
}

// claimsByLabel flattens one process's claim counters keyed by message
// body (shared oracle labels are comparable across clusters).
func claimsByLabel(p *Quiescent) map[string]map[ident.Tag]int {
	out := make(map[string]map[ident.Tag]int)
	for id, st := range p.acks {
		m := make(map[ident.Tag]int, len(st.claims))
		for l, cnt := range st.claims {
			m[l] = cnt
		}
		out[id.Body] = m
	}
	return out
}

// TestQuiescentCrashRecoverEquivalence drives randomized schedules —
// broadcasts, interleaved receptions, ticks, a mid-run detector-view
// shift, and CRASH-RECOVER events on random processes — through a
// durable cluster, and an identical schedule (minus the crashes) through
// an uninterrupted cluster. Both must reach the same deliveries and
// claims fixpoint, and then the same retirement endgame: recovery is
// state-transparent at the fixpoint, which is precisely the acceptance
// criterion "forgets nothing, re-delivers nothing" in its strongest
// form. Runs in full-set and delta-ACK modes (the latter exercises the
// Rejoin epoch rebasing under fire).
func TestQuiescentCrashRecoverEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := xrand.New(seed * 0x9e3779b9)
			n := 3 + int(rng.Uint64()%3) // 3..5 processes
			msgs := 3 + int(rng.Uint64()%4)
			cfg := Config{
				CheckOnTick:      rng.Uint64()%2 == 0,
				RetireBeforeSend: rng.Uint64()%2 == 0,
				EagerFirstSend:   rng.Uint64()%2 == 0,
				DeltaAcks:        rng.Uint64()%2 == 0,
			}

			viewA := fd.Normalize(fd.View{
				{Label: lbl(1), Number: n},
				{Label: lbl(2), Number: n},
			})
			viewB := fd.Normalize(fd.View{
				{Label: lbl(1), Number: n},
				{Label: lbl(3), Number: n},
			})

			base := newRecCluster(n, seed, cfg, viewA.Clone())
			crashy := newRecCluster(n, seed, cfg, viewA.Clone())

			steps := 200 + int(rng.Uint64()%200)
			shiftAt := steps/4 + int(rng.Uint64()%(uint64(steps)/2))
			sent := 0
			crashes := 0
			for step := 0; step < steps; step++ {
				if step == shiftAt {
					base.theta = viewB.Clone()
					crashy.theta = viewB.Clone()
				}
				switch op := rng.Uint64() % 20; {
				case op < 10: // deliver one frame at a random process
					i := int(rng.Uint64() % uint64(n))
					base.deliverOne(i)
					crashy.deliverOne(i)
				case op < 14: // tick a random process
					i := int(rng.Uint64() % uint64(n))
					base.absorb(i, base.hosts[i].proc.Tick())
					crashy.absorb(i, crashy.hosts[i].proc.Tick())
				case op < 16: // checkpoint a random process (both clusters,
					// to keep the op schedule identical; base never reads its)
					i := int(rng.Uint64() % uint64(n))
					base.checkpoint(i)
					crashy.checkpoint(i)
				case op < 18: // CRASH-RECOVER a random process (crashy only)
					i := int(rng.Uint64() % uint64(n))
					crashy.crashRecover(t, i)
					crashes++
				default: // broadcast the next payload (same body both sides)
					if sent >= msgs {
						continue
					}
					i := int(rng.Uint64() % uint64(n))
					body := []byte(fmt.Sprintf("m%d", sent))
					sent++
					_, s := base.hosts[i].proc.Broadcast(body)
					base.absorb(i, s)
					_, s = crashy.hosts[i].proc.Broadcast(body)
					crashy.absorb(i, s)
				}
			}
			for ; sent < msgs; sent++ {
				body := []byte(fmt.Sprintf("m%d", sent))
				_, s := base.hosts[0].proc.Broadcast(body)
				base.absorb(0, s)
				_, s = crashy.hosts[0].proc.Broadcast(body)
				crashy.absorb(0, s)
			}
			if crashes == 0 {
				crashy.crashRecover(t, int(rng.Uint64()%uint64(n)))
			}

			// Phase 1 fixpoint: AΘ settles on viewB, retirement disabled.
			base.theta = viewB.Clone()
			crashy.theta = viewB.Clone()
			base.settle(8)
			crashy.settle(8)
			compareRecClusters(t, "fixpoint", base, crashy, msgs)

			// Phase 2 endgame: AP* revealed, both clusters must retire
			// everything and fall silent.
			base.star = viewB.Clone()
			crashy.star = viewB.Clone()
			base.drain(t, "uninterrupted")
			crashy.drain(t, "crash-recover")
			compareRecClusters(t, "quiescence", base, crashy, msgs)
			for i := range crashy.hosts {
				if got := crashy.hosts[i].proc.RetiredCount(); got != msgs {
					t.Fatalf("p%d retired %d/%d after AP* reveal", i, got, msgs)
				}
			}
		})
	}
}

// compareRecClusters asserts both clusters hold identical per-process
// delivered sets, retirement counts and claims maps (keyed by message
// body and oracle label; tag_acks are NOT compared — a recovered process
// keeps its pins, but fresh pins drawn after a crash may differ from the
// uninterrupted cluster's, which is fine as long as the counted evidence
// matches).
func compareRecClusters(t *testing.T, phase string, base, crashy *recCluster, msgs int) {
	t.Helper()
	for i := range base.hosts {
		bp, cp := base.hosts[i].proc, crashy.hosts[i].proc
		bDel, cDel := deliveredBodies(bp), deliveredBodies(cp)
		if len(bDel) != msgs || len(cDel) != msgs {
			t.Fatalf("%s: p%d delivered base=%d crashy=%d, want %d", phase, i, len(bDel), len(cDel), msgs)
		}
		for b := range bDel {
			if !cDel[b] {
				t.Fatalf("%s: p%d: crash-recover cluster missed delivery of %q", phase, i, b)
			}
		}
		if br, cr := bp.RetiredCount(), cp.RetiredCount(); br != cr {
			t.Fatalf("%s: p%d retirement diverged: base=%d crashy=%d", phase, i, br, cr)
		}
		bc, cc := claimsByLabel(bp), claimsByLabel(cp)
		if len(bc) != len(cc) {
			t.Fatalf("%s: p%d tracks %d vs %d messages", phase, i, len(bc), len(cc))
		}
		for body, bm := range bc {
			cm, ok := cc[body]
			if !ok {
				t.Fatalf("%s: p%d: no ACK state for %q after crashes", phase, i, body)
			}
			if len(bm) != len(cm) {
				t.Fatalf("%s: p%d %q: claim label sets differ: base=%v crashy=%v", phase, i, body, bm, cm)
			}
			for l, cnt := range bm {
				if cm[l] != cnt {
					t.Fatalf("%s: p%d %q: claims[%s] base=%d crashy=%d", phase, i, body, l, cnt, cm[l])
				}
			}
		}
		bs, cs := bp.Stats(), cp.Stats()
		if bs.Delivered != cs.Delivered || bs.MsgSet != cs.MsgSet {
			t.Fatalf("%s: p%d stats diverged: base=%+v crashy=%+v", phase, i, bs, cs)
		}
	}
}
