package urb

// Self-stabilization harness (DESIGN.md §13). Restore is the door
// through which foreign state enters a process: a join adopts a donor
// snapshot, a recovery reloads a checkpoint. The digest trailer catches
// accidental corruption, so the adversary worth fuzzing is
// *digest-valid* arbitrary state — bytes mutated and then re-stamped so
// the checksum passes and only semantic validation stands between the
// mutation and a running process. The contract under test: Restore
// either fails loudly or yields a process that behaves — its snapshot
// round-trips, the join conversion (Adopt) succeeds, and state it
// claims as delivered is never delivered again.
//
// The re-stamp trick is white-box: both Restore implementations install
// the decoded state before the final digest compare, so after an
// ErrSnapshotCorrupt the receiver's Fingerprint() is the mutated
// state's fingerprint — exactly what a valid trailer would commit to.

import (
	"encoding/binary"
	"errors"
	"testing"

	"anonurb/internal/ident"
	"anonurb/internal/store"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// restamp replaces data's digest trailer with one committing to fp, the
// fingerprint the payload actually decodes to.
func restamp(data []byte, fp string) []byte {
	out := append([]byte(nil), data...)
	binary.BigEndian.PutUint64(out[len(out)-8:], snapDigest(out[:len(out)-8], fp))
	return out
}

// arbitraryRestore pushes one mutated payload through the Restore gate
// of the process kind its header claims; where only the digest
// disagrees it re-stamps and runs the gate again, and every acceptance
// is vetted for sane behaviour.
func arbitraryRestore(t *testing.T, data []byte) {
	t.Helper()
	if len(data) > 1 && data[1] == snapKindHeartbeat {
		arbitraryHeartbeat(t, data)
		return
	}
	arbitraryQuiescent(t, data)
}

func arbitraryQuiescent(t *testing.T, data []byte) {
	t.Helper()
	cfg := Config{}
	if len(data) > 2 {
		// The flags byte sits right after version and kind: building the
		// receiver from it maximises how much of the payload survives
		// the config-compatibility check and reaches deeper validation.
		cfg = cfgFromFlags(data[2])
	}
	fresh := func() *Quiescent {
		return NewQuiescent(verifyDetector{}, ident.NewSource(xrand.New(1)), cfg)
	}
	p := fresh()
	err := p.Restore(data)
	if err == nil {
		vetRestoredQuiescent(t, p, fresh())
		return
	}
	if !errors.Is(err, ErrSnapshotCorrupt) || len(data) < 8 {
		return // loud structural or semantic rejection
	}
	stamped := restamp(data, p.Fingerprint())
	p2 := fresh()
	if err := p2.Restore(stamped); err != nil {
		t.Fatalf("restamped state flip-flopped: first pass reached the digest, second rejected: %v", err)
	}
	vetRestoredQuiescent(t, p2, fresh())
}

func arbitraryHeartbeat(t *testing.T, data []byte) {
	t.Helper()
	beatEvery, timeout, cfg, ok := hostHeader(data)
	if !ok {
		beatEvery, timeout, cfg = 1, 50, Config{}
	}
	fresh := func() *HeartbeatHost {
		return NewHeartbeatHost(ident.NewSource(xrand.New(1)), timeout, beatEvery,
			func() int64 { return 0 }, cfg)
	}
	// A host snapshot carries two digests: the wrapped algorithm's inner
	// trailer and the host's outer one. A mutation in the inner region
	// fails the inner digest before the outer state installs, so
	// converging on a fully digest-valid mutation can take restamping
	// both trailers across passes: inner first (its state is installed
	// when its digest fails), then outer once the whole decode reaches
	// the final compare.
	cur := data
	for attempt := 0; attempt < 3; attempt++ {
		h := fresh()
		err := h.Restore(cur)
		if err == nil {
			vetRestoredHost(t, h, fresh())
			return
		}
		if !errors.Is(err, ErrSnapshotCorrupt) || len(cur) < 8 {
			return
		}
		next := append([]byte(nil), cur...)
		if from, to, ok := hostInnerRegion(next); ok {
			copy(next[from:to], restamp(next[from:to], h.inner.Fingerprint()))
		}
		cur = restamp(next, h.Fingerprint())
	}
	t.Fatal("digest restamping did not converge for host snapshot")
}

// hostInnerRegion locates the wrapped algorithm's length-prefixed
// snapshot inside a host snapshot (the layout hostHeader documents).
func hostInnerRegion(data []byte) (from, to int, ok bool) {
	if len(data) < 67 {
		return 0, 0, false
	}
	heard := int(binary.BigEndian.Uint32(data[59:63]))
	lenOff := 63 + 24*heard
	if lenOff < 0 || lenOff+4 > len(data) {
		return 0, 0, false
	}
	innerLen := int(binary.BigEndian.Uint32(data[lenOff : lenOff+4]))
	from, to = lenOff+4, lenOff+4+innerLen
	if innerLen < 8 || to+8 > len(data) {
		return 0, 0, false
	}
	return from, to, true
}

// hostHeader reads the host-construction parameters a heartbeat
// snapshot embeds at fixed offsets (label 2..18, beatEvery 18..22,
// timeout 22..30, heard count 59..63, wrapped flags two bytes into the
// length-prefixed inner snapshot), so the fuzz receiver matches
// whatever the mutation claims and the payload reaches the deep checks.
func hostHeader(data []byte) (beatEvery int, timeout int64, cfg Config, ok bool) {
	if len(data) < 63 {
		return 0, 0, Config{}, false
	}
	be := binary.BigEndian.Uint32(data[18:22])
	to := binary.BigEndian.Uint64(data[22:30])
	heard := binary.BigEndian.Uint32(data[59:63])
	if be < 1 || be > 1<<20 || to < 1 || to > 1<<40 || heard > 1<<16 {
		return 0, 0, Config{}, false
	}
	flagsOff := 63 + 24*int(heard) + 4 + 2
	if flagsOff >= len(data) {
		return 0, 0, Config{}, false
	}
	return int(be), int64(to), cfgFromFlags(data[flagsOff]), true
}

// vetRestoredQuiescent checks the behavioural contract on a state
// Restore accepted: re-encode verifies and round-trips, Adopt runs, and
// nothing the state claims as delivered is ever delivered again.
func vetRestoredQuiescent(t *testing.T, p, scratch *Quiescent) {
	t.Helper()
	snap := p.Snapshot()
	if _, err := VerifySnapshot(snap); err != nil {
		t.Fatalf("accepted state re-encodes to an invalid snapshot: %v", err)
	}
	if err := scratch.Restore(snap); err != nil {
		t.Fatalf("accepted state does not round-trip: %v", err)
	}
	driveNoRedelivery(t, p, p.delivered)
}

func vetRestoredHost(t *testing.T, h, scratch *HeartbeatHost) {
	t.Helper()
	snap := h.Snapshot()
	if _, err := VerifySnapshot(snap); err != nil {
		t.Fatalf("accepted host state re-encodes to an invalid snapshot: %v", err)
	}
	if err := scratch.Restore(snap); err != nil {
		t.Fatalf("accepted host state does not round-trip: %v", err)
	}
	driveNoRedelivery(t, h, h.inner.delivered)
}

// driveNoRedelivery converts p to joiner state and drives it: replaying
// MSG copies of claimed-delivered history and running retransmission
// rounds must never deliver an adopted id (uniform integrity from
// arbitrary state), and anything else delivered must arrive only once.
func driveNoRedelivery(t *testing.T, p Process, delivered deliveredSet) {
	t.Helper()
	adopted := make(map[wire.MsgID]bool, len(delivered))
	for id := range delivered {
		adopted[id] = true
	}
	p.(Joiner).Adopt()
	seen := make(map[wire.MsgID]bool)
	check := func(st Step) {
		for _, d := range st.Deliveries {
			if adopted[d.ID] {
				t.Fatalf("re-delivered adopted history %v", d.ID)
			}
			if seen[d.ID] {
				t.Fatalf("delivered %v twice while draining", d.ID)
			}
			seen[d.ID] = true
		}
	}
	probes := sortedKeys(delivered)
	if len(probes) > 32 {
		probes = probes[:32]
	}
	for _, id := range probes {
		check(p.Receive(wire.NewMsg(id)))
	}
	for i := 0; i < 3; i++ {
		check(p.Tick())
	}
}

// FuzzRestoreArbitraryState is the fuzz entry: seeds are canonical
// snapshots of every durable kind; the mutator's corruptions are
// re-stamped digest-valid where possible so the semantic gate — not the
// checksum — carries the load.
func FuzzRestoreArbitraryState(f *testing.F) {
	f.Add(buildQuiescent(61, false).Snapshot())
	f.Add(buildQuiescent(62, true).Snapshot())
	f.Add(buildQuiescentCfg(63, Config{DeltaAcks: true, CompactDelivered: true}).Snapshot())
	f.Add(buildHeartbeatHost(64).Snapshot())
	f.Fuzz(func(t *testing.T, data []byte) {
		arbitraryRestore(t, data)
	})
}

// TestRestoreByteFlipSweep is the deterministic core of the harness:
// every single-byte corruption of canonical snapshots, re-stamped
// digest-valid where it decodes, goes through the full gate. It runs on
// every plain `go test`, so the self-stabilization contract does not
// depend on fuzzing infrastructure being exercised.
func TestRestoreByteFlipSweep(t *testing.T) {
	for _, snap := range [][]byte{
		buildQuiescent(71, false).Snapshot(),
		buildQuiescentCfg(72, Config{DeltaAcks: true}).Snapshot(),
		buildHeartbeatHost(73).Snapshot(),
	} {
		for off := range snap {
			for _, bit := range []byte{0x01, 0x80} {
				data := append([]byte(nil), snap...)
				data[off] ^= bit
				arbitraryRestore(t, data)
			}
		}
	}
}

// flipRestamp is the deterministic corruption injector for store.Mem:
// it flips one byte of the stored snapshot and re-stamps the digest
// trailer so the corruption is checksum-clean — store.SnapshotMutator's
// intended role in the self-stabilization harness.
type flipRestamp struct{ off int }

func (f flipRestamp) MutateSnapshot(snap []byte) []byte {
	if len(snap) < 9 {
		return snap
	}
	snap[f.off%(len(snap)-8)] ^= 0x04
	// Two-pass restamp: decode to learn the mutated fingerprint, then
	// commit the trailer to it (a mutation the decoder rejects outright
	// is returned as-is corrupt — loud failure is a legal outcome).
	p := NewQuiescent(verifyDetector{}, ident.NewSource(xrand.New(1)), cfgFromFlags(snap[2]))
	if err := p.Restore(snap); errors.Is(err, ErrSnapshotCorrupt) {
		return restamp(snap, p.Fingerprint())
	}
	return snap
}

// TestMemMutatorFeedsRestore wires the injector through the store:
// state loaded from a Mem with a corruption mutator installed — the
// recovery path's source of truth — must either fail Restore loudly or
// restore to a vetted, non-re-delivering process.
func TestMemMutatorFeedsRestore(t *testing.T) {
	donor := buildQuiescentCfg(81, Config{DeltaAcks: true})
	st := store.NewMem()
	if err := st.SaveSnapshot(donor.Snapshot()); err != nil {
		t.Fatal(err)
	}
	cfg := Config{DeltaAcks: true}
	loud, accepted := 0, 0
	for off := 0; off < 256; off++ {
		st.SetSnapshotMutator(flipRestamp{off: off})
		snap, _, err := st.Load()
		if err != nil {
			t.Fatal(err)
		}
		p := NewQuiescent(verifyDetector{}, ident.NewSource(xrand.New(2)), cfg)
		if rerr := p.Restore(snap); rerr != nil {
			loud++
			continue
		}
		accepted++
		vetRestoredQuiescent(t, p,
			NewQuiescent(verifyDetector{}, ident.NewSource(xrand.New(2)), cfg))
	}
	if loud == 0 {
		t.Fatal("no mutation was rejected: the injector is not reaching Restore")
	}
	if accepted == 0 {
		t.Fatal("every digest-valid mutation was rejected: the restamp path is dead")
	}
}
