package urb

import (
	"bytes"
	"testing"

	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

func newMaj(t *testing.T, n int, cfg Config) *Majority {
	t.Helper()
	return NewMajority(n, ident.NewSource(xrand.New(uint64(n)*7+1)), cfg)
}

func TestMajorityBroadcastFillsMsgSet(t *testing.T) {
	p := newMaj(t, 5, Config{})
	_, s := p.Broadcast([]byte("hello"))
	if len(s.Broadcasts) != 0 {
		t.Fatal("paper-faithful mode must not transmit from URB_broadcast")
	}
	if p.Stats().MsgSet != 1 {
		t.Fatalf("MsgSet %d, want 1", p.Stats().MsgSet)
	}
	tick := p.Tick()
	if len(tick.Broadcasts) != 1 || tick.Broadcasts[0].Kind != wire.KindMsg {
		t.Fatalf("Task 1 should emit exactly the MSG, got %v", tick.Broadcasts)
	}
	if !bytes.Equal(tick.Broadcasts[0].Body, []byte("hello")) {
		t.Fatalf("body %q", tick.Broadcasts[0].Body)
	}
}

func TestMajorityEagerFirstSend(t *testing.T) {
	p := newMaj(t, 5, Config{EagerFirstSend: true})
	_, s := p.Broadcast([]byte("now"))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindMsg {
		t.Fatal("eager mode must transmit immediately")
	}
}

func TestMajorityAckPinnedPerMessage(t *testing.T) {
	p := newMaj(t, 3, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 1, Lo: 1}, Body: "m"}
	s1 := p.Receive(wire.NewMsg(id))
	if len(s1.Broadcasts) != 1 || s1.Broadcasts[0].Kind != wire.KindAck {
		t.Fatalf("first reception must ACK, got %v", s1.Broadcasts)
	}
	ack1 := s1.Broadcasts[0].AckTag
	s2 := p.Receive(wire.NewMsg(id))
	ack2 := s2.Broadcasts[0].AckTag
	if ack1 != ack2 {
		t.Fatal("tag_ack must be pinned per (m,tag) — MY_ACK broken")
	}
	// A different message gets a different tag_ack.
	other := wire.MsgID{Tag: ident.Tag{Hi: 2, Lo: 2}, Body: "m"}
	s3 := p.Receive(wire.NewMsg(other))
	if s3.Broadcasts[0].AckTag == ack1 {
		t.Fatal("distinct messages must get distinct tag_acks")
	}
	if p.Stats().MyAcks != 2 {
		t.Fatalf("MyAcks %d, want 2", p.Stats().MyAcks)
	}
}

func TestMajorityDeliversOnMajorityOfDistinctAcks(t *testing.T) {
	p := newMaj(t, 5, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "x"}
	acks := []ident.Tag{{Hi: 1, Lo: 1}, {Hi: 2, Lo: 2}, {Hi: 3, Lo: 3}}
	// Two distinct acks: 2*2 = 4 <= 5, no delivery.
	s := p.Receive(wire.NewAck(id, acks[0]))
	if len(s.Deliveries) != 0 {
		t.Fatal("premature delivery at 1 ack")
	}
	s = p.Receive(wire.NewAck(id, acks[1]))
	if len(s.Deliveries) != 0 {
		t.Fatal("premature delivery at 2 acks (n=5)")
	}
	// Duplicate ack must not count twice.
	s = p.Receive(wire.NewAck(id, acks[1]))
	if len(s.Deliveries) != 0 {
		t.Fatal("duplicate tag_ack counted twice")
	}
	if p.AckCount(id) != 2 {
		t.Fatalf("AckCount %d, want 2", p.AckCount(id))
	}
	// Third distinct ack: 2*3 = 6 > 5 → deliver.
	s = p.Receive(wire.NewAck(id, acks[2]))
	if len(s.Deliveries) != 1 || s.Deliveries[0].ID != id {
		t.Fatalf("expected delivery, got %v", s.Deliveries)
	}
	if !p.HasDelivered(id) {
		t.Fatal("HasDelivered")
	}
}

func TestMajorityIntegrityDeliversAtMostOnce(t *testing.T) {
	p := newMaj(t, 3, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "x"}
	total := 0
	for i := 0; i < 10; i++ {
		s := p.Receive(wire.NewAck(id, ident.Tag{Hi: uint64(i) + 1, Lo: 5}))
		total += len(s.Deliveries)
	}
	if total != 1 {
		t.Fatalf("delivered %d times, want exactly 1", total)
	}
}

func TestMajorityFastDeliveryFlag(t *testing.T) {
	p := newMaj(t, 3, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 7, Lo: 7}, Body: "fast"}
	// Deliver purely from ACKs: the process never saw the MSG.
	p.Receive(wire.NewAck(id, ident.Tag{Hi: 1, Lo: 1}))
	s := p.Receive(wire.NewAck(id, ident.Tag{Hi: 2, Lo: 2}))
	if len(s.Deliveries) != 1 || !s.Deliveries[0].Fast {
		t.Fatalf("expected fast delivery, got %v", s.Deliveries)
	}

	// Control: reception of MSG first clears the flag.
	q := newMaj(t, 3, Config{})
	id2 := wire.MsgID{Tag: ident.Tag{Hi: 8, Lo: 8}, Body: "slow"}
	q.Receive(wire.NewMsg(id2))
	q.Receive(wire.NewAck(id2, ident.Tag{Hi: 1, Lo: 1}))
	s = q.Receive(wire.NewAck(id2, ident.Tag{Hi: 2, Lo: 2}))
	if len(s.Deliveries) != 1 || s.Deliveries[0].Fast {
		t.Fatalf("expected ordinary delivery, got %v", s.Deliveries)
	}
}

func TestMajorityNonQuiescent(t *testing.T) {
	p := newMaj(t, 3, Config{})
	_, _ = p.Broadcast([]byte("m1"))
	p.Receive(wire.NewMsg(wire.MsgID{Tag: ident.Tag{Hi: 5, Lo: 5}, Body: "m2"}))
	for i := 0; i < 50; i++ {
		s := p.Tick()
		if len(s.Broadcasts) != 2 {
			t.Fatalf("tick %d emitted %d, want 2 — Algorithm 1 must never stop", i, len(s.Broadcasts))
		}
	}
	if p.Stats().MsgSet != 2 || p.Stats().Retired != 0 {
		t.Fatalf("stats %+v", p.Stats())
	}
}

func TestMajorityIgnoresForeignKinds(t *testing.T) {
	p := newMaj(t, 3, Config{})
	s := p.Receive(wire.Message{Kind: wire.Kind(99), Body: []byte("junk"), Tag: ident.Tag{Hi: 1}})
	if len(s.Broadcasts)+len(s.Deliveries) != 0 {
		t.Fatal("unknown kinds must be ignored")
	}
}

func TestMajorityPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMajority(0, ident.NewSource(xrand.New(1)), Config{})
}

func TestMajorityClusterAllDeliver(t *testing.T) {
	// Five processes over the lossless pump: everything everyone
	// broadcasts is delivered exactly once by everyone.
	const n = 5
	tags := tagsFor(101, n)
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = NewMajority(n, tags[i], Config{})
	}
	pm := newPump(t, procs...)
	pm.broadcast(0, "a")
	pm.broadcast(2, "b")
	pm.broadcast(4, "c")
	pm.run(3)
	for i := 0; i < n; i++ {
		ids := pm.deliveredIDs(i)
		if len(ids) != 3 {
			t.Fatalf("p%d delivered %d messages, want 3", i, len(ids))
		}
		bodies := map[string]int{}
		for _, id := range ids {
			bodies[id.Body]++
		}
		for _, b := range []string{"a", "b", "c"} {
			if bodies[b] != 1 {
				t.Fatalf("p%d delivered %q %d times", i, b, bodies[b])
			}
		}
	}
}

func TestMajorityClusterAgreementUnderCrash(t *testing.T) {
	// n=5, t=2 (< n/2): two processes crash right after the broadcast has
	// been queued; the three survivors must still deliver.
	const n = 5
	tags := tagsFor(202, n)
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = NewMajority(n, tags[i], Config{})
	}
	pm := newPump(t, procs...)
	pm.broadcast(0, "survivor")
	pm.round() // first dissemination round
	pm.crash(3)
	pm.crash(4)
	pm.run(3)
	for i := 0; i < 3; i++ {
		if len(pm.deliveredIDs(i)) != 1 {
			t.Fatalf("correct p%d failed to deliver", i)
		}
	}
}

func TestMajorityStallsWithoutMajority(t *testing.T) {
	// n=4 and only 2 live ackers: 2*2 = 4 is not > 4, so nobody may
	// deliver — this is the blocking behaviour Theorem 2 says is
	// unavoidable, not a liveness bug.
	const n = 4
	tags := tagsFor(303, n)
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = NewMajority(n, tags[i], Config{})
	}
	pm := newPump(t, procs...)
	pm.crash(2)
	pm.crash(3)
	pm.broadcast(0, "stuck")
	pm.run(5)
	for i := 0; i < 2; i++ {
		if len(pm.deliveredIDs(i)) != 0 {
			t.Fatalf("p%d delivered without a majority of acks", i)
		}
	}
}

func TestMajorityCheckOnTick(t *testing.T) {
	p := newMaj(t, 3, Config{CheckOnTick: true})
	id := wire.MsgID{Tag: ident.Tag{Hi: 4, Lo: 4}, Body: "x"}
	p.Receive(wire.NewAck(id, ident.Tag{Hi: 1, Lo: 1}))
	p.Receive(wire.NewAck(id, ident.Tag{Hi: 2, Lo: 2}))
	// Already delivered on receipt; tick must not deliver again.
	s := p.Tick()
	if len(s.Deliveries) != 0 {
		t.Fatal("tick re-delivered")
	}
}

func TestMajorityStatsWireSent(t *testing.T) {
	p := newMaj(t, 3, Config{})
	_, _ = p.Broadcast([]byte("a"))
	p.Tick()
	p.Tick()
	if got := p.Stats().WireSent; got != 2 {
		t.Fatalf("WireSent %d, want 2", got)
	}
}
