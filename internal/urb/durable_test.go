package urb

import (
	"bytes"
	"fmt"
	"testing"

	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// buildMajority drives a Majority instance into a non-trivial state:
// broadcasts, receptions, acks from several peers, a delivery.
func buildMajority(seed uint64) *Majority {
	p := NewMajorityThreshold(5, 3, ident.NewSource(xrand.New(seed)), Config{CheckOnTick: true})
	p.Broadcast([]byte("alpha"))
	p.Broadcast([]byte{0x00, 0xff, 0x80}) // non-UTF-8 body
	other := wire.MsgID{Tag: ident.Tag{Hi: 7, Lo: 7}, Body: "beta"}
	p.Receive(wire.NewMsg(other))
	for i := uint64(1); i <= 3; i++ {
		p.Receive(wire.NewAck(other, ident.Tag{Hi: 100 + i, Lo: 1}))
	}
	p.Tick()
	return p
}

// buildQuiescent drives a Quiescent instance with delta-ACK machinery
// engaged: ledger entries, epochs, synced and unsynced views, a pending
// resync limiter, a purge, a retirement.
func buildQuiescent(seed uint64, delta bool) *Quiescent {
	return buildQuiescentCfg(seed, Config{DeltaAcks: delta})
}

func buildQuiescentCfg(seed uint64, cfg Config) *Quiescent {
	view := fd.Normalize(fd.View{{Label: lbl(1), Number: 2}, {Label: lbl(2), Number: 2}})
	det := &fd.Func{
		ThetaFn: func() fd.View { return view },
		StarFn:  func() fd.View { return view },
	}
	p := NewQuiescent(det, ident.NewSource(xrand.New(seed)), cfg)
	p.Broadcast([]byte("alpha"))
	id := wire.MsgID{Tag: ident.Tag{Hi: 7, Lo: 7}, Body: "beta"}
	p.Receive(wire.NewMsg(id))
	p.Receive(wire.NewAckSnapshot(id, lbl(100), 1, []ident.Tag{lbl(1), lbl(2)}))
	p.Receive(wire.NewAckDelta(id, lbl(100), 2, []ident.Tag{lbl(3)}, nil))
	p.Receive(wire.NewLabeledAck(id, lbl(101), []ident.Tag{lbl(1)})) // unsynced legacy view
	// An epoch gap leaves a pending resync-request limiter behind.
	p.Receive(wire.NewAckDelta(id, lbl(102), 5, []ident.Tag{lbl(2)}, nil))
	p.Receive(wire.NewAckSnapshot(id, lbl(103), 1, []ident.Tag{lbl(1), lbl(2)}))
	p.Tick()
	p.Receive(wire.NewMsg(id)) // re-ACK after the tick (ledger re-arm path)
	return p
}

// buildHeartbeatHost drives the full heartbeat stack.
func buildHeartbeatHost(seed uint64) *HeartbeatHost {
	var now int64
	h := NewHeartbeatHost(ident.NewSource(xrand.New(seed)), 50, 2, func() int64 { return now }, Config{DeltaAcks: true})
	h.Broadcast([]byte("alpha"))
	h.Receive(wire.NewBeat(lbl(41)))
	now = 10
	h.Receive(wire.NewBeat(lbl(42)))
	id := wire.MsgID{Tag: ident.Tag{Hi: 7, Lo: 7}, Body: "beta"}
	h.Receive(wire.NewMsg(id))
	h.Tick()
	now = 20
	h.Tick()
	return h
}

func TestSnapshotRoundTripMajority(t *testing.T) {
	p := buildMajority(11)
	snap := p.Snapshot()
	if !bytes.Equal(snap, p.Snapshot()) {
		t.Fatal("snapshot encoding is not canonical (two calls differ)")
	}
	q := NewMajorityThreshold(5, 3, ident.NewSource(xrand.New(11)), Config{CheckOnTick: true})
	if err := q.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if p.Fingerprint() != q.Fingerprint() {
		t.Fatalf("fingerprint mismatch after round trip:\n got %s\nwant %s", q.Fingerprint(), p.Fingerprint())
	}
	// Behaviour equality: identical further inputs produce identical
	// outputs and states.
	other := wire.MsgID{Tag: ident.Tag{Hi: 7, Lo: 7}, Body: "beta"}
	s1 := p.Receive(wire.NewAck(other, ident.Tag{Hi: 200, Lo: 1}))
	s2 := q.Receive(wire.NewAck(other, ident.Tag{Hi: 200, Lo: 1}))
	if len(s1.Deliveries) != len(s2.Deliveries) {
		t.Fatalf("diverged after restore: %v vs %v", s1, s2)
	}
	t1, t2 := p.Tick(), q.Tick()
	if len(t1.Broadcasts) != len(t2.Broadcasts) {
		t.Fatalf("tick diverged after restore: %d vs %d broadcasts", len(t1.Broadcasts), len(t2.Broadcasts))
	}
	if p.Fingerprint() != q.Fingerprint() {
		t.Fatal("states diverged after identical post-restore inputs")
	}
}

func TestSnapshotRoundTripQuiescent(t *testing.T) {
	for _, delta := range []bool{false, true} {
		t.Run(fmt.Sprintf("delta=%v", delta), func(t *testing.T) {
			p := buildQuiescent(13, delta)
			snap := p.Snapshot()
			if !bytes.Equal(snap, p.Snapshot()) {
				t.Fatal("snapshot encoding is not canonical")
			}
			view := fd.Normalize(fd.View{{Label: lbl(1), Number: 2}, {Label: lbl(2), Number: 2}})
			det := fd.Static{Theta: view.Clone(), Star: view.Clone()}
			q := NewQuiescent(det, ident.NewSource(xrand.New(13)), Config{DeltaAcks: delta})
			if err := q.Restore(snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if p.Fingerprint() != q.Fingerprint() {
				t.Fatalf("fingerprint mismatch:\n got %s\nwant %s", q.Fingerprint(), p.Fingerprint())
			}
			// The restored tag stream continues where the original's does.
			id := wire.MsgID{Tag: ident.Tag{Hi: 8, Lo: 8}, Body: "gamma"}
			s1 := p.Receive(wire.NewMsg(id))
			s2 := q.Receive(wire.NewMsg(id))
			if len(s1.Broadcasts) != len(s2.Broadcasts) {
				t.Fatalf("post-restore ACK divergence: %v vs %v", s1.Broadcasts, s2.Broadcasts)
			}
			for i := range s1.Broadcasts {
				if !s1.Broadcasts[i].Equal(s2.Broadcasts[i]) {
					t.Fatalf("post-restore broadcast %d differs: %v vs %v", i, s1.Broadcasts[i], s2.Broadcasts[i])
				}
			}
			if p.Fingerprint() != q.Fingerprint() {
				t.Fatal("states diverged after identical post-restore inputs")
			}
		})
	}
}

func TestSnapshotRoundTripHeartbeatHost(t *testing.T) {
	h := buildHeartbeatHost(17)
	snap := h.Snapshot()
	if !bytes.Equal(snap, h.Snapshot()) {
		t.Fatal("snapshot encoding is not canonical")
	}
	var now int64 = 20
	g := NewHeartbeatHost(ident.NewSource(xrand.New(17)), 50, 2, func() int64 { return now }, Config{DeltaAcks: true})
	if err := g.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if h.Fingerprint() != g.Fingerprint() {
		t.Fatalf("fingerprint mismatch:\n got %s\nwant %s", g.Fingerprint(), h.Fingerprint())
	}
	if g.Detector().Label() != h.Detector().Label() {
		t.Fatal("restored host did not adopt the persistent detector label")
	}
	s1, s2 := h.Tick(), g.Tick()
	if len(s1.Broadcasts) != len(s2.Broadcasts) {
		t.Fatalf("tick diverged: %v vs %v", s1.Broadcasts, s2.Broadcasts)
	}
}

func TestSnapshotRestoreRejectsGarbage(t *testing.T) {
	p := buildQuiescent(19, true)
	snap := p.Snapshot()
	fresh := func() *Quiescent {
		view := fd.Normalize(fd.View{{Label: lbl(1), Number: 2}, {Label: lbl(2), Number: 2}})
		return NewQuiescent(fd.Static{Theta: view, Star: view}, ident.NewSource(xrand.New(19)), Config{DeltaAcks: true})
	}

	if err := fresh().Restore(nil); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	bad := append([]byte(nil), snap...)
	bad[0] = 99
	if err := fresh().Restore(bad); err != ErrSnapshotVersion {
		t.Fatalf("bad version: %v", err)
	}
	bad = append([]byte(nil), snap...)
	bad[1] = snapKindMajority
	if err := fresh().Restore(bad); err != ErrSnapshotKind {
		t.Fatalf("wrong kind: %v", err)
	}
	// Truncations at every length must error, never panic.
	for cut := 0; cut < len(snap); cut++ {
		if err := fresh().Restore(snap[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A flipped payload byte must fail the fingerprint digest (or a
	// structural check) — find a byte whose flip survives structure.
	corrupted := 0
	for i := 2; i < len(snap); i++ {
		bad = append([]byte(nil), snap...)
		bad[i] ^= 0x01
		if err := fresh().Restore(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no corruption cases exercised")
	}
	// Config mismatch: same state, differently configured receiver.
	view := fd.Normalize(fd.View{{Label: lbl(1), Number: 2}})
	q := NewQuiescent(fd.Static{Theta: view, Star: view}, ident.NewSource(xrand.New(19)), Config{})
	if err := q.Restore(snap); err == nil {
		t.Fatal("config-flag mismatch accepted")
	}
	// System-size mismatch for Majority.
	m := buildMajority(23)
	msnap := m.Snapshot()
	wrongN := NewMajorityThreshold(7, 4, ident.NewSource(xrand.New(23)), Config{CheckOnTick: true})
	if err := wrongN.Restore(msnap); err == nil {
		t.Fatal("n/threshold mismatch accepted")
	}
	// A tag source already past the snapshot's position cannot rewind.
	used := NewMajorityThreshold(5, 3, ident.NewSource(xrand.New(23)), Config{CheckOnTick: true})
	for i := 0; i < 50; i++ {
		used.Broadcast([]byte{byte(i)})
	}
	if err := used.Restore(msnap); err == nil {
		t.Fatal("restore onto a used process with a rewound stream accepted")
	}
}

func TestVerifySnapshot(t *testing.T) {
	cases := []struct {
		name string
		snap []byte
		kind string
	}{
		{"majority", buildMajority(29).Snapshot(), "majority"},
		{"quiescent", buildQuiescent(31, true).Snapshot(), "quiescent"},
		{"heartbeat", buildHeartbeatHost(37).Snapshot(), "heartbeat-host"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			info, err := VerifySnapshot(tc.snap)
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if info.Kind != tc.kind {
				t.Fatalf("kind = %q, want %q", info.Kind, tc.kind)
			}
			if info.Stats.MsgSet == 0 && info.Stats.Delivered == 0 && info.Stats.MyAcks == 0 {
				t.Fatal("verified snapshot reports an empty state")
			}
			// Corrupt one byte: Verify must reject.
			bad := append([]byte(nil), tc.snap...)
			bad[len(bad)/2] ^= 0x10
			if _, err := VerifySnapshot(bad); err == nil {
				t.Fatal("corrupted snapshot verified")
			}
			if _, err := VerifySnapshot(tc.snap[:len(tc.snap)-3]); err == nil {
				t.Fatal("truncated snapshot verified")
			}
		})
	}
	if _, err := VerifySnapshot(nil); err == nil {
		t.Fatal("empty input verified")
	}
	if _, err := VerifySnapshot([]byte{snapVersion, 42}); err != ErrSnapshotKind {
		t.Fatalf("unknown kind: %v", err)
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	id := wire.MsgID{Tag: ident.Tag{Hi: 3, Lo: 4}, Body: string([]byte{0, 1, 0xfe})}
	recs := []DurableEvent{
		{Kind: WALDeliver, ID: id, Fast: true},
		{Kind: WALDeliver, ID: id},
		{Kind: WALPin, ID: id, Ack: lbl(9), Draws: 17},
		{Kind: WALBroadcast, ID: id, Draws: 3},
	}
	for _, rec := range recs {
		got, err := DecodeWALRecord(rec.EncodeWAL())
		if err != nil {
			t.Fatalf("%v: %v", rec, err)
		}
		if got != rec {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
	}
	// Corruption: truncations and bad kinds error, never panic.
	enc := recs[2].EncodeWAL()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeWALRecord(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeWALRecord(append(enc, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[1] = 77
	if _, err := DecodeWALRecord(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestWALReplayPreservesUniformity is the core recovery property at the
// state-machine level: replaying DELIVER records prevents re-delivery,
// replaying PIN records re-acks under the original tag_ack, and replaying
// BROADCAST records resumes dissemination.
func TestWALReplayPreservesUniformity(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 1})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	s := p.Receive(wire.NewMsg(id))
	pin := s.Durable[0]
	if pin.Kind != WALPin {
		t.Fatalf("first reception must emit a pin event, got %v", pin)
	}
	s = p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
	if len(s.Deliveries) != 1 {
		t.Fatal("setup: no delivery")
	}

	// "Recover" into a fresh process from an empty snapshot plus the WAL.
	q := newQui(t, det, Config{})
	for _, rec := range []DurableEvent{pin, DeliverEvent(s.Deliveries[0])} {
		enc := rec.EncodeWAL()
		dec, err := DecodeWALRecord(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := q.ApplyWAL(dec); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	if !q.HasDelivered(id) {
		t.Fatal("replayed delivery forgotten")
	}
	if !q.KnowsMsg(id) {
		t.Fatal("delivered message not retransmitting after replay")
	}
	// Re-receiving the message must re-deliver nothing and must re-ack
	// under the ORIGINAL tag_ack.
	s = q.Receive(wire.NewMsg(id))
	if len(s.Deliveries) != 0 {
		t.Fatal("recovered process re-delivered")
	}
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].AckTag != pin.Ack {
		t.Fatalf("recovered process did not reuse the pinned tag_ack: %v", s.Broadcasts)
	}
	// And the delivery guard on fresh evidence stays quiet too.
	s = q.Receive(wire.NewLabeledAck(id, lbl(101), []ident.Tag{lbl(1)}))
	if len(s.Deliveries) != 0 {
		t.Fatal("recovered process re-delivered on ACK evidence")
	}
}

// TestWALBroadcastReplayResumesDissemination: a broadcast logged but not
// yet checkpointed must keep disseminating after recovery.
func TestWALBroadcastReplayResumesDissemination(t *testing.T) {
	p := newMaj(t, 3, Config{})
	_, s := p.Broadcast([]byte("survivor"))
	if len(s.Durable) != 1 || s.Durable[0].Kind != WALBroadcast {
		t.Fatalf("broadcast must emit a durable event, got %v", s.Durable)
	}
	q := newMaj(t, 3, Config{})
	if err := q.ApplyWAL(s.Durable[0]); err != nil {
		t.Fatalf("apply: %v", err)
	}
	tick := q.Tick()
	if len(tick.Broadcasts) != 1 || tick.Broadcasts[0].Kind != wire.KindMsg {
		t.Fatalf("recovered process does not retransmit the logged broadcast: %v", tick.Broadcasts)
	}
	if tick.Broadcasts[0].ID() != s.Durable[0].ID {
		t.Fatal("retransmits the wrong message")
	}
	// The replayed draw position prevents tag reuse: the next broadcast
	// draws a different tag than the logged one.
	id2, _ := q.Broadcast([]byte("survivor"))
	if id2 == s.Durable[0].ID {
		t.Fatal("post-recovery broadcast re-issued the logged tag")
	}
}

func FuzzSnapshotDecode(f *testing.F) {
	f.Add(buildMajority(41).Snapshot())
	f.Add(buildQuiescent(43, true).Snapshot())
	f.Add(buildQuiescent(43, false).Snapshot())
	f.Add(buildQuiescentCfg(44, Config{DeltaAcks: true, CompactDelivered: true}).Snapshot())
	f.Add(buildHeartbeatHost(47).Snapshot())
	hd := NewHeartbeatHost(ident.NewSource(xrand.New(48)), 50, 1, func() int64 { return 0 },
		Config{DeltaAcks: true, DeltaBeats: true, CompactDelivered: true})
	hd.Tick() // snapshot beat sent: beatSnapSent persists true
	f.Add(hd.Snapshot())
	f.Add([]byte{})
	f.Add([]byte{snapVersion, snapKindQuiescent})
	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := VerifySnapshot(data)
		if err != nil {
			return
		}
		// Anything that verifies must re-encode to a verifiable snapshot
		// of the same kind (the decoder and encoder agree on the format).
		var snap []byte
		switch info.Kind {
		case "majority":
			p := NewMajorityThreshold(info.N, info.Threshold, verifyTagSource(), info.Config)
			if rerr := p.Restore(data); rerr != nil {
				t.Fatalf("verified but Restore failed: %v", rerr)
			}
			snap = p.Snapshot()
		case "quiescent":
			p := NewQuiescent(verifyDetector{}, verifyTagSource(), info.Config)
			if rerr := p.Restore(data); rerr != nil {
				t.Fatalf("verified but Restore failed: %v", rerr)
			}
			snap = p.Snapshot()
		case "heartbeat-host":
			p := NewHeartbeatHost(verifyTagSource(), info.Timeout, info.BeatEvery, func() int64 { return 0 }, info.Config)
			if rerr := p.Restore(data); rerr != nil {
				t.Fatalf("verified but Restore failed: %v", rerr)
			}
			snap = p.Snapshot()
		}
		info2, err := VerifySnapshot(snap)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not verify: %v", err)
		}
		if info2.Kind != info.Kind || info2.Digest != info.Digest {
			t.Fatalf("re-encode changed identity: %+v vs %+v", info2, info)
		}
	})
}

func FuzzWALRecordDecode(f *testing.F) {
	id := wire.MsgID{Tag: ident.Tag{Hi: 3, Lo: 4}, Body: "m"}
	f.Add(DurableEvent{Kind: WALDeliver, ID: id, Fast: true}.EncodeWAL())
	f.Add(DurableEvent{Kind: WALPin, ID: id, Ack: lbl(9), Draws: 17}.EncodeWAL())
	f.Add(DurableEvent{Kind: WALBroadcast, ID: id, Draws: 3}.EncodeWAL())
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeWALRecord(data)
		if err != nil {
			return
		}
		enc := rec.EncodeWAL()
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not canonical: %x vs %x", enc, data)
		}
	})
}
