package urb

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// This file is the durable-state surface of the algorithms (DESIGN.md §9):
// a canonical, versioned binary codec for process state — the sibling of
// internal/wire, but for state instead of frames — plus the write-ahead
// events a persisting host logs between checkpoints.
//
// The paper's model is crash-stop; crash-recovery is a deliberate
// extension (in the spirit of the self-stabilizing URB line of work, see
// PAPERS.md): a process that restarts from its store must forget nothing
// it URB-delivered (uniformity across restarts) and must keep using the
// tag_acks it already pinned (a fresh tag_ack for an already-acked
// message would count as a second, phantom acker at receivers — exactly
// the over-counting the Theorem 2 construction exploits). Snapshots carry
// the full state machine; the WAL carries the three transitions that must
// never be lost between checkpoints: deliveries, tag_ack pins and local
// broadcasts.

// Snapshotter is implemented by process types whose full state can be
// exported to and rebuilt from the canonical binary snapshot form.
// Restore must be called on a freshly constructed process (same
// constructor parameters, a tag Source at stream position zero); it
// verifies the embedded fingerprint digest after rebuilding, so a
// corrupted snapshot that survives the structural checks still fails.
type Snapshotter interface {
	// Snapshot returns the canonical binary encoding of the full process
	// state. Two calls on the same state return identical bytes.
	Snapshot() []byte
	// Restore rebuilds the process state from a Snapshot. The process's
	// tag Source is fast-forwarded to the snapshot's stream position.
	Restore(data []byte) error
}

// Durable is the contract a crash-recovery host needs from an algorithm:
// the live Process surface, snapshot export/import, WAL replay, and the
// post-replay incarnation step.
type Durable interface {
	Process
	Snapshotter
	// ApplyWAL replays one write-ahead record into the state machine, in
	// the order the host logged them after the snapshot being recovered.
	ApplyWAL(rec DurableEvent) error
	// Rejoin marks the recovered state as a new incarnation. Hosts call
	// it once, after Restore and WAL replay, before the process goes
	// live. Restore alone reproduces the checkpointed state exactly —
	// but the window between the checkpoint and the crash is lost, and
	// state that *numbers* an outbound stream (the delta-ACK epochs)
	// must never fall behind what the previous incarnation already put
	// on the wire: receivers would discard the recovered process's ACKs
	// as stale, silently and forever. Rejoin abandons such streams and
	// rebases them above an epoch floor that dominates every epoch the
	// previous incarnation can have sent (receivers heal through the
	// ordinary gap→resync→snapshot path). A no-op for Algorithm 1, whose
	// ACKs carry no sequencing.
	Rejoin()
}

var (
	_ Durable = (*Majority)(nil)
	_ Durable = (*Quiescent)(nil)
	_ Durable = (*HeartbeatHost)(nil)
)

// WALKind discriminates write-ahead records.
type WALKind uint8

const (
	// WALDeliver records one URB-delivery: the uniformity-critical event.
	// A recovered process must never re-deliver it and must keep
	// retransmitting the message until the algorithm's own rules stop.
	WALDeliver WALKind = 1
	// WALPin records the pinning of a tag_ack to a message (first MSG
	// reception). Replay reuses the pinned tag instead of drawing a fresh
	// one, so a recovered process never acks one message under two
	// identities.
	WALPin WALKind = 2
	// WALBroadcast records a local URB_broadcast: the message must keep
	// disseminating across the restart (validity in the crash-recovery
	// reading, where a recovered process counts as correct).
	WALBroadcast WALKind = 3
)

// String implements fmt.Stringer.
func (k WALKind) String() string {
	switch k {
	case WALDeliver:
		return "DELIVER"
	case WALPin:
		return "PIN"
	case WALBroadcast:
		return "BROADCAST"
	default:
		return fmt.Sprintf("WALKind(%d)", uint8(k))
	}
}

// DurableEvent is one write-ahead record: a state transition the host
// must persist before acting on the Step that produced it. The algorithms
// emit Pin and Broadcast events in Step.Durable; hosts derive Deliver
// events from Step.Deliveries via DeliverEvent.
type DurableEvent struct {
	Kind WALKind
	// ID is the message the event is about.
	ID wire.MsgID
	// Fast is the delivery's fast flag (WALDeliver only).
	Fast bool
	// Ack is the pinned tag_ack (WALPin only).
	Ack ident.Tag
	// Draws is the process's tag-stream position after the event
	// (WALPin and WALBroadcast, which each draw one tag). Replay
	// fast-forwards the recovered stream past it so post-recovery draws
	// do not re-issue tags already on the wire.
	Draws uint64
}

// DeliverEvent builds the WAL record for one URB-delivery.
func DeliverEvent(d Delivery) DurableEvent {
	return DurableEvent{Kind: WALDeliver, ID: d.ID, Fast: d.Fast}
}

// Snapshot codec constants. The codec is versioned independently of the
// wire codec: state layouts and frame layouts evolve separately.
//
// Version 2 (DESIGN.md §10) replaced the label matrices of version 1
// with a compact form: each Quiescent message's acker views reference a
// per-snapshot table of distinct label sets, so a quiescent steady
// state — where every acker's view is the same set — persists that set
// once instead of once per (message, acker); heartbeat-host snapshots
// additionally carry the delta-beat stream position. Version 1
// snapshots are rejected with ErrSnapshotVersion.
const (
	snapVersion = 2
	walVersion  = 1

	snapKindMajority  = 1
	snapKindQuiescent = 2
	snapKindHeartbeat = 3
)

// Codec errors.
var (
	ErrSnapshotShort    = errors.New("urb: snapshot truncated")
	ErrSnapshotVersion  = errors.New("urb: unknown snapshot codec version")
	ErrSnapshotKind     = errors.New("urb: snapshot is for a different process kind")
	ErrSnapshotMismatch = errors.New("urb: snapshot does not match the process configuration")
	ErrSnapshotCorrupt  = errors.New("urb: snapshot fingerprint digest mismatch")
	ErrSnapshotTrailing = errors.New("urb: trailing bytes after snapshot")
	ErrWALRecord        = errors.New("urb: malformed WAL record")

	// errNonCanonical rejects encodings the canonical encoder never
	// produces (e.g. boolean bytes other than 0/1).
	errNonCanonical = errors.New("urb: non-canonical encoding")
)

// --- binary helpers -------------------------------------------------------

// stateWriter accumulates the canonical big-endian encoding.
type stateWriter struct{ b []byte }

func (w *stateWriter) u8(v uint8) { w.b = append(w.b, v) }
func (w *stateWriter) u32(v uint32) {
	w.b = append(w.b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (w *stateWriter) u64(v uint64) {
	w.u32(uint32(v >> 32))
	w.u32(uint32(v))
}
func (w *stateWriter) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *stateWriter) tag(t ident.Tag) {
	w.u64(t.Hi)
	w.u64(t.Lo)
}
func (w *stateWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.b = append(w.b, b...)
}
func (w *stateWriter) msgID(id wire.MsgID) {
	w.tag(id.Tag)
	w.bytes([]byte(id.Body))
}
func (w *stateWriter) tags(ts []ident.Tag) {
	w.u32(uint32(len(ts)))
	for _, t := range ts {
		w.tag(t)
	}
}
func (w *stateWriter) ids(ids []wire.MsgID) {
	w.u32(uint32(len(ids)))
	for _, id := range ids {
		w.msgID(id)
	}
}

// stateReader consumes the encoding with sticky errors and alloc bounds.
type stateReader struct {
	b   []byte
	err error
}

func (r *stateReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}
func (r *stateReader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail(ErrSnapshotShort)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}
func (r *stateReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.fail(ErrSnapshotShort)
		return 0
	}
	v := uint32(r.b[0])<<24 | uint32(r.b[1])<<16 | uint32(r.b[2])<<8 | uint32(r.b[3])
	r.b = r.b[4:]
	return v
}
func (r *stateReader) u64() uint64 {
	hi := r.u32()
	lo := r.u32()
	return uint64(hi)<<32 | uint64(lo)
}
func (r *stateReader) boolean() bool {
	switch v := r.u8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		// Strict: the encoder only ever writes 0 or 1, and accepting
		// other values would make decode∘encode non-canonical.
		r.fail(errNonCanonical)
		return false
	}
}
func (r *stateReader) tag() ident.Tag {
	return ident.Tag{Hi: r.u64(), Lo: r.u64()}
}

// count reads a collection length and bounds it by the bytes remaining:
// each element occupies at least min bytes, so a count the buffer cannot
// possibly hold is corruption, rejected before any allocation.
func (r *stateReader) count(min int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if int64(n)*int64(min) > int64(len(r.b)) {
		r.fail(ErrSnapshotShort)
		return 0
	}
	return int(n)
}
func (r *stateReader) bytes() []byte {
	n := r.count(1)
	if r.err != nil {
		return nil
	}
	out := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return out
}
func (r *stateReader) msgID() wire.MsgID {
	t := r.tag()
	body := r.bytes()
	return wire.MsgID{Tag: t, Body: string(body)}
}
func (r *stateReader) tagList() []ident.Tag {
	n := r.count(16)
	if r.err != nil {
		return nil
	}
	out := make([]ident.Tag, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.tag())
	}
	return out
}
func (r *stateReader) idList() []wire.MsgID {
	n := r.count(20)
	if r.err != nil {
		return nil
	}
	out := make([]wire.MsgID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.msgID())
	}
	return out
}
func (r *stateReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return ErrSnapshotTrailing
	}
	return nil
}

// sortIDs orders message identities canonically (tag, then body).
func sortIDs(ids []wire.MsgID) {
	sort.Slice(ids, func(i, j int) bool {
		if c := ids[i].Tag.Compare(ids[j].Tag); c != 0 {
			return c < 0
		}
		return ids[i].Body < ids[j].Body
	})
}

// sortedKeys returns a map's MsgID keys in canonical order.
func sortedKeys[V any](m map[wire.MsgID]V) []wire.MsgID {
	ids := make([]wire.MsgID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// snapDigest hashes a snapshot's payload bytes together with the state
// fingerprint the payload decodes to, producing the 64-bit digest
// embedded in the trailer (FNV-1a; the digest guards against corruption,
// not attackers). Covering the raw bytes catches flips in fields the
// behaviour-oriented fingerprint deliberately omits (e.g. the wire-sent
// counter); covering the fingerprint catches encoder/decoder divergence.
func snapDigest(payload []byte, fp string) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	h.Write([]byte(fp))
	return h.Sum64()
}

// cfgFlags packs the Config knobs for the restore-time compatibility
// check: a snapshot must be restored into an identically configured
// process (the knobs change behaviour, and a silent flip across a restart
// would make the recovered process a different algorithm).
func cfgFlags(c Config) uint8 {
	var f uint8
	if c.EagerFirstSend {
		f |= 1 << 0
	}
	if c.CheckOnTick {
		f |= 1 << 1
	}
	if c.RetireBeforeSend {
		f |= 1 << 2
	}
	if c.DeltaAcks {
		f |= 1 << 3
	}
	if c.CompactDelivered {
		f |= 1 << 4
	}
	if c.DeltaBeats {
		f |= 1 << 5
	}
	return f
}

// cfgFromFlags is the inverse of cfgFlags (used by VerifySnapshot, which
// must construct a matching process from the snapshot alone).
func cfgFromFlags(f uint8) Config {
	return Config{
		EagerFirstSend:   f&(1<<0) != 0,
		CheckOnTick:      f&(1<<1) != 0,
		RetireBeforeSend: f&(1<<2) != 0,
		DeltaAcks:        f&(1<<3) != 0,
		CompactDelivered: f&(1<<4) != 0,
		DeltaBeats:       f&(1<<5) != 0,
	}
}

// --- common state sections ------------------------------------------------

// encodeCommon writes the state shared by both algorithms.
func (c *common) encodeCommon(w *stateWriter) {
	w.u8(cfgFlags(c.cfg))
	w.u64(c.tags.Draws())
	w.u64(c.wireSent)
	w.ids(c.msgs.snapshotIDs()) // insertion order: Task-1 iteration order is state
	saw := make([]wire.MsgID, 0, len(c.sawMsg))
	for id := range c.sawMsg {
		saw = append(saw, id)
	}
	sortIDs(saw)
	w.ids(saw)
	del := make([]wire.MsgID, 0, len(c.delivered))
	for id := range c.delivered {
		del = append(del, id)
	}
	sortIDs(del)
	w.ids(del)
	w.u32(uint32(len(c.mine)))
	for _, id := range sortedKeys(c.mine) {
		w.msgID(id)
		w.tag(c.mine[id])
	}
}

// decodeCommon rebuilds the shared state into a fresh common. The tag
// source is fast-forwarded to the recorded stream position.
func (c *common) decodeCommon(r *stateReader, wantCfg Config) {
	flags := r.u8()
	if r.err == nil && flags != cfgFlags(wantCfg) {
		r.fail(fmt.Errorf("%w: snapshot config flags %#x, process has %#x",
			ErrSnapshotMismatch, flags, cfgFlags(wantCfg)))
		return
	}
	draws := r.u64()
	wireSent := r.u64()
	msgs := r.idList()
	saw := r.idList()
	del := r.idList()
	n := r.count(20 + 16)
	if r.err != nil {
		return
	}
	mine := make(myAcks, n)
	for i := 0; i < n; i++ {
		id := r.msgID()
		mine[id] = r.tag()
	}
	if r.err != nil {
		return
	}
	// Plausibility bound before fast-forwarding the stream: every draw is
	// either a tag_ack pin (mine, which never shrinks) or a local
	// broadcast (whose id stays in sawMsg forever), plus at most one
	// detector label for a wrapping host. A corrupted draw counter beyond
	// that would otherwise spin SkipTo for billions of throwaway draws.
	if draws > uint64(len(mine))+uint64(len(saw))+1 {
		r.fail(fmt.Errorf("%w: draw counter %d exceeds state plausibility bound", ErrSnapshotMismatch, draws))
		return
	}
	if err := c.tags.SkipTo(draws); err != nil {
		r.fail(fmt.Errorf("%w: %v", ErrSnapshotMismatch, err))
		return
	}
	c.wireSent = wireSent
	c.msgs = newMsgSet()
	for _, id := range msgs {
		c.msgs.add(id)
	}
	c.sawMsg = make(map[wire.MsgID]bool, len(saw))
	for _, id := range saw {
		c.sawMsg[id] = true
	}
	c.delivered = make(deliveredSet, len(del))
	for _, id := range del {
		c.delivered[id] = true
	}
	c.mine = mine
}

// applyCommonWAL realises the kind-independent part of WAL replay and
// reports whether the message should (re-)enter MSG_i. guardDelivered is
// Algorithm 2's rule: a delivered message stays out of MSG_i (it may have
// been retired after the checkpoint, and re-reception respects the same
// guard); Algorithm 1 never removes, so it always re-inserts.
func (c *common) applyCommonWAL(rec DurableEvent, guardDelivered bool) error {
	switch rec.Kind {
	case WALDeliver:
		c.delivered[rec.ID] = true
		c.sawMsg[rec.ID] = true
		if !guardDelivered {
			c.msgs.add(rec.ID)
		}
	case WALPin:
		if rec.Ack.Zero() {
			return fmt.Errorf("%w: pin with zero tag_ack", ErrWALRecord)
		}
		c.mine[rec.ID] = rec.Ack
		c.sawMsg[rec.ID] = true
		if !guardDelivered || !c.delivered[rec.ID] {
			c.msgs.add(rec.ID)
		}
	case WALBroadcast:
		c.sawMsg[rec.ID] = true
		if !guardDelivered || !c.delivered[rec.ID] {
			c.msgs.add(rec.ID)
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrWALRecord, rec.Kind)
	}
	if rec.Draws > c.tags.Draws() {
		// Replay cannot rewind (records arrive in append order), so this
		// can only fast-forward past tags the predecessor already drew —
		// and each logged event drew exactly one, so a larger jump is a
		// corrupt record, not a gap to honour.
		if rec.Draws > c.tags.Draws()+1 {
			return fmt.Errorf("%w: draw counter %d jumps past stream position %d",
				ErrWALRecord, rec.Draws, c.tags.Draws())
		}
		_ = c.tags.SkipTo(rec.Draws)
	}
	return nil
}

// --- Majority -------------------------------------------------------------

// Snapshot implements Snapshotter.
func (p *Majority) Snapshot() []byte {
	var w stateWriter
	w.u8(snapVersion)
	w.u8(snapKindMajority)
	w.u32(uint32(p.n))
	w.u32(uint32(p.threshold))
	p.encodeCommon(&w)
	w.u32(uint32(len(p.ackOrder)))
	for _, id := range p.ackOrder {
		w.msgID(id)
		w.tags(p.acks[id].Slice())
	}
	w.u64(snapDigest(w.b, p.Fingerprint()))
	return w.b
}

// Restore implements Snapshotter.
func (p *Majority) Restore(data []byte) error {
	r := &stateReader{b: data}
	if v := r.u8(); r.err == nil && v != snapVersion {
		return ErrSnapshotVersion
	}
	if k := r.u8(); r.err == nil && k != snapKindMajority {
		return ErrSnapshotKind
	}
	n := int(r.u32())
	threshold := int(r.u32())
	if r.err == nil && (n != p.n || threshold != p.threshold) {
		return fmt.Errorf("%w: snapshot n=%d/threshold=%d, process has n=%d/threshold=%d",
			ErrSnapshotMismatch, n, threshold, p.n, p.threshold)
	}
	p.decodeCommon(r, p.cfg)
	cnt := r.count(20 + 4)
	if r.err != nil {
		return r.err
	}
	p.acks = make(map[wire.MsgID]*ident.Set, cnt)
	p.ackOrder = p.ackOrder[:0]
	for i := 0; i < cnt; i++ {
		id := r.msgID()
		labels := r.tagList()
		if r.err != nil {
			return r.err
		}
		p.acks[id] = ident.NewSet(labels...)
		p.ackOrder = append(p.ackOrder, id)
	}
	digest := r.u64()
	if err := r.done(); err != nil {
		return err
	}
	if snapDigest(data[:len(data)-8], p.Fingerprint()) != digest {
		return ErrSnapshotCorrupt
	}
	return nil
}

// ApplyWAL implements Durable.
func (p *Majority) ApplyWAL(rec DurableEvent) error {
	// MSG_i never shrinks in Algorithm 1, so every record re-inserts: the
	// recovered process resumes retransmitting everything it knew.
	return p.applyCommonWAL(rec, false)
}

// Rejoin implements Durable. Algorithm 1's wire messages carry no
// stream sequencing, so a recovered instance needs no rebasing.
func (p *Majority) Rejoin() {}

// --- Quiescent ------------------------------------------------------------

// Snapshot implements Snapshotter. The version-2 form is compact
// (DESIGN.md §10): acker views reference a table of distinct label sets
// instead of each embedding its own copy, so persisting a quiescent
// steady state costs kilobytes where the version-1 label matrices cost
// one set per (message, acker). The table is built at encode time from
// the sets' values, so compacted and uncompacted processes with equal
// state produce snapshots of equal shape.
func (p *Quiescent) Snapshot() []byte {
	var w stateWriter
	w.u8(snapVersion)
	w.u8(snapKindQuiescent)
	p.encodeCommon(&w)
	w.u64(uint64(p.retired))
	w.u64(p.ticks)
	w.u64(p.epochFloor)
	// First pass: assign set-table indices in deterministic first-use
	// order over the (ackOrder, ackerOrder) walk.
	tableIdx := make(map[string]uint32)
	var tableSets []*ident.Set
	refOf := func(s *ident.Set) uint32 {
		k := setKey(s)
		if i, ok := tableIdx[k]; ok {
			return i
		}
		i := uint32(len(tableSets))
		tableIdx[k] = i
		tableSets = append(tableSets, s)
		return i
	}
	type viewRef struct {
		acker  ident.Tag
		epoch  uint64
		synced bool
		ref    uint32
	}
	views := make(map[wire.MsgID][]viewRef, len(p.ackOrder))
	for _, id := range p.ackOrder {
		st := p.acks[id]
		vs := make([]viewRef, 0, len(st.ackerOrder))
		for _, acker := range st.ackerOrder {
			v := st.byAcker[acker]
			vs = append(vs, viewRef{acker: acker, epoch: v.epoch, synced: v.synced, ref: refOf(v.labels)})
		}
		views[id] = vs
	}
	w.u32(uint32(len(tableSets)))
	for _, s := range tableSets {
		w.tags(s.Slice())
	}
	w.u32(uint32(len(p.ackOrder)))
	for _, id := range p.ackOrder {
		w.msgID(id)
		st := p.acks[id]
		vs := views[id]
		w.u32(uint32(len(vs)))
		for _, v := range vs {
			w.tag(v.acker)
			w.u64(v.epoch)
			w.boolean(v.synced)
			w.u32(v.ref)
		}
		reqs := make([]ident.Tag, 0, len(st.reqTick))
		for acker := range st.reqTick {
			reqs = append(reqs, acker)
		}
		sort.Slice(reqs, func(i, j int) bool { return reqs[i].Less(reqs[j]) })
		w.u32(uint32(len(reqs)))
		for _, acker := range reqs {
			w.tag(acker)
			w.u64(st.reqTick[acker])
		}
	}
	w.u32(uint32(len(p.ackSend)))
	for _, id := range sortedKeys(p.ackSend) {
		st := p.ackSend[id]
		w.msgID(id)
		w.u64(st.epoch)
		w.u64(st.reAckTick)
		w.u64(st.snapTick)
		w.tags(st.sent.Slice())
	}
	w.u64(snapDigest(w.b, p.Fingerprint()))
	return w.b
}

// Restore implements Snapshotter.
func (p *Quiescent) Restore(data []byte) error {
	r := &stateReader{b: data}
	if v := r.u8(); r.err == nil && v != snapVersion {
		return ErrSnapshotVersion
	}
	if k := r.u8(); r.err == nil && k != snapKindQuiescent {
		return ErrSnapshotKind
	}
	p.decodeCommon(r, p.cfg)
	retired := r.u64()
	ticks := r.u64()
	epochFloor := r.u64()
	// Set table: the distinct label sets the acker views reference.
	tableCnt := r.count(4)
	if r.err != nil {
		return r.err
	}
	table := make([][]ident.Tag, 0, tableCnt)
	for i := 0; i < tableCnt; i++ {
		table = append(table, r.tagList())
		if r.err != nil {
			return r.err
		}
	}
	cnt := r.count(20 + 8)
	if r.err != nil {
		return r.err
	}
	sets := setIntern{}
	acks := make(map[wire.MsgID]*ackState, cnt)
	ackOrder := make([]wire.MsgID, 0, cnt)
	for i := 0; i < cnt; i++ {
		id := r.msgID()
		st := newAckState()
		st.compacted = p.cfg.CompactDelivered && p.delivered[id]
		ackers := r.count(16 + 8 + 1 + 4)
		for j := 0; j < ackers; j++ {
			acker := r.tag()
			epoch := r.u64()
			synced := r.boolean()
			ref := r.u32()
			if r.err != nil {
				return r.err
			}
			if int(ref) >= len(table) {
				return fmt.Errorf("%w: acker set ref %d beyond table of %d", ErrSnapshotMismatch, ref, len(table))
			}
			if _, dup := st.byAcker[acker]; dup {
				return fmt.Errorf("%w: duplicate acker in snapshot", ErrSnapshotMismatch)
			}
			v := &ackerView{labels: ident.NewSet(table[ref]...), epoch: epoch, synced: synced}
			for _, l := range v.labels.Slice() {
				st.bump(l)
			}
			st.byAcker[acker] = v
			st.ackerOrder = append(st.ackerOrder, acker)
			st.internView(&sets, v)
		}
		reqs := r.count(16 + 8)
		for j := 0; j < reqs; j++ {
			acker := r.tag()
			tick := r.u64()
			if r.err != nil {
				return r.err
			}
			if st.reqTick == nil {
				st.reqTick = make(map[ident.Tag]uint64, reqs)
			}
			st.reqTick[acker] = tick
		}
		if r.err != nil {
			return r.err
		}
		// Everything is dirty after a restore: the first Tick must run a
		// full purge + retirement pass against whatever views the new
		// incarnation's detector reports.
		st.dirty = true
		acks[id] = st
		ackOrder = append(ackOrder, id)
	}
	sendCnt := r.count(20 + 8*3 + 4)
	if r.err != nil {
		return r.err
	}
	ackSend := make(map[wire.MsgID]*ackSendState, sendCnt)
	for i := 0; i < sendCnt; i++ {
		id := r.msgID()
		st := &ackSendState{epoch: r.u64(), reAckTick: r.u64(), snapTick: r.u64()}
		st.sent = ident.NewSet(r.tagList()...)
		if r.err != nil {
			return r.err
		}
		ackSend[id] = st
	}
	digest := r.u64()
	if err := r.done(); err != nil {
		return err
	}
	p.retired = int(retired)
	p.ticks = ticks
	p.epochFloor = epochFloor
	p.sets = sets
	p.acks = acks
	p.ackOrder = ackOrder
	p.ackSend = ackSend
	p.lastViewKey = ""
	if snapDigest(data[:len(data)-8], p.Fingerprint()) != digest {
		return ErrSnapshotCorrupt
	}
	return nil
}

// Rejoin implements Durable: start a new delta-ACK incarnation. The
// ledger is dropped — its epochs may trail what the previous incarnation
// sent after the checkpoint — and the next ACK per message opens a fresh
// stream with a snapshot above the new floor, which receivers accept
// (or gap-detect and resync) regardless of where the lost window ended.
func (p *Quiescent) Rejoin() {
	inc := p.epochFloor >> 32
	for _, st := range p.ackSend {
		if e := st.epoch >> 32; e > inc {
			inc = e
		}
	}
	p.epochFloor = (inc + 1) << 32
	p.ackSend = make(map[wire.MsgID]*ackSendState)
}

// ApplyWAL implements Durable.
func (p *Quiescent) ApplyWAL(rec DurableEvent) error {
	// A delivered message re-enters MSG_i on replay (the ACK evidence
	// since the checkpoint is lost, so the recovered process retransmits
	// until the retirement guard passes again — safe, and required for
	// uniform agreement); a pin or broadcast for an already-delivered
	// message respects the same guard live reception applies.
	err := p.applyCommonWAL(rec, rec.Kind != WALDeliver)
	if err == nil && rec.Kind == WALDeliver {
		// The replayed delivery makes the message retirement-eligible
		// (and compactable) exactly as a live delivery would.
		if st, ok := p.acks[rec.ID]; ok {
			st.dirty = true
			p.compactState(st)
		}
	}
	p.lastViewKey = ""
	return err
}

// --- HeartbeatHost --------------------------------------------------------

// Fingerprint digests the full heartbeat stack: the host's own state plus
// the wrapped algorithm's fingerprint. Canonical in the same sense as the
// algorithm fingerprints (snapshot round-trips preserve it).
func (h *HeartbeatHost) Fingerprint() string {
	var w fpWriter
	w.b.WriteString("heartbeat-host")
	w.section("label")
	w.b.WriteString(h.hb.Label().String())
	w.section("ticks")
	fmt.Fprintf(&w.b, "%d", h.tickCount)
	w.section("beats")
	fmt.Fprintf(&w.b, "%d", h.beatsSent)
	w.section("beatreqs")
	fmt.Fprintf(&w.b, "%d", h.beatReqsSent)
	w.section("beatstream")
	fmt.Fprintf(&w.b, "%d/%t", h.beatEpoch, h.beatSnapSent)
	// The receiver-side beat stream tables and the per-tick request
	// limiter are deliberately excluded: they are soft wire-level caches
	// (losing them costs one BEATREQ/snapshot exchange, which the
	// protocol self-heals), kept out of snapshots for the same reason.
	w.section("heard")
	heard := h.hb.Heard()
	keys := make([]string, len(heard))
	for i, e := range heard {
		keys[i] = fmt.Sprintf("%s@%d", e.Label, e.At)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			w.b.WriteByte(',')
		}
		w.b.WriteString(k)
	}
	w.section("inner")
	w.b.WriteString(h.inner.Fingerprint())
	return w.b.String()
}

// Snapshot implements Snapshotter: the host's heartbeat state wraps the
// inner algorithm's snapshot. Heartbeat timestamps are in the host
// clock's units; restarting with a clock that resumes from zero makes
// every heard label look stale until the next beat — exactly the
// conservative reading (a recovering process re-learns who is alive).
// The delta-beat receiver tables are deliberately absent: they are soft
// wire-level caches the BEATREQ path rebuilds (one exchange per
// stream), mirroring how the node's encode cache survives nothing.
func (h *HeartbeatHost) Snapshot() []byte {
	var w stateWriter
	w.u8(snapVersion)
	w.u8(snapKindHeartbeat)
	w.tag(h.hb.Label())
	w.u32(uint32(h.beatEvery))
	w.u64(uint64(h.hb.Timeout()))
	w.u64(uint64(h.tickCount))
	w.u64(h.beatsSent)
	w.u64(h.beatReqsSent)
	w.u32(h.beatEpoch)
	w.boolean(h.beatSnapSent)
	heard := h.hb.Heard()
	w.u32(uint32(len(heard)))
	for _, e := range heard {
		w.tag(e.Label)
		w.u64(uint64(e.At))
	}
	w.bytes(h.inner.Snapshot())
	w.u64(snapDigest(w.b, h.Fingerprint()))
	return w.b
}

// Restore implements Snapshotter. The host adopts the snapshot's
// failure-detector label: the label is the process's persistent anonymous
// identity towards the detector layer, and a restart that changed it
// would make peers treat the recovered process as a fresh arrival (and
// eventually declare the old label crashed).
func (h *HeartbeatHost) Restore(data []byte) error {
	r := &stateReader{b: data}
	if v := r.u8(); r.err == nil && v != snapVersion {
		return ErrSnapshotVersion
	}
	if k := r.u8(); r.err == nil && k != snapKindHeartbeat {
		return ErrSnapshotKind
	}
	label := r.tag()
	beatEvery := int(r.u32())
	timeout := int64(r.u64())
	tickCount := r.u64()
	beatsSent := r.u64()
	beatReqsSent := r.u64()
	beatEpoch := r.u32()
	beatSnapSent := r.boolean()
	n := r.count(16 + 8)
	if r.err != nil {
		return r.err
	}
	heard := make([]HeardLabel, 0, n)
	for i := 0; i < n; i++ {
		e := HeardLabel{Label: r.tag()}
		e.At = int64(r.u64())
		heard = append(heard, e)
	}
	inner := r.bytes()
	digest := r.u64()
	if err := r.done(); err != nil {
		return err
	}
	if label.Zero() {
		return fmt.Errorf("%w: zero heartbeat label", ErrSnapshotMismatch)
	}
	if beatEvery != h.beatEvery || timeout != h.hb.Timeout() {
		return fmt.Errorf("%w: snapshot beatEvery=%d/timeout=%d, host has %d/%d",
			ErrSnapshotMismatch, beatEvery, timeout, h.beatEvery, h.hb.Timeout())
	}
	if beatEpoch == 0 {
		return fmt.Errorf("%w: zero beat epoch", ErrSnapshotMismatch)
	}
	if err := h.inner.Restore(inner); err != nil {
		return err
	}
	h.hb.Relabel(label)
	h.hb.RestoreHeard(heard)
	h.tickCount = int(tickCount)
	h.beatsSent = beatsSent
	h.beatReqsSent = beatReqsSent
	h.beatEpoch = beatEpoch
	h.beatSnapSent = beatSnapSent
	h.streams = nil // soft receiver state: rebuilt via BEATREQ
	h.beatReqTick = nil
	h.beatSnapTick = 0
	if snapDigest(data[:len(data)-8], h.Fingerprint()) != digest {
		return ErrSnapshotCorrupt
	}
	return nil
}

// ApplyWAL implements Durable by replaying into the wrapped algorithm
// (the host's own state — beat counters, heard map — is checkpoint-only:
// losing beats between checkpoints costs at most one re-learned view).
func (h *HeartbeatHost) ApplyWAL(rec DurableEvent) error { return h.inner.ApplyWAL(rec) }

// Rejoin implements Durable (the detector label is deliberately NOT
// rebased: it is the process's persistent identity, and beats refresh
// peers' trust in it the moment the recovered host resumes ticking).
// The beat stream epoch IS rebased — its low 16 bits count announcement
// changes within an incarnation, and the bump puts the recovered stream
// above anything the lost post-checkpoint window can have sent (the
// delta-ACK incarnation rule of DESIGN.md §9 applied to beats) — and the
// next beat re-snapshots so receivers resynchronise without a BEATREQ.
func (h *HeartbeatHost) Rejoin() {
	h.rebaseBeatStream()
	h.inner.Rejoin()
}

// rebaseBeatStream starts a new beat-stream incarnation: the epoch bump
// shared by Rejoin (crash recovery) and Adopt (join).
func (h *HeartbeatHost) rebaseBeatStream() {
	if inc := h.beatEpoch >> 16; inc < 0xffff {
		h.beatEpoch = (inc+1)<<16 | 1
	} else {
		// Incarnation space exhausted (65,536 rejoins): saturate rather
		// than wrap — a wrapped epoch would regress below what receivers
		// hold and their stale-beat path would resync forever. At the
		// ceiling the stream stops rebasing; receivers synced at max
		// accept equal-epoch refreshes, and any announcement change lost
		// in the final crash window heals through the ordinary
		// BEATREQ/snapshot path.
		h.beatEpoch = 1<<32 - 1
	}
	h.beatSnapSent = false
}

// HeardLabel aliases the detector-layer entry the host snapshot carries.
type HeardLabel = fd.HeardLabel

// --- WAL record codec -----------------------------------------------------

// EncodeWAL returns the canonical binary form of one write-ahead record.
func (r DurableEvent) EncodeWAL() []byte {
	var w stateWriter
	w.u8(walVersion)
	w.u8(uint8(r.Kind))
	w.msgID(r.ID)
	switch r.Kind {
	case WALDeliver:
		w.boolean(r.Fast)
	case WALPin:
		w.tag(r.Ack)
		w.u64(r.Draws)
	case WALBroadcast:
		w.u64(r.Draws)
	}
	return w.b
}

// DecodeWALRecord parses one write-ahead record, rejecting unknown
// versions and kinds, structural corruption and trailing bytes.
func DecodeWALRecord(b []byte) (DurableEvent, error) {
	r := &stateReader{b: b}
	if v := r.u8(); r.err == nil && v != walVersion {
		return DurableEvent{}, fmt.Errorf("%w: version %d", ErrWALRecord, v)
	}
	rec := DurableEvent{Kind: WALKind(r.u8())}
	rec.ID = r.msgID()
	switch rec.Kind {
	case WALDeliver:
		rec.Fast = r.boolean()
	case WALPin:
		rec.Ack = r.tag()
		rec.Draws = r.u64()
	case WALBroadcast:
		rec.Draws = r.u64()
	default:
		if r.err == nil {
			return DurableEvent{}, fmt.Errorf("%w: unknown kind %d", ErrWALRecord, rec.Kind)
		}
	}
	if r.err != nil {
		return DurableEvent{}, fmt.Errorf("%w: %v", ErrWALRecord, r.err)
	}
	if err := r.done(); err != nil {
		return DurableEvent{}, fmt.Errorf("%w: %v", ErrWALRecord, err)
	}
	if rec.ID.Tag.Zero() {
		return DurableEvent{}, fmt.Errorf("%w: zero message tag", ErrWALRecord)
	}
	if rec.Kind == WALPin && rec.Ack.Zero() {
		return DurableEvent{}, fmt.Errorf("%w: zero tag_ack on pin", ErrWALRecord)
	}
	return rec, nil
}

// --- snapshot inspection --------------------------------------------------

// SnapshotInfo summarises a decoded snapshot (cmd/urbcheck -snapshot).
type SnapshotInfo struct {
	// Kind names the process type the snapshot belongs to.
	Kind string
	// Version is the snapshot codec version.
	Version int
	// N and Threshold are the system parameters (Majority snapshots only).
	N, Threshold int
	// BeatEvery and Timeout are the host parameters (heartbeat-host
	// snapshots only).
	BeatEvery int
	Timeout   int64
	// Config is the paper-knob configuration the snapshot was taken under.
	Config Config
	// Stats are the restored process's state sizes.
	Stats Stats
	// Draws is the tag-stream position.
	Draws uint64
	// Incarnation is the delta-ACK incarnation the snapshot's streams
	// are based at (the epoch floor's high half; 0 for a process that
	// never recovered, and always 0 for Majority snapshots, whose ACKs
	// carry no sequencing). The join protocol's staleness gate compares
	// it against the joiner's own floor: a donor snapshot from an older
	// incarnation than state the joiner has already held is a replay of
	// superseded history, rejected before Restore (DESIGN.md §13).
	Incarnation uint64
	// Digest is the verified fingerprint digest.
	Digest uint64
}

// VerifySnapshot decodes a snapshot into a freshly constructed process of
// the right kind, recomputes the state fingerprint and checks it against
// the embedded digest. It is the full corruption check: structural
// validity plus semantic round-trip.
func VerifySnapshot(data []byte) (SnapshotInfo, error) {
	r := &stateReader{b: data}
	version := int(r.u8())
	kind := r.u8()
	if r.err != nil {
		return SnapshotInfo{}, ErrSnapshotShort
	}
	if version != snapVersion {
		return SnapshotInfo{Version: version}, ErrSnapshotVersion
	}
	info := SnapshotInfo{Version: version}
	var proc interface {
		Durable
		Fingerprinter
	}
	switch kind {
	case snapKindMajority:
		info.Kind = "majority"
		info.N = int(r.u32())
		info.Threshold = int(r.u32())
		info.Config = cfgFromFlags(r.u8())
		if r.err != nil {
			return info, r.err
		}
		if info.N < 1 || info.Threshold < 1 || info.Threshold > info.N {
			return info, fmt.Errorf("%w: invalid n=%d/threshold=%d", ErrSnapshotMismatch, info.N, info.Threshold)
		}
		proc = NewMajorityThreshold(info.N, info.Threshold, verifyTagSource(), info.Config)
	case snapKindQuiescent:
		info.Kind = "quiescent"
		info.Config = cfgFromFlags(r.u8())
		if r.err != nil {
			return info, r.err
		}
		proc = NewQuiescent(verifyDetector{}, verifyTagSource(), info.Config)
	case snapKindHeartbeat:
		info.Kind = "heartbeat-host"
		// Peek the host parameters and the inner quiescent config so the
		// constructed host passes the restore-time compatibility checks.
		// Layout: label(16) beatEvery(4) timeout(8) tick(8) beats(8)
		// beatReqs(8) beatEpoch(4) beatSnapSent(1)
		// heardCount(4) + heard entries(24 each) | innerLen(4) | inner...
		peek := &stateReader{b: r.b}
		peek.tag()
		beatEvery := int(peek.u32())
		timeout := int64(peek.u64())
		peek.u64()
		peek.u64()
		peek.u64()
		peek.u32()
		peek.u8()
		hn := peek.count(16 + 8)
		for i := 0; i < hn; i++ {
			peek.tag()
			peek.u64()
		}
		inner := peek.bytes()
		if peek.err != nil {
			return info, peek.err
		}
		if len(inner) < 3 {
			return info, ErrSnapshotShort
		}
		if inner[0] != snapVersion {
			return info, ErrSnapshotVersion
		}
		if inner[1] != snapKindQuiescent {
			return info, ErrSnapshotKind
		}
		if timeout <= 0 || beatEvery < 1 {
			return info, fmt.Errorf("%w: invalid beatEvery=%d/timeout=%d", ErrSnapshotMismatch, beatEvery, timeout)
		}
		info.BeatEvery, info.Timeout = beatEvery, timeout
		info.Config = cfgFromFlags(inner[2])
		proc = NewHeartbeatHost(verifyTagSource(), timeout, beatEvery, func() int64 { return 0 }, info.Config)
	default:
		return info, ErrSnapshotKind
	}
	if err := proc.Restore(data); err != nil {
		return info, err
	}
	info.Stats = proc.Stats()
	info.Digest = snapDigest(data[:len(data)-8], proc.Fingerprint())
	switch p := proc.(type) {
	case *Majority:
		info.Draws = p.tags.Draws()
	case *Quiescent:
		info.Draws = p.tags.Draws()
		info.Incarnation = p.epochFloor >> 32
	case *HeartbeatHost:
		info.Draws = p.inner.tags.Draws()
		info.Incarnation = p.inner.epochFloor >> 32
	}
	return info, nil
}

// verifyTagSource returns a throwaway stream for VerifySnapshot: the
// restored process only needs the stream position, not the original
// values (it will never run).
func verifyTagSource() *ident.Source {
	return ident.NewSource(xrand.New(1))
}

// verifyDetector is the inert Detector VerifySnapshot wires a restored
// Quiescent to; fingerprints never consult the detector.
type verifyDetector struct{}

func (verifyDetector) ATheta() fd.View { return nil }
func (verifyDetector) APStar() fd.View { return nil }
