// Package urb is the paper's primary contribution: Uniform Reliable
// Broadcast for anonymous asynchronous systems with fair lossy channels.
//
// Two algorithms are provided, exactly as in the paper:
//
//   - Majority (Algorithm 1): no failure detector, requires a majority of
//     correct processes (t < n/2), non-quiescent — every process
//     retransmits every known message forever.
//   - Quiescent (Algorithm 2): uses the anonymous failure detectors AΘ
//     and AP*, tolerates any number of crashes, and is quiescent —
//     eventually no process sends messages.
//
// URB guarantees (Section II):
//
//	Validity:           a correct broadcaster eventually delivers its own
//	                    message.
//	Uniform agreement:  if any process (correct or not) delivers m, every
//	                    correct process eventually delivers m.
//	Uniform integrity:  every process delivers m at most once, and only if
//	                    m was broadcast.
//
// The implementations are deterministic, single-threaded state machines:
// the hosting runtime (the discrete-event simulator in internal/sim or the
// goroutine runtime in internal/liverun) feeds them received messages and
// periodic ticks, and executes the broadcasts and deliveries each Step
// returns. The state machines receive no process identity — their only
// inputs are messages, failure detector views and a random source — so the
// code is structurally unable to break the anonymity assumption.
package urb

import (
	"anonurb/internal/ident"
	"anonurb/internal/obs"
	"anonurb/internal/wire"
)

// Delivery is one URB-delivery handed to the application layer.
type Delivery struct {
	// ID identifies the delivered message (payload + tag).
	ID wire.MsgID
	// Fast reports the paper's "fast delivery" case: the process
	// assembled the delivery evidence from ACKs alone, before receiving
	// any MSG copy of the message (Remark, Section III).
	Fast bool
}

// Body returns the delivered payload as a fresh byte slice.
func (d Delivery) Body() []byte { return d.ID.Bytes() }

// Step is the outcome of feeding one input to a process: wire messages to
// broadcast to all processes (including the sender itself), URB-deliveries
// for the local application, and durable events a persisting host must
// write ahead (hosts without a store ignore them).
type Step struct {
	Broadcasts []wire.Message
	Deliveries []Delivery
	// Durable lists the state transitions of this Step that a
	// crash-recovery host must persist before acting on the rest of the
	// Step (DESIGN.md §9): new URB-broadcasts and newly pinned tag_acks.
	// Deliveries are durable events too, but they already travel in
	// Deliveries; hosts log both. Empty unless the Step pinned or
	// broadcast something, so non-persisting hosts pay one nil slice.
	Durable []DurableEvent
}

// Merge appends o's outputs onto s. Hosting runtimes use it to coalesce
// the Steps of several inputs processed back-to-back (e.g. all messages
// of one inbound batch frame) so the combined broadcasts can travel as
// one batch.
func (s *Step) Merge(o Step) {
	s.Broadcasts = append(s.Broadcasts, o.Broadcasts...)
	s.Deliveries = append(s.Deliveries, o.Deliveries...)
	s.Durable = append(s.Durable, o.Durable...)
}

// Process is the interface both algorithms implement. Implementations are
// not safe for concurrent use: the hosting runtime serialises all calls to
// one instance.
type Process interface {
	// Broadcast is URB_broadcast(m): start disseminating body. The
	// payload is arbitrary bytes (copied on entry; the caller may reuse
	// the slice). The returned MsgID is the identity (tag + body) the
	// process assigned; the paper's primitive returns nothing, but
	// hosting runtimes need the identity to correlate deliveries with
	// broadcasts when measuring.
	Broadcast(body []byte) (wire.MsgID, Step)
	// Receive is receive(m): process one message that arrived on a
	// channel.
	Receive(m wire.Message) Step
	// Tick runs one full iteration of the periodic retransmission task
	// (the paper's Task 1 loop body, executed over every message in the
	// MSG set).
	Tick() Step
	// Stats reports the sizes of the algorithm's internal sets, for the
	// memory-footprint experiment (F5) and for quiescence accounting.
	Stats() Stats
}

// Stats is a snapshot of a process's internal state sizes.
type Stats struct {
	// MsgSet is |MSG_i|: messages currently being retransmitted by Task 1.
	MsgSet int
	// MyAcks is |MY_ACK_i|: messages this process has acknowledged.
	MyAcks int
	// AckEntries is the total number of distinct (message, tagAck) pairs
	// tracked (the paper's ALL_ACK_i).
	AckEntries int
	// Delivered is |URB_DELIVERED_i|.
	Delivered int
	// Retired counts messages deleted from MSG_i by the quiescence rule
	// (Algorithm 2, line 57). Always 0 for Algorithm 1.
	Retired int
	// WireSent counts wire messages this process asked to broadcast.
	WireSent uint64
	// AckLabels is the logical label count retained across all acker
	// views: what the paper's all_labels bookkeeping holds, and what an
	// uncompacted Algorithm 2 process physically stores. 0 for
	// Algorithm 1 (its ACKs carry no labels).
	AckLabels int
	// AckLabelStorage is the label count physically stored: with
	// Config.CompactDelivered the views of delivered messages share
	// interned sets, so in steady state this collapses to roughly one
	// set per distinct detector view instead of one per (message,
	// acker). Equal to AckLabels when compaction is off.
	AckLabelStorage int
	// CompactedMsgs counts messages whose acker views run compacted
	// (delivered messages under Config.CompactDelivered).
	CompactedMsgs int
}

// Config carries the knobs shared by both algorithms. The zero value is
// the paper-faithful configuration.
type Config struct {
	// EagerFirstSend, when true, broadcasts a MSG immediately from
	// URB_broadcast and from first reception instead of waiting for the
	// next Task-1 tick. The paper's pseudocode only transmits from
	// Task 1; eager sending is a latency ablation (DESIGN.md §5).
	EagerFirstSend bool
	// CheckOnTick, when true, re-evaluates the delivery guard on every
	// tick in addition to every ACK receipt, reducing delivery latency
	// when a failure detector view changes between ACK arrivals. The
	// paper checks only on receipt (Algorithm 2, line 46); this is a
	// latency ablation (DESIGN.md §5) — no guard decision changes, only
	// when guards are consulted.
	CheckOnTick bool
	// RetireBeforeSend, when true, evaluates Algorithm 2's retirement
	// guard (line 55) before retransmitting a message in Task 1 rather
	// than after, saving one final broadcast round per message. The
	// paper broadcasts first (line 54) and then checks (line 55); this
	// is a traffic ablation (DESIGN.md §5) reordering one tick's work.
	RetireBeforeSend bool
	// DeltaAcks, when true, makes Algorithm 2 acknowledge incrementally
	// (deviation D5, DESIGN.md §8): instead of attaching the full AΘ
	// label set to every ACK on every MSG reception, an acker sends its
	// set once (a snapshot ACKΔ) and thereafter only epoch-numbered
	// differences when the set changes, with unchanged re-ACKs
	// rate-limited to one per message per Task-1 tick. Receivers detect
	// epoch gaps and repair them with a resync request the acker answers
	// with a fresh snapshot. The claim bookkeeping this drives is
	// state-for-state equivalent to the full-set path (tested by
	// TestQuiescentDeltaEquivalence); only the wire representation and
	// re-ACK frequency change. The paper's listing resends the full set
	// every time, so this is off in the paper-faithful zero value.
	// Receiving delta ACKs is always supported, whatever this is set to.
	DeltaAcks bool
	// CompactDelivered, when true, compacts a message's per-acker label
	// views once the message is URB-delivered (deviation D6, DESIGN.md
	// §10): the views collapse onto refcount-interned shared sets
	// (copy-on-write), so a
	// quiescent steady state stores each distinct detector view roughly
	// once instead of once per (message, acker). Compaction is applied
	// only post-delivery, where uniformity is already secured locally;
	// the claim counters and every guard decision are bit-identical to
	// the uncompacted bookkeeping (TestQuiescentCompactionEquivalence).
	// Off in the paper-faithful zero value purely because the paper
	// stores the matrices literally.
	CompactDelivered bool
	// PaceResyncs, when true, caps how many resync requests — ACKREQ
	// from the delta-ACK receiver, BEATREQ from the delta-beat receiver
	// (each family budgeted independently) — one process broadcasts per
	// Task-1 tick, at ResyncBudgetPerTick each (deviation D9, DESIGN.md
	// §15). When a partition heals, both sides discover epoch gaps on
	// every (message, acker) stream and every beat stream at once; the
	// per-stream per-tick limiters bound each stream to one request, but
	// the *number of streams* is O(n·m), so the heal instant spikes as a
	// resync storm. The budget spreads the repair over successive ticks:
	// a denied request is not remembered — the stream simply asks again
	// next tick, which is the ordinary repair cadence, so convergence is
	// delayed by at most streams/budget ticks and never lost. Off (the
	// paper-faithful zero value) is unlimited: the paper resends full
	// state every time and has no resync traffic at all, so pacing is a
	// deviation-local concern. Like the per-stream limiters this is
	// derived pacing state, excluded from snapshots and fingerprints.
	PaceResyncs bool
	// DeltaBeats, when true, makes a HeartbeatHost announce its detector
	// label incrementally (deviation D7, DESIGN.md §10): a snapshot
	// BEATΔ opens the beat stream, steady-state ALIVE refreshes then
	// travel as 15-byte
	// epoch-stamped BEATΔ frames instead of 22-byte full-label beats,
	// and receivers repair unknown refs or epoch gaps with a BEATREQ the
	// owner answers with a fresh snapshot — the detector-layer mirror of
	// the D5 ACK discipline. Receiving all beat forms is always on.
	// Ignored by the bare algorithms (beats are host traffic).
	DeltaBeats bool
}

// ResyncBudgetPerTick is how many resync requests one frame family may
// broadcast per Task-1 tick when Config.PaceResyncs is on (deviation
// D9). The exact figure only trades heal-traffic peak against repair
// spread — any positive constant preserves convergence, because denied
// streams retry on the ordinary tick cadence.
const ResyncBudgetPerTick = 8

// resyncLimit resolves the D9 pacing knob to a per-tick limit; 0 means
// unlimited (the paper has no resync traffic to pace).
func (c Config) resyncLimit() int {
	if c.PaceResyncs {
		return ResyncBudgetPerTick
	}
	return 0
}

// resyncBudget tracks one frame family's per-tick resync allowance
// (Config.PaceResyncs, deviation D9): pacing state only, reset when the
// tick advances, never snapshotted or fingerprinted.
type resyncBudget struct {
	tick uint64
	sent int
}

// take consumes one unit of the budget at the given tick. limit <= 0 is
// unlimited (the paper-faithful zero value).
func (b *resyncBudget) take(limit int, tick uint64) bool {
	if limit <= 0 {
		return true
	}
	if b.tick != tick {
		b.tick = tick
		b.sent = 0
	}
	if b.sent >= limit {
		return false
	}
	b.sent++
	return true
}

// msgEntry tracks one known application message in insertion order.
type msgEntry struct {
	id wire.MsgID
}

// msgSet is the paper's MSG_i: an insertion-ordered set of message
// identities, iterated by Task 1. Insertion order (rather than map order)
// keeps runs deterministic.
type msgSet struct {
	order []msgEntry
	index map[wire.MsgID]int
}

func newMsgSet() *msgSet {
	return &msgSet{index: make(map[wire.MsgID]int)}
}

func (s *msgSet) has(id wire.MsgID) bool {
	_, ok := s.index[id]
	return ok
}

func (s *msgSet) add(id wire.MsgID) bool {
	if s.has(id) {
		return false
	}
	s.index[id] = len(s.order)
	s.order = append(s.order, msgEntry{id: id})
	return true
}

func (s *msgSet) remove(id wire.MsgID) bool {
	i, ok := s.index[id]
	if !ok {
		return false
	}
	copy(s.order[i:], s.order[i+1:])
	s.order = s.order[:len(s.order)-1]
	delete(s.index, id)
	for j := i; j < len(s.order); j++ {
		s.index[s.order[j].id] = j
	}
	return true
}

func (s *msgSet) len() int { return len(s.order) }

// snapshotIDs returns the identities in insertion order; Task 1 iterates
// over a snapshot so that removals during the pass are well-defined.
func (s *msgSet) snapshotIDs() []wire.MsgID {
	ids := make([]wire.MsgID, len(s.order))
	for i, e := range s.order {
		ids[i] = e.id
	}
	return ids
}

// deliveredSet is the paper's URB_DELIVERED_i.
type deliveredSet map[wire.MsgID]bool

// myAcks is the paper's MY_ACK_i: the unique tag_ack this process
// generated for each message it has acknowledged. Once generated it never
// changes (uniform integrity depends on this).
type myAcks map[wire.MsgID]ident.Tag

// common holds the state shared by both algorithms.
type common struct {
	cfg       Config
	tags      *ident.Source
	msgs      *msgSet
	delivered deliveredSet
	mine      myAcks
	// sawMsg records messages for which a MSG copy has been received (or
	// locally broadcast); a delivery without this is a "fast delivery".
	sawMsg   map[wire.MsgID]bool
	wireSent uint64
	// tr is the lifecycle tracer (DESIGN.md §14). nil — the zero value —
	// is OFF: every emit site guards on the pointer, so an untraced run
	// pays one branch and allocates nothing. The tracer is observability
	// state only: it never feeds back into guard decisions, is not part
	// of snapshots or fingerprints, and a traced run's Steps are
	// bit-identical to an untraced one's.
	tr *obs.Tracer
}

func newCommon(cfg Config, tags *ident.Source) common {
	return common{
		cfg:       cfg,
		tags:      tags,
		msgs:      newMsgSet(),
		delivered: make(deliveredSet),
		mine:      make(myAcks),
		sawMsg:    make(map[wire.MsgID]bool),
	}
}

// SetTracer installs (or, with nil, removes) the lifecycle tracer. Part
// of the obs.Traceable contract; hosts call it before the first step.
func (c *common) SetTracer(t *obs.Tracer) { c.tr = t }

// send accounts for and returns a broadcast.
func (c *common) send(out *Step, m wire.Message) {
	c.wireSent++
	if c.tr != nil && m.Kind == wire.KindMsg {
		c.tr.FirstSendMsg(m)
	}
	out.Broadcasts = append(out.Broadcasts, m)
}

// deliverOnce appends a delivery if id has not been delivered yet.
func (c *common) deliverOnce(out *Step, id wire.MsgID) bool {
	if c.delivered[id] {
		return false
	}
	c.delivered[id] = true
	fast := !c.sawMsg[id]
	if c.tr != nil {
		c.tr.Deliver(id, fast)
	}
	out.Deliveries = append(out.Deliveries, Delivery{ID: id, Fast: fast})
	return true
}
