package urb

// This file is the state discipline of the join protocol (DESIGN.md
// §13): what a joining process keeps, drops and rebases after restoring
// a donor peer's snapshot.
//
// A joiner is NOT a recovered incarnation of the donor. Recovery
// (Restore + ApplyWAL + Rejoin) resumes the *same* anonymous process:
// it must keep its pinned tag_acks so it never acks one message under
// two identities. A joiner is a *different* process bootstrapping from
// the donor's knowledge: if it kept the donor's pins it would ack under
// the donor's tag_acks while the donor — still alive — does the same,
// and receivers would fold two processes' ACK streams into one acker,
// under-counting the acknowledgers exactly where Theorem 2 needs them
// counted. Adopt therefore splits the snapshot in two:
//
//   - Kept: the delivered set (uniformity — the joiner must never
//     re-deliver what the donor's history already delivered through
//     it), the retransmission set MSG_i, sawMsg, and the received-ACK
//     evidence (other processes' claims, which are facts about the
//     network, not about the donor).
//   - Dropped: the donor's tag_ack pins (mine) and its delta-ACK send
//     ledger. The joiner acks under fresh tags drawn from its own
//     stream, opening fresh delta streams receivers have never seen.
//
// The epochs rebase per the crash-recovery incarnation discipline
// (DESIGN.md §9): fresh tag_acks alone already give the joiner
// fresh streams, but the rebase keeps the invariant "restored state
// never continues a stream another incarnation may have advanced"
// uniform across the recover and join paths — one rule, two callers.
type Joiner interface {
	Durable
	// Adopt converts freshly Restored donor state into joiner state.
	// Hosts call it once, after Restore, instead of Rejoin (Adopt
	// subsumes the rebase), before the process goes live.
	Adopt()
}

var (
	_ Joiner = (*Majority)(nil)
	_ Joiner = (*Quiescent)(nil)
	_ Joiner = (*HeartbeatHost)(nil)
)

// Adopt implements Joiner. Algorithm 1's ACKs carry no sequencing, so
// dropping the donor's pins is the whole discipline: the joiner re-acks
// everything still circulating under its own fresh tags, and receivers
// count it as the new process it is.
func (p *Majority) Adopt() {
	p.mine = make(myAcks)
}

// Adopt implements Joiner: keep the donor's delivered set and received
// ACK evidence, drop its acker identity, rebase the delta-ACK streams.
func (p *Quiescent) Adopt() {
	p.mine = make(myAcks)
	// Rejoin drops the donor's send ledger and lifts the epoch floor
	// above anything the donor's incarnation has sent — the joiner's
	// first ACK per message opens a fresh stream under a fresh tag_ack.
	p.Rejoin()
	// Everything must be re-evaluated against the joiner's own detector
	// on the first Tick (Restore already forces this; Adopt keeps the
	// guarantee independent of Restore's internals).
	p.lastViewKey = ""
}

// Adopt implements Joiner. The detector label is where join and recover
// part ways most visibly: Restore adopts the snapshot's label because a
// *recovered* process is the same anonymous identity, but a joiner
// announcing the donor's label would make one label appear alive from
// two places (and inherit the donor's crash, should it come). Adopt
// restores the factory-fresh label the host drew at construction, keeps
// the donor's heard map as bootstrap liveness knowledge (timestamps are
// conservative — stale until the next beat refreshes them), and re-keys
// the beat stream: the ref derives from the label, so receivers see a
// brand-new stream, announced by snapshot on the first beat.
func (h *HeartbeatHost) Adopt() {
	h.hb.Relabel(h.born)
	h.rebaseBeatStream()
	h.inner.Adopt()
}
