package urb

import (
	"testing"

	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// TestQuiescentAdoptFreshAcker: a joiner adopting a donor snapshot keeps
// the delivered set and the received ACK evidence but acks under its own
// fresh tag_acks, with the delta streams rebased to a new incarnation.
func TestQuiescentAdoptFreshAcker(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 2})
	cfg := Config{DeltaAcks: true}
	donor := NewQuiescent(det, ident.NewSource(xrand.New(1)), cfg)

	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	donor.Receive(wire.NewMsg(id)) // pins a tag_ack, opens a delta stream
	donor.Receive(wire.NewAckSnapshot(id, lbl(100), 1, []ident.Tag{lbl(1)}))
	s := donor.Receive(wire.NewAckSnapshot(id, lbl(101), 1, []ident.Tag{lbl(1)}))
	if len(s.Deliveries) != 1 {
		t.Fatalf("donor did not deliver: %v", s.Deliveries)
	}
	donorPin, ok := donor.mine[id]
	if !ok {
		t.Fatal("donor did not pin a tag_ack")
	}

	joiner := NewQuiescent(det, ident.NewSource(xrand.New(2)), cfg)
	if err := joiner.Restore(donor.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if joiner.mine[id] != donorPin {
		t.Fatal("restore did not reproduce the donor's pin")
	}
	joiner.Adopt()

	// Kept: the delivered set and the claim evidence.
	if !joiner.HasDelivered(id) {
		t.Fatal("adopt lost the delivered set")
	}
	if joiner.Claims(id, lbl(1)) != 2 || joiner.Ackers(id) != 2 {
		t.Fatalf("adopt lost ACK evidence: claims=%d ackers=%d",
			joiner.Claims(id, lbl(1)), joiner.Ackers(id))
	}
	// Dropped: the donor's acker identity and send ledger.
	if len(joiner.mine) != 0 {
		t.Fatalf("adopt kept %d donor pins", len(joiner.mine))
	}
	if len(joiner.ackSend) != 0 {
		t.Fatal("adopt kept the donor's delta-ACK ledger")
	}
	if want := uint64(1) << 32; joiner.epochFloor != want {
		t.Fatalf("epoch floor %#x, want %#x", joiner.epochFloor, want)
	}

	// The next MSG reception acks under a fresh tag — not the donor's.
	s = joiner.Receive(wire.NewMsg(id))
	if len(s.Deliveries) != 0 {
		t.Fatal("joiner re-delivered an adopted delivery")
	}
	pin, ok := joiner.mine[id]
	if !ok {
		t.Fatal("joiner did not pin a fresh tag_ack")
	}
	if pin == donorPin {
		t.Fatal("joiner acks under the donor's tag_ack")
	}
	var acked bool
	for _, m := range s.Broadcasts {
		if m.Kind == wire.KindAckDelta {
			acked = true
			if m.AckTag != pin {
				t.Fatalf("ACK under %v, want fresh pin %v", m.AckTag, pin)
			}
			if m.Flags&wire.AckFlagSnapshot == 0 {
				t.Fatal("fresh stream must open with a snapshot")
			}
			if m.Epoch <= joiner.epochFloor {
				t.Fatalf("stream epoch %#x not above floor %#x", m.Epoch, joiner.epochFloor)
			}
		}
	}
	if !acked {
		t.Fatal("joiner did not ack the message")
	}
}

// TestMajorityAdoptFreshAcker: Algorithm 1's adopt is the pin drop alone.
func TestMajorityAdoptFreshAcker(t *testing.T) {
	donor := NewMajority(3, ident.NewSource(xrand.New(1)), Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	donor.Receive(wire.NewMsg(id))
	donorPin := donor.mine[id]

	joiner := NewMajority(3, ident.NewSource(xrand.New(2)), Config{})
	if err := joiner.Restore(donor.Snapshot()); err != nil {
		t.Fatal(err)
	}
	joiner.Adopt()
	if len(joiner.mine) != 0 {
		t.Fatal("adopt kept donor pins")
	}
	s := joiner.Receive(wire.NewMsg(id))
	if pin := joiner.mine[id]; pin.Zero() || pin == donorPin {
		t.Fatalf("fresh pin not drawn: %v (donor %v)", pin, donorPin)
	}
	if len(s.Broadcasts) == 0 {
		t.Fatal("joiner did not ack")
	}
}

// TestHeartbeatHostAdoptKeepsOwnLabel: a joining host announces its own
// factory-fresh label, never the donor's, and re-keys its beat stream.
func TestHeartbeatHostAdoptKeepsOwnLabel(t *testing.T) {
	cfg := Config{DeltaBeats: true}
	clock := func() int64 { return 10 }
	donor := NewHeartbeatHost(ident.NewSource(xrand.New(1)), 100, 1, clock, cfg)
	donor.Tick()
	peer := lbl(55)
	donor.Receive(wire.NewBeat(peer))

	joiner := NewHeartbeatHost(ident.NewSource(xrand.New(2)), 100, 1, clock, cfg)
	born := joiner.Detector().Label()
	if born == donor.Detector().Label() {
		t.Fatal("distinct seeds produced one label")
	}
	if err := joiner.Restore(donor.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if joiner.Detector().Label() != donor.Detector().Label() {
		t.Fatal("restore did not adopt the snapshot label (recovery semantics)")
	}
	joiner.Adopt()
	if joiner.Detector().Label() != born {
		t.Fatalf("adopt announces %v, want the host's own %v", joiner.Detector().Label(), born)
	}
	// The donor's heard map rides along as bootstrap liveness knowledge.
	var heardPeer bool
	for _, e := range joiner.Detector().Heard() {
		if e.Label == peer {
			heardPeer = true
		}
	}
	if !heardPeer {
		t.Fatal("adopt lost the donor's heard map")
	}
	// Beat stream: new incarnation, announced by snapshot under the
	// joiner's own ref on the first beat.
	if inc := joiner.beatEpoch >> 16; inc != 1 {
		t.Fatalf("beat incarnation %d, want 1", inc)
	}
	s := joiner.Tick()
	var snap *wire.Message
	for i, m := range s.Broadcasts {
		if m.Kind == wire.KindBeatDelta && m.Flags&wire.BeatFlagSnapshot != 0 {
			snap = &s.Broadcasts[i]
		}
	}
	if snap == nil {
		t.Fatal("first post-adopt beat is not a stream snapshot")
	}
	if snap.Ref != wire.BeatRef(born) {
		t.Fatal("beat stream not re-keyed to the joiner's own label")
	}
	if len(snap.Labels) != 1 || snap.Labels[0] != born {
		t.Fatalf("announced %v, want [%v]", snap.Labels, born)
	}
}

// TestVerifySnapshotIncarnation: the staleness gate's input — the
// snapshot's delta-stream incarnation — is exposed by VerifySnapshot.
func TestVerifySnapshotIncarnation(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 1})
	p := NewQuiescent(det, ident.NewSource(xrand.New(1)), Config{})
	if info, err := VerifySnapshot(p.Snapshot()); err != nil || info.Incarnation != 0 {
		t.Fatalf("fresh process: inc=%d err=%v", info.Incarnation, err)
	}
	p.Rejoin()
	p.Rejoin()
	info, err := VerifySnapshot(p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if info.Incarnation != 2 {
		t.Fatalf("incarnation %d, want 2", info.Incarnation)
	}

	h := NewHeartbeatHost(ident.NewSource(xrand.New(1)), 100, 1, func() int64 { return 0 }, Config{})
	h.Rejoin()
	info, err = VerifySnapshot(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if info.Incarnation != 1 {
		t.Fatalf("host incarnation %d, want 1", info.Incarnation)
	}
}
