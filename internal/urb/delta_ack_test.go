package urb

import (
	"fmt"
	"testing"

	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// --- sender-side unit tests ----------------------------------------------

func TestQuiescentDeltaFirstAckIsSnapshot(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 2}, fd.Pair{Label: lbl(2), Number: 2})
	p := newQui(t, det, Config{DeltaAcks: true})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	s := p.Receive(wire.NewMsg(id))
	if len(s.Broadcasts) != 1 {
		t.Fatalf("want one broadcast, got %v", s.Broadcasts)
	}
	ack := s.Broadcasts[0]
	if ack.Kind != wire.KindAckDelta || ack.Flags&wire.AckFlagSnapshot == 0 {
		t.Fatalf("first labeled ACK must be a snapshot delta, got %v", ack)
	}
	if ack.Epoch != 1 {
		t.Fatalf("first epoch = %d, want 1", ack.Epoch)
	}
	got := ident.NewSet(ack.Labels...)
	if got.Len() != 2 || !got.Has(lbl(1)) || !got.Has(lbl(2)) {
		t.Fatalf("snapshot labels %v", ack.Labels)
	}
}

func TestQuiescentDeltaUnchangedReAckRateLimited(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 99})
	p := newQui(t, det, Config{DeltaAcks: true})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	s := p.Receive(wire.NewMsg(id))
	if len(s.Broadcasts) != 1 {
		t.Fatal("first reception must ACK")
	}
	// Further receptions within the same tick are suppressed (D5).
	for i := 0; i < 5; i++ {
		if s := p.Receive(wire.NewMsg(id)); len(s.Broadcasts) != 0 {
			t.Fatalf("re-ACK %d not rate-limited: %v", i, s.Broadcasts)
		}
	}
	// The next tick re-arms exactly one unchanged re-ACK.
	p.Tick()
	s = p.Receive(wire.NewMsg(id))
	if len(s.Broadcasts) != 1 {
		t.Fatalf("want one re-ACK after tick, got %v", s.Broadcasts)
	}
	re := s.Broadcasts[0]
	if re.Kind != wire.KindAckDelta || re.Flags != 0 || re.Epoch != 1 ||
		len(re.Labels) != 0 || len(re.DelLabels) != 0 {
		t.Fatalf("unchanged re-ACK malformed: %v", re)
	}
	if s := p.Receive(wire.NewMsg(id)); len(s.Broadcasts) != 0 {
		t.Fatal("second re-ACK within one tick not suppressed")
	}
}

func TestQuiescentDeltaChangedSetEmitsDelta(t *testing.T) {
	view := fd.Normalize(fd.View{{Label: lbl(1), Number: 9}, {Label: lbl(2), Number: 9}})
	det := &fd.Func{
		ThetaFn: func() fd.View { return view },
		StarFn:  func() fd.View { return view },
	}
	p := newQui(t, det, Config{DeltaAcks: true})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	p.Receive(wire.NewMsg(id)) // snapshot at epoch 1: {l1, l2}
	// The AΘ view changes: l2 out, l3 in. A changed set must not be
	// rate-limited even within the same tick.
	view = fd.Normalize(fd.View{{Label: lbl(1), Number: 9}, {Label: lbl(3), Number: 9}})
	s := p.Receive(wire.NewMsg(id))
	if len(s.Broadcasts) != 1 {
		t.Fatalf("changed set must ACK immediately, got %v", s.Broadcasts)
	}
	d := s.Broadcasts[0]
	if d.Kind != wire.KindAckDelta || d.Flags != 0 || d.Epoch != 2 {
		t.Fatalf("want plain delta at epoch 2, got %v", d)
	}
	if len(d.Labels) != 1 || d.Labels[0] != lbl(3) {
		t.Fatalf("adds = %v, want [l3]", d.Labels)
	}
	if len(d.DelLabels) != 1 || d.DelLabels[0] != lbl(2) {
		t.Fatalf("dels = %v, want [l2]", d.DelLabels)
	}
}

func TestQuiescentResyncResponse(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 99})
	p := newQui(t, det, Config{DeltaAcks: true})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	s := p.Receive(wire.NewMsg(id))
	mine := s.Broadcasts[0].AckTag

	// A request for someone else's stream is ignored.
	if s := p.Receive(wire.NewAckResync(id, lbl(77))); len(s.Broadcasts) != 0 {
		t.Fatalf("answered a foreign resync: %v", s.Broadcasts)
	}
	// A request for an unknown message is ignored.
	other := wire.MsgID{Tag: ident.Tag{Hi: 8, Lo: 8}, Body: "x"}
	if s := p.Receive(wire.NewAckResync(other, mine)); len(s.Broadcasts) != 0 {
		t.Fatalf("answered a resync for an un-ACKed message: %v", s.Broadcasts)
	}
	// Our own stream: answered with a snapshot — but the snapshot sent at
	// first reception this tick already serves, so only after a tick.
	if s := p.Receive(wire.NewAckResync(id, mine)); len(s.Broadcasts) != 0 {
		t.Fatalf("re-snapshotted within the snapshot's tick: %v", s.Broadcasts)
	}
	p.Tick()
	s = p.Receive(wire.NewAckResync(id, mine))
	if len(s.Broadcasts) != 1 {
		t.Fatalf("want snapshot response, got %v", s.Broadcasts)
	}
	snap := s.Broadcasts[0]
	if snap.Kind != wire.KindAckDelta || snap.Flags&wire.AckFlagSnapshot == 0 ||
		snap.Epoch != 1 || snap.AckTag != mine {
		t.Fatalf("bad snapshot response: %v", snap)
	}
	// One snapshot per tick serves all requesters (it is broadcast).
	if s := p.Receive(wire.NewAckResync(id, mine)); len(s.Broadcasts) != 0 {
		t.Fatalf("second snapshot within one tick: %v", s.Broadcasts)
	}
}

// --- receiver-side unit tests ---------------------------------------------

func TestQuiescentDeltaReceiverFoldsDeltas(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 2})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	// Snapshot opens the stream.
	p.Receive(wire.NewAckSnapshot(id, lbl(100), 1, []ident.Tag{lbl(1), lbl(2)}))
	if p.Claims(id, lbl(1)) != 1 || p.Claims(id, lbl(2)) != 1 {
		t.Fatalf("snapshot not applied: claims l1=%d l2=%d", p.Claims(id, lbl(1)), p.Claims(id, lbl(2)))
	}
	// In-sequence delta folds into the claim counters.
	p.Receive(wire.NewAckDelta(id, lbl(100), 2, []ident.Tag{lbl(3)}, []ident.Tag{lbl(2)}))
	if p.Claims(id, lbl(2)) != 0 || p.Claims(id, lbl(3)) != 1 {
		t.Fatalf("delta not folded: claims l2=%d l3=%d", p.Claims(id, lbl(2)), p.Claims(id, lbl(3)))
	}
	if p.Ackers(id) != 1 {
		t.Fatalf("ackers = %d, want 1", p.Ackers(id))
	}
	// Delivery fires through the delta path exactly as through full sets.
	s := p.Receive(wire.NewAckSnapshot(id, lbl(101), 1, []ident.Tag{lbl(1)}))
	if len(s.Deliveries) != 1 || s.Deliveries[0].ID != id {
		t.Fatalf("delivery guard missed on delta path: %v", s.Deliveries)
	}
	if !s.Deliveries[0].Fast {
		t.Fatal("ACK-only evidence must be a fast delivery")
	}
}

func TestQuiescentDeltaStaleAndDuplicateIgnored(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 99})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	p.Receive(wire.NewAckSnapshot(id, lbl(100), 1, []ident.Tag{lbl(1)}))
	p.Receive(wire.NewAckDelta(id, lbl(100), 2, []ident.Tag{lbl(2)}, nil))
	// Duplicate of the old delta and a stale snapshot: both no-ops, no
	// resync chatter.
	s := p.Receive(wire.NewAckDelta(id, lbl(100), 2, []ident.Tag{lbl(2)}, nil))
	if len(s.Broadcasts) != 0 {
		t.Fatalf("stale delta caused traffic: %v", s.Broadcasts)
	}
	s = p.Receive(wire.NewAckSnapshot(id, lbl(100), 1, []ident.Tag{lbl(1)}))
	if len(s.Broadcasts) != 0 {
		t.Fatalf("stale snapshot caused traffic: %v", s.Broadcasts)
	}
	if p.Claims(id, lbl(1)) != 1 || p.Claims(id, lbl(2)) != 1 {
		t.Fatalf("stale frames perturbed claims: l1=%d l2=%d", p.Claims(id, lbl(1)), p.Claims(id, lbl(2)))
	}
}

func TestQuiescentDeltaGapTriggersResync(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 99})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	p.Receive(wire.NewAckSnapshot(id, lbl(100), 1, []ident.Tag{lbl(1)}))
	// Epoch 3 arrives with epoch 2 lost: the fold is unsafe, claims stay
	// put, and a resync request goes out.
	s := p.Receive(wire.NewAckDelta(id, lbl(100), 3, []ident.Tag{lbl(3)}, []ident.Tag{lbl(1)}))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindAckReq {
		t.Fatalf("want one ACKREQ, got %v", s.Broadcasts)
	}
	if s.Broadcasts[0].AckTag != lbl(100) || s.Broadcasts[0].ID() != id {
		t.Fatalf("ACKREQ misaddressed: %v", s.Broadcasts[0])
	}
	if p.Claims(id, lbl(1)) != 1 || p.Claims(id, lbl(3)) != 0 {
		t.Fatalf("gapped delta was folded: l1=%d l3=%d", p.Claims(id, lbl(1)), p.Claims(id, lbl(3)))
	}
	// Requests are rate-limited per (message, acker) per tick.
	s = p.Receive(wire.NewAckDelta(id, lbl(100), 4, []ident.Tag{lbl(4)}, nil))
	if len(s.Broadcasts) != 0 {
		t.Fatalf("second ACKREQ within one tick: %v", s.Broadcasts)
	}
	p.Tick()
	s = p.Receive(wire.NewAckDelta(id, lbl(100), 4, []ident.Tag{lbl(4)}, nil))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindAckReq {
		t.Fatalf("ACKREQ not re-armed after tick: %v", s.Broadcasts)
	}
	// The snapshot response repairs the stream and clears the limiter.
	p.Receive(wire.NewAckSnapshot(id, lbl(100), 4, []ident.Tag{lbl(3), lbl(4)}))
	if p.Claims(id, lbl(1)) != 0 || p.Claims(id, lbl(3)) != 1 || p.Claims(id, lbl(4)) != 1 {
		t.Fatalf("snapshot repair wrong: l1=%d l3=%d l4=%d",
			p.Claims(id, lbl(1)), p.Claims(id, lbl(3)), p.Claims(id, lbl(4)))
	}
	// Back in sequence: the next delta folds without a request.
	s = p.Receive(wire.NewAckDelta(id, lbl(100), 5, []ident.Tag{lbl(5)}, nil))
	if len(s.Broadcasts) != 0 || p.Claims(id, lbl(5)) != 1 {
		t.Fatalf("post-repair delta mishandled: %v claims l5=%d", s.Broadcasts, p.Claims(id, lbl(5)))
	}
}

// TestQuiescentDeltaReAckReChecksDeliveryGuard: the guard (line 46)
// runs on every ACK reception, even one that changes no claims — a
// detector number dropping can unblock a delivery whose claims were
// already in place, and the full-set path catches that on the next
// re-ACK. The delta path must too (its re-ACKs are stale-epoch empty
// deltas), or a quiescent-mode node with CheckOnTick off would
// retransmit forever.
func TestQuiescentDeltaReAckReChecksDeliveryGuard(t *testing.T) {
	view := fd.Normalize(fd.View{{Label: lbl(1), Number: 5}})
	det := &fd.Func{
		ThetaFn: func() fd.View { return view },
		StarFn:  func() fd.View { return view },
	}
	p := newQui(t, det, Config{}) // CheckOnTick off
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	for i := uint64(0); i < 3; i++ {
		s := p.Receive(wire.NewAckSnapshot(id, lbl(100+i), 1, []ident.Tag{lbl(1)}))
		if len(s.Deliveries) != 0 {
			t.Fatal("premature delivery")
		}
	}
	// GST: the number drops to 2 with claims already at 3. The next
	// unchanged re-ACK — a stale-epoch empty delta — must deliver.
	view = fd.Normalize(fd.View{{Label: lbl(1), Number: 2}})
	s := p.Receive(wire.NewAckDelta(id, lbl(100), 1, nil, nil))
	if len(s.Deliveries) != 1 {
		t.Fatalf("stale re-ACK did not re-check the delivery guard: %v", s.Deliveries)
	}
}

// TestQuiescentDeltaEmptyReAckAheadOfEpochResyncs: an epoch advances
// only together with a set change, so a change-delta is never empty —
// an empty delta ahead of our epoch proves the change-delta that
// advanced it was lost (or overtaken). Folding it would mark the view
// synced at an epoch whose change was never applied: the receiver must
// resync instead, and the snapshot must repair the miss.
func TestQuiescentDeltaEmptyReAckAheadOfEpochResyncs(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 99})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	p.Receive(wire.NewAckSnapshot(id, lbl(100), 1, []ident.Tag{lbl(1)}))
	// The change-delta at epoch 2 (+l2) is lost; the unchanged re-ACK
	// stamped with epoch 2 arrives instead.
	s := p.Receive(wire.NewAckDelta(id, lbl(100), 2, nil, nil))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindAckReq {
		t.Fatalf("empty delta ahead of epoch must resync, got %v", s.Broadcasts)
	}
	if p.Claims(id, lbl(2)) != 0 {
		t.Fatal("nothing should have folded")
	}
	// The snapshot answer restores the missed change.
	p.Receive(wire.NewAckSnapshot(id, lbl(100), 2, []ident.Tag{lbl(1), lbl(2)}))
	if p.Claims(id, lbl(1)) != 1 || p.Claims(id, lbl(2)) != 1 {
		t.Fatalf("repair wrong: l1=%d l2=%d", p.Claims(id, lbl(1)), p.Claims(id, lbl(2)))
	}
	// And an in-sync empty re-ACK (same epoch) stays a quiet no-op.
	s = p.Receive(wire.NewAckDelta(id, lbl(100), 2, nil, nil))
	if len(s.Broadcasts) != 0 {
		t.Fatalf("in-sync re-ACK caused traffic: %v", s.Broadcasts)
	}
}

func TestQuiescentDeltaFromUnknownAckerTriggersResync(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 99})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	// Even an epoch-1 plain delta is not foldable: senders open streams
	// with snapshots, so a plain delta from an unknown acker means the
	// opening snapshot was lost.
	s := p.Receive(wire.NewAckDelta(id, lbl(100), 1, nil, nil))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindAckReq {
		t.Fatalf("want ACKREQ for unknown acker, got %v", s.Broadcasts)
	}
	if p.Ackers(id) != 0 {
		t.Fatal("unfoldable delta registered an acker")
	}
}

func TestQuiescentLegacyFullAckThenDeltaResyncs(t *testing.T) {
	// Mixed traffic: a full-set ACK carries no epoch, so a delta arriving
	// after it cannot be sequenced — the receiver must ask for a snapshot
	// rather than guess.
	det := staticFD(fd.Pair{Label: lbl(1), Number: 99})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
	if p.Claims(id, lbl(1)) != 1 {
		t.Fatal("full-set ACK not applied")
	}
	s := p.Receive(wire.NewAckDelta(id, lbl(100), 7, []ident.Tag{lbl(2)}, nil))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindAckReq {
		t.Fatalf("delta after legacy ACK must resync, got %v", s.Broadcasts)
	}
	if p.Claims(id, lbl(2)) != 0 {
		t.Fatal("unsequenced delta was folded")
	}
	// And the reverse interleaving: a legacy full ACK replaces a synced
	// delta view wholesale (and desyncs it).
	p.Receive(wire.NewAckSnapshot(id, lbl(101), 3, []ident.Tag{lbl(3)}))
	p.Receive(wire.NewLabeledAck(id, lbl(101), []ident.Tag{lbl(4)}))
	if p.Claims(id, lbl(3)) != 0 || p.Claims(id, lbl(4)) != 1 {
		t.Fatalf("legacy replace after delta wrong: l3=%d l4=%d", p.Claims(id, lbl(3)), p.Claims(id, lbl(4)))
	}
}

func TestQuiescentDeltaOverlapFoldsRemovalsFirst(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 99})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	p.Receive(wire.NewAckSnapshot(id, lbl(100), 1, []ident.Tag{lbl(1)}))
	// Adversarial overlap: lbl(1) in both lists. Removals fold first, so
	// the label ends up present with a correct (single) claim count.
	p.Receive(wire.NewAckDelta(id, lbl(100), 2, []ident.Tag{lbl(1)}, []ident.Tag{lbl(1)}))
	if p.Claims(id, lbl(1)) != 1 {
		t.Fatalf("overlap fold wrong: claims l1=%d, want 1", p.Claims(id, lbl(1)))
	}
}

func TestQuiescentPurgeDesyncsDeltaStream(t *testing.T) {
	// The D4 purge removes a label locally that the acker still claims
	// remotely. A delta sender never re-sends labels it believes the
	// receiver holds, so the view must drop to unsynced and the next
	// delta must trigger a resync — otherwise a wrongly-purged label
	// (one that returns to the views pre-GST) would be lost forever.
	view := fd.Normalize(fd.View{{Label: lbl(1), Number: 99}, {Label: lbl(2), Number: 99}})
	det := &fd.Func{
		ThetaFn: func() fd.View { return view },
		StarFn:  func() fd.View { return view },
	}
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	p.Receive(wire.NewAckSnapshot(id, lbl(100), 1, []ident.Tag{lbl(1), lbl(2)}))
	// lbl(2) temporarily vanishes from the views: the purge removes it.
	view = fd.Normalize(fd.View{{Label: lbl(1), Number: 99}})
	p.Tick()
	if p.Claims(id, lbl(2)) != 0 {
		t.Fatal("purge did not remove the suspect label")
	}
	// lbl(2) comes back (wrong suspicion). An in-sequence delta can no
	// longer be folded — the local copy diverged — so the receiver asks
	// for a snapshot, whose reply restores the purged label.
	view = fd.Normalize(fd.View{{Label: lbl(1), Number: 99}, {Label: lbl(2), Number: 99}})
	s := p.Receive(wire.NewAckDelta(id, lbl(100), 2, []ident.Tag{lbl(3)}, nil))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindAckReq {
		t.Fatalf("post-purge delta must resync, got %v", s.Broadcasts)
	}
	p.Receive(wire.NewAckSnapshot(id, lbl(100), 2, []ident.Tag{lbl(1), lbl(2), lbl(3)}))
	if p.Claims(id, lbl(2)) != 1 {
		t.Fatal("snapshot did not restore the wrongly purged label")
	}
}

// --- the equivalence property test (randomized schedules) ----------------

// eqCluster is a tiny lossless in-order broadcast fabric for one group of
// Quiescent processes: every broadcast is appended to every process's
// FIFO queue (self included), exactly once.
type eqCluster struct {
	procs  []*Quiescent
	queues [][]wire.Message
	theta  fd.View // shared mutable AΘ view (oracle-style)
	star   fd.View // shared mutable AP* view (nil = retirement disabled)
}

func newEqCluster(n int, seed uint64, cfg Config, theta fd.View) *eqCluster {
	c := &eqCluster{queues: make([][]wire.Message, n), theta: theta}
	det := &fd.Func{
		ThetaFn: func() fd.View { return c.theta },
		StarFn:  func() fd.View { return c.star },
	}
	for i := 0; i < n; i++ {
		c.procs = append(c.procs, NewQuiescent(det, ident.NewSource(xrand.New(seed+uint64(i)*7919)), cfg))
	}
	return c
}

func (c *eqCluster) absorb(s Step) {
	for _, m := range s.Broadcasts {
		for i := range c.queues {
			c.queues[i] = append(c.queues[i], m)
		}
	}
}

// deliverOne feeds the head of proc i's queue, if any.
func (c *eqCluster) deliverOne(i int) {
	if len(c.queues[i]) == 0 {
		return
	}
	m := c.queues[i][0]
	c.queues[i] = c.queues[i][1:]
	c.absorb(c.procs[i].Receive(m))
}

func (c *eqCluster) pending() int {
	n := 0
	for _, q := range c.queues {
		n += len(q)
	}
	return n
}

// settle runs rounds of tick-everyone + deliver-everything so claims
// reach their fixpoint for the current views (the per-round full drain
// also completes any pending resync request/response conversations).
// Retirement must be disabled (empty AP* view) or traffic may stop
// before the fixpoint.
func (c *eqCluster) settle(rounds int) {
	for r := 0; r < rounds; r++ {
		for _, p := range c.procs {
			c.absorb(p.Tick())
		}
		for i := range c.procs {
			for len(c.queues[i]) > 0 {
				c.deliverOne(i)
			}
		}
	}
}

// drain delivers queued traffic and ticks until the cluster is silent:
// no queued frames and a full tick round that broadcasts nothing.
func (c *eqCluster) drain(t *testing.T, name string) {
	t.Helper()
	for round := 0; round < 400; round++ {
		for i := range c.procs {
			for len(c.queues[i]) > 0 {
				c.deliverOne(i)
			}
		}
		sent := 0
		for _, p := range c.procs {
			s := p.Tick()
			sent += len(s.Broadcasts)
			c.absorb(s)
		}
		if sent == 0 && c.pending() == 0 {
			return
		}
	}
	t.Fatalf("%s cluster did not quiesce within the drain budget", name)
}

// claimsByBody flattens a process's claim counters keyed by message body
// (bodies are unique per broadcast, and tags differ between clusters).
func claimsByBody(p *Quiescent) map[string]map[ident.Tag]int {
	out := make(map[string]map[ident.Tag]int)
	for id, st := range p.acks {
		m := make(map[ident.Tag]int, len(st.claims))
		for l, c := range st.claims {
			m[l] = c
		}
		out[id.Body] = m
	}
	return out
}

func deliveredBodies(p *Quiescent) map[string]bool {
	out := make(map[string]bool, len(p.delivered))
	for id := range p.delivered {
		out[id.Body] = true
	}
	return out
}

// compareClusters asserts that two clusters hold identical per-process
// claim maps, delivered sets, retirement counts and state sizes (keyed
// by message body; tag_acks differ between clusters by construction).
func compareClusters(t *testing.T, phase string, full, delta *eqCluster, msgs int) {
	t.Helper()
	for i := range full.procs {
		fp, dp := full.procs[i], delta.procs[i]
		fDel, dDel := deliveredBodies(fp), deliveredBodies(dp)
		if len(fDel) != msgs || len(dDel) != msgs {
			t.Fatalf("%s: p%d delivered full=%d delta=%d, want %d", phase, i, len(fDel), len(dDel), msgs)
		}
		for b := range fDel {
			if !dDel[b] {
				t.Fatalf("%s: p%d: delta path missed delivery of %q", phase, i, b)
			}
		}
		if fr, dr := fp.RetiredCount(), dp.RetiredCount(); fr != dr {
			t.Fatalf("%s: p%d retirement diverged: full=%d delta=%d", phase, i, fr, dr)
		}
		fc, dc := claimsByBody(fp), claimsByBody(dp)
		if len(fc) != len(dc) {
			t.Fatalf("%s: p%d tracks %d vs %d messages", phase, i, len(fc), len(dc))
		}
		for body, fm := range fc {
			dm, ok := dc[body]
			if !ok {
				t.Fatalf("%s: p%d: delta path has no ACK state for %q", phase, i, body)
			}
			if len(fm) != len(dm) {
				t.Fatalf("%s: p%d %q: claim label sets differ: full=%v delta=%v", phase, i, body, fm, dm)
			}
			for l, c := range fm {
				if dm[l] != c {
					t.Fatalf("%s: p%d %q: claims[%s] full=%d delta=%d", phase, i, body, l, c, dm[l])
				}
			}
		}
		fs, ds := fp.Stats(), dp.Stats()
		if fs.AckEntries != ds.AckEntries || fs.MsgSet != ds.MsgSet || fs.Delivered != ds.Delivered {
			t.Fatalf("%s: p%d stats diverged: full=%+v delta=%+v", phase, i, fs, ds)
		}
	}
}

// TestQuiescentDeltaEquivalence drives randomized schedules through two
// clusters that differ only in ACK encoding — full-set versus delta —
// and requires identical claims maps, delivered sets and retirement
// counts. Both clusters see the same op sequence (broadcasts,
// single-message receptions, ticks, one detector-view shift) over
// lossless in-order queues; the delta cluster additionally exercises
// rate-limited re-ACKs, epoch sequencing and purge-driven resyncs along
// the way.
//
// The run has two phases because the encodings may interleave
// differently in time and retirement *freezes* a message's claim state
// wherever it happens to stand (no further ACKs flow once quiescent).
// Phase 1 keeps the AP* view empty — retirement disabled — so both
// clusters converge to the claims fixpoint of the final AΘ view, which
// must be reached identically by full sets and by folded deltas. Phase 2
// reveals the AP* view from that common state and requires the
// retirement endgame — the paper's actual quiescence mechanism — to
// proceed identically too.
func TestQuiescentDeltaEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := xrand.New(seed * 0x9e3779b9)
			n := 3 + int(rng.Uint64()%3) // 3..5 processes
			msgs := 3 + int(rng.Uint64()%4)
			base := Config{
				CheckOnTick:      rng.Uint64()%2 == 0,
				RetireBeforeSend: rng.Uint64()%2 == 0,
				EagerFirstSend:   rng.Uint64()%2 == 0,
			}
			deltaCfg := base
			deltaCfg.DeltaAcks = true

			// Oracle-style views: every label claimed by all n processes.
			// The mid-run shift swaps lbl(2) for lbl(3), so delta ACKs
			// carry genuine additions and removals and the D4 purge runs.
			viewA := fd.Normalize(fd.View{
				{Label: lbl(1), Number: n},
				{Label: lbl(2), Number: n},
			})
			viewB := fd.Normalize(fd.View{
				{Label: lbl(1), Number: n},
				{Label: lbl(3), Number: n},
			})

			full := newEqCluster(n, seed, base, viewA.Clone())
			delta := newEqCluster(n, seed, deltaCfg, viewA.Clone())

			steps := 200 + int(rng.Uint64()%200)
			shiftAt := steps/4 + int(rng.Uint64()%(uint64(steps)/2))
			sent := 0
			for step := 0; step < steps; step++ {
				if step == shiftAt {
					full.theta = viewB.Clone()
					delta.theta = viewB.Clone()
				}
				switch op := rng.Uint64() % 10; {
				case op < 6: // deliver one frame at a random process
					i := int(rng.Uint64() % uint64(n))
					full.deliverOne(i)
					delta.deliverOne(i)
				case op < 8: // tick a random process
					i := int(rng.Uint64() % uint64(n))
					full.absorb(full.procs[i].Tick())
					delta.absorb(delta.procs[i].Tick())
				default: // broadcast the next payload (same body both sides)
					if sent >= msgs {
						continue
					}
					i := int(rng.Uint64() % uint64(n))
					body := []byte(fmt.Sprintf("m%d", sent))
					sent++
					_, s := full.procs[i].Broadcast(body)
					full.absorb(s)
					_, s = delta.procs[i].Broadcast(body)
					delta.absorb(s)
				}
			}
			// Broadcast any payloads the schedule never got to, so both
			// clusters handled the same message set.
			for ; sent < msgs; sent++ {
				body := []byte(fmt.Sprintf("m%d", sent))
				_, s := full.procs[0].Broadcast(body)
				full.absorb(s)
				_, s = delta.procs[0].Broadcast(body)
				delta.absorb(s)
			}

			// Phase 1 fixpoint: AΘ settles on viewB, retirement stays
			// disabled, and a few tick+full-drain rounds bring every
			// acker's set — full or folded — to the view's labels.
			full.theta = viewB.Clone()
			delta.theta = viewB.Clone()
			full.settle(6)
			delta.settle(6)
			compareClusters(t, "fixpoint", full, delta, msgs)

			// Phase 2 endgame: AP* reveals the correct set and both
			// clusters must retire everything and fall silent.
			full.star = viewB.Clone()
			delta.star = viewB.Clone()
			full.drain(t, "full-set")
			delta.drain(t, "delta")
			compareClusters(t, "quiescence", full, delta, msgs)
			for i := range full.procs {
				if got := delta.procs[i].RetiredCount(); got != msgs {
					t.Fatalf("p%d retired %d/%d after AP* reveal", i, got, msgs)
				}
			}
		})
	}
}
