package urb

import (
	"testing"

	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

func TestHeartbeatHostEmitsBeats(t *testing.T) {
	now := int64(0)
	h := NewHeartbeatHost(ident.NewSource(xrand.New(1)), 100, 2, func() int64 { return now }, Config{})
	s := h.Tick() // tick 1: beatEvery=2, no beat yet
	beats := 0
	for _, m := range s.Broadcasts {
		if m.Kind == wire.KindBeat {
			beats++
		}
	}
	if beats != 0 {
		t.Fatal("beat emitted too early")
	}
	s = h.Tick() // tick 2: beat
	beats = 0
	for _, m := range s.Broadcasts {
		if m.Kind == wire.KindBeat {
			beats++
			if m.Tag != h.Detector().Label() {
				t.Fatal("beat carries wrong label")
			}
		}
	}
	if beats != 1 || h.BeatsSent() != 1 {
		t.Fatalf("beats %d sent %d", beats, h.BeatsSent())
	}
}

func TestHeartbeatHostRoutesBeatsToDetector(t *testing.T) {
	now := int64(0)
	h := NewHeartbeatHost(ident.NewSource(xrand.New(2)), 100, 1, func() int64 { return now }, Config{})
	peer := ident.Tag{Hi: 42, Lo: 42}
	s := h.Receive(wire.NewBeat(peer))
	if len(s.Broadcasts)+len(s.Deliveries) != 0 {
		t.Fatal("beat must not reach the algorithm")
	}
	if !h.Detector().ATheta().Has(peer) {
		t.Fatal("detector did not hear the beat")
	}
}

func TestHeartbeatHostEndToEnd(t *testing.T) {
	// Three hosts on a lossless in-test pump with a manual clock:
	// heartbeats flow, the views converge, a broadcast is delivered by
	// all, and the ALGORITHM traffic goes quiet while beats continue.
	now := int64(0)
	clock := func() int64 { return now }
	const n = 3
	root := xrand.New(77)
	hosts := make([]*HeartbeatHost, n)
	procs := make([]Process, n)
	for i := range hosts {
		hosts[i] = NewHeartbeatHost(ident.NewSource(root.Split()), 200, 1, clock, Config{})
		procs[i] = hosts[i]
	}
	pm := newPump(t, procs...)

	// Let the detectors stabilise: a few beat rounds.
	for r := 0; r < 3; r++ {
		now += 10
		pm.round()
	}
	for i, h := range hosts {
		if got := len(h.Detector().ATheta()); got != n {
			t.Fatalf("host %d detector sees %d labels, want %d", i, got, n)
		}
	}

	pm.broadcast(0, "via-heartbeats")
	for r := 0; r < 6; r++ {
		now += 10
		pm.round()
	}
	for i := range hosts {
		if got := len(pm.deliveredIDs(i)); got != 1 {
			t.Fatalf("host %d delivered %d", i, got)
		}
		if st := hosts[i].Inner().Stats(); st.MsgSet != 0 {
			t.Fatalf("host %d algorithm not quiescent: %d in MSG", i, st.MsgSet)
		}
	}
	// Beats keep flowing (detector traffic is not quiescent, by design).
	before := hosts[0].BeatsSent()
	now += 10
	pm.round()
	if hosts[0].BeatsSent() != before+1 {
		t.Fatal("beats should continue after algorithm quiescence")
	}
}

func TestHeartbeatHostCrashDetection(t *testing.T) {
	// Two hosts; one crashes. After the timeout the survivor's views
	// drop the dead label, and a message broadcast afterwards still
	// retires (quiescence with a real detector).
	now := int64(0)
	clock := func() int64 { return now }
	root := xrand.New(88)
	a := NewHeartbeatHost(ident.NewSource(root.Split()), 50, 1, clock, Config{})
	b := NewHeartbeatHost(ident.NewSource(root.Split()), 50, 1, clock, Config{})
	pm := newPump(t, a, b)

	for r := 0; r < 3; r++ {
		now += 10
		pm.round()
	}
	if len(a.Detector().ATheta()) != 2 {
		t.Fatal("precondition: both trusted")
	}
	// b crashes; its beats stop.
	pm.crash(1)
	for r := 0; r < 8; r++ {
		now += 10
		pm.round()
	}
	if a.Detector().ATheta().Has(b.Detector().Label()) {
		t.Fatal("survivor still trusts the dead host after timeout")
	}
	// The survivor can still broadcast, deliver on its own evidence
	// (|Correct| = 1) and retire.
	pm.broadcast(0, "alone")
	for r := 0; r < 6; r++ {
		now += 10
		pm.round()
	}
	if got := len(pm.deliveredIDs(0)); got != 1 {
		t.Fatalf("survivor delivered %d", got)
	}
	if st := a.Inner().Stats(); st.MsgSet != 0 || st.Retired != 1 {
		t.Fatalf("survivor did not retire: %+v", st)
	}
}
