package urb

import (
	"strings"
	"testing"

	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// TestMajorityExplainPartitionedAcker is the acceptance scenario for the
// stall explainer (ISSUE 9): a 5-process majority cluster where three
// processes are partitioned away before the broadcast. The two reachable
// processes ack, evidence stalls at 2/3, and Explain must name the
// shortfall.
func TestMajorityExplainPartitionedAcker(t *testing.T) {
	const n = 5
	tags := tagsFor(42, n)
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = NewMajority(n, tags[i], Config{EagerFirstSend: true})
	}
	p := newPump(t, procs...)
	// Partition: processes 2, 3, 4 never see the broadcast.
	p.crash(2)
	p.crash(3)
	p.crash(4)
	stalledID, s := procs[0].Broadcast([]byte("stalled"))
	p.absorb(0, s)
	p.run(4)

	for i := 0; i < 2; i++ {
		if got := p.deliveredIDs(i); len(got) != 0 {
			t.Fatalf("process %d delivered %v with only 2/5 ackers reachable", i, got)
		}
	}
	maj := procs[0].(*Majority)
	ex := maj.Explain(stalledID)
	if !ex.Known || ex.Delivered {
		t.Fatalf("Explain: Known=%v Delivered=%v, want known+undelivered", ex.Known, ex.Delivered)
	}
	if !ex.Stalled() {
		t.Fatal("Explain: Stalled() = false for a known undelivered message")
	}
	if ex.Ackers != 2 || ex.Need != 3 {
		t.Fatalf("Explain: ackers %d/%d, want 2/3", ex.Ackers, ex.Need)
	}
	rep := ex.String()
	if !strings.Contains(rep, "NOT delivered") ||
		!strings.Contains(rep, "2/3 distinct tag_acks") ||
		!strings.Contains(rep, "missing 1 acker(s)") {
		t.Fatalf("Explain report does not name the missing evidence:\n%s", rep)
	}
}

func TestMajorityExplainUnknownAndDelivered(t *testing.T) {
	tags := tagsFor(7, 1)
	maj := NewMajority(1, tags[0], Config{})
	unknown := wire.MsgID{Tag: ident.Tag{Hi: 1, Lo: 2}, Body: "?"}
	ex := maj.Explain(unknown)
	if ex.Known || ex.Stalled() {
		t.Fatalf("unknown message reported Known=%v Stalled=%v", ex.Known, ex.Stalled())
	}
	if !strings.Contains(ex.String(), "unknown here") {
		t.Fatalf("unknown report: %s", ex.String())
	}

	// n=1: loop the MSG back to pin our tag_ack, then loop the ACK back —
	// one distinct tag_ack meets the n=1 majority.
	id, _ := maj.Broadcast([]byte("solo"))
	for _, m := range maj.Receive(wire.NewMsg(id)).Broadcasts {
		maj.Receive(m)
	}
	ex = maj.Explain(id)
	if !ex.Delivered {
		t.Fatalf("n=1 broadcast not delivered; explain: %s", ex)
	}
	if ex.Stalled() {
		t.Fatal("delivered message reported stalled")
	}
}

// TestQuiescentExplainNamesMissingEvidence drives Algorithm 2 into a
// stall where one AΘ pair is half-satisfied and the other untouched,
// then checks Explain reports both gaps with exact counts.
func TestQuiescentExplainNamesMissingEvidence(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 2}, fd.Pair{Label: lbl(2), Number: 2})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	// One acker claims lbl(1): 1/2 on the first pair, 0/2 on the second.
	if s := p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)})); len(s.Deliveries) != 0 {
		t.Fatal("premature delivery")
	}
	ex := p.Explain(id)
	if !ex.Known || ex.Delivered || !ex.Stalled() {
		t.Fatalf("Known=%v Delivered=%v", ex.Known, ex.Delivered)
	}
	if ex.Ackers != 1 {
		t.Fatalf("ackers = %d, want 1", ex.Ackers)
	}
	if len(ex.Gaps) != 2 {
		t.Fatalf("gaps = %v, want one per AΘ pair", ex.Gaps)
	}
	byLabel := map[ident.Tag]int{}
	for _, g := range ex.Gaps {
		if g.Need != 2 || !g.Short() {
			t.Fatalf("gap %v should be short of 2", g)
		}
		byLabel[g.Label] = g.Have
	}
	if byLabel[lbl(1)] != 1 || byLabel[lbl(2)] != 0 {
		t.Fatalf("claim counts per label: %v", byLabel)
	}
	s := ex.String()
	if !strings.Contains(s, "NOT delivered") || !strings.Contains(s, "1/2 claims") ||
		!strings.Contains(s, "0/2 claims") || !strings.Contains(s, "SHORT") {
		t.Fatalf("report does not name the gaps:\n%s", s)
	}
}

// TestQuiescentExplainRetirement checks the delivered-but-not-retired
// report: AP* shortfalls and stray acker labels both surface.
func TestQuiescentExplainRetirement(t *testing.T) {
	v := fd.Normalize(fd.View{{Label: lbl(1), Number: 1}, {Label: lbl(2), Number: 2}})
	det := fd.Static{Theta: v.Clone(), Star: v.Clone()}
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 3, Lo: 3}, Body: "m"}
	p.Receive(wire.NewMsg(id))
	// One claim on lbl(1) closes the (lbl(1),1) AΘ pair → deliver. The
	// acker also claims lbl(7), which is outside AP*.
	s := p.Receive(wire.NewLabeledAck(id, lbl(200), []ident.Tag{lbl(1), lbl(7)}))
	if len(s.Deliveries) != 1 {
		t.Fatalf("expected delivery, got %v", s.Deliveries)
	}
	ex := p.Explain(id)
	if !ex.Delivered || ex.Retired {
		t.Fatalf("Delivered=%v Retired=%v, want delivered unretired", ex.Delivered, ex.Retired)
	}
	if len(ex.RetireGaps) != 2 {
		t.Fatalf("retire gaps %v, want one per AP* pair", ex.RetireGaps)
	}
	var short, ok int
	for _, g := range ex.RetireGaps {
		if g.Short() {
			short++
		} else {
			ok++
		}
	}
	if short != 1 || ok != 1 {
		t.Fatalf("retire gaps %v: want (lbl2) short and (lbl1) closed", ex.RetireGaps)
	}
	if len(ex.StrayLabels) != 1 || ex.StrayLabels[0] != lbl(7) {
		t.Fatalf("stray labels %v, want [lbl(7)]", ex.StrayLabels)
	}
	rep := ex.String()
	if !strings.Contains(rep, "retirement guard") || !strings.Contains(rep, "outside AP* view") {
		t.Fatalf("retirement report:\n%s", rep)
	}
}

// TestHeartbeatHostExplainForwards checks the host forwards Explain to
// the wrapped algorithm.
func TestHeartbeatHostExplainForwards(t *testing.T) {
	h := NewHeartbeatHost(ident.NewSource(xrand.New(11)), 100, 2, func() int64 { return 0 }, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 5, Lo: 5}, Body: "m"}
	h.Receive(wire.NewMsg(id))
	ex := h.Explain(id)
	if ex.Algo != "quiescent" || !ex.Known || ex.Delivered {
		t.Fatalf("host explain: %+v", ex)
	}
}
