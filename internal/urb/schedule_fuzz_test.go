package urb

import (
	"fmt"
	"testing"

	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// chaosNet is a randomized adversarial scheduler: it holds in-flight
// copies and, step by step, randomly delivers, drops (within a budget),
// duplicates delivery order arbitrarily, ticks random processes and
// crashes processes (within a budget). It then "heals": remaining copies
// are delivered and ticks run in rounds until the system converges. The
// URB properties must hold on every generated schedule — this is the
// probabilistic complement of the bounded-exhaustive checker in
// internal/explore.
type chaosNet struct {
	t       *testing.T
	rng     *xrand.Source
	procs   []Process
	crashed []bool
	flight  []chaosCopy
	// deliveries[p][id] counts deliveries for the integrity check.
	deliveries []map[wire.MsgID]int
	dropBudget int
}

type chaosCopy struct {
	dst int
	msg wire.Message
}

func newChaosNet(t *testing.T, rng *xrand.Source, procs []Process, dropBudget int) *chaosNet {
	c := &chaosNet{
		t: t, rng: rng, procs: procs,
		crashed:    make([]bool, len(procs)),
		deliveries: make([]map[wire.MsgID]int, len(procs)),
		dropBudget: dropBudget,
	}
	for i := range c.deliveries {
		c.deliveries[i] = map[wire.MsgID]int{}
	}
	return c
}

func (c *chaosNet) absorb(p int, s Step) {
	for _, d := range s.Deliveries {
		c.deliveries[p][d.ID]++
		if c.deliveries[p][d.ID] > 1 {
			c.t.Fatalf("uniform integrity: p%d delivered %v twice", p, d.ID)
		}
	}
	for _, m := range s.Broadcasts {
		for dst := range c.procs {
			c.flight = append(c.flight, chaosCopy{dst: dst, msg: m})
		}
	}
}

func (c *chaosNet) broadcast(p int, body string) wire.MsgID {
	id, s := c.procs[p].Broadcast([]byte(body))
	c.absorb(p, s)
	return id
}

// chaos runs `steps` random scheduler actions.
func (c *chaosNet) chaos(steps int) {
	for i := 0; i < steps; i++ {
		switch c.rng.Intn(10) {
		case 0, 1, 2, 3, 4: // deliver a random in-flight copy
			if len(c.flight) == 0 {
				continue
			}
			k := c.rng.Intn(len(c.flight))
			cp := c.flight[k]
			c.flight = append(c.flight[:k], c.flight[k+1:]...)
			if !c.crashed[cp.dst] {
				c.absorb(cp.dst, c.procs[cp.dst].Receive(cp.msg))
			}
		case 5, 6: // drop a random copy (fair lossy: budgeted)
			if len(c.flight) == 0 || c.dropBudget <= 0 {
				continue
			}
			c.dropBudget--
			k := c.rng.Intn(len(c.flight))
			c.flight = append(c.flight[:k], c.flight[k+1:]...)
		default: // tick a random live process
			p := c.rng.Intn(len(c.procs))
			if !c.crashed[p] {
				c.absorb(p, c.procs[p].Tick())
			}
		}
		// Bound the buffer so ACK storms cannot blow up the test: excess
		// copies are dropped from the front (more loss, still legal).
		if len(c.flight) > 4096 {
			c.flight = c.flight[len(c.flight)-4096:]
		}
	}
}

// crash kills a process mid-chaos.
func (c *chaosNet) crash(p int) { c.crashed[p] = true }

// heal delivers everything and runs tick/flush rounds until no traffic
// remains, modelling the fair-lossy guarantee that retransmission
// eventually succeeds.
func (c *chaosNet) heal(rounds int) {
	for r := 0; r < rounds; r++ {
		for len(c.flight) > 0 {
			cp := c.flight[0]
			c.flight = c.flight[1:]
			if !c.crashed[cp.dst] {
				c.absorb(cp.dst, c.procs[cp.dst].Receive(cp.msg))
			}
		}
		for p, proc := range c.procs {
			if !c.crashed[p] {
				c.absorb(p, proc.Tick())
			}
		}
	}
	for len(c.flight) > 0 {
		cp := c.flight[0]
		c.flight = c.flight[1:]
		if !c.crashed[cp.dst] {
			c.absorb(cp.dst, c.procs[cp.dst].Receive(cp.msg))
		}
	}
}

// checkAgreement verifies that every message delivered anywhere was
// delivered by every live process, and validity for live broadcasters.
func (c *chaosNet) checkAgreement(obliged map[wire.MsgID]int) {
	everDelivered := map[wire.MsgID]bool{}
	for _, ds := range c.deliveries {
		for id := range ds {
			everDelivered[id] = true
		}
	}
	for id, origin := range obliged {
		if !c.crashed[origin] {
			everDelivered[id] = true // validity obligation
		}
	}
	for id := range everDelivered {
		for p := range c.procs {
			if c.crashed[p] {
				continue
			}
			if c.deliveries[p][id] != 1 {
				c.t.Fatalf("agreement/validity: p%d delivered %v %d times (seed case)",
					p, id, c.deliveries[p][id])
			}
		}
	}
}

func TestMajorityRandomSchedules(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := xrand.New(uint64(trial)*7919 + 3)
			n := 3 + rng.Intn(3) // 3..5
			tags := tagsFor(uint64(trial)+500, n)
			procs := make([]Process, n)
			for i := range procs {
				procs[i] = NewMajority(n, tags[i], Config{})
			}
			c := newChaosNet(t, rng, procs, 200)

			obliged := map[wire.MsgID]int{}
			writers := 1 + rng.Intn(2)
			for w := 0; w < writers; w++ {
				id := c.broadcast(w, fmt.Sprintf("m%d", w))
				obliged[id] = w
			}
			c.chaos(300)
			// Crash a strict minority at a random point.
			crashes := rng.Intn((n - 1) / 2 * 2) // 0..t, t = max minority... bounded below
			if max := (n - 1) / 2; crashes > max {
				crashes = max
			}
			for k := 0; k < crashes; k++ {
				c.crash(n - 1 - k)
			}
			c.chaos(300)
			c.heal(4)
			c.checkAgreement(obliged)
		})
	}
}

func TestQuiescentRandomSchedules(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := xrand.New(uint64(trial)*104729 + 11)
			n := 3 + rng.Intn(3)
			// Any number of crashes up to n-1: Algorithm 2's whole point.
			crashes := rng.Intn(n)
			// The static views mirror the oracle's post-GST output for
			// the survivors.
			labels := make([]ident.Tag, n)
			for i := range labels {
				labels[i] = ident.Tag{Hi: uint64(trial)*100 + uint64(i) + 1, Lo: 3}
			}
			nCorrect := n - crashes
			view := fd.View{}
			for i := 0; i < nCorrect; i++ {
				view = append(view, fd.Pair{Label: labels[i], Number: nCorrect})
			}
			view = fd.Normalize(view)

			tags := tagsFor(uint64(trial)+900, n)
			procs := make([]Process, n)
			for i := range procs {
				// The audience invariant (DESIGN.md §2): survivors see the
				// survivor labels; a process that will crash sees only its
				// own label (its frozen ACKs must not impersonate correct
				// processes in anyone's retirement guard).
				var det fd.Static
				if i < nCorrect {
					det = fd.Static{Theta: view.Clone(), Star: view.Clone()}
				} else {
					self := fd.Normalize(fd.View{{Label: labels[i], Number: 2}})
					det = fd.Static{Theta: self, Star: self.Clone()}
				}
				procs[i] = NewQuiescent(det, tags[i], Config{})
			}
			c := newChaosNet(t, rng, procs, 200)

			obliged := map[wire.MsgID]int{}
			id := c.broadcast(0, "survivor-msg")
			obliged[id] = 0
			c.chaos(200)
			for k := 0; k < crashes; k++ {
				c.crash(n - 1 - k)
			}
			c.chaos(200)
			c.heal(5)
			c.checkAgreement(obliged)

			// Quiescence: after healing, every live process must have
			// retired everything and ticks must emit nothing.
			for p, proc := range c.procs {
				if c.crashed[p] {
					continue
				}
				if s := proc.Tick(); len(s.Broadcasts) != 0 {
					t.Fatalf("p%d not quiescent after convergence", p)
				}
			}
		})
	}
}
