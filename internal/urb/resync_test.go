package urb

import "testing"

// TestResyncBudgetPacing pins the D9 pacing contract: with PaceResyncs
// off the budget never denies (the paper has no resync traffic to
// pace), and with it on each frame family gets exactly
// ResyncBudgetPerTick grants per tick, refreshed when the tick
// advances — a denied stream is not remembered, it simply competes
// again next tick.
func TestResyncBudgetPacing(t *testing.T) {
	if lim := (Config{}).resyncLimit(); lim != 0 {
		t.Fatalf("paper-faithful zero Config paces resyncs: limit %d", lim)
	}
	if lim := (Config{PaceResyncs: true}).resyncLimit(); lim != ResyncBudgetPerTick {
		t.Fatalf("paced limit %d, want %d", lim, ResyncBudgetPerTick)
	}

	var free resyncBudget
	for i := 0; i < 10*ResyncBudgetPerTick; i++ {
		if !free.take(0, 1) {
			t.Fatal("unlimited budget denied a request")
		}
	}

	var paced resyncBudget
	lim := ResyncBudgetPerTick
	for i := 0; i < lim; i++ {
		if !paced.take(lim, 5) {
			t.Fatalf("request %d denied under budget", i)
		}
	}
	if paced.take(lim, 5) {
		t.Fatal("request beyond the per-tick budget granted")
	}
	if !paced.take(lim, 6) {
		t.Fatal("fresh tick did not refresh the budget")
	}
	// Ticks need not be consecutive — only different — so recovery
	// after a quiet stretch starts with a full allowance.
	for i := 0; i < lim-1; i++ {
		paced.take(lim, 6)
	}
	if paced.take(lim, 6) {
		t.Fatal("budget leaked across a single tick")
	}
	if !paced.take(lim, 100) {
		t.Fatal("budget did not reset after a tick jump")
	}
}
