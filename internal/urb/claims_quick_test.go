package urb

import (
	"testing"
	"testing/quick"

	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// TestQuiescentClaimsConsistencyQuick is the property-based test of the
// D1 bookkeeping: after ANY sequence of (possibly repeated, refreshed,
// shrunk) ACKs, the derived claim counters must equal the reference
// computed from scratch — claims[ℓ] = |{ackers whose latest set ∋ ℓ}|.
func TestQuiescentClaimsConsistencyQuick(t *testing.T) {
	// An op encodes (acker index 0..7, label bitmap over 5 labels).
	type op struct {
		Acker  uint8
		Labels uint8
	}
	labels := make([]ident.Tag, 5)
	for i := range labels {
		labels[i] = ident.Tag{Hi: uint64(i) + 1, Lo: 50}
	}
	ackers := make([]ident.Tag, 8)
	for i := range ackers {
		ackers[i] = ident.Tag{Hi: uint64(i) + 100, Lo: 60}
	}
	id := wire.MsgID{Tag: ident.Tag{Hi: 999, Lo: 1}, Body: "prop"}
	// A detector with huge numbers so nothing ever delivers or retires:
	// pure bookkeeping.
	var never fd.View
	for _, l := range labels {
		never = append(never, fd.Pair{Label: l, Number: 1 << 30})
	}
	never = fd.Normalize(never)

	f := func(ops []op) bool {
		p := NewQuiescent(fd.Static{Theta: never, Star: never}, ident.NewSource(xrand.New(1)), Config{})
		latest := map[ident.Tag]uint8{} // reference: acker → latest bitmap
		for _, o := range ops {
			acker := ackers[int(o.Acker)%len(ackers)]
			bitmap := o.Labels & 0x1f
			var set []ident.Tag
			for b := 0; b < 5; b++ {
				if bitmap&(1<<b) != 0 {
					set = append(set, labels[b])
				}
			}
			p.Receive(wire.NewLabeledAck(id, acker, set))
			latest[acker] = bitmap
		}
		// Reference counts from scratch.
		for b, l := range labels {
			want := 0
			for _, bm := range latest {
				if bm&(1<<b) != 0 {
					want++
				}
			}
			if got := p.Claims(id, l); got != want {
				t.Logf("label %d: got %d want %d (ops=%v)", b, got, want, ops)
				return false
			}
		}
		return p.Ackers(id) == len(latest)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestMajorityAckSetConsistencyQuick: the distinct-acker count equals the
// reference for any sequence of (possibly duplicated) ACKs across
// multiple messages.
func TestMajorityAckSetConsistencyQuick(t *testing.T) {
	type op struct {
		Msg   uint8
		Acker uint8
	}
	ids := make([]wire.MsgID, 4)
	for i := range ids {
		ids[i] = wire.MsgID{Tag: ident.Tag{Hi: uint64(i) + 1, Lo: 70}, Body: "q"}
	}
	ackers := make([]ident.Tag, 16)
	for i := range ackers {
		ackers[i] = ident.Tag{Hi: uint64(i) + 200, Lo: 80}
	}
	f := func(ops []op) bool {
		// Threshold beyond reach: pure bookkeeping.
		p := NewMajorityThreshold(64, 64, ident.NewSource(xrand.New(2)), Config{})
		ref := map[wire.MsgID]map[ident.Tag]bool{}
		for _, o := range ops {
			id := ids[int(o.Msg)%len(ids)]
			ack := ackers[int(o.Acker)%len(ackers)]
			p.Receive(wire.NewAck(id, ack))
			if ref[id] == nil {
				ref[id] = map[ident.Tag]bool{}
			}
			ref[id][ack] = true
		}
		for _, id := range ids {
			if p.AckCount(id) != len(ref[id]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuiescentPurgeIdempotentQuick: purging stale labels twice changes
// nothing the second time, for arbitrary ACK histories (purge runs on
// every tick, so idempotence matters).
func TestQuiescentPurgeIdempotentQuick(t *testing.T) {
	labels := make([]ident.Tag, 6)
	for i := range labels {
		labels[i] = ident.Tag{Hi: uint64(i) + 1, Lo: 90}
	}
	// Views keep only even labels; odd labels are stale and get purged.
	kept := fd.Normalize(fd.View{
		{Label: labels[0], Number: 1 << 30},
		{Label: labels[2], Number: 1 << 30},
		{Label: labels[4], Number: 1 << 30},
	})
	id := wire.MsgID{Tag: ident.Tag{Hi: 7, Lo: 7}, Body: "purge"}

	f := func(bitmaps []uint8) bool {
		p := NewQuiescent(fd.Static{Theta: kept, Star: kept}, ident.NewSource(xrand.New(3)), Config{})
		for i, bm := range bitmaps {
			var set []ident.Tag
			for b := 0; b < 6; b++ {
				if bm&(1<<b) != 0 {
					set = append(set, labels[b])
				}
			}
			acker := ident.Tag{Hi: uint64(i) + 300, Lo: 91}
			p.Receive(wire.NewLabeledAck(id, acker, set))
		}
		p.Tick() // first purge
		snapshot := make([]int, 6)
		for b, l := range labels {
			snapshot[b] = p.Claims(id, l)
		}
		// Stale (odd) labels must be gone.
		if snapshot[1] != 0 || snapshot[3] != 0 || snapshot[5] != 0 {
			return false
		}
		p.Tick() // second purge must be a no-op for claims
		for b, l := range labels {
			if p.Claims(id, l) != snapshot[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
