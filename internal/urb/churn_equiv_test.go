package urb

// Randomized churn equivalence: a cluster that experiences a mid-run
// JOIN (a real chunked snapshot transfer, through the wire codec, under
// chunk loss) and a late LEAVE must reach the same deliveries/claims
// fixpoint as a cluster whose final membership ran uninterrupted from
// the start — and the joiner must never re-deliver adopted history.
// Same two-phase technique as TestQuiescentCrashRecoverEquivalence:
// settle to the AΘ fixpoint with retirement off, compare, then reveal
// AP* and require the identical retirement endgame (DESIGN.md §13).

import (
	"fmt"
	"testing"

	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/snapxfer"
	"anonurb/internal/store"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// churnCluster is the recCluster shape with membership churn: slots may
// be absent (not yet joined) or left (fallen silent), and deliveries
// may be chaos-dropped while lossy is set — Task 1's retransmission is
// what makes the fixpoint loss-independent.
type churnCluster struct {
	procs []*Quiescent
	// absent slots have no process yet; left slots fell silent.
	absent []bool
	left   []bool
	queues [][]wire.Message
	theta  fd.View
	star   fd.View
	det    fd.Detector
	cfg    Config
	lossy  bool
	loss   *xrand.Source
	// delivered counts every Step-observed delivery per proc and body:
	// the re-delivery ledger (adoption is not a Step delivery).
	delivered []map[string]int
}

func newChurnCluster(n int, seed uint64, cfg Config, theta fd.View, absentLast bool) *churnCluster {
	c := &churnCluster{
		queues:    make([][]wire.Message, n),
		absent:    make([]bool, n),
		left:      make([]bool, n),
		theta:     theta,
		cfg:       cfg,
		loss:      xrand.SplitLabeled(seed, "churn-loss"),
		delivered: make([]map[string]int, n),
	}
	c.det = &fd.Func{
		ThetaFn: func() fd.View { return c.theta },
		StarFn:  func() fd.View { return c.star },
	}
	for i := 0; i < n; i++ {
		c.procs = append(c.procs, NewQuiescent(c.det, ident.NewSource(xrand.New(seed+uint64(i)*7919)), cfg))
		c.delivered[i] = make(map[string]int)
	}
	if absentLast {
		c.absent[n-1] = true
	}
	return c
}

// live reports whether slot i currently runs a participating process.
func (c *churnCluster) live(i int) bool { return !c.absent[i] && !c.left[i] }

func (c *churnCluster) absorb(i int, s Step) {
	for _, d := range s.Deliveries {
		c.delivered[i][d.ID.Body]++
	}
	for _, m := range s.Broadcasts {
		for j := range c.queues {
			if c.live(j) {
				c.queues[j] = append(c.queues[j], m)
			}
		}
	}
}

func (c *churnCluster) deliverOne(i int) {
	if !c.live(i) || len(c.queues[i]) == 0 {
		return
	}
	m := c.queues[i][0]
	c.queues[i] = c.queues[i][1:]
	if c.lossy && c.loss.Uint64()%5 == 0 {
		return // 20% chaos loss: the channel ate it
	}
	c.absorb(i, c.procs[i].Receive(m))
}

func (c *churnCluster) tick(i int) {
	if c.live(i) {
		c.absorb(i, c.procs[i].Tick())
	}
}

// leave drops slot i from the cluster: no farewell on the wire, its
// queued frames die with it — indistinguishable from a crash, exactly
// the leave semantics DESIGN.md §13 specifies.
func (c *churnCluster) leave(i int) {
	c.left[i] = true
	c.queues[i] = nil
}

// join bootstraps slot i through the real transfer machinery: the donor
// chunks its container under a frame budget, every chunk crosses the
// wire codec and may be chaos-dropped, and the assembler re-requests
// its lowest gap until the container verifies — then Restore + Adopt.
func (c *churnCluster) join(t *testing.T, i, donor int, seed uint64) {
	t.Helper()
	container := store.EncodeSnapshotFile(c.procs[donor].Snapshot())
	d := snapxfer.NewDonor(container, 256)
	asm := snapxfer.NewAssembler()
	for round := 0; !asm.Done(); round++ {
		if round > 4096 {
			t.Fatal("chunked transfer never completed under loss")
		}
		req := asm.Request()
		for _, chunk := range d.Serve(req.Off, 4) {
			if c.loss.Uint64()%5 == 0 {
				continue // chunk lost: resumability must cover it
			}
			m, rest, err := wire.DecodePrefix(chunk.Encode(nil))
			if err != nil || len(rest) != 0 {
				t.Fatalf("chunk round-trip: %v (rest %d)", err, len(rest))
			}
			asm.Offer(m)
		}
	}
	got := asm.Bytes()
	if len(got) != len(container) {
		t.Fatalf("assembled %d bytes, want %d", len(got), len(container))
	}
	payload, err := store.ParseSnapshotFile(got)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySnapshot(payload); err != nil {
		t.Fatal(err)
	}
	p := NewQuiescent(c.det, ident.NewSource(xrand.New(seed)), c.cfg)
	if err := p.Restore(payload); err != nil {
		t.Fatalf("joiner restore: %v", err)
	}
	p.Adopt()
	c.procs[i] = p
	c.absent[i] = false
}

func (c *churnCluster) settle(rounds int) {
	for r := 0; r < rounds; r++ {
		for i := range c.procs {
			c.tick(i)
		}
		for i := range c.procs {
			for c.live(i) && len(c.queues[i]) > 0 {
				c.deliverOne(i)
			}
		}
	}
}

func (c *churnCluster) drain(t *testing.T, name string) {
	t.Helper()
	for round := 0; round < 400; round++ {
		for i := range c.procs {
			for c.live(i) && len(c.queues[i]) > 0 {
				c.deliverOne(i)
			}
		}
		sent := 0
		for i := range c.procs {
			if !c.live(i) {
				continue
			}
			s := c.procs[i].Tick()
			sent += len(s.Broadcasts)
			c.absorb(i, s)
		}
		if sent == 0 {
			empty := true
			for i := range c.procs {
				if c.live(i) && len(c.queues[i]) > 0 {
					empty = false
					break
				}
			}
			if empty {
				return
			}
		}
	}
	t.Fatalf("%s cluster did not quiesce within the drain budget", name)
}

// compareChurnClusters checks the live intersection of both clusters
// for identical delivered sets, retirement and claims (same contract as
// compareRecClusters; tags are not compared — the joiner acks under
// fresh pins by design).
func compareChurnClusters(t *testing.T, phase string, base, churny *churnCluster, msgs int) {
	t.Helper()
	for i := range base.procs {
		if !churny.live(i) || !base.live(i) {
			continue
		}
		bp, cp := base.procs[i], churny.procs[i]
		bDel, cDel := deliveredBodies(bp), deliveredBodies(cp)
		if len(bDel) != msgs || len(cDel) != msgs {
			t.Fatalf("%s: p%d delivered base=%d churny=%d, want %d", phase, i, len(bDel), len(cDel), msgs)
		}
		for b := range bDel {
			if !cDel[b] {
				t.Fatalf("%s: p%d: churn cluster missed delivery of %q", phase, i, b)
			}
		}
		if br, cr := bp.RetiredCount(), cp.RetiredCount(); br != cr {
			t.Fatalf("%s: p%d retirement diverged: base=%d churny=%d", phase, i, br, cr)
		}
		bc, cc := claimsByLabel(bp), claimsByLabel(cp)
		if len(bc) != len(cc) {
			t.Fatalf("%s: p%d tracks %d vs %d messages", phase, i, len(bc), len(cc))
		}
		for body, bm := range bc {
			cm, ok := cc[body]
			if !ok {
				t.Fatalf("%s: p%d: no ACK state for %q after churn", phase, i, body)
			}
			if len(bm) != len(cm) {
				t.Fatalf("%s: p%d %q: claim label sets differ: base=%v churny=%v", phase, i, body, bm, cm)
			}
			for l, cnt := range bm {
				if cm[l] != cnt {
					t.Fatalf("%s: p%d %q: claims[%s] base=%d churny=%d", phase, i, body, l, cnt, cm[l])
				}
			}
		}
	}
}

// TestQuiescentChurnEquivalence drives randomized schedules with 20%
// chaos loss through two clusters: base runs the final membership from
// the start; churny starts one process short, JOINs it mid-run through
// a real chunked snapshot transfer (itself under chunk loss), and after
// the fixpoint compare a founder LEAVEs churny without a word. The
// fixpoint and the retirement endgame must match on every process both
// clusters share — and the joiner must never re-deliver a body its
// adopted state already delivered. Runs under both ACK encodings.
func TestQuiescentChurnEquivalence(t *testing.T) {
	for _, delta := range []bool{false, true} {
		for seed := uint64(1); seed <= 3; seed++ {
			delta, seed := delta, seed
			t.Run(fmt.Sprintf("delta=%v/seed=%d", delta, seed), func(t *testing.T) {
				rng := xrand.New(seed * 0x5bd1e995)
				nFound := 3 + int(rng.Uint64()%2) // founders
				n := nFound + 1                   // final membership
				msgs := 4 + int(rng.Uint64()%3)
				preMsgs := 1 + int(rng.Uint64()%2) // broadcast before the join
				cfg := Config{
					CheckOnTick:      rng.Uint64()%2 == 0,
					RetireBeforeSend: rng.Uint64()%2 == 0,
					DeltaAcks:        delta,
				}
				// Delivery needs nFound claims per label: satisfiable both
				// before and after the join, so pre-join history is
				// delivered (and adopted as such) in both clusters.
				view := fd.Normalize(fd.View{
					{Label: lbl(1), Number: nFound},
					{Label: lbl(2), Number: nFound},
				})

				base := newChurnCluster(n, seed, cfg, view.Clone(), false)
				churny := newChurnCluster(n, seed, cfg, view.Clone(), true)
				base.lossy, churny.lossy = true, true

				sent := 0
				phase := func(steps, until, bcastPool int) {
					for step := 0; step < steps; step++ {
						switch op := rng.Uint64() % 10; {
						case op < 5:
							i := int(rng.Uint64() % uint64(n))
							base.deliverOne(i)
							churny.deliverOne(i)
						case op < 8:
							i := int(rng.Uint64() % uint64(n))
							base.tick(i)
							churny.tick(i)
						default:
							if sent >= until {
								continue
							}
							i := int(rng.Uint64() % uint64(bcastPool))
							body := []byte(fmt.Sprintf("m%d", sent))
							sent++
							_, s := base.procs[i].Broadcast(body)
							base.absorb(i, s)
							_, s2 := churny.procs[i].Broadcast(body)
							churny.absorb(i, s2)
						}
					}
					for ; sent < until; sent++ {
						body := []byte(fmt.Sprintf("m%d", sent))
						_, s := base.procs[0].Broadcast(body)
						base.absorb(0, s)
						_, s2 := churny.procs[0].Broadcast(body)
						churny.absorb(0, s2)
					}
				}

				// Phase A: founders only; the joiner's slot is empty in
				// churny (base's n-1 participates — it IS the membership
				// churny is heading for).
				phase(120+int(rng.Uint64()%80), preMsgs, nFound)
				// Let churny's founders reach a state where pre-join
				// history is delivered, so adoption is non-trivial (the
				// fair-lossy channel pauses: retransmission got through).
				base.lossy, churny.lossy = false, false
				churny.settle(4)
				base.settle(4)

				// JOIN: real chunked transfer from a random founder.
				donor := int(rng.Uint64() % uint64(nFound))
				churny.join(t, n-1, donor, seed+uint64(n-1)*7919)
				adopted := deliveredBodies(churny.procs[n-1])
				if len(adopted) < preMsgs {
					t.Fatalf("adopted only %d bodies, want at least %d", len(adopted), preMsgs)
				}

				// Phase B: full membership on both sides, loss back on.
				base.lossy, churny.lossy = true, true
				phase(120+int(rng.Uint64()%80), msgs, n)

				// Phase 1 fixpoint: lossless settle, then compare.
				base.lossy, churny.lossy = false, false
				base.settle(8)
				churny.settle(8)
				compareChurnClusters(t, "fixpoint", base, churny, msgs)

				// Zero re-deliveries at the joiner: nothing its adopted
				// state delivered may surface as a Step delivery, and
				// nothing anywhere is delivered twice.
				for body := range adopted {
					if got := churny.delivered[n-1][body]; got != 0 {
						t.Fatalf("joiner re-delivered adopted %q %d times", body, got)
					}
				}
				for i := range churny.procs {
					for body, cnt := range churny.delivered[i] {
						if cnt > 1 {
							t.Fatalf("churny p%d delivered %q %d times", i, body, cnt)
						}
					}
				}

				// LEAVE: a founder falls silent in churny only. Its ACK
				// evidence is already at the fixpoint everywhere, so the
				// survivors' endgame must match base's exactly.
				churny.leave(int(rng.Uint64() % uint64(nFound)))

				// Phase 2 endgame: AP* revealed, both clusters retire
				// everything and fall silent — D4-style forgetting of the
				// leaver costs the survivors nothing.
				base.star = view.Clone()
				churny.star = view.Clone()
				base.drain(t, "uninterrupted")
				churny.drain(t, "churn")
				compareChurnClusters(t, "quiescence", base, churny, msgs)
				for i := range churny.procs {
					if !churny.live(i) {
						continue
					}
					if got := churny.procs[i].RetiredCount(); got != msgs {
						t.Fatalf("churny p%d retired %d/%d after AP* reveal", i, got, msgs)
					}
				}
			})
		}
	}
}
