package urb

import (
	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/wire"
)

// Quiescent is Algorithm 2: quiescent uniform reliable broadcast in
// AAS_F[n,t | AΘ, AP*] — any number of processes may crash, and
// eventually no process sends any message.
//
// Mechanics (Section VI): MSG dissemination and per-message pinned
// tag_acks work as in Algorithm 1, but each ACK additionally carries the
// label set the acker currently reads from its AΘ module:
//
//	(ACK, m, tag, tag_ack, labels)
//
// For every message the receiver maintains, per acker (tag_ack), the
// label set from that acker's latest ACK, and derives
//
//	claims[label] = number of distinct ackers whose latest ACK claims label.
//
// Delivery guard (paper line 46): m is URB-deliverable once some
// (label, number) pair in the local AΘ view satisfies
// claims[label] >= number. Safety: the ackers claiming label form a
// subset of S(label), and AΘ-accuracy guarantees any number-sized subset
// of S(label) contains a correct process — so a correct process has
// received m and will retransmit it forever (until retirement).
//
// Retirement guard (paper line 55): a delivered message is deleted from
// the retransmission set MSG_i once, for every (label, number) pair in
// the local AP* view, claims[label] >= number, and no acker still claims
// a label outside the AP* view. Post-GST the AP* view is exactly the
// correct processes' labels with number = |Correct|, and — because the
// failure detector only reveals a label to its owner and to correct
// processes — the claimants of a correct label are correct processes, so
// the guard certifies that every correct process has ACKed (hence
// received) m. Every correct process therefore delivers m on its own
// evidence, and retransmission can stop: the algorithm is quiescent.
//
// Deviations D1-D4 from the garbled published listing are documented in
// DESIGN.md §2 and at the relevant code below.
type Quiescent struct {
	common
	det fd.Detector
	// per-message ACK bookkeeping, insertion-ordered for determinism.
	acks     map[wire.MsgID]*ackState
	ackOrder []wire.MsgID
	retired  int
}

// ackState is the paper's ALL_ACK / all_labels / label_counter bundle for
// one message.
type ackState struct {
	// byAcker maps tag_ack → label set of that acker's latest ACK
	// (the paper's all_labels[(m,tag), tag_ack]).
	byAcker map[ident.Tag]*ident.Set
	// ackerOrder is the first-seen order of tag_acks.
	ackerOrder []ident.Tag
	// claims maps label → number of ackers currently claiming it
	// (the paper's label_counter[(m,tag), label]).
	claims map[ident.Tag]int
}

func newAckState() *ackState {
	return &ackState{
		byAcker: make(map[ident.Tag]*ident.Set),
		claims:  make(map[ident.Tag]int),
	}
}

// bump increments a label's claim count.
func (a *ackState) bump(label ident.Tag) {
	a.claims[label]++
}

// drop decrements a label's claim count, deleting the entry at zero —
// a missing key reads as 0 everywhere, and keeping it would leak one
// map key per dead label forever (the same monotonic growth the D4
// acker drop exists to stop).
func (a *ackState) drop(label ident.Tag) {
	switch c := a.claims[label]; {
	case c > 1:
		a.claims[label] = c - 1
	case c == 1:
		delete(a.claims, label)
	}
}

// update applies the latest ACK from one acker with *replacement*
// semantics (deviation D1): labels newly claimed are counted up, labels
// no longer claimed are counted down. This realises the paper's cases
// "repeated ACK with more labels" (lines 34-37) and "repeated ACK with
// fewer labels" (lines 38-44) in one well-defined rule. Returns true if
// the acker is new.
func (a *ackState) update(acker ident.Tag, labels []ident.Tag) bool {
	cur, known := a.byAcker[acker]
	if !known {
		s := ident.NewSet()
		for _, l := range labels {
			if s.Add(l) {
				a.bump(l)
			}
		}
		a.byAcker[acker] = s
		a.ackerOrder = append(a.ackerOrder, acker)
		return true
	}
	next := ident.NewSet(labels...)
	// Count up the additions.
	for _, l := range next.Slice() {
		if !cur.Has(l) {
			a.bump(l)
		}
	}
	// Count down the removals.
	for _, l := range cur.Slice() {
		if !next.Has(l) {
			a.drop(l)
		}
	}
	a.byAcker[acker] = next
	return false
}

// purge removes every claimed label for which keep returns false
// (deviation D4: stale labels of crashed processes frozen inside ACKs
// from ackers that will never refresh — e.g. the crashed process's own
// ACK — would otherwise block the retirement guard forever). Safe
// because AP* perpetually contains every correct process's label, so a
// label absent from both current views can only belong to a crashed
// process.
//
// Ackers whose label set the purge empties are dropped entirely: an
// empty set contributes nothing to any claim count, passes every
// subset check, and would never be refreshed (its owner is crashed) —
// keeping the entry would only grow byAcker/ackerOrder monotonically
// and tax every retireReady scan with dead ackers forever. If the
// acker was wrongly suspected and re-ACKs later, update re-admits it
// as a fresh acker with identical claim accounting.
func (a *ackState) purge(keep func(ident.Tag) bool) {
	kept := a.ackerOrder[:0]
	for _, acker := range a.ackerOrder {
		set := a.byAcker[acker]
		for _, l := range append([]ident.Tag(nil), set.Slice()...) {
			if !keep(l) {
				set.Remove(l)
				a.drop(l)
			}
		}
		if set.Len() == 0 {
			delete(a.byAcker, acker)
			continue
		}
		kept = append(kept, acker)
	}
	a.ackerOrder = kept
}

// ackers returns the number of distinct tag_acks seen.
func (a *ackState) ackers() int { return len(a.ackerOrder) }

var _ Process = (*Quiescent)(nil)

// NewQuiescent builds an Algorithm 2 process. Unlike Algorithm 1 it does
// not need to know n: the failure detector's numbers replace the majority
// threshold. tags must be a per-process stream; det is the process's
// failure detector handle (AΘ and AP* views).
func NewQuiescent(det fd.Detector, tags *ident.Source, cfg Config) *Quiescent {
	return &Quiescent{
		common: newCommon(cfg, tags),
		det:    det,
		acks:   make(map[wire.MsgID]*ackState),
	}
}

// Broadcast implements URB_broadcast(m) (lines 4-6).
func (p *Quiescent) Broadcast(body []byte) (wire.MsgID, Step) {
	var out Step
	id := wire.NewMsgID(p.tags.Next(), body)
	p.msgs.add(id)
	p.sawMsg[id] = true
	if p.cfg.EagerFirstSend {
		p.send(&out, wire.NewMsg(id))
	}
	return id, out
}

// Receive dispatches on kind (lines 7-51).
func (p *Quiescent) Receive(m wire.Message) Step {
	switch m.Kind {
	case wire.KindMsg:
		return p.receiveMsg(m)
	case wire.KindAck:
		return p.receiveAck(m)
	default:
		return Step{}
	}
}

// receiveMsg handles (MSG, m, tag) (lines 7-21).
func (p *Quiescent) receiveMsg(m wire.Message) Step {
	var out Step
	id := m.ID()
	p.sawMsg[id] = true
	// Lines 8-12: (re-)insert into MSG_i only if not yet delivered; this
	// is what keeps a retired message retired when late MSG copies
	// straggle in.
	if !p.msgs.has(id) && !p.delivered[id] {
		p.msgs.add(id)
		if p.cfg.EagerFirstSend {
			p.send(&out, wire.NewMsg(id))
		}
	}
	ack, known := p.mine[id]
	if !known {
		ack = p.tags.Next() // line 17: pinned forever after
		p.mine[id] = ack
	}
	// Lines 13-20: every (re-)ACK carries the *current* AΘ label view, so
	// receivers can refresh their per-acker label sets.
	labels := p.det.ATheta().Labels().Slice()
	p.send(&out, wire.NewLabeledAck(id, ack, labels))
	return out
}

// receiveAck handles (ACK, m, tag, tag_ack, labels) (lines 22-51).
func (p *Quiescent) receiveAck(m wire.Message) Step {
	var out Step
	id := m.ID()
	st, ok := p.acks[id]
	if !ok {
		st = newAckState() // lines 23-26
		p.acks[id] = st
		p.ackOrder = append(p.ackOrder, id)
	}
	st.update(m.AckTag, m.Labels) // lines 27-45 (D1)
	p.checkDeliver(&out, id)      // lines 46-51
	return out
}

// checkDeliver applies the delivery guard: ∃ (label, number) ∈ AΘ with
// claims[label] >= number (deviation D2: >= instead of =; see DESIGN.md).
func (p *Quiescent) checkDeliver(out *Step, id wire.MsgID) {
	if p.delivered[id] {
		return
	}
	st, ok := p.acks[id]
	if !ok {
		return
	}
	for _, pair := range p.det.ATheta() {
		if st.claims[pair.Label] >= pair.Number {
			p.deliverOnce(out, id)
			return
		}
	}
}

// retireReady evaluates the retirement guard (paper line 55, deviation
// D3) for one delivered message against the current AP* view.
func (p *Quiescent) retireReady(id wire.MsgID, star fd.View) bool {
	if !p.delivered[id] {
		return false // line 56
	}
	st, ok := p.acks[id]
	if !ok {
		return false
	}
	if len(star) == 0 {
		return false // no evidence about the correct set: never retire
	}
	// Every pair covered: claims[label] >= number.
	for _, pair := range star {
		if st.claims[pair.Label] < pair.Number {
			return false
		}
	}
	// No acker still claims a label outside the AP* view (the paper's
	// all_labels = {label | (label,-) ∈ a_p*} clause).
	starLabels := star.Labels()
	for _, acker := range st.ackerOrder {
		if !st.byAcker[acker].SubsetOf(starLabels) {
			return false
		}
	}
	return true
}

// Tick is one pass of Task 1 (lines 52-61): retransmit every message
// still in MSG_i, and retire those whose guard holds. Stale labels that
// can no longer appear in any current view are purged first (D4) so that
// frozen ACKs from crashed ackers cannot block retirement forever.
func (p *Quiescent) Tick() Step {
	var out Step
	star := p.det.APStar()
	theta := p.det.ATheta()
	live := theta.Labels()
	for _, pr := range star {
		live.Add(pr.Label)
	}
	for _, id := range p.ackOrder {
		p.acks[id].purge(live.Has)
	}
	if p.cfg.CheckOnTick {
		for _, id := range p.ackOrder {
			p.checkDeliver(&out, id)
		}
	}
	for _, id := range p.msgs.snapshotIDs() {
		if p.cfg.RetireBeforeSend && p.retireReady(id, star) {
			p.msgs.remove(id)
			p.retired++
			continue
		}
		p.send(&out, wire.NewMsg(id)) // line 54
		if p.retireReady(id, star) {  // lines 55-58
			p.msgs.remove(id)
			p.retired++
		}
	}
	return out
}

// Stats implements Process.
func (p *Quiescent) Stats() Stats {
	entries := 0
	for _, st := range p.acks {
		entries += st.ackers()
	}
	return Stats{
		MsgSet:     p.msgs.len(),
		MyAcks:     len(p.mine),
		AckEntries: entries,
		Delivered:  len(p.delivered),
		Retired:    p.retired,
		WireSent:   p.wireSent,
	}
}

// Claims reports the current claim count for (id, label) — test hook.
func (p *Quiescent) Claims(id wire.MsgID, label ident.Tag) int {
	if st, ok := p.acks[id]; ok {
		return st.claims[label]
	}
	return 0
}

// Ackers reports how many distinct tag_acks have been seen for id.
func (p *Quiescent) Ackers(id wire.MsgID) int {
	if st, ok := p.acks[id]; ok {
		return st.ackers()
	}
	return 0
}

// HasDelivered reports whether id has been URB-delivered locally.
func (p *Quiescent) HasDelivered(id wire.MsgID) bool { return p.delivered[id] }

// KnowsMsg reports whether id is currently in MSG_i (false once retired).
func (p *Quiescent) KnowsMsg(id wire.MsgID) bool { return p.msgs.has(id) }

// RetiredCount reports how many messages have been retired.
func (p *Quiescent) RetiredCount() int { return p.retired }
