package urb

import (
	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/obs"
	"anonurb/internal/wire"
)

// Quiescent is Algorithm 2: quiescent uniform reliable broadcast in
// AAS_F[n,t | AΘ, AP*] — any number of processes may crash, and
// eventually no process sends any message.
//
// Mechanics (Section VI): MSG dissemination and per-message pinned
// tag_acks work as in Algorithm 1, but each ACK additionally carries the
// label set the acker currently reads from its AΘ module:
//
//	(ACK, m, tag, tag_ack, labels)
//
// For every message the receiver maintains, per acker (tag_ack), the
// label set from that acker's latest ACK, and derives
//
//	claims[label] = number of distinct ackers whose latest ACK claims label.
//
// Delivery guard (paper line 46): m is URB-deliverable once some
// (label, number) pair in the local AΘ view satisfies
// claims[label] >= number. Safety: the ackers claiming label form a
// subset of S(label), and AΘ-accuracy guarantees any number-sized subset
// of S(label) contains a correct process — so a correct process has
// received m and will retransmit it forever (until retirement).
//
// Retirement guard (paper line 55): a delivered message is deleted from
// the retransmission set MSG_i once, for every (label, number) pair in
// the local AP* view, claims[label] >= number, and no acker still claims
// a label outside the AP* view. Post-GST the AP* view is exactly the
// correct processes' labels with number = |Correct|, and — because the
// failure detector only reveals a label to its owner and to correct
// processes — the claimants of a correct label are correct processes, so
// the guard certifies that every correct process has ACKed (hence
// received) m. Every correct process therefore delivers m on its own
// evidence, and retransmission can stop: the algorithm is quiescent.
//
// With Config.DeltaAcks the labels travel incrementally (deviation D5,
// DESIGN.md §8): the acker's set is sent once and then only its
// epoch-numbered differences, with gaps repaired by a resync
// request/response. The claim bookkeeping below is driven to the exact
// same states either way; reception of every wire form is always on.
//
// Deviations D1-D5 from the garbled published listing are documented in
// DESIGN.md §2/§8 and at the relevant code below.
type Quiescent struct {
	common
	det fd.Detector
	// per-message ACK bookkeeping, insertion-ordered for determinism.
	acks     map[wire.MsgID]*ackState
	ackOrder []wire.MsgID
	retired  int
	// ticks counts Task-1 passes; the delta-ACK path's per-tick rate
	// limiters compare against it.
	ticks uint64
	// ackSend is the delta-ACK sender ledger: for every message this
	// process has acknowledged, the label set and epoch of its last
	// labeled ACK (nil entries never exist; the map is only populated in
	// DeltaAcks mode).
	ackSend map[wire.MsgID]*ackSendState
	// epochFloor is the delta-stream incarnation base (DESIGN.md §9):
	// every ledger entry opened after a crash-recovery Rejoin starts at
	// epochFloor+1, which dominates every epoch the process's previous
	// incarnation can have sent. Without it, a recovered acker would
	// re-open streams at epoch 1 and receivers still synced at the
	// (lost) higher pre-crash epochs would discard its ACKs as stale —
	// forever. 0 for a process that never recovered.
	epochFloor uint64
	// sets interns the shared label sets of compacted acker views
	// (Config.CompactDelivered, DESIGN.md §10).
	sets setIntern
	// resync is the D9 per-tick ACKREQ budget (Config.PaceResyncs);
	// pacing state, excluded from snapshots and fingerprints.
	resync resyncBudget
	// lastViewKey caches the canonical key of the detector views Tick
	// last evaluated every message against; together with the per-state
	// dirty flags it forms the retirement index: a Tick under unchanged
	// views re-purges and re-evaluates only messages whose ACK state
	// changed since the last pass — for every other message both
	// operations are provably no-ops. "" (the initial and post-restore
	// value) forces a full pass. Deliberately excluded from snapshots
	// and fingerprints: like the rate limiters it is derived pacing
	// state, and the exclusion is sound because skipped work is always a
	// no-op (fingerprint-equal states behave identically whether they
	// skip or re-evaluate).
	lastViewKey string
}

// ackSendState is one message's entry in the acker-side delta ledger.
type ackSendState struct {
	// epoch numbers this acker's label-set versions for the message,
	// starting at 1 with the first labeled ACK.
	epoch uint64
	// sent is the label set as of epoch — what every in-sync receiver
	// holds for this (message, acker).
	sent *ident.Set
	// reAckTick-1 is the tick at which the last unchanged re-ACK was
	// sent (0 = never), the D5 rate limiter: at most one unchanged
	// re-ACK per message per tick, instead of one per MSG reception.
	reAckTick uint64
	// snapTick-1 is the tick of the last snapshot broadcast (0 = never).
	// Snapshots answer resync requests; since every send is a broadcast,
	// one snapshot per tick serves every requester at once.
	snapTick uint64
}

// ackerView is one acker's entry in the receiver-side bookkeeping: the
// label set from its latest applied ACK plus the delta-stream position.
type ackerView struct {
	labels *ident.Set
	// entry is the intern-table entry labels is shared through, nil for
	// an exclusively owned set. A shared set is immutable: every
	// mutation path copies first (and the compacted state re-interns the
	// result), so sharing never changes what the view reads.
	entry *setEntry
	// epoch is the last applied delta epoch (0 for legacy full-set ACKs,
	// which carry no epoch).
	epoch uint64
	// synced reports whether labels is known to equal the acker's ledger
	// at epoch, i.e. whether the next delta may be folded in. Legacy
	// full-set ACKs leave it false (no epoch to sequence against); the
	// D4 purge clears it when it locally removes labels the acker still
	// claims remotely.
	synced bool
}

// ackState is the paper's ALL_ACK / all_labels / label_counter bundle for
// one message.
type ackState struct {
	// byAcker maps tag_ack → that acker's latest applied view
	// (the paper's all_labels[(m,tag), tag_ack]).
	byAcker map[ident.Tag]*ackerView
	// ackerOrder is the first-seen order of tag_acks.
	ackerOrder []ident.Tag
	// claims maps label → number of ackers currently claiming it
	// (the paper's label_counter[(m,tag), label]).
	claims map[ident.Tag]int
	// reqTick rate-limits resync requests: reqTick[acker]-1 is the tick
	// of the last request for that acker's stream (at most one per
	// (message, acker) per tick). An entry only constrains its own tick,
	// so the per-tick purge clears the whole map — nothing accumulates
	// across ticks (in particular not for ackers that crashed before
	// ever answering), and re-requesting next tick is exactly the
	// intended repair cadence. The snapshot that repairs a stream clears
	// its entry within the tick too.
	reqTick map[ident.Tag]uint64
	// dirty marks that the claim counters or acker membership changed
	// since Tick last evaluated this message (it is set by every
	// bump/drop, acker addition and label-set mutation, and by the
	// message's own delivery). Tick clears it after the purge +
	// retirement pass; while it stays clear under unchanged detector
	// views, both operations are no-ops and are skipped.
	dirty bool
	// compacted marks that this message's views run on interned shared
	// sets (delivered under Config.CompactDelivered).
	compacted bool
}

func newAckState() *ackState {
	return &ackState{
		byAcker: make(map[ident.Tag]*ackerView),
		claims:  make(map[ident.Tag]int),
	}
}

// bump increments a label's claim count.
func (a *ackState) bump(label ident.Tag) {
	a.claims[label]++
	a.dirty = true
}

// drop decrements a label's claim count, deleting the entry at zero —
// a missing key reads as 0 everywhere, and keeping it would leak one
// map key per dead label forever (the same monotonic growth the D4
// acker drop exists to stop).
func (a *ackState) drop(label ident.Tag) {
	a.dirty = true
	switch c := a.claims[label]; {
	case c > 1:
		a.claims[label] = c - 1
	case c == 1:
		delete(a.claims, label)
	}
}

// internView moves a view's exclusively owned set into the intern table
// (compacted messages only); the view's set pointer becomes the shared
// canonical copy.
func (a *ackState) internView(in *setIntern, v *ackerView) {
	if !a.compacted || v.entry != nil {
		return
	}
	v.entry = in.intern(v.labels)
	v.labels = v.entry.labels
}

// disownView gives a view exclusive, mutable ownership of its set:
// shared sets are cloned first (copy-on-write).
func (a *ackState) disownView(in *setIntern, v *ackerView) {
	if v.entry == nil {
		return
	}
	s := v.labels.Clone()
	in.release(v.entry)
	v.entry = nil
	v.labels = s
}

// dropView releases a view's interned set, if any (the view is being
// deleted or its set replaced wholesale).
func (a *ackState) dropView(in *setIntern, v *ackerView) {
	if v.entry != nil {
		in.release(v.entry)
		v.entry = nil
	}
}

// replace applies a complete label set from one acker with *replacement*
// semantics (deviation D1): labels newly claimed are counted up, labels
// no longer claimed are counted down. This realises the paper's cases
// "repeated ACK with more labels" (lines 34-37) and "repeated ACK with
// fewer labels" (lines 38-44) in one well-defined rule. epoch/synced
// record the delta-stream position the set corresponds to (0/false for
// legacy full-set ACKs). Returns true if the acker is new.
func (a *ackState) replace(in *setIntern, acker ident.Tag, labels []ident.Tag, epoch uint64, synced bool) bool {
	cur, known := a.byAcker[acker]
	if !known {
		s := ident.NewSet()
		for _, l := range labels {
			if s.Add(l) {
				a.bump(l)
			}
		}
		v := &ackerView{labels: s, epoch: epoch, synced: synced}
		a.byAcker[acker] = v
		a.ackerOrder = append(a.ackerOrder, acker)
		a.dirty = true // membership changed even if the set is empty
		a.internView(in, v)
		return true
	}
	next := ident.NewSet(labels...)
	// Unchanged-set fast path: a steady-state re-ACK replaces the set
	// with an equal one, so the diff accounting below would walk both
	// sets to change nothing. Only the stream position moves.
	if next.Len() == cur.labels.Len() {
		same := true
		for _, l := range next.Slice() {
			if !cur.labels.Has(l) {
				same = false
				break
			}
		}
		if same {
			cur.epoch = epoch
			cur.synced = synced
			return false
		}
	}
	// Count up the additions.
	for _, l := range next.Slice() {
		if !cur.labels.Has(l) {
			a.bump(l)
		}
	}
	// Count down the removals.
	for _, l := range cur.labels.Slice() {
		if !next.Has(l) {
			a.drop(l)
		}
	}
	a.dropView(in, cur)
	cur.labels = next
	cur.epoch = epoch
	cur.synced = synced
	a.internView(in, cur)
	return false
}

// applyDelta folds one delta into an in-sync acker view: removals first,
// then additions (so a label adversarially present in both lists ends up
// claimed — a deterministic rule; canonical senders keep the lists
// disjoint). Folding (+A, −R) into a view equal to the acker's set at
// epoch−1 yields exactly the acker's set at epoch, so every bump/drop
// here is one the full-set replace would also have performed: the two
// paths are state-for-state equivalent.
func (a *ackState) applyDelta(in *setIntern, v *ackerView, epoch uint64, adds, dels []ident.Tag) {
	if v.entry != nil {
		// Copy-on-write, but only when the delta changes membership —
		// an in-place no-op delta (e.g. removals of absent labels) must
		// not break the sharing.
		mutates := false
		for _, l := range dels {
			if v.labels.Has(l) {
				mutates = true
				break
			}
		}
		if !mutates {
			for _, l := range adds {
				if !v.labels.Has(l) {
					mutates = true
					break
				}
			}
		}
		if mutates {
			a.disownView(in, v)
		}
	}
	for _, l := range dels {
		if v.labels.Remove(l) {
			a.drop(l)
		}
	}
	for _, l := range adds {
		if v.labels.Add(l) {
			a.bump(l)
		}
	}
	v.epoch = epoch
	a.internView(in, v)
}

// purge removes every claimed label for which keep returns false
// (deviation D4: stale labels of crashed processes frozen inside ACKs
// from ackers that will never refresh — e.g. the crashed process's own
// ACK — would otherwise block the retirement guard forever). Safe
// because AP* perpetually contains every correct process's label, so a
// label absent from both current views can only belong to a crashed
// process.
//
// Ackers whose label set the purge empties are dropped entirely: an
// empty set contributes nothing to any claim count, passes every
// subset check, and would never be refreshed (its owner is crashed) —
// keeping the entry would only grow byAcker/ackerOrder monotonically
// and tax every retireReady scan with dead ackers forever. If the
// acker was wrongly suspected and re-ACKs later, the algorithm
// re-admits it as a fresh acker with identical claim accounting.
//
// A purge that removes labels from a surviving view also clears its
// synced bit: the local copy no longer matches the acker's ledger, so
// subsequent deltas cannot be folded in — the next one triggers a
// resync, and the acker's snapshot restores any label the purge removed
// wrongly (a label that returns to the views pre-GST). Without this,
// the delta path could lose a wrongly-purged label forever, because a
// delta sender — unlike the paper's full-set re-ACKs — never resends
// labels it believes the receiver already has.
// purgedEntry memoises one interned set's purge outcome within a single
// purge pass: the labels the live view kills and the entry the
// survivors re-intern to (nil when the set empties). Views sharing an
// entry share the outcome, so a view-shift purge over thousands of
// compacted views pays the set arithmetic once per distinct set.
type purgedEntry struct {
	removed []ident.Tag
	to      *setEntry
}

func (a *ackState) purge(in *setIntern, keep func(ident.Tag) bool) {
	// Last tick's resync-request limiters are spent; dropping the map
	// wholesale is what keeps it from accumulating entries for ackers
	// that never got admitted (e.g. crashed before their snapshot).
	a.reqTick = nil
	var memo map[*setEntry]purgedEntry
	kept := a.ackerOrder[:0]
	for _, acker := range a.ackerOrder {
		v := a.byAcker[acker]
		if v.entry != nil {
			// Shared set: compute (or reuse) the entry's purge outcome.
			pe, ok := memo[v.entry]
			if !ok {
				for _, l := range v.entry.labels.Slice() {
					if !keep(l) {
						pe.removed = append(pe.removed, l)
					}
				}
				if n := len(pe.removed); n > 0 && n < v.entry.labels.Len() {
					next := ident.NewSet()
					for _, l := range v.entry.labels.Slice() {
						if keep(l) {
							next.Add(l)
						}
					}
					pe.to = in.intern(next)
					// The intern above took the memo's own reference; it is
					// released when the pass ends (each surviving view takes
					// its own below), keeping the entry alive meanwhile.
				}
				if memo == nil {
					memo = make(map[*setEntry]purgedEntry)
				}
				memo[v.entry] = pe
			}
			if len(pe.removed) == 0 {
				if v.entry.labels.Len() == 0 {
					// Empty-set ackers are dropped (nothing claims, never
					// refreshed), shared or not.
					in.release(v.entry)
					v.entry = nil
					delete(a.byAcker, acker)
					continue
				}
				kept = append(kept, acker)
				continue
			}
			for _, l := range pe.removed {
				a.drop(l)
			}
			in.release(v.entry)
			if pe.to == nil { // the whole set was stale: drop the acker
				v.entry = nil
				delete(a.byAcker, acker)
				continue
			}
			pe.to.refs++
			v.entry = pe.to
			v.labels = pe.to.labels
			v.synced = false
			kept = append(kept, acker)
			continue
		}
		// Exclusive set: scan before touching (steady state is no-op).
		stale := false
		for _, l := range v.labels.Slice() {
			if !keep(l) {
				stale = true
				break
			}
		}
		if !stale {
			if v.labels.Len() == 0 {
				delete(a.byAcker, acker)
				continue
			}
			kept = append(kept, acker)
			continue
		}
		for _, l := range append([]ident.Tag(nil), v.labels.Slice()...) {
			if !keep(l) {
				v.labels.Remove(l)
				a.drop(l)
				v.synced = false
			}
		}
		if v.labels.Len() == 0 {
			delete(a.byAcker, acker)
			continue
		}
		a.internView(in, v)
		kept = append(kept, acker)
	}
	a.ackerOrder = kept
	for _, pe := range memo {
		in.release(pe.to) // release(nil) is a no-op
	}
}

// ackers returns the number of distinct tag_acks seen.
func (a *ackState) ackers() int { return len(a.ackerOrder) }

var _ Process = (*Quiescent)(nil)

// NewQuiescent builds an Algorithm 2 process. Unlike Algorithm 1 it does
// not need to know n: the failure detector's numbers replace the majority
// threshold. tags must be a per-process stream; det is the process's
// failure detector handle (AΘ and AP* views).
func NewQuiescent(det fd.Detector, tags *ident.Source, cfg Config) *Quiescent {
	return &Quiescent{
		common:  newCommon(cfg, tags),
		det:     det,
		acks:    make(map[wire.MsgID]*ackState),
		ackSend: make(map[wire.MsgID]*ackSendState),
	}
}

// Broadcast implements URB_broadcast(m) (lines 4-6).
func (p *Quiescent) Broadcast(body []byte) (wire.MsgID, Step) {
	var out Step
	id := wire.NewMsgID(p.tags.Next(), body)
	p.msgs.add(id)
	p.sawMsg[id] = true
	if p.tr != nil {
		p.tr.Broadcast(id)
	}
	out.Durable = append(out.Durable,
		DurableEvent{Kind: WALBroadcast, ID: id, Draws: p.tags.Draws()})
	if p.cfg.EagerFirstSend {
		p.send(&out, wire.NewMsg(id))
	}
	return id, out
}

// Receive dispatches on kind (lines 7-51).
//
//urb:hotpath
func (p *Quiescent) Receive(m wire.Message) Step {
	//urbvet:partial beat-family kinds are host traffic, consumed by HeartbeatHost before the algorithm
	switch m.Kind {
	case wire.KindMsg:
		return p.receiveMsg(m)
	case wire.KindAck:
		return p.receiveAck(m)
	case wire.KindAckDelta:
		return p.receiveAckDelta(m)
	case wire.KindAckReq:
		return p.receiveAckResync(m)
	default:
		return Step{}
	}
}

// receiveMsg handles (MSG, m, tag) (lines 7-21).
func (p *Quiescent) receiveMsg(m wire.Message) Step {
	var out Step
	id := m.ID()
	// RECV traces the first MSG copy only (same policy as Majority):
	// retransmissions carry no lifecycle information.
	if p.tr != nil && !p.sawMsg[id] {
		p.tr.Recv(id, wire.KindMsg)
	}
	p.sawMsg[id] = true
	// Lines 8-12: (re-)insert into MSG_i only if not yet delivered; this
	// is what keeps a retired message retired when late MSG copies
	// straggle in.
	if !p.msgs.has(id) && !p.delivered[id] {
		p.msgs.add(id)
		if p.cfg.EagerFirstSend {
			p.send(&out, wire.NewMsg(id))
		}
	}
	ack, known := p.mine[id]
	if !known {
		ack = p.tags.Next() // line 17: pinned forever after
		p.mine[id] = ack
		// Durable: the pin must survive a crash so the recovered process
		// re-acks under the same anonymous identity (DESIGN.md §9).
		out.Durable = append(out.Durable,
			DurableEvent{Kind: WALPin, ID: id, Ack: ack, Draws: p.tags.Draws()})
	}
	// Lines 13-20: every (re-)ACK carries the *current* AΘ label view, so
	// receivers can refresh their per-acker label sets. In delta mode the
	// view travels incrementally instead (D5).
	labels := p.det.ATheta().Labels()
	if !p.cfg.DeltaAcks {
		p.send(&out, wire.NewLabeledAck(id, ack, labels.Slice()))
		return out
	}
	p.sendDeltaAck(&out, id, ack, labels)
	return out
}

// sendDeltaAck emits the D5 incremental form of the line 13-20 ACK:
// a snapshot the first time, a (+adds, −dels) delta when the AΘ label
// view changed since the last ACK for id, and an empty re-ACK — at most
// one per tick — when it did not. The caller passes ownership of labels
// (a fresh set from View.Labels).
func (p *Quiescent) sendDeltaAck(out *Step, id wire.MsgID, ack ident.Tag, labels *ident.Set) {
	st, known := p.ackSend[id]
	if !known {
		st = &ackSendState{epoch: p.epochFloor + 1, sent: labels, snapTick: p.ticks + 1, reAckTick: p.ticks + 1}
		p.ackSend[id] = st
		p.send(out, wire.NewAckSnapshot(id, ack, st.epoch, labels.Slice()))
		return
	}
	if !labels.Equal(st.sent) {
		var adds, dels []ident.Tag
		for _, l := range labels.Slice() {
			if !st.sent.Has(l) {
				adds = append(adds, l)
			}
		}
		for _, l := range st.sent.Slice() {
			if !labels.Has(l) {
				dels = append(dels, l)
			}
		}
		st.epoch++
		st.sent = labels
		st.reAckTick = p.ticks + 1
		p.send(out, wire.NewAckDelta(id, ack, st.epoch, adds, dels))
		return
	}
	// Unchanged set: re-ACK at most once per tick (D5 rate limit). The
	// re-ACK still matters — it carries the payload for fast delivery
	// and lets receivers that never saw this acker detect the stream
	// and request a resync — but once per tick is as often as Task-1
	// retransmission can need it.
	if st.reAckTick == p.ticks+1 {
		return
	}
	st.reAckTick = p.ticks + 1
	p.send(out, wire.NewAckDelta(id, ack, st.epoch, nil, nil))
}

// receiveAck handles the full-set form (ACK, m, tag, tag_ack, labels)
// (lines 22-51). The set replaces the acker's view wholesale; it carries
// no epoch, so the view is left unsynced and a subsequent delta from the
// same acker resynchronises via snapshot first.
func (p *Quiescent) receiveAck(m wire.Message) Step {
	var out Step
	id := m.ID()
	if p.tr != nil {
		p.tr.Recv(id, wire.KindAck)
	}
	st := p.ackStateFor(id)
	st.replace(&p.sets, m.AckTag, m.Labels, 0, false) // lines 27-45 (D1)
	p.checkDeliver(&out, id)                          // lines 46-51
	return out
}

// receiveAckDelta handles the incremental form (D5). Snapshots replace;
// in-sequence deltas fold into the claim counters; anything else — an
// epoch gap, an unknown or unsynced acker — leaves the claims untouched
// and asks the acker for a snapshot (rate-limited per (message, acker)
// per tick).
func (p *Quiescent) receiveAckDelta(m wire.Message) Step {
	var out Step
	id := m.ID()
	if p.tr != nil {
		p.tr.Recv(id, wire.KindAckDelta)
	}
	// Delivered-message fast path: the steady state of a quiescent
	// cluster is delivered messages absorbing unchanged re-ACKs (empty
	// deltas at the acker's current epoch) once per tick until
	// retirement. For those nothing below can change — the delta is
	// stale-or-duplicate for the view and the delivery guard is already
	// satisfied — so return before touching the claim machinery.
	if p.delivered[id] && m.Flags == 0 && len(m.Labels) == 0 && len(m.DelLabels) == 0 {
		if st, ok := p.acks[id]; ok {
			if v := st.byAcker[m.AckTag]; v != nil && v.synced && m.Epoch <= v.epoch {
				return out
			}
		}
	}
	st := p.ackStateFor(id)
	v := st.byAcker[m.AckTag]
	if m.Flags&wire.AckFlagSnapshot != 0 {
		// A snapshot is authoritative for its epoch: apply unless we
		// provably hold that epoch or a later one.
		if v == nil || !v.synced || m.Epoch > v.epoch {
			st.replace(&p.sets, m.AckTag, m.Labels, m.Epoch, true)
			delete(st.reqTick, m.AckTag)
		}
	} else {
		// An epoch only ever advances together with a set change, so a
		// change-delta always carries at least one label; an *empty*
		// delta is the unchanged re-ACK, stamped with the sender's
		// current epoch. An empty delta ahead of our epoch therefore
		// proves we missed the change-delta that advanced it — folding
		// it would mark us synced at an epoch whose change we never
		// applied, silently diverging forever. Only non-empty deltas may
		// advance the stream.
		change := len(m.Labels) > 0 || len(m.DelLabels) > 0
		switch {
		case v != nil && v.synced && m.Epoch == v.epoch+1 && change:
			st.applyDelta(&p.sets, v, m.Epoch, m.Labels, m.DelLabels)
		case v != nil && v.synced && m.Epoch <= v.epoch:
			// Stale or duplicated delta: already reflected, ignore.
		default:
			// Gap, unknown acker, or a view the purge desynced: the delta
			// cannot be folded safely. Ask for a snapshot — within the
			// per-tick resync budget (D9): a denied request leaves no
			// trace, so the stream simply asks again next tick.
			if st.reqTick[m.AckTag] != p.ticks+1 &&
				p.resync.take(p.cfg.resyncLimit(), p.ticks+1) {
				if st.reqTick == nil {
					st.reqTick = make(map[ident.Tag]uint64)
				}
				st.reqTick[m.AckTag] = p.ticks + 1
				p.send(&out, wire.NewAckResync(id, m.AckTag))
			}
		}
	}
	// Line 46 runs on *every* ACK reception, not only on ones that
	// changed the claims: the guard reads the live AΘ view, so a stale
	// or empty re-ACK can still enable a delivery the view's numbers
	// dropping has unblocked — exactly as the full-set path re-checks on
	// every re-ACK.
	p.checkDeliver(&out, id)
	return out
}

// receiveAckResync answers a resync request addressed to this process's
// tag_ack for the message: broadcast a snapshot of the current ledger
// (refreshing it against the live AΘ view first), at most once per
// message per tick — every send is a broadcast, so one snapshot serves
// all requesters.
func (p *Quiescent) receiveAckResync(m wire.Message) Step {
	var out Step
	id := m.ID()
	ack, known := p.mine[id]
	if !known || ack != m.AckTag {
		return out // someone else's stream (or a message we never ACKed)
	}
	st, known := p.ackSend[id]
	if known && st.snapTick == p.ticks+1 {
		return out
	}
	if !known {
		// Our ACK for id predates delta mode (or was sent by the full-set
		// path): open the ledger now with a fresh snapshot.
		st = &ackSendState{epoch: p.epochFloor + 1, sent: p.det.ATheta().Labels()}
		p.ackSend[id] = st
	} else if labels := p.det.ATheta().Labels(); !labels.Equal(st.sent) {
		st.epoch++
		st.sent = labels
	}
	st.snapTick = p.ticks + 1
	st.reAckTick = p.ticks + 1 // the snapshot doubles as this tick's re-ACK
	p.send(&out, wire.NewAckSnapshot(id, ack, st.epoch, st.sent.Slice()))
	return out
}

// ackStateFor returns (creating on demand) the per-message ACK
// bookkeeping (lines 23-26).
func (p *Quiescent) ackStateFor(id wire.MsgID) *ackState {
	st, ok := p.acks[id]
	if !ok {
		st = newAckState()
		// Straggler ACKs for an already-delivered (possibly retired)
		// message open their state directly in compacted form.
		if p.cfg.CompactDelivered && p.delivered[id] {
			st.compacted = true
		}
		p.acks[id] = st
		p.ackOrder = append(p.ackOrder, id)
	}
	return st
}

// checkDeliver applies the delivery guard: ∃ (label, number) ∈ AΘ with
// claims[label] >= number (deviation D2: >= instead of =; see DESIGN.md).
func (p *Quiescent) checkDeliver(out *Step, id wire.MsgID) {
	if p.delivered[id] {
		return
	}
	st, ok := p.acks[id]
	if !ok {
		return
	}
	theta := p.det.ATheta()
	for _, pair := range theta {
		if st.claims[pair.Label] >= pair.Number {
			p.deliverOnce(out, id)
			// Delivery makes the message retirement-eligible: the next
			// Tick must evaluate it even under unchanged views.
			st.dirty = true
			p.compactState(st)
			return
		}
	}
	if p.tr != nil && len(theta) > 0 {
		// Guard failed: trace the evidence on the pair closest to
		// passing (smallest claim deficit) — the accumulation curve the
		// timeline and the stall explainer read.
		best := theta[0]
		bestHave := st.claims[best.Label]
		for _, pair := range theta[1:] {
			have := st.claims[pair.Label]
			if pair.Number-have < best.Number-bestHave {
				best, bestHave = pair, have
			}
		}
		p.tr.AckProgress(id, best.Label, bestHave, best.Number)
	}
}

// compactState switches a delivered message's acker views onto interned
// shared sets (Config.CompactDelivered, DESIGN.md §10). Idempotent; a
// no-op when compaction is off.
//
// The dominant case at delivery time is every acker holding the same
// post-GST view, so the canonical key (a sort plus a string build) is
// computed once: runs of views equal to the previously interned set
// take a reference directly.
func (p *Quiescent) compactState(st *ackState) {
	if st.compacted || !p.cfg.CompactDelivered {
		return
	}
	st.compacted = true
	var last *setEntry
	for _, acker := range st.ackerOrder {
		v := st.byAcker[acker]
		if v.entry != nil {
			last = v.entry
			continue
		}
		if last != nil && v.labels.Equal(last.labels) {
			last.refs++
			v.entry = last
			v.labels = last.labels
			continue
		}
		st.internView(&p.sets, v)
		last = v.entry
	}
}

// retireReady evaluates the retirement guard (paper line 55, deviation
// D3) for one delivered message against the current AP* view.
func (p *Quiescent) retireReady(id wire.MsgID, star fd.View) bool {
	if !p.delivered[id] {
		return false // line 56
	}
	st, ok := p.acks[id]
	if !ok {
		return false
	}
	if len(star) == 0 {
		return false // no evidence about the correct set: never retire
	}
	// Every pair covered: claims[label] >= number.
	for _, pair := range star {
		if st.claims[pair.Label] < pair.Number {
			return false
		}
	}
	// No acker still claims a label outside the AP* view (the paper's
	// all_labels = {label | (label,-) ∈ a_p*} clause).
	starLabels := star.Labels()
	for _, acker := range st.ackerOrder {
		if !st.byAcker[acker].labels.SubsetOf(starLabels) {
			return false
		}
	}
	return true
}

// viewKey renders the detector views' canonical identity: every label
// and number of both views, each view length-prefixed so the encoding
// is injective (a separator byte alone would let a label containing it
// shift the theta/star boundary). Tick caches it to detect view
// changes between passes (the retirement index).
func viewKey(theta, star fd.View) string {
	b := make([]byte, 0, 24*(len(theta)+len(star))+8)
	render := func(v fd.View) {
		n := uint32(len(v))
		b = append(b, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
		for _, pr := range v {
			b = appendTagBytes(b, pr.Label)
			m := uint64(pr.Number)
			b = append(b,
				byte(m>>56), byte(m>>48), byte(m>>40), byte(m>>32),
				byte(m>>24), byte(m>>16), byte(m>>8), byte(m))
		}
	}
	render(theta)
	render(star)
	return string(b)
}

// Tick is one pass of Task 1 (lines 52-61): retransmit every message
// still in MSG_i, and retire those whose guard holds. Stale labels that
// can no longer appear in any current view are purged first (D4) so that
// frozen ACKs from crashed ackers cannot block retirement forever.
//
// The retirement index (DESIGN.md §10) bounds the pass: the D4 purge and
// the retirement guard are deterministic functions of a message's ACK
// state and the detector views, so when the views match the previous
// pass and a message's ACK state has not changed since (dirty unset),
// re-running them provably reproduces the previous outcome — a no-op
// purge and a false guard (had it been true, the message would already
// be retired). Tick therefore skips both for clean messages; MSG
// retransmission itself is never skipped, it is the protocol.
func (p *Quiescent) Tick() Step {
	var out Step
	p.ticks++
	star := p.det.APStar()
	theta := p.det.ATheta()
	key := viewKey(theta, star)
	full := key != p.lastViewKey
	p.lastViewKey = key
	if full {
		live := theta.Labels()
		for _, pr := range star {
			live.Add(pr.Label)
		}
		for _, id := range p.ackOrder {
			p.acks[id].purge(&p.sets, live.Has)
		}
	} else {
		var live *ident.Set // built lazily: dirty messages are rare
		for _, id := range p.ackOrder {
			st := p.acks[id]
			if !st.dirty {
				continue
			}
			if live == nil {
				live = theta.Labels()
				for _, pr := range star {
					live.Add(pr.Label)
				}
			}
			st.purge(&p.sets, live.Has)
		}
	}
	if p.cfg.CheckOnTick {
		for _, id := range p.ackOrder {
			if st := p.acks[id]; full || st.dirty {
				p.checkDeliver(&out, id)
			}
		}
	}
	for _, id := range p.msgs.snapshotIDs() {
		ready := false
		if p.delivered[id] {
			st := p.acks[id]
			if full || (st != nil && st.dirty) {
				ready = p.retireReady(id, star)
			}
		}
		// The guard's outcome cannot change between the two retirement
		// sites of one pass (line 54 sends mutate nothing it reads), so
		// one evaluation serves both.
		if ready && p.cfg.RetireBeforeSend {
			p.msgs.remove(id)
			p.retired++
			if p.tr != nil {
				p.tr.Retire(id)
			}
			continue
		}
		p.send(&out, wire.NewMsg(id)) // line 54
		if ready {                    // lines 55-58
			p.msgs.remove(id)
			p.retired++
			if p.tr != nil {
				p.tr.Retire(id)
			}
		}
	}
	for _, id := range p.ackOrder {
		p.acks[id].dirty = false
	}
	return out
}

// Stats implements Process.
func (p *Quiescent) Stats() Stats {
	entries, logical, exclusive, compacted := 0, 0, 0, 0
	for _, st := range p.acks {
		entries += st.ackers()
		if st.compacted {
			compacted++
		}
		for _, v := range st.byAcker {
			logical += v.labels.Len()
			if v.entry == nil {
				exclusive += v.labels.Len()
			}
		}
	}
	return Stats{
		MsgSet:          p.msgs.len(),
		MyAcks:          len(p.mine),
		AckEntries:      entries,
		Delivered:       len(p.delivered),
		Retired:         p.retired,
		WireSent:        p.wireSent,
		AckLabels:       logical,
		AckLabelStorage: exclusive + p.sets.storage(),
		CompactedMsgs:   compacted,
	}
}

// Claims reports the current claim count for (id, label) — test hook.
func (p *Quiescent) Claims(id wire.MsgID, label ident.Tag) int {
	if st, ok := p.acks[id]; ok {
		return st.claims[label]
	}
	return 0
}

// Ackers reports how many distinct tag_acks have been seen for id.
func (p *Quiescent) Ackers(id wire.MsgID) int {
	if st, ok := p.acks[id]; ok {
		return st.ackers()
	}
	return 0
}

// HasDelivered reports whether id has been URB-delivered locally.
func (p *Quiescent) HasDelivered(id wire.MsgID) bool { return p.delivered[id] }

// KnowsMsg reports whether id is currently in MSG_i (false once retired).
func (p *Quiescent) KnowsMsg(id wire.MsgID) bool { return p.msgs.has(id) }

// RetiredCount reports how many messages have been retired.
func (p *Quiescent) RetiredCount() int { return p.retired }

// Explain is the stall explainer (DESIGN.md §14): it evaluates the live
// delivery guard (∃ AΘ pair with enough claims) and retirement guard
// (every AP* pair covered, no stray acker labels) for id and reports
// per-pair shortfalls, pending ACKREQ resyncs and unsynced delta
// streams — exactly the evidence still missing. Call it on the
// goroutine hosting the process.
func (p *Quiescent) Explain(id wire.MsgID) obs.Explanation {
	ex := obs.Explanation{
		ID:        id,
		Algo:      "quiescent",
		Delivered: p.delivered[id],
	}
	st := p.acks[id]
	ex.Known = st != nil || p.msgs.has(id) || p.sawMsg[id] || p.delivered[id]
	// Retired: delivered and no longer retransmitted. A fast-delivered
	// message whose MSG copy never arrived is also absent from MSG_i, so
	// require the copy to have been seen before calling it retired.
	ex.Retired = ex.Delivered && !p.msgs.has(id) && p.sawMsg[id]
	for _, pair := range p.det.ATheta() {
		have := 0
		if st != nil {
			have = st.claims[pair.Label]
		}
		ex.Gaps = append(ex.Gaps, obs.EvidenceGap{Label: pair.Label, Have: have, Need: pair.Number})
	}
	if st != nil {
		ex.Ackers = st.ackers()
		for _, tick := range st.reqTick {
			if tick == p.ticks+1 {
				ex.PendingResync++
			}
		}
		for _, acker := range st.ackerOrder {
			if !st.byAcker[acker].synced {
				ex.UnsyncedAckers++
			}
		}
	}
	if ex.Delivered && !ex.Retired {
		star := p.det.APStar()
		for _, pair := range star {
			have := 0
			if st != nil {
				have = st.claims[pair.Label]
			}
			ex.RetireGaps = append(ex.RetireGaps, obs.EvidenceGap{Label: pair.Label, Have: have, Need: pair.Number})
		}
		if st != nil && len(star) > 0 {
			starLabels := star.Labels()
			for _, acker := range st.ackerOrder {
				for _, l := range st.byAcker[acker].labels.Slice() {
					if !starLabels.Has(l) && !tagIn(ex.StrayLabels, l) {
						ex.StrayLabels = append(ex.StrayLabels, l)
					}
				}
			}
		}
	}
	return ex
}
