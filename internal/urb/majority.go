package urb

import (
	"fmt"

	"anonurb/internal/ident"
	"anonurb/internal/obs"
	"anonurb/internal/wire"
)

// Majority is Algorithm 1: uniform reliable broadcast in
// AAS_F[n,t | t < n/2] — anonymous processes, fair lossy channels, no
// failure detector, assuming a majority of correct processes.
//
// The idea (Section III): every process retransmits every message it
// knows forever (Task 1). On each reception of (MSG, m, tag) a process
// (re-)broadcasts an acknowledgement (ACK, m, tag, tag_ack) whose tag_ack
// is a random value drawn once per (m, tag) and then pinned in MY_ACK.
// Distinct tag_acks therefore count distinct processes without revealing
// identities, and a process URB-delivers m once it has collected a
// majority (> n/2) of distinct tag_acks for it: with t < n/2 at least one
// of those ackers is correct, and that correct process retransmits m
// forever, so every correct process eventually receives and delivers m.
//
// The algorithm is non-quiescent: MSG_i never shrinks and Task 1 never
// stops. Experiment F1 measures exactly that.
type Majority struct {
	common
	n         int
	threshold int
	// acks is the paper's ALL_ACK_i: for every message, the set of
	// distinct tag_acks received. ackOrder remembers first-seen order so
	// iteration is deterministic.
	acks     map[wire.MsgID]*ident.Set
	ackOrder []wire.MsgID
}

var _ Process = (*Majority)(nil)

// NewMajority builds an Algorithm 1 process for a system of n processes.
// The process knows n (the paper's deliver guard "majority of (m,tag,−)"
// needs it) but has no identity. tags must be a per-process stream.
func NewMajority(n int, tags *ident.Source, cfg Config) *Majority {
	return NewMajorityThreshold(n, n/2+1, tags, cfg)
}

// NewMajorityThreshold builds an Algorithm 1 process whose delivery guard
// requires the given number of distinct tag_acks instead of the strict
// majority n/2+1.
//
// Lowering the threshold below the majority is UNSAFE — it is provided to
// reenact the Theorem 2 impossibility construction (experiment T2), where
// a hypothetical algorithm delivering on evidence from only ⌈n/2⌉
// processes violates uniform agreement when those processes all crash and
// the fair lossy channels lose their finitely many copies.
func NewMajorityThreshold(n, threshold int, tags *ident.Source, cfg Config) *Majority {
	if n < 1 {
		panic(fmt.Sprintf("urb: invalid system size %d", n))
	}
	if threshold < 1 || threshold > n {
		panic(fmt.Sprintf("urb: invalid threshold %d for n=%d", threshold, n))
	}
	return &Majority{
		common:    newCommon(cfg, tags),
		n:         n,
		threshold: threshold,
		acks:      make(map[wire.MsgID]*ident.Set),
	}
}

// Broadcast implements URB_broadcast(m) (lines 4-6): draw a fresh tag,
// insert (m, tag) into MSG_i. Transmission happens in Task 1 (or
// immediately under the EagerFirstSend ablation).
func (p *Majority) Broadcast(body []byte) (wire.MsgID, Step) {
	var out Step
	id := wire.NewMsgID(p.tags.Next(), body)
	p.msgs.add(id)
	p.sawMsg[id] = true
	if p.tr != nil {
		p.tr.Broadcast(id)
	}
	out.Durable = append(out.Durable,
		DurableEvent{Kind: WALBroadcast, ID: id, Draws: p.tags.Draws()})
	if p.cfg.EagerFirstSend {
		p.send(&out, wire.NewMsg(id))
	}
	return id, out
}

// Receive dispatches on the message kind (lines 7-27).
//
//urb:hotpath
func (p *Majority) Receive(m wire.Message) Step {
	//urbvet:partial Algorithm 1 speaks MSG/ACK only; delta and beat kinds are other layers' traffic
	switch m.Kind {
	case wire.KindMsg:
		return p.receiveMsg(m)
	case wire.KindAck:
		return p.receiveAck(m)
	default:
		// Unknown kinds (e.g. failure detector heartbeats multiplexed on
		// the same mesh) are not for us; ignore.
		return Step{}
	}
}

// receiveMsg handles (MSG, m, tag) (lines 7-17).
func (p *Majority) receiveMsg(m wire.Message) Step {
	var out Step
	id := m.ID()
	// RECV traces the first MSG copy only: retransmissions are the fair
	// lossy channel's business, not the message lifecycle's.
	if p.tr != nil && !p.sawMsg[id] {
		p.tr.Recv(id, wire.KindMsg)
	}
	p.sawMsg[id] = true
	if p.msgs.add(id) && p.cfg.EagerFirstSend {
		// First time we learn of m from the network: start retransmitting
		// (Task 1 covers it; eager mode also forwards at once).
		p.send(&out, wire.NewMsg(id))
	}
	ack, known := p.mine[id]
	if !known {
		// First reception: draw the unique tag_ack for (m, tag) and pin
		// it (lines 14-15). It must never change afterwards; uniform
		// integrity counts distinct ackers by distinct tag_acks — which
		// is also why the pin is a durable event: a recovered process
		// acking under a fresh tag_ack would count as a phantom second
		// acker.
		ack = p.tags.Next()
		p.mine[id] = ack
		out.Durable = append(out.Durable,
			DurableEvent{Kind: WALPin, ID: id, Ack: ack, Draws: p.tags.Draws()})
	}
	// Acknowledge every reception (lines 11-12 / 16): retransmissions of
	// the ACK are what overcome ACK loss on fair lossy channels.
	p.send(&out, wire.NewAck(id, ack))
	return out
}

// receiveAck handles (ACK, m, tag, tag_ack) (lines 18-27).
func (p *Majority) receiveAck(m wire.Message) Step {
	var out Step
	id := m.ID()
	set, ok := p.acks[id]
	if !ok {
		set = ident.NewSet()
		p.acks[id] = set
		p.ackOrder = append(p.ackOrder, id)
	}
	before := set.Len()
	set.Add(m.AckTag) // idempotent (lines 19-21)
	// ACK receptions are traced solely through their ACK_PROGRESS
	// evidence step, and only when the tag_ack is new: fair lossy
	// channels are overcome by retransmission, so per-frame ACK volume
	// is unbounded and duplicates carry no lifecycle information — a
	// per-frame emit here is what would break the 5% tracing budget
	// (`urbbench -obs`). MSG receptions keep their per-first-copy RECV.
	if p.tr != nil && set.Len() != before {
		p.tr.AckProgress(id, ident.Tag{}, set.Len(), p.threshold)
	}
	p.checkDeliver(&out, id)
	return out
}

// checkDeliver applies the guard of lines 22-26: a majority of distinct
// tag_acks — strictly more than n/2 (or the configured threshold for the
// impossibility reenactment).
func (p *Majority) checkDeliver(out *Step, id wire.MsgID) {
	set, ok := p.acks[id]
	if !ok {
		return
	}
	if set.Len() >= p.threshold {
		p.deliverOnce(out, id)
	}
}

// Tick is one pass of Task 1 (lines 28-32): retransmit every message in
// MSG_i. The set never shrinks, which is why Algorithm 1 is not
// quiescent.
func (p *Majority) Tick() Step {
	var out Step
	for _, id := range p.msgs.snapshotIDs() {
		p.send(&out, wire.NewMsg(id))
	}
	if p.cfg.CheckOnTick {
		for _, id := range p.ackOrder {
			p.checkDeliver(&out, id)
		}
	}
	return out
}

// Stats implements Process.
func (p *Majority) Stats() Stats {
	entries := 0
	for _, s := range p.acks {
		entries += s.Len()
	}
	return Stats{
		MsgSet:     p.msgs.len(),
		MyAcks:     len(p.mine),
		AckEntries: entries,
		Delivered:  len(p.delivered),
		WireSent:   p.wireSent,
	}
}

// AckCount reports how many distinct tag_acks have been seen for id
// (test hook).
func (p *Majority) AckCount(id wire.MsgID) int {
	if s, ok := p.acks[id]; ok {
		return s.Len()
	}
	return 0
}

// HasDelivered reports whether id has been URB-delivered locally.
func (p *Majority) HasDelivered(id wire.MsgID) bool { return p.delivered[id] }

// KnowsMsg reports whether id is in MSG_i (test hook).
func (p *Majority) KnowsMsg(id wire.MsgID) bool { return p.msgs.has(id) }

// Explain is the stall explainer (DESIGN.md §14): it reads the live
// delivery evidence for id and reports exactly what the majority guard
// is still missing. Call it on the goroutine hosting the process.
func (p *Majority) Explain(id wire.MsgID) obs.Explanation {
	ex := obs.Explanation{
		ID:        id,
		Algo:      "majority",
		Delivered: p.delivered[id],
		Need:      p.threshold,
	}
	if s, ok := p.acks[id]; ok {
		ex.Ackers = s.Len()
	}
	ex.Known = ex.Ackers > 0 || p.msgs.has(id) || p.sawMsg[id]
	return ex
}
