package urb

import (
	"testing"

	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

func lbl(h uint64) ident.Tag { return ident.Tag{Hi: h, Lo: 0xb} }

func newQui(t *testing.T, det fd.Detector, cfg Config) *Quiescent {
	t.Helper()
	return NewQuiescent(det, ident.NewSource(xrand.New(77)), cfg)
}

func staticFD(pairs ...fd.Pair) fd.Static {
	v := fd.Normalize(append(fd.View(nil), pairs...))
	return fd.Static{Theta: v.Clone(), Star: v.Clone()}
}

func TestQuiescentAckCarriesThetaLabels(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 2}, fd.Pair{Label: lbl(2), Number: 2})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	s := p.Receive(wire.NewMsg(id))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindAck {
		t.Fatalf("want one ACK, got %v", s.Broadcasts)
	}
	got := ident.NewSet(s.Broadcasts[0].Labels...)
	if got.Len() != 2 || !got.Has(lbl(1)) || !got.Has(lbl(2)) {
		t.Fatalf("ACK labels %v", s.Broadcasts[0].Labels)
	}
}

func TestQuiescentDeliveryGuard(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 2})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	// One acker claiming the label: claims=1 < 2, no delivery.
	s := p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
	if len(s.Deliveries) != 0 {
		t.Fatal("premature delivery")
	}
	// Second acker claiming an unrelated label: still no delivery.
	s = p.Receive(wire.NewLabeledAck(id, lbl(101), []ident.Tag{lbl(5)}))
	if len(s.Deliveries) != 0 {
		t.Fatal("unrelated label counted")
	}
	// Second claimant of the watched label: claims=2 >= 2 → deliver.
	s = p.Receive(wire.NewLabeledAck(id, lbl(102), []ident.Tag{lbl(1)}))
	if len(s.Deliveries) != 1 || s.Deliveries[0].ID != id {
		t.Fatalf("expected delivery, got %v", s.Deliveries)
	}
	if p.Claims(id, lbl(1)) != 2 || p.Ackers(id) != 3 {
		t.Fatalf("claims=%d ackers=%d", p.Claims(id, lbl(1)), p.Ackers(id))
	}
}

func TestQuiescentDuplicateAckerNotDoubleCounted(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 2})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
	s := p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
	if len(s.Deliveries) != 0 {
		t.Fatal("same tag_ack delivered twice counted as two processes")
	}
	if p.Claims(id, lbl(1)) != 1 {
		t.Fatalf("claims=%d, want 1", p.Claims(id, lbl(1)))
	}
}

func TestQuiescentReplacementSemantics(t *testing.T) {
	// D1: a refreshed ACK replaces the acker's label set — additions
	// count up, removals count down.
	det := staticFD(fd.Pair{Label: lbl(1), Number: 99})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1), lbl(2)}))
	if p.Claims(id, lbl(1)) != 1 || p.Claims(id, lbl(2)) != 1 {
		t.Fatal("initial claims wrong")
	}
	// Refresh with lbl(2) gone and lbl(3) new.
	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1), lbl(3)}))
	if p.Claims(id, lbl(1)) != 1 {
		t.Fatalf("stable label perturbed: %d", p.Claims(id, lbl(1)))
	}
	if p.Claims(id, lbl(2)) != 0 {
		t.Fatalf("removed label still claimed: %d", p.Claims(id, lbl(2)))
	}
	if p.Claims(id, lbl(3)) != 1 {
		t.Fatalf("added label not claimed: %d", p.Claims(id, lbl(3)))
	}
	if p.Ackers(id) != 1 {
		t.Fatalf("ackers %d, want 1", p.Ackers(id))
	}
}

func TestQuiescentDeliversWhenNumberDrops(t *testing.T) {
	// D2: with the paper's strict equality a number dropping from 3 to 2
	// after claims reached 3 would wedge forever; >= must deliver.
	view := fd.Normalize(fd.View{{Label: lbl(1), Number: 5}})
	det := &fd.Func{
		ThetaFn: func() fd.View { return view },
		StarFn:  func() fd.View { return view },
	}
	p := newQui(t, det, Config{CheckOnTick: true})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}
	for i := uint64(0); i < 3; i++ {
		s := p.Receive(wire.NewLabeledAck(id, lbl(100+i), []ident.Tag{lbl(1)}))
		if len(s.Deliveries) != 0 {
			t.Fatal("premature delivery")
		}
	}
	// FD stabilises: number drops to 2 while claims is already 3.
	view = fd.Normalize(fd.View{{Label: lbl(1), Number: 2}})
	s := p.Tick()
	if len(s.Deliveries) != 1 {
		t.Fatalf("delivery missed after number dropped, got %v", s.Deliveries)
	}
}

func TestQuiescentRetirement(t *testing.T) {
	// Two correct processes' labels, number 2 each: once both ackers
	// claim both labels and the message is delivered, Task 1 retires it.
	det := staticFD(fd.Pair{Label: lbl(1), Number: 2}, fd.Pair{Label: lbl(2), Number: 2})
	p := newQui(t, det, Config{})
	_, s := p.Broadcast([]byte("m"))
	id := wire.MsgID{Tag: ident.Tag{}, Body: "m"}
	// Recover the id from the first tick's MSG.
	s = p.Tick()
	if len(s.Broadcasts) != 1 {
		t.Fatal("expected the MSG broadcast")
	}
	id = s.Broadcasts[0].ID()
	both := []ident.Tag{lbl(1), lbl(2)}
	p.Receive(wire.NewLabeledAck(id, lbl(100), both))
	s = p.Receive(wire.NewLabeledAck(id, lbl(101), both))
	if len(s.Deliveries) != 1 {
		t.Fatal("should have delivered")
	}
	// Next tick: broadcast once more (paper line 54), then retire.
	s = p.Tick()
	if len(s.Broadcasts) != 1 {
		t.Fatal("final broadcast expected before retirement")
	}
	if p.KnowsMsg(id) {
		t.Fatal("message should have been retired from MSG")
	}
	if p.RetiredCount() != 1 || p.Stats().Retired != 1 {
		t.Fatal("retired count")
	}
	// Quiescence: subsequent ticks emit nothing.
	for i := 0; i < 10; i++ {
		if s := p.Tick(); len(s.Broadcasts) != 0 {
			t.Fatalf("tick %d not quiescent: %v", i, s.Broadcasts)
		}
	}
}

func TestQuiescentRetireBeforeSendSavesARound(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 1})
	p := newQui(t, det, Config{RetireBeforeSend: true})
	_, _ = p.Broadcast([]byte("m"))
	s := p.Tick()
	id := s.Broadcasts[0].ID()
	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
	// Guard already holds: the next tick retires without broadcasting.
	s = p.Tick()
	if len(s.Broadcasts) != 0 {
		t.Fatalf("RetireBeforeSend should skip the final broadcast, got %v", s.Broadcasts)
	}
	if p.KnowsMsg(id) {
		t.Fatal("not retired")
	}
}

func TestQuiescentRetirementBlockedByUncoveredPair(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 1}, fd.Pair{Label: lbl(2), Number: 1})
	p := newQui(t, det, Config{})
	_, _ = p.Broadcast([]byte("m"))
	s := p.Tick()
	id := s.Broadcasts[0].ID()
	// Only lbl(1) is ever claimed; lbl(2) stays uncovered.
	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
	for i := 0; i < 5; i++ {
		p.Tick()
	}
	if !p.KnowsMsg(id) {
		t.Fatal("retired although a correct process never acked")
	}
}

func TestQuiescentRetirementBlockedByForeignLabel(t *testing.T) {
	// An acker claiming a label outside AP* blocks retirement (paper's
	// equality clause) until the label disappears from the acker's
	// refreshes or is purged as stale.
	theta := fd.Normalize(fd.View{
		{Label: lbl(1), Number: 1},
		{Label: lbl(7), Number: 2}, // foreign label still visible in AΘ
	})
	star := fd.Normalize(fd.View{{Label: lbl(1), Number: 1}})
	det := fd.Static{Theta: theta, Star: star}
	p := newQui(t, det, Config{})
	_, _ = p.Broadcast([]byte("m"))
	s := p.Tick()
	id := s.Broadcasts[0].ID()
	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1), lbl(7)}))
	p.Tick()
	if !p.KnowsMsg(id) {
		t.Fatal("retired while an acker still claims a non-AP* label")
	}
}

func TestQuiescentPurgeUnblocksRetirement(t *testing.T) {
	// D4: a crashed acker's frozen ACK claims its own (now dead) label.
	// Once the label is gone from both views, the purge removes it and
	// retirement proceeds.
	view := fd.Normalize(fd.View{
		{Label: lbl(1), Number: 1},
		{Label: lbl(66), Number: 2}, // the faulty process's label, pre-GST
	})
	det := &fd.Func{
		ThetaFn: func() fd.View { return view },
		StarFn:  func() fd.View { return view },
	}
	p := newQui(t, det, Config{})
	_, _ = p.Broadcast([]byte("m"))
	s := p.Tick()
	id := s.Broadcasts[0].ID()
	// The crashed acker's only ACK, claiming its own label.
	p.Receive(wire.NewLabeledAck(id, lbl(200), []ident.Tag{lbl(66)}))
	// A correct acker claiming the correct label.
	p.Receive(wire.NewLabeledAck(id, lbl(201), []ident.Tag{lbl(1)}))
	p.Tick()
	if !p.KnowsMsg(id) {
		t.Fatal("should be blocked: lbl(66) pair (number 2) is uncovered")
	}
	// GST: the faulty label vanishes from both views permanently.
	view = fd.Normalize(fd.View{{Label: lbl(1), Number: 1}})
	p.Tick() // purge happens, guard re-evaluated
	if p.KnowsMsg(id) {
		t.Fatal("purge did not unblock retirement")
	}
	if p.Claims(id, lbl(66)) != 0 {
		t.Fatalf("stale claim survived purge: %d", p.Claims(id, lbl(66)))
	}
}

func TestQuiescentLateMsgDoesNotResurrect(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 1})
	p := newQui(t, det, Config{})
	_, _ = p.Broadcast([]byte("m"))
	s := p.Tick()
	id := s.Broadcasts[0].ID()
	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
	p.Tick() // retires
	if p.KnowsMsg(id) {
		t.Fatal("precondition: retired")
	}
	// A stale MSG copy straggles in: it must be ACKed (so slow peers can
	// still make progress) but must NOT re-enter MSG (paper line 9).
	s = p.Receive(wire.NewMsg(id))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindAck {
		t.Fatalf("late MSG should still be ACKed, got %v", s.Broadcasts)
	}
	if p.KnowsMsg(id) {
		t.Fatal("late MSG resurrected a retired message")
	}
	for i := 0; i < 3; i++ {
		if s := p.Tick(); len(s.Broadcasts) != 0 {
			t.Fatal("resurrection broke quiescence")
		}
	}
}

func TestQuiescentFastDelivery(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 1})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 3, Lo: 3}, Body: "zoom"}
	s := p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
	if len(s.Deliveries) != 1 || !s.Deliveries[0].Fast {
		t.Fatalf("expected fast delivery, got %v", s.Deliveries)
	}
	// The fast-delivered message is not in MSG (never received as MSG),
	// so this process does not retransmit it.
	if p.KnowsMsg(id) {
		t.Fatal("fast-delivered message should not be in MSG")
	}
}

func TestQuiescentIntegrityAtMostOnce(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 1})
	p := newQui(t, det, Config{CheckOnTick: true})
	id := wire.MsgID{Tag: ident.Tag{Hi: 3, Lo: 3}, Body: "once"}
	total := 0
	for i := uint64(0); i < 5; i++ {
		s := p.Receive(wire.NewLabeledAck(id, lbl(100+i), []ident.Tag{lbl(1)}))
		total += len(s.Deliveries)
	}
	total += len(p.Tick().Deliveries)
	if total != 1 {
		t.Fatalf("delivered %d times", total)
	}
}

func TestQuiescentEmptyAPStarNeverRetires(t *testing.T) {
	det := fd.Static{
		Theta: fd.Normalize(fd.View{{Label: lbl(1), Number: 1}}),
		Star:  nil,
	}
	p := newQui(t, det, Config{})
	_, _ = p.Broadcast([]byte("m"))
	s := p.Tick()
	id := s.Broadcasts[0].ID()
	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
	for i := 0; i < 5; i++ {
		p.Tick()
	}
	if !p.KnowsMsg(id) {
		t.Fatal("retired with no failure detector evidence at all")
	}
}

func TestQuiescentIgnoresForeignKinds(t *testing.T) {
	p := newQui(t, staticFD(), Config{})
	s := p.Receive(wire.Message{Kind: wire.Kind(42), Body: []byte("junk"), Tag: ident.Tag{Hi: 1}})
	if len(s.Broadcasts)+len(s.Deliveries) != 0 {
		t.Fatal("unknown kinds must be ignored")
	}
}

func TestQuiescentClusterConvergesAndQuiesces(t *testing.T) {
	// Three processes with a shared exact "oracle-like" static view: all
	// deliver everything and all retire everything.
	const n = 3
	labels := []ident.Tag{lbl(1), lbl(2), lbl(3)}
	view := fd.Normalize(fd.View{
		{Label: labels[0], Number: n},
		{Label: labels[1], Number: n},
		{Label: labels[2], Number: n},
	})
	tags := tagsFor(404, n)
	procs := make([]Process, n)
	for i := range procs {
		det := fd.Static{Theta: view, Star: view}
		// Each process's AΘ shows all three labels; its ACKs therefore
		// claim all three, which is exactly the oracle's exact mode.
		procs[i] = NewQuiescent(det, tags[i], Config{})
	}
	pm := newPump(t, procs...)
	pm.broadcast(0, "x")
	pm.broadcast(1, "y")
	pm.run(4)
	for i := 0; i < n; i++ {
		if got := len(pm.deliveredIDs(i)); got != 2 {
			t.Fatalf("p%d delivered %d, want 2", i, got)
		}
		st := procs[i].Stats()
		if st.MsgSet != 0 {
			t.Fatalf("p%d still retransmits %d messages", i, st.MsgSet)
		}
	}
	// Quiescence: one more round generates zero traffic.
	before := len(pm.queue)
	for i, proc := range procs {
		s := proc.Tick()
		if len(s.Broadcasts) != 0 {
			t.Fatalf("p%d not quiescent", i)
		}
	}
	if len(pm.queue) != before {
		t.Fatal("queue grew")
	}
}

func TestQuiescentStatsShape(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 1})
	p := newQui(t, det, Config{})
	_, _ = p.Broadcast([]byte("a"))
	_, _ = p.Broadcast([]byte("b"))
	st := p.Stats()
	if st.MsgSet != 2 || st.Delivered != 0 || st.MyAcks != 0 {
		t.Fatalf("stats %+v", st)
	}
	id := wire.MsgID{Tag: ident.Tag{Hi: 6, Lo: 6}, Body: "c"}
	p.Receive(wire.NewMsg(id))
	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
	st = p.Stats()
	if st.MyAcks != 1 || st.AckEntries != 1 || st.Delivered != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestQuiescentPurgeDropsDeadAckers: the D4 purge must delete acker
// entries whose entire label set belonged to crashed processes — not
// just empty their sets — so byAcker/ackerOrder stop growing and
// retireReady stops scanning dead ackers forever. Retirement must still
// hold afterwards.
func TestQuiescentPurgeDropsDeadAckers(t *testing.T) {
	// Live view: labels 1 and 2, each needing 2 claimants. Label 3's
	// owner has crashed: it appears in no current view.
	det := staticFD(fd.Pair{Label: lbl(1), Number: 2}, fd.Pair{Label: lbl(2), Number: 2})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}

	// The message is known (so Task 1 retransmits and may retire it).
	p.Receive(wire.NewMsg(id))
	// Two live ackers claim both live labels; the crashed process's own
	// frozen ACK claims only its stale label 3.
	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1), lbl(2)}))
	p.Receive(wire.NewLabeledAck(id, lbl(101), []ident.Tag{lbl(1), lbl(2)}))
	p.Receive(wire.NewLabeledAck(id, lbl(102), []ident.Tag{lbl(3)}))

	if !p.HasDelivered(id) {
		t.Fatal("delivery guard should have fired (claims[l1]=2 >= 2)")
	}
	if p.Ackers(id) != 3 {
		t.Fatalf("ackers=%d before purge, want 3", p.Ackers(id))
	}

	// Tick purges stale labels; the dead acker's set empties, so the
	// entry itself must go, and retirement must still succeed (all AP*
	// pairs covered, no remaining acker claims outside AP*).
	p.Tick()
	if p.Ackers(id) != 2 {
		t.Fatalf("ackers=%d after purge, want 2 (dead acker entry kept)", p.Ackers(id))
	}
	if p.KnowsMsg(id) {
		t.Fatal("message not retired after purge")
	}
	if p.RetiredCount() != 1 {
		t.Fatalf("retired=%d, want 1", p.RetiredCount())
	}
	if st := p.Stats(); st.AckEntries != 2 {
		t.Fatalf("AckEntries=%d, want 2 after dead-acker drop", st.AckEntries)
	}
}

// TestQuiescentPurgedAckerReadmitted: a dropped acker that turns out to
// be alive (it re-ACKs with a live label) is re-admitted with correct
// claim accounting.
func TestQuiescentPurgedAckerReadmitted(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 99})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}

	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(7)})) // stale-only
	p.Tick()                                                         // purge drops the acker
	if p.Ackers(id) != 0 {
		t.Fatalf("ackers=%d after purge, want 0", p.Ackers(id))
	}
	p.Receive(wire.NewLabeledAck(id, lbl(100), []ident.Tag{lbl(1)}))
	if p.Ackers(id) != 1 || p.Claims(id, lbl(1)) != 1 {
		t.Fatalf("re-admitted acker mis-accounted: ackers=%d claims=%d",
			p.Ackers(id), p.Claims(id, lbl(1)))
	}
}

// TestQuiescentClaimsMapDoesNotLeakDeadLabels: a claim count that drops
// to zero removes its map entry entirely — purged stale labels must not
// accumulate as permanent zero-valued keys.
func TestQuiescentClaimsMapDoesNotLeakDeadLabels(t *testing.T) {
	det := staticFD(fd.Pair{Label: lbl(1), Number: 99})
	p := newQui(t, det, Config{})
	id := wire.MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: "m"}

	// 64 ackers, each claiming a distinct stale label plus the live one.
	for i := uint64(0); i < 64; i++ {
		p.Receive(wire.NewLabeledAck(id, lbl(100+i), []ident.Tag{lbl(1), lbl(200 + i)}))
	}
	p.Tick() // purge: every stale label dies; ackers keep {lbl(1)}
	st := p.acks[id]
	if len(st.claims) != 1 {
		t.Fatalf("claims map holds %d keys after purge, want 1 (dead labels leaked)", len(st.claims))
	}
	if st.claims[lbl(1)] != 64 {
		t.Fatalf("live label count corrupted: %d", st.claims[lbl(1)])
	}
}
