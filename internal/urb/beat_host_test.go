package urb

import (
	"testing"

	"anonurb/internal/ident"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

func deltaHost(seed uint64, timeout int64, clock func() int64) *HeartbeatHost {
	return NewHeartbeatHost(ident.NewSource(xrand.New(seed)), timeout, 1, clock,
		Config{DeltaAcks: true, DeltaBeats: true, CompactDelivered: true})
}

func beatsOf(s Step) []wire.Message {
	var out []wire.Message
	for _, m := range s.Broadcasts {
		if m.Kind.IsBeat() {
			out = append(out, m)
		}
	}
	return out
}

func TestHeartbeatHostDeltaBeatsSnapshotThenRefresh(t *testing.T) {
	now := int64(0)
	h := deltaHost(1, 100, func() int64 { return now })
	ref := wire.BeatRef(h.Detector().Label())

	s := h.Tick()
	bs := beatsOf(s)
	if len(bs) != 1 || bs[0].Kind != wire.KindBeatDelta || bs[0].Flags&wire.BeatFlagSnapshot == 0 {
		t.Fatalf("first beat must be a snapshot BEATΔ, got %v", bs)
	}
	if bs[0].Ref != ref || bs[0].Epoch != 1 ||
		len(bs[0].Labels) != 1 || bs[0].Labels[0] != h.Detector().Label() {
		t.Fatalf("snapshot beat malformed: %v", bs[0])
	}
	// Steady state: refreshes only, and they are smaller than a legacy
	// beat.
	for i := 0; i < 3; i++ {
		bs = beatsOf(h.Tick())
		if len(bs) != 1 || bs[0].Kind != wire.KindBeatDelta || bs[0].Flags != 0 {
			t.Fatalf("tick %d: want refresh BEATΔ, got %v", i, bs)
		}
		if bs[0].EncodedSize() >= wire.NewBeat(h.Detector().Label()).EncodedSize() {
			t.Fatal("refresh beat not smaller than legacy beat")
		}
	}
	if h.BeatsSent() != 4 {
		t.Fatalf("BeatsSent = %d, want 4", h.BeatsSent())
	}
}

func TestHeartbeatHostDeltaBeatReception(t *testing.T) {
	now := int64(0)
	a := deltaHost(2, 100, func() int64 { return now })
	b := deltaHost(3, 100, func() int64 { return now })

	// a's snapshot teaches b the stream; a's refreshes then keep the
	// label alive without carrying it.
	snap := beatsOf(a.Tick())[0]
	if s := b.Receive(snap); len(s.Broadcasts) != 0 {
		t.Fatalf("snapshot reception caused traffic: %v", s.Broadcasts)
	}
	if !b.Detector().ATheta().Has(a.Detector().Label()) {
		t.Fatal("snapshot beat not heard")
	}
	now = 90 // almost timed out
	refresh := beatsOf(a.Tick())[0]
	if refresh.Flags != 0 {
		t.Fatalf("want refresh, got %v", refresh)
	}
	b.Receive(refresh)
	now = 150 // a's snapshot would be stale by now; the refresh renewed it
	if !b.Detector().ATheta().Has(a.Detector().Label()) {
		t.Fatal("refresh did not renew liveness")
	}
}

func TestHeartbeatHostUnknownRefTriggersBeatResync(t *testing.T) {
	now := int64(0)
	a := deltaHost(4, 100, func() int64 { return now })
	b := deltaHost(5, 100, func() int64 { return now })

	// b sees a refresh for a stream it never learned: it must ask.
	a.Tick() // a's snapshot, lost
	refresh := beatsOf(a.Tick())[0]
	s := b.Receive(refresh)
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindBeatReq {
		t.Fatalf("want BEATREQ, got %v", s.Broadcasts)
	}
	if s.Broadcasts[0].Ref != wire.BeatRef(a.Detector().Label()) {
		t.Fatal("BEATREQ misaddressed")
	}
	// Rate-limited per ref per tick.
	if s := b.Receive(refresh); len(s.Broadcasts) != 0 {
		t.Fatalf("second BEATREQ within one tick: %v", s.Broadcasts)
	}
	// The owner answers with a snapshot (once per tick); a foreign host
	// stays silent.
	req := wire.NewBeatResync(wire.BeatRef(a.Detector().Label()))
	if s := b.Receive(req); len(s.Broadcasts) != 0 {
		t.Fatalf("non-owner answered a BEATREQ: %v", s.Broadcasts)
	}
	ans := a.Receive(req)
	if len(ans.Broadcasts) != 1 || ans.Broadcasts[0].Flags&wire.BeatFlagSnapshot == 0 {
		t.Fatalf("owner did not answer with a snapshot: %v", ans.Broadcasts)
	}
	if s := a.Receive(req); len(s.Broadcasts) != 0 {
		t.Fatalf("second snapshot answer within one tick: %v", s.Broadcasts)
	}
	// The answer repairs the stream: the next refresh is attributable.
	b.Receive(ans.Broadcasts[0])
	if s := b.Receive(refresh); len(s.Broadcasts) != 0 {
		t.Fatalf("repaired stream still requests: %v", s.Broadcasts)
	}
	if !b.Detector().ATheta().Has(a.Detector().Label()) {
		t.Fatal("repaired stream did not hear the label")
	}
}

// TestHeartbeatHostRefCollisionStaysAccurate: two streams sharing one
// ref (hand-built — a 2^-64 event live) must never cause the receiver
// to refresh the wrong label. The mapping degrades to snapshot-only.
func TestHeartbeatHostRefCollisionStaysAccurate(t *testing.T) {
	now := int64(0)
	h := deltaHost(6, 100, func() int64 { return now })
	const ref = uint64(0xdeadbeef)
	lx, ly := lbl(71), lbl(72)
	h.Receive(wire.NewBeatSnapshot(ref, 1, []ident.Tag{lx}))
	h.Receive(wire.NewBeatSnapshot(ref, 1, []ident.Tag{ly})) // collision detected
	// Both labels were heard via their snapshots (explicit labels are
	// always attributable).
	if !h.Detector().ATheta().Has(lx) || !h.Detector().ATheta().Has(ly) {
		t.Fatal("snapshot labels not heard")
	}
	// x crashes; only y keeps beating refreshes. The ambiguous mapping
	// must NOT refresh either label — it asks for snapshots instead.
	now = 200
	s := h.Receive(wire.NewBeatRefresh(ref, 1))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindBeatReq {
		t.Fatalf("ambiguous refresh must resync, got %v", s.Broadcasts)
	}
	if h.Detector().ATheta().Has(lx) || h.Detector().ATheta().Has(ly) {
		t.Fatal("ambiguous refresh kept a label alive")
	}
	// y's snapshot answer revives y alone: accuracy holds.
	h.Receive(wire.NewBeatSnapshot(ref, 1, []ident.Tag{ly}))
	if h.Detector().ATheta().Has(lx) {
		t.Fatal("collision revived the crashed label")
	}
	if !h.Detector().ATheta().Has(ly) {
		t.Fatal("surviving label not heard through ambiguity")
	}
}

// TestHeartbeatHostRefCollisionAcrossEpochsKeepsLiveness: two streams
// colliding on one ref at DIFFERENT epochs (one host rejoined, say)
// never mark the mapping ambiguous — the lower-epoch host's refreshes
// read as stale. They must still trigger a resync, not silent
// starvation: its snapshot answers keep it alive.
func TestHeartbeatHostRefCollisionAcrossEpochsKeepsLiveness(t *testing.T) {
	now := int64(0)
	h := deltaHost(8, 100, func() int64 { return now })
	const ref = uint64(0xfeedface)
	la, lb := lbl(81), lbl(82)
	h.Receive(wire.NewBeatSnapshot(ref, 1, []ident.Tag{la}))       // host A, epoch 1
	h.Receive(wire.NewBeatSnapshot(ref, 1<<16|1, []ident.Tag{lb})) // host B, rejoined incarnation
	// A's refreshes are behind the mapping now. Staying silent would
	// suspect the live A forever; the host must ask for a snapshot.
	now = 90
	s := h.Receive(wire.NewBeatRefresh(ref, 1))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindBeatReq {
		t.Fatalf("behind-epoch refresh must resync, got %v", s.Broadcasts)
	}
	// A answers (both owners would): its labels are heard explicitly.
	h.Receive(wire.NewBeatSnapshot(ref, 1, []ident.Tag{la}))
	if !h.Detector().ATheta().Has(la) {
		t.Fatal("lower-epoch collided stream starved")
	}
}

// TestHeartbeatHostDeltaEndToEnd mirrors TestHeartbeatHostEndToEnd with
// the delta beat encoding (and compaction) on: detectors converge
// through snapshot+refresh streams, a broadcast delivers and retires
// everywhere, and beats keep flowing after algorithm quiescence.
func TestHeartbeatHostDeltaEndToEnd(t *testing.T) {
	now := int64(0)
	clock := func() int64 { return now }
	const n = 3
	root := xrand.New(99)
	hosts := make([]*HeartbeatHost, n)
	procs := make([]Process, n)
	for i := range hosts {
		hosts[i] = NewHeartbeatHost(ident.NewSource(root.Split()), 200, 1, clock,
			Config{DeltaAcks: true, DeltaBeats: true, CompactDelivered: true})
		procs[i] = hosts[i]
	}
	pm := newPump(t, procs...)

	for r := 0; r < 3; r++ {
		now += 10
		pm.round()
	}
	for i, h := range hosts {
		if got := len(h.Detector().ATheta()); got != n {
			t.Fatalf("host %d detector sees %d labels, want %d", i, got, n)
		}
	}

	pm.broadcast(0, "via-delta-beats")
	for r := 0; r < 6; r++ {
		now += 10
		pm.round()
	}
	for i := range hosts {
		if got := len(pm.deliveredIDs(i)); got != 1 {
			t.Fatalf("host %d delivered %d", i, got)
		}
		st := hosts[i].Inner().Stats()
		if st.MsgSet != 0 || st.Retired != 1 {
			t.Fatalf("host %d algorithm not quiescent: %+v", i, st)
		}
		if st.CompactedMsgs != 1 {
			t.Fatalf("host %d did not compact the delivered message: %+v", i, st)
		}
	}
	before := hosts[0].BeatsSent()
	now += 10
	pm.round()
	if hosts[0].BeatsSent() != before+1 {
		t.Fatal("beats should continue after algorithm quiescence")
	}
}

// TestHeartbeatHostMixedBeatModes: a delta-beating host and a legacy
// host interoperate — reception of every beat form is always on.
func TestHeartbeatHostMixedBeatModes(t *testing.T) {
	now := int64(0)
	clock := func() int64 { return now }
	root := xrand.New(123)
	legacy := NewHeartbeatHost(ident.NewSource(root.Split()), 200, 1, clock, Config{DeltaAcks: true})
	delta := NewHeartbeatHost(ident.NewSource(root.Split()), 200, 1, clock,
		Config{DeltaAcks: true, DeltaBeats: true})
	pm := newPump(t, legacy, delta)

	for r := 0; r < 3; r++ {
		now += 10
		pm.round()
	}
	if !legacy.Detector().ATheta().Has(delta.Detector().Label()) {
		t.Fatal("legacy host does not hear delta beats")
	}
	if !delta.Detector().ATheta().Has(legacy.Detector().Label()) {
		t.Fatal("delta host does not hear legacy beats")
	}
	pm.broadcast(1, "mixed")
	for r := 0; r < 6; r++ {
		now += 10
		pm.round()
	}
	for i := 0; i < 2; i++ {
		if got := len(pm.deliveredIDs(i)); got != 1 {
			t.Fatalf("host %d delivered %d", i, got)
		}
	}
}

// TestHeartbeatHostRejoinRebasesBeatEpoch: recovery bumps the beat
// stream's incarnation and re-snapshots, so receivers synced at the
// lost window's epochs resynchronise instead of discarding refreshes.
func TestHeartbeatHostRejoinRebasesBeatEpoch(t *testing.T) {
	now := int64(0)
	h := deltaHost(7, 100, func() int64 { return now })
	h.Tick() // snapshot at epoch 1
	snap := h.Snapshot()

	now = 20
	succ := deltaHost(7, 100, func() int64 { return now })
	if err := succ.Restore(snap); err != nil {
		t.Fatal(err)
	}
	succ.Rejoin()
	bs := beatsOf(succ.Tick())
	if len(bs) != 1 || bs[0].Flags&wire.BeatFlagSnapshot == 0 {
		t.Fatalf("recovered host must re-snapshot, got %v", bs)
	}
	if bs[0].Epoch <= 1 {
		t.Fatalf("recovered beat epoch %d not rebased above the predecessor's", bs[0].Epoch)
	}
	if bs[0].Labels[0] != h.Detector().Label() {
		t.Fatal("recovered host lost its persistent detector label")
	}
}
