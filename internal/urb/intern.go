package urb

import (
	"sort"

	"anonurb/internal/ident"
)

// This file implements the refcount-interned label sets behind
// Config.CompactDelivered (DESIGN.md §10).
//
// Post-GST every correct acker's AΘ view is the same label set, so the
// per-(message, acker) matrices of Algorithm 2 hold thousands of copies
// of one value. The interner stores each distinct set once; compacted
// acker views hold a reference. Interned sets are immutable — every
// mutation path (delta folds, D4 purges, full-set replacement) goes
// copy-on-write through the ackState methods in quiescent.go — so
// sharing is invisible to the algorithm: claims, guards and fingerprints
// read the exact same label values either way.

// appendTagBytes appends a tag's canonical 16 big-endian bytes — the
// one serialization shared by every in-process key (setKey, viewKey,
// beatSetKey).
func appendTagBytes(b []byte, t ident.Tag) []byte {
	return append(b,
		byte(t.Hi>>56), byte(t.Hi>>48), byte(t.Hi>>40), byte(t.Hi>>32),
		byte(t.Hi>>24), byte(t.Hi>>16), byte(t.Hi>>8), byte(t.Hi),
		byte(t.Lo>>56), byte(t.Lo>>48), byte(t.Lo>>40), byte(t.Lo>>32),
		byte(t.Lo>>24), byte(t.Lo>>16), byte(t.Lo>>8), byte(t.Lo))
}

// setKey renders a label set's canonical identity: the sorted labels'
// raw bytes. Insertion order is not part of a view's meaning (every
// consumer is membership- or sorted-order-based), so order-insensitive
// keying is what lets two ackers that learned the same view in
// different orders share one set.
func setKey(s *ident.Set) string {
	tags := append([]ident.Tag(nil), s.Slice()...)
	sort.Slice(tags, func(i, j int) bool { return tags[i].Less(tags[j]) })
	b := make([]byte, 0, 16*len(tags))
	for _, t := range tags {
		b = appendTagBytes(b, t)
	}
	return string(b)
}

// setEntry is one interned set plus its reference count.
type setEntry struct {
	key    string
	labels *ident.Set // immutable while interned
	refs   int
}

// setIntern is the per-process intern table. The zero value is ready to
// use.
type setIntern struct {
	m map[string]*setEntry
}

// intern returns the table's entry for s's value, taking one reference.
// A fresh value takes ownership of s (which must not be mutated
// afterwards); an existing value leaves s to the garbage collector.
func (t *setIntern) intern(s *ident.Set) *setEntry {
	if t.m == nil {
		t.m = make(map[string]*setEntry)
	}
	k := setKey(s)
	if e, ok := t.m[k]; ok {
		e.refs++
		return e
	}
	e := &setEntry{key: k, labels: s, refs: 1}
	t.m[k] = e
	return e
}

// release drops one reference, removing the entry when none remain.
func (t *setIntern) release(e *setEntry) {
	if e == nil {
		return
	}
	e.refs--
	if e.refs == 0 {
		delete(t.m, e.key)
	}
}

// distinct reports the number of interned sets.
func (t *setIntern) distinct() int { return len(t.m) }

// storage reports the label slots the table physically holds (each
// distinct set counted once).
func (t *setIntern) storage() int {
	n := 0
	for _, e := range t.m {
		n += e.labels.Len()
	}
	return n
}
