package ident

import (
	"testing"
	"testing/quick"

	"anonurb/internal/xrand"
)

func TestSourceNeverZero(t *testing.T) {
	s := NewSource(xrand.New(1))
	for i := 0; i < 100000; i++ {
		if s.Next().Zero() {
			t.Fatal("Source produced the reserved zero tag")
		}
	}
}

func TestSourceDeterministic(t *testing.T) {
	a := NewSource(xrand.New(5))
	b := NewSource(xrand.New(5))
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSourceUniqueAtScale(t *testing.T) {
	s := NewSource(xrand.New(7))
	r := NewRegistry()
	for i := 0; i < 200000; i++ {
		if !r.Record(s.Next(), "p") {
			t.Fatalf("collision after %d draws", i)
		}
	}
	if r.Collisions() != 0 {
		t.Fatalf("registry recorded %d collisions", r.Collisions())
	}
	if r.Count() != 200000 {
		t.Fatalf("registry count %d", r.Count())
	}
}

func TestRegistryDetectsCollision(t *testing.T) {
	r := NewRegistry()
	tg := Tag{Hi: 1, Lo: 2}
	if !r.Record(tg, "a") {
		t.Fatal("first record must succeed")
	}
	if r.Record(tg, "b") {
		t.Fatal("second record of same tag must fail")
	}
	if r.Collisions() != 1 {
		t.Fatalf("collisions = %d, want 1", r.Collisions())
	}
	owner, ok := r.Owner(tg)
	if !ok || owner != "a" {
		t.Fatalf("owner = %q, %v", owner, ok)
	}
}

func TestTagOrdering(t *testing.T) {
	a := Tag{Hi: 1, Lo: 5}
	b := Tag{Hi: 1, Lo: 9}
	c := Tag{Hi: 2, Lo: 0}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Fatal("ordering broken")
	}
	if b.Less(a) || c.Less(a) {
		t.Fatal("ordering not antisymmetric")
	}
	if a.Compare(a) != 0 || a.Compare(b) != -1 || c.Compare(a) != 1 {
		t.Fatal("Compare inconsistent")
	}
}

func TestTagCompareQuick(t *testing.T) {
	f := func(h1, l1, h2, l2 uint64) bool {
		a := Tag{Hi: h1, Lo: l1}
		b := Tag{Hi: h2, Lo: l2}
		// Exactly one of <, =, > holds, and Compare agrees with Less.
		switch a.Compare(b) {
		case -1:
			return a.Less(b) && !b.Less(a) && a != b
		case 0:
			return a == b && !a.Less(b) && !b.Less(a)
		case 1:
			return b.Less(a) && !a.Less(b) && a != b
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTagString(t *testing.T) {
	if (Tag{}).String() != "0000000000000000" {
		t.Fatalf("zero tag string %q", Tag{}.String())
	}
	a := Tag{Hi: 0xdeadbeef, Lo: 0x1234}
	if a.String() != "deadbeef00001234" {
		t.Fatalf("tag string %q", a.String())
	}
}

func TestSetAddRemoveHas(t *testing.T) {
	s := NewSet()
	a, b, c := Tag{Hi: 1}, Tag{Hi: 2}, Tag{Hi: 3}
	if !s.Add(a) || !s.Add(b) || !s.Add(c) {
		t.Fatal("adds must succeed")
	}
	if s.Add(a) {
		t.Fatal("duplicate add must report false")
	}
	if s.Len() != 3 || !s.Has(b) {
		t.Fatal("membership broken")
	}
	if !s.Remove(b) {
		t.Fatal("remove must succeed")
	}
	if s.Remove(b) {
		t.Fatal("double remove must fail")
	}
	if s.Has(b) || s.Len() != 2 {
		t.Fatal("remove did not take effect")
	}
}

func TestSetInsertionOrderPreserved(t *testing.T) {
	s := NewSet()
	tags := []Tag{{Hi: 9}, {Hi: 3}, {Hi: 7}, {Hi: 1}}
	for _, tg := range tags {
		s.Add(tg)
	}
	got := s.Slice()
	for i, tg := range tags {
		if got[i] != tg {
			t.Fatalf("order[%d] = %v, want %v", i, got[i], tg)
		}
	}
	// Removal keeps relative order of survivors.
	s.Remove(Tag{Hi: 3})
	want := []Tag{{Hi: 9}, {Hi: 7}, {Hi: 1}}
	got = s.Slice()
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after remove, order[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Index map stays consistent after compaction.
	if !s.Has(Tag{Hi: 1}) || s.Has(Tag{Hi: 3}) {
		t.Fatal("index inconsistent after removal")
	}
}

func TestSetCloneIndependent(t *testing.T) {
	s := NewSet(Tag{Hi: 1}, Tag{Hi: 2})
	c := s.Clone()
	c.Add(Tag{Hi: 3})
	c.Remove(Tag{Hi: 1})
	if s.Len() != 2 || !s.Has(Tag{Hi: 1}) || s.Has(Tag{Hi: 3}) {
		t.Fatal("clone mutated original")
	}
}

func TestSetEqualAndSubset(t *testing.T) {
	a := NewSet(Tag{Hi: 1}, Tag{Hi: 2})
	b := NewSet(Tag{Hi: 2}, Tag{Hi: 1}) // different insertion order
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal must ignore order")
	}
	c := NewSet(Tag{Hi: 1})
	if !c.SubsetOf(a) {
		t.Fatal("c ⊆ a")
	}
	if a.SubsetOf(c) {
		t.Fatal("a ⊄ c")
	}
	if a.Equal(c) {
		t.Fatal("different sizes cannot be equal")
	}
}

func TestSetDuplicateSeed(t *testing.T) {
	s := NewSet(Tag{Hi: 1}, Tag{Hi: 1}, Tag{Hi: 1})
	if s.Len() != 1 {
		t.Fatalf("len %d, want 1", s.Len())
	}
}

func TestSetPropertyAddRemove(t *testing.T) {
	// Property: after any sequence of adds/removes, Len equals the size of
	// a reference map and membership agrees.
	f := func(ops []uint8) bool {
		s := NewSet()
		ref := make(map[Tag]bool)
		for _, op := range ops {
			tg := Tag{Hi: uint64(op % 16), Lo: 1}
			if op&0x80 == 0 {
				s.Add(tg)
				ref[tg] = true
			} else {
				s.Remove(tg)
				delete(ref, tg)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for tg := range ref {
			if !s.Has(tg) {
				return false
			}
		}
		for _, tg := range s.Slice() {
			if !ref[tg] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowSourcePinsHi(t *testing.T) {
	s := NewFlowSource(0xF1, xrand.New(4))
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		tag := s.Next()
		if tag.Hi != 0xF1 {
			t.Fatalf("draw %d: Hi %#x, want pinned 0xF1", i, tag.Hi)
		}
		if seen[tag.Lo] {
			t.Fatalf("draw %d: Lo %#x repeated", i, tag.Lo)
		}
		seen[tag.Lo] = true
	}
	if s.Flow() != 0xF1 {
		t.Fatalf("Flow() = %#x, want 0xF1", s.Flow())
	}
	if NewSource(xrand.New(4)).Flow() != 0 {
		t.Fatal("unpinned source reports a flow")
	}
}

func TestFlowSourceRejectsZeroFlow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("flow 0 accepted; it is the always-admitted beat lane")
		}
	}()
	NewFlowSource(0, xrand.New(1))
}

func TestFlowSourceSkipToResync(t *testing.T) {
	a := NewFlowSource(0x77, xrand.New(9))
	for i := 0; i < 5; i++ {
		a.Next()
	}
	b := NewFlowSource(0x77, xrand.New(9))
	if err := b.SkipTo(a.Draws()); err != nil {
		t.Fatal(err)
	}
	if got, want := b.Next(), a.Next(); got != want {
		t.Fatalf("resynced source diverged: %v vs %v", got, want)
	}
}
