// Package ident implements the anonymous identifiers of the paper: the
// random tags attached to application messages (tag), the random tags
// attached to acknowledgements (tag_ack), and the random labels the failure
// detectors AΘ and AP* attach to processes.
//
// The paper assumes every drawn tag is unique ("It is necessary to generate
// a unique tag to each MSG and a unique tag_ack to each ACK"). We realise
// that assumption with 128-bit values drawn from a per-process
// deterministic stream; at the scales this simulator reaches the collision
// probability is below 2^-80, and the Registry type lets tests account for
// collisions explicitly.
package ident

import (
	"fmt"

	"anonurb/internal/xrand"
)

// Tag is a 128-bit anonymous identifier. The zero Tag is reserved as
// "absent" and is never produced by a Source.
type Tag struct {
	Hi, Lo uint64
}

// Zero reports whether t is the reserved absent value.
func (t Tag) Zero() bool { return t.Hi == 0 && t.Lo == 0 }

// Less orders tags lexicographically (Hi, then Lo). The order is used only
// for deterministic iteration and display; it has no protocol meaning.
func (t Tag) Less(u Tag) bool {
	if t.Hi != u.Hi {
		return t.Hi < u.Hi
	}
	return t.Lo < u.Lo
}

// Compare returns -1, 0 or +1 ordering t against u.
func (t Tag) Compare(u Tag) int {
	switch {
	case t == u:
		return 0
	case t.Less(u):
		return -1
	default:
		return 1
	}
}

// String renders a short hex form for traces and logs.
func (t Tag) String() string {
	return fmt.Sprintf("%08x%08x", t.Hi&0xffffffff, t.Lo&0xffffffff)
}

// Source draws fresh tags from a deterministic stream. Each simulated
// process owns one Source; the stream identity is part of the scenario
// seed, so runs replay identically.
type Source struct {
	rng   *xrand.Source
	flow  uint64
	draws uint64
}

// NewSource returns a Source backed by rng. The Source takes ownership of
// the stream.
func NewSource(rng *xrand.Source) *Source {
	return &Source{rng: rng}
}

// NewFlowSource returns a Source whose tags all share flow as their Hi
// half, with the Lo half drawn fresh per tag. Pinning the Hi half gives
// every message a broadcaster-scoped flow key that travels in the tag
// itself — through MSG retransmissions and the whole ACK family — with
// zero wire-format changes, which is what the admission stage
// (internal/admit) classifies on. Uniqueness is preserved (Lo is a
// 64-bit fresh draw), but linkability is not: all of one process's
// broadcasts share a visible prefix, a deliberate trade of anonymity for
// fairness that deployments opt into per node. flow must be nonzero.
func NewFlowSource(flow uint64, rng *xrand.Source) *Source {
	if flow == 0 {
		panic("ident: flow source requires a nonzero flow")
	}
	return &Source{rng: rng, flow: flow}
}

// Flow returns the pinned Hi half, or 0 for an unpinned Source.
func (s *Source) Flow() uint64 { return s.flow }

// Next draws a fresh tag. It never returns the zero Tag.
func (s *Source) Next() Tag {
	s.draws++
	for {
		var t Tag
		if s.flow != 0 {
			t = Tag{Hi: s.flow, Lo: s.rng.Uint64()}
		} else {
			t = Tag{Hi: s.rng.Uint64(), Lo: s.rng.Uint64()}
		}
		if !t.Zero() {
			return t
		}
	}
}

// Draws reports how many tags have been drawn. Two Sources built from the
// same seed are in identical states iff their draw counts match, which is
// what lets the model checker fingerprint process states.
func (s *Source) Draws() uint64 { return s.draws }

// SkipTo fast-forwards the stream until Draws() == draws by discarding
// tags. It is how a process restored from a snapshot resynchronises a
// fresh Source (built from the same seed) with the stream position the
// snapshot recorded, so post-recovery draws do not re-issue tags already
// pinned on the wire. It fails if the stream is already past draws —
// a Source cannot rewind.
func (s *Source) SkipTo(draws uint64) error {
	if s.draws > draws {
		return fmt.Errorf("ident: source at draw %d cannot rewind to %d", s.draws, draws)
	}
	for s.draws < draws {
		s.Next()
	}
	return nil
}

// Registry tracks every tag drawn across a whole run so tests and the
// harness can assert global uniqueness (the paper's assumption) and count
// collisions if an adversarial source is plugged in.
type Registry struct {
	seen       map[Tag]string
	collisions int
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[Tag]string)}
}

// Record notes that owner drew t. It returns false if t had already been
// drawn (a collision), in which case the collision counter is bumped.
func (r *Registry) Record(t Tag, owner string) bool {
	if _, dup := r.seen[t]; dup {
		r.collisions++
		return false
	}
	r.seen[t] = owner
	return true
}

// Collisions returns how many duplicate draws Record has observed.
func (r *Registry) Collisions() int { return r.collisions }

// Count returns how many distinct tags have been recorded.
func (r *Registry) Count() int { return len(r.seen) }

// Owner returns who first recorded t, if anyone.
func (r *Registry) Owner(t Tag) (string, bool) {
	o, ok := r.seen[t]
	return o, ok
}

// Set is a small insertion-ordered set of tags. Iteration order is the
// order of first insertion, which keeps simulator runs deterministic
// (Go map iteration order would not). It is the building block for the
// label sets carried in Algorithm 2's ACK messages.
type Set struct {
	order []Tag
	index map[Tag]int
}

// NewSet returns an empty Set, optionally seeded with tags (duplicates
// ignored).
func NewSet(tags ...Tag) *Set {
	s := &Set{index: make(map[Tag]int, len(tags))}
	for _, t := range tags {
		s.Add(t)
	}
	return s
}

// Add inserts t; it reports whether t was newly added.
func (s *Set) Add(t Tag) bool {
	if _, ok := s.index[t]; ok {
		return false
	}
	s.index[t] = len(s.order)
	s.order = append(s.order, t)
	return true
}

// Remove deletes t; it reports whether t was present. Removal compacts the
// insertion order (preserving relative order of the survivors).
func (s *Set) Remove(t Tag) bool {
	i, ok := s.index[t]
	if !ok {
		return false
	}
	copy(s.order[i:], s.order[i+1:])
	s.order = s.order[:len(s.order)-1]
	delete(s.index, t)
	for j := i; j < len(s.order); j++ {
		s.index[s.order[j]] = j
	}
	return true
}

// Has reports membership.
func (s *Set) Has(t Tag) bool {
	_, ok := s.index[t]
	return ok
}

// Len returns the number of members.
func (s *Set) Len() int { return len(s.order) }

// Slice returns the members in insertion order. The caller must not
// mutate the returned slice.
func (s *Set) Slice() []Tag { return s.order }

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{
		order: append([]Tag(nil), s.order...),
		index: make(map[Tag]int, len(s.index)),
	}
	for k, v := range s.index {
		c.index[k] = v
	}
	return c
}

// Equal reports whether s and o contain exactly the same members
// (insertion order is ignored).
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	for _, t := range s.order {
		if !o.Has(t) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	for _, t := range s.order {
		if !o.Has(t) {
			return false
		}
	}
	return true
}
