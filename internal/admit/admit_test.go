package admit

import (
	"testing"
	"time"

	"anonurb/internal/ident"
	"anonurb/internal/transport"
	"anonurb/internal/wire"
)

// --- detector ---

func testDetector(cfg Config) *detector { return newDetector(cfg.withDefaults()) }

// TestDetectorUnderRateNeverDemotes: a flow arriving strictly below its
// fair share must never trip, however long it runs.
func TestDetectorUnderRateNeverDemotes(t *testing.T) {
	d := testDetector(Config{Rate: 1 << 20, Burst: 16 << 10})
	// 512 KB/s against a 1 MB/s share: 512 bytes every millisecond.
	now := int64(0)
	for i := 0; i < 10_000; i++ {
		now += int64(time.Millisecond)
		if d.charge(42, 512, now) {
			t.Fatalf("under-rate flow demoted at charge %d", i)
		}
	}
	if d.demotions.Load() != 0 {
		t.Fatalf("demotions counted: %d", d.demotions.Load())
	}
}

// TestDetectorFloodDemotesAndRecovers: a flow far above its share trips
// within Burst bytes, stays demoted for Penalty, and is re-admitted
// after the penalty if it backs off.
func TestDetectorFloodDemotesAndRecovers(t *testing.T) {
	cfg := Config{Rate: 1 << 20, Burst: 8 << 10, Penalty: 100 * time.Millisecond}
	d := testDetector(cfg)
	now := int64(time.Millisecond)
	var sent int
	demotedAt := -1
	for i := 0; i < 100; i++ {
		if d.charge(7, 4096, now) {
			demotedAt = i
			break
		}
		sent += 4096
	}
	if demotedAt < 0 {
		t.Fatal("flood never demoted")
	}
	if sent > 2*cfg.Burst {
		t.Fatalf("demotion took %d bytes, over twice the %d burst", sent, cfg.Burst)
	}
	if !d.charge(7, 1, now+int64(cfg.Penalty)-1) {
		t.Fatal("flow re-admitted before the penalty expired")
	}
	// After the penalty the bucket has leaked empty (Rate drains Burst
	// in well under the wait) and a polite flow is admitted again.
	later := now + int64(cfg.Penalty) + int64(time.Second)
	if d.charge(7, 1, later) {
		t.Fatal("flow still demoted after penalty + backoff")
	}
}

// TestDetectorFlowZeroAlwaysAdmitted: beat-family traffic reports flow
// 0 and must bypass metering entirely.
func TestDetectorFlowZeroAlwaysAdmitted(t *testing.T) {
	d := testDetector(Config{Rate: 1, Burst: 1})
	for i := 0; i < 100; i++ {
		if d.charge(0, 1<<20, int64(i+1)) {
			t.Fatal("flow 0 demoted")
		}
	}
}

// TestDetectorEviction: with more live flows than table slots the
// smallest bucket in the probe window is recycled, and demoted buckets
// survive the pressure.
func TestDetectorEviction(t *testing.T) {
	d := testDetector(Config{Flows: 8, Rate: 1 << 10, Burst: 1 << 10, Penalty: time.Hour})
	now := int64(time.Millisecond)
	// Demote one heavy hitter.
	for i := 0; i < 64 && !d.charge(99, 1024, now); i++ {
	}
	// Spray far more flows than the table holds.
	for f := uint64(1); f <= 64; f++ {
		d.charge(f*2+200, 16, now)
	}
	if d.evictions.Load() == 0 {
		t.Fatal("no evictions under table pressure")
	}
	if !d.charge(99, 1, now+1) {
		t.Fatal("demoted heavy hitter was evicted by flow spray")
	}
}

// --- transport stage ---

// fakeInner is a loopback transport: frames pushed with inject() appear
// on Receive, sends are collected.
type fakeInner struct {
	in     chan []byte
	sent   [][]byte
	closed bool
}

func newFakeInner() *fakeInner { return &fakeInner{in: make(chan []byte, 64)} }

func (f *fakeInner) Send(frame []byte)      { f.sent = append(f.sent, frame) }
func (f *fakeInner) Receive() <-chan []byte { return f.in }
func (f *fakeInner) FrameBudget() int       { return 60 << 10 }
func (f *fakeInner) Close() error           { f.closed = true; close(f.in); return nil }
func (f *fakeInner) inject(msgs ...wire.Message) {
	var frame []byte
	for _, m := range msgs {
		frame = m.Encode(frame)
	}
	f.in <- frame
}

func msgFor(flow uint64, body string) wire.Message {
	return wire.NewMsg(wire.MsgID{Tag: ident.Tag{Hi: flow, Lo: 1}, Body: body})
}

// drain collects frames from the stage until it has n or times out.
func drain(t *testing.T, tr *Transport, n int) [][]byte {
	t.Helper()
	var got [][]byte
	deadline := time.After(2 * time.Second)
	for len(got) < n {
		select {
		case f, ok := <-tr.Receive():
			if !ok {
				t.Fatalf("stage closed after %d/%d frames", len(got), n)
			}
			got = append(got, f)
		case <-deadline:
			t.Fatalf("timed out after %d/%d frames", len(got), n)
		}
	}
	return got
}

// TestWrapPassesAdmittedTraffic: polite traffic flows through the stage
// unchanged, and Send is a passthrough.
func TestWrapPassesAdmittedTraffic(t *testing.T) {
	inner := newFakeInner()
	tr := Wrap(inner, Config{})
	defer tr.Close()
	inner.inject(msgFor(5, "hello"))
	frames := drain(t, tr, 1)
	if msgs, err := wire.DecodeBatch(frames[0]); err != nil || len(msgs) != 1 || string(msgs[0].Body) != "hello" {
		t.Fatalf("frame mangled: %v %v", msgs, err)
	}
	tr.Send([]byte("outbound"))
	if len(inner.sent) != 1 || string(inner.sent[0]) != "outbound" {
		t.Fatal("Send must pass through to the inner transport")
	}
	st := tr.Stats()
	if st.AdmittedMsgs != 1 || st.DemotedMsgs != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if tr.Inner() != transport.Transport(inner) {
		t.Fatal("Inner must expose the wrapped transport")
	}
}

// TestWrapSplitsMixedFrames: a frame mixing a demoted flow's messages
// with a victim's must be split so the victim's sub-frame is admitted.
func TestWrapSplitsMixedFrames(t *testing.T) {
	// Burst sits between the victim's message size (~30 B) and the
	// flood's (4 KB): the flood trips on its first message, the victim
	// never does.
	tr := Wrap(newFakeInner(), Config{Rate: 1 << 10, Burst: 2 << 10, Penalty: time.Hour,
		HighDepth: 16, LowDepth: 16})
	defer tr.Close()
	inner := tr.Inner().(*fakeInner)

	big := string(make([]byte, 4096))
	// Trip the flood flow (first frame may be admitted while the bucket
	// fills; penalty then pins it demoted).
	inner.inject(msgFor(666, big))
	inner.inject(msgFor(666, big))
	// Mixed frame: flood, victim, flood.
	inner.inject(msgFor(666, big), msgFor(5, "victim"), msgFor(666, big))

	// The victim's sub-frame must come out admitted and alone.
	deadline := time.After(2 * time.Second)
	for {
		var frame []byte
		var ok bool
		select {
		case frame, ok = <-tr.Receive():
			if !ok {
				t.Fatal("stage closed before the victim frame")
			}
		case <-deadline:
			t.Fatal("victim frame never emitted")
		}
		msgs, err := wire.DecodeBatch(frame)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			if string(m.Body) == "victim" {
				if len(msgs) != 1 {
					t.Fatalf("victim rode with %d flood messages", len(msgs)-1)
				}
				st := tr.Stats()
				if st.SplitFrames == 0 {
					t.Fatal("mixed frame not counted as split")
				}
				if st.Demotions == 0 {
					t.Fatal("flood flow not demoted")
				}
				return
			}
		}
	}
}

// TestWrapFIFOMode: with FIFO set the detector is off — everything is
// admitted in arrival order, nothing is split or demoted.
func TestWrapFIFOMode(t *testing.T) {
	tr := Wrap(newFakeInner(), Config{FIFO: true, Rate: 1, Burst: 1})
	defer tr.Close()
	inner := tr.Inner().(*fakeInner)
	big := string(make([]byte, 4096))
	inner.inject(msgFor(666, big), msgFor(5, "victim"))
	inner.inject(msgFor(666, big))
	frames := drain(t, tr, 2)
	if msgs, _ := wire.DecodeBatch(frames[0]); len(msgs) != 2 {
		t.Fatalf("FIFO split a frame: %d msgs", len(msgs))
	}
	st := tr.Stats()
	if st.Demotions != 0 || st.SplitFrames != 0 || st.DemotedMsgs != 0 {
		t.Fatalf("FIFO stage ran the detector: %+v", st)
	}
}

// TestWrapLowLaneSheds: when the demoted lane is full its frames are
// dropped and attributed to the offending flow; Overflows includes
// them.
func TestWrapLowLaneSheds(t *testing.T) {
	tr := Wrap(newFakeInner(), Config{Rate: 1, Burst: 1, Penalty: time.Hour,
		HighDepth: 16, LowDepth: 1})
	defer tr.Close()
	inner := tr.Inner().(*fakeInner)
	big := string(make([]byte, 8192))
	for i := 0; i < 64; i++ {
		inner.inject(msgFor(666, big))
	}
	deadline := time.Now().Add(2 * time.Second)
	for tr.Stats().LowDrops == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := tr.Stats()
	if st.LowDrops == 0 {
		t.Fatal("full low lane never shed")
	}
	if tr.Overflows() < st.LowDrops {
		t.Fatalf("Overflows %d < LowDrops %d", tr.Overflows(), st.LowDrops)
	}
	var flood *FlowStats
	for i := range st.Flows {
		if st.Flows[i].Flow == 666 {
			flood = &st.Flows[i]
		}
	}
	if flood == nil || !flood.Demoted || flood.Drops == 0 {
		t.Fatalf("flood flow accounting missing: %+v", st.Flows)
	}
}

// TestWrapCloseDrainsCleanly: Close must close the inner transport and
// eventually close the stage's Receive channel.
func TestWrapCloseDrainsCleanly(t *testing.T) {
	inner := newFakeInner()
	tr := Wrap(inner, Config{})
	inner.inject(msgFor(1, "tail"))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !inner.closed {
		t.Fatal("inner transport not closed")
	}
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-tr.Receive():
			if !ok {
				return // channel closed: clean wind-down
			}
		case <-deadline:
			t.Fatal("stage Receive never closed")
		}
	}
}

// TestWrapUndecodableFrame: garbage frames must not wedge the stage —
// they ride through on the current verdict.
func TestWrapUndecodableFrame(t *testing.T) {
	inner := newFakeInner()
	tr := Wrap(inner, Config{})
	defer tr.Close()
	inner.in <- []byte{0xde, 0xad, 0xbe, 0xef}
	frames := drain(t, tr, 1)
	if len(frames[0]) != 4 {
		t.Fatal("garbage frame mangled")
	}
}
