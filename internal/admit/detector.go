// Package admit implements a flow-fairness admission stage in front of
// a node's inbox: a per-broadcaster heavy-hitter detector that demotes
// flows exceeding their fair share to a droppable low-priority lane
// before they can evict other broadcasters' MSG/ACK frames.
//
// The paper's fair lossy channel constrains the *channel* — infinitely
// many sends imply infinitely many receptions — but says nothing about
// a fair *sender*: one hot broadcaster's MSG/ACK retransmissions can
// legally saturate every finite inbox and starve the other broadcasters'
// deliveries (the bench's flood scenarios measure exactly this). The
// admission stage restores per-broadcaster fairness without touching the
// algorithms: it classifies inbound traffic by flow (the broadcast tag's
// Hi half — see ident.NewFlowSource and wire.FlowOf), meters each flow
// with an EARDet-style leaky bucket, and routes each message to a
// high-priority (admitted) or low-priority (demoted, droppable) lane.
// Everything URB absorbs still arrived over the transport; admission
// only drops or reorders *before* the algorithm sees a message, which a
// fair lossy channel was always allowed to do — so the paper's
// properties D1–D5 are untouched (see DESIGN.md §11).
//
// The detector is modeled on the EARDet family (exact-outside-an-
// ambiguity-region detection with leaky buckets): a fixed-size,
// zero-allocation bucket table charged on the ingest hot path, with
// damage-style accounting (deliveries lost with vs without admission,
// false demotions) measured by internal/bench's fairness suite.
package admit

import (
	"sync/atomic"
	"time"
)

// Config parameterises an admission stage.
type Config struct {
	// Rate is the per-flow fair share in bytes/second: the leak rate γ
	// of every flow's bucket. A flow arriving faster than Rate for long
	// enough to fill Burst is demoted. Zero selects a conservative
	// default (4 MB/s).
	Rate float64
	// Burst is the bucket depth β in bytes: how far a flow may exceed
	// its fair share before demotion. Together with Rate it sets the
	// detector's ambiguity region, exactly as in EARDet: flows below
	// Rate are never demoted, flows above Rate+Burst/window always are.
	// Zero selects 64 KB.
	Burst int
	// Penalty is how long a flow stays demoted after its bucket last
	// tripped. Zero selects 250ms.
	Penalty time.Duration
	// HighDepth and LowDepth are the lane capacities in frames (zero:
	// 512 and 128). The high lane carries admitted traffic and should
	// not drop in a healthy system; the low lane carries demoted traffic
	// and dropping from it is the intended shedding.
	HighDepth int
	LowDepth  int
	// Flows bounds the tracked-flow table (zero: 512 entries). The
	// table is fixed-size and allocation-free; when full, the probe
	// window's smallest bucket is evicted — an attacker spraying flows
	// can reset small buckets, but every flow large enough to matter is
	// by definition hard to evict.
	Flows int
	// FIFO disables the detector: every frame passes to the high lane
	// in arrival order. The stage still imposes its lane buffering, so
	// a FIFO stage is the exact measurement baseline for a fair one —
	// same pipeline, same buffer budget, detection off.
	FIFO bool
	// OnDemote, when non-nil, is called with the flow id on every
	// admitted→demoted transition (the same transitions Stats counts as
	// Demotions). It is an observability hook — it must not block: it
	// runs on the stage's ingest goroutine, on the hot path.
	OnDemote func(flow uint64)
}

// WithDefaults returns c with zero fields filled in with the package
// defaults. Wrap applies it implicitly; it is exported so callers that
// derive one configuration from another (e.g. a FIFO baseline with the
// same total lane budget as a fair stage) can resolve defaults first.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = 4 << 20
	}
	if c.Burst <= 0 {
		c.Burst = 64 << 10
	}
	if c.Penalty <= 0 {
		c.Penalty = 250 * time.Millisecond
	}
	if c.HighDepth <= 0 {
		c.HighDepth = 512
	}
	if c.LowDepth <= 0 {
		c.LowDepth = 128
	}
	if c.Flows <= 0 {
		c.Flows = 512
	}
	return c
}

// probeWindow is how many slots a flow may occupy past its home slot.
const probeWindow = 8

// bucket is one flow's leaky bucket.
type bucket struct {
	flow         uint64
	level        float64 // bytes currently in the bucket
	last         int64   // nanos of the last charge
	demotedUntil int64   // nanos; flow is demoted while now < demotedUntil
}

// detector is the leaky-bucket heavy-hitter table. The buckets are
// confined to the stage's ingest goroutine — no locks, no allocation
// after New; only the two counters are atomic so Stats can read them
// from outside.
type detector struct {
	cfg     Config
	buckets []bucket
	mask    uint64

	demotions atomic.Uint64 // admitted→demoted transitions
	evictions atomic.Uint64 // table-full bucket replacements
}

func newDetector(cfg Config) *detector {
	size := 1
	for size < cfg.Flows {
		size <<= 1
	}
	return &detector{cfg: cfg, buckets: make([]bucket, size), mask: uint64(size - 1)}
}

// slot finds or creates the bucket for flow, evicting the smallest
// bucket in the probe window when every slot is taken. Currently-demoted
// buckets are never evicted: forgetting an active heavy hitter would
// grant it a fresh ambiguity region.
func (d *detector) slot(flow uint64, now int64) *bucket {
	home := (flow * 0x9e3779b97f4a7c15) & d.mask
	var victim *bucket
	for i := uint64(0); i < probeWindow; i++ {
		b := &d.buckets[(home+i)&d.mask]
		if b.flow == flow {
			return b
		}
		if b.flow == 0 {
			b.flow = flow
			b.last = now
			return b
		}
		if now >= b.demotedUntil && (victim == nil || b.level < victim.level) {
			victim = b
		}
	}
	if victim == nil {
		// Every probe slot holds a demoted flow: reuse the home slot
		// rather than stall; the displaced hitter re-trips in one burst.
		victim = &d.buckets[home]
	}
	d.evictions.Add(1)
	*victim = bucket{flow: flow, last: now}
	return victim
}

// charge meters size bytes of flow at time now (nanos) and reports
// whether the flow is currently demoted. Flow 0 — detector traffic and
// anything unattributable — is always admitted.
func (d *detector) charge(flow uint64, size int, now int64) bool {
	if flow == 0 {
		return false
	}
	b := d.slot(flow, now)
	if dt := now - b.last; dt > 0 {
		b.level -= d.cfg.Rate * float64(dt) / float64(time.Second)
		if b.level < 0 {
			b.level = 0
		}
	}
	b.last = now
	b.level += float64(size)
	if b.level > float64(d.cfg.Burst) {
		if now >= b.demotedUntil {
			d.demotions.Add(1)
			if d.cfg.OnDemote != nil {
				d.cfg.OnDemote(flow)
			}
		}
		b.demotedUntil = now + int64(d.cfg.Penalty)
		// Clamp so recovery is governed by Penalty, not by how far the
		// flood overshot an already-tripped bucket.
		b.level = float64(d.cfg.Burst)
	}
	return now < b.demotedUntil
}
