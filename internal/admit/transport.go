package admit

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anonurb/internal/transport"
	"anonurb/internal/wire"
)

// Transport is an admission stage wrapped around an inner transport: a
// transport.Transport whose Receive stream has passed per-flow
// heavy-hitter metering. Build one with Wrap; nodes install it with
// node.WithAdmission.
//
// Pipeline: an ingest goroutine reads the inner transport's inbound
// frames, classifies each contained message by flow with wire.PeekFlow
// (batch frames are split into per-run subslices — zero copy, since
// batch framing is pure concatenation and received frames are read-only
// and shared), charges the detector, and offers each run to the high
// (admitted) or low (demoted) lane; a full lane drops, exactly as any
// finite inbox legally may. An emit goroutine serves the high lane
// strictly while it has frames and the low lane otherwise, so demoted
// traffic consumes only capacity the admitted traffic left idle.
type Transport struct {
	inner transport.Transport
	cfg   Config
	det   *detector
	start time.Time

	high chan []byte
	low  chan []byte
	out  chan []byte

	admittedMsgs  atomic.Uint64
	admittedBytes atomic.Uint64
	demotedMsgs   atomic.Uint64
	demotedBytes  atomic.Uint64
	highDrops     atomic.Uint64
	lowDrops      atomic.Uint64
	splitFrames   atomic.Uint64

	flowMu sync.Mutex
	// demotedFlows is the set of flows ever demoted; guarded by flowMu,
	// written by the ingest goroutine and read by Stats.
	demotedFlows map[uint64]struct{}
	// flowDrops attributes low-lane drops to flows; guarded by flowMu.
	flowDrops map[uint64]uint64
}

var _ transport.Transport = (*Transport)(nil)
var _ transport.OverflowCounter = (*Transport)(nil)

// Wrap builds an admission stage around inner and starts its pipeline.
// The stage takes ownership of inner: closing the stage closes it, and
// inner's Receive must not be consumed elsewhere.
//
//urbvet:wallclock pins the epoch the leaky buckets' nano clock counts from
func Wrap(inner transport.Transport, cfg Config) *Transport {
	if inner == nil {
		panic("admit: inner transport is required")
	}
	cfg = cfg.withDefaults()
	t := &Transport{
		inner:        inner,
		cfg:          cfg,
		det:          newDetector(cfg),
		start:        time.Now(),
		high:         make(chan []byte, cfg.HighDepth),
		low:          make(chan []byte, cfg.LowDepth),
		out:          make(chan []byte),
		demotedFlows: make(map[uint64]struct{}),
		flowDrops:    make(map[uint64]uint64),
	}
	go t.ingest()
	go t.emit()
	return t
}

// Inner exposes the wrapped transport so capability probes (for
// example transport.Overflows) can unwrap the stage.
func (t *Transport) Inner() transport.Transport { return t.inner }

// Send implements transport.Transport: outbound traffic bypasses the
// stage (admission polices what this node absorbs, not what it says).
func (t *Transport) Send(frame []byte) { t.inner.Send(frame) }

// Receive implements transport.Transport: the admitted stream. The
// channel closes once the inner transport's stream closes and both
// lanes have drained.
func (t *Transport) Receive() <-chan []byte { return t.out }

// FrameBudget implements transport.Transport.
func (t *Transport) FrameBudget() int { return t.inner.FrameBudget() }

// Close implements transport.Transport: closes the inner transport,
// which winds the pipeline down.
func (t *Transport) Close() error { return t.inner.Close() }

// ingest classifies inbound frames and routes them to the lanes.
func (t *Transport) ingest() {
	for frame := range t.inner.Receive() {
		t.classify(frame)
	}
	close(t.high)
	close(t.low)
}

// classify routes one inbound frame. Messages are grouped into maximal
// runs with one verdict, so a frame that is all-admitted or all-demoted
// (the overwhelmingly common case — a batch is one sender's tick, and a
// flood's batches are flood through and through) travels as a single
// subslice with zero per-message cost beyond the peek.
//
//urbvet:wallclock bucket leak rates are bytes per real second; EARDet meters arrival time, not algorithm time
//urb:hotpath
func (t *Transport) classify(frame []byte) {
	if t.cfg.FIFO {
		t.offer(frame, false, 0)
		return
	}
	now := int64(time.Since(t.start))
	runStart := 0
	off := 0
	runDemoted := false
	runFlow := uint64(0)
	first := true
	runs := 0
	flush := func(end int) {
		if end > runStart {
			t.offer(frame[runStart:end], runDemoted, runFlow)
			runs++
		}
		runStart = end
	}
	for off < len(frame) {
		_, flow, size, err := wire.PeekFlow(frame[off:])
		if err != nil {
			// Undecodable remainder: pass it through on the current
			// verdict and let the node's decoder account for it (it
			// drops corrupt tails and counts bad frames).
			off = len(frame)
			break
		}
		demoted := t.det.charge(flow, size, now)
		if demoted {
			t.demotedMsgs.Add(1)
			t.demotedBytes.Add(uint64(size))
		} else {
			t.admittedMsgs.Add(1)
			t.admittedBytes.Add(uint64(size))
		}
		if first {
			runDemoted, runFlow, first = demoted, flow, false
		} else if demoted != runDemoted {
			flush(off)
			runDemoted, runFlow = demoted, flow
		}
		off += size
	}
	flush(len(frame))
	if runs > 1 {
		t.splitFrames.Add(1)
	}
}

// offer pushes a frame (or run subslice) to a lane; a full lane drops
// it and the drop is attributed to the run's leading flow.
func (t *Transport) offer(frame []byte, demoted bool, flow uint64) {
	lane := t.high
	if demoted {
		lane = t.low
		t.flowMu.Lock()
		t.demotedFlows[flow] = struct{}{}
		t.flowMu.Unlock()
	}
	select {
	case lane <- frame:
	default:
		if demoted {
			t.lowDrops.Add(1)
		} else {
			t.highDrops.Add(1)
		}
		t.flowMu.Lock()
		t.flowDrops[flow]++
		t.flowMu.Unlock()
	}
}

// emit merges the lanes into the outbound stream, high lane first.
func (t *Transport) emit() {
	highC, lowC := t.high, t.low
	for highC != nil || lowC != nil {
		// Fast path: serve the high lane while it has frames (a nil
		// highC makes this select take its default immediately).
		select {
		case f, ok := <-highC:
			if !ok {
				highC = nil
				continue
			}
			t.out <- f
			continue
		default:
		}
		select {
		case f, ok := <-highC:
			if !ok {
				highC = nil
				continue
			}
			t.out <- f
		case f, ok := <-lowC:
			if !ok {
				lowC = nil
				continue
			}
			t.out <- f
		}
	}
	close(t.out)
}

// Overflows implements transport.OverflowCounter: frames shed by the
// stage's lanes plus whatever the inner transport shed below it. From
// the node's point of view both are inbox overflow — load shedding at
// the receiver, distinct from link loss.
func (t *Transport) Overflows() uint64 {
	inner, _ := transport.Overflows(t.inner)
	return inner + t.highDrops.Load() + t.lowDrops.Load()
}

// FlowStats is per-flow admission accounting.
type FlowStats struct {
	Flow    uint64
	Demoted bool
	Drops   uint64
}

// Stats is an admission stage's accounting snapshot.
type Stats struct {
	// AdmittedMsgs/Bytes and DemotedMsgs/Bytes count metered messages by
	// verdict at classification time.
	AdmittedMsgs  uint64
	AdmittedBytes uint64
	DemotedMsgs   uint64
	DemotedBytes  uint64
	// HighDrops counts frames shed from the admitted lane — damage, if
	// the traffic was honest. LowDrops counts frames shed from the
	// demoted lane — the intended shedding.
	HighDrops uint64
	LowDrops  uint64
	// SplitFrames counts inbound frames that were split into more than
	// one run because they mixed verdicts.
	SplitFrames uint64
	// Demotions counts admitted→demoted flow transitions; Evictions
	// counts bucket-table evictions under flow-table pressure.
	Demotions uint64
	Evictions uint64
	// DemotedFlows lists every flow that was ever routed demoted, with
	// its attributed frame drops. Sorted by flow for determinism.
	Flows []FlowStats
}

// Stats snapshots the stage's accounting. Safe to call while running.
func (t *Transport) Stats() Stats {
	s := Stats{
		AdmittedMsgs:  t.admittedMsgs.Load(),
		AdmittedBytes: t.admittedBytes.Load(),
		DemotedMsgs:   t.demotedMsgs.Load(),
		DemotedBytes:  t.demotedBytes.Load(),
		HighDrops:     t.highDrops.Load(),
		LowDrops:      t.lowDrops.Load(),
		SplitFrames:   t.splitFrames.Load(),
		Demotions:     t.det.demotions.Load(),
		Evictions:     t.det.evictions.Load(),
	}
	t.flowMu.Lock()
	flows := make(map[uint64]*FlowStats, len(t.demotedFlows)+len(t.flowDrops))
	for f := range t.demotedFlows {
		flows[f] = &FlowStats{Flow: f, Demoted: true}
	}
	for f, d := range t.flowDrops {
		fs := flows[f]
		if fs == nil {
			fs = &FlowStats{Flow: f}
			flows[f] = fs
		}
		fs.Drops = d
	}
	t.flowMu.Unlock()
	for _, fs := range flows {
		s.Flows = append(s.Flows, *fs)
	}
	sort.Slice(s.Flows, func(i, j int) bool { return s.Flows[i].Flow < s.Flows[j].Flow })
	return s
}
