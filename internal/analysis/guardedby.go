package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy turns the repo's `// guarded by <mu>` field comments (node,
// transport, admit — DESIGN.md §6, §12) into a checked annotation. A
// read or write of an annotated field is legal only in a function that
//
//   - locks the named mutex (calls <something>.<mu>.Lock or .RLock), or
//   - is annotated `//urbvet:locked <mu>` (the caller holds it), or
//   - constructs the owning struct with a composite literal (no one
//     else can see the value yet), or
//   - is annotated `//urbvet:unguarded <why>` (a real happens-before
//     argument, e.g. goroutine creation order — say which).
//
// It also checks the companion convention: a field whose comment claims
// it is atomic must actually have a sync/atomic type. "Atomic by
// comment" plain fields are exactly the kind of invariant the sharded
// engine work cannot afford to carry unchecked.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "accesses to `// guarded by <mu>` fields must hold the named mutex (or carry an explicit opt-out)",
	Run:  runGuardedBy,
}

var (
	guardedByRe = regexp.MustCompile(`\bguarded by (\w+)\b`)
	atomicRe    = regexp.MustCompile(`(?i)\batomic\b`)
)

// guardedField records one annotated field and its guarding mutex name.
type guardedField struct {
	mu    string
	owner *types.Named
}

func runGuardedBy(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, f, fn, guarded)
		}
	}
	return nil
}

// collectGuardedFields indexes every struct field carrying a
// `// guarded by <mu>` comment, and flags atomic-comment lies on the
// way through.
func collectGuardedFields(pass *Pass) map[types.Object]guardedField {
	guarded := make(map[types.Object]guardedField)
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			owner, _ := namedType(pass.TypesInfo.Defs[ts.Name].Type())
			for _, field := range st.Fields.List {
				doc := fieldCommentText(field)
				if doc == "" {
					continue
				}
				m := guardedByRe.FindStringSubmatch(doc)
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if m != nil {
						guarded[obj] = guardedField{mu: m[1], owner: owner}
					} else if atomicRe.MatchString(doc) && !isAtomicType(obj.Type()) {
						pass.Reportf(name.Pos(),
							"field %s is documented as atomic but has plain type %s: use a sync/atomic type so the claim is structural",
							name.Name, obj.Type())
					}
				}
			}
			return true
		})
	}
	return guarded
}

func fieldCommentText(field *ast.Field) string {
	var parts []string
	if field.Doc != nil {
		parts = append(parts, field.Doc.Text())
	}
	if field.Comment != nil {
		parts = append(parts, field.Comment.Text())
	}
	return strings.Join(parts, " ")
}

func isAtomicType(t types.Type) bool {
	named, ok := namedType(t)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func checkGuardedAccesses(pass *Pass, f *ast.File, fn *ast.FuncDecl, guarded map[types.Object]guardedField) {
	// The opt-outs and the lock set are function-granular: one scan of
	// the body answers "which mutexes does fn ever lock" and "which
	// structs does fn construct".
	var (
		lockedSet   map[string]bool
		constructed map[*types.Named]bool
		scanned     bool
	)
	_, hasUnguarded := FuncDirective(fn, "urbvet:unguarded")
	lockedDir, hasLocked := FuncDirective(fn, "urbvet:locked")
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		gf, ok := guarded[selection.Obj()]
		if !ok {
			return true
		}
		if hasUnguarded {
			return true
		}
		if hasLocked && strings.Contains(lockedDir.Arg, gf.mu) {
			return true
		}
		if !scanned {
			lockedSet, constructed = scanFuncBody(pass, fn)
			scanned = true
		}
		if lockedSet[gf.mu] {
			return true
		}
		if gf.owner != nil && constructed[gf.owner] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s is guarded by %s, but %s never locks it: lock %s, or annotate the function //urbvet:locked %s (caller holds it) or //urbvet:unguarded <why>",
			selection.Obj().Name(), gf.mu, fn.Name.Name, gf.mu, gf.mu)
		return true
	})
}

// scanFuncBody collects the names of mutexes fn locks (x.mu.Lock(),
// x.mu.RLock()) and the named struct types fn builds composite literals
// of.
func scanFuncBody(pass *Pass, fn *ast.FuncDecl) (locked map[string]bool, constructed map[*types.Named]bool) {
	locked = make(map[string]bool)
	constructed = make(map[*types.Named]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			switch recv := sel.X.(type) {
			case *ast.SelectorExpr:
				locked[recv.Sel.Name] = true
			case *ast.Ident:
				locked[recv.Name] = true
			}
		case *ast.CompositeLit:
			if named, ok := namedType(pass.TypesInfo.Types[n].Type); ok {
				constructed[named] = true
			}
		}
		return true
	})
	return locked, constructed
}
