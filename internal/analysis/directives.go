package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one machine-readable comment of the form
// `//urbvet:<name> <arg>` or `//urb:<name> <arg>`. The analyzers use a
// small fixed vocabulary:
//
//	//urbvet:partial <why>      switch over wire.Kind is deliberately partial
//	//urbvet:wallclock <why>    function may read wall clocks / arm timers
//	//urbvet:unordered <why>    map iteration order provably cannot leak
//	//urbvet:locked <mu>        caller holds <mu>; checked at the call sites
//	//urbvet:unguarded <why>    access is safe without the lock (say why)
//	//urb:hotpath               function is on the zero-alloc hot path
//
// `//urbvet:wallclock` requires its <why> (an unjustified clock site is
// still flagged); the other arguments are convention, caught in review.
type Directive struct {
	Name string // "urbvet:partial", "urb:hotpath", ...
	Arg  string // rest of the comment line, trimmed
	Pos  token.Pos
}

// fileDirectives indexes one file's directives by line, plus the set of
// lines covered by any comment so statement-level lookups can walk up
// through a contiguous comment block.
type fileDirectives struct {
	byLine       map[int][]Directive
	commentLines map[int]bool
}

// parseDirective extracts a directive from one comment's raw text, or
// returns false.
func parseDirective(text string) (name, arg string, ok bool) {
	for _, prefix := range [...]string{"//urbvet:", "//urb:"} {
		if !strings.HasPrefix(text, prefix) {
			continue
		}
		rest := text[len(prefix):]
		name = prefix[2:] // drop the slashes, keep the namespace
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			return name + rest[:i], strings.TrimSpace(rest[i:]), true
		}
		return name + rest, "", true
	}
	return "", "", false
}

// directives returns (building on first use) the directive index for f.
func (p *Pass) directives(f *ast.File) *fileDirectives {
	if p.dirIndex == nil {
		p.dirIndex = make(map[*ast.File]*fileDirectives)
	}
	if fd, ok := p.dirIndex[f]; ok {
		return fd
	}
	fd := &fileDirectives{
		byLine:       make(map[int][]Directive),
		commentLines: make(map[int]bool),
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			pos := p.Fset.Position(c.Slash)
			end := p.Fset.Position(c.End())
			for l := pos.Line; l <= end.Line; l++ {
				fd.commentLines[l] = true
			}
			if name, arg, ok := parseDirective(c.Text); ok {
				fd.byLine[pos.Line] = append(fd.byLine[pos.Line],
					Directive{Name: name, Arg: arg, Pos: c.Slash})
			}
		}
	}
	p.dirIndex[f] = fd
	return fd
}

// StmtDirective finds a directive named name attached to node: on the
// node's own line (a trailing comment) or in the contiguous comment
// block immediately above it.
func (p *Pass) StmtDirective(f *ast.File, node ast.Node, name string) (Directive, bool) {
	fd := p.directives(f)
	line := p.Fset.Position(node.Pos()).Line
	if d, ok := findDirective(fd.byLine[line], name); ok {
		return d, true
	}
	for l := line - 1; fd.commentLines[l]; l-- {
		if d, ok := findDirective(fd.byLine[l], name); ok {
			return d, true
		}
	}
	return Directive{}, false
}

// FuncDirective finds a directive named name in fn's doc comment.
func FuncDirective(fn *ast.FuncDecl, name string) (Directive, bool) {
	if fn.Doc == nil {
		return Directive{}, false
	}
	for _, c := range fn.Doc.List {
		if n, arg, ok := parseDirective(c.Text); ok && n == name {
			return Directive{Name: n, Arg: arg, Pos: c.Slash}, true
		}
	}
	return Directive{}, false
}

func findDirective(list []Directive, name string) (Directive, bool) {
	for _, d := range list {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// enclosingFunc returns the innermost function declaration whose body
// contains pos, or nil. Analyzer opt-outs are function-granular, so
// positions inside closures resolve to the declared function they live
// in.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil &&
			fn.Body.Pos() <= pos && pos <= fn.Body.End() {
			return fn
		}
	}
	return nil
}
