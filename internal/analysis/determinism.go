package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the repo's replay contract (DESIGN.md §5, §12):
// the deterministic packages — urb, sim, replay, wire, xrand — are pure
// functions of their inputs, so equivalence tests and the record/replay
// digest can compare runs bit-for-bit. Three rules:
//
//  1. No wall clocks or timers (time.Now, time.Since, time.NewTimer, …)
//     in a deterministic package, and none in transport/admit either
//     unless the function is annotated `//urbvet:wallclock <why>` —
//     those two packages legitimately pace real I/O, but each clock
//     site must say so (replay.Drive is the canonical exemption).
//  2. No math/rand in a deterministic package: randomness flows through
//     internal/xrand's seeded, splittable streams.
//  3. No map iteration whose order can leak into an encoder, digest or
//     Step in a deterministic package: a range over a map may not call
//     an order-sensitive sink or append to an accumulator declared
//     outside the loop, unless the accumulator is visibly sorted
//     afterwards or the range carries `//urbvet:unordered <why>`.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "deterministic packages may not read wall clocks, use math/rand, or leak map iteration order",
	Run:  runDeterminism,
}

// strictPkgs are the packages whose outputs must be bit-reproducible.
var strictPkgs = map[string]bool{
	"urb": true, "sim": true, "replay": true, "wire": true, "xrand": true,
}

// wallclockPkgs additionally ban unannotated clock use: they touch real
// I/O, so clocks are legal, but only behind an explicit justification.
var wallclockPkgs = map[string]bool{"transport": true, "admit": true}

// clockFuncs are the time functions that read a clock or arm a timer.
// Pure constructors and arithmetic (time.Unix, Duration ops) are fine.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "NewTimer": true, "NewTicker": true,
	"Tick": true, "Sleep": true,
}

func runDeterminism(pass *Pass) error {
	base := pass.PkgBase()
	strict := strictPkgs[base]
	if !strict && !wallclockPkgs[base] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		checkClocksAndRand(pass, f, strict)
		if strict {
			checkMapOrder(pass, f)
		}
	}
	return nil
}

func checkClocksAndRand(pass *Pass, f *ast.File, strict bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn, ok := pkgNameOf(pass.TypesInfo, sel.X)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "time":
			if !clockFuncs[sel.Sel.Name] {
				return true
			}
			if fn := enclosingFunc(f, sel.Pos()); fn != nil {
				if d, ok := FuncDirective(fn, "urbvet:wallclock"); ok && d.Arg != "" {
					return true
				}
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock in deterministic package %s: thread a logical clock through the config, or annotate the function //urbvet:wallclock <why>",
				sel.Sel.Name, pass.PkgBase())
		case "math/rand", "math/rand/v2":
			if strict {
				pass.Reportf(sel.Pos(),
					"math/rand in deterministic package %s: use internal/xrand's seeded streams so runs replay bit-for-bit",
					pass.PkgBase())
			}
		}
		return true
	})
}

// checkMapOrder flags range-over-map statements whose iteration order
// can escape: calling an order-sensitive sink in the body, or growing
// an accumulator declared outside the loop. Accumulate-then-sort is the
// package idiom and is recognised (any later call in the same function
// whose name contains "sort" and takes the accumulator); everything
// else needs `//urbvet:unordered <why>`.
func checkMapOrder(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.Types[rng.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if _, ok := pass.StmtDirective(f, rng, "urbvet:unordered"); ok {
			return true
		}
		fn := enclosingFunc(f, rng.Pos())
		if fn == nil {
			return true
		}
		if _, ok := FuncDirective(fn, "urbvet:unordered"); ok {
			return true
		}
		checkRangeBody(pass, fn, rng)
		return true
	})
}

// orderSinks are callee names whose argument order is observable:
// feeding them from inside a map range leaks iteration order.
var orderSinks = map[string]bool{
	"Encode": true, "EncodeBatch": true, "AppendEncoded": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Sum": true, "Sum32": true, "Sum64": true, "Step": true,
}

func checkRangeBody(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			name := calleeName(n)
			if orderSinks[name] {
				pass.Reportf(n.Pos(),
					"%s called inside a map range: iteration order leaks into the output; iterate a sorted key slice instead (or annotate //urbvet:unordered <why>)",
					name)
			}
		case *ast.AssignStmt:
			checkAccumulate(pass, fn, rng, n)
		}
		return true
	})
}

// checkAccumulate flags `acc = append(acc, …)` where acc outlives the
// range and is never sorted afterwards.
func checkAccumulate(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || calleeName(call) != "append" || i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || obj.Pos() == 0 {
			continue
		}
		// Accumulators born inside the range body cannot outlive it.
		if rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End() {
			continue
		}
		if sortedLater(pass, fn, rng, obj) {
			continue
		}
		pass.Reportf(as.Pos(),
			"appending to %s inside a map range builds an order-dependent slice: sort it before use, or annotate the range //urbvet:unordered <why>",
			id.Name)
	}
}

// sortedLater reports whether obj is passed, after the range statement,
// to a call whose callee name mentions sort (sort.Strings, sort.Slice,
// slices.Sort, a local sortIDs, …).
func sortedLater(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() < rng.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !strings.Contains(strings.ToLower(qualifiedCalleeName(call)), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// qualifiedCalleeName renders a callee with its qualifier: sort.Strings,
// w.sortedIDs, sortIDs. Only the sort-suppression heuristic needs the
// qualifier (the "sort" in sort.Strings lives in the package name).
func qualifiedCalleeName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return calleeName(call)
}

// calleeName returns the bare name of a call's callee: Encode for both
// Encode(x) and m.Encode(x).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
