package analysis

import (
	"go/ast"
	"go/types"
	"path"
	"sort"
	"strings"
)

// KindExhaustive checks that every switch over wire.Kind names every
// declared Kind constant. DESIGN.md §7's codec rule — a new kind must
// be threaded through EncodedSize, Encode, DecodePrefix and every
// dispatch site — previously lived in review discipline; the BEATΔ PR
// showed how easily a subset switch hides. A `default` clause does NOT
// excuse missing constants (defaults are for corrupt input, not for
// silently ignoring a kind someone added last week); a deliberately
// partial dispatch carries `//urbvet:partial <why>` instead.
var KindExhaustive = &Analyzer{
	Name: "kindexhaustive",
	Doc:  "switches over wire.Kind must handle every declared Kind constant or opt out with //urbvet:partial",
	Run:  runKindExhaustive,
}

func runKindExhaustive(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named, ok := namedType(pass.TypesInfo.Types[sw.Tag].Type)
			if !ok || !isWireKind(named) {
				return true
			}
			if _, ok := pass.StmtDirective(f, sw, "urbvet:partial"); ok {
				return true
			}
			checkKindSwitch(pass, named, sw)
			return true
		})
	}
	return nil
}

// isWireKind reports whether named is a type called Kind declared in a
// package whose import path ends in "wire" (the real codec package, or
// a fixture standing in for it).
func isWireKind(named *types.Named) bool {
	obj := named.Obj()
	return obj != nil && obj.Name() == "Kind" && obj.Pkg() != nil &&
		path.Base(obj.Pkg().Path()) == "wire"
}

func checkKindSwitch(pass *Pass, named *types.Named, sw *ast.SwitchStmt) {
	// Every package-level constant of the Kind type, keyed by value so
	// aliased constants count once.
	scope := named.Obj().Pkg().Scope()
	declared := make(map[string]string) // exact value -> constant name
	var order []string
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		if _, dup := declared[key]; !dup {
			declared[key] = c.Name()
			order = append(order, key)
		}
	}
	if len(declared) == 0 {
		return
	}
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range clause.List {
			tv := pass.TypesInfo.Types[e]
			if tv.Value == nil {
				// A non-constant case guard: the switch is doing
				// something richer than kind dispatch; stay quiet.
				return
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for _, key := range order {
		if !covered[key] {
			missing = append(missing, declared[key])
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Switch,
		"switch over %s.Kind misses %s: name every kind (a default clause does not count) or annotate the switch //urbvet:partial <why>",
		named.Obj().Pkg().Name(), strings.Join(missing, ", "))
}
