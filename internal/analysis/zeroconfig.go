package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// ZeroConfig keeps the zero urb.Config paper-faithful (DESIGN.md §2,
// §12): every deviation knob must be a bool whose zero value means "the
// published listing", carrying a `D<n>` tag in its doc comment that
// names the DESIGN.md deviation it switches on. Concretely, in any
// struct named Config:
//
//   - a field whose doc mentions a deviation must carry a D<n> tag;
//   - a D-tagged field must be a bool (so `urb.Config{}` can never be
//     half a deviation), and its name must not be inverted (Disable…,
//     No…, Full…), because a negated name makes the zero value turn
//     the deviation ON;
//   - in package urb additionally, every bool knob must declare its
//     governance: a D<n> tag for deviations, or the word "ablation"
//     for the §5 measurement toggles that don't change guard decisions.
var ZeroConfig = &Analyzer{
	Name: "zeroconfig",
	Doc:  "deviation knobs in Config structs must be zero-valued-off bools with a D<n> doc tag",
	Run:  runZeroConfig,
}

var (
	deviationRe = regexp.MustCompile(`(?i)\bdeviations?\b`)
	dTagRe      = regexp.MustCompile(`\bD\d+\b`)
	invertedRe  = regexp.MustCompile(`^(No|Disable|Skip|Without|Full|Legacy)[A-Z]`)
	ablationRe  = regexp.MustCompile(`(?i)\b(ablation|baseline)\b`)
)

func runZeroConfig(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Config" {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			checkConfigStruct(pass, st)
			return true
		})
	}
	return nil
}

func checkConfigStruct(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		doc := fieldCommentText(field)
		tagged := dTagRe.MatchString(doc)
		deviation := tagged || deviationRe.MatchString(doc)
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			isBool := isBoolType(obj.Type())
			switch {
			case deviation && !tagged:
				pass.Reportf(name.Pos(),
					"%s is documented as a deviation knob but carries no D<n> tag: number it in DESIGN.md §2 and cite the tag here",
					name.Name)
			case tagged && !isBool:
				pass.Reportf(name.Pos(),
					"deviation knob %s has type %s: deviation knobs are bools so the zero Config is exactly the paper",
					name.Name, obj.Type())
			case tagged && invertedRe.MatchString(name.Name):
				pass.Reportf(name.Pos(),
					"deviation knob %s has an inverted name: the zero value would switch the deviation on; name the deviating state, not the faithful one",
					name.Name)
			case !deviation && isBool && pass.PkgBase() == "urb" && !ablationRe.MatchString(doc):
				pass.Reportf(name.Pos(),
					"bool knob %s declares no governance: tag it D<n> if it deviates from the listing, or call it an ablation if it only moves work around",
					name.Name)
			}
		}
	}
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}
