package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// updateBaseline regenerates testdata/hotpath_baseline.txt instead of
// diffing against it:
//
//	go generate ./internal/analysis
//
// (which runs `go test -run TestHotPathEscapeBaseline -args
// -update-hotpath-baseline`; see the go:generate line in hotpath.go).
var updateBaseline = flag.Bool("update-hotpath-baseline", false,
	"rewrite testdata/hotpath_baseline.txt from the compiler's current escape analysis")

const baselineFile = "testdata/hotpath_baseline.txt"

// TestHotPathEscapeBaseline is the second half of the hotpath gate:
// the static analyzer bans the escape sources it can see syntactically
// (fmt, closures in loops), and this test pins everything else by
// diffing the compiler's own escape analysis (-gcflags=-m) for
// //urb:hotpath functions against a checked-in baseline. A change that
// makes a hot-path value start escaping shows up as a baseline diff in
// CI instead of as a silent allocation regression.
func TestHotPathEscapeBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles packages with -gcflags=-m")
	}
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	spans, pkgs, err := hotPathSpans(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no //urb:hotpath functions found in the module")
	}

	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, pkgs...)...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m: %v\n%s", err, out)
	}

	got := normalizeEscapes(string(out), spans)
	if *updateBaseline {
		if err := os.WriteFile(baselineFile, []byte(got), 0o666); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines)", baselineFile, strings.Count(got, "\n"))
		return
	}
	wantBytes, err := os.ReadFile(baselineFile)
	if err != nil {
		t.Fatalf("%v (run `go generate ./internal/analysis` to create the baseline)", err)
	}
	if want := string(wantBytes); got != want {
		t.Errorf("hot-path escape analysis drifted from %s.\n"+
			"If the change is intended, regenerate with `go generate ./internal/analysis` and commit the diff.\n"+
			"--- baseline\n%s\n--- current\n%s", baselineFile, want, got)
	}
}

// funcSpan is the line range of one //urb:hotpath function.
type funcSpan struct {
	file       string // slash path relative to the module root
	start, end int
	name       string // Recv.Name for methods, Name for functions
}

// hotPathSpans parses every module package and returns the spans of
// //urb:hotpath functions plus the ./-prefixed package patterns that
// contain at least one (the set worth compiling with -m).
func hotPathSpans(root, modPath string) ([]funcSpan, []string, error) {
	paths, err := ModulePackages(root, modPath)
	if err != nil {
		return nil, nil, err
	}
	var spans []funcSpan
	var pkgs []string
	fset := token.NewFileSet()
	for _, p := range paths {
		rel := strings.TrimPrefix(strings.TrimPrefix(p, modPath), "/")
		dir := filepath.Join(root, filepath.FromSlash(rel))
		names, err := goSources(dir)
		if err != nil {
			return nil, nil, err
		}
		found := false
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, err
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !isHotPathDoc(fn.Doc) {
					continue
				}
				found = true
				relFile := name
				if rel != "" {
					relFile = rel + "/" + name
				}
				spans = append(spans, funcSpan{
					file:  relFile,
					start: fset.Position(fn.Pos()).Line,
					end:   fset.Position(fn.End()).Line,
					name:  funcDisplayName(fn),
				})
			}
		}
		if found {
			if rel == "" {
				pkgs = append(pkgs, ".")
			} else {
				pkgs = append(pkgs, "./"+rel)
			}
		}
	}
	return spans, pkgs, nil
}

func isHotPathDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//urb:hotpath" {
			return true
		}
	}
	return false
}

func funcDisplayName(fn *ast.FuncDecl) string {
	name := fn.Name.Name
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		t := fn.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name = id.Name + "." + name
		}
	}
	return name
}

var escapeLineRe = regexp.MustCompile(`^(\S+\.go):(\d+):\d+: (.*(?:escapes to heap|moved to heap).*)$`)

// normalizeEscapes filters the compiler's -m output down to heap
// escapes inside hot-path spans and renders them position-free (file +
// function + message, deduplicated with counts), so the baseline
// survives unrelated line-number churn.
func normalizeEscapes(out string, spans []funcSpan) string {
	counts := make(map[string]int)
	for _, line := range strings.Split(out, "\n") {
		m := escapeLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file := filepath.ToSlash(m[1])
		lineNo, _ := strconv.Atoi(m[2])
		for _, s := range spans {
			if s.file == file && s.start <= lineNo && lineNo <= s.end {
				counts[fmt.Sprintf("%s %s: %s", file, s.name, m[3])]++
				break
			}
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# Heap escapes inside //urb:hotpath functions, per `go build -gcflags=-m`.\n")
	b.WriteString("# Regenerate: go generate ./internal/analysis\n")
	for _, k := range keys {
		if n := counts[k]; n > 1 {
			fmt.Fprintf(&b, "%s (x%d)\n", k, n)
		} else {
			fmt.Fprintf(&b, "%s\n", k)
		}
	}
	return b.String()
}
