package analysis_test

import (
	"testing"

	"anonurb/internal/analysis"
	"anonurb/internal/analysis/analysistest"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GuardedBy, "guarded")
}
