// Package hot is a hotpath fixture.
package hot

import "fmt"

// Sum is hot and calls fmt.
//
//urb:hotpath
func Sum(xs []int) (int, string) {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n, fmt.Sprint(n) // want "fmt.Sprint on hot path"
}

// Each is hot and allocates a closure per element.
//
//urb:hotpath
func Each(xs []int, out []int) []int {
	for _, x := range xs {
		f := func(v int) int { return v * x } // want "closure allocated inside a loop"
		out = append(out, f(x))
	}
	return out
}

// Fold is hot and clean: the closure is hoisted above the loop.
//
//urb:hotpath
func Fold(xs []int) int {
	add := func(a, b int) int { return a + b }
	n := 0
	for _, x := range xs {
		n = add(n, x)
	}
	return n
}

// Describe is cold: fmt is fine off the hot path.
func Describe(xs []int) string { return fmt.Sprint(xs) }

// tracer mimics the obs.Tracer emit surface: fixed-arity methods that
// are safe (and cheap) on a nil receiver.
type tracer struct{ n int }

func (t *tracer) recv(id, kind int) {
	if t == nil {
		return
	}
	t.n++
}

// Absorb is hot and traced: a nil-guarded fixed-arity emit per
// iteration is the sanctioned pattern — one pointer test and a method
// call, no fmt, no closure.
//
//urb:hotpath
func Absorb(tr *tracer, ids []int) int {
	n := 0
	for _, id := range ids {
		if tr != nil {
			tr.recv(id, 1)
		}
		n += id
	}
	return n
}

// AbsorbLabeled is hot and formats a per-event label: still flagged —
// formatting belongs in the exporters, never at the emit site.
//
//urb:hotpath
func AbsorbLabeled(tr *tracer, ids []int) []string {
	var out []string
	for _, id := range ids {
		out = append(out, fmt.Sprintf("ev-%d", id)) // want "fmt.Sprintf on hot path"
		tr.recv(id, 1)
	}
	return out
}

// AbsorbDeferred is hot and wraps each emit in a per-event closure:
// still flagged — emit directly, the tracer is already cheap.
//
//urb:hotpath
func AbsorbDeferred(tr *tracer, ids []int) []func() {
	var out []func()
	for _, id := range ids {
		f := func() { tr.recv(id, 1) } // want "closure allocated inside a loop"
		out = append(out, f)
	}
	return out
}
