// Package hot is a hotpath fixture.
package hot

import "fmt"

// Sum is hot and calls fmt.
//
//urb:hotpath
func Sum(xs []int) (int, string) {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n, fmt.Sprint(n) // want "fmt.Sprint on hot path"
}

// Each is hot and allocates a closure per element.
//
//urb:hotpath
func Each(xs []int, out []int) []int {
	for _, x := range xs {
		f := func(v int) int { return v * x } // want "closure allocated inside a loop"
		out = append(out, f(x))
	}
	return out
}

// Fold is hot and clean: the closure is hoisted above the loop.
//
//urb:hotpath
func Fold(xs []int) int {
	add := func(a, b int) int { return a + b }
	n := 0
	for _, x := range xs {
		n = add(n, x)
	}
	return n
}

// Describe is cold: fmt is fine off the hot path.
func Describe(xs []int) string { return fmt.Sprint(xs) }
