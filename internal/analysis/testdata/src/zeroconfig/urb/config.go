// Package urb is a zeroconfig fixture: its import path ends in urb, so
// every bool knob must declare its governance.
package urb

// Config mirrors the real knob struct.
type Config struct {
	// DeltaAcks sends incremental ACKs (deviation D5): off in the
	// paper-faithful zero value.
	DeltaAcks bool

	// CompactViews compacts delivered state, a deviation from the
	// listing's literal matrices.
	CompactViews bool // want "no D<n> tag"

	// Window is the retransmit window (deviation D8).
	Window int // want "deviation knobs are bools"

	// DisableRetire turns retirement off (deviation D9): zero keeps it
	// on.
	DisableRetire bool // want "inverted name"

	// EagerSend is a latency ablation; no guard decisions change.
	EagerSend bool

	// Mystery toggles something undocumented.
	Mystery bool // want "declares no governance"

	// Budget caps bytes per tick; ints carry no governance duty.
	Budget int
}
