// Package guarded is a guardedby fixture: the analyzer is driven
// entirely by `guarded by <mu>` field comments, so it needs no special
// package name.
package guarded

import (
	"sync"
	"sync/atomic"
)

type box struct {
	mu sync.Mutex
	// n is the box's running total; guarded by mu.
	n int
	// hits counts reads; atomic so hot paths skip the lock.
	hits atomic.Uint64
	// lies claims to be atomic but is a plain int.
	lies int // atomic // want "documented as atomic but has plain type"
}

// Add locks the mutex: fine.
func (b *box) Add(d int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n += d
}

// Peek reads n without the lock.
func (b *box) Peek() int {
	return b.n // want "guarded by mu"
}

// addLocked is called with mu held.
//
//urbvet:locked mu
func (b *box) addLocked(d int) { b.n += d }

// reset runs before the box is shared.
//
//urbvet:unguarded the box has not escaped its constructor yet
func reset(b *box) { b.n = 0 }

// newBox constructs the box: composite literals are exempt.
func newBox() *box {
	return &box{n: 1}
}

var (
	_ = (*box).addLocked
	_ = reset
	_ = newBox
)
