// Package urb is a determinism fixture: its import path ends in a
// strict deterministic package name, so clocks, math/rand and map-order
// leaks are all flagged.
package urb

import (
	"io"
	"math/rand"
	"sort"
	"time"
)

// Tick reads the wall clock with no justification.
func Tick() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// Pace is allowed to: it paces real time against trace timestamps.
//
//urbvet:wallclock fixture stand-in for replay.Drive's pacing clock
func Pace(d time.Duration) {
	time.Sleep(d)
}

// Jitter uses the global math/rand stream.
func Jitter() int {
	return rand.Intn(3) // want "math/rand"
}

// Digest leaks map order into an order-sensitive sink.
func Digest(w io.Writer, m map[string][]byte) {
	for _, v := range m {
		w.Write(v) // want "Write called inside a map range"
	}
}

// Keys builds an order-dependent slice and never sorts it.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "order-dependent slice"
	}
	return keys
}

// SortedKeys is the package idiom: accumulate, then sort.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count only aggregates; iteration order cannot leak.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Drain writes map values to w behind an explicit opt-out.
func Drain(w io.Writer, m map[string][]byte) {
	//urbvet:unordered fixture: the spool reorders by key internally
	for _, v := range m {
		w.Write(v)
	}
}
