// Package transport mirrors the wallclock-annotated class: clocks need
// a per-function justification, math/rand is out of scope here.
package transport

import (
	"math/rand"
	"time"
)

// Backoff arms a timer with no justification.
func Backoff() *time.Timer {
	return time.NewTimer(time.Millisecond) // want "time.NewTimer"
}

// Deadline is justified: it bounds a real socket read.
//
//urbvet:wallclock fixture stand-in for the UDP read deadline
func Deadline() time.Time {
	return time.Now()
}

// Shuffle may use math/rand: this class only gates clocks.
func Shuffle(n int) int { return rand.Intn(n) }
