// Package wire is a kindexhaustive fixture modeled on the real codec
// package: the analyzer keys on a type named Kind declared in a package
// whose import path ends in wire.
package wire

// Kind tags a message frame.
type Kind uint8

// The declared kinds.
const (
	KindMsg  Kind = 1
	KindAck  Kind = 2
	KindBeat Kind = 3
)

// String names every kind: exhaustive, no diagnostic.
func (k Kind) String() string {
	switch k {
	case KindMsg:
		return "MSG"
	case KindAck:
		return "ACK"
	case KindBeat:
		return "BEAT"
	default:
		return "?"
	}
}

// Size misses KindBeat, and the default clause does not excuse it.
func Size(k Kind) int {
	switch k { // want "misses KindBeat"
	case KindMsg:
		return 3
	case KindAck:
		return 2
	default:
		return 0
	}
}

// Dispatch deliberately handles the ACK kind only.
func Dispatch(k Kind) int {
	//urbvet:partial beat kinds are host traffic, handled elsewhere
	switch k {
	case KindAck:
		return 1
	default:
		return 0
	}
}

// guess has a non-constant case: not a kind dispatch, stay quiet.
func guess(k, other Kind) bool {
	switch k {
	case other:
		return true
	}
	return false
}

var _ = guess
