package analysis_test

import (
	"testing"

	"anonurb/internal/analysis"
	"anonurb/internal/analysis/analysistest"
)

func TestZeroConfig(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ZeroConfig, "zeroconfig/urb")
}
