package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A LoadedPackage is one parsed, type-checked package ready for RunAll.
type LoadedPackage struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Dir   string
}

// A Resolver maps an import path to the directory holding its source,
// or reports false to delegate to the standard-library importer.
type Resolver func(importPath string) (dir string, ok bool)

// Loader type-checks packages from source with no toolchain help: the
// module's own imports resolve through a Resolver, everything else goes
// to the compiler's source importer. It exists so the analyzers (and
// their fixture tests) run offline in a dependency-free module; the
// `go vet -vettool` path in cmd/urbvet uses export data instead and
// never touches this loader.
type Loader struct {
	Fset    *token.FileSet
	resolve Resolver
	std     types.Importer
	pkgs    map[string]*loadEntry
}

type loadEntry struct {
	lp      *LoadedPackage
	err     error
	loading bool
}

// NewLoader returns a Loader resolving module-internal imports via
// resolve.
func NewLoader(resolve Resolver) *Loader {
	// The source importer type-checks dependencies from GOROOT source.
	// Forcing cgo off selects the pure-Go variants of net, os/user etc.,
	// which type-check without a C toolchain or cgo preprocessing.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		resolve: resolve,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*loadEntry),
	}
}

// ModuleResolver returns a Resolver for the module rooted at root with
// module path modPath: "anonurb/internal/wire" resolves to
// root/internal/wire.
func ModuleResolver(root, modPath string) Resolver {
	return func(importPath string) (string, bool) {
		if importPath == modPath {
			return root, true
		}
		rel, ok := strings.CutPrefix(importPath, modPath+"/")
		if !ok {
			return "", false
		}
		return filepath.Join(root, filepath.FromSlash(rel)), true
	}
}

// TreeResolver returns a GOPATH-style Resolver: import path "a/b" is
// the directory root/a/b if it exists. The analyzer fixtures under
// testdata/src use it.
func TreeResolver(root string) Resolver {
	return func(importPath string) (string, bool) {
		dir := filepath.Join(root, filepath.FromSlash(importPath))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
}

// Load parses and type-checks the package with the given import path,
// which must be resolvable by the loader's Resolver. Results are cached
// per path; _test.go files are excluded (the analyzers check production
// code).
func (l *Loader) Load(importPath string) (*LoadedPackage, error) {
	e, ok := l.pkgs[importPath]
	if ok {
		if e.loading {
			return nil, fmt.Errorf("import cycle through %q", importPath)
		}
		return e.lp, e.err
	}
	dir, ok := l.resolve(importPath)
	if !ok {
		return nil, fmt.Errorf("cannot resolve %q to a directory", importPath)
	}
	e = &loadEntry{loading: true}
	l.pkgs[importPath] = e
	e.lp, e.err = l.loadDir(importPath, dir)
	e.loading = false
	return e.lp, e.err
}

func (l *Loader) loadDir(importPath, dir string) (*LoadedPackage, error) {
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &LoadedPackage{Fset: l.Fset, Files: files, Pkg: pkg, Info: info, Dir: dir}, nil
}

// goSources lists dir's non-test .go files in sorted order.
func goSources(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// loaderImporter adapts Loader to types.Importer, chaining to the
// source importer for anything the Resolver does not claim.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if _, ok := l.resolve(path); ok {
		lp, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return lp.Pkg, nil
	}
	return l.std.Import(path)
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}

// ModulePackages lists the import paths of every package directory under
// root (module path modPath), skipping testdata and hidden directories.
func ModulePackages(root, modPath string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		srcs, err := goSources(p)
		if err != nil || len(srcs) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, modPath)
		} else {
			paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return paths, err
}
