package analysis_test

import (
	"testing"

	"anonurb/internal/analysis"
	"anonurb/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Determinism,
		"determinism/urb", "determinism/transport")
}
