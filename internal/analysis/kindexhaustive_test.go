package analysis_test

import (
	"testing"

	"anonurb/internal/analysis"
	"anonurb/internal/analysis/analysistest"
)

func TestKindExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.KindExhaustive, "kindswitch/wire")
}
