// Package analysis is the repo's static-analysis suite: five analyzers
// that machine-check invariants which previously existed only as prose
// in DESIGN.md (exhaustive wire.Kind handling, wall-clock and map-order
// determinism, mutex guard conventions, zero-valued deviation knobs,
// allocation discipline on //urb:hotpath functions — see DESIGN.md §12
// for the analyzer ↔ section map).
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) so the analyzers could move
// onto the upstream framework wholesale, but it is built on the standard
// library alone: the module has no dependencies and its tooling must
// work offline. cmd/urbvet drives the suite both standalone and through
// the `go vet -vettool` protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// An Analyzer describes one analysis pass and its entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the analyzer's documentation, first line a summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in a Pass's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the runner
}

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	dirIndex map[*ast.File]*fileDirectives
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether f is a _test.go file. The analyzers check
// production invariants; tests may use wall clocks, partial switches
// and unguarded access freely.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// PkgBase returns the last element of the package's import path, the
// unit several analyzers key their scope on ("wire", "urb", ...).
func (p *Pass) PkgBase() string { return path.Base(p.Pkg.Path()) }

// All returns the full suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		KindExhaustive,
		Determinism,
		GuardedBy,
		ZeroConfig,
		HotPath,
	}
}

// RunAll applies every analyzer in suite to the loaded package and
// returns the diagnostics sorted by position.
func RunAll(lp *LoadedPackage, suite []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range suite {
		pass := &Pass{
			Analyzer:  a,
			Fset:      lp.Fset,
			Files:     lp.Files,
			Pkg:       lp.Pkg,
			TypesInfo: lp.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortDiagnostics(lp.Fset, diags)
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	// Insertion sort keeps the runner dependency-free; diagnostic counts
	// are tiny.
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && diagLess(fset, diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

func diagLess(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Analyzer < b.Analyzer
}

// namedType unwraps t to its *types.Named form, looking through aliases
// and pointers but not other composites.
func namedType(t types.Type) (*types.Named, bool) {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// pkgNameOf resolves an expression to the package it names, if it is a
// package qualifier (the `time` in `time.Now`).
func pkgNameOf(info *types.Info, e ast.Expr) (*types.PkgName, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return pn, ok
}
