package analysis_test

import (
	"testing"

	"anonurb/internal/analysis"
	"anonurb/internal/analysis/analysistest"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotPath, "hot")
}
