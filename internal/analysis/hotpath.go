package analysis

import (
	"go/ast"
)

//go:generate go test -run TestHotPathEscapeBaseline -args -update-hotpath-baseline

// HotPath checks the functions annotated `//urb:hotpath` — the absorb,
// Tick, encode and admission-classify paths DESIGN.md §10 commits to
// keeping allocation-free in steady state. Two structural rules:
//
//   - no calls into package fmt (every fmt call allocates; hot-path
//     diagnostics belong on the Stats/Observer side);
//   - no function literal inside a loop (a closure capturing loop state
//     is an allocation per iteration the benchmarks only notice after
//     the regression has shipped). Closures hoisted to the top of the
//     function are fine — they allocate once.
//
// The third rule is not structural and lives in the companion test
// gate: TestHotPathEscapeBaseline diffs `go build -gcflags=-m`
// escape-analysis output for the annotated functions against
// testdata/hotpath_baseline.txt, so a new heap escape on the hot path
// fails CI even when both structural rules pass.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//urb:hotpath functions may not call fmt or allocate closures inside loops",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := FuncDirective(fn, "urb:hotpath"); !ok {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
		case *ast.FuncLit:
			if loopDepth > 0 {
				pass.Reportf(n.Pos(),
					"closure allocated inside a loop on hot path %s: hoist it above the loop or inline the body",
					fn.Name.Name)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if pn, ok := pkgNameOf(pass.TypesInfo, sel.X); ok && pn.Imported().Path() == "fmt" {
					pass.Reportf(n.Pos(),
						"fmt.%s on hot path %s: fmt allocates on every call; move formatting off the hot path",
						sel.Sel.Name, fn.Name.Name)
				}
			}
		}
		for _, child := range childNodes(n) {
			walk(child, loopDepth)
		}
	}
	walk(fn.Body, 0)
}

// childNodes returns n's immediate children, using ast.Inspect's
// traversal but cutting it off below depth one.
func childNodes(n ast.Node) []ast.Node {
	var children []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			children = append(children, c)
		}
		return false
	})
	return children
}
