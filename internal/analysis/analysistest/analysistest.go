// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want "…"` expectations, the same
// contract as golang.org/x/tools/go/analysis/analysistest but built on
// the repo's stdlib-only loader. Fixtures live GOPATH-style under
// <testdata>/src/<importpath>; a line expecting diagnostics carries one
// `// want` comment with one double-quoted substring per expected
// diagnostic on that line.
package analysistest

import (
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"anonurb/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads each fixture package and applies a, reporting unmatched
// expectations and unexpected diagnostics through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewLoader(analysis.TreeResolver(testdata + "/src"))
	for _, pkgPath := range pkgPaths {
		lp, err := loader.Load(pkgPath)
		if err != nil {
			t.Errorf("loading fixture %s: %v", pkgPath, err)
			continue
		}
		diags, err := analysis.RunAll(lp, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, pkgPath, err)
			continue
		}
		check(t, lp, a, pkgPath, diags)
	}
}

type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

func check(t *testing.T, lp *analysis.LoadedPackage, a *analysis.Analyzer, pkgPath string, diags []analysis.Diagnostic) {
	t.Helper()
	expects := collectWants(t, lp)
	for _, d := range diags {
		pos := lp.Fset.Position(d.Pos)
		found := false
		for i := range expects {
			e := &expects[i]
			if e.matched || e.file != pos.Filename || e.line != pos.Line {
				continue
			}
			if strings.Contains(d.Message, e.substr) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, a.Name, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected %s diagnostic containing %q, got none",
				e.file, e.line, a.Name, e.substr)
		}
	}
	_ = pkgPath
}

// collectWants extracts every `// want "…" ["…"]` expectation from the
// fixture's comments.
func collectWants(t *testing.T, lp *analysis.LoadedPackage) []expectation {
	t.Helper()
	var expects []expectation
	for _, f := range lp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				expects = append(expects, parseWant(t, lp, c)...)
			}
		}
	}
	return expects
}

func parseWant(t *testing.T, lp *analysis.LoadedPackage, c *ast.Comment) []expectation {
	m := wantRe.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := lp.Fset.Position(c.Slash)
	var expects []expectation
	rest := strings.TrimSpace(m[1])
	for rest != "" {
		if rest[0] != '"' {
			t.Errorf("%s: malformed want comment near %q", pos, rest)
			return expects
		}
		end := strings.Index(rest[1:], `"`)
		if end < 0 {
			t.Errorf("%s: unterminated want string", pos)
			return expects
		}
		expects = append(expects, expectation{
			file:   pos.Filename,
			line:   pos.Line,
			substr: rest[1 : 1+end],
		})
		rest = strings.TrimSpace(rest[2+end:])
	}
	return expects
}
