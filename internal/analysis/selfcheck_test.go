package analysis_test

import (
	"testing"

	"anonurb/internal/analysis"
)

// TestSuiteOnModule is the dogfood gate: the full analyzer suite must
// run clean over the whole module. It is the in-process twin of the CI
// lint job's `go vet -vettool=urbvet ./...` — a diagnostic here means a
// real invariant violation (or a missing annotation) in the tree.
func TestSuiteOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	root, modPath, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.ModulePackages(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("found only %d packages under %s; module walk is broken", len(pkgs), root)
	}
	loader := analysis.NewLoader(analysis.ModuleResolver(root, modPath))
	for _, pkgPath := range pkgs {
		lp, err := loader.Load(pkgPath)
		if err != nil {
			t.Errorf("loading %s: %v", pkgPath, err)
			continue
		}
		diags, err := analysis.RunAll(lp, analysis.All())
		if err != nil {
			t.Errorf("analyzing %s: %v", pkgPath, err)
			continue
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", lp.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
