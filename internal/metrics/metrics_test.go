package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("q%.2f = %d, want %d", c.q, got, c.want)
		}
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatal("min/max")
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Fatalf("mean %g", h.Mean())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramUnsortedInput(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{5, 1, 9, 3, 7} {
		h.Observe(v)
	}
	if h.Quantile(0.5) != 5 {
		t.Fatalf("median %d", h.Quantile(0.5))
	}
	// Interleaving observes and reads must stay consistent.
	h.Observe(0)
	if h.Min() != 0 {
		t.Fatal("min after late observe")
	}
}

func TestHistogramQuantileMonotoneQuick(t *testing.T) {
	f := func(vals []int16) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Observe(int64(v))
		}
		prev := int64(math.MinInt64)
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if len(vals) > 0 && cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSummaryFormat(t *testing.T) {
	h := NewHistogram()
	h.Observe(10)
	if h.Summary() == "" {
		t.Fatal("summary empty")
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 1)
	s.Add(10, 2)
	s.Add(20, 2)
	if s.Len() != 3 || s.Last().V != 2 {
		t.Fatal("series basics")
	}
	if s.At(-1) != 0 {
		t.Fatal("At before first sample")
	}
	if s.At(0) != 1 || s.At(9) != 1 || s.At(10) != 2 || s.At(100) != 2 {
		t.Fatal("At lookup")
	}
}

func TestSeriesTimeMonotonePanic(t *testing.T) {
	s := NewSeries("x")
	s.Add(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on time regression")
		}
	}()
	s.Add(5, 2)
}

func TestSeriesPlateauTime(t *testing.T) {
	s := NewSeries("sends")
	s.Add(0, 0)
	s.Add(10, 5)
	s.Add(20, 9)
	s.Add(30, 9)
	s.Add(40, 9)
	if got := s.PlateauTime(); got != 20 {
		t.Fatalf("plateau at %d, want 20", got)
	}
	flat := NewSeries("flat")
	flat.Add(0, 3)
	flat.Add(10, 3)
	if got := flat.PlateauTime(); got != 0 {
		t.Fatalf("constant series plateau %d, want 0", got)
	}
	empty := NewSeries("e")
	if empty.PlateauTime() != -1 {
		t.Fatal("empty plateau should be -1")
	}
	rising := NewSeries("r")
	rising.Add(0, 1)
	rising.Add(10, 2)
	if got := rising.PlateauTime(); got != 10 {
		t.Fatalf("rising-series plateau %d, want 10 (last change)", got)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatal("N")
	}
	if math.Abs(w.Mean()-5) > 1e-9 {
		t.Fatalf("mean %g", w.Mean())
	}
	// Sample std of this classic set is ~2.138.
	if math.Abs(w.Std()-2.13809) > 1e-4 {
		t.Fatalf("std %g", w.Std())
	}
	var single Welford
	single.Add(3)
	if single.Std() != 0 {
		t.Fatal("std of one sample")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 2 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				vals[i] = float64(i)
			}
		}
		var w Welford
		var sum float64
		for _, v := range vals {
			w.Add(v)
			sum += v
		}
		mean := sum / float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		std := math.Sqrt(ss / float64(len(vals)-1))
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Std()-std) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
