package metrics

import "testing"

func TestSeriesAtEdges(t *testing.T) {
	empty := NewSeries("empty")
	if v := empty.At(0); v != 0 {
		t.Fatalf("empty.At(0) = %v, want 0", v)
	}
	if v := empty.At(1 << 40); v != 0 {
		t.Fatalf("empty.At(big) = %v, want 0", v)
	}

	single := NewSeries("single")
	single.Add(10, 3.5)
	if v := single.At(9); v != 0 {
		t.Fatalf("query before the only sample: At(9) = %v, want 0", v)
	}
	if v := single.At(10); v != 3.5 {
		t.Fatalf("At(10) = %v, want 3.5", v)
	}
	if v := single.At(1 << 40); v != 3.5 {
		t.Fatalf("At(far future) = %v, want 3.5", v)
	}

	s := NewSeries("steps")
	s.Add(0, 1)
	s.Add(5, 2)
	s.Add(5, 3) // same-time re-sample: the later value wins for T >= 5
	s.Add(9, 4)
	for _, tc := range []struct {
		t    int64
		want float64
	}{{-1, 0}, {0, 1}, {4, 1}, {5, 3}, {8, 3}, {9, 4}, {100, 4}} {
		if v := s.At(tc.t); v != tc.want {
			t.Fatalf("At(%d) = %v, want %v", tc.t, v, tc.want)
		}
	}
}

func TestSeriesPlateauTimeEdges(t *testing.T) {
	if got := NewSeries("empty").PlateauTime(); got != -1 {
		t.Fatalf("empty PlateauTime = %d, want -1", got)
	}

	single := NewSeries("single")
	single.Add(7, 1)
	if got := single.PlateauTime(); got != 7 {
		t.Fatalf("single-point PlateauTime = %d, want 7", got)
	}

	flat := NewSeries("flat")
	flat.Add(1, 5)
	flat.Add(2, 5)
	flat.Add(9, 5)
	if got := flat.PlateauTime(); got != 1 {
		t.Fatalf("constant series PlateauTime = %d, want the first sample time 1", got)
	}

	knee := NewSeries("knee")
	knee.Add(0, 1)
	knee.Add(3, 2)
	knee.Add(6, 2)
	knee.Add(9, 2)
	if got := knee.PlateauTime(); got != 3 {
		t.Fatalf("PlateauTime = %d, want the knee at 3", got)
	}

	fresh := NewSeries("ends-on-change")
	fresh.Add(0, 1)
	fresh.Add(4, 2)
	if got := fresh.PlateauTime(); got != 4 {
		t.Fatalf("series ending on a change plateaus at that change: got %d, want 4", got)
	}
}

func TestHistogramCloneIndependent(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{5, 1, 9} {
		h.Observe(v)
	}
	c := h.Clone()
	if c.Count() != 3 || c.Quantile(0.5) != 5 || c.Max() != 9 {
		t.Fatalf("clone stats: count=%d p50=%d max=%d", c.Count(), c.Quantile(0.5), c.Max())
	}
	// Mutating either side must not leak into the other.
	h.Observe(100)
	c.Observe(-7)
	if h.Count() != 4 || h.Max() != 100 || h.Min() != 1 {
		t.Fatalf("original after clone mutation: count=%d max=%d min=%d", h.Count(), h.Max(), h.Min())
	}
	if c.Count() != 4 || c.Min() != -7 || c.Max() != 9 {
		t.Fatalf("clone after original mutation: count=%d min=%d max=%d", c.Count(), c.Min(), c.Max())
	}
}

// BenchmarkHistogramCloneVsSummary is the satellite-2 guard: Clone (what
// a collector does under its lock) must stay a plain copy, orders of
// magnitude cheaper than the sort Summary performs. Run both to compare:
//
//	go test ./internal/metrics -bench 'HistogramClone|HistogramSummary'
func BenchmarkHistogramClone(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 1<<16; i++ {
		h.Observe(int64(i * 2654435761 % 99991))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Clone()
	}
}

func BenchmarkHistogramSummary(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 1<<16; i++ {
		h.Observe(int64(i * 2654435761 % 99991))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Clone first so every iteration pays the real (unsorted) cost.
		_ = h.Clone().Summary()
	}
}
