// Package metrics provides the small statistics toolkit the benchmark
// harness uses: latency histograms with quantiles, time series for the
// quiescence/memory curves, and streaming mean/stddev.
//
// Everything is plain int64/float64 arithmetic with deterministic results;
// no wall-clock time is involved anywhere (the simulator's virtual time is
// just an int64).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram collects int64 observations (virtual-time latencies, counts)
// and reports exact quantiles. Observations are kept; the scales in this
// repository (≤ millions of points) make exactness affordable and the
// results reproducible.
type Histogram struct {
	vals   []int64
	sorted bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.vals = append(h.vals, v)
	h.sorted = false
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return len(h.vals) }

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Slice(h.vals, func(i, j int) bool { return h.vals[i] < h.vals[j] })
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using the nearest-rank
// method. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if len(h.vals) == 0 {
		return 0
	}
	h.sort()
	if q <= 0 {
		return h.vals[0]
	}
	if q >= 1 {
		return h.vals[len(h.vals)-1]
	}
	rank := int(math.Ceil(q*float64(len(h.vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.vals[rank]
}

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.vals {
		sum += float64(v)
	}
	return sum / float64(len(h.vals))
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() int64 {
	if len(h.vals) == 0 {
		return 0
	}
	h.sort()
	return h.vals[len(h.vals)-1]
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() int64 {
	if len(h.vals) == 0 {
		return 0
	}
	h.sort()
	return h.vals[0]
}

// Summary renders "mean/p50/p99/max" for tables.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("%.1f/%d/%d/%d", h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Clone returns an independent copy of the histogram. Quantile, Summary
// and Max sort in place — O(n log n) on first call after an Observe — so
// a collector that guards Observe with a lock should Clone under the
// lock (a plain O(n) copy) and summarize the clone outside it.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{vals: append([]int64(nil), h.vals...), sorted: h.sorted}
}

// Point is one (time, value) sample.
type Point struct {
	T int64
	V float64
}

// Series is an append-only time series (cumulative sends, set sizes).
type Series struct {
	Name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample; times must be non-decreasing.
func (s *Series) Add(t int64, v float64) {
	if n := len(s.points); n > 0 && s.points[n-1].T > t {
		panic(fmt.Sprintf("metrics: series %q time went backwards (%d after %d)",
			s.Name, t, s.points[n-1].T))
	}
	s.points = append(s.points, Point{T: t, V: v})
}

// Points returns the samples in order.
func (s *Series) Points() []Point { return s.points }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Last returns the final sample, or a zero Point if empty.
func (s *Series) Last() Point {
	if len(s.points) == 0 {
		return Point{}
	}
	return s.points[len(s.points)-1]
}

// At returns the value at time t (the latest sample with T ≤ t), or 0 if
// t precedes the first sample.
func (s *Series) At(t int64) float64 {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.points[i-1].V
}

// PlateauTime returns the earliest sample time after which the series
// never changes value again, or the first sample's time if it is
// constant, or -1 if it is empty or still changing at the end cannot be
// told apart (a series that ends on a fresh change plateaus at that
// change). It is how the harness finds the quiescence knee of a
// cumulative-sends curve.
func (s *Series) PlateauTime() int64 {
	if len(s.points) == 0 {
		return -1
	}
	last := s.points[len(s.points)-1].V
	t := s.points[len(s.points)-1].T
	for i := len(s.points) - 1; i >= 0; i-- {
		if s.points[i].V != last {
			return t
		}
		t = s.points[i].T
	}
	return t
}

// Welford is a streaming mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Std returns the sample standard deviation (0 for n < 2).
func (w *Welford) Std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}
