package replay

import (
	"sync"

	"anonurb/internal/sim"
	"anonurb/internal/urb"
	"anonurb/internal/wire"
)

// Recorder captures a run's broadcast schedule. It implements
// sim.Observer, so plugging it into a simulator scenario (or a harness
// Observers list) records every URB_broadcast the run executes; live
// drivers that call node.Broadcast themselves record through Observe
// instead (the live node layer has no broadcast observer — the caller
// is the broadcaster, so the caller records).
//
// A Recorder is safe for concurrent use: live clusters broadcast from
// many goroutines.
type Recorder struct {
	mu      sync.Mutex
	entries []Entry
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Observe records one broadcast: proc URB-broadcast body at virtual
// time at. Live drivers map wall-clock time to virtual time with
// whatever unit they replay at (Drive uses the same convention).
func (r *Recorder) Observe(at sim.Time, proc int, body []byte) {
	r.mu.Lock()
	r.entries = append(r.entries, Entry{
		At:     at,
		Proc:   proc,
		Size:   len(body),
		Digest: BodyDigest(body),
	})
	r.mu.Unlock()
}

// OnBroadcast implements sim.Observer.
func (r *Recorder) OnBroadcast(t sim.Time, proc int, id wire.MsgID) {
	r.Observe(t, proc, []byte(id.Body))
}

// OnSend implements sim.Observer (no-op; wire traffic is not schedule).
func (r *Recorder) OnSend(sim.Time, int, int, wire.Message, bool, sim.Time) {}

// OnReceive implements sim.Observer (no-op).
func (r *Recorder) OnReceive(sim.Time, int, wire.Message) {}

// OnDeliver implements sim.Observer (no-op).
func (r *Recorder) OnDeliver(sim.Time, int, urb.Delivery) {}

// OnCrash implements sim.Observer (no-op).
func (r *Recorder) OnCrash(sim.Time, int) {}

// Len reports how many broadcasts have been recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Schedule snapshots the recording as a Schedule for a system of n
// processes. The entries are copied; recording may continue.
func (r *Recorder) Schedule(n int) *Schedule {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Schedule{N: n, Entries: append([]Entry(nil), r.entries...)}
}
