package replay

import (
	"context"
	"fmt"
	"sort"
	"time"

	"anonurb/internal/sim"
	"anonurb/internal/workload"
	"anonurb/internal/xrand"
)

// Replayer plays a recorded Schedule back as a workload: it implements
// workload.Broadcasts, so a captured trace plugs into every driver a
// generator does — simulator scenarios, the harness, the benchmarks.
//
// Replays are deterministic end to end: the schedule is data, payloads
// are pure functions of their recorded (digest, size), and the
// simulator is a pure function of its inputs — so the same trace under
// the same seed produces byte-identical deliveries, run after run.
type Replayer struct {
	Schedule *Schedule
	// Speed rescales the schedule's pace: 2 halves every inter-arrival
	// gap (twice the recorded rate), 0.5 doubles it. 0 means 1.
	Speed float64
}

var _ workload.Broadcasts = Replayer{}

// Generate implements workload.Broadcasts. The rng is unused — a replay
// has no randomness left in it. Entries recorded for a larger system
// than n fold onto the available processes (proc mod n).
func (r Replayer) Generate(n int, _ *xrand.Source) []sim.ScheduledBroadcast {
	speed := r.Speed
	if speed <= 0 {
		speed = 1
	}
	out := make([]sim.ScheduledBroadcast, 0, len(r.Schedule.Entries))
	for _, e := range r.Schedule.Entries {
		out = append(out, sim.ScheduledBroadcast{
			At:   sim.Time(float64(e.At)/speed) + 1,
			Proc: e.Proc % n,
			Body: e.Body(),
		})
	}
	return out
}

// String implements workload.Broadcasts.
func (r Replayer) String() string {
	speed := r.Speed
	if speed <= 0 {
		speed = 1
	}
	return fmt.Sprintf("replay(%d entries,n=%d,x%g)", len(r.Schedule.Entries), r.Schedule.N, speed)
}

// Drive plays a schedule against a live cluster at a target rate: for
// each entry, when its wall-clock moment arrives — recorded virtual
// time × unit ÷ speed from the call — it invokes broadcast(proc, body).
// Entries are driven in time order regardless of recorded order. It
// returns the first broadcast error, ctx's error if cancelled, or nil
// after the last entry is driven.
//
//urbvet:wallclock Drive's whole job is pacing recorded virtual time against the real clock; determinism lives in the schedule, not the pacing
func Drive(ctx context.Context, s *Schedule, n int, unit time.Duration, speed float64, broadcast func(proc int, body []byte) error) error {
	if speed <= 0 {
		speed = 1
	}
	if unit <= 0 {
		unit = time.Millisecond
	}
	order := make([]Entry, len(s.Entries))
	copy(order, s.Entries)
	sort.SliceStable(order, func(i, j int) bool { return order[i].At < order[j].At })
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for _, e := range order {
		due := start.Add(time.Duration(float64(e.At) * float64(unit) / speed))
		if wait := time.Until(due); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := broadcast(e.Proc%n, e.Body()); err != nil {
			return err
		}
	}
	return nil
}
