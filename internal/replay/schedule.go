// Package replay records a run's broadcast schedule to a compact trace
// file and plays it back as a workload, so any interesting run — a
// skewed generator's output, a flood, a production capture — becomes a
// reproducible scenario for the simulator, the live cluster and the
// benchmarks.
//
// A schedule is the application-level input of a run: who URB-broadcast
// what and when. It deliberately records the payload's digest and size,
// not its bytes: replayed payloads are regenerated as a pure function of
// (digest, size), which keeps trace files tiny (one short line per
// broadcast, independent of payload size), keeps replays byte-identical
// across runs, and never persists application data into benchmark
// artifacts.
//
// The file format follows the repository's trace-file discipline
// (versioned, line-oriented, streamable, corruption-evident):
//
//	anonurb-sched v1 n=<procs> count=<entries> crc=<8hex>
//	<at> <proc> <size> <16hex digest> crc=<8hex>
//	...
//
// Every line carries a CRC32 (IEEE) of its preceding text, and the
// header pre-declares the entry count, so a truncated header, a torn
// tail and a flipped byte are all detected — a schedule either reads
// back exactly or fails loudly.
package replay

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"

	"anonurb/internal/sim"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// Schedule file errors.
var (
	// ErrHeader marks a missing or malformed header line (including a
	// truncated file that ends inside it).
	ErrHeader = errors.New("replay: malformed schedule header")
	// ErrVersion marks a schedule written by an unknown format version.
	ErrVersion = errors.New("replay: unknown schedule version")
	// ErrCRC marks a line whose checksum does not match its text.
	ErrCRC = errors.New("replay: schedule line checksum mismatch")
	// ErrEntry marks a malformed or out-of-bounds entry line.
	ErrEntry = errors.New("replay: malformed schedule entry")
	// ErrTruncated marks a file that ends before the header's declared
	// entry count — the torn-tail case.
	ErrTruncated = errors.New("replay: schedule truncated before declared count")
	// ErrTrailing marks bytes after the last declared entry.
	ErrTrailing = errors.New("replay: data after last schedule entry")
)

const (
	magic         = "anonurb-sched"
	formatVersion = 1
)

// Entry is one recorded broadcast: process proc URB-broadcast a
// size-byte payload with the given digest at virtual time At.
type Entry struct {
	At     sim.Time
	Proc   int
	Size   int
	Digest uint64
}

// Schedule is a recorded broadcast schedule for a system of N processes.
type Schedule struct {
	N       int
	Entries []Entry
}

// BodyDigest returns the 64-bit FNV-1a digest of a payload — the
// identity a schedule stores in place of the bytes.
func BodyDigest(body []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range body {
		h = (h ^ uint64(c)) * prime64
	}
	return h
}

// Body regenerates a replay payload for e: a pure function of (digest,
// size), so every replay of a schedule broadcasts byte-identical
// payloads. The original bytes are not recoverable (the schedule never
// stored them); what is preserved is identity — distinct recorded
// payloads yield distinct replayed payloads (up to digest collision) of
// the recorded sizes.
func (e Entry) Body() []byte {
	if e.Size <= 0 {
		return nil
	}
	body := make([]byte, e.Size)
	rng := xrand.New(xrand.HashStream(e.Digest, uint64(e.Size)))
	i := 0
	for ; i+8 <= e.Size; i += 8 {
		v := rng.Uint64()
		for k := 0; k < 8; k++ {
			body[i+k] = byte(v >> (8 * k))
		}
	}
	if i < e.Size {
		v := rng.Uint64()
		for ; i < e.Size; i++ {
			body[i] = byte(v)
			v >>= 8
		}
	}
	return body
}

// lineCRC is the checksum every schedule line carries over its
// preceding text.
func lineCRC(text string) uint32 {
	return crc32.ChecksumIEEE([]byte(text))
}

// Write streams s in the schedule file format.
func (s *Schedule) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	head := fmt.Sprintf("%s v%d n=%d count=%d", magic, formatVersion, s.N, len(s.Entries))
	if _, err := fmt.Fprintf(bw, "%s crc=%08x\n", head, lineCRC(head)); err != nil {
		return err
	}
	for _, e := range s.Entries {
		line := fmt.Sprintf("%d %d %d %016x", e.At, e.Proc, e.Size, e.Digest)
		if _, err := fmt.Fprintf(bw, "%s crc=%08x\n", line, lineCRC(line)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes s to path (atomically enough for a trace artifact:
// create/truncate, write, close).
func (s *Schedule) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitCRC separates a schedule line into its text and its declared
// checksum, verifying the two match.
func splitCRC(line string) (string, error) {
	i := strings.LastIndex(line, " crc=")
	if i < 0 || len(line)-i-len(" crc=") != 8 {
		return "", ErrCRC
	}
	text := line[:i]
	want, err := strconv.ParseUint(line[i+len(" crc="):], 16, 32)
	if err != nil || lineCRC(text) != uint32(want) {
		return "", ErrCRC
	}
	return text, nil
}

// Read parses a schedule, verifying version, per-line checksums and the
// declared entry count.
func Read(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, ErrHeader
	}
	text, err := splitCRC(sc.Text())
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrHeader, err)
	}
	var version, n, count int
	if _, err := fmt.Sscanf(text, magic+" v%d n=%d count=%d", &version, &n, &count); err != nil {
		return nil, ErrHeader
	}
	if version != formatVersion {
		return nil, ErrVersion
	}
	if n < 1 || count < 0 {
		return nil, ErrHeader
	}
	// Capacity is clamped so a forged header cannot demand a huge
	// allocation before the (missing) entries disprove it.
	s := &Schedule{N: n, Entries: make([]Entry, 0, min(count, 4096))}
	for i := 0; i < count; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, ErrTruncated
		}
		text, err := splitCRC(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		var e Entry
		if _, err := fmt.Sscanf(text, "%d %d %d %x", &e.At, &e.Proc, &e.Size, &e.Digest); err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, ErrEntry)
		}
		if e.At < 0 || e.Proc < 0 || e.Size < 0 || e.Size > wire.MaxBody {
			return nil, fmt.Errorf("entry %d: %w", i, ErrEntry)
		}
		s.Entries = append(s.Entries, e)
	}
	if sc.Scan() {
		return nil, ErrTrailing
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadFile reads a schedule from path.
func ReadFile(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
