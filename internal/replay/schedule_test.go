package replay

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"anonurb/internal/sim"
)

func testSchedule() *Schedule {
	s := &Schedule{N: 5}
	bodies := [][]byte{[]byte("alpha"), []byte("beta"), {}, bytes.Repeat([]byte{7}, 300)}
	for i, b := range bodies {
		s.Entries = append(s.Entries, Entry{
			At:     sim.Time(i * 13),
			Proc:   i % 5,
			Size:   len(b),
			Digest: BodyDigest(b),
		})
	}
	return s
}

// TestScheduleRoundTrip: Write then Read must reproduce the schedule
// exactly.
func TestScheduleRoundTrip(t *testing.T) {
	s := testSchedule()
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != s.N || !reflect.DeepEqual(got.Entries, s.Entries) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

// TestScheduleFileRoundTrip covers the file-path convenience pair.
func TestScheduleFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.sched")
	s := testSchedule()
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("file round trip mismatch")
	}
}

// TestScheduleEmpty: a zero-entry schedule must survive the trip too.
func TestScheduleEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Schedule{N: 3}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 3 || len(got.Entries) != 0 {
		t.Fatalf("empty schedule mangled: %+v", got)
	}
}

// encoded returns the serialised test schedule's lines.
func encoded(t *testing.T) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := testSchedule().Write(&buf); err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
}

func tryRead(lines []string) error {
	_, err := Read(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	return err
}

// TestScheduleCorruption: every way a trace file can be damaged in
// transit must be detected — truncated header, torn tail, flipped CRC,
// flipped payload byte, trailing garbage.
func TestScheduleCorruption(t *testing.T) {
	lines := encoded(t)

	if err := tryRead(nil); !errors.Is(err, ErrHeader) {
		t.Errorf("empty file: %v", err)
	}
	if err := tryRead([]string{"not a header at all"}); !errors.Is(err, ErrHeader) {
		t.Errorf("garbage header: %v", err)
	}
	// Torn tail: the header pre-declares the count, so dropping the last
	// entry line is detected even though every surviving line is valid.
	if err := tryRead(lines[:len(lines)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("torn tail: %v", err)
	}
	// CRC flip on an entry line.
	flipped := append([]string(nil), lines...)
	last := flipped[1]
	if strings.HasSuffix(last, "0") {
		flipped[1] = last[:len(last)-1] + "1"
	} else {
		flipped[1] = last[:len(last)-1] + "0"
	}
	if err := tryRead(flipped); !errors.Is(err, ErrCRC) {
		t.Errorf("entry CRC flip: %v", err)
	}
	// Payload flip: damage the entry text, keep its CRC.
	damaged := append([]string(nil), lines...)
	damaged[2] = strings.Replace(damaged[2], " ", "  ", 1)
	if err := tryRead(damaged); !errors.Is(err, ErrCRC) {
		t.Errorf("payload flip: %v", err)
	}
	// Header CRC flip.
	hdr := append([]string(nil), lines...)
	if strings.HasSuffix(hdr[0], "0") {
		hdr[0] = hdr[0][:len(hdr[0])-1] + "1"
	} else {
		hdr[0] = hdr[0][:len(hdr[0])-1] + "0"
	}
	if err := tryRead(hdr); !errors.Is(err, ErrCRC) {
		t.Errorf("header CRC flip: %v", err)
	}
	// Trailing garbage after the declared count.
	extra := append(append([]string(nil), lines...), lines[1])
	if err := tryRead(extra); !errors.Is(err, ErrTrailing) {
		t.Errorf("trailing line: %v", err)
	}
	// Future format version, with a valid CRC so the version check is
	// what actually fires.
	future := append([]string(nil), lines...)
	text := strings.Replace(future[0][:strings.LastIndex(future[0], " crc=")], " v1 ", " v9 ", 1)
	future[0] = fmt.Sprintf("%s crc=%08x", text, lineCRC(text))
	if err := tryRead(future); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: %v", err)
	}
}

// TestBodyRegeneration: Entry.Body is a pure function of (digest, size)
// — equal entries regenerate identical bodies, different digests
// diverge.
func TestBodyRegeneration(t *testing.T) {
	e := Entry{Size: 64, Digest: BodyDigest([]byte("seed"))}
	a, b := e.Body(), e.Body()
	if !bytes.Equal(a, b) {
		t.Fatal("Body not deterministic")
	}
	if len(a) != 64 {
		t.Fatalf("Body length %d, want 64", len(a))
	}
	other := Entry{Size: 64, Digest: BodyDigest([]byte("other"))}
	if bytes.Equal(a, other.Body()) {
		t.Fatal("different digests produced identical bodies")
	}
	if got := (Entry{Size: 0, Digest: 1}).Body(); len(got) != 0 {
		t.Fatal("zero-size body not empty")
	}
}

// FuzzScheduleDecode: arbitrary bytes must never panic the decoder, and
// every accepted input must re-encode to an equivalent schedule.
func FuzzScheduleDecode(f *testing.F) {
	var buf bytes.Buffer
	_ = testSchedule().Write(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("anonurb-sched v1 n=2 count=0 crc=00000000\n"))
	f.Add([]byte(""))
	f.Add([]byte("anonurb-sched"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := s.Write(&out); err != nil {
			t.Fatalf("accepted schedule failed to re-encode: %v", err)
		}
		again, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded schedule rejected: %v", err)
		}
		if again.N != s.N || len(again.Entries) != len(s.Entries) {
			t.Fatalf("re-encode changed the schedule: %+v vs %+v", again, s)
		}
	})
}
