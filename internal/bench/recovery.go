package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/node"
	"anonurb/internal/store"
	"anonurb/internal/transport"
	"anonurb/internal/urb"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// RecoveryWorkload measures the durable-state subsystem (DESIGN.md §9):
// what checkpointing costs while the cluster runs, and what recovery
// costs when a node restarts from its store. One node (index 0) runs
// with a file-backed store; the workload delivers a batch of messages,
// kills the durable node, makes progress without it, restarts it via
// node.Recover and measures the restart end to end.
type RecoveryWorkload struct {
	Algo Algo `json:"algo"`
	// N is the cluster size.
	N int `json:"n"`
	// Messages is the pre-crash batch (round-robin broadcasts); the
	// durable node's WAL and checkpoints amortise over the N*Messages
	// deliveries it produces.
	Messages int `json:"messages"`
	// PostMessages is the batch broadcast while the durable node is down
	// (its catch-up work). Default 2.
	PostMessages int `json:"post_messages"`
	// Payload is the broadcast payload size in bytes (default 64).
	Payload int `json:"payload"`
	// TickEvery is the Task-1 period (default 5ms).
	TickEvery time.Duration `json:"tick_every_ns"`
	// CheckpointEvery is the durable node's checkpoint cadence. A very
	// large value (e.g. an hour) disables checkpointing in practice, so
	// recovery replays the whole WAL — the "recovery latency vs WAL
	// length" axis of the benchmark. Default 20ms.
	CheckpointEvery time.Duration `json:"checkpoint_every_ns"`
	// Seed drives tick phases and tag streams.
	Seed uint64 `json:"seed"`
	// Timeout bounds each phase separately. Default 60s.
	Timeout time.Duration `json:"-"`
}

// String names the workload compactly.
func (w RecoveryWorkload) String() string {
	mode := "ckpt"
	if w.CheckpointEvery >= time.Hour {
		mode = "wal-only"
	}
	return fmt.Sprintf("recovery/%s/n=%d/msgs=%d/%s", w.Algo, w.N, w.Messages, mode)
}

// RecoveryResult is one recovery workload's measurement.
type RecoveryResult struct {
	Workload RecoveryWorkload `json:"workload"`

	// Deliveries is the pre-crash cluster-wide delivery count
	// (N*Messages), the denominator of the overhead metrics.
	Deliveries uint64 `json:"deliveries"`

	// Durability overhead on the durable node up to the crash.
	Checkpoints     uint64 `json:"checkpoints"`
	CheckpointBytes uint64 `json:"checkpoint_bytes"`
	WALAppends      uint64 `json:"wal_appends"`
	WALBytes        uint64 `json:"wal_bytes"`
	// CheckpointBytesPerDelivery and WALBytesPerDelivery normalise the
	// durability traffic to the deliveries it protects. The WAL figure
	// is the floor (every delivery/pin/broadcast writes once); the
	// checkpoint figure falls with cadence.
	CheckpointBytesPerDelivery float64 `json:"checkpoint_bytes_per_delivery"`
	WALBytesPerDelivery        float64 `json:"wal_bytes_per_delivery"`

	// What the restart replayed.
	SnapshotBytesReplayed int `json:"snapshot_bytes_replayed"`
	WALRecordsReplayed    int `json:"wal_records_replayed"`

	// RecoveryMS is node.Recover wall time: store load + snapshot
	// restore + WAL replay + compacting re-checkpoint.
	RecoveryMS float64 `json:"recovery_ms"`
	// CatchupMS is the time from the recovered node's Start until it has
	// delivered every message broadcast while it was down.
	CatchupMS float64 `json:"catchup_ms"`
	// Redelivered counts pre-crash deliveries the recovered node
	// delivered again. The subsystem's correctness bar: always 0.
	Redelivered uint64 `json:"redelivered"`
}

// RunRecovery executes one recovery workload on a reliable in-process
// mesh (the measurement targets the store and restart path, not loss
// resilience — the test suites cover that).
func RunRecovery(w RecoveryWorkload) (RecoveryResult, error) {
	if w.N < 3 || w.Messages < 1 {
		return RecoveryResult{}, fmt.Errorf("bench: recovery needs N >= 3 and Messages >= 1")
	}
	if w.PostMessages <= 0 {
		w.PostMessages = 2
	}
	if w.Payload <= 0 {
		w.Payload = 64
	}
	if w.TickEvery <= 0 {
		w.TickEvery = 5 * time.Millisecond
	}
	if w.CheckpointEvery <= 0 {
		w.CheckpointEvery = 20 * time.Millisecond
	}
	if w.Timeout <= 0 {
		w.Timeout = 60 * time.Second
	}

	dir, err := os.MkdirTemp("", "anonurb-recovery-bench-*")
	if err != nil {
		return RecoveryResult{}, fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(dir)
	st, err := store.OpenFile(dir)
	if err != nil {
		return RecoveryResult{}, fmt.Errorf("bench: %w", err)
	}
	defer st.Close()

	mesh := transport.NewMesh(transport.MeshConfig{
		N:          w.N,
		Link:       channel.Reliable{D: channel.FixedDelay(0)},
		Unit:       time.Millisecond,
		Seed:       w.Seed,
		InboxDepth: 1 << 16,
	})
	defer mesh.Close()

	var oracle *fd.Oracle
	start := time.Now()
	clock := func() int64 { return int64(time.Since(start) / time.Millisecond) }
	if w.Algo == AlgoQuiescent {
		correct := make([]bool, w.N)
		for i := range correct {
			correct[i] = true // index 0 recovers, so it is correct
		}
		oracle = fd.NewOracle(fd.OracleConfig{N: w.N, Noise: fd.NoiseExact, Seed: w.Seed}, correct)
	}
	mkProc := func(i int) (urb.Process, error) {
		tags := ident.NewSource(xrand.New(xrand.HashStream(w.Seed, 0x5ec0, uint64(i))))
		switch w.Algo {
		case AlgoMajority:
			return urb.NewMajority(w.N, tags, urb.Config{}), nil
		case AlgoQuiescent:
			return urb.NewQuiescent(oracle.Handle(i, clock), tags, urb.Config{DeltaAcks: true}), nil
		default:
			return nil, fmt.Errorf("bench: unknown algo %q", w.Algo)
		}
	}

	inboxDepth := w.N*(w.Messages+w.PostMessages) + 16
	nodes := make([]*node.Node, w.N)
	inboxes := make([]<-chan node.Delivery, w.N)
	for i := 0; i < w.N; i++ {
		proc, err := mkProc(i)
		if err != nil {
			return RecoveryResult{}, err
		}
		opts := []node.Option{
			node.WithTickEvery(w.TickEvery),
			node.WithSeed(xrand.HashStream(w.Seed, uint64(i))),
			node.WithInboxDepth(inboxDepth),
		}
		if i == 0 {
			opts = append(opts, node.WithStore(st), node.WithCheckpointEvery(w.CheckpointEvery))
		}
		nodes[i] = node.New(proc, mesh.Endpoint(i), opts...)
		inboxes[i] = nodes[i].Deliveries()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.Stop()
			}
		}
	}()
	for _, nd := range nodes {
		if err := nd.Start(ctx); err != nil {
			return RecoveryResult{}, fmt.Errorf("bench: start: %w", err)
		}
	}

	// --- pre-crash batch ---------------------------------------------
	payload := make([]byte, w.Payload)
	for i := range payload {
		payload[i] = byte(i)
	}
	preIDs := make(map[wire.MsgID]bool, w.Messages)
	for i := 0; i < w.Messages; i++ {
		payload[0], payload[1] = byte(i), byte(i>>8)
		id, err := nodes[i%w.N].Broadcast(payload)
		if err != nil {
			return RecoveryResult{}, fmt.Errorf("bench: broadcast %d: %w", i, err)
		}
		preIDs[id] = true
	}
	if err := drainAll(inboxes, w.Messages, w.Timeout); err != nil {
		return RecoveryResult{}, fmt.Errorf("bench: pre-crash phase: %w (%s)", err, w)
	}
	if w.CheckpointEvery < time.Hour {
		// Checkpointed mode measures a crash that lands after a
		// checkpoint; small batches can drain faster than the first
		// cadence tick, so wait for one (it is due: the WAL has grown).
		deadline := time.Now().Add(w.Timeout)
		for nodes[0].StoreStats().Checkpoints == 0 {
			if time.Now().After(deadline) {
				return RecoveryResult{}, fmt.Errorf("bench: no checkpoint before crash (%s)", w)
			}
			time.Sleep(time.Millisecond)
		}
	}

	res := RecoveryResult{Workload: w, Deliveries: uint64(w.N) * uint64(w.Messages)}
	ss := nodes[0].StoreStats()
	if ss.Err != nil {
		return RecoveryResult{}, fmt.Errorf("bench: store: %w", ss.Err)
	}
	res.Checkpoints = ss.Checkpoints
	res.CheckpointBytes = ss.CheckpointBytes
	res.WALAppends = ss.WALAppends
	res.WALBytes = ss.WALBytes
	del := float64(res.Deliveries)
	res.CheckpointBytesPerDelivery = float64(ss.CheckpointBytes) / del
	res.WALBytesPerDelivery = float64(ss.WALBytes) / del

	// --- crash + progress while down ---------------------------------
	nodes[0].Stop()
	postIDs := make(map[wire.MsgID]bool, w.PostMessages)
	for i := 0; i < w.PostMessages; i++ {
		payload[0], payload[1] = byte(i), 0xee
		id, err := nodes[1+i%(w.N-1)].Broadcast(payload)
		if err != nil {
			return RecoveryResult{}, fmt.Errorf("bench: post broadcast %d: %w", i, err)
		}
		postIDs[id] = true
	}
	if w.Algo == AlgoMajority {
		// Survivors can deliver without the durable node (majority); for
		// Quiescent with an all-correct oracle they are blocked until it
		// returns, so the wait happens after recovery instead.
		if err := drainAll(inboxes[1:], w.PostMessages, w.Timeout); err != nil {
			return RecoveryResult{}, fmt.Errorf("bench: while-down phase: %w (%s)", err, w)
		}
	}

	// --- recover ------------------------------------------------------
	proc, err := mkProc(0)
	if err != nil {
		return RecoveryResult{}, err
	}
	recStart := time.Now()
	rec, err := node.Recover(proc, st, mesh.Reopen(0),
		node.WithTickEvery(w.TickEvery),
		node.WithSeed(xrand.HashStream(w.Seed, 0)),
		node.WithInboxDepth(inboxDepth),
		node.WithCheckpointEvery(w.CheckpointEvery),
	)
	if err != nil {
		return RecoveryResult{}, fmt.Errorf("bench: recover: %w", err)
	}
	res.RecoveryMS = float64(time.Since(recStart)) / float64(time.Millisecond)
	res.SnapshotBytesReplayed, res.WALRecordsReplayed = rec.RecoveryStats()
	recInbox := rec.Deliveries()
	if err := rec.Start(ctx); err != nil {
		return RecoveryResult{}, fmt.Errorf("bench: recovered start: %w", err)
	}
	nodes[0] = rec

	// --- catch-up -----------------------------------------------------
	catchStart := time.Now()
	caught := 0
	deadline := time.NewTimer(w.Timeout)
	defer deadline.Stop()
	for caught < w.PostMessages {
		select {
		case d, ok := <-recInbox:
			if !ok {
				return RecoveryResult{}, fmt.Errorf("bench: recovered node stopped mid-catchup (%s)", w)
			}
			if preIDs[d.ID] {
				res.Redelivered++
				continue
			}
			if postIDs[d.ID] {
				caught++
			}
		case <-deadline.C:
			return RecoveryResult{}, fmt.Errorf("bench: catch-up %d/%d before timeout (%s)", caught, w.PostMessages, w)
		}
	}
	res.CatchupMS = float64(time.Since(catchStart)) / float64(time.Millisecond)
	// Keep watching the recovered node's inbox for a settle window after
	// catch-up: a late re-delivery (e.g. on a Task-1 retransmission a
	// tick later) must still trip the zero-re-deliveries gate, not slip
	// out unobserved because the loop above already had what it wanted.
	settle := time.NewTimer(10 * w.TickEvery)
	defer settle.Stop()
settleLoop:
	for {
		select {
		case d, ok := <-recInbox:
			if !ok {
				break settleLoop
			}
			if preIDs[d.ID] {
				res.Redelivered++
			}
		case <-settle.C:
			break settleLoop
		}
	}
	if w.Algo == AlgoQuiescent {
		// The survivors were blocked on the durable node; they complete
		// only now.
		if err := drainAll(inboxes[1:], w.PostMessages, w.Timeout); err != nil {
			return RecoveryResult{}, fmt.Errorf("bench: post-recovery drain: %w (%s)", err, w)
		}
	}
	return res, nil
}

// drainAll waits until every inbox yielded want more deliveries.
func drainAll(inboxes []<-chan node.Delivery, want int, timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for i, ch := range inboxes {
		for k := 0; k < want; k++ {
			select {
			case _, ok := <-ch:
				if !ok {
					return fmt.Errorf("inbox %d closed at %d/%d", i, k, want)
				}
			case <-deadline.C:
				return fmt.Errorf("inbox %d stuck at %d/%d deliveries", i, k, want)
			}
		}
	}
	return nil
}

// RecoveryMatrix returns the standard recovery benchmark cells: the
// majority algorithm at growing pre-crash batch sizes — which grows the
// WAL, the "recovery latency vs WAL length" axis — in both checkpointed
// and WAL-only modes, plus one quiescent cell exercising the
// cluster-blocked-until-recovery regime. quick trims to CI sizes.
func RecoveryMatrix(seed uint64, quick bool) []RecoveryWorkload {
	sizes := []int{8, 32, 128}
	if quick {
		sizes = []int{8, 32}
	}
	var ws []RecoveryWorkload
	for _, msgs := range sizes {
		for _, mode := range []time.Duration{5 * time.Millisecond, time.Hour} {
			ws = append(ws, RecoveryWorkload{
				Algo:            AlgoMajority,
				N:               5,
				Messages:        msgs,
				CheckpointEvery: mode,
				Seed:            seed,
				Timeout:         120 * time.Second,
			})
		}
	}
	ws = append(ws, RecoveryWorkload{
		Algo:            AlgoQuiescent,
		N:               5,
		Messages:        8,
		CheckpointEvery: 20 * time.Millisecond,
		Seed:            seed,
		Timeout:         120 * time.Second,
	})
	return ws
}
