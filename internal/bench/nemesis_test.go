package bench

import (
	"strings"
	"testing"
)

// TestRunNemesisSmoke runs one sim cell and the live cell end to end
// and checks the gate inputs.
func TestRunNemesisSmoke(t *testing.T) {
	for _, sc := range []NemesisScenario{
		{Name: "sim/majority/split", Algo: "majority", Preset: "split", Seed: 2015},
		{Name: "live/quiescent/split", Algo: "quiescent", Preset: "split", Live: true, Seed: 2015},
	} {
		r, err := RunNemesis(sc, true)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !r.Passed {
			t.Fatalf("%s failed the gate:\n%s", sc.Name, r.Report)
		}
		if r.Survivors != nemesisFounders || r.Redelivered != 0 || r.Stalls != 0 {
			t.Fatalf("%s: unexpected audit figures %+v", sc.Name, r)
		}
	}
}

// TestRunNemesisBrokenSelfTest: the failure machinery must fail the
// zero-deadline campaign and attribute every stall to a stage.
func TestRunNemesisBrokenSelfTest(t *testing.T) {
	report, ok, err := RunNemesisBroken(2015)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("broken campaign self-test did not hold:\n%s", report)
	}
	if !strings.Contains(report, `campaign "broken" FAILED`) || !strings.Contains(report, "stalled on") {
		t.Fatalf("report lacks campaign/stall attribution:\n%s", report)
	}
}

// TestNemesisMatrixShape: both stacks cover every preset, exactly one
// live cell, and the unknown-preset error path reports cleanly.
func TestNemesisMatrixShape(t *testing.T) {
	m := NemesisMatrix(2015)
	if len(m) != 9 {
		t.Fatalf("matrix has %d cells, want 9", len(m))
	}
	live := 0
	for _, sc := range m {
		if sc.Live {
			live++
			if sc.Algo != "quiescent" {
				t.Fatalf("live cell must run the heartbeat stack: %+v", sc)
			}
		}
	}
	if live != 1 {
		t.Fatalf("%d live cells, want 1", live)
	}
	if _, err := RunNemesis(NemesisScenario{Preset: "nope"}, true); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := RunNemesis(NemesisScenario{Preset: "split", Algo: "oracle"}, true); err == nil {
		t.Fatal("unknown algo accepted")
	}
}
