package bench

import (
	"testing"

	"anonurb/internal/admit"
	"anonurb/internal/workload"
)

// findScenario pulls one scenario of the quick matrix by name.
func findScenario(t *testing.T, name string) FairnessScenario {
	t.Helper()
	for _, sc := range FairnessMatrix(7, true) {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("scenario %q not in matrix", name)
	return FairnessScenario{}
}

// TestFairnessUniformZeroDamage: on a uniform workload the fair stage
// must be invisible — nothing lost, nobody demoted. This is the
// false-positive bar of the acceptance criteria.
func TestFairnessUniformZeroDamage(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive live-cluster bench")
	}
	c, err := CompareFairness(findScenario(t, "uniform-multi"))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: %+v", c.Baseline)
	t.Logf("fair:     %+v", c.FairRun)
	if !c.ZeroDamage {
		t.Errorf("uniform workload damaged by fair admission: fair=%+v", c.FairRun)
	}
	if c.FairRun.FalseDemotions != 0 {
		t.Errorf("false demotions on uniform workload: %d", c.FairRun.FalseDemotions)
	}
}

// TestFairnessFloodProtectsVictims: under the adversarial flood the fair
// stage must never do worse by the victims than FIFO, and must demote
// only the flooder. (The ≥5× improvement of the acceptance criteria is
// asserted by the checked-in BENCH_fairness.json, not here — CI machines
// are too noisy for a hard ratio gate.)
func TestFairnessFloodProtectsVictims(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive live-cluster bench")
	}
	c, err := CompareFairness(findScenario(t, "flood"))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: %+v", c.Baseline)
	t.Logf("fair:     %+v", c.FairRun)
	t.Logf("victim loss improvement: %.1fx", c.VictimLossImprovement)
	if c.FairRun.VictimLost > c.Baseline.VictimLost {
		t.Errorf("fair mode lost more victim deliveries (%d) than FIFO baseline (%d)",
			c.FairRun.VictimLost, c.Baseline.VictimLost)
	}
	if c.FairRun.FalseDemotions != 0 {
		t.Errorf("false demotions under flood: %d", c.FairRun.FalseDemotions)
	}
}

// TestRunFairnessValidates covers the argument checks.
func TestRunFairnessValidates(t *testing.T) {
	if _, err := RunFairness(FairnessScenario{N: 1}, true); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := RunFairness(FairnessScenario{N: 4}, true); err == nil {
		t.Error("nil workload accepted")
	}
}

// TestFairnessMatrixShape sanity-checks the matrix contents.
func TestFairnessMatrixShape(t *testing.T) {
	for _, quick := range []bool{false, true} {
		m := FairnessMatrix(3, quick)
		if len(m) != 5 {
			t.Fatalf("quick=%v: got %d scenarios, want 5", quick, len(m))
		}
		for _, sc := range m {
			if sc.Workload == nil || sc.N < 2 || sc.Window <= 0 {
				t.Errorf("quick=%v: malformed scenario %+v", quick, sc)
			}
		}
		flood := m[len(m)-1]
		if _, ok := flood.Workload.(workload.Flood); !ok {
			t.Errorf("quick=%v: last scenario is not the flood", quick)
		}
		if len(flood.HotProcs) == 0 {
			t.Errorf("quick=%v: flood has no hot procs", quick)
		}
	}
}

// TestFairnessBaselineBudget: the FIFO baseline must carry the fair
// stage's total lane budget, so buffering is held equal across modes.
func TestFairnessBaselineBudget(t *testing.T) {
	cfg := admit.Config{HighDepth: 100, LowDepth: 40}.WithDefaults()
	if cfg.HighDepth != 100 || cfg.LowDepth != 40 {
		t.Fatalf("WithDefaults rewrote explicit depths: %+v", cfg)
	}
	if d := (admit.Config{}).WithDefaults(); d.HighDepth <= 0 || d.LowDepth <= 0 ||
		d.Rate <= 0 || d.Burst <= 0 || d.Penalty <= 0 || d.Flows <= 0 {
		t.Fatalf("WithDefaults left zero fields: %+v", d)
	}
}
