package bench

import "testing"

// TestTracedRunMatchesWireTraffic: the observability invariant at CI
// scale — a traced run records lifecycle events but emits exactly the
// same wire traffic as an untraced one (tracers observe steps, they
// never produce them).
func TestTracedRunMatchesWireTraffic(t *testing.T) {
	c, err := CompareObsOverhead(quickWorkload(AlgoMajority, NetMesh), 1)
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if c.Off.TraceEvents != 0 {
		t.Fatalf("untraced run recorded %d events", c.Off.TraceEvents)
	}
	if c.Events == 0 {
		t.Fatal("traced run recorded zero lifecycle events — the tracer is not wired")
	}
	if c.FramesRatio != 1.0 {
		t.Fatalf("frames ratio %.4f != 1.0: tracing changed the wire traffic (on=%.2f off=%.2f frames/delivery)",
			c.FramesRatio, c.On.SteadyFramesPerDelivery, c.Off.SteadyFramesPerDelivery)
	}
	// Lifecycle events are per message, never per frame: a traced run
	// must record far fewer events than it sends wire messages.
	if c.Events > c.On.SentMsgs {
		t.Fatalf("traced run recorded %d events for %d sent wire messages — emits are leaking per-frame",
			c.Events, c.On.SentMsgs)
	}
	if c.On.Deliveries != c.Off.Deliveries {
		t.Fatalf("deliveries differ: on=%d off=%d", c.On.Deliveries, c.Off.Deliveries)
	}
}

// TestObsMatrixShapes: the sweep the -obs mode runs is Majority-only
// (its steady window gives the comparison a fixed wire volume) with
// tracing unset — CompareObsOverhead owns the on/off toggling.
func TestObsMatrixShapes(t *testing.T) {
	for _, quick := range []bool{false, true} {
		ws := ObsMatrix(2015, quick)
		if len(ws) == 0 {
			t.Fatalf("quick=%v: empty matrix", quick)
		}
		for _, w := range ws {
			if w.Algo != AlgoMajority {
				t.Fatalf("quick=%v: %s is not a Majority workload", quick, w)
			}
			if w.Trace {
				t.Fatalf("quick=%v: %s pre-sets Trace", quick, w)
			}
		}
	}
}
