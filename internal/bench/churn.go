package bench

// Membership-churn benchmark (DESIGN.md §13): measure what a join
// actually costs a running cluster — how long a fresh process takes to
// pull, verify and adopt a donor snapshot (join latency as a function
// of snapshot size), how many bytes of SNAPCHUNK catch-up traffic the
// donors put on the wire, and the hard gate the protocol's uniformity
// argument rests on: the joiner re-delivers nothing it adopted, anywhere,
// ever. Runs on real nodes over the in-process mesh (the same plane the
// batching benchmark measures), with the heartbeat detector stack so
// membership change needs no oracle rewiring.

import (
	"fmt"
	"sync"
	"time"

	"anonurb/internal/channel"
	"anonurb/internal/ident"
	"anonurb/internal/liverun"
	"anonurb/internal/store"
	"anonurb/internal/urb"
)

// ChurnScenario describes one churn measurement.
type ChurnScenario struct {
	Name string `json:"name"`
	// Founders is the pre-join cluster size.
	Founders int `json:"founders"`
	// History is how many broadcasts are delivered before the join:
	// the snapshot-size driver.
	History int `json:"history"`
	// PostJoin is how many broadcasts cross the join boundary after it
	// (half from the joiner, half toward it).
	PostJoin int `json:"post_join"`
	// Loss is the per-frame Bernoulli loss probability on every link.
	Loss float64 `json:"loss"`
	// DeltaAcks selects the ACK encoding under test.
	DeltaAcks bool   `json:"delta_acks"`
	Seed      uint64 `json:"seed"`
}

// ChurnResult is one scenario's measurement.
type ChurnResult struct {
	Scenario ChurnScenario `json:"scenario"`
	// SnapshotBytes is the donor container the joiner transferred and
	// verified (node.JoinedBytes): the protocol's minimum catch-up cost.
	SnapshotBytes int `json:"snapshot_bytes"`
	// CatchupWireBytes is the SNAPCHUNK byte total the donors put on
	// the wire — re-serves under loss included, so the ratio against
	// SnapshotBytes is the transfer's loss overhead.
	CatchupWireBytes uint64 `json:"catchup_wire_bytes"`
	// JoinLatencyMS is the wall time of node.Join: solicit, transfer,
	// verify, restore, adopt.
	JoinLatencyMS float64 `json:"join_latency_ms"`
	// ConvergeMS is the wall time from the joiner starting until every
	// process (joiner included) has delivered all post-join traffic.
	ConvergeMS float64 `json:"converge_ms"`
	// Deliveries is the run-wide delivery count across all processes.
	Deliveries uint64 `json:"deliveries"`
	// Redelivered counts duplicate deliveries of any body at any
	// process — the hard gate, zero or the run is broken.
	Redelivered uint64 `json:"redelivered"`
}

// churnLedger tracks per-process delivery multiplicity.
type churnLedger struct {
	mu    sync.Mutex
	seen  map[int]map[string]int
	total uint64
}

func newChurnLedger() *churnLedger { return &churnLedger{seen: make(map[int]map[string]int)} }

func (l *churnLedger) onDeliver(d liverun.Delivery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.seen[d.Proc]
	if m == nil {
		m = make(map[string]int)
		l.seen[d.Proc] = m
	}
	m[d.ID.Body]++
	l.total++
}

// redelivered counts duplicate deliveries across every process.
func (l *churnLedger) redelivered() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var dup uint64
	for _, m := range l.seen {
		for _, c := range m {
			if c > 1 {
				dup += uint64(c - 1)
			}
		}
	}
	return dup
}

func (l *churnLedger) deliveredAt(proc int, body string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen[proc][body] > 0
}

func (l *churnLedger) deliveredEverywhere(body string, procs int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for p := 0; p < procs; p++ {
		if l.seen[p][body] == 0 {
			return false
		}
	}
	return true
}

// RunChurn executes one churn scenario and reports its measurement.
func RunChurn(sc ChurnScenario) (ChurnResult, error) {
	res := ChurnResult{Scenario: sc}
	ledger := newChurnLedger()
	cfg := liverun.Config{
		N: sc.Founders,
		Factory: func(index int, tags *ident.Source, clock func() int64) urb.Process {
			return urb.NewHeartbeatHost(tags, 200, 1, clock, urb.Config{DeltaAcks: sc.DeltaAcks})
		},
		Link:      channel.Bernoulli{P: sc.Loss, D: channel.UniformDelay{Min: 1, Max: 3}},
		Unit:      200 * time.Microsecond,
		TickEvery: 5,
		Seed:      sc.Seed,
		OnDeliver: ledger.onDeliver,
	}
	c := liverun.Start(cfg)
	defer c.Stop()
	// Detector warmup: the heartbeat views must include every founder
	// before the first broadcast can deliver.
	time.Sleep(30 * time.Millisecond)

	waitAll := func(body string, procs int, limit time.Duration) error {
		deadline := time.Now().Add(limit)
		for !ledger.deliveredEverywhere(body, procs) {
			if time.Now().After(deadline) {
				return fmt.Errorf("%q not delivered at all %d procs within %v", body, procs, limit)
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}

	// Pre-join history: the snapshot-size driver. Waiting on the last
	// body keeps the harness simple; the retirement machinery keeps the
	// rest flowing behind it.
	for i := 0; i < sc.History; i++ {
		body := fmt.Sprintf("h%d", i)
		if !c.Broadcast(i%sc.Founders, []byte(body)) {
			return res, fmt.Errorf("pre-join broadcast %d failed", i)
		}
		if i%8 == 7 || i == sc.History-1 {
			if err := waitAll(body, sc.Founders, 20*time.Second); err != nil {
				return res, fmt.Errorf("pre-join: %w", err)
			}
		}
	}

	// The join: real SNAPREQ/SNAPCHUNK transfer from whichever founder
	// answers. Latency is the whole bootstrap — solicit to Adopt.
	joinStart := time.Now()
	joiner, err := c.Join(store.NewMem())
	if err != nil {
		return res, fmt.Errorf("join: %w", err)
	}
	res.JoinLatencyMS = float64(time.Since(joinStart).Microseconds()) / 1000
	res.SnapshotBytes = c.Node(joiner).JoinedBytes()

	// Post-join traffic in both directions; convergence clock runs until
	// everything is delivered everywhere, joiner included.
	convergeStart := time.Now()
	n := c.N()
	for i := 0; i < sc.PostJoin; i++ {
		proc := i % n
		if i%2 == 0 {
			proc = joiner // half the traffic originates at the joiner
		}
		body := fmt.Sprintf("p%d", i)
		if !c.Broadcast(proc, []byte(body)) {
			return res, fmt.Errorf("post-join broadcast %d failed", i)
		}
	}
	for i := 0; i < sc.PostJoin; i++ {
		if err := waitAll(fmt.Sprintf("p%d", i), n, 20*time.Second); err != nil {
			return res, fmt.Errorf("post-join: %w", err)
		}
	}
	res.ConvergeMS = float64(time.Since(convergeStart).Microseconds()) / 1000

	// The hard gate inputs: adopted history must never surface as a
	// delivery at the joiner, and nothing is delivered twice anywhere.
	for i := 0; i < sc.History; i++ {
		if ledger.deliveredAt(joiner, fmt.Sprintf("h%d", i)) {
			res.Redelivered++
		}
	}
	res.Redelivered += ledger.redelivered()
	ledger.mu.Lock()
	res.Deliveries = ledger.total
	ledger.mu.Unlock()
	for p := 0; p < n; p++ {
		_, _, _, snap, _ := c.Node(p).ByteStats()
		res.CatchupWireBytes += snap
	}
	return res, nil
}

// ChurnMatrix is the scenario sweep: snapshot size (via pre-join
// history) under both ACK encodings, lossy links throughout.
func ChurnMatrix(seed uint64, quick bool) []ChurnScenario {
	histories := []int{8, 32, 128}
	if quick {
		histories = []int{4, 16}
	}
	var out []ChurnScenario
	for _, delta := range []bool{false, true} {
		for i, h := range histories {
			enc := "fullset"
			if delta {
				enc = "delta"
			}
			out = append(out, ChurnScenario{
				Name:      fmt.Sprintf("%s/h%d", enc, h),
				Founders:  3,
				History:   h,
				PostJoin:  6,
				Loss:      0.05,
				Seed:      seed + uint64(i)*7919 + uint64(len(out))*104729,
				DeltaAcks: delta,
			})
		}
	}
	return out
}
