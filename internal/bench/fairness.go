package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"anonurb/internal/admit"
	"anonurb/internal/channel"
	"anonurb/internal/ident"
	"anonurb/internal/node"
	"anonurb/internal/replay"
	"anonurb/internal/transport"
	"anonurb/internal/urb"
	"anonurb/internal/workload"
	"anonurb/internal/xrand"
)

// FairnessScenario describes one fairness measurement: a (possibly
// skewed) broadcast schedule driven against a live Majority cluster
// twice — once behind a FIFO admission stage (the baseline) and once
// behind the fair one — with deliveries counted per broadcaster flow
// against a hard deadline.
//
// The damage metric is deadline-bounded: a delivery that has not
// happened by Window is lost. That is the application's view of
// overload — a saturated inbox loses deliveries both by shedding frames
// and by queueing them behind a flood (head-of-line blocking), and a
// deadline charges both. The paper's eventual-delivery guarantees are
// untouched either way (admission is just another fair-lossy link); what
// the bench measures is who pays for the overload within a window.
type FairnessScenario struct {
	Name string `json:"name"`
	// N is the cluster size.
	N int `json:"n"`
	// Workload generates the schedule (virtual times in Unit ticks).
	Workload workload.Broadcasts `json:"-"`
	// WorkloadDesc mirrors Workload.String() into the JSON artifact.
	WorkloadDesc string `json:"workload"`
	// Unit converts the schedule's virtual time to wall clock.
	Unit time.Duration `json:"unit_ns"`
	// TickEvery is the Task-1 period.
	TickEvery time.Duration `json:"tick_every_ns"`
	// Admission parameterises the fair stage; the baseline runs the same
	// stage in FIFO mode with the same total lane budget.
	Admission admit.Config `json:"admission"`
	// Window is the delivery deadline, measured from when driving
	// starts.
	Window time.Duration `json:"window_ns"`
	// HotProcs are the processes the scenario itself makes heavy (the
	// flood's flooder, a Zipf head). Demoting one of their flows is a
	// true positive; demoting anyone else's is a false demotion.
	HotProcs []int `json:"hot_procs"`
	// Seed drives the schedule, tag streams and tick phases.
	Seed uint64 `json:"seed"`
}

// FairnessResult is one run (one admission mode) of a scenario.
type FairnessResult struct {
	Fair bool `json:"fair"`
	// Expected/Delivered/Lost split deliveries between victim flows
	// (procs outside HotProcs) and hot flows. Lost is measured at the
	// deadline: expected minus delivered.
	VictimExpected  uint64 `json:"victim_expected"`
	VictimDelivered uint64 `json:"victim_delivered"`
	VictimLost      uint64 `json:"victim_lost"`
	HotExpected     uint64 `json:"hot_expected"`
	HotDelivered    uint64 `json:"hot_delivered"`
	HotLost         uint64 `json:"hot_lost"`
	// Demotions counts admitted→demoted flow transitions cluster-wide;
	// DemotedFlows is the distinct flows ever demoted anywhere;
	// FalseDemotions is how many of those belong to no hot proc.
	Demotions      uint64 `json:"demotions"`
	DemotedFlows   int    `json:"demoted_flows"`
	FalseDemotions int    `json:"false_demotions"`
	// HighDrops/LowDrops are cluster-wide lane sheds (high = admitted
	// traffic lost, low = intended shedding); SplitFrames counts
	// mixed-verdict frames split per-flow; InboxOverflows is the nodes'
	// total overflow view (lanes + inner transport).
	HighDrops      uint64 `json:"high_drops"`
	LowDrops       uint64 `json:"low_drops"`
	SplitFrames    uint64 `json:"split_frames"`
	InboxOverflows uint64 `json:"inbox_overflows"`
	// Completed reports whether every expected delivery (hot included)
	// happened before the deadline; ElapsedMS is the run's wall time.
	Completed bool    `json:"completed"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// FairnessComparison pairs the FIFO baseline and the fair run of one
// scenario.
type FairnessComparison struct {
	Scenario FairnessScenario `json:"scenario"`
	Baseline FairnessResult   `json:"baseline"`
	FairRun  FairnessResult   `json:"fair"`
	// VictimLossImprovement is baseline victim deliveries lost over fair
	// victim deliveries lost, with the denominator clamped to 1 — when
	// the fair run loses nothing the ratio is a lower bound. This is the
	// damage metric of the acceptance criterion (≥5 on the flood).
	VictimLossImprovement float64 `json:"victim_loss_improvement"`
	// ZeroDamage reports the uniform-scenario bar: the fair run lost no
	// deliveries at all (victim or hot) and demoted nobody.
	ZeroDamage bool `json:"zero_damage"`
}

// fairnessFlow derives process i's pinned flow key for a scenario.
func fairnessFlow(seed uint64, i int) uint64 {
	f := xrand.HashStream(seed, 0xFA17, uint64(i))
	if f == 0 {
		f = 1
	}
	return f
}

// RunFairness executes one scenario under one admission mode. The
// baseline (fair=false) runs the identical pipeline with detection off
// and the same total lane budget, so the only varying factor is the
// detector's verdict.
func RunFairness(sc FairnessScenario, fair bool) (FairnessResult, error) {
	if sc.N < 2 {
		return FairnessResult{}, fmt.Errorf("bench: fairness needs N >= 2")
	}
	if sc.Workload == nil {
		return FairnessResult{}, fmt.Errorf("bench: fairness needs a workload")
	}
	if sc.Unit <= 0 {
		sc.Unit = time.Millisecond
	}
	if sc.TickEvery <= 0 {
		sc.TickEvery = 5 * time.Millisecond
	}
	if sc.Window <= 0 {
		sc.Window = 2 * time.Second
	}
	cfg := sc.Admission.WithDefaults()
	if !fair {
		// Same stage, same total buffering, detection off: the exact
		// measurement baseline.
		cfg.FIFO = true
		cfg.HighDepth = cfg.HighDepth + cfg.LowDepth
		cfg.LowDepth = 1
	}

	// The schedule is generated once per run from a labeled stream, so
	// both modes of a scenario drive byte-identical broadcast sequences.
	sched := sc.Workload.Generate(sc.N, xrand.SplitLabeled(sc.Seed, "fairness-workload"))
	perProc := make([]*replay.Schedule, sc.N)
	msgsByProc := make([]uint64, sc.N)
	for i := range perProc {
		perProc[i] = &replay.Schedule{N: sc.N}
	}
	for _, b := range sched {
		p := b.Proc % sc.N
		msgsByProc[p]++
		perProc[p].Entries = append(perProc[p].Entries, replay.Entry{
			At: b.At, Proc: p, Size: len(b.Body), Digest: replay.BodyDigest(b.Body),
		})
	}
	total := uint64(len(sched)) * uint64(sc.N)

	hot := make(map[int]bool, len(sc.HotProcs))
	for _, p := range sc.HotProcs {
		hot[p%sc.N] = true
	}
	flows := make([]uint64, sc.N)
	flowProc := make(map[uint64]int, sc.N)
	for i := range flows {
		flows[i] = fairnessFlow(sc.Seed, i)
		flowProc[flows[i]] = i
	}

	// Reliable zero-delay links and a deep inner inbox: overload must
	// land on the admission stage's lanes (where it is observable and,
	// in fair mode, selective), not on a second shedding point below it.
	mesh := transport.NewMesh(transport.MeshConfig{
		N:          sc.N,
		Link:       channel.Reliable{D: channel.FixedDelay(0)},
		Unit:       time.Millisecond,
		Seed:       sc.Seed,
		InboxDepth: 1 << 15,
	})
	defer mesh.Close()

	nodes := make([]*node.Node, sc.N)
	tagRoot := xrand.SplitLabeled(sc.Seed, "fairness-tags")
	for i := 0; i < sc.N; i++ {
		proc := urb.NewMajority(sc.N, ident.NewFlowSource(flows[i], tagRoot.Split()), urb.Config{})
		nodes[i] = node.New(proc, mesh.Endpoint(i),
			node.WithTickEvery(sc.TickEvery),
			node.WithSeed(xrand.HashStream(sc.Seed, uint64(i))),
			node.WithBatching(true),
			node.WithAdmission(cfg),
		)
	}
	stopAll := func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}
	defer stopAll()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, nd := range nodes {
		if err := nd.Start(ctx); err != nil {
			return FairnessResult{}, fmt.Errorf("bench: fairness start: %w", err)
		}
	}

	// Drive each process's slice of the schedule from its own goroutine:
	// a saturated node then stalls only its own injection (as a real
	// overloaded producer would), never the victims'.
	start := time.Now()
	deadline := start.Add(sc.Window)
	driveCtx, cancelDrive := context.WithDeadline(ctx, deadline)
	defer cancelDrive()
	var drivers sync.WaitGroup
	for i := 0; i < sc.N; i++ {
		if len(perProc[i].Entries) == 0 {
			continue
		}
		drivers.Add(1)
		go func(i int) {
			defer drivers.Done()
			// Broadcast errors mean the run is tearing down; drops are
			// accounted as lost deliveries by the deadline arithmetic.
			_ = replay.Drive(driveCtx, perProc[i], sc.N, sc.Unit, 1, func(proc int, body []byte) error {
				_, err := nodes[proc].Broadcast(body)
				return err
			})
		}(i)
	}

	// Wait for full delivery or the deadline, whichever first.
	delivered := func() uint64 {
		var sum uint64
		for _, nd := range nodes {
			for _, c := range nd.FlowDeliveries() {
				sum += c
			}
		}
		return sum
	}
	completed := false
	for time.Now().Before(deadline) {
		if delivered() >= total {
			completed = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(start)
	cancelDrive()
	drivers.Wait()

	res := FairnessResult{Fair: fair, Completed: completed,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond)}
	demoted := make(map[uint64]bool)
	for _, nd := range nodes {
		for f, c := range nd.FlowDeliveries() {
			p, ok := flowProc[f]
			if !ok {
				continue
			}
			if hot[p] {
				res.HotDelivered += c
			} else {
				res.VictimDelivered += c
			}
		}
		if st, ok := nd.AdmitStats(); ok {
			res.Demotions += st.Demotions
			res.HighDrops += st.HighDrops
			res.LowDrops += st.LowDrops
			res.SplitFrames += st.SplitFrames
			for _, fs := range st.Flows {
				if fs.Demoted {
					demoted[fs.Flow] = true
				}
			}
		}
		if ov, ok := nd.InboxOverflows(); ok {
			res.InboxOverflows += ov
		}
	}
	res.DemotedFlows = len(demoted)
	for f := range demoted {
		p, ok := flowProc[f]
		if !ok || !hot[p] {
			res.FalseDemotions++
		}
	}
	for p := 0; p < sc.N; p++ {
		exp := msgsByProc[p] * uint64(sc.N)
		if hot[p] {
			res.HotExpected += exp
		} else {
			res.VictimExpected += exp
		}
	}
	res.VictimLost = res.VictimExpected - min(res.VictimExpected, res.VictimDelivered)
	res.HotLost = res.HotExpected - min(res.HotExpected, res.HotDelivered)
	return res, nil
}

// CompareFairness runs a scenario in both admission modes and derives
// the damage metrics.
func CompareFairness(sc FairnessScenario) (FairnessComparison, error) {
	if sc.Workload != nil {
		sc.WorkloadDesc = sc.Workload.String()
	}
	base, err := RunFairness(sc, false)
	if err != nil {
		return FairnessComparison{}, err
	}
	fair, err := RunFairness(sc, true)
	if err != nil {
		return FairnessComparison{}, err
	}
	c := FairnessComparison{Scenario: sc, Baseline: base, FairRun: fair}
	c.VictimLossImprovement = float64(base.VictimLost) / float64(max(fair.VictimLost, 1))
	c.ZeroDamage = fair.VictimLost == 0 && fair.HotLost == 0 && fair.Demotions == 0
	return c, nil
}

// FairnessMatrix returns the standard fairness scenarios: two uniform
// controls (no flow may be demoted, nothing may be lost), a Zipf-skewed
// schedule, a burst-train schedule, and the adversarial flood — the
// acceptance cell, where the baseline's victim losses must exceed the
// fair run's by ≥5×. quick trims sizes and windows to CI scale.
func FairnessMatrix(seed uint64, quick bool) []FairnessScenario {
	n := 8
	window := 2500 * time.Millisecond
	floodCount := 300
	floodPayload := 4 << 10
	if quick {
		n = 6
		window = 1500 * time.Millisecond
		floodCount = 200
	}
	// Rate sits an order of magnitude above the heaviest legitimate flow
	// in the matrix (a Zipf head or multi-train burst owner peaks near
	// 5-12 MB/s once Majority's retransmission sets are full) and two
	// orders below the flood (~800 MB/s), so skew alone never demotes
	// while the flood trips within its first tick. Burst absorbs tens of
	// milliseconds of clumped legitimate arrivals (scheduler stalls
	// charge several ticks at once); the flood exceeds it in one frame
	// batch regardless.
	admission := admit.Config{
		Rate:      32 << 20,
		Burst:     1 << 20,
		Penalty:   300 * time.Millisecond,
		HighDepth: 192,
		LowDepth:  64,
		Flows:     256,
	}
	uniformWindow := window
	return []FairnessScenario{
		{
			Name: "uniform-multi", N: n,
			Workload:  workload.MultiWriter{Writers: n, PerWriter: 3, Start: 1, Interval: 12},
			Unit:      time.Millisecond,
			TickEvery: 5 * time.Millisecond,
			Admission: admission,
			Window:    uniformWindow,
			Seed:      seed,
		},
		{
			Name: "uniform-poisson", N: n,
			Workload:  workload.PoissonWriters{Count: 3 * n, MeanGap: 6, Start: 1, BodyStamp: "p"},
			Unit:      time.Millisecond,
			TickEvery: 5 * time.Millisecond,
			Admission: admission,
			Window:    uniformWindow,
			Seed:      seed + 1,
		},
		{
			Name: "zipf", N: n,
			Workload:  workload.ZipfWriters{Count: 5 * n, S: 1.2, MeanGap: 4, Payload: 96},
			Unit:      time.Millisecond,
			TickEvery: 5 * time.Millisecond,
			Admission: admission,
			Window:    window,
			// The Zipf head lands on rank 0 by construction; its flow may
			// legitimately trip the detector under a harsh Rate, so rank 0
			// is classified hot rather than victim.
			HotProcs: []int{0},
			Seed:     seed + 2,
		},
		{
			Name: "burst", N: n,
			Workload: workload.BurstTrains{Trains: 5, PerTrain: 8, Spacing: 1, Gap: 60,
				Payload: 128},
			Unit:      time.Millisecond,
			TickEvery: 5 * time.Millisecond,
			Admission: admission,
			Window:    window,
			Seed:      seed + 3,
		},
		{
			Name: "flood", N: n,
			Workload: workload.Flood{Flooder: 0, Count: floodCount, Spacing: 2,
				Payload: floodPayload, VictimMsgs: 4, VictimSize: 32},
			Unit:      time.Millisecond,
			TickEvery: 5 * time.Millisecond,
			Admission: admission,
			Window:    window,
			HotProcs:  []int{0},
			Seed:      seed + 4,
		},
	}
}
