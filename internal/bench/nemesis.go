package bench

// Nemesis benchmark (DESIGN.md §15): run the staged fault campaigns —
// split/heal partitions, asymmetric cuts, crash-recover storms with
// torn WALs, churn mid-partition — against both algorithm stacks and
// gate hard on the recovery properties the paper's model promises:
// after the last fault lifts every surviving process reaches uniform
// agreement within the heal deadline, nothing is ever delivered twice,
// and no join is left dangling. The "quiescent" rows run the heartbeat
// host: campaign faults are merged after the scenario is built, so the
// fd.Oracle behind bare AlgoQuiescent would contradict the schedule it
// never saw, while the heartbeat detector observes whatever actually
// happens on the wire (nemesis.RunSim documents the same restriction).

import (
	"fmt"
	"time"

	"anonurb/internal/channel"
	"anonurb/internal/harness"
	"anonurb/internal/ident"
	"anonurb/internal/liverun"
	"anonurb/internal/nemesis"
	"anonurb/internal/urb"
	"anonurb/internal/workload"
)

// NemesisScenario is one campaign cell of the matrix.
type NemesisScenario struct {
	Name string `json:"name"`
	// Algo is "majority" or "quiescent" (the heartbeat-detector stack;
	// see the package comment for why the oracle stack cannot run here).
	Algo string `json:"algo"`
	// Preset is the nemesis campaign preset name.
	Preset string `json:"preset"`
	// Live selects the goroutine cluster over the virtual-time simulator.
	Live bool   `json:"live"`
	Seed uint64 `json:"seed"`
}

// NemesisResult is one cell's audited outcome.
type NemesisResult struct {
	Scenario NemesisScenario `json:"scenario"`
	// Passed is the hard gate: agreement after heal, zero re-deliveries,
	// no pending joins, heal latency within the campaign deadline.
	Passed bool `json:"passed"`
	// Agreement reports whether every survivor delivered the obliged set.
	Agreement bool `json:"agreement"`
	// HealLatencyUnits is how long after the last fault lifted the
	// cluster took to converge (-1: never within the deadline).
	HealLatencyUnits int64 `json:"heal_latency_units"`
	// DeadlineUnits is the campaign's heal deadline.
	DeadlineUnits int64 `json:"deadline_units"`
	// Redelivered counts duplicate deliveries anywhere in the run.
	Redelivered int `json:"redelivered"`
	// Survivors is how many processes were held to the agreement bar.
	Survivors int `json:"survivors"`
	// Stalls counts (process, message) pairs still missing at the
	// deadline; Report carries their full stage-attributed explanations.
	Stalls int `json:"stalls"`
	// Report is the failure report (empty when the gate passed).
	Report string `json:"report,omitempty"`
}

// nemesisFounders is the cluster size every campaign cell runs at.
const nemesisFounders = 5

// nemesisBase builds the simulator substrate for one cell: founders on
// a fair lossy mesh, every founder broadcasting before and during the
// fault windows. The heartbeat trust timeout outlives the longest
// preset partition window (DESIGN.md §15).
func nemesisBase(algo harness.Algo, seed uint64, quick bool) harness.Scenario {
	perWriter := 3
	if quick {
		perWriter = 2
	}
	return harness.Scenario{
		Name: "nemesis-bench",
		N:    nemesisFounders,
		Algo: algo,
		Link: channel.Bernoulli{P: 0.1, D: channel.UniformDelay{Min: 1, Max: 5}},
		Workload: workload.MultiWriter{
			Writers: nemesisFounders, PerWriter: perWriter, Start: 50, Interval: 100,
		},
		Seed:             seed,
		TickEvery:        10,
		HeartbeatTimeout: 800,
	}
}

// RunNemesis executes one campaign cell.
func RunNemesis(sc NemesisScenario, quick bool) (NemesisResult, error) {
	res := NemesisResult{Scenario: sc}
	c, ok := nemesis.Preset(sc.Preset, nemesisFounders)
	if !ok {
		return res, fmt.Errorf("unknown campaign preset %q", sc.Preset)
	}
	var audit nemesis.Audit
	if sc.Live {
		a, err := runNemesisLive(sc, c)
		if err != nil {
			return res, err
		}
		audit = a
	} else {
		var algo harness.Algo
		switch sc.Algo {
		case "majority":
			algo = harness.AlgoMajority
		case "quiescent":
			algo = harness.AlgoHeartbeat
		default:
			return res, fmt.Errorf("unknown algo %q", sc.Algo)
		}
		cfg, _ := nemesisBase(algo, sc.Seed, quick).Build()
		r, err := nemesis.RunSim(cfg, c)
		if err != nil {
			return res, err
		}
		audit = r.Audit
	}
	res.Passed = audit.OK()
	res.Agreement = audit.Agreement
	res.HealLatencyUnits = audit.HealLatency
	res.DeadlineUnits = audit.Deadline
	res.Redelivered = audit.Redelivered
	res.Survivors = audit.Survivors
	res.Stalls = len(audit.Stalls)
	if !res.Passed {
		res.Report = audit.Report()
	}
	return res, nil
}

// runNemesisLive runs one campaign against real goroutine nodes. Only
// the heartbeat stack applies: a live cluster has no oracle at all.
func runNemesisLive(sc NemesisScenario, c nemesis.Campaign) (nemesis.Audit, error) {
	if sc.Algo != "quiescent" {
		return nemesis.Audit{}, fmt.Errorf("live campaigns run the heartbeat stack only, not %q", sc.Algo)
	}
	cfg := liverun.Config{
		N: nemesisFounders,
		Factory: func(index int, tags *ident.Source, clock func() int64) urb.Process {
			return urb.NewHeartbeatHost(tags, 800, 1, clock, urb.Config{})
		},
		Link:      channel.Bernoulli{P: 0.05, D: channel.UniformDelay{Min: 1, Max: 3}},
		Unit:      200 * time.Microsecond,
		TickEvery: 5,
		Seed:      sc.Seed,
	}
	var bs []nemesis.LiveBroadcast
	for p := 0; p < nemesisFounders; p++ {
		bs = append(bs,
			nemesis.LiveBroadcast{At: 40 + int64(p), Proc: p,
				Body: []byte(fmt.Sprintf("pre-%d", p))},
			nemesis.LiveBroadcast{At: 200 + int64(p), Proc: p,
				Body: []byte(fmt.Sprintf("mid-%d", p))})
	}
	r, err := nemesis.RunLive(nemesis.LiveRun{Config: cfg, Campaign: c, Broadcasts: bs})
	if err != nil {
		return nemesis.Audit{}, err
	}
	return r.Audit, nil
}

// RunNemesisBroken runs the deliberately broken campaign (heal
// deadline zero) and reports whether the failure machinery worked: the
// audit must fail and the report must attribute each stalled message
// to the campaign stage it was born under. This is the benchmark's
// self-test — a diagnostics pipeline that cannot name the failing
// stage would make every red cell above undebuggable.
func RunNemesisBroken(seed uint64) (report string, ok bool, err error) {
	c, _ := nemesis.Preset("broken", nemesisFounders)
	cfg, _ := nemesisBase(harness.AlgoMajority, seed, true).Build()
	r, e := nemesis.RunSim(cfg, c)
	if e != nil {
		return "", false, e
	}
	report = r.Audit.Report()
	ok = !r.Audit.OK() && len(r.Audit.Stalls) > 0
	for _, s := range r.Audit.Stalls {
		if s.Stage == "" {
			ok = false
		}
	}
	return report, ok, nil
}

// NemesisMatrix is the campaign sweep: every preset under both
// algorithm stacks in the simulator, plus one live-cluster cell
// proving the faults hold up against real goroutines and wall clocks.
func NemesisMatrix(seed uint64) []NemesisScenario {
	var out []NemesisScenario
	for _, algo := range []string{"majority", "quiescent"} {
		for i, preset := range []string{"split", "asym", "crashstorm", "churnsplit"} {
			out = append(out, NemesisScenario{
				Name:   fmt.Sprintf("sim/%s/%s", algo, preset),
				Algo:   algo,
				Preset: preset,
				Seed:   seed + uint64(i)*7919,
			})
		}
	}
	out = append(out, NemesisScenario{
		Name:   "live/quiescent/split",
		Algo:   "quiescent",
		Preset: "split",
		Live:   true,
		Seed:   seed + 104729,
	})
	return out
}
