package bench

import "fmt"

// This file is the observability overhead benchmark (DESIGN.md §14): it
// measures what per-message lifecycle tracing costs on the frames path
// by running the same workload with tracing off (the production
// default) and on, and comparing the steady-state cost per delivery.
//
// The interesting gates:
//
//   - Frames per delivery must not change at all: tracing observes
//     steps, it never adds, reorders or retimes wire traffic.
//   - Throughput (steady-window wall time) must stay within a small
//     tolerance: the emit sites are a nil-guarded pointer test when off
//     and a mutex-guarded ring write when on.
//
// Wall-clock noise is tamed the standard way: each configuration runs
// `repeats` times and the comparison uses the fastest run of each —
// minimum-of-repeats estimates the noise floor, which is the quantity
// the overhead actually shifts.

// ObsComparison is one workload measured tracer-off vs tracer-on.
type ObsComparison struct {
	Name string `json:"name"`
	// Off and On are the fastest of the repeats for each configuration.
	Off Result `json:"off"`
	On  Result `json:"on"`
	// FramesRatio is On/Off steady frames per delivery (expect 1.0:
	// tracing never touches the wire).
	FramesRatio float64 `json:"frames_ratio"`
	// ElapsedRatio is On/Off steady-window duration at equal message
	// volume — the frames-path throughput overhead of tracing.
	ElapsedRatio float64 `json:"elapsed_ratio"`
	// Events is how many lifecycle events the traced run recorded
	// (a zero here means the comparison measured nothing).
	Events uint64 `json:"events"`
}

// CompareObsOverhead measures w tracer-off vs tracer-on, repeats times
// each (minimum 1), and returns the min-of-repeats comparison. The
// workload should be a Majority one: its steady-state window gives the
// comparison a fixed wire-message volume to time.
func CompareObsOverhead(w Workload, repeats int) (ObsComparison, error) {
	if repeats < 1 {
		repeats = 1
	}
	off, on := w, w
	off.Trace = false
	on.Trace = true

	best := func(w Workload) (Result, error) {
		var bestRes Result
		for i := 0; i < repeats; i++ {
			r, err := Run(w)
			if err != nil {
				return Result{}, err
			}
			if i == 0 || r.ElapsedMS < bestRes.ElapsedMS {
				bestRes = r
			}
		}
		return bestRes, nil
	}

	// Interleaving would be fairer under drifting machine load, but the
	// runs are short; simple order keeps the harness obvious.
	offRes, err := best(off)
	if err != nil {
		return ObsComparison{}, fmt.Errorf("bench: obs off: %w", err)
	}
	onRes, err := best(on)
	if err != nil {
		return ObsComparison{}, fmt.Errorf("bench: obs on: %w", err)
	}

	c := ObsComparison{Name: w.String(), Off: offRes, On: onRes}
	if offRes.SteadyFramesPerDelivery > 0 {
		c.FramesRatio = onRes.SteadyFramesPerDelivery / offRes.SteadyFramesPerDelivery
	}
	if offRes.ElapsedMS > 0 {
		c.ElapsedRatio = onRes.ElapsedMS / offRes.ElapsedMS
	}
	c.Events = onRes.TraceEvents
	return c, nil
}

// ObsMatrix is the workload set the obs overhead mode sweeps: the
// Majority frames path (the hottest emit sites: Recv + AckProgress per
// ACK) at two cluster sizes, batching on.
func ObsMatrix(seed uint64, quick bool) []Workload {
	sizes := []int{5, 10}
	msgs := 8
	if quick {
		sizes = []int{5}
		msgs = 4
	}
	var out []Workload
	for _, n := range sizes {
		out = append(out, Workload{
			Algo: AlgoMajority, Net: NetMesh, N: n, Messages: msgs,
			Batching: true, Seed: seed,
		})
	}
	return out
}
