package bench

import (
	"fmt"
	"testing"
	"time"
)

// quickWorkload is a small, fast workload for tests.
func quickWorkload(algo Algo, net Net) Workload {
	return Workload{
		Algo:        algo,
		Net:         net,
		N:           5,
		Messages:    4,
		Batching:    true,
		TickEvery:   5 * time.Millisecond,
		SteadyTicks: 5,
		Seed:        2015,
		Timeout:     30 * time.Second,
	}
}

// TestRunAllCells: every {algo} × {net} cell completes, delivers
// everywhere, and produces sane counters.
func TestRunAllCells(t *testing.T) {
	for _, algo := range []Algo{AlgoMajority, AlgoQuiescent} {
		for _, net := range []Net{NetMesh, NetUDP} {
			algo, net := algo, net
			t.Run(fmt.Sprintf("%s-%s", algo, net), func(t *testing.T) {
				res, err := Run(quickWorkload(algo, net))
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if res.Deliveries != 5*4 {
					t.Fatalf("deliveries=%d, want 20", res.Deliveries)
				}
				if res.SentFrames == 0 || res.SentMsgs == 0 || res.SentBytes == 0 {
					t.Fatalf("empty counters: %+v", res)
				}
				if res.SentFrames > res.SentMsgs {
					t.Fatalf("more frames than messages: %d > %d", res.SentFrames, res.SentMsgs)
				}
				if res.Oversized != 0 {
					t.Fatalf("oversized frames on %s: %d", net, res.Oversized)
				}
				if res.FramesPerDelivery <= 0 || res.BytesPerDelivery <= 0 {
					t.Fatalf("derived metrics missing: %+v", res)
				}
				if algo == AlgoQuiescent && !res.Quiesced {
					t.Fatal("quiescent cluster never went quiet")
				}
				if algo == AlgoMajority && res.SteadyFrames <= 0 {
					t.Fatal("majority run has no steady-state window")
				}
			})
		}
	}
}

// TestBatchingReducesFrames: the core claim — on a steady-state mesh
// workload, batching cuts frames per delivered message by at least 2×
// without inflating bytes per delivery. (The checked-in
// BENCH_batching.json asserts the same at n=25; this guards the
// property at CI scale.)
func TestBatchingReducesFrames(t *testing.T) {
	w := quickWorkload(AlgoMajority, NetMesh)
	c, err := Compare(w)
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if c.FramesImprovement < 2 {
		t.Fatalf("frames improvement %.2fx < 2x (on=%.2f off=%.2f frames/delivery)",
			c.FramesImprovement, c.On.SteadyFramesPerDelivery, c.Off.SteadyFramesPerDelivery)
	}
	// Batch framing is pure concatenation; allow only sampling noise.
	if c.BytesRatio > 1.02 {
		t.Fatalf("batched run inflated bytes per delivery: ratio %.4f", c.BytesRatio)
	}
	if hits := c.On.CacheHits; hits == 0 {
		t.Fatal("encode cache never hit during steady-state retransmission")
	}
}

// TestAckEncodingReducesAckBytes: the delta encoding's core claim at CI
// scale — a quiescent mesh workload spends measurably fewer ACK bytes
// per delivered message than the full-set baseline, with both runs
// reaching genuine quiescence. (The checked-in BENCH_batching.json
// asserts the ≥5× bar at n=100; at n=5 the full sets are small, so the
// gate here is conservative.)
func TestAckEncodingReducesAckBytes(t *testing.T) {
	a, err := CompareAckEncoding(quickWorkload(AlgoQuiescent, NetMesh))
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if !a.Delta.Quiesced || !a.FullSet.Quiesced {
		t.Fatal("comparison accepted a non-quiescent run")
	}
	if a.Delta.AckBytes == 0 || a.FullSet.AckBytes == 0 {
		t.Fatalf("ack byte counters empty: delta=%d full=%d", a.Delta.AckBytes, a.FullSet.AckBytes)
	}
	if a.AckBytesImprovement < 1.2 {
		t.Fatalf("ack bytes improvement %.2fx < 1.2x (full=%.1f delta=%.1f ackB/delivery)",
			a.AckBytesImprovement, a.FullSet.AckBytesPerDelivery, a.Delta.AckBytesPerDelivery)
	}
	// Sanity on the split: ACK bytes never exceed total bytes.
	if a.Delta.AckBytes > a.Delta.SentBytes || a.FullSet.AckBytes > a.FullSet.SentBytes {
		t.Fatalf("ack bytes exceed totals: %+v / %+v", a.Delta, a.FullSet)
	}
}

// TestCompareAckEncodingRejectsMajority: the comparison is specifically
// about Algorithm 2's labeled ACKs.
func TestCompareAckEncodingRejectsMajority(t *testing.T) {
	if _, err := CompareAckEncoding(quickWorkload(AlgoMajority, NetMesh)); err == nil {
		t.Fatal("majority workload accepted")
	}
}

// TestCompactionReducesLabelStorage: the compaction claim at CI scale —
// a quiescent mesh cell retains fewer physical label slots compacted
// than uncompacted, at identical logical bookkeeping and without
// slowing quiescence pathologically.
func TestCompactionReducesLabelStorage(t *testing.T) {
	c, err := CompareCompaction(quickWorkload(AlgoQuiescent, NetMesh))
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if c.Compacted.AckLabels != c.Uncompacted.AckLabels {
		t.Fatalf("logical labels diverged: compacted=%d uncompacted=%d (equivalence broken)",
			c.Compacted.AckLabels, c.Uncompacted.AckLabels)
	}
	if c.Compacted.CompactedMsgs == 0 {
		t.Fatal("compacted run compacted nothing")
	}
	if c.LabelStorageImprovement < 1.5 {
		t.Fatalf("label storage improvement %.2fx < 1.5x (uncompacted=%d compacted=%d)",
			c.LabelStorageImprovement, c.Uncompacted.AckLabelStorage, c.Compacted.AckLabelStorage)
	}
	if c.Uncompacted.SteadyHeapAlloc == 0 || c.Compacted.SteadyHeapAlloc == 0 {
		t.Fatal("steady heap sample missing")
	}
}

// TestHeartbeatCellRuns: the heartbeat stack completes the bench
// workload end to end — deliveries everywhere, algorithm quiescence,
// beat bytes measured.
func TestHeartbeatCellRuns(t *testing.T) {
	res, err := Run(quickWorkload(AlgoHeartbeat, NetMesh))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Deliveries != 5*4 {
		t.Fatalf("deliveries=%d, want 20", res.Deliveries)
	}
	if !res.Quiesced {
		t.Fatal("heartbeat algorithm traffic never quiesced")
	}
	if res.BeatBytes == 0 || res.SteadyBeatBytes <= 0 {
		t.Fatalf("beat accounting empty: total=%d steady=%.1f", res.BeatBytes, res.SteadyBeatBytes)
	}
}

// TestBeatEncodingReducesBeatBytes: the BEATΔ claim at CI scale — over
// the same steady window, delta beat streams cost measurably fewer
// bytes than legacy full beats (22B → 15B per steady frame ≈ 1.47×).
func TestBeatEncodingReducesBeatBytes(t *testing.T) {
	c, err := CompareBeatEncoding(quickWorkload(AlgoHeartbeat, NetMesh))
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if c.BeatBytesImprovement < 1.3 {
		t.Fatalf("beat bytes improvement %.2fx < 1.3x (legacy=%.1f delta=%.1f steady beatB)",
			c.BeatBytesImprovement, c.Legacy.SteadyBeatBytes, c.Delta.SteadyBeatBytes)
	}
	if c.DeltaBeatFrameB >= c.LegacyBeatFrameB {
		t.Fatalf("delta beat frames (%.1fB) not smaller than legacy (%.1fB)",
			c.DeltaBeatFrameB, c.LegacyBeatFrameB)
	}
}

// TestBatchingUDPNoOversized: batched frames must respect the UDP
// datagram budget — the Oversized counter stays at zero.
func TestBatchingUDPNoOversized(t *testing.T) {
	res, err := Run(quickWorkload(AlgoMajority, NetUDP))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Oversized != 0 {
		t.Fatalf("UDP dropped %d oversized frames; batches must stay within FrameBudget", res.Oversized)
	}
}

// benchCells runs one workload per benchmark op, reporting the derived
// per-delivery metrics. Use:
//
//	go test -bench=Batching -benchtime=1x ./internal/bench
func benchCell(b *testing.B, algo Algo, net Net, batching bool) {
	b.Helper()
	var last Result
	for i := 0; i < b.N; i++ {
		w := quickWorkload(algo, net)
		w.Batching = batching
		w.Seed = 2015 + uint64(i)
		res, err := Run(w)
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		last = res
	}
	b.ReportMetric(last.FramesPerDelivery, "frames/delivery")
	b.ReportMetric(last.BytesPerDelivery, "bytes/delivery")
	b.ReportMetric(last.AllocsPerDelivery, "allocs/delivery")
	b.ReportMetric(last.MsgsPerFrame, "msgs/frame")
}

func BenchmarkBatchingMajorityMeshOn(b *testing.B)   { benchCell(b, AlgoMajority, NetMesh, true) }
func BenchmarkBatchingMajorityMeshOff(b *testing.B)  { benchCell(b, AlgoMajority, NetMesh, false) }
func BenchmarkBatchingMajorityUDPOn(b *testing.B)    { benchCell(b, AlgoMajority, NetUDP, true) }
func BenchmarkBatchingMajorityUDPOff(b *testing.B)   { benchCell(b, AlgoMajority, NetUDP, false) }
func BenchmarkBatchingQuiescentMeshOn(b *testing.B)  { benchCell(b, AlgoQuiescent, NetMesh, true) }
func BenchmarkBatchingQuiescentMeshOff(b *testing.B) { benchCell(b, AlgoQuiescent, NetMesh, false) }
func BenchmarkBatchingQuiescentUDPOn(b *testing.B)   { benchCell(b, AlgoQuiescent, NetUDP, true) }
func BenchmarkBatchingQuiescentUDPOff(b *testing.B)  { benchCell(b, AlgoQuiescent, NetUDP, false) }
