// Package bench measures the live runtime's wire efficiency: frames,
// bytes and allocations per URB-delivered message, for both paper
// algorithms, over both real transports, with batching on or off.
//
// It exists to quantify the batched retransmission pipeline: both
// algorithms retransmit their whole MSG set on every Task-1 tick, so an
// unbatched runtime pays one transport frame per message per tick per
// node — O(n²·|MSG|) datagrams that cap cluster size long before the
// algorithms do. Batching coalesces each Step's broadcasts into frames
// bounded by the transport's FrameBudget; since batch framing is pure
// concatenation it changes frame counts, never byte counts.
//
// Bytes are accounted per wire-message class: Result.AckBytes isolates
// the ACK-family cost (full-set, delta and resync frames) from MSG
// dissemination, and CompareAckEncoding measures Algorithm 2's delta
// ACK encoding (DESIGN.md §8) against the paper-literal full-set form
// it replaces. Result.InboxOverflows counts receiver-side load
// shedding, the direct saturation signal.
//
// A Workload runs in two phases. The dissemination phase broadcasts
// Messages payloads round-robin and waits until every node has
// delivered all of them. Then, for the non-quiescent Majority
// algorithm, a steady-state phase samples the counters until the
// cluster has sent a fixed number of additional wire messages
// (SteadyTicks ticks' worth) — conditioning the sample on message
// count, not wall time, makes batched and unbatched runs directly
// comparable, because the wire-message stream is batching-invariant.
// For the Quiescent algorithm the run instead waits for cluster-wide
// quiescence: its steady state is silence, so the interesting cost is
// the total spent reaching it.
package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/node"
	"anonurb/internal/obs"
	"anonurb/internal/transport"
	"anonurb/internal/urb"
	"anonurb/internal/xrand"
)

// Algo selects the URB algorithm under measurement.
type Algo string

// The two paper algorithms, plus the full heartbeat stack (Algorithm 2
// over fd.Heartbeat instead of the oracle — the only workload with BEAT
// traffic, which is what the beat-encoding comparison measures).
const (
	AlgoMajority  Algo = "majority"
	AlgoQuiescent Algo = "quiescent"
	AlgoHeartbeat Algo = "heartbeat"
)

// Net selects the transport under measurement.
type Net string

// The two real transports (Chaos is a wrapper, measured via the
// conformance suite rather than here).
const (
	NetMesh Net = "mesh"
	NetUDP  Net = "udp"
)

// Workload describes one benchmark run.
type Workload struct {
	Algo Algo `json:"algo"`
	Net  Net  `json:"net"`
	// N is the cluster size.
	N int `json:"n"`
	// Messages is the number of URB-broadcasts, issued round-robin
	// across the nodes. Deliveries therefore total N*Messages.
	Messages int `json:"messages"`
	// Payload is the broadcast payload size in bytes (default 64).
	Payload int `json:"payload"`
	// Batching selects the node sending mode under measurement.
	Batching bool `json:"batching"`
	// FullSetAcks makes the Quiescent algorithm attach the full AΘ label
	// set to every ACK (the paper-literal wire form) instead of the
	// delta encoding that is the benchmark default (DESIGN.md §8). The
	// full-set form is the baseline the delta encoding is measured
	// against; it is what saturated the n=100 cells (~1.6 KB per ACK,
	// one re-ACK per MSG reception). Ignored by Majority, whose ACKs are
	// constant-size.
	FullSetAcks bool `json:"full_set_acks,omitempty"`
	// NoCompaction disables post-delivery claim compaction (DESIGN.md
	// §10), which — like the delta encoding — is the benchmark default.
	// The uncompacted form is the baseline the steady-state heap and
	// retained-label measurements are compared against. Ignored by
	// Majority.
	NoCompaction bool `json:"no_compaction,omitempty"`
	// LegacyBeats makes heartbeat workloads emit full 22-byte ALIVE
	// beats instead of the delta beat streams that are the benchmark
	// default (DESIGN.md §10): the baseline of the beat-encoding
	// comparison. Ignored by the oracle-backed algorithms (no beats).
	LegacyBeats bool `json:"legacy_beats,omitempty"`
	// TickEvery is the Task-1 period (default 20ms).
	TickEvery time.Duration `json:"tick_every_ns"`
	// SteadyTicks sizes the Majority steady-state sample window, in
	// ticks' worth of wire messages (default 8). Ignored for Quiescent.
	SteadyTicks int `json:"steady_ticks"`
	// Trace installs a lifecycle tracer (DESIGN.md §14) on every node —
	// the tracer-on configuration of the observability overhead
	// comparison. Off is the production default the baseline measures.
	Trace bool `json:"trace,omitempty"`
	// Seed drives tick phases and tag streams.
	Seed uint64 `json:"seed"`
	// Timeout bounds each phase separately — dissemination, then the
	// steady-state window or quiescence wait — so a slow first phase
	// cannot starve the second; a run takes at most ~2×Timeout.
	// Default 60s.
	Timeout time.Duration `json:"-"`
}

// String names the workload compactly.
func (w Workload) String() string {
	mode := "off"
	if w.Batching {
		mode = "on"
	}
	s := fmt.Sprintf("%s/%s/n=%d/batch=%s", w.Algo, w.Net, w.N, mode)
	if w.Algo != AlgoMajority && w.FullSetAcks {
		s += "/acks=full"
	}
	if w.Algo != AlgoMajority && w.NoCompaction {
		s += "/compact=off"
	}
	if w.Algo == AlgoHeartbeat && w.LegacyBeats {
		s += "/beats=legacy"
	}
	if w.Trace {
		s += "/trace=on"
	}
	return s
}

// Result is one workload's measurement.
type Result struct {
	Workload Workload `json:"workload"`

	// Run-wide totals, cluster-wide, from process start to sample end.
	Deliveries uint64 `json:"deliveries"`
	SentFrames uint64 `json:"sent_frames"`
	SentMsgs   uint64 `json:"sent_msgs"`
	SentBytes  uint64 `json:"sent_bytes"`
	// AckBytes is the ACK-family slice of SentBytes (full-set ACKs,
	// delta ACKs and resync requests): Algorithm 2's dominant wire cost,
	// tracked separately so the delta encoding's win is measurable.
	AckBytes uint64 `json:"ack_bytes"`
	// BeatBytes is the BEAT/heartbeat slice of SentBytes — zero for the
	// oracle-backed workloads here, nonzero for heartbeat-stack runs.
	BeatBytes uint64 `json:"beat_bytes"`
	// InboxOverflows counts inbound frames the transports shed on full
	// inboxes — the direct saturation signal (a saturated cell sheds
	// load here; a healthy one counts zero).
	InboxOverflows uint64  `json:"inbox_overflows"`
	RecvFrames     uint64  `json:"recv_frames"`
	RecvMsgs       uint64  `json:"recv_msgs"`
	Oversized      uint64  `json:"oversized"`
	Allocs         uint64  `json:"allocs"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	// TraceEvents is the total lifecycle events recorded across the
	// cluster's tracers (zero unless Workload.Trace).
	TraceEvents uint64 `json:"trace_events,omitempty"`
	// Quiesced reports whether the cluster reached silence (Quiescent
	// algorithm only; for heartbeat workloads it reports ALGORITHM
	// quiescence — every MSG set drained — since detector beats continue
	// by design; always false for Majority, which never quiesces).
	Quiesced     bool    `json:"quiesced"`
	QuiescenceMS float64 `json:"quiescence_ms,omitempty"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`

	// Steady-state memory, sampled once the cluster is quiescent (or the
	// steady window closes): HeapAlloc after a forced GC, plus the
	// algorithms' retained ACK bookkeeping — the acker views held and
	// the label slots they store logically vs physically (compaction
	// collapses the latter; DESIGN.md §10). The checked-in numbers are
	// what makes the compaction win a measured fact, not a claim.
	SteadyHeapAlloc uint64 `json:"steady_heap_alloc"`
	AckViews        uint64 `json:"ack_views"`
	AckLabels       uint64 `json:"ack_labels"`
	AckLabelStorage uint64 `json:"ack_label_storage"`
	CompactedMsgs   uint64 `json:"compacted_msgs,omitempty"`

	// Steady-state window (Majority only): counter deltas over the
	// sample window, normalised to exactly the targeted number of wire
	// messages so batched and unbatched runs compare at identical
	// message volume.
	SteadyFrames float64 `json:"steady_frames,omitempty"`
	SteadyMsgs   float64 `json:"steady_msgs,omitempty"`
	SteadyBytes  float64 `json:"steady_bytes,omitempty"`

	// Steady-state beat window (heartbeat workloads only): beat bytes
	// over a SteadyTicks-sized window once the algorithm has quiesced —
	// the traffic class that never stops, normalised per beat so the
	// delta encoding's per-frame saving is read off directly.
	SteadyBeatBytes  float64 `json:"steady_beat_bytes,omitempty"`
	SteadyBeats      float64 `json:"steady_beats,omitempty"`
	SteadyBeatFrameB float64 `json:"steady_beat_frame_bytes,omitempty"`

	// Derived metrics. Deliveries is the denominator everywhere: the
	// N*Messages URB-deliveries this workload sustains.
	FramesPerDelivery    float64 `json:"frames_per_delivery"`
	BytesPerDelivery     float64 `json:"bytes_per_delivery"`
	AckBytesPerDelivery  float64 `json:"ack_bytes_per_delivery"`
	BeatBytesPerDelivery float64 `json:"beat_bytes_per_delivery,omitempty"`
	AllocsPerDelivery    float64 `json:"allocs_per_delivery"`
	MsgsPerFrame         float64 `json:"msgs_per_frame"`
	// Steady variants: the per-delivery cost of keeping the cluster in
	// steady state for the sample window (Majority only).
	SteadyFramesPerDelivery float64 `json:"steady_frames_per_delivery,omitempty"`
	SteadyBytesPerDelivery  float64 `json:"steady_bytes_per_delivery,omitempty"`
	SteadyMsgsPerFrame      float64 `json:"steady_msgs_per_frame,omitempty"`
}

// counters is one cluster-wide counter sample.
type counters struct {
	frames, msgs, bytes, ackBytes, beatBytes uint64
}

// Run executes one workload and returns its measurement.
func Run(w Workload) (Result, error) {
	if w.N < 1 || w.Messages < 1 {
		return Result{}, fmt.Errorf("bench: N and Messages must be >= 1")
	}
	if w.Payload <= 0 {
		w.Payload = 64
	}
	if w.TickEvery <= 0 {
		w.TickEvery = 20 * time.Millisecond
	}
	if w.SteadyTicks <= 0 {
		w.SteadyTicks = 8
	}
	if w.Timeout <= 0 {
		w.Timeout = 60 * time.Second
	}

	// --- build the cluster -------------------------------------------
	start := time.Now()
	var (
		trs     []transport.Transport
		udps    []*transport.UDP
		mesh    *transport.Mesh
		cleanup func()
	)
	switch w.Net {
	case NetMesh:
		// Reliable zero-delay links and deep inboxes: the workload
		// measures runtime overhead, and a deterministic per-tick
		// message mix keeps batched and unbatched byte counts
		// comparable (loss resilience is the test suite's job).
		mesh = transport.NewMesh(transport.MeshConfig{
			N:          w.N,
			Link:       channel.Reliable{D: channel.FixedDelay(0)},
			Unit:       time.Millisecond,
			Seed:       w.Seed,
			InboxDepth: 1 << 16,
		})
		for i := 0; i < w.N; i++ {
			trs = append(trs, mesh.Endpoint(i))
		}
		cleanup = func() { mesh.Close() }
	case NetUDP:
		group, err := transport.UDPGroup(w.N, 1<<14)
		if err != nil {
			return Result{}, fmt.Errorf("bench: udp group: %w", err)
		}
		udps = group
		for _, u := range group {
			trs = append(trs, u)
		}
		cleanup = func() {
			for _, u := range group {
				u.Close()
			}
		}
	default:
		return Result{}, fmt.Errorf("bench: unknown net %q", w.Net)
	}
	defer cleanup()

	var oracle *fd.Oracle
	if w.Algo == AlgoQuiescent {
		correct := make([]bool, w.N)
		for i := range correct {
			correct[i] = true
		}
		oracle = fd.NewOracle(fd.OracleConfig{N: w.N, Noise: fd.NoiseExact, Seed: w.Seed}, correct)
	}
	clock := func() int64 { return int64(time.Since(start) / time.Millisecond) }

	metrics := node.NewMetrics()
	var tracers []*obs.Tracer
	nodes := make([]*node.Node, w.N)
	inboxes := make([]<-chan node.Delivery, w.N)
	tagRoot := xrand.SplitLabeled(w.Seed, "bench-tags")
	for i := 0; i < w.N; i++ {
		var proc urb.Process
		switch w.Algo {
		case AlgoMajority:
			proc = urb.NewMajority(w.N, ident.NewSource(tagRoot.Split()), urb.Config{})
		case AlgoQuiescent:
			proc = urb.NewQuiescent(oracle.Handle(i, clock), ident.NewSource(tagRoot.Split()),
				urb.Config{DeltaAcks: !w.FullSetAcks, CompactDelivered: !w.NoCompaction})
		case AlgoHeartbeat:
			// The full Section VI stack: Algorithm 2 over fd.Heartbeat,
			// ALIVE beats multiplexed on the same transport. The trust
			// timeout is generous against the tick period — the mesh here
			// is loss-free and the bench measures steady-state wire cost,
			// not detector robustness.
			timeout := int64(50 * w.TickEvery / time.Millisecond)
			if timeout < 50 {
				timeout = 50
			}
			proc = urb.NewHeartbeatHost(ident.NewSource(tagRoot.Split()), timeout, 1, clock,
				urb.Config{DeltaAcks: !w.FullSetAcks, CompactDelivered: !w.NoCompaction,
					DeltaBeats: !w.LegacyBeats})
		default:
			return Result{}, fmt.Errorf("bench: unknown algo %q", w.Algo)
		}
		nodeOpts := []node.Option{
			node.WithTickEvery(w.TickEvery),
			node.WithSeed(xrand.HashStream(w.Seed, uint64(i))),
			node.WithBatching(w.Batching),
			node.WithObserver(metrics),
			node.WithInboxDepth(w.Messages + 16),
		}
		if w.Trace {
			// Wall nanoseconds since run start: the timestamps the
			// timelines and Chrome export read.
			t := obs.New(i, 0, func() int64 { return int64(time.Since(start)) })
			tracers = append(tracers, t)
			nodeOpts = append(nodeOpts, node.WithTracer(t))
		}
		nodes[i] = node.New(proc, trs[i], nodeOpts...)
		inboxes[i] = nodes[i].Deliveries()
	}
	stopAll := func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}
	defer stopAll()

	var mem0 runtime.MemStats
	runtime.ReadMemStats(&mem0)

	// The run context has no deadline of its own — each phase enforces
	// its Timeout below, so a slow dissemination cannot eat the steady
	// phase's budget. Nodes stay alive until teardown.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, nd := range nodes {
		if err := nd.Start(ctx); err != nil {
			return Result{}, fmt.Errorf("bench: start: %w", err)
		}
	}

	// --- dissemination phase -----------------------------------------
	payload := make([]byte, w.Payload)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < w.Messages; i++ {
		payload[0] = byte(i) // distinct bodies → distinct MsgIDs even across tag reuse
		if _, err := nodes[i%w.N].Broadcast(payload); err != nil {
			return Result{}, fmt.Errorf("bench: broadcast %d: %w", i, err)
		}
	}
	disseminate, cancelDisseminate := context.WithTimeout(ctx, w.Timeout)
	defer cancelDisseminate()
	var wg sync.WaitGroup
	delivered := make([]int, w.N)
	for i := range nodes {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range w.Messages {
				select {
				case _, ok := <-inboxes[i]:
					if !ok {
						return
					}
					delivered[i]++
				case <-disseminate.Done():
					return
				}
			}
		}()
	}
	wg.Wait()
	for i, d := range delivered {
		if d != w.Messages {
			return Result{}, fmt.Errorf("bench: node %d delivered %d/%d before timeout (%s)",
				i, d, w.Messages, w)
		}
	}

	res := Result{Workload: w, Deliveries: uint64(w.N) * uint64(w.Messages)}

	// --- steady-state / quiescence phase -----------------------------
	sample := func() counters {
		var c counters
		for _, nd := range nodes {
			f, _, _ := nd.FrameStats()
			m, _ := nd.MessageStats()
			c.frames += f
			c.msgs += m
			_, ack, beat, _, _ := nd.ByteStats()
			c.ackBytes += ack
			c.beatBytes += beat
		}
		// SentBytesTotal, not Snapshot: the sampler polls every
		// millisecond while the cluster is sending, and a full Snapshot
		// summarises histograms under the observer mutex every node's
		// send path needs — the measurement would perturb itself. The
		// ack split comes from the nodes' atomic counters for the same
		// reason.
		c.bytes = metrics.SentBytesTotal()
		return c
	}

	switch w.Algo {
	case AlgoMajority:
		// Per tick the cluster retransmits N*Messages MSGs; every MSG
		// copy received triggers an ACK, so a loss-free tick moves
		// N*Messages*(1+N) wire messages. Conditioning the window on
		// that count (not on wall time) makes runs comparable.
		c0 := sample()
		perTick := uint64(w.N) * uint64(w.Messages) * uint64(1+w.N)
		target := uint64(w.SteadyTicks) * perTick
		deadline := time.Now().Add(w.Timeout)
		var c1 counters
		for {
			c1 = sample()
			if c1.msgs-c0.msgs >= target {
				break
			}
			if time.Now().After(deadline) {
				return Result{}, fmt.Errorf("bench: steady window starved: %d/%d msgs (%s)",
					c1.msgs-c0.msgs, target, w)
			}
			time.Sleep(time.Millisecond)
		}
		dm := float64(c1.msgs - c0.msgs)
		// Normalise the deltas to exactly `target` messages: sampling
		// granularity overshoots by up to a tick's burst, and the
		// overshoot differs between runs.
		scale := float64(target) / dm
		res.SteadyMsgs = float64(target)
		res.SteadyFrames = float64(c1.frames-c0.frames) * scale
		res.SteadyBytes = float64(c1.bytes-c0.bytes) * scale
		del := float64(res.Deliveries)
		res.SteadyFramesPerDelivery = res.SteadyFrames / del
		res.SteadyBytesPerDelivery = res.SteadyBytes / del
		if res.SteadyFrames > 0 {
			res.SteadyMsgsPerFrame = res.SteadyMsgs / res.SteadyFrames
		}
	case AlgoQuiescent:
		quietWindow := 5 * w.TickEvery
		deadline := time.Now().Add(w.Timeout)
		for {
			quiet := true
			for _, nd := range nodes {
				if !nd.QuietFor(quietWindow) {
					quiet = false
					break
				}
			}
			if quiet {
				res.Quiesced = true
				res.QuiescenceMS = float64(time.Since(start)-quietWindow) / float64(time.Millisecond)
				break
			}
			if time.Now().After(deadline) {
				break // measured anyway; Quiesced stays false
			}
			time.Sleep(time.Millisecond)
		}
	case AlgoHeartbeat:
		// Beats never stop, so transport silence never happens: algorithm
		// quiescence is every node's MSG set draining (all messages
		// delivered AND retired everywhere).
		deadline := time.Now().Add(w.Timeout)
		for {
			quiet := true
			for _, nd := range nodes {
				st, err := nd.Stats()
				if err != nil || st.MsgSet != 0 {
					quiet = false
					break
				}
			}
			if quiet {
				res.Quiesced = true
				res.QuiescenceMS = float64(time.Since(start)) / float64(time.Millisecond)
				break
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if res.Quiesced {
			// Steady beat window: the quiescent cluster's only traffic is
			// the detector's, N beats per tick. Conditioning on message
			// count (not wall time) makes the legacy and delta encodings
			// directly comparable, exactly as the batching windows do.
			c0 := sample()
			target := uint64(w.SteadyTicks) * uint64(w.N)
			beatDeadline := time.Now().Add(w.Timeout)
			var c1 counters
			for {
				c1 = sample()
				if c1.msgs-c0.msgs >= target {
					break
				}
				if time.Now().After(beatDeadline) {
					return Result{}, fmt.Errorf("bench: beat window starved: %d/%d msgs (%s)",
						c1.msgs-c0.msgs, target, w)
				}
				time.Sleep(time.Millisecond)
			}
			scale := float64(target) / float64(c1.msgs-c0.msgs)
			res.SteadyBeats = float64(target)
			res.SteadyBeatBytes = float64(c1.beatBytes-c0.beatBytes) * scale
			if res.SteadyBeats > 0 {
				res.SteadyBeatFrameB = res.SteadyBeatBytes / res.SteadyBeats
			}
		}
	}

	// Steady-state memory: force a GC so the sample reads retained
	// state, not garbage awaiting collection.
	runtime.GC()
	var steadyMem runtime.MemStats
	runtime.ReadMemStats(&steadyMem)
	res.SteadyHeapAlloc = steadyMem.HeapAlloc

	// --- teardown and totals -----------------------------------------
	stopAll()
	var mem1 runtime.MemStats
	runtime.ReadMemStats(&mem1)

	final := sample()
	res.SentFrames = final.frames
	res.SentMsgs = final.msgs
	res.SentBytes = final.bytes
	res.AckBytes = final.ackBytes
	res.BeatBytes = final.beatBytes
	for _, nd := range nodes {
		_, rf, _ := nd.FrameStats()
		_, rm := nd.MessageStats()
		res.RecvFrames += rf
		res.RecvMsgs += rm
		h, m := nd.EncodeCacheStats()
		res.CacheHits += h
		res.CacheMisses += m
		if ov, ok := nd.InboxOverflows(); ok {
			res.InboxOverflows += ov
		}
		if st, err := nd.Stats(); err == nil {
			res.AckViews += uint64(st.AckEntries)
			res.AckLabels += uint64(st.AckLabels)
			res.AckLabelStorage += uint64(st.AckLabelStorage)
			res.CompactedMsgs += uint64(st.CompactedMsgs)
		}
	}
	for _, u := range udps {
		res.Oversized += u.Oversized()
	}
	for _, t := range tracers {
		res.TraceEvents += t.Total()
	}
	res.Allocs = mem1.Mallocs - mem0.Mallocs
	res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)

	del := float64(res.Deliveries)
	res.FramesPerDelivery = float64(res.SentFrames) / del
	res.BytesPerDelivery = float64(res.SentBytes) / del
	res.AckBytesPerDelivery = float64(res.AckBytes) / del
	res.BeatBytesPerDelivery = float64(res.BeatBytes) / del
	res.AllocsPerDelivery = float64(res.Allocs) / del
	if res.SentFrames > 0 {
		res.MsgsPerFrame = float64(res.SentMsgs) / float64(res.SentFrames)
	}
	return res, nil
}

// Matrix returns the standard batching benchmark matrix:
// {majority, quiescent} × {mesh, udp} at n ∈ {5, 25, 100}. Small
// clusters keep several messages in flight so ticks have something to
// coalesce; n=100 runs a leaner workload (the unbatched baseline is an
// O(n²·|MSG|) datagram storm — the very behaviour the pipeline
// removes). quick trims the matrix to CI sizes: n ∈ {5, 25} on the
// mesh, n=5 on UDP.
func Matrix(seed uint64, quick bool) []Workload {
	type size struct {
		n, messages, steady int
		tick                time.Duration
		timeout             time.Duration
	}
	sizes := map[Net][]size{
		NetMesh: {
			// Long steady windows on the small mesh cells: the window is
			// conditioned on message count but its boundaries slice
			// mid-tick, and the residual mix noise on the bytes ratio
			// shrinks with window length (the n=25 cell is the
			// acceptance benchmark, so its ratio must be clean).
			{n: 5, messages: 4, steady: 32, tick: 10 * time.Millisecond, timeout: 60 * time.Second},
			{n: 25, messages: 4, steady: 32, tick: 20 * time.Millisecond, timeout: 120 * time.Second},
			{n: 100, messages: 2, steady: 2, tick: 100 * time.Millisecond, timeout: 180 * time.Second},
		},
		NetUDP: {
			{n: 5, messages: 4, steady: 8, tick: 20 * time.Millisecond, timeout: 60 * time.Second},
			{n: 25, messages: 4, steady: 5, tick: 30 * time.Millisecond, timeout: 120 * time.Second},
			{n: 100, messages: 2, steady: 1, tick: 200 * time.Millisecond, timeout: 300 * time.Second},
		},
	}
	var ws []Workload
	for _, net := range []Net{NetMesh, NetUDP} {
		for _, s := range sizes[net] {
			if quick && (s.n == 100 || (net == NetUDP && s.n == 25)) {
				continue
			}
			for _, algo := range []Algo{AlgoMajority, AlgoQuiescent} {
				ws = append(ws, Workload{
					Algo:        algo,
					Net:         net,
					N:           s.n,
					Messages:    s.messages,
					TickEvery:   s.tick,
					SteadyTicks: s.steady,
					Seed:        seed,
					Timeout:     s.timeout,
				})
			}
		}
	}
	return ws
}

// AckComparison pairs a full-set-ACK and a delta-ACK run of one
// Quiescent workload (batching on in both): the measurement of the
// incremental labeled-ACK encoding (DESIGN.md §8) against the
// paper-literal wire form it replaces.
type AckComparison struct {
	Name string `json:"name"`
	// Delta is the run with the incremental encoding (the default);
	// FullSet is the paper-literal full-set baseline.
	Delta   Result `json:"delta"`
	FullSet Result `json:"full_set"`
	// AckBytesImprovement is how many times fewer ACK bytes per
	// delivered message the delta encoding needs. >= 5 at n=100 is the
	// bar this optimisation sets for itself.
	AckBytesImprovement float64 `json:"ack_bytes_improvement"`
	// FramesImprovement is the same ratio for transport frames per
	// delivered message (rate-limited re-ACKs shrink the frame count on
	// top of the byte count).
	FramesImprovement float64 `json:"frames_improvement"`
	// QuiescenceImprovement is full-set quiescence time over delta
	// quiescence time: how much sooner the cluster falls silent once
	// label-set processing stops being the bottleneck.
	QuiescenceImprovement float64 `json:"quiescence_improvement"`
}

// CompareAckEncoding runs w (a Quiescent workload) with full-set ACKs
// and then with delta ACKs — batching on in both, same seed — and
// derives the improvement ratios. Runs that failed to reach genuine
// quiescence are rejected: their totals describe a truncated run.
func CompareAckEncoding(w Workload) (AckComparison, error) {
	if w.Algo != AlgoQuiescent {
		return AckComparison{}, fmt.Errorf("bench: ack-encoding comparison needs the quiescent algorithm, got %q", w.Algo)
	}
	w.Batching = true
	w.FullSetAcks = false
	delta, err := Run(w)
	if err != nil {
		return AckComparison{}, err
	}
	return CompareAckEncodingAgainst(w, delta)
}

// CompareAckEncodingAgainst is CompareAckEncoding reusing an
// already-measured delta run of w (batching on, FullSetAcks off, same
// seed) — the batching matrix has usually just produced exactly that
// run, and re-executing a large quiescent cell costs real wall-clock.
// Only the full-set baseline is run here.
func CompareAckEncodingAgainst(w Workload, delta Result) (AckComparison, error) {
	if w.Algo != AlgoQuiescent {
		return AckComparison{}, fmt.Errorf("bench: ack-encoding comparison needs the quiescent algorithm, got %q", w.Algo)
	}
	w.Batching = true
	w.FullSetAcks = true
	full, err := Run(w)
	if err != nil {
		return AckComparison{}, err
	}
	if !full.Quiesced || !delta.Quiesced {
		return AckComparison{}, fmt.Errorf("bench: %s did not quiesce within its timeout (full=%v delta=%v)",
			w, full.Quiesced, delta.Quiesced)
	}
	c := AckComparison{
		Name:    fmt.Sprintf("%s/%s/n=%d", w.Algo, w.Net, w.N),
		Delta:   delta,
		FullSet: full,
	}
	if delta.AckBytesPerDelivery > 0 {
		c.AckBytesImprovement = full.AckBytesPerDelivery / delta.AckBytesPerDelivery
	}
	if delta.FramesPerDelivery > 0 {
		c.FramesImprovement = full.FramesPerDelivery / delta.FramesPerDelivery
	}
	if delta.QuiescenceMS > 0 {
		c.QuiescenceImprovement = full.QuiescenceMS / delta.QuiescenceMS
	}
	return c, nil
}

// AckMatrix returns the ack-encoding comparison workloads: the
// Quiescent cells of the batching matrix, whose full-set baselines are
// exactly the runs the saturation caveat in EXPERIMENTS.md was about.
// quick trims to CI sizes as Matrix does.
func AckMatrix(seed uint64, quick bool) []Workload {
	var ws []Workload
	for _, w := range Matrix(seed, quick) {
		if w.Algo == AlgoQuiescent {
			ws = append(ws, w)
		}
	}
	return ws
}

// CompactionComparison pairs a compacted and an uncompacted run of one
// Quiescent workload (batching + delta ACKs on in both): the
// measurement of post-delivery claim compaction and the retirement
// index (DESIGN.md §10).
type CompactionComparison struct {
	Name string `json:"name"`
	// Compacted is the run with CompactDelivered (the default);
	// Uncompacted is the label-matrix baseline.
	Compacted   Result `json:"compacted"`
	Uncompacted Result `json:"uncompacted"`
	// LabelStorageImprovement is how many times fewer label slots the
	// compacted steady state retains (uncompacted AckLabelStorage over
	// compacted; the logical AckLabels are equal by equivalence).
	LabelStorageImprovement float64 `json:"label_storage_improvement"`
	// HeapRatio is compacted steady-state HeapAlloc over uncompacted
	// (< 1 is a win; the whole-process heap dilutes the per-structure
	// collapse, so LabelStorageImprovement is the sharper number).
	HeapRatio float64 `json:"heap_ratio_compacted_over_uncompacted"`
	// AllocsRatio is compacted allocations per delivery over uncompacted.
	AllocsRatio float64 `json:"allocs_ratio_compacted_over_uncompacted"`
	// QuiescenceRatio is compacted quiescence time over uncompacted
	// (must hover at or below 1: compaction may not slow the endgame).
	QuiescenceRatio float64 `json:"quiescence_ratio_compacted_over_uncompacted"`
}

// CompareCompactionAgainst runs w uncompacted and derives the ratios
// against an already-measured compacted run (batching + delta ACKs on,
// same seed).
func CompareCompactionAgainst(w Workload, compacted Result) (CompactionComparison, error) {
	if w.Algo != AlgoQuiescent {
		return CompactionComparison{}, fmt.Errorf("bench: compaction comparison needs the quiescent algorithm, got %q", w.Algo)
	}
	w.Batching = true
	w.FullSetAcks = false
	w.NoCompaction = true
	plain, err := Run(w)
	if err != nil {
		return CompactionComparison{}, err
	}
	if !plain.Quiesced || !compacted.Quiesced {
		return CompactionComparison{}, fmt.Errorf("bench: %s did not quiesce within its timeout (plain=%v compacted=%v)",
			w, plain.Quiesced, compacted.Quiesced)
	}
	c := CompactionComparison{
		Name:        fmt.Sprintf("%s/%s/n=%d", w.Algo, w.Net, w.N),
		Compacted:   compacted,
		Uncompacted: plain,
	}
	if compacted.AckLabelStorage > 0 {
		c.LabelStorageImprovement = float64(plain.AckLabelStorage) / float64(compacted.AckLabelStorage)
	}
	if plain.SteadyHeapAlloc > 0 {
		c.HeapRatio = float64(compacted.SteadyHeapAlloc) / float64(plain.SteadyHeapAlloc)
	}
	if plain.AllocsPerDelivery > 0 {
		c.AllocsRatio = compacted.AllocsPerDelivery / plain.AllocsPerDelivery
	}
	if plain.QuiescenceMS > 0 {
		c.QuiescenceRatio = compacted.QuiescenceMS / plain.QuiescenceMS
	}
	return c, nil
}

// CompareCompaction is CompareCompactionAgainst running the compacted
// side itself.
func CompareCompaction(w Workload) (CompactionComparison, error) {
	if w.Algo != AlgoQuiescent {
		return CompactionComparison{}, fmt.Errorf("bench: compaction comparison needs the quiescent algorithm, got %q", w.Algo)
	}
	w.Batching = true
	w.FullSetAcks = false
	w.NoCompaction = false
	compacted, err := Run(w)
	if err != nil {
		return CompactionComparison{}, err
	}
	return CompareCompactionAgainst(w, compacted)
}

// BeatComparison pairs a delta-beat and a legacy-beat run of one
// heartbeat workload: the measurement of the BEATΔ encoding (DESIGN.md
// §10) on the one traffic class a quiescent cluster pays forever.
type BeatComparison struct {
	Name string `json:"name"`
	// Delta is the run with BEATΔ streams (the default); Legacy beats
	// full 22-byte ALIVE frames.
	Delta  Result `json:"delta"`
	Legacy Result `json:"legacy"`
	// BeatBytesImprovement is how many times fewer beat bytes the delta
	// encoding pays over the same steady window.
	BeatBytesImprovement float64 `json:"beat_bytes_improvement"`
	// BeatFrameBytes reports the measured steady per-beat frame size,
	// legacy vs delta (22 vs 15 on an idle stream).
	LegacyBeatFrameB float64 `json:"legacy_beat_frame_bytes"`
	DeltaBeatFrameB  float64 `json:"delta_beat_frame_bytes"`
}

// CompareBeatEncoding runs w (a heartbeat workload) with delta beats
// and then with legacy beats — batching on, same seed — and derives the
// steady-window improvement.
func CompareBeatEncoding(w Workload) (BeatComparison, error) {
	if w.Algo != AlgoHeartbeat {
		return BeatComparison{}, fmt.Errorf("bench: beat-encoding comparison needs the heartbeat stack, got %q", w.Algo)
	}
	w.Batching = true
	w.LegacyBeats = false
	delta, err := Run(w)
	if err != nil {
		return BeatComparison{}, err
	}
	w.LegacyBeats = true
	legacy, err := Run(w)
	if err != nil {
		return BeatComparison{}, err
	}
	if !delta.Quiesced || !legacy.Quiesced {
		return BeatComparison{}, fmt.Errorf("bench: %s algorithm traffic did not quiesce (delta=%v legacy=%v)",
			w, delta.Quiesced, legacy.Quiesced)
	}
	c := BeatComparison{
		Name:             fmt.Sprintf("%s/%s/n=%d", w.Algo, w.Net, w.N),
		Delta:            delta,
		Legacy:           legacy,
		LegacyBeatFrameB: legacy.SteadyBeatFrameB,
		DeltaBeatFrameB:  delta.SteadyBeatFrameB,
	}
	if delta.SteadyBeatBytes > 0 {
		c.BeatBytesImprovement = legacy.SteadyBeatBytes / delta.SteadyBeatBytes
	}
	return c, nil
}

// CompactionMatrix returns the compaction comparison workloads: the
// mesh Quiescent cells of the batching matrix (the n=100 cell is the
// acceptance benchmark — steady-state heap and allocs per delivery must
// drop there).
func CompactionMatrix(seed uint64, quick bool) []Workload {
	var ws []Workload
	for _, w := range Matrix(seed, quick) {
		if w.Algo == AlgoQuiescent && w.Net == NetMesh {
			ws = append(ws, w)
		}
	}
	return ws
}

// BeatMatrix returns the beat-encoding comparison workloads: heartbeat
// stacks on the mesh. quick trims to the n=5 cell.
func BeatMatrix(seed uint64, quick bool) []Workload {
	sizes := []int{5, 25}
	if quick {
		sizes = []int{5}
	}
	var ws []Workload
	for _, n := range sizes {
		ws = append(ws, Workload{
			Algo:        AlgoHeartbeat,
			Net:         NetMesh,
			N:           n,
			Messages:    4,
			Batching:    true,
			TickEvery:   20 * time.Millisecond,
			SteadyTicks: 32,
			Seed:        seed,
			Timeout:     120 * time.Second,
		})
	}
	return ws
}

// Comparison pairs a batched and an unbatched run of one workload.
type Comparison struct {
	Name string `json:"name"`
	On   Result `json:"batching_on"`
	Off  Result `json:"batching_off"`
	// FramesImprovement is how many times fewer frames the batched run
	// needs per delivered message (steady-state window for Majority,
	// whole run for Quiescent). >= 2 is the bar the batching pipeline
	// sets for itself on steady-state workloads.
	FramesImprovement float64 `json:"frames_improvement"`
	// BytesRatio is batched bytes per delivery over unbatched (steady
	// basis as above); batching is pure concatenation, so this should
	// hover at or below 1.
	BytesRatio float64 `json:"bytes_ratio_on_over_off"`
	// AllocsRatio is batched allocations per delivery over unbatched
	// across the whole run.
	AllocsRatio float64 `json:"allocs_ratio_on_over_off"`
}

// Compare runs w with batching off and on (same seed) and derives the
// improvement ratios. Quiescent workloads that failed to reach genuine
// quiescence (timeout) are rejected rather than silently recorded as a
// valid comparison — their totals describe a truncated run.
func Compare(w Workload) (Comparison, error) {
	w.Batching = false
	off, err := Run(w)
	if err != nil {
		return Comparison{}, err
	}
	w.Batching = true
	on, err := Run(w)
	if err != nil {
		return Comparison{}, err
	}
	if w.Algo == AlgoQuiescent && (!off.Quiesced || !on.Quiesced) {
		return Comparison{}, fmt.Errorf("bench: %s did not quiesce within its timeout (off=%v on=%v)",
			w, off.Quiesced, on.Quiesced)
	}
	c := Comparison{Name: fmt.Sprintf("%s/%s/n=%d", w.Algo, w.Net, w.N), On: on, Off: off}
	onFrames, offFrames := on.SteadyFramesPerDelivery, off.SteadyFramesPerDelivery
	onBytes, offBytes := on.SteadyBytesPerDelivery, off.SteadyBytesPerDelivery
	if w.Algo == AlgoQuiescent {
		onFrames, offFrames = on.FramesPerDelivery, off.FramesPerDelivery
		onBytes, offBytes = on.BytesPerDelivery, off.BytesPerDelivery
	}
	if onFrames > 0 {
		c.FramesImprovement = offFrames / onFrames
	}
	if offBytes > 0 {
		c.BytesRatio = onBytes / offBytes
	}
	if off.AllocsPerDelivery > 0 {
		c.AllocsRatio = on.AllocsPerDelivery / off.AllocsPerDelivery
	}
	return c, nil
}
