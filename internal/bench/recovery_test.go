package bench

import (
	"testing"
	"time"
)

// TestRunRecoverySmoke runs one small recovery workload end to end and
// sanity-checks the measurement invariants.
func TestRunRecoverySmoke(t *testing.T) {
	res, err := RunRecovery(RecoveryWorkload{
		Algo:            AlgoMajority,
		N:               3,
		Messages:        4,
		CheckpointEvery: 10 * time.Millisecond,
		Seed:            2015,
		Timeout:         60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Redelivered != 0 {
		t.Fatalf("recovered node re-delivered %d messages", res.Redelivered)
	}
	if res.Deliveries != 12 {
		t.Fatalf("deliveries = %d, want 12", res.Deliveries)
	}
	if res.WALAppends == 0 || res.WALBytesPerDelivery <= 0 {
		t.Fatalf("WAL accounting empty: %+v", res)
	}
	if res.RecoveryMS <= 0 || res.CatchupMS <= 0 {
		t.Fatalf("latency accounting empty: %+v", res)
	}
	if res.SnapshotBytesReplayed == 0 && res.WALRecordsReplayed == 0 {
		t.Fatal("recovery replayed nothing — the durable node persisted no state")
	}
}

// TestRunRecoveryWALOnly: with checkpointing effectively disabled the
// restart replays the full WAL.
func TestRunRecoveryWALOnly(t *testing.T) {
	res, err := RunRecovery(RecoveryWorkload{
		Algo:            AlgoMajority,
		N:               3,
		Messages:        4,
		CheckpointEvery: time.Hour,
		Seed:            2015,
		Timeout:         60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 0 {
		t.Fatalf("wal-only run checkpointed %d times", res.Checkpoints)
	}
	if res.WALRecordsReplayed == 0 {
		t.Fatal("wal-only recovery replayed no records")
	}
	if res.Redelivered != 0 {
		t.Fatalf("re-delivered %d", res.Redelivered)
	}
}

// TestRunRecoveryQuiescent: the oracle counts the durable node as
// correct, so the cluster blocks on it while it is down and completes
// after recovery — the strictest catch-up path.
func TestRunRecoveryQuiescent(t *testing.T) {
	res, err := RunRecovery(RecoveryWorkload{
		Algo:            AlgoQuiescent,
		N:               3,
		Messages:        3,
		CheckpointEvery: 10 * time.Millisecond,
		Seed:            7,
		Timeout:         60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Redelivered != 0 {
		t.Fatalf("re-delivered %d", res.Redelivered)
	}
}
