// Package xrand provides small, deterministic pseudo-random sources for the
// simulator and the algorithms.
//
// Everything in this repository that needs randomness draws it from an
// xrand.Source so that a run is a pure function of its seed: the same
// scenario with the same seed replays identically on any platform and any
// Go release. The generator is SplitMix64 (Steele, Lea, Flood 2014), which
// is tiny, fast, passes BigCrush when used as a 64-bit stream, and -
// crucially - supports cheap stream splitting so that independent concerns
// (channel loss, per-process tag generation, failure detector noise,
// workload arrival times) consume independent streams and adding draws to
// one concern never perturbs another.
package xrand

import "math"

// Source is a deterministic 64-bit pseudo-random source. It is not safe for
// concurrent use; give each goroutine (or each simulated process) its own
// split stream.
type Source struct {
	state uint64
}

// golden is the SplitMix64 increment (2^64 / phi, rounded to odd).
const golden = 0x9e3779b97f4a7c15

// New returns a Source seeded with seed. Distinct seeds yield streams that
// are independent for all practical purposes.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// mix is the SplitMix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Split derives a new independent Source from the current one. The parent
// advances by one draw; the child is seeded by a decorrelated function of
// that draw, so parent and child streams do not overlap in practice.
func (s *Source) Split() *Source {
	return &Source{state: mix(s.Uint64() ^ 0x5851f42d4c957f2d)}
}

// Clone returns an independent copy of the Source at its current stream
// position: both copies produce the same future values. Crash-recovery
// hosts clone a process's stream at creation so a restarted process can
// replay the exact tag sequence its predecessor drew.
func (s *Source) Clone() *Source {
	return &Source{state: s.state}
}

// SplitLabeled derives an independent Source identified by a label, such
// that the derived stream depends only on the parent seed and the label,
// not on how many draws the parent made. Useful for attaching stable
// streams to named concerns.
func SplitLabeled(seed uint64, label string) *Source {
	h := seed
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 0x100000001b3
	}
	return &Source{state: mix(h)}
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 random bits, the standard trick.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. p <= 0 always returns false and
// p >= 1 always returns true.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Uint64n returns a uniformly distributed uint64 in [0, n). It panics if
// n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	return s.Uint64() % n
}

// Int63n returns a uniformly distributed int64 in [0, n). It panics if
// n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n called with n <= 0")
	}
	return int64(s.Uint64n(uint64(n)))
}

// Range returns a uniformly distributed int64 in [lo, hi]. It panics if
// lo > hi.
func (s *Source) Range(lo, hi int64) int64 {
	if lo > hi {
		panic("xrand: Range called with lo > hi")
	}
	if lo == hi {
		return lo
	}
	return lo + s.Int63n(hi-lo+1)
}

// Exp returns an exponentially distributed float64 with the given mean.
// The result is capped at 64*mean to keep event horizons finite.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := s.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	v := -mean * math.Log(1-u)
	if cap := 64 * mean; v > cap {
		v = cap
	}
	return v
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap, in the
// manner of math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// HashStream returns a deterministic 64-bit value from a tuple of inputs.
// It is used where a value must be a pure function of coordinates (for
// example failure-detector noise as a function of (seed, process, epoch))
// rather than of a stream position.
func HashStream(parts ...uint64) uint64 {
	h := uint64(0x8f1bbcdcbfa53e0b)
	for _, p := range parts {
		h ^= mix(p)
		h *= 0x100000001b3
		h = mix(h)
	}
	return h
}
