package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Drawing from the child must not influence the parent's future draws.
	parentCopy := New(7)
	_ = parentCopy.Split() // advance identically
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != parentCopy.Uint64() {
			t.Fatalf("child draws perturbed parent stream at %d", i)
		}
	}
}

func TestSplitLabeledStable(t *testing.T) {
	a := SplitLabeled(99, "channel")
	b := SplitLabeled(99, "channel")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same label, same seed must give same stream")
	}
	c := SplitLabeled(99, "fd")
	d := SplitLabeled(99, "channel")
	d.Uint64()
	if c.Uint64() == d.Uint64() {
		t.Fatal("different labels should give different streams")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean suspicious: %g", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(5)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency %g", frac)
	}
	if s.Bool(0) {
		t.Fatal("Bool(0) must be false")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) must be true")
	}
}

func TestRange(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Range(-5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("Range out of bounds: %d", v)
		}
	}
	if got := s.Range(7, 7); got != 7 {
		t.Fatalf("degenerate range: %d", got)
	}
}

func TestExpMeanRoughlyCorrect(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.3 {
		t.Fatalf("Exp mean %g, want ~10", mean)
	}
	if s.Exp(0) != 0 || s.Exp(-1) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
}

func TestExpCapped(t *testing.T) {
	s := New(17)
	for i := 0; i < 100000; i++ {
		if v := s.Exp(1); v > 64 {
			t.Fatalf("Exp exceeded cap: %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(21)
	for trial := 0; trial < 50; trial++ {
		p := s.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, v := range xs {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestHashStreamStableAndSpread(t *testing.T) {
	if HashStream(1, 2, 3) != HashStream(1, 2, 3) {
		t.Fatal("HashStream not deterministic")
	}
	if HashStream(1, 2, 3) == HashStream(1, 2, 4) {
		t.Fatal("HashStream collision on adjacent inputs")
	}
	if HashStream(1, 2) == HashStream(2, 1) {
		t.Fatal("HashStream must be order sensitive")
	}
}

func TestUint64nQuick(t *testing.T) {
	s := New(31)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(37)
	for i := 0; i < 10000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Coarse 16-bucket chi-square check on Intn.
	s := New(41)
	const buckets = 16
	const n = 160000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	expected := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile ~ 37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-square too large: %g (counts %v)", chi2, counts)
	}
}
