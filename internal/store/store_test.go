package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// both runs a subtest against a fresh Mem and a fresh File store.
func both(t *testing.T, name string, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run(name+"/mem", func(t *testing.T) { fn(t, NewMem()) })
	t.Run(name+"/file", func(t *testing.T) {
		s, err := OpenFile(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		fn(t, s)
	})
}

func TestStoreContract(t *testing.T) {
	both(t, "empty-load", func(t *testing.T, s Store) {
		snap, wal, err := s.Load()
		if err != nil || snap != nil || len(wal) != 0 {
			t.Fatalf("empty store load = (%v, %v, %v)", snap, wal, err)
		}
	})

	both(t, "wal-append-order", func(t *testing.T, s Store) {
		for i := 0; i < 10; i++ {
			if err := s.AppendWAL([]byte{byte(i), 0xaa}); err != nil {
				t.Fatal(err)
			}
		}
		snap, wal, err := s.Load()
		if err != nil || snap != nil {
			t.Fatalf("load = (%v, _, %v)", snap, err)
		}
		if len(wal) != 10 {
			t.Fatalf("wal = %d records, want 10", len(wal))
		}
		for i, r := range wal {
			if !bytes.Equal(r, []byte{byte(i), 0xaa}) {
				t.Fatalf("record %d = %x", i, r)
			}
		}
		st := s.Stats()
		if st.WALRecords != 10 || st.WALBytes != 20 {
			t.Fatalf("stats = %+v", st)
		}
	})

	both(t, "snapshot-compacts", func(t *testing.T, s Store) {
		s.AppendWAL([]byte("pre-1"))
		s.AppendWAL([]byte("pre-2"))
		if err := s.SaveSnapshot([]byte("snap-A")); err != nil {
			t.Fatal(err)
		}
		s.AppendWAL([]byte("post"))
		snap, wal, err := s.Load()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap, []byte("snap-A")) {
			t.Fatalf("snap = %q", snap)
		}
		if len(wal) != 1 || !bytes.Equal(wal[0], []byte("post")) {
			t.Fatalf("wal = %q, want only the post-snapshot record", wal)
		}
		// A second snapshot replaces the first and drops the record.
		if err := s.SaveSnapshot([]byte("snap-B")); err != nil {
			t.Fatal(err)
		}
		snap, wal, _ = s.Load()
		if !bytes.Equal(snap, []byte("snap-B")) || len(wal) != 0 {
			t.Fatalf("after recompaction: snap=%q wal=%d", snap, len(wal))
		}
		st := s.Stats()
		if st.SnapshotSaves != 2 || st.SnapshotBytes != uint64(len("snap-B")) {
			t.Fatalf("stats = %+v", st)
		}
	})

	both(t, "empty-records-and-large", func(t *testing.T, s Store) {
		big := bytes.Repeat([]byte{0x5c}, 64<<10)
		for _, rec := range [][]byte{{}, big, {1}} {
			if err := s.AppendWAL(rec); err != nil {
				t.Fatal(err)
			}
		}
		_, wal, err := s.Load()
		if err != nil || len(wal) != 3 {
			t.Fatalf("load: %v, %d records", err, len(wal))
		}
		if !bytes.Equal(wal[1], big) {
			t.Fatal("large record garbled")
		}
	})

	both(t, "closed-rejects", func(t *testing.T, s Store) {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendWAL([]byte("x")); err != ErrClosed {
			t.Fatalf("append on closed = %v", err)
		}
		if err := s.SaveSnapshot([]byte("x")); err != ErrClosed {
			t.Fatalf("snapshot on closed = %v", err)
		}
		if _, _, err := s.Load(); err != ErrClosed {
			t.Fatalf("load on closed = %v", err)
		}
	})
}

// TestFileStoreSurvivesReopen: a new File on the same directory sees
// everything the old one persisted — the actual crash-restart path.
func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SaveSnapshot([]byte("snap"))
	s.AppendWAL([]byte("r1"))
	s.AppendWAL([]byte("r2"))
	s.Close() // the "crash" (Close only closes the handle; no flush logic pending)

	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, wal, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, []byte("snap")) || len(wal) != 2 {
		t.Fatalf("reopened store lost state: snap=%q wal=%d", snap, len(wal))
	}
	// Appends after reopen extend the same log.
	s2.AppendWAL([]byte("r3"))
	_, wal, _ = s2.Load()
	if len(wal) != 3 || !bytes.Equal(wal[2], []byte("r3")) {
		t.Fatalf("append after reopen: wal=%q", wal)
	}
}

// tornCase truncates or corrupts the WAL file in a specific way and says
// how many records must survive replay.
type tornCase struct {
	name    string
	mangle  func(t *testing.T, path string)
	survive int
}

// TestFileWALTornTail: every flavour of torn tail — header cut short,
// body cut short, checksum garbled, absurd length — loses exactly the
// final record, and the file is truncated so subsequent appends work.
func TestFileWALTornTail(t *testing.T) {
	mkRecords := func(dir string) *File {
		s, err := OpenFile(dir)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := s.AppendWAL([]byte(fmt.Sprintf("record-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		return s
	}
	cases := []tornCase{
		{"header-cut", func(t *testing.T, p string) { chop(t, p, 3) }, 4},
		{"body-cut", func(t *testing.T, p string) { chop(t, p, 12) }, 4},
		{"one-byte-left", func(t *testing.T, p string) { chopTo(t, p, 1) }, 0},
		{"crc-garbled", func(t *testing.T, p string) { flipLastPayloadByte(t, p) }, 4},
		{"length-absurd", func(t *testing.T, p string) { garbleLastLength(t, p) }, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			mkRecords(dir)
			tc.mangle(t, filepath.Join(dir, walFileName))

			s, err := OpenFile(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			_, wal, err := s.Load()
			if err != nil {
				t.Fatalf("torn tail must replay, got %v", err)
			}
			if len(wal) != tc.survive {
				t.Fatalf("%d records survived, want %d", len(wal), tc.survive)
			}
			for i, r := range wal {
				if want := fmt.Sprintf("record-%d", i); string(r) != want {
					t.Fatalf("record %d = %q, want %q", i, r, want)
				}
			}
			// The tear is gone: appending and reloading yields a clean log.
			if err := s.AppendWAL([]byte("after-tear")); err != nil {
				t.Fatal(err)
			}
			_, wal, err = s.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(wal) != tc.survive+1 || string(wal[len(wal)-1]) != "after-tear" {
				t.Fatalf("append after tear: %q", wal)
			}
		})
	}
}

// TestMemTornTail: the in-memory fault injection drops exactly the final
// record, once.
func TestMemTornTail(t *testing.T) {
	m := NewMem()
	m.AppendWAL([]byte("a"))
	m.AppendWAL([]byte("b"))
	m.TearTail()
	_, wal, err := m.Load()
	if err != nil || len(wal) != 1 || string(wal[0]) != "a" {
		t.Fatalf("torn load = %q, %v", wal, err)
	}
	_, wal, _ = m.Load()
	if len(wal) != 1 {
		t.Fatal("tear applied twice")
	}
}

// TestFileSnapshotCorruptionIsLoud: unlike a torn WAL tail, a damaged
// snapshot file fails Load — restarting amnesiac when durable state
// existed would silently break uniformity.
func TestFileSnapshotCorruptionIsLoud(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SaveSnapshot([]byte("precious"))
	s.Close()

	path := filepath.Join(dir, snapFileName)
	data, _ := os.ReadFile(path)
	for _, mangle := range []func([]byte) []byte{
		func(b []byte) []byte { b[len(b)-2] ^= 0xff; return b },         // payload/crc flip
		func(b []byte) []byte { return b[:len(b)-3] },                   // truncated
		func(b []byte) []byte { b[0] = 'X'; return b },                  // bad magic
		func(b []byte) []byte { b[len(snapMagic)] = 99; return b },      // bad version
		func(b []byte) []byte { b[len(snapMagic)+2] ^= 0x01; return b }, // bad length
	} {
		bad := mangle(append([]byte(nil), data...))
		os.WriteFile(path, bad, 0o644)
		s2, err := OpenFile(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s2.Load(); err == nil {
			t.Fatalf("corrupt snapshot loaded silently (mangled to %d bytes)", len(bad))
		}
		s2.Close()
	}
}

// TestFileSnapshotTempLeftover: a temp file abandoned by a crash between
// write and rename is ignored; the previous snapshot remains in force.
func TestFileSnapshotTempLeftover(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SaveSnapshot([]byte("good"))
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, snapFileName+".tmp-666"), []byte("half-writ"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, _, err := s2.Load()
	if err != nil || !bytes.Equal(snap, []byte("good")) {
		t.Fatalf("leftover temp file perturbed load: %q, %v", snap, err)
	}
}

// --- file mangling helpers -------------------------------------------------

func chop(t *testing.T, path string, bytesOff int) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	chopTo(t, path, info.Size()-int64(bytesOff))
}

func chopTo(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

// flipLastPayloadByte flips the final byte of the file — the last byte of
// the last record's payload — so its checksum fails.
func flipLastPayloadByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// garbleLastLength rewrites the last record's length field to an absurd
// value (simulating a torn header whose bytes happen to parse).
func garbleLastLength(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the last frame: walk from the start.
	off := 0
	last := -1
	for off+walFrameLen <= len(data) {
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if off+walFrameLen+n > len(data) {
			break
		}
		last = off
		off += walFrameLen + n
	}
	if last < 0 {
		t.Fatal("no frame found")
	}
	binary.BigEndian.PutUint32(data[last:last+4], maxWALRecord+7)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWALFrameChecksum pins the frame layout (a regression guard for the
// on-disk format: changing it silently would strand existing stores).
func TestWALFrameChecksum(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("layout-pin")
	s.AppendWAL(payload)
	s.Close()
	data, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != walFrameLen+len(payload) {
		t.Fatalf("frame size %d", len(data))
	}
	if binary.BigEndian.Uint32(data[0:4]) != uint32(len(payload)) {
		t.Fatal("length field moved")
	}
	if binary.BigEndian.Uint32(data[4:8]) != crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)) {
		t.Fatal("checksum field moved or algorithm changed")
	}
	if !bytes.Equal(data[walFrameLen:], payload) {
		t.Fatal("payload moved")
	}
}

// flipMutator is a deterministic SnapshotMutator XORing one byte.
type flipMutator struct{ off int }

func (f flipMutator) MutateSnapshot(snap []byte) []byte {
	if len(snap) > 0 {
		snap[f.off%len(snap)] ^= 0xff
	}
	return snap
}

// TestMemSnapshotMutator: the injector rewrites what Load hands out but
// never the stored bytes, and uninstalls cleanly.
func TestMemSnapshotMutator(t *testing.T) {
	m := NewMem()
	if err := m.SaveSnapshot([]byte("pristine")); err != nil {
		t.Fatal(err)
	}
	m.SetSnapshotMutator(flipMutator{off: 0})
	snap, _, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) == "pristine" {
		t.Fatal("mutator not applied")
	}
	m.SetSnapshotMutator(nil)
	snap, _, err = m.Load()
	if err != nil || string(snap) != "pristine" {
		t.Fatalf("stored bytes damaged: %q, %v", snap, err)
	}
}

// TestEncodeSnapshotFileRoundTrip: the exported container encoder is the
// exact inverse of ParseSnapshotFile — and byte-identical to what
// SaveSnapshot writes, so a transferred snapshot and a disk snapshot
// pass one integrity gate.
func TestEncodeSnapshotFileRoundTrip(t *testing.T) {
	payload := []byte("state snapshot payload \x00\xff bytes")
	enc := EncodeSnapshotFile(payload)
	if !IsSnapshotFile(enc) {
		t.Fatal("encoded container lacks the magic")
	}
	got, err := ParseSnapshotFile(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatal("container round trip mangled the payload")
	}
	dir := t.TempDir()
	s, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SaveSnapshot(payload); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(filepath.Join(dir, snapFileName))
	if err != nil {
		t.Fatal(err)
	}
	if string(disk) != string(enc) {
		t.Fatal("SaveSnapshot and EncodeSnapshotFile disagree on the container bytes")
	}
}
