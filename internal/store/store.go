// Package store is the durable-state engine of the crash-recovery
// extension (DESIGN.md §9): it persists a process's URB state as periodic
// compacted snapshots plus an append-only write-ahead log of the events
// that must never be lost between checkpoints (deliveries, tag_ack pins,
// local broadcasts — see internal/urb's DurableEvent).
//
// The engine stores opaque byte blobs: the snapshot payload is the
// canonical urb state codec's output and WAL records are encoded
// urb.DurableEvents, but nothing here depends on either — the store
// layers framing, checksums and crash-safety below the codecs, exactly
// as internal/wire sits below the algorithms.
//
// Two implementations:
//
//   - Mem: an in-memory store for tests and simulations. Deterministic,
//     no I/O, supports fault injection (torn tails) for replay tests.
//   - File: a directory holding snapshot.bin and wal.log. Snapshots
//     replace atomically (write temp, fsync, rename); the WAL is
//     append-only with per-record CRC framing and tolerates a torn tail
//     on replay — a crash mid-append loses at most the record being
//     written, never the prefix.
//
// Compaction contract: SaveSnapshot atomically installs the new snapshot
// and then resets the WAL, so Load returns a snapshot plus only the
// records appended after it. If a crash lands between the snapshot
// rename and the WAL reset, Load returns records the snapshot already
// covers — harmless, because WAL replay is idempotent by design (the urb
// ApplyWAL operations are set inserts).
package store

import (
	"errors"
	"sync"
)

// Store persists one process's durable state.
//
// Implementations must serialise their own operations (hosts call them
// from one goroutine, but recovery tooling may probe concurrently).
type Store interface {
	// SaveSnapshot atomically replaces the stored snapshot with snap and
	// compacts the WAL: records logged before this call are no longer
	// returned by Load.
	SaveSnapshot(snap []byte) error
	// AppendWAL durably appends one record after the current snapshot.
	AppendWAL(rec []byte) error
	// Load returns the latest snapshot (nil if none was ever saved) and
	// the WAL records appended since it, in append order. A torn tail —
	// a final record cut short or failing its checksum — is dropped, not
	// an error: the loss window is exactly the record being written when
	// the crash hit. File-backed stores truncate the tear so subsequent
	// appends extend a clean log.
	Load() (snap []byte, wal [][]byte, err error)
	// Stats reports the store's size counters.
	Stats() Stats
	// Close releases the store's resources. A closed store rejects
	// further writes.
	Close() error
}

// Stats are a store's size counters, the raw material of the recovery
// benchmarks (checkpoint bytes per delivery, WAL length at crash).
type Stats struct {
	// SnapshotBytes is the size of the current snapshot payload.
	SnapshotBytes uint64
	// SnapshotSaves counts SaveSnapshot calls that succeeded.
	SnapshotSaves uint64
	// WALRecords and WALBytes describe the live WAL (records appended
	// since the last snapshot; bytes are payload bytes, excluding
	// framing).
	WALRecords uint64
	WALBytes   uint64
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// SnapshotMutator deterministically rewrites a stored snapshot at Load
// time — the durable-state analogue of a channel.LinkModel deciding a
// frame's fate on the wire. The self-stabilization harness (DESIGN.md
// §13) installs mutators that hand Restore arbitrarily corrupted (but
// digest-valid) state; a mutator must be a pure function of its input so
// fuzz runs stay reproducible. Returning the input unchanged is the
// identity fault.
type SnapshotMutator interface {
	// MutateSnapshot receives a copy of the stored snapshot payload and
	// returns the bytes Load should hand out instead. The copy is owned
	// by the mutator: it may modify it in place and return it.
	MutateSnapshot(snap []byte) []byte
}

// Mem is the in-memory Store used by tests and simulations.
type Mem struct {
	mu     sync.Mutex
	snap   []byte
	wal    [][]byte
	stats  Stats
	closed bool
	// tornTail, when set, makes the next Load behave as if the final
	// record had been half-written: the last WAL record is dropped (fault
	// injection for replay tests; cleared by the Load that honours it).
	tornTail bool
	// mutator, when set, rewrites the snapshot each Load returns (fault
	// injection for self-stabilization tests; the stored bytes are left
	// untouched).
	mutator SnapshotMutator
}

var _ Store = (*Mem)(nil)

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// SaveSnapshot implements Store.
func (m *Mem) SaveSnapshot(snap []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.snap = append([]byte(nil), snap...)
	m.wal = nil
	m.stats.SnapshotBytes = uint64(len(snap))
	m.stats.SnapshotSaves++
	m.stats.WALRecords, m.stats.WALBytes = 0, 0
	return nil
}

// AppendWAL implements Store.
func (m *Mem) AppendWAL(rec []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.wal = append(m.wal, append([]byte(nil), rec...))
	m.stats.WALRecords++
	m.stats.WALBytes += uint64(len(rec))
	return nil
}

// Load implements Store.
func (m *Mem) Load() ([]byte, [][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, nil, ErrClosed
	}
	wal := m.wal
	if m.tornTail && len(wal) > 0 {
		m.stats.WALRecords--
		m.stats.WALBytes -= uint64(len(wal[len(wal)-1]))
		wal = wal[:len(wal)-1]
		m.wal = wal
		m.tornTail = false
	}
	var snap []byte
	if m.snap != nil {
		snap = append([]byte(nil), m.snap...)
		if m.mutator != nil {
			snap = m.mutator.MutateSnapshot(snap)
		}
	}
	out := make([][]byte, len(wal))
	for i, r := range wal {
		out[i] = append([]byte(nil), r...)
	}
	return snap, out, nil
}

// TearTail makes the next Load drop the final WAL record, simulating a
// crash mid-append (fault injection for recovery tests).
func (m *Mem) TearTail() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tornTail = true
}

// SetSnapshotMutator installs (or, with nil, removes) the corruption
// injector applied to every snapshot Load returns. See SnapshotMutator.
func (m *Mem) SetSnapshotMutator(mu SnapshotMutator) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mutator = mu
}

// Stats implements Store.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
