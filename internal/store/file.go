package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// File layout. The snapshot file is
//
//	magic "AURBSNAP" | version u8 | payloadLen u32 | payload | crc32 u32
//
// written to a temp file, fsynced and renamed into place: readers see
// either the old snapshot or the new one, never a half-written mix (a
// temp file left behind by a crash is ignored and overwritten). The WAL
// file is a sequence of records
//
//	recLen u32 | crc32(payload) u32 | payload
//
// appended with a single write each (fsynced per append unless the
// store was opened with OpenFileNoSync). Replay stops at the first record
// whose frame is cut short or whose checksum fails — a torn tail from a
// crash mid-append — and truncates the file there, so the next append
// extends a clean log. crc32 (Castagnoli) catches the partial writes and
// bit rot this layer is responsible for; end-to-end state corruption is
// additionally caught by the urb snapshot codec's fingerprint digest.
const (
	snapMagic    = "AURBSNAP"
	snapFileVer  = 1
	snapFileName = "snapshot.bin"
	walFileName  = "wal.log"

	walFrameLen = 8 // recLen u32 | crc u32
	// maxWALRecord bounds a single record's claimed length: a frame
	// whose length field exceeds it is treated as a tear, bounding the
	// allocation a corrupt length can force. Generous: records are an
	// encoded MsgID plus a few fixed fields, and bodies are capped by
	// wire.MaxBody (60 KiB).
	maxWALRecord = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrSnapshotFile is wrapped by snapshot-file integrity failures. A
// corrupt snapshot is NOT silently dropped (unlike a torn WAL tail, it
// is not an expected crash artefact): recovery must fail loudly rather
// than restart amnesiac.
var ErrSnapshotFile = errors.New("store: snapshot file corrupt")

// File is the file-backed Store: one directory per process, holding
// snapshot.bin and wal.log.
type File struct {
	mu     sync.Mutex
	dir    string
	wal    *os.File
	sync   bool
	stats  Stats
	closed bool
}

var _ Store = (*File)(nil)

// OpenFile opens (creating if needed) the store directory. The WAL is
// opened for appending; an existing store's counters are primed from the
// files so Stats reflects reality after a restart.
//
// Every WAL append is fsynced: the write-ahead contract — the outside
// world never sees an event the store could lose — must hold across OS
// crashes and power loss, not just process crashes. A lost tag_ack pin,
// for instance, would make the recovered process ack under a second
// identity (the phantom-acker over-counting of DESIGN.md §9). Use
// OpenFileNoSync when that window is acceptable.
func OpenFile(dir string) (*File, error) {
	return openFile(dir, true)
}

// OpenFileNoSync is OpenFile without the per-append fsync: appends land
// in the OS page cache and survive process crashes but may be lost to an
// OS crash or power failure. For workloads where the ~per-append fsync
// cost dominates and machine-level durability is provided elsewhere (or
// genuinely not needed).
func OpenFileNoSync(dir string) (*File, error) {
	return openFile(dir, false)
}

func openFile(dir string, sync bool) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &File{dir: dir, wal: wal, sync: sync}
	if info, err := os.Stat(s.snapPath()); err == nil && info.Size() > 0 {
		// Approximate (includes framing); Load refines it to the payload.
		s.stats.SnapshotBytes = uint64(info.Size())
	}
	if err := s.primeWALStats(); err != nil {
		wal.Close()
		return nil, err
	}
	return s, nil
}

func (s *File) snapPath() string { return filepath.Join(s.dir, snapFileName) }

// primeWALStats scans the existing WAL once so counters are meaningful
// before the first Load, and positions the append offset at the end of
// the valid prefix (truncating any torn tail left by a crash).
func (s *File) primeWALStats() error {
	recs, valid, err := scanWAL(s.wal)
	if err != nil {
		return err
	}
	if err := s.wal.Truncate(valid); err != nil {
		return fmt.Errorf("store: truncate torn wal tail: %w", err)
	}
	if _, err := s.wal.Seek(valid, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, r := range recs {
		s.stats.WALRecords++
		s.stats.WALBytes += uint64(len(r))
	}
	return nil
}

// scanWAL reads every whole, checksummed record from the start of f and
// returns them with the byte offset where the valid prefix ends.
func scanWAL(f *os.File) ([][]byte, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	var (
		recs  [][]byte
		valid int64
		head  [walFrameLen]byte
	)
	for {
		if _, err := io.ReadFull(f, head[:]); err != nil {
			// EOF or a frame header cut short: end of the valid prefix.
			return recs, valid, nil
		}
		n := binary.BigEndian.Uint32(head[0:4])
		crc := binary.BigEndian.Uint32(head[4:8])
		if n > maxWALRecord {
			return recs, valid, nil // corrupt length: treat as a tear
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, valid, nil // record body cut short: tear
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return recs, valid, nil // half-written or rotted: tear
		}
		recs = append(recs, payload)
		valid += walFrameLen + int64(n)
	}
}

// SaveSnapshot implements Store: write-temp + fsync + rename, then reset
// the WAL. See the compaction contract in the package doc for the crash
// window between the two steps.
func (s *File) SaveSnapshot(snap []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	buf := EncodeSnapshotFile(snap)

	tmp, err := os.CreateTemp(s.dir, snapFileName+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.snapPath()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.sync {
		// Persist the rename itself: without a directory fsync the new
		// name may not survive a power loss even though the data would.
		if d, err := os.Open(s.dir); err == nil {
			_ = d.Sync() // best-effort: not all filesystems support it
			d.Close()
		}
	}
	// Compact: the WAL restarts after the snapshot. Truncate-in-place
	// keeps the already-open append handle valid.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: compact wal: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.stats.SnapshotBytes = uint64(len(snap))
	s.stats.SnapshotSaves++
	s.stats.WALRecords, s.stats.WALBytes = 0, 0
	return nil
}

// AppendWAL implements Store. One write syscall per record keeps the
// torn-tail window to a single record, which is exactly what Load's
// replay tolerates; the per-append fsync (unless OpenFileNoSync)
// extends the write-ahead guarantee to OS crashes and power loss.
func (s *File) AppendWAL(rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(rec) > maxWALRecord {
		return fmt.Errorf("store: wal record %d bytes exceeds bound %d", len(rec), maxWALRecord)
	}
	frame := make([]byte, walFrameLen+len(rec))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(rec)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(rec, crcTable))
	copy(frame[walFrameLen:], rec)
	if _, err := s.wal.Write(frame); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	s.stats.WALRecords++
	s.stats.WALBytes += uint64(len(rec))
	return nil
}

// Load implements Store. The WAL's valid prefix is returned and any torn
// tail truncated; a corrupt snapshot file is an error (recovery must not
// silently restart from nothing when durable state existed).
func (s *File) Load() ([]byte, [][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrClosed
	}
	snap, err := s.loadSnapshot()
	if err != nil {
		return nil, nil, err
	}
	recs, valid, err := scanWAL(s.wal)
	if err != nil {
		return nil, nil, err
	}
	if err := s.wal.Truncate(valid); err != nil {
		return nil, nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
	}
	if _, err := s.wal.Seek(valid, io.SeekStart); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s.stats.WALRecords = uint64(len(recs))
	s.stats.WALBytes = 0
	for _, r := range recs {
		s.stats.WALBytes += uint64(len(r))
	}
	if snap != nil {
		s.stats.SnapshotBytes = uint64(len(snap))
	}
	return snap, recs, nil
}

// loadSnapshot reads and verifies snapshot.bin; a missing file is a nil
// snapshot (a store that never checkpointed).
func (s *File) loadSnapshot() ([]byte, error) {
	data, err := os.ReadFile(s.snapPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return ParseSnapshotFile(data)
}

// EncodeSnapshotFile frames a snapshot payload in the container format
// (the snapshot.bin layout: magic, version, length, payload, CRC-32C).
// SaveSnapshot writes exactly these bytes, and the join protocol
// (DESIGN.md §13) transfers exactly these bytes chunk by chunk, so a
// received snapshot passes through the same integrity gate as one read
// off disk.
func EncodeSnapshotFile(snap []byte) []byte {
	buf := make([]byte, 0, len(snapMagic)+1+4+len(snap)+4)
	buf = append(buf, snapMagic...)
	buf = append(buf, snapFileVer)
	var scratch [4]byte
	binary.BigEndian.PutUint32(scratch[:], uint32(len(snap)))
	buf = append(buf, scratch[:]...)
	buf = append(buf, snap...)
	binary.BigEndian.PutUint32(scratch[:], crc32.Checksum(snap, crcTable))
	return append(buf, scratch[:]...)
}

// IsSnapshotFile reports whether data begins with the snapshot
// container magic (tooling uses it to distinguish container files from
// raw snapshot payloads).
func IsSnapshotFile(data []byte) bool {
	return len(data) >= len(snapMagic) && string(data[:len(snapMagic)]) == snapMagic
}

// ParseSnapshotFile verifies a snapshot container (the snapshot.bin
// format) and returns its payload. Exposed for tooling
// (cmd/urbcheck -snapshot) so integrity reporting matches what recovery
// would accept.
func ParseSnapshotFile(data []byte) ([]byte, error) {
	if len(data) < len(snapMagic)+1+4+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrSnapshotFile, len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotFile)
	}
	if data[len(snapMagic)] != snapFileVer {
		return nil, fmt.Errorf("%w: unknown container version %d", ErrSnapshotFile, data[len(snapMagic)])
	}
	body := data[len(snapMagic)+1:]
	n := binary.BigEndian.Uint32(body[:4])
	if uint64(n)+8 != uint64(len(body)) {
		return nil, fmt.Errorf("%w: length %d in a %d-byte file", ErrSnapshotFile, n, len(data))
	}
	payload := body[4 : 4+n]
	crc := binary.BigEndian.Uint32(body[4+n:])
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotFile)
	}
	return append([]byte(nil), payload...), nil
}

// Stats implements Store.
func (s *File) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close implements Store.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}

// Dir returns the store's directory (for tooling and logs).
func (s *File) Dir() string { return s.dir }
