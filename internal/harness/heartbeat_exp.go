package harness

import (
	"fmt"

	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/sim"
	"anonurb/internal/workload"
)

// F8HeartbeatVsOracle is figure F8: Algorithm 2 run over the
// heartbeat-based detector realisation versus the grounded oracle, on the
// same workload. Two effects are expected:
//
//   - Deliveries and retirement behave the same: under the synchrony the
//     scenario provides (bounded link delays, generous timeout), the
//     heartbeat detector converges to the same exact views as the
//     oracle.
//   - The heartbeat stack's traffic does NOT fall to zero: ALIVE beats
//     flow forever. The paper's quiescence claim is about the
//     algorithm's messages; a message-based detector pays a permanent
//     background cost — the classic result that quiescence and
//     implementable failure detection cannot both be free.
//
// The "algo retired" column certifies the algorithm-level quiescence for
// both stacks (every process's retransmission set is empty); the
// "copies" columns show the oracle stack's traffic stopping while the
// heartbeat stack's keeps growing with the horizon.
func F8HeartbeatVsOracle(p Params) *Table {
	const n = 5
	horizon := pick(p, sim.Time(3_000), sim.Time(10_000))
	wl := workload.SingleShot{At: 200, Proc: 0, Body: []byte("m")}
	crashes := workload.CrashCount{Count: 1, From: 600, To: 600}

	t := &Table{
		Title: "F8: Algorithm 2 over heartbeat detectors vs the oracle (n=5, loss 0.15, 1 crash)",
		Note: "same workload and horizon; 'copies 1st/2nd half' splits the run at its midpoint " +
			"— the oracle stack goes silent, the heartbeat stack keeps paying for detection",
		Columns: []string{"detector", "delivered-all", "agreement", "algo retired",
			"copies 1st half", "copies 2nd half"},
	}
	for _, algo := range []Algo{AlgoQuiescent, AlgoHeartbeat} {
		out := Run(Scenario{
			Name:             fmt.Sprintf("f8-%v", algo),
			N:                n,
			Algo:             algo,
			Link:             channel.Bernoulli{P: 0.15, D: channel.UniformDelay{Min: 1, Max: 5}},
			Workload:         wl,
			Crashes:          crashes,
			FD:               fd.OracleConfig{Noise: fd.NoiseExact},
			HeartbeatTimeout: 120,
			Seed:             p.Seed + uint64(algo),
			TickEvery:        10,
			MaxTime:          horizon,
			SampleEvery:      horizon / 2,
			FullHorizon:      true,
		})
		_, agree, _ := propertySplit(out)
		retired := true
		for i, st := range out.Result.ProcStats {
			if out.Result.Crashed[i] {
				continue
			}
			if st.MsgSet != 0 {
				retired = false
			}
		}
		var firstHalf, secondHalf uint64
		if len(out.Result.Samples) >= 2 {
			mid := out.Result.Samples[len(out.Result.Samples)/2].CumSent
			firstHalf = mid
			secondHalf = out.Result.Net.Sent - mid
		}
		t.AddRow(algo.String(), yesNo(out.DeliveredAll), okString(agree),
			yesNo(retired), firstHalf, secondHalf)
	}
	return t
}
