package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, column headers and
// string rows. Render produces the aligned text form printed by
// cmd/urbbench and recorded in EXPERIMENTS.md; CSV produces a
// machine-readable form.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned text table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := len(t.Columns) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV returns the comma-separated form (fields with commas or quotes are
// quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
