package harness

import (
	"fmt"

	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/sim"
	"anonurb/internal/workload"
	"anonurb/internal/xrand"
)

var _ workload.Crashes = crashProcZero{}

// T5BaselineGuarantees is experiment T5: what each broadcast abstraction
// of the paper's introduction actually guarantees when the sender crashes
// mid-dissemination over lossy channels. Best-effort broadcast loses
// agreement outright; eager (one-shot flooding) reliable broadcast loses
// it on *lossy* channels because its finitely many relays can all be
// dropped; the URB algorithms keep every property. This reproduces the
// paper's Section I motivation as a measurement.
func T5BaselineGuarantees(p Params) *Table {
	const n = 8
	t := &Table{
		Title: "T5: guarantee comparison across broadcast abstractions (n=8, lossy + one slow process, sender crashes)",
		Note: "single broadcast; the sender crashes 30 time units in; links drop 50% of copies " +
			"and p7's inbound links additionally drop their first 25 copies (fair lossy) — " +
			"one-shot protocols can never reach p7, retransmitting ones always do",
		Columns: []string{"abstraction", "delivered by", "validity", "agreement",
			"integrity", "verdict"},
	}
	algos := []Algo{AlgoBestEffort, AlgoEagerRB, AlgoMajority, AlgoQuiescent, AlgoIDed}
	for _, algo := range algos {
		out := Run(Scenario{
			Name: fmt.Sprintf("t5-%v", algo),
			N:    n,
			Algo: algo,
			Link: channel.SlowSink{Dst: n - 1, K: 25,
				Then: channel.Bernoulli{P: 0.5, D: channel.UniformDelay{Min: 1, Max: 4}}},
			Workload: workload.SingleShot{At: 5, Proc: 0, Body: []byte("m")},
			Crashes:  crashProcZero{At: 30},
			FD:       fd.OracleConfig{Noise: fd.NoiseExact},
			Seed:     p.Seed + uint64(algo),
			MaxTime:  pick(p, sim.Time(8_000), sim.Time(60_000)),
		})
		correctCount := 0
		deliveredCount := 0
		for proc, ds := range out.Result.Deliveries {
			if out.Result.Crashed[proc] {
				continue
			}
			correctCount++
			if len(ds) > 0 {
				deliveredCount++
			}
		}
		valid, agree, integ := propertySplit(out)
		var verdict string
		switch {
		case deliveredCount == correctCount && agree && integ:
			verdict = "full URB guarantee"
		case deliveredCount == 0:
			verdict = "message lost with the sender"
		default:
			verdict = "PARTIAL delivery: agreement broken"
		}
		t.AddRow(algo.String(),
			fmt.Sprintf("%d/%d correct", deliveredCount, correctCount),
			okString(valid), okString(agree), okString(integ), verdict)
	}
	return t
}

// crashProcZero crashes exactly process 0 at the given time (the sender
// in T5's workload).
type crashProcZero struct{ At sim.Time }

// Generate implements workload.Crashes.
func (c crashProcZero) Generate(n int, _ *xrand.Source) []sim.Time {
	out := make([]sim.Time, n)
	for i := range out {
		out[i] = sim.Never
	}
	out[0] = c.At
	return out
}

// String implements workload.Crashes.
func (c crashProcZero) String() string { return fmt.Sprintf("crash-sender@%d", c.At) }

// F7AnonymityCost is figure F7: the wire-level cost of anonymity and of
// uniformity. It compares bytes and copies per broadcast across the
// abstractions on a mildly lossy network where everything converges, so
// the overheads are attributable to the protocol, not to recovery.
// Expected shape: BEB ≈ n copies; eager RB ≈ n² copies; the URBs pay the
// retransmit-until-acknowledged loop, with the anonymous Algorithm 1
// costing the same copies as the ID-based URB but fatter ACKs (16-byte
// random tags versus 8-byte identities), and Algorithm 2 adding the label
// sets.
func F7AnonymityCost(p Params) *Table {
	const n = 6
	t := &Table{
		Title: "F7: the wire cost of anonymity and uniformity (n=6, loss 0.1, 4 broadcasts)",
		Note: "measured to convergence (URBs keep retransmitting after it; " +
			"alg2 measured to quiescence); bytes = encoded wire bytes offered to links",
		Columns: []string{"abstraction", "copies/bcast", "bytes/bcast", "lat mean",
			"delivers everywhere"},
	}
	wl := workload.MultiWriter{Writers: 2, PerWriter: 2, Start: 5, Interval: 40}
	algos := []Algo{AlgoBestEffort, AlgoEagerRB, AlgoIDed, AlgoMajority, AlgoQuiescent}
	for _, algo := range algos {
		scen := Scenario{
			Name:     fmt.Sprintf("f7-%v", algo),
			N:        n,
			Algo:     algo,
			Link:     channel.Bernoulli{P: 0.1, D: channel.UniformDelay{Min: 1, Max: 4}},
			Workload: wl,
			FD:       fd.OracleConfig{Noise: fd.NoiseExact},
			Seed:     p.Seed + 31*uint64(algo),
			MaxTime:  200_000,
		}
		if algo == AlgoQuiescent {
			scen.StopWhenQuiet = 200
		}
		out := Run(scen)
		copies := float64(out.Result.Net.Sent) / float64(out.Issued)
		bytes := float64(out.Result.Net.Bytes) / float64(out.Issued)
		t.AddRow(algo.String(), copies, bytes, out.Latency.Mean(), yesNo(out.DeliveredAll))
	}
	return t
}
