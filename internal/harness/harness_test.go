package harness

import (
	"fmt"
	"strings"
	"testing"

	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/workload"
)

func quick() Params { return Params{Seed: 2024, Quick: true} }

func TestRunMajorityScenario(t *testing.T) {
	out := Run(Scenario{
		Name:     "unit-majority",
		N:        5,
		Algo:     AlgoMajority,
		Link:     lossLink(0.2),
		Workload: workload.MultiWriter{Writers: 2, PerWriter: 2, Start: 5, Interval: 20},
		Crashes:  workload.CrashCount{Count: 2, From: 60, To: 90},
		Seed:     7,
	})
	out.MustConverge()
	if out.Issued != 4 {
		t.Fatalf("issued %d", out.Issued)
	}
	if out.Latency.Count() == 0 || out.Latency.Mean() <= 0 {
		t.Fatal("latency not measured")
	}
	if out.MsgsPerBroadcast() <= 0 {
		t.Fatal("msgs per broadcast")
	}
	if out.QuiesceTime != -1 {
		t.Fatal("majority must not quiesce")
	}
}

func TestRunQuiescentScenario(t *testing.T) {
	out := Run(Scenario{
		Name:          "unit-quiescent",
		N:             4,
		Algo:          AlgoQuiescent,
		Link:          lossLink(0.15),
		Workload:      workload.SingleShot{At: 5, Proc: 0, Body: []byte("q")},
		Crashes:       workload.CrashCount{Count: 1, From: 70, To: 70},
		FD:            fd.OracleConfig{Noise: fd.NoiseExact},
		Seed:          9,
		StopWhenQuiet: 200,
	})
	out.MustConverge()
	if out.QuiesceTime < 0 {
		t.Fatal("expected quiescence")
	}
	if out.Oracle == nil {
		t.Fatal("oracle should be exposed")
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() Outcome {
		return Run(Scenario{
			Name: "det", N: 4, Algo: AlgoMajority, Link: lossLink(0.3),
			Workload: workload.SingleShot{At: 3, Proc: 1, Body: []byte("d")}, Seed: 55,
		})
	}
	a, b := mk(), mk()
	if a.Result.EndTime != b.Result.EndTime || a.Result.Net != b.Result.Net {
		t.Fatal("scenario replay diverged")
	}
	if a.Latency.Mean() != b.Latency.Mean() {
		t.Fatal("latency diverged")
	}
}

func TestScenarioValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("n", func() { Run(Scenario{}) })
	mustPanic("link", func() {
		Run(Scenario{N: 2, Workload: workload.SingleShot{}})
	})
	mustPanic("workload", func() {
		Run(Scenario{N: 2, Link: channel.Blackhole{}})
	})
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"a", "bb"},
	}
	tb.AddRow(1, "x,y")
	tb.AddRow(2.5, "z\"q")
	text := tb.Render()
	if !strings.Contains(text, "== demo ==") || !strings.Contains(text, "a note") {
		t.Fatalf("render: %s", text)
	}
	if !strings.Contains(text, "2.50") {
		t.Fatal("float formatting")
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"z""q"`) {
		t.Fatalf("csv quoting: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Fatalf("csv header: %s", csv)
	}
}

func TestAlgoString(t *testing.T) {
	if AlgoMajority.String() == "" || AlgoQuiescent.String() == "" ||
		AlgoMajorityLowered.String() == "" || Algo(9).String() == "" {
		t.Fatal("algo strings")
	}
}

func TestT1CorrectnessQuick(t *testing.T) {
	tb := T1Correctness(quick())
	if len(tb.Rows) != 4 { // 2 sizes x 2 losses
		t.Fatalf("rows %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		for _, cell := range r[3:7] {
			if cell == "VIOLATED" || cell == "no" {
				t.Fatalf("T1 violation: %v", r)
			}
		}
	}
}

func TestT2ImpossibilityQuick(t *testing.T) {
	tb := T2Impossibility(quick())
	if len(tb.Rows) != 4 { // 2 sizes x 2 variants
		t.Fatalf("rows %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		variant, outcome := r[2], r[6]
		if strings.Contains(outcome, "UNEXPECTED") {
			t.Fatalf("T2 unexpected outcome: %v", r)
		}
		if variant == "alg1-lowered" && !strings.Contains(outcome, "violation") {
			t.Fatalf("lowered threshold should violate agreement: %v", r)
		}
		if variant == "alg1-majority" && !strings.Contains(outcome, "blocked") {
			t.Fatalf("true majority should block: %v", r)
		}
	}
}

func TestT3CrashToleranceQuick(t *testing.T) {
	tb := T3CrashTolerance(quick())
	for _, r := range tb.Rows {
		tol, a1Delivers, a1Safe, a2Delivers, a2Safe, a2Quiet := r[0], r[1], r[2], r[3], r[4], r[5]
		if a1Safe != "ok" || a2Safe != "ok" {
			t.Fatalf("safety violated at t=%s: %v", tol, r)
		}
		if a2Delivers != "yes" || a2Quiet != "yes" {
			t.Fatalf("alg2 should deliver and quiesce at every t: %v", r)
		}
		switch tol {
		case "0", "1", "2":
			if a1Delivers != "yes" {
				t.Fatalf("alg1 should deliver at t=%s: %v", tol, r)
			}
		case "3", "4", "5":
			if a1Delivers != "no" {
				t.Fatalf("alg1 cannot deliver at t=%s (t >= n/2): %v", tol, r)
			}
		}
	}
}

func TestT4FDAblationQuick(t *testing.T) {
	tb := T4FDAblation(quick())
	sawHazard := false
	for _, r := range tb.Rows {
		reveal, agree := r[0], r[3]
		if reveal == "0" && agree != "ok" {
			t.Fatalf("audience-restricted detector must be safe: %v", r)
		}
		if reveal == "1" && agree == "VIOLATED" {
			sawHazard = true
		}
	}
	if !sawHazard {
		t.Fatal("T4 did not reproduce the reveal-to-faulty hazard")
	}
}

func TestF1QuiescenceCurveQuick(t *testing.T) {
	tb := F1QuiescenceCurve(quick())
	if len(tb.Rows) < 10 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// Alg2's curve must flatten: last two samples equal. Alg1's must not.
	last, prev := tb.Rows[len(tb.Rows)-1], tb.Rows[len(tb.Rows)-2]
	if last[2] != prev[2] {
		t.Fatalf("alg2 still sending at horizon: %v vs %v", prev, last)
	}
	if last[1] == prev[1] {
		t.Fatalf("alg1 stopped sending: %v vs %v", prev, last)
	}
}

func TestF2LatencyVsLossQuick(t *testing.T) {
	tb := F2LatencyVsLoss(quick())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// Latency must grow with loss (first vs last row, mean column; the
	// cell format is "mean±std").
	parse := func(cell string) float64 {
		var mean, std float64
		if _, err := fmt.Sscanf(cell, "%f±%f", &mean, &std); err != nil {
			t.Fatalf("cell %q: %v", cell, err)
		}
		return mean
	}
	first := parse(tb.Rows[0][1])
	last := parse(tb.Rows[len(tb.Rows)-1][1])
	if first >= last {
		t.Fatalf("latency did not grow with loss: %g vs %g", first, last)
	}
}

func TestF3MessagesVsNQuick(t *testing.T) {
	tb := F3MessagesVsN(quick())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
}

func TestF4QuiescenceVsGSTQuick(t *testing.T) {
	tb := F4QuiescenceVsGST(quick())
	for _, r := range tb.Rows {
		if r[1] != "yes" {
			t.Fatalf("not quiescent at GST=%s", r[0])
		}
	}
}

func TestF5MemoryFootprintQuick(t *testing.T) {
	tb := F5MemoryFootprint(quick())
	if len(tb.Rows) < 8 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[2] != "0.00" {
		t.Fatalf("alg2 MSG set should be empty at horizon: %v", last)
	}
	if last[1] == "0.00" {
		t.Fatalf("alg1 MSG set should stay populated: %v", last)
	}
}

func TestF6FastDeliveryQuick(t *testing.T) {
	tb := F6FastDelivery(quick())
	for _, r := range tb.Rows {
		if r[3] != "ok" {
			t.Fatalf("agreement violated in F6: %v", r)
		}
	}
}

func TestAllExperimentsListed(t *testing.T) {
	exps := AllExperiments()
	if len(exps) != 14 {
		t.Fatalf("experiments: %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.Gen == nil || e.ID == "" || seen[e.ID] {
			t.Fatalf("bad experiment entry %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestT5BaselineGuaranteesQuick(t *testing.T) {
	tb := T5BaselineGuarantees(quick())
	if len(tb.Rows) != 5 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	byAlgo := map[string][]string{}
	for _, r := range tb.Rows {
		byAlgo[r[0]] = r
	}
	// The URB family must keep every guarantee.
	for _, a := range []string{"alg1-majority", "alg2-quiescent", "ided-urb"} {
		r, ok := byAlgo[a]
		if !ok {
			t.Fatalf("missing row for %s", a)
		}
		if r[3] != "ok" || r[4] != "ok" {
			t.Fatalf("%s should keep agreement+integrity: %v", a, r)
		}
		if r[5] != "full URB guarantee" {
			t.Fatalf("%s verdict: %v", a, r)
		}
	}
	// Best-effort must visibly break (partial or lost).
	if r := byAlgo["best-effort"]; r[5] == "full URB guarantee" {
		t.Fatalf("best-effort should not earn the URB verdict: %v", r)
	}
}

func TestF7AnonymityCostQuick(t *testing.T) {
	tb := F7AnonymityCost(quick())
	if len(tb.Rows) != 5 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	byAlgo := map[string][]string{}
	for _, r := range tb.Rows {
		byAlgo[r[0]] = r
	}
	for _, a := range []string{"ided-urb", "alg1-majority", "alg2-quiescent"} {
		if byAlgo[a][4] != "yes" {
			t.Fatalf("%s should deliver everywhere on a mild network: %v", a, byAlgo[a])
		}
	}
}

func TestF8HeartbeatVsOracleQuick(t *testing.T) {
	tb := F8HeartbeatVsOracle(quick())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r[1] != "yes" || r[2] != "ok" || r[3] != "yes" {
			t.Fatalf("both stacks must deliver, agree and retire: %v", r)
		}
	}
	// The oracle stack must be silent in the second half; the heartbeat
	// stack must not (beats keep flowing).
	byAlgo := map[string][]string{}
	for _, r := range tb.Rows {
		byAlgo[r[0]] = r
	}
	if byAlgo["alg2-quiescent"][5] != "0" {
		t.Fatalf("oracle stack should be silent in the 2nd half: %v", byAlgo["alg2-quiescent"])
	}
	if byAlgo["alg2-heartbeat"][5] == "0" {
		t.Fatalf("heartbeat stack should keep beating: %v", byAlgo["alg2-heartbeat"])
	}
}

func TestReplicateAndSummarize(t *testing.T) {
	outs := Replicate(Scenario{
		Name: "rep", N: 4, Algo: AlgoMajority, Link: lossLink(0.2),
		Workload: workload.SingleShot{At: 5, Proc: 0, Body: []byte("r")}, Seed: 77,
	}, 4)
	if len(outs) != 4 {
		t.Fatalf("replicas %d", len(outs))
	}
	// Distinct seeds must actually vary the runs (names too).
	if outs[0].Scenario.Seed == outs[1].Scenario.Seed {
		t.Fatal("replicas share a seed")
	}
	if outs[0].Scenario.Name == outs[1].Scenario.Name {
		t.Fatal("replicas share a name")
	}
	agg := Summarize(outs)
	if agg.Runs != 4 || !agg.AllConverged || !agg.AllClean {
		t.Fatalf("aggregate %+v", agg)
	}
	if agg.LatencyMean <= 0 || agg.CopiesMean <= 0 {
		t.Fatalf("aggregate stats %+v", agg)
	}
	if agg.QuiesceMean != -1 {
		t.Fatal("majority runs cannot quiesce")
	}
}

func TestReplicateClampsK(t *testing.T) {
	outs := Replicate(Scenario{
		Name: "clamp", N: 2, Algo: AlgoMajority, Link: lossLink(0),
		Workload: workload.SingleShot{At: 5, Proc: 0, Body: []byte("c")}, Seed: 1,
	}, 0)
	if len(outs) != 1 {
		t.Fatalf("k=0 should clamp to 1, got %d", len(outs))
	}
}

func TestT6PriceOfUniformityQuick(t *testing.T) {
	tb := T6PriceOfUniformity(quick())
	if len(tb.Rows) != 6 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		scenario, abstraction, uniform, correctOnly := r[0], r[1], r[3], r[4]
		if scenario == "benign" && uniform != "ok" {
			t.Fatalf("benign run broke agreement: %v", r)
		}
		if scenario == "adversarial" {
			switch abstraction {
			case "anon-rb":
				if uniform != "VIOLATED" {
					t.Fatalf("anon RB should break UNIFORM agreement here: %v", r)
				}
				if correctOnly != "ok" {
					t.Fatalf("anon RB must keep correct-only agreement: %v", r)
				}
			default:
				if uniform != "ok" {
					t.Fatalf("URB must stay safe under the adversary: %v", r)
				}
			}
		}
	}
}
