package harness

import (
	"fmt"

	"anonurb/internal/metrics"
)

// Replicate runs the same scenario under k different seeds (derived from
// the scenario's base seed) and returns the outcomes. Sweeps use it to
// report means across runs instead of single-seed point estimates.
func Replicate(s Scenario, k int) []Outcome {
	if k < 1 {
		k = 1
	}
	out := make([]Outcome, 0, k)
	for i := 0; i < k; i++ {
		r := s
		r.Seed = s.Seed + uint64(i)*0x9e3779b9
		r.Name = fmt.Sprintf("%s#%d", s.Name, i)
		out = append(out, Run(r))
	}
	return out
}

// Aggregate summarises a replicated sweep.
type Aggregate struct {
	// Runs is the number of replicas.
	Runs int
	// LatencyMean / LatencyStd aggregate the per-run mean latencies.
	LatencyMean, LatencyStd float64
	// P99Mean aggregates the per-run p99 latencies.
	P99Mean float64
	// CopiesMean aggregates total link copies per run.
	CopiesMean float64
	// QuiesceMean aggregates quiescence times over the quiescent runs;
	// -1 if none was quiescent.
	QuiesceMean float64
	// AllConverged reports that every replica delivered everywhere.
	AllConverged bool
	// AllClean reports that no replica violated any URB property.
	AllClean bool
}

// Summarize reduces replicated outcomes to an Aggregate.
func Summarize(outs []Outcome) Aggregate {
	agg := Aggregate{Runs: len(outs), AllConverged: true, AllClean: true, QuiesceMean: -1}
	var lat, p99, copies, quiesce metrics.Welford
	for _, o := range outs {
		lat.Add(o.Latency.Mean())
		p99.Add(float64(o.Latency.Quantile(0.99)))
		copies.Add(float64(o.Result.Net.Sent))
		if o.QuiesceTime >= 0 {
			quiesce.Add(float64(o.QuiesceTime))
		}
		if !o.DeliveredAll {
			agg.AllConverged = false
		}
		if !o.Report.OK() {
			agg.AllClean = false
		}
	}
	agg.LatencyMean = lat.Mean()
	agg.LatencyStd = lat.Std()
	agg.P99Mean = p99.Mean()
	agg.CopiesMean = copies.Mean()
	if quiesce.N() > 0 {
		agg.QuiesceMean = quiesce.Mean()
	}
	return agg
}
