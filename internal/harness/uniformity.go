package harness

import (
	"fmt"

	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/sim"
	"anonurb/internal/workload"
	"anonurb/internal/xrand"
)

// T6PriceOfUniformity is experiment T6: what uniformity costs and what it
// buys, comparing the paper's URB algorithms against the companion
// technical report's anonymous (non-uniform) reliable broadcast
// (rb.AnonymousRB, the paper's reference [21]).
//
// Two scenarios:
//
//   - "benign": a lossy run with a mid-run crash of a non-broadcaster.
//     RB delivers on first reception — about one link delay — while the
//     URBs wait for a majority of ACKs / detector-certified evidence.
//     Uniformity costs roughly one round-trip of latency.
//   - "adversarial": the broadcaster delivers and instantly crashes,
//     with every copy it ever sent lost (legal: finitely many sends).
//     RB has delivered at a process that is now dead while no correct
//     process ever can — UNIFORM agreement is violated (plain agreement
//     among correct processes is vacuously fine, which is exactly the
//     distinction the paper draws in Section I). The URBs refuse to
//     deliver without evidence and stay safe.
func T6PriceOfUniformity(p Params) *Table {
	const n = 5
	t := &Table{
		Title: "T6: the price of uniformity — anonymous RB [21] vs URB (n=5)",
		Note: "benign: loss 0.2, one non-writer crash; adversarial: the broadcaster " +
			"delivers, crashes, and all its copies are lost",
		Columns: []string{"scenario", "abstraction", "latency mean", "uniform agreement",
			"correct-only agreement", "note"},
	}

	// Benign latency comparison.
	for _, algo := range []Algo{AlgoAnonRB, AlgoMajority, AlgoQuiescent} {
		out := Run(Scenario{
			Name:     fmt.Sprintf("t6-benign-%v", algo),
			N:        n,
			Algo:     algo,
			Link:     lossLink(0.2),
			Workload: workload.MultiWriter{Writers: 2, PerWriter: 3, Start: 5, Interval: 40},
			Crashes:  workload.CrashCount{Count: 1, From: 60, To: 60},
			FD:       fd.OracleConfig{Noise: fd.NoiseExact},
			Seed:     p.Seed + uint64(algo),
			MaxTime:  pick(p, sim.Time(60_000), sim.Time(200_000)),
		})
		out.MustConverge()
		_, agree, _ := propertySplit(out)
		t.AddRow("benign", algo.String(), out.Latency.Mean(), okString(agree), "ok",
			"all correct deliver")
	}

	// Adversarial: broadcaster delivers then dies, copies all lost.
	for _, algo := range []Algo{AlgoAnonRB, AlgoMajority, AlgoQuiescent} {
		crashAfter := make([]int, n)
		crashAfter[0] = 1
		out := Run(Scenario{
			Name: fmt.Sprintf("t6-adv-%v", algo),
			N:    n,
			Algo: algo,
			// Copies from p0 are black-holed; everything else reliable.
			Link:                 senderBlackhole{src: 0},
			Workload:             workload.SingleShot{At: 5, Proc: 0, Body: []byte("m")},
			CrashAfterDeliveries: crashAfter,
			FD:                   fd.OracleConfig{Noise: fd.NoiseExact},
			Seed:                 p.Seed + 71*uint64(algo),
			MaxTime:              3_000,
		})
		_, uniformAgree, _ := propertySplit(out)
		// Correct-only agreement: did any CORRECT process deliver while
		// another correct one did not?
		correctDelivered, correctTotal := 0, 0
		for proc, ds := range out.Result.Deliveries {
			if out.Result.Crashed[proc] {
				continue
			}
			correctTotal++
			if len(ds) > 0 {
				correctDelivered++
			}
		}
		correctOnly := correctDelivered == 0 || correctDelivered == correctTotal
		note := "refused to deliver without evidence"
		if !uniformAgree {
			note = "delivered at the dead broadcaster only"
		}
		t.AddRow("adversarial", algo.String(), out.Latency.Mean(),
			okString(uniformAgree), okString(correctOnly), note)
	}
	return t
}

// senderBlackhole drops every copy originating at src and is reliable
// elsewhere. Combined with a sender that crashes after finitely many
// sends this is legal fair-lossy behaviour (the R2 construction,
// single-process edition).
type senderBlackhole struct{ src int }

func (s senderBlackhole) Judge(now int64, src, dst int, attempt uint64, rng *xrand.Source) channel.Verdict {
	if src == s.src {
		return channel.Verdict{Drop: true}
	}
	return channel.Verdict{Delay: 2}
}

func (s senderBlackhole) String() string { return fmt.Sprintf("senderblackhole(p%d)", s.src) }
