package harness

import (
	"fmt"

	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/sim"
	"anonurb/internal/urb"
	"anonurb/internal/workload"
)

// F1QuiescenceCurve is figure F1: cumulative wire traffic over virtual
// time for Algorithm 1 vs Algorithm 2 on the same workload. Algorithm 1's
// curve grows linearly forever (Task 1 never stops); Algorithm 2's curve
// flattens once every message is retired — Theorem 3's quiescence made
// visible.
func F1QuiescenceCurve(p Params) *Table {
	const n = 5
	horizon := pick(p, sim.Time(2_000), sim.Time(6_000))
	sampleEvery := horizon / 20
	wl := workload.MultiWriter{Writers: 2, PerWriter: 2, Start: 5, Interval: 40}
	crash := workload.CrashCount{Count: 1, From: 100, To: 100}

	run := func(algo Algo) Outcome {
		return Run(Scenario{
			Name: fmt.Sprintf("f1-%v", algo), N: n, Algo: algo,
			Link: lossLink(0.2), Workload: wl, Crashes: crash,
			FD:          fd.OracleConfig{Noise: fd.NoiseExact},
			Seed:        p.Seed,
			MaxTime:     horizon,
			SampleEvery: sampleEvery,
			FullHorizon: true,
		})
	}
	a1, a2 := run(AlgoMajority), run(AlgoQuiescent)

	t := &Table{
		Title: "F1: cumulative link copies vs virtual time (quiescence curve)",
		Note: fmt.Sprintf("n=%d, loss 0.2, 1 crash at t=100, %s; alg2 flattens, alg1 never does",
			n, wl),
		Columns: []string{"time", "alg1 cum copies", "alg2 cum copies"},
	}
	for i := range a1.Result.Samples {
		s1 := a1.Result.Samples[i]
		v2 := uint64(0)
		if i < len(a2.Result.Samples) {
			v2 = a2.Result.Samples[i].CumSent
		} else if len(a2.Result.Samples) > 0 {
			v2 = a2.Result.Samples[len(a2.Result.Samples)-1].CumSent
		}
		t.AddRow(s1.At, s1.CumSent, v2)
	}
	if len(a2.Result.Samples) > 1 {
		last := a2.Result.Samples[len(a2.Result.Samples)-1]
		prev := a2.Result.Samples[len(a2.Result.Samples)-2]
		if last.CumSent == prev.CumSent {
			t.Note += fmt.Sprintf("; alg2 last send at t=%d", a2.Result.LastSend)
		}
	}
	return t
}

// F2LatencyVsLoss is figure F2: delivery latency as a function of the
// per-copy loss probability, for both algorithms, plus the eager-send
// ablation. Latency grows with loss roughly like the expected number of
// retransmission rounds, 1/(1-p); fairness keeps delivery alive even at
// 70% loss.
func F2LatencyVsLoss(p Params) *Table {
	const n = 5
	losses := pick(p, []float64{0, 0.3, 0.6}, []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7})
	reps := pick(p, 2, 5)
	wl := workload.MultiWriter{Writers: 2, PerWriter: 3, Start: 5, Interval: 50}

	t := &Table{
		Title: fmt.Sprintf("F2: delivery latency vs loss rate (n=5, no crashes, mean over %d seeds)", reps),
		Note: "latency in virtual time units (tick period = 10, delay 1-5); " +
			"eager = first MSG sent immediately instead of at the next tick",
		Columns: []string{"loss", "alg1 mean±std", "alg1 p99", "alg2 mean±std", "alg2 p99",
			"alg1-eager mean"},
	}
	for _, loss := range losses {
		run := func(algo Algo, cfg urb.Config) Aggregate {
			outs := Replicate(Scenario{
				Name: fmt.Sprintf("f2-%v-l%g", algo, loss), N: n, Algo: algo, URB: cfg,
				Link: lossLink(loss), Workload: wl,
				FD:   fd.OracleConfig{Noise: fd.NoiseExact},
				Seed: p.Seed + uint64(loss*1000), MaxTime: 2_000_000,
			}, reps)
			agg := Summarize(outs)
			if !agg.AllConverged || !agg.AllClean {
				panic(fmt.Sprintf("harness: F2 replica failed at loss %g algo %v", loss, algo))
			}
			return agg
		}
		a1 := run(AlgoMajority, urb.Config{})
		a2 := run(AlgoQuiescent, urb.Config{})
		eager := run(AlgoMajority, urb.Config{EagerFirstSend: true})
		t.AddRow(loss,
			fmt.Sprintf("%.1f±%.1f", a1.LatencyMean, a1.LatencyStd), a1.P99Mean,
			fmt.Sprintf("%.1f±%.1f", a2.LatencyMean, a2.LatencyStd), a2.P99Mean,
			eager.LatencyMean)
	}
	return t
}

// F3MessagesVsN is figure F3: message complexity as a function of system
// size. Both algorithms broadcast O(n) wire messages per reception (one
// ACK per MSG copy received), so link copies grow quadratically; the
// difference is the horizon — Algorithm 2's total is bounded (it stops at
// quiescence), Algorithm 1's grows with the measurement window.
func F3MessagesVsN(p Params) *Table {
	ns := pick(p, []int{3, 7}, []int{3, 5, 7, 9, 13, 17, 21})
	t := &Table{
		Title: "F3: message complexity vs system size (loss 0.2, single broadcast)",
		Note: "alg1 measured until every process delivered (it would keep sending); " +
			"alg2 measured until quiescence (its total is final)",
		Columns: []string{"n", "alg1 copies@converge", "alg2 copies@quiescent",
			"alg2 copies/n^2", "alg2 quiesce time"},
	}
	for _, n := range ns {
		wl := workload.SingleShot{At: 5, Proc: 0, Body: []byte("m")}
		a1 := Run(Scenario{
			Name: fmt.Sprintf("f3-alg1-n%d", n), N: n, Algo: AlgoMajority,
			Link: lossLink(0.2), Workload: wl,
			Seed: p.Seed + uint64(n), MaxTime: 1_000_000,
		})
		a1.MustConverge()
		a2 := Run(Scenario{
			Name: fmt.Sprintf("f3-alg2-n%d", n), N: n, Algo: AlgoQuiescent,
			Link: lossLink(0.2), Workload: wl,
			FD:   fd.OracleConfig{Noise: fd.NoiseExact},
			Seed: p.Seed + uint64(n), MaxTime: 1_000_000, StopWhenQuiet: 300,
		})
		a2.MustConverge()
		perN2 := float64(a2.Result.Net.Sent) / float64(n*n)
		t.AddRow(n, a1.Result.Net.Sent, a2.Result.Net.Sent, perN2, a2.QuiesceTime)
	}
	return t
}

// F4QuiescenceVsGST is figure F4: the time to quiescence as a function of
// the failure detector stabilisation time. Retirement needs the exact
// post-GST views, so quiescence tracks GST with a roughly constant
// protocol overhead on top — the cost of trusting an eventually-perfect
// detector (Theorem 3's proof waits for AP* to stabilise).
func F4QuiescenceVsGST(p Params) *Table {
	const n = 5
	gsts := pick(p, []sim.Time{0, 200, 400}, []sim.Time{0, 100, 200, 400, 600, 800})
	t := &Table{
		Title:   "F4: quiescence time vs failure detector stabilisation (n=5, 1 crash, loss 0.2)",
		Note:    "benign pre-GST noise; quiesce time = virtual time of the last wire send",
		Columns: []string{"GST", "quiescent", "quiesce time", "delivery mean", "copies total"},
	}
	for _, gst := range gsts {
		out := Run(Scenario{
			Name: fmt.Sprintf("f4-gst%d", gst), N: n, Algo: AlgoQuiescent,
			Link:     lossLink(0.2),
			Workload: workload.SingleShot{At: 5, Proc: 0, Body: []byte("m")},
			Crashes:  workload.CrashCount{Count: 1, From: 50, To: 50},
			FD:       fd.OracleConfig{Noise: fd.NoiseBenign, GST: int64(gst), NoisePeriod: 25},
			Seed:     p.Seed + uint64(gst),
			MaxTime:  1_000_000, StopWhenQuiet: 400,
		})
		out.MustConverge()
		t.AddRow(gst, yesNo(out.QuiesceTime >= 0), out.QuiesceTime,
			out.Latency.Mean(), out.Result.Net.Sent)
	}
	return t
}

// F5MemoryFootprint is figure F5: the algorithms' internal set sizes over
// time. Algorithm 2 deletes retired messages from MSG (line 57), so its
// retransmission state returns to zero; Algorithm 1's MSG set is
// monotone — the memory cost of non-quiescence.
func F5MemoryFootprint(p Params) *Table {
	const n = 5
	horizon := pick(p, sim.Time(2_000), sim.Time(6_000))
	wl := workload.MultiWriter{Writers: 2, PerWriter: 3, Start: 5, Interval: 60}

	run := func(algo Algo) Outcome {
		return Run(Scenario{
			Name: fmt.Sprintf("f5-%v", algo), N: n, Algo: algo,
			Link: lossLink(0.15), Workload: wl,
			FD:          fd.OracleConfig{Noise: fd.NoiseExact},
			Seed:        p.Seed,
			MaxTime:     horizon,
			SampleEvery: horizon / 15,
			FullHorizon: true,
		})
	}
	a1, a2 := run(AlgoMajority), run(AlgoQuiescent)
	t := &Table{
		Title:   "F5: retransmission-set size over time (n=5, 6 broadcasts)",
		Note:    "values are the mean |MSG_i| over processes; alg2 returns to 0 after retirement",
		Columns: []string{"time", "alg1 avg |MSG|", "alg2 avg |MSG|", "alg2 retired total"},
	}
	avgMsg := func(s sim.Sample) float64 {
		total := 0
		for _, st := range s.Stats {
			total += st.MsgSet
		}
		return float64(total) / float64(len(s.Stats))
	}
	sumRetired := func(s sim.Sample) int {
		total := 0
		for _, st := range s.Stats {
			total += st.Retired
		}
		return total
	}
	for i := range a1.Result.Samples {
		s1 := a1.Result.Samples[i]
		var m2 float64
		var r2 int
		if i < len(a2.Result.Samples) {
			m2 = avgMsg(a2.Result.Samples[i])
			r2 = sumRetired(a2.Result.Samples[i])
		}
		t.AddRow(s1.At, avgMsg(s1), m2, r2)
	}
	return t
}

// F6FastDelivery is figure F6: how often the paper's "fast delivery"
// happens (URB-deliver assembled from ACKs before any MSG copy arrived)
// as a function of the retransmission period, plus the adversarial
// deliver-then-crash run showing uniform agreement survives it.
//
// The driver is the race between a process's own (lost or late) MSG copy
// and the ACKs triggered by everyone else's receptions: the longer the
// Task-1 period, the longer a dropped MSG copy takes to be replaced and
// the more likely the majority of ACKs wins the race.
func F6FastDelivery(p Params) *Table {
	const n = 5
	periods := pick(p, []sim.Time{10, 80}, []sim.Time{5, 10, 20, 40, 80})
	t := &Table{
		Title: "F6: fast deliveries vs retransmission period (alg1, n=5, loss 0.3)",
		Note: "fast = delivered on ACK evidence before receiving the MSG itself; " +
			"slower retransmission ⇒ lost MSG copies take longer to replace ⇒ ACKs win the race more often",
		Columns: []string{"tick period", "fast frac", "deliveries", "agreement"},
	}
	for _, period := range periods {
		out := Run(Scenario{
			Name: fmt.Sprintf("f6-period%d", period), N: n, Algo: AlgoMajority,
			Link:      channel.Bernoulli{P: 0.3, D: channel.UniformDelay{Min: 1, Max: 6}},
			Workload:  workload.MultiWriter{Writers: 3, PerWriter: 3, Start: 5, Interval: 5 * period},
			TickEvery: period,
			Seed:      p.Seed + uint64(period),
			MaxTime:   1_000_000,
		})
		out.MustConverge()
		_, agree, _ := propertySplit(out)
		t.AddRow(period, out.FastFraction, out.Report.TotalDeliveries, okString(agree))
	}

	// Adversary: the fast deliverer crashes immediately after delivering.
	crashAfter := make([]int, n)
	crashAfter[1] = 1
	out := Run(Scenario{
		Name: "f6-adversary", N: n, Algo: AlgoQuiescent,
		Link: channel.Bernoulli{P: 0.1, D: channel.UniformDelay{Min: 1, Max: 40}},
		FD: fd.OracleConfig{
			Noise: fd.NoiseExact, RevealToFaulty: 1,
		},
		Workload:             workload.SingleShot{At: 5, Proc: 1, Body: []byte("m")},
		CrashAfterDeliveries: crashAfter,
		Seed:                 p.Seed + 99,
		MaxTime:              1_000_000,
		StopWhenQuiet:        300,
	})
	_, agree, _ := propertySplit(out)
	t.AddRow("crash-after-deliver", out.FastFraction, out.Report.TotalDeliveries, okString(agree))
	return t
}

// Experiment pairs an id with its generator.
type Experiment struct {
	ID  string
	Gen func(Params) *Table
}

// AllExperiments returns the full evaluation suite in presentation order.
func AllExperiments() []Experiment {
	return []Experiment{
		{"T1", T1Correctness},
		{"T2", T2Impossibility},
		{"T3", T3CrashTolerance},
		{"T4", T4FDAblation},
		{"T5", T5BaselineGuarantees},
		{"T6", T6PriceOfUniformity},
		{"F1", F1QuiescenceCurve},
		{"F2", F2LatencyVsLoss},
		{"F3", F3MessagesVsN},
		{"F4", F4QuiescenceVsGST},
		{"F5", F5MemoryFootprint},
		{"F6", F6FastDelivery},
		{"F7", F7AnonymityCost},
		{"F8", F8HeartbeatVsOracle},
	}
}
