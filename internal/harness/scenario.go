// Package harness assembles scenarios, runs them on the simulator, checks
// the URB properties, and formats the results as the tables and figures of
// the evaluation suite (EXPERIMENTS.md / DESIGN.md §4).
//
// A Scenario is the unit of execution: system size, algorithm, channel
// model, failure detector configuration, workload, crash plan and seed.
// Run executes it deterministically and returns an Outcome with checked
// properties and derived metrics. The experiment functions in
// experiments.go sweep Scenario parameters and tabulate Outcomes.
package harness

import (
	"fmt"

	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/metrics"
	"anonurb/internal/rb"
	"anonurb/internal/sim"
	"anonurb/internal/trace"
	"anonurb/internal/urb"
	"anonurb/internal/workload"
	"anonurb/internal/xrand"
)

// Algo selects the algorithm under test.
type Algo int

const (
	// AlgoMajority is the paper's Algorithm 1.
	AlgoMajority Algo = iota
	// AlgoQuiescent is the paper's Algorithm 2 (needs FD).
	AlgoQuiescent
	// AlgoMajorityLowered is Algorithm 1 with an UNSAFE sub-majority
	// delivery threshold of ⌈n/2⌉ acks — the hypothetical algorithm of
	// the Theorem 2 impossibility proof.
	AlgoMajorityLowered
	// AlgoBestEffort is the best-effort broadcast baseline (send once).
	AlgoBestEffort
	// AlgoEagerRB is the eager (flooding) reliable broadcast baseline.
	AlgoEagerRB
	// AlgoIDed is the classic identifier-based majority URB baseline.
	AlgoIDed
	// AlgoHeartbeat is Algorithm 2 over the heartbeat-based detector
	// realisation instead of the oracle (urb.HeartbeatHost) — no ground
	// truth anywhere, the full stack on one lossy mesh.
	AlgoHeartbeat
	// AlgoAnonRB is the companion technical report's anonymous
	// (non-uniform) reliable broadcast: deliver on first reception,
	// retransmit forever (rb.AnonymousRB).
	AlgoAnonRB
)

// String implements fmt.Stringer.
func (a Algo) String() string {
	switch a {
	case AlgoMajority:
		return "alg1-majority"
	case AlgoQuiescent:
		return "alg2-quiescent"
	case AlgoMajorityLowered:
		return "alg1-lowered"
	case AlgoBestEffort:
		return "best-effort"
	case AlgoEagerRB:
		return "eager-rb"
	case AlgoIDed:
		return "ided-urb"
	case AlgoHeartbeat:
		return "alg2-heartbeat"
	case AlgoAnonRB:
		return "anon-rb"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// Scenario fully describes one run.
type Scenario struct {
	Name string
	N    int
	Algo Algo
	// URB carries the algorithm-level knobs (eager send etc.).
	URB urb.Config
	// Link is the channel model (required).
	Link channel.LinkModel
	// FD configures the oracle for AlgoQuiescent; N and Seed are filled
	// in automatically.
	FD fd.OracleConfig
	// Workload generates the broadcast schedule (required).
	Workload workload.Broadcasts
	// Crashes generates the crash schedule; nil means no crashes.
	Crashes workload.Crashes
	// CrashAfterDeliveries enables the deliver-then-crash adversary
	// (optional, per-process delivery counts).
	CrashAfterDeliveries []int
	// JoinAt[i] > 0 makes process i a late joiner that pulls a state
	// snapshot over the lossy links at that time (DESIGN.md §13); nil or
	// 0 means present from the start. Requires an algorithm implementing
	// urb.Joiner — in practice AlgoHeartbeat, whose detector views follow
	// the beat traffic instead of a fixed-membership oracle.
	JoinAt []sim.Time
	// LeaveAt[i] > 0 removes process i at that time; to the survivors a
	// leave is indistinguishable from a crash (DESIGN.md §13).
	LeaveAt []sim.Time
	// HeartbeatTimeout is the trust timeout for AlgoHeartbeat; defaults
	// to 10×TickEvery.
	HeartbeatTimeout sim.Time
	Seed             uint64
	TickEvery        sim.Time
	MaxTime          sim.Time
	// StopWhenQuiet > 0 enables quiescence detection.
	StopWhenQuiet sim.Time
	// SampleEvery > 0 collects the time series for F1/F5.
	SampleEvery sim.Time
	// FullHorizon disables the early stop on all-delivered, so the run
	// covers exactly MaxTime (time-series figures need aligned horizons).
	FullHorizon bool
	// Observers receive the run's events (trace recording).
	Observers []sim.Observer
}

// Outcome is a checked, measured run.
type Outcome struct {
	Scenario Scenario
	Result   sim.Result
	Report   *trace.Report
	// Oracle is the failure detector oracle, if one was built.
	Oracle *fd.Oracle
	// Latency collects (delivery time − broadcast time) over all
	// deliveries at correct processes.
	Latency *metrics.Histogram
	// Issued is the number of URB-broadcasts actually executed.
	Issued int
	// DeliveredAll reports that every correct process delivered every
	// issued message.
	DeliveredAll bool
	// QuiesceTime is the time of the last wire send for quiescent runs,
	// or -1 if the run never went quiet.
	QuiesceTime sim.Time
	// WireMessages is the number of wire messages broadcast (each costs
	// N link copies).
	WireMessages uint64
	// FastFraction is the share of deliveries that were fast (from ACKs
	// only).
	FastFraction float64
}

// MsgsPerBroadcast returns wire messages per issued URB-broadcast.
func (o *Outcome) MsgsPerBroadcast() float64 {
	if o.Issued == 0 {
		return 0
	}
	return float64(o.WireMessages) / float64(o.Issued)
}

// Run executes the scenario.
func Run(s Scenario) Outcome {
	cfg, oracle := s.Build()
	res := sim.NewEngine(cfg).Run()
	return analyze(s, oracle, res)
}

// Build assembles the scenario into a runnable sim.Config without
// executing it, so callers that need to adjust the run — the nemesis
// campaign runner merges fault schedules and wraps the link model — can
// interpose between assembly and execution. The returned oracle is
// non-nil only for AlgoQuiescent (whose correctness vector reflects the
// scenario's own crash schedule; faults added afterwards are invisible
// to it — campaign runners must use AlgoMajority or AlgoHeartbeat,
// which consult no ground truth).
func (s Scenario) Build() (sim.Config, *fd.Oracle) {
	if s.N < 1 {
		panic("harness: scenario needs N >= 1")
	}
	if s.Link == nil || s.Workload == nil {
		panic("harness: scenario needs Link and Workload")
	}
	if s.Crashes == nil {
		s.Crashes = workload.NoCrashes{}
	}
	if s.MaxTime <= 0 {
		s.MaxTime = 200_000
	}
	if s.TickEvery <= 0 {
		s.TickEvery = 10
	}

	wlRng := xrand.SplitLabeled(s.Seed, "workload")
	broadcasts := s.Workload.Generate(s.N, wlRng)
	crashAt := s.Crashes.Generate(s.N, xrand.SplitLabeled(s.Seed, "crashes"))

	correct := sim.CorrectSet(s.N, crashAt, s.CrashAfterDeliveries)
	var oracle *fd.Oracle
	var factory sim.Factory
	switch s.Algo {
	case AlgoMajority:
		n, cfg := s.N, s.URB
		factory = func(env sim.Env) urb.Process {
			return urb.NewMajority(n, env.Tags, cfg)
		}
	case AlgoMajorityLowered:
		n, cfg := s.N, s.URB
		threshold := (n + 1) / 2 // ⌈n/2⌉: one short of a strict majority for even n
		factory = func(env sim.Env) urb.Process {
			return urb.NewMajorityThreshold(n, threshold, env.Tags, cfg)
		}
	case AlgoQuiescent:
		fdCfg := s.FD
		fdCfg.N = s.N
		if fdCfg.Seed == 0 {
			fdCfg.Seed = s.Seed
		}
		oracle = fd.NewOracle(fdCfg, correct)
		cfg := s.URB
		o := oracle
		factory = func(env sim.Env) urb.Process {
			return urb.NewQuiescent(o.Handle(env.Index, env.Now), env.Tags, cfg)
		}
	case AlgoHeartbeat:
		timeout := s.HeartbeatTimeout
		if timeout <= 0 {
			timeout = 10 * s.TickEvery
		}
		cfg := s.URB
		factory = func(env sim.Env) urb.Process {
			return urb.NewHeartbeatHost(env.Tags, timeout, 1, env.Now, cfg)
		}
	case AlgoAnonRB:
		factory = func(env sim.Env) urb.Process { return rb.NewAnonymousRB(env.Tags) }
	case AlgoBestEffort:
		factory = func(env sim.Env) urb.Process { return rb.NewBestEffort(env.Tags) }
	case AlgoEagerRB:
		factory = func(env sim.Env) urb.Process { return rb.NewEagerRB(env.Tags) }
	case AlgoIDed:
		n := s.N
		factory = func(env sim.Env) urb.Process { return rb.NewIDed(env.Index, n, env.Tags) }
	default:
		panic(fmt.Sprintf("harness: unknown algo %v", s.Algo))
	}

	expect := len(broadcasts)
	if s.FullHorizon {
		expect = 0
	}
	return sim.Config{
		N:                    s.N,
		Factory:              factory,
		Link:                 s.Link,
		Seed:                 s.Seed,
		TickEvery:            s.TickEvery,
		MaxTime:              s.MaxTime,
		CrashAt:              crashAt,
		CrashAfterDeliveries: s.CrashAfterDeliveries,
		JoinAt:               s.JoinAt,
		LeaveAt:              s.LeaveAt,
		Broadcasts:           broadcasts,
		StopWhenQuiet:        s.StopWhenQuiet,
		ExpectDeliveries:     expect,
		SampleEvery:          s.SampleEvery,
		Observers:            s.Observers,
	}, oracle
}

// analyze derives the Outcome from a finished run.
func analyze(s Scenario, oracle *fd.Oracle, res sim.Result) Outcome {
	o := Outcome{
		Scenario:    s,
		Result:      res,
		Oracle:      oracle,
		Latency:     metrics.NewHistogram(),
		Issued:      len(res.Broadcasts),
		QuiesceTime: -1,
	}
	o.Report = trace.CheckResult(res)
	if res.Quiescent {
		o.QuiesceTime = res.LastSend
	}
	if res.Net.Sent > 0 {
		o.WireMessages = res.Net.Sent / uint64(len(res.Deliveries))
	}

	born := make(map[string]sim.Time, len(res.Broadcasts))
	// obliged holds the message bodies every correct process must have
	// delivered for the run to count as converged: messages broadcast by
	// correct processes, plus messages anybody delivered (uniform
	// agreement). A faulty sender's message that nobody delivered may
	// legally vanish and obliges nothing.
	obliged := make(map[string]bool)
	for _, b := range res.Broadcasts {
		born[b.ID.Body] = b.At
		if !res.Crashed[b.Proc] {
			obliged[b.ID.Body] = true
		}
	}
	for _, ds := range res.Deliveries {
		for _, d := range ds {
			if _, issued := born[d.ID.Body]; issued {
				obliged[d.ID.Body] = true
			}
		}
	}
	fast, total := 0, 0
	deliveredAll := true
	for p, ds := range res.Deliveries {
		if res.Crashed[p] {
			continue
		}
		got := make(map[string]bool, len(ds))
		for _, d := range ds {
			total++
			if d.Fast {
				fast++
			}
			if bt, ok := born[d.ID.Body]; ok {
				o.Latency.Observe(d.At - bt)
				got[d.ID.Body] = true
			}
		}
		// History a joiner adopted counts as delivered: uniformity
		// forbids it from ever delivering those messages itself.
		if p < len(res.Adopted) {
			for id := range res.Adopted[p] {
				got[id.Body] = true
			}
		}
		for body := range obliged {
			if !got[body] {
				deliveredAll = false
			}
		}
	}
	o.DeliveredAll = deliveredAll && len(res.Broadcasts) > 0
	if total > 0 {
		o.FastFraction = float64(fast) / float64(total)
	}
	return o
}

// MustConverge panics (with scenario context) unless the outcome is a
// fully delivered, property-clean run. Experiments use it where anything
// else indicates a bug in this repository rather than a finding.
func (o *Outcome) MustConverge() *Outcome {
	if err := o.Report.Err(); err != nil {
		panic(fmt.Sprintf("harness: scenario %q violates URB: %v", o.Scenario.Name, err))
	}
	if !o.DeliveredAll {
		panic(fmt.Sprintf("harness: scenario %q did not converge (end=%d)",
			o.Scenario.Name, o.Result.EndTime))
	}
	return o
}
