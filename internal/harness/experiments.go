package harness

import (
	"fmt"

	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/sim"
	"anonurb/internal/workload"
	"anonurb/internal/xrand"
)

// Params scales the experiment suite. Quick runs the reduced sweeps used
// by tests and benchmarks; the full sweeps are what cmd/urbbench records
// in EXPERIMENTS.md.
type Params struct {
	Seed  uint64
	Quick bool
}

// pick returns quick or full depending on the params.
func pick[T any](p Params, quick, full T) T {
	if p.Quick {
		return quick
	}
	return full
}

func lossLink(p float64) channel.LinkModel {
	return channel.Bernoulli{P: p, D: channel.UniformDelay{Min: 1, Max: 5}}
}

func okString(b bool) string {
	if b {
		return "ok"
	}
	return "VIOLATED"
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// T1Correctness is experiment T1: Algorithm 1 satisfies all three URB
// properties across system sizes and loss rates with the maximum legal
// number of crashes (t = ⌈n/2⌉-1), exercising Theorem 1.
func T1Correctness(p Params) *Table {
	ns := pick(p, []int{3, 5}, []int{3, 5, 9, 15})
	losses := pick(p, []float64{0, 0.3}, []float64{0, 0.1, 0.3, 0.5})
	writers := pick(p, 2, 3)
	perWriter := pick(p, 2, 4)

	t := &Table{
		Title: "T1: Algorithm 1 correctness matrix (Theorem 1)",
		Note: fmt.Sprintf("workload: %d writers x %d msgs; crashes: t = max minority, at t in [40,120]",
			writers, perWriter),
		Columns: []string{"n", "t", "loss", "delivered", "validity", "agreement", "integrity",
			"lat mean", "lat p99", "msgs/bcast"},
	}
	for _, n := range ns {
		for _, loss := range losses {
			tol := workload.MaxMinority(n)
			out := Run(Scenario{
				Name:     fmt.Sprintf("t1-n%d-l%g", n, loss),
				N:        n,
				Algo:     AlgoMajority,
				Link:     lossLink(loss),
				Workload: workload.MultiWriter{Writers: writers, PerWriter: perWriter, Start: 5, Interval: 30},
				Crashes:  workload.CrashCount{Count: tol, From: 40, To: 120},
				Seed:     p.Seed + uint64(n)*1000 + uint64(loss*100),
				MaxTime:  1_000_000,
			})
			out.MustConverge()
			valid, agree, integ := propertySplit(out)
			t.AddRow(n, tol, loss, yesNo(out.DeliveredAll), okString(valid), okString(agree),
				okString(integ), out.Latency.Mean(), out.Latency.Quantile(0.99),
				out.MsgsPerBroadcast())
		}
	}
	return t
}

// propertySplit reports (validity, agreement, integrity) from a report.
func propertySplit(out Outcome) (bool, bool, bool) {
	valid, agree, integ := true, true, true
	for _, v := range out.Report.Violations {
		switch v.Property {
		case "validity":
			valid = false
		case "uniform-agreement":
			agree = false
		case "uniform-integrity":
			integ = false
		}
	}
	return valid, agree, integ
}

// impossibilityLink wires the Theorem 2 network: reliable inside each
// group, a black hole across groups. Legal as a fair-lossy behaviour
// because the only cross-group traffic ever generated comes from
// processes that crash after finitely many sends.
func impossibilityLink(sizeS1 int) channel.LinkModel {
	inS1 := func(p int) bool { return p < sizeS1 }
	return splitLink{inA: inS1, cross: channel.Blackhole{},
		within: channel.Reliable{D: channel.FixedDelay(2)}}
}

// splitLink routes cross-group and within-group copies to different
// models.
type splitLink struct {
	inA    func(int) bool
	cross  channel.LinkModel
	within channel.LinkModel
}

func (s splitLink) Judge(now int64, src, dst int, attempt uint64, rng *xrand.Source) channel.Verdict {
	if s.inA(src) != s.inA(dst) {
		return s.cross.Judge(now, src, dst, attempt, rng)
	}
	return s.within.Judge(now, src, dst, attempt, rng)
}

func (s splitLink) String() string {
	return fmt.Sprintf("split(cross=%s,within=%s)", s.cross, s.within)
}

// T2Impossibility reenacts the Theorem 2 construction: with t >= n/2
// permitted, an algorithm that delivers on sub-majority evidence (the
// hypothetical algorithm A, modeled by Algorithm 1 with threshold ⌈n/2⌉)
// violates uniform agreement in run R2; the real Algorithm 1 stays safe
// but blocks forever — delivering is impossible, exactly as the theorem
// states.
func T2Impossibility(p Params) *Table {
	ns := pick(p, []int{2, 4}, []int{2, 4, 6})
	t := &Table{
		Title: "T2: Theorem 2 impossibility construction (runs R1/R2)",
		Note: "S1 = first ⌈n/2⌉ processes (crash after delivering), S2 = rest; " +
			"all S1→S2 copies lost (finitely many: legal for fair lossy channels)",
		Columns: []string{"n", "|S1|", "variant", "S1 delivered", "S2 delivered",
			"agreement", "outcome"},
	}
	for _, n := range ns {
		s1 := (n + 1) / 2
		for _, algo := range []Algo{AlgoMajorityLowered, AlgoMajority} {
			crashAfter := make([]int, n)
			for i := 0; i < s1; i++ {
				crashAfter[i] = 1
			}
			out := Run(Scenario{
				Name:                 fmt.Sprintf("t2-n%d-%v", n, algo),
				N:                    n,
				Algo:                 algo,
				Link:                 impossibilityLink(s1),
				Workload:             workload.SingleShot{At: 2, Proc: 0, Body: []byte("m")},
				CrashAfterDeliveries: crashAfter,
				Seed:                 p.Seed + uint64(n),
				MaxTime:              2_000,
			})
			s1Deliv, s2Deliv := 0, 0
			for proc, ds := range out.Result.Deliveries {
				if proc < s1 {
					s1Deliv += len(ds)
				} else {
					s2Deliv += len(ds)
				}
			}
			_, agree, _ := propertySplit(out)
			var outcome string
			switch {
			case algo == AlgoMajorityLowered && !agree:
				outcome = "violation (as Theorem 2 predicts)"
			case algo == AlgoMajority && s1Deliv == 0 && s2Deliv == 0:
				outcome = "blocked forever (safe, no liveness)"
			default:
				outcome = "UNEXPECTED"
			}
			t.AddRow(n, s1, algo.String(), s1Deliv, s2Deliv, okString(agree), outcome)
		}
	}
	return t
}

// T3CrashTolerance is experiment T3: Algorithm 1's guarantee stops at
// t < n/2 while Algorithm 2 (with AΘ/AP*) delivers and quiesces for any
// number of crashes (up to n-1 — at least one correct process is assumed
// by the model).
func T3CrashTolerance(p Params) *Table {
	n := 6
	ts := pick(p, []int{0, 2, 3, 5}, []int{0, 1, 2, 3, 4, 5})
	t := &Table{
		Title: "T3: crash tolerance sweep (n=6, crashes at t=0, loss 0.2)",
		Note: "alg1 can only deliver while live acks can exceed n/2 (t <= 2); " +
			"alg2 delivers and quiesces for every t",
		Columns: []string{"t", "alg1 delivers", "alg1 safe", "alg2 delivers", "alg2 safe",
			"alg2 quiescent", "alg2 quiesce time"},
	}
	for _, tol := range ts {
		crash := workload.CrashCount{Count: tol, From: 0, To: 0}
		wl := workload.SingleShot{At: 5, Proc: 0, Body: []byte("m")}

		a1 := Run(Scenario{
			Name: fmt.Sprintf("t3-alg1-t%d", tol), N: n, Algo: AlgoMajority,
			Link: lossLink(0.2), Workload: wl, Crashes: crash,
			Seed: p.Seed + uint64(tol), MaxTime: pick(p, sim.Time(4_000), sim.Time(8_000)),
		})
		a1Delivers := a1.DeliveredAll
		_, a1Agree, a1Integ := propertySplit(a1)

		a2 := Run(Scenario{
			Name: fmt.Sprintf("t3-alg2-t%d", tol), N: n, Algo: AlgoQuiescent,
			Link: lossLink(0.2), Workload: wl, Crashes: crash,
			FD:   fd.OracleConfig{Noise: fd.NoiseExact},
			Seed: p.Seed + uint64(tol), MaxTime: 1_000_000, StopWhenQuiet: 300,
		})
		_, a2Agree, a2Integ := propertySplit(a2)
		t.AddRow(tol, yesNo(a1Delivers), okString(a1Agree && a1Integ),
			yesNo(a2.DeliveredAll), okString(a2Agree && a2Integ),
			yesNo(a2.QuiesceTime >= 0), a2.QuiesceTime)
	}
	return t
}

// T4FDAblation is experiment T4: the failure detector audience invariant.
// With RevealToFaulty = 0 (labels of correct processes shown only to
// correct processes) Algorithm 2 is safe and quiescent. Revealing correct
// labels to a faulty process — which the AΘ/AP* axioms PERMIT — lets a
// frozen ACK from the crashed process stand in for a slow correct
// process in the retirement guard: retransmission stops early and the
// slow process never receives the message, violating uniform agreement.
// This is a genuine gap between the paper's failure detector definitions
// and what its Algorithm 2 needs; see DESIGN.md §2.
func T4FDAblation(p Params) *Table {
	const n = 4
	t := &Table{
		Title: "T4: failure detector audience ablation (n=4, p3 crashes at 150, p2 slow)",
		Note: "p2 is correct but its inbound links drop the first 2000 copies (fair); " +
			"reveal>0 lets the dead p3's frozen ACK complete the retirement guard early",
		Columns: []string{"reveal-to-faulty", "noise", "delivered-all", "agreement",
			"quiescent", "interpretation"},
	}
	cases := []struct {
		reveal int
		noise  fd.NoiseMode
		gst    sim.Time
	}{
		{0, fd.NoiseExact, 0},
		{0, fd.NoiseBenign, 300},
		{0, fd.NoiseAdversarial, 300},
		{1, fd.NoiseExact, 0},
	}
	for _, c := range cases {
		out := Run(Scenario{
			Name: fmt.Sprintf("t4-reveal%d-%v", c.reveal, c.noise),
			N:    n,
			Algo: AlgoQuiescent,
			Link: channel.SlowSink{Dst: 2, K: 2000,
				Then: channel.Bernoulli{P: 0.05, D: channel.UniformDelay{Min: 1, Max: 4}}},
			Workload: workload.SingleShot{At: 5, Proc: 0, Body: []byte("m")},
			Crashes:  workload.CrashCount{Count: 1, From: 150, To: 150},
			FD: fd.OracleConfig{
				Noise: c.noise, GST: int64(c.gst), NoisePeriod: 20, RevealToFaulty: c.reveal,
			},
			Seed:          p.Seed + uint64(c.reveal)*17 + uint64(c.noise),
			MaxTime:       300_000,
			StopWhenQuiet: 500,
		})
		_, agree, _ := propertySplit(out)
		interp := "safe and quiescent"
		if !agree {
			interp = "premature retirement starved the slow process"
		} else if !out.DeliveredAll {
			interp = "did not converge"
		}
		t.AddRow(c.reveal, c.noise.String(), yesNo(out.DeliveredAll), okString(agree),
			yesNo(out.QuiesceTime >= 0), interp)
	}
	return t
}
