package channel

import (
	"bytes"
	"testing"

	"anonurb/internal/xrand"
)

var mutFrame = []byte("mutate-me: a frame of representative length for flips")

// TestDuplicateFansOut: P=1 always produces at least one extra copy,
// every copy carries the original bytes, and the frame-blind Judge
// path degrades to a single verdict.
func TestDuplicateFansOut(t *testing.T) {
	d := Duplicate{P: 1, Max: 3, Then: Reliable{D: FixedDelay(2)}}
	rng := xrand.New(5)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		out := d.JudgeFrame(0, 0, 1, 0, mutFrame, rng)
		if len(out) < 2 || len(out) > 1+3 {
			t.Fatalf("copy count %d outside [2, 4]", len(out))
		}
		seen[len(out)] = true
		for _, c := range out {
			if !c.SameFrame(mutFrame) {
				t.Fatal("duplication mutated the frame")
			}
		}
	}
	if len(seen) < 2 {
		t.Fatalf("Max=3 never varied the fan-out: %v", seen)
	}
	if v := d.Judge(0, 0, 1, 0, rng); v.Drop || v.Delay != 2 {
		t.Fatalf("frame-blind Judge must degrade to Then's verdict, got %+v", v)
	}
	// P=0 never duplicates.
	d.P = 0
	for i := 0; i < 20; i++ {
		if out := d.JudgeFrame(0, 0, 1, 0, mutFrame, rng); len(out) != 1 {
			t.Fatalf("P=0 duplicated: %d copies", len(out))
		}
	}
}

// TestReorderStretchesDelay: a reordered copy's delay lands in
// (base, base+Window]; both judge paths agree on the stretch.
func TestReorderStretchesDelay(t *testing.T) {
	r := Reorder{P: 1, Window: 9, Then: Reliable{D: FixedDelay(3)}}
	rng := xrand.New(5)
	for i := 0; i < 100; i++ {
		out := r.JudgeFrame(0, 0, 1, 0, mutFrame, rng)
		if len(out) != 1 {
			t.Fatalf("reorder changed the copy count: %d", len(out))
		}
		if d := out[0].Delay; d <= 3 || d > 3+9 {
			t.Fatalf("stretched delay %d outside (3, 12]", d)
		}
		if v := r.Judge(0, 0, 1, 0, rng); v.Delay <= 3 || v.Delay > 3+9 {
			t.Fatalf("frame-blind stretch %d outside (3, 12]", v.Delay)
		}
	}
}

// TestBitFlipDefaultIsLoss: with no Check gate, every flipped copy is
// dropped — the CRC stand-in catches all corruption, so mutation
// surfaces only as loss.
func TestBitFlipDefaultIsLoss(t *testing.T) {
	b := BitFlip{P: 1, Then: Reliable{D: FixedDelay(1)}}
	rng := xrand.New(5)
	for i := 0; i < 50; i++ {
		if out := b.JudgeFrame(0, 0, 1, 0, mutFrame, rng); len(out) != 0 {
			t.Fatalf("flipped copy survived without a Check gate: %v", out)
		}
	}
	if v := b.Judge(0, 0, 1, 0, rng); !v.Drop {
		t.Fatal("frame-blind flip must degrade to a drop")
	}
}

// TestBitFlipCheckGate: the Check gate sees exactly one flipped bit
// and full original bytes, and its ruling decides delivery.
func TestBitFlipCheckGate(t *testing.T) {
	var calls int
	b := BitFlip{P: 1, Then: Reliable{D: FixedDelay(1)},
		Check: func(orig, mut []byte) bool {
			calls++
			if !bytes.Equal(orig, mutFrame) {
				t.Fatal("gate saw wrong original bytes")
			}
			diff := 0
			for i := range mut {
				for bit := 0; bit < 8; bit++ {
					if (orig[i]^mut[i])>>uint(bit)&1 == 1 {
						diff++
					}
				}
			}
			if diff != 1 {
				t.Fatalf("gate saw %d flipped bits, want 1", diff)
			}
			return true
		}}
	rng := xrand.New(5)
	out := b.JudgeFrame(0, 0, 1, 0, mutFrame, rng)
	if calls != 1 {
		t.Fatalf("gate consulted %d times, want 1", calls)
	}
	if len(out) != 1 || out[0].Frame == nil || bytes.Equal(out[0].Frame, mutFrame) {
		t.Fatalf("admitted copy must carry the mutated bytes: %+v", out)
	}
	// A refusing gate turns the same flip into loss.
	b.Check = func(orig, mut []byte) bool { return false }
	if out := b.JudgeFrame(0, 0, 1, 0, mutFrame, rng); len(out) != 0 {
		t.Fatal("refused copy delivered")
	}
}

// TestOneWayCut: the cut is directional and lifts at Until.
func TestOneWayCut(t *testing.T) {
	o := OneWay{Until: 100, Cut: func(src, dst int) bool { return src == 0 && dst == 1 },
		Then: Reliable{D: FixedDelay(1)}}
	rng := xrand.New(5)
	if out := o.JudgeFrame(50, 0, 1, 0, mutFrame, rng); len(out) != 0 {
		t.Fatal("cut direction passed")
	}
	if out := o.JudgeFrame(50, 1, 0, 0, mutFrame, rng); len(out) != 1 {
		t.Fatal("reverse direction dropped")
	}
	if out := o.JudgeFrame(100, 0, 1, 0, mutFrame, rng); len(out) != 1 {
		t.Fatal("cut did not lift at Until")
	}
	if v := o.Judge(50, 0, 1, 0, rng); !v.Drop {
		t.Fatal("frame-blind Judge missed the cut")
	}
}

// TestSendFrameCounters: the network's Mutated and Duplicated totals
// count admitted mutations and extra copies, and a rejected mutation
// counts as a drop.
func TestSendFrameCounters(t *testing.T) {
	admitAll := func(orig, mut []byte) bool { return true }
	w := NewNetwork(2, Duplicate{P: 1, Max: 1,
		Then: BitFlip{P: 1, Check: admitAll, Then: Reliable{D: FixedDelay(1)}}}, xrand.New(9))
	for i := 0; i < 10; i++ {
		if got := w.SendFrame(0, 0, 1, mutFrame); len(got) != 2 {
			t.Fatalf("want 2 copies (original judged twice), got %d", len(got))
		}
	}
	s := w.Stats()
	if s.Sent != 10 || s.Duplicated != 10 || s.Mutated != 20 {
		t.Fatalf("counters: %+v", s)
	}
	// With the default (refusing) CRC the same model is pure loss.
	w = NewNetwork(2, BitFlip{P: 1, Then: Reliable{D: FixedDelay(1)}}, xrand.New(9))
	for i := 0; i < 10; i++ {
		if got := w.SendFrame(0, 0, 1, mutFrame); len(got) != 0 {
			t.Fatal("flip without a gate must drop")
		}
	}
	s = w.Stats()
	if s.Dropped != 10 || s.Mutated != 0 {
		t.Fatalf("rejected mutations must count as drops: %+v", s)
	}
}
