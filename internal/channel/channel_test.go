package channel

import (
	"math"
	"strings"
	"testing"

	"anonurb/internal/xrand"
)

func TestFixedDelay(t *testing.T) {
	d := FixedDelay(42)
	if d.Delay(xrand.New(1)) != 42 {
		t.Fatal("fixed delay wrong")
	}
}

func TestUniformDelayBounds(t *testing.T) {
	d := UniformDelay{Min: 10, Max: 20}
	rng := xrand.New(2)
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		v := d.Delay(rng)
		if v < 10 || v > 20 {
			t.Fatalf("uniform delay out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 11 {
		t.Fatalf("uniform delay did not cover range: %d values", len(seen))
	}
	deg := UniformDelay{Min: 5, Max: 5}
	if deg.Delay(rng) != 5 {
		t.Fatal("degenerate uniform")
	}
	inverted := UniformDelay{Min: 9, Max: 3}
	if inverted.Delay(rng) != 9 {
		t.Fatal("inverted bounds should return Min")
	}
}

func TestExpDelayMean(t *testing.T) {
	d := ExpDelay{Base: 100, Mean: 50}
	rng := xrand.New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := d.Delay(rng)
		if v < 100 {
			t.Fatalf("exp delay below base: %d", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	if math.Abs(mean-150) > 3 {
		t.Fatalf("exp delay mean %g, want ~150", mean)
	}
}

func TestReliableNeverDrops(t *testing.T) {
	m := Reliable{D: FixedDelay(1)}
	rng := xrand.New(4)
	for i := 0; i < 1000; i++ {
		if m.Judge(0, 0, 1, uint64(i), rng).Drop {
			t.Fatal("reliable dropped")
		}
	}
}

func TestBernoulliLossRate(t *testing.T) {
	m := Bernoulli{P: 0.25, D: FixedDelay(1)}
	rng := xrand.New(5)
	drops := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Judge(0, 0, 1, uint64(i), rng).Drop {
			drops++
		}
	}
	frac := float64(drops) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("bernoulli loss %g, want ~0.25", frac)
	}
}

func TestBernoulliFairness(t *testing.T) {
	// A copy sent repeatedly must eventually get through: with p=0.9 the
	// expected number of attempts is 10; 10k attempts failing would be a
	// fairness bug (probability 10^-458).
	m := Bernoulli{P: 0.9, D: FixedDelay(1)}
	rng := xrand.New(6)
	for trial := 0; trial < 100; trial++ {
		got := false
		for i := 0; i < 10000; i++ {
			if !m.Judge(0, 0, 1, uint64(i), rng).Drop {
				got = true
				break
			}
		}
		if !got {
			t.Fatal("bernoulli link starved a retransmitted message")
		}
	}
}

func TestDropFirstDeterministicFairness(t *testing.T) {
	m := DropFirst{K: 5, Then: Reliable{D: FixedDelay(1)}}
	rng := xrand.New(7)
	for i := uint64(0); i < 5; i++ {
		if !m.Judge(0, 0, 1, i, rng).Drop {
			t.Fatalf("attempt %d should drop", i)
		}
	}
	if m.Judge(0, 0, 1, 5, rng).Drop {
		t.Fatal("attempt 5 should pass")
	}
}

func TestPartitionCutsCrossTraffic(t *testing.T) {
	inA := func(p int) bool { return p < 2 }
	m := Partition{Until: 100, InGroupA: inA, Then: Reliable{D: FixedDelay(1)}}
	rng := xrand.New(8)
	if !m.Judge(50, 0, 3, 0, rng).Drop {
		t.Fatal("cross-partition copy should drop before Until")
	}
	if m.Judge(50, 0, 1, 0, rng).Drop {
		t.Fatal("same-side copy should pass")
	}
	if m.Judge(150, 0, 3, 0, rng).Drop {
		t.Fatal("cross copy should pass after Until")
	}
}

func TestBlackholeDropsEverything(t *testing.T) {
	m := Blackhole{}
	rng := xrand.New(9)
	for i := 0; i < 100; i++ {
		if !m.Judge(int64(i), i%3, (i+1)%3, uint64(i), rng).Drop {
			t.Fatal("blackhole passed a message")
		}
	}
}

func TestScriptExactControl(t *testing.T) {
	m := Script{
		Drops: map[int]map[int][]bool{
			0: {1: {true, false, true}},
		},
		Then: Blackhole{},
	}
	rng := xrand.New(10)
	if !m.Judge(0, 0, 1, 0, rng).Drop {
		t.Fatal("scripted drop 0")
	}
	if m.Judge(0, 0, 1, 1, rng).Drop {
		t.Fatal("scripted keep 1 must pass even over Blackhole")
	}
	if !m.Judge(0, 0, 1, 2, rng).Drop {
		t.Fatal("scripted drop 2")
	}
	// Beyond script falls through to Then (blackhole).
	if !m.Judge(0, 0, 1, 3, rng).Drop {
		t.Fatal("fallthrough should consult Then")
	}
	// Unscripted link falls through too.
	if !m.Judge(0, 2, 1, 0, rng).Drop {
		t.Fatal("unscripted link should consult Then")
	}
}

func TestModelStrings(t *testing.T) {
	models := []LinkModel{
		Reliable{D: FixedDelay(1)},
		Bernoulli{P: 0.5, D: UniformDelay{Min: 1, Max: 2}},
		GilbertElliott{PGood: 0.01, PBad: 0.9, GoodToBad: 0.1, BadToGood: 0.3, D: ExpDelay{Base: 1, Mean: 2}},
		DropFirst{K: 3, Then: Reliable{D: FixedDelay(1)}},
		Partition{Until: 5, InGroupA: func(int) bool { return true }, Then: Blackhole{}},
		Blackhole{},
		Script{Then: Blackhole{}},
	}
	for _, m := range models {
		if m.String() == "" {
			t.Fatalf("%T has empty String()", m)
		}
	}
	if !strings.Contains((Bernoulli{P: 0.5, D: FixedDelay(1)}).String(), "0.5") {
		t.Fatal("bernoulli string should include p")
	}
}

func TestSlowSinkDelaysOneProcess(t *testing.T) {
	m := SlowSink{Dst: 2, K: 3, Then: Reliable{D: FixedDelay(1)}}
	rng := xrand.New(11)
	for i := uint64(0); i < 3; i++ {
		if !m.Judge(0, 0, 2, i, rng).Drop {
			t.Fatalf("copy %d into sink should drop", i)
		}
	}
	if m.Judge(0, 0, 2, 3, rng).Drop {
		t.Fatal("sink must open after K attempts (fairness)")
	}
	if m.Judge(0, 0, 1, 0, rng).Drop {
		t.Fatal("other destinations unaffected")
	}
	if m.String() == "" {
		t.Fatal("string")
	}
}
