package channel

import (
	"math"
	"testing"

	"anonurb/internal/xrand"
)

func TestNetworkCountsAttemptsAndDrops(t *testing.T) {
	w := NewNetwork(3, DropFirst{K: 2, Then: Reliable{D: FixedDelay(1)}}, xrand.New(1))
	for i := 0; i < 5; i++ {
		w.Send(0, 0, 1, 10)
	}
	if got := w.Attempts(0, 1); got != 5 {
		t.Fatalf("attempts %d, want 5", got)
	}
	if got := w.Dropped(0, 1); got != 2 {
		t.Fatalf("dropped %d, want 2", got)
	}
	if got := w.Attempts(1, 0); got != 0 {
		t.Fatalf("reverse link should be untouched, got %d", got)
	}
	st := w.Stats()
	if st.Sent != 5 || st.Dropped != 2 || st.Bytes != 50 {
		t.Fatalf("stats %+v", st)
	}
	if math.Abs(w.LossRate()-0.4) > 1e-9 {
		t.Fatalf("loss rate %g", w.LossRate())
	}
}

func TestNetworkPerLinkAttemptIsolation(t *testing.T) {
	// DropFirst must key off the per-link counter, not a global one.
	w := NewNetwork(2, DropFirst{K: 1, Then: Reliable{D: FixedDelay(1)}}, xrand.New(2))
	if !w.Send(0, 0, 1, 1).Drop {
		t.Fatal("first copy on 0→1 should drop")
	}
	if !w.Send(0, 1, 0, 1).Drop {
		t.Fatal("first copy on 1→0 should drop (independent counter)")
	}
	if w.Send(0, 0, 1, 1).Drop {
		t.Fatal("second copy on 0→1 should pass")
	}
}

func TestNetworkGilbertElliottBurstiness(t *testing.T) {
	// In the bad state nearly everything drops; in the good state nearly
	// nothing does. Measured run lengths of drops must be clustered,
	// i.e. the conditional drop probability after a drop must exceed the
	// marginal drop probability.
	ge := GilbertElliott{
		PGood: 0.01, PBad: 0.95,
		GoodToBad: 0.02, BadToGood: 0.1,
		D: FixedDelay(1),
	}
	w := NewNetwork(2, ge, xrand.New(3))
	const n = 200000
	drops := make([]bool, n)
	total := 0
	for i := 0; i < n; i++ {
		drops[i] = w.Send(int64(i), 0, 1, 1).Drop
		if drops[i] {
			total++
		}
	}
	marginal := float64(total) / n
	afterDrop, afterDropHits := 0, 0
	for i := 1; i < n; i++ {
		if drops[i-1] {
			afterDrop++
			if drops[i] {
				afterDropHits++
			}
		}
	}
	conditional := float64(afterDropHits) / float64(afterDrop)
	if conditional <= marginal+0.1 {
		t.Fatalf("no burstiness: P(drop|drop)=%g vs P(drop)=%g", conditional, marginal)
	}
}

func TestNetworkGEStatePerLink(t *testing.T) {
	// Two links must carry independent burst state: force one link into
	// the bad state statistically and check the other is unaffected.
	ge := GilbertElliott{
		PGood: 0.0, PBad: 1.0,
		GoodToBad: 0.0, BadToGood: 1.0, // never leaves good
		D: FixedDelay(1),
	}
	w := NewNetwork(2, ge, xrand.New(4))
	for i := 0; i < 100; i++ {
		if w.Send(0, 0, 1, 1).Drop {
			t.Fatal("good-state link dropped with PGood=0 and GoodToBad=0")
		}
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() []bool {
		w := NewNetwork(4, Bernoulli{P: 0.3, D: UniformDelay{Min: 1, Max: 9}}, xrand.New(42))
		out := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			v := w.Send(int64(i), i%4, (i+1)%4, 8)
			out = append(out, v.Drop)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d", i)
		}
	}
}

func TestNetworkNegativeDelayClamped(t *testing.T) {
	w := NewNetwork(2, Reliable{D: FixedDelay(-5)}, xrand.New(5))
	if v := w.Send(0, 0, 1, 1); v.Delay != 0 {
		t.Fatalf("negative delay should clamp to 0, got %d", v.Delay)
	}
}

func TestNetworkOutOfRangePanics(t *testing.T) {
	w := NewNetwork(2, Blackhole{}, xrand.New(6))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range link")
		}
	}()
	w.Send(0, 0, 5, 1)
}

func TestNetworkGrowPreservesLinkState(t *testing.T) {
	w := NewNetwork(2, Bernoulli{P: 0.5, D: FixedDelay(0)}, xrand.New(9))
	for i := 0; i < 10; i++ {
		w.Send(int64(i), 0, 1, 4)
	}
	att, drp := w.Attempts(0, 1), w.Dropped(0, 1)
	before := w.Stats()

	w.Grow(3)
	if w.N() != 3 {
		t.Fatalf("N after Grow = %d, want 3", w.N())
	}
	if w.Attempts(0, 1) != att || w.Dropped(0, 1) != drp {
		t.Fatalf("link (0,1) state lost across Grow: attempts %d→%d, dropped %d→%d",
			att, w.Attempts(0, 1), drp, w.Dropped(0, 1))
	}
	if got := w.Stats(); got != before {
		t.Fatalf("totals changed across Grow: %+v → %+v", before, got)
	}
	// The new process's links start fresh and are usable both ways.
	if w.Attempts(0, 2) != 0 || w.Attempts(2, 0) != 0 {
		t.Fatal("fresh links have nonzero attempt counters")
	}
	w.Send(100, 2, 0, 4)
	w.Send(100, 1, 2, 4)
	if w.Attempts(2, 0) != 1 || w.Attempts(1, 2) != 1 {
		t.Fatal("sends on grown links not counted")
	}
	// Same-size Grow is a no-op; shrinking panics.
	w.Grow(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shrinking Grow")
		}
	}()
	w.Grow(2)
}

func TestNetworkGrowPreservesGEState(t *testing.T) {
	// A link pinned in the bad state (GoodToBad=1, BadToGood=0) must stay
	// bad across Grow: per-link burst state survives the remap.
	ge := GilbertElliott{PGood: 0, PBad: 1, GoodToBad: 1, BadToGood: 0, D: FixedDelay(0)}
	w := NewNetwork(2, ge, xrand.New(11))
	w.Send(0, 0, 1, 1) // flips (0,1) to bad
	w.Grow(4)
	if !w.Send(1, 0, 1, 1).Drop {
		t.Fatal("bad-state link forgot its burst state across Grow")
	}
	if w.Send(1, 2, 3, 1).Drop != true {
		// Fresh links start good and flip to bad before judging
		// (GoodToBad=1), so this also drops; the real check is above.
		t.Fatal("unexpected fresh-link verdict")
	}
}
