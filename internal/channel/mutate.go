package channel

import (
	"bytes"
	"fmt"

	"anonurb/internal/xrand"
)

// This file extends the link-model vocabulary beyond what a fair lossy
// channel may legally do. A fair lossy channel never creates, duplicates
// or garbles messages (uniform integrity); the nemesis campaigns
// (internal/nemesis, DESIGN.md §15) deliberately violate those clauses at
// the physical layer to check that the stack converts every violation
// back into the one fault the model does allow — loss — before the
// algorithms see it:
//
//   - a duplicated frame is re-absorbed idempotently (URB receipt is
//     idempotent, so a duplicate is indistinguishable from a
//     retransmission);
//   - a reordered frame is just an unluckily-delayed copy (channels are
//     asynchronous already);
//   - a bit-flipped frame must be rejected at decode time and therefore
//     surface as loss — never as an accepted different message. The
//     BitFlip model enforces this with a Check gate standing in for the
//     link-layer CRC real networks run under every IP packet.
//
// Because some mutations change the bytes on the wire (not just drop or
// delay them), they cannot be expressed through LinkModel's Verdict.
// FrameModel is the extension: a judgement over the encoded frame that
// may yield zero, one or several deliverable copies, each optionally
// carrying mutated bytes.

// Copy is one deliverable copy of a judged frame. Frame is nil when the
// copy carries the original bytes unchanged; a non-nil Frame is a
// mutated replacement (never aliasing the original).
type Copy struct {
	Delay int64
	Frame []byte
}

// FrameModel is a LinkModel that judges the encoded frame itself and may
// duplicate or mutate it. JudgeFrame replaces Judge when the caller can
// supply the bytes (Network.SendFrame); the embedded Judge remains for
// callers that cannot, and must behave as a frame-blind approximation
// (mutation degrades to loss, duplication to a single copy).
type FrameModel interface {
	LinkModel
	// JudgeFrame rules on one attempt, returning every copy that
	// survives: none (dropped), one (the normal case) or several
	// (duplication). frame is read-only; a mutating model must return
	// fresh bytes in Copy.Frame.
	JudgeFrame(now int64, src, dst int, attempt uint64, frame []byte, rng *xrand.Source) []Copy
}

// JudgeCopies judges one attempt through m, using the frame-aware path
// when m supports it and adapting a plain LinkModel verdict otherwise.
// It is the composition helper wrapping models use for their inner Then.
func JudgeCopies(m LinkModel, now int64, src, dst int, attempt uint64, frame []byte, rng *xrand.Source) []Copy {
	if fm, ok := m.(FrameModel); ok {
		return fm.JudgeFrame(now, src, dst, attempt, frame, rng)
	}
	v := m.Judge(now, src, dst, attempt, rng)
	if v.Drop {
		return nil
	}
	return []Copy{{Delay: v.Delay}}
}

// Duplicate re-sends a surviving copy with probability P: the duplicate
// traverses Then independently (it may itself be dropped, delayed
// differently, or mutated by a nested model). Max bounds the extra
// copies per attempt (default 1). Channels never duplicate under the
// fair lossy model; this model exists for nemesis campaigns probing that
// receipt stays idempotent when the physical layer misbehaves.
type Duplicate struct {
	P    float64
	Max  int
	Then LinkModel
}

// Judge implements LinkModel: frame-blind, duplication degrades to a
// single copy (the closest LinkModel can express).
func (d Duplicate) Judge(now int64, src, dst int, attempt uint64, rng *xrand.Source) Verdict {
	return d.Then.Judge(now, src, dst, attempt, rng)
}

// JudgeFrame implements FrameModel.
func (d Duplicate) JudgeFrame(now int64, src, dst int, attempt uint64, frame []byte, rng *xrand.Source) []Copy {
	out := JudgeCopies(d.Then, now, src, dst, attempt, frame, rng)
	if len(out) == 0 || !rng.Bool(d.P) {
		return out
	}
	max := d.Max
	if max < 1 {
		max = 1
	}
	extra := 1
	if max > 1 {
		extra = 1 + int(rng.Int63n(int64(max)))
	}
	for i := 0; i < extra; i++ {
		out = append(out, JudgeCopies(d.Then, now, src, dst, attempt, frame, rng)...)
	}
	return out
}

// String implements LinkModel.
func (d Duplicate) String() string { return fmt.Sprintf("dup(p=%g,max=%d)->%s", d.P, d.Max, d.Then) }

// Reorder delays a surviving copy by an extra uniform [1, Window] units
// with probability P, letting copies sent later overtake it — forced
// reordering within a bounded window. Channels are asynchronous already,
// so this violates nothing; it concentrates an adversarial schedule that
// random delays reach only rarely.
type Reorder struct {
	P      float64
	Window int64
	Then   LinkModel
}

// Judge implements LinkModel.
func (r Reorder) Judge(now int64, src, dst int, attempt uint64, rng *xrand.Source) Verdict {
	v := r.Then.Judge(now, src, dst, attempt, rng)
	if !v.Drop && r.Window > 0 && rng.Bool(r.P) {
		v.Delay += 1 + rng.Int63n(r.Window)
	}
	return v
}

// JudgeFrame implements FrameModel, stretching each surviving copy
// independently so even duplicates reorder against each other.
func (r Reorder) JudgeFrame(now int64, src, dst int, attempt uint64, frame []byte, rng *xrand.Source) []Copy {
	out := JudgeCopies(r.Then, now, src, dst, attempt, frame, rng)
	for i := range out {
		if r.Window > 0 && rng.Bool(r.P) {
			out[i].Delay += 1 + rng.Int63n(r.Window)
		}
	}
	return out
}

// String implements LinkModel.
func (r Reorder) String() string {
	return fmt.Sprintf("reorder(p=%g,w=%d)->%s", r.P, r.Window, r.Then)
}

// BitFlip flips one uniformly-chosen bit of a surviving copy with
// probability P, then consults Check — the stand-in for the link-layer
// CRC — on whether the mutated bytes may be put on the wire at all:
//
//   - Check nil (the default) drops every mutated copy: the CRC caught
//     the corruption, the copy is lost. Mutation == loss, exactly.
//   - Check non-nil (canonically nemesis.FlipGate) delivers the mutated
//     bytes only when Check(orig, mut) proves a receiver can extract
//     nothing from them but a prefix of the original messages — i.e.
//     the corruption can only truncate, never fabricate. Anything else
//     is dropped.
//
// Either way a flip never surfaces as an accepted different message;
// the fair lossy model's uniform integrity survives the violation.
type BitFlip struct {
	P     float64
	Check func(orig, mut []byte) bool
	Then  LinkModel
}

// Judge implements LinkModel: frame-blind, a flip is a loss.
func (b BitFlip) Judge(now int64, src, dst int, attempt uint64, rng *xrand.Source) Verdict {
	v := b.Then.Judge(now, src, dst, attempt, rng)
	if !v.Drop && rng.Bool(b.P) {
		v.Drop = true
	}
	return v
}

// JudgeFrame implements FrameModel.
func (b BitFlip) JudgeFrame(now int64, src, dst int, attempt uint64, frame []byte, rng *xrand.Source) []Copy {
	out := JudgeCopies(b.Then, now, src, dst, attempt, frame, rng)
	kept := out[:0]
	for _, c := range out {
		if !rng.Bool(b.P) {
			kept = append(kept, c)
			continue
		}
		orig := frame
		if c.Frame != nil {
			orig = c.Frame
		}
		if len(orig) == 0 {
			continue // nothing to flip; an empty frame is dropped whole
		}
		mut := append([]byte(nil), orig...)
		bit := rng.Int63n(int64(len(mut)) * 8)
		mut[bit/8] ^= 1 << uint(bit%8)
		if b.Check == nil || !b.Check(orig, mut) {
			continue // CRC caught it: the copy is lost
		}
		c.Frame = mut
		kept = append(kept, c)
	}
	return kept
}

// String implements LinkModel.
func (b BitFlip) String() string { return fmt.Sprintf("bitflip(p=%g)->%s", b.P, b.Then) }

// OneWay cuts the directed links for which Cut(src, dst) is true until
// the given virtual time, then behaves as Then everywhere: the
// asymmetric partition, where a can reach b but not vice versa. With a
// finite Until the model remains fair lossy.
type OneWay struct {
	Until int64
	Cut   func(src, dst int) bool
	Then  LinkModel
}

// Judge implements LinkModel.
func (o OneWay) Judge(now int64, src, dst int, attempt uint64, rng *xrand.Source) Verdict {
	if now < o.Until && o.Cut(src, dst) {
		return Verdict{Drop: true}
	}
	return o.Then.Judge(now, src, dst, attempt, rng)
}

// JudgeFrame implements FrameModel so cut verdicts compose with nested
// mutators.
func (o OneWay) JudgeFrame(now int64, src, dst int, attempt uint64, frame []byte, rng *xrand.Source) []Copy {
	if now < o.Until && o.Cut(src, dst) {
		return nil
	}
	return JudgeCopies(o.Then, now, src, dst, attempt, frame, rng)
}

// String implements LinkModel.
func (o OneWay) String() string { return fmt.Sprintf("oneway(until=%d)->%s", o.Until, o.Then) }

// SameFrame reports whether a copy delivers the original frame bytes
// unchanged (either unmutated, or mutated back into byte equality).
func (c Copy) SameFrame(orig []byte) bool {
	return c.Frame == nil || bytes.Equal(c.Frame, orig)
}
