package channel

import (
	"fmt"

	"anonurb/internal/xrand"
)

// Network is the full n×n mesh of directed fair lossy links. It owns the
// per-link attempt counters (feeding LinkModel.Judge and the fairness
// accounting), the per-link burst state for Gilbert–Elliott models, and
// the loss/delivery statistics the metrics layer reads.
//
// Network is not safe for concurrent use; the deterministic simulator
// serialises all sends, and the live runtime gives each link goroutine its
// own Network-free model instance.
type Network struct {
	n     int
	model LinkModel
	rng   *xrand.Source

	attempts []uint64 // per directed link src*n+dst
	dropped  []uint64
	geBad    []bool // Gilbert–Elliott per-link state

	totalSent    uint64
	totalDropped uint64
	totalBytes   uint64
	totalMutated uint64
	totalDuped   uint64
}

// NewNetwork builds a mesh of n processes all using the same LinkModel,
// with randomness drawn from rng (the Network takes ownership of the
// stream).
func NewNetwork(n int, model LinkModel, rng *xrand.Source) *Network {
	return &Network{
		n:        n,
		model:    model,
		rng:      rng,
		attempts: make([]uint64, n*n),
		dropped:  make([]uint64, n*n),
		geBad:    make([]bool, n*n),
	}
}

// N returns the number of processes in the mesh.
func (w *Network) N() int { return w.n }

// Grow extends the mesh to n processes, preserving every existing
// directed link's attempt counters and Gilbert–Elliott burst state; the
// new processes' links start fresh. This is the network half of dynamic
// membership: a joining node gets a new row and column of links.
// Shrinking panics — links never disappear, a leaving process just
// falls silent and D4 forgets it.
func (w *Network) Grow(n int) {
	if n < w.n {
		panic(fmt.Sprintf("channel: cannot shrink mesh from %d to %d", w.n, n))
	}
	if n == w.n {
		return
	}
	attempts := make([]uint64, n*n)
	dropped := make([]uint64, n*n)
	geBad := make([]bool, n*n)
	for src := 0; src < w.n; src++ {
		copy(attempts[src*n:], w.attempts[src*w.n:(src+1)*w.n])
		copy(dropped[src*n:], w.dropped[src*w.n:(src+1)*w.n])
		copy(geBad[src*n:], w.geBad[src*w.n:(src+1)*w.n])
	}
	w.attempts, w.dropped, w.geBad = attempts, dropped, geBad
	w.n = n
}

// Model returns the link model in force.
func (w *Network) Model() LinkModel { return w.model }

func (w *Network) link(src, dst int) int {
	if src < 0 || src >= w.n || dst < 0 || dst >= w.n {
		panic(fmt.Sprintf("channel: link (%d,%d) out of range n=%d", src, dst, w.n))
	}
	return src*w.n + dst
}

// Send rules on one copy of a message of the given encoded size travelling
// src→dst at virtual time now. It updates the attempt counters and
// statistics and returns the verdict.
func (w *Network) Send(now int64, src, dst int, size int) Verdict {
	l := w.link(src, dst)
	attempt := w.attempts[l]
	w.attempts[l]++
	w.totalSent++
	w.totalBytes += uint64(size)

	var v Verdict
	if ge, ok := w.model.(GilbertElliott); ok {
		v = w.judgeGE(ge, l)
	} else {
		v = w.model.Judge(now, src, dst, attempt, w.rng)
	}
	if v.Drop {
		w.dropped[l]++
		w.totalDropped++
	}
	if v.Delay < 0 {
		v.Delay = 0
	}
	return v
}

// SendFrame rules on one copy of an encoded frame travelling src→dst at
// virtual time now, through the frame-aware judging path: a FrameModel
// may drop the frame, duplicate it or mutate its bytes, so the result is
// a copy list rather than a single verdict. Plain LinkModels behave
// exactly as under Send (one copy or none). An attempt whose copy list
// comes back empty counts as dropped; mutated and extra copies feed the
// Mutated/Duplicated statistics.
func (w *Network) SendFrame(now int64, src, dst int, frame []byte) []Copy {
	l := w.link(src, dst)
	attempt := w.attempts[l]
	w.attempts[l]++
	w.totalSent++
	w.totalBytes += uint64(len(frame))

	var copies []Copy
	switch m := w.model.(type) {
	case GilbertElliott:
		if v := w.judgeGE(m, l); !v.Drop {
			copies = []Copy{{Delay: v.Delay}}
		}
	case FrameModel:
		copies = m.JudgeFrame(now, src, dst, attempt, frame, w.rng)
	default:
		if v := w.model.Judge(now, src, dst, attempt, w.rng); !v.Drop {
			copies = []Copy{{Delay: v.Delay}}
		}
	}
	if len(copies) == 0 {
		w.dropped[l]++
		w.totalDropped++
		return nil
	}
	for i := range copies {
		if copies[i].Delay < 0 {
			copies[i].Delay = 0
		}
		if copies[i].Frame != nil {
			w.totalMutated++
		}
	}
	if len(copies) > 1 {
		w.totalDuped += uint64(len(copies) - 1)
	}
	return copies
}

// judgeGE applies a Gilbert–Elliott model with real per-link state: first
// the state may flip, then the loss probability of the current state
// applies.
func (w *Network) judgeGE(ge GilbertElliott, l int) Verdict {
	if w.geBad[l] {
		if w.rng.Bool(ge.BadToGood) {
			w.geBad[l] = false
		}
	} else {
		if w.rng.Bool(ge.GoodToBad) {
			w.geBad[l] = true
		}
	}
	p := ge.PGood
	if w.geBad[l] {
		p = ge.PBad
	}
	if w.rng.Bool(p) {
		return Verdict{Drop: true}
	}
	return Verdict{Delay: ge.D.Delay(w.rng)}
}

// Attempts returns how many copies have been sent on the directed link.
func (w *Network) Attempts(src, dst int) uint64 { return w.attempts[w.link(src, dst)] }

// Dropped returns how many copies were lost on the directed link.
func (w *Network) Dropped(src, dst int) uint64 { return w.dropped[w.link(src, dst)] }

// Stats summarises the whole mesh.
type Stats struct {
	Sent    uint64 // copies offered to the network (n copies per broadcast)
	Dropped uint64
	Bytes   uint64 // encoded bytes offered
	// Mutated counts copies delivered with mutated bytes (FrameModel
	// path only; a mutation the model's gate rejected counts as Dropped
	// instead). Duplicated counts the extra copies beyond the first that
	// a duplicating model produced.
	Mutated    uint64
	Duplicated uint64
}

// Stats returns the running totals.
func (w *Network) Stats() Stats {
	return Stats{
		Sent: w.totalSent, Dropped: w.totalDropped, Bytes: w.totalBytes,
		Mutated: w.totalMutated, Duplicated: w.totalDuped,
	}
}

// LossRate returns the observed fraction of dropped copies.
func (w *Network) LossRate() float64 {
	if w.totalSent == 0 {
		return 0
	}
	return float64(w.totalDropped) / float64(w.totalSent)
}
