// Package channel models the paper's communication substrate: bidirectional
// point-to-point fair lossy channels between every pair of processes.
//
// A fair lossy channel (Aguilera, Toueg, Deianov; Basu, Charron-Bost,
// Toueg) satisfies:
//
//   - Fairness: if p sends m to q infinitely often and q is correct, q
//     eventually receives m.
//   - Uniform integrity: q receives m only if p sent it, and receives m
//     infinitely often only if p sent it infinitely often. Channels never
//     create, duplicate or garble messages.
//
// The simulator realises a channel as a LinkModel deciding, per send
// attempt, whether the copy is dropped and how long it is delayed. The
// stock models either satisfy fairness almost surely (Bernoulli with
// p < 1, Gilbert–Elliott with a reachable good state) or deterministically
// (DropFirst, Partition with a finite horizon). Blackhole violates
// fairness by design and exists for the Theorem 2 impossibility
// construction, where the only messages it swallows are the finitely many
// copies sent by processes that crash.
//
// The package is independent of the simulator: time is plain int64 virtual
// nanoseconds, and randomness comes from an injected xrand stream, so the
// same models also back the live goroutine runtime.
package channel

import (
	"fmt"

	"anonurb/internal/xrand"
)

// Verdict is a link's decision about one send attempt.
type Verdict struct {
	// Drop indicates the copy is lost; Delay is then meaningless.
	Drop bool
	// Delay is the link latency applied to this copy, in virtual
	// nanoseconds. Independent per-copy delays model asynchrony: copies
	// may be reordered arbitrarily.
	Delay int64
}

// LinkModel decides the fate of each send attempt on one directed link.
// Implementations must be deterministic given the injected randomness.
type LinkModel interface {
	// Judge rules on one attempt. now is the send time; src and dst are
	// simulator bookkeeping indices (never visible to the algorithms);
	// attempt counts prior sends on this directed link (0-based).
	Judge(now int64, src, dst int, attempt uint64, rng *xrand.Source) Verdict
	// String describes the model for scenario tables.
	String() string
}

// Delayer produces per-copy latencies.
type Delayer interface {
	Delay(rng *xrand.Source) int64
	String() string
}

// FixedDelay is a constant latency.
type FixedDelay int64

// Delay implements Delayer.
func (d FixedDelay) Delay(*xrand.Source) int64 { return int64(d) }

// String implements Delayer.
func (d FixedDelay) String() string { return fmt.Sprintf("fixed(%d)", int64(d)) }

// UniformDelay draws latencies uniformly from [Min, Max].
type UniformDelay struct {
	Min, Max int64
}

// Delay implements Delayer.
func (d UniformDelay) Delay(rng *xrand.Source) int64 {
	if d.Max <= d.Min {
		return d.Min
	}
	return rng.Range(d.Min, d.Max)
}

// String implements Delayer.
func (d UniformDelay) String() string { return fmt.Sprintf("uniform[%d,%d]", d.Min, d.Max) }

// ExpDelay draws latencies Base + Exp(Mean); the exponential tail models
// asynchrony with unbounded (but integrable) delays.
type ExpDelay struct {
	Base int64
	Mean float64
}

// Delay implements Delayer.
func (d ExpDelay) Delay(rng *xrand.Source) int64 {
	return d.Base + int64(rng.Exp(d.Mean))
}

// String implements Delayer.
func (d ExpDelay) String() string { return fmt.Sprintf("exp(base=%d,mean=%g)", d.Base, d.Mean) }

// Reliable never drops; it is the control condition in the sweeps.
type Reliable struct {
	D Delayer
}

// Judge implements LinkModel.
func (r Reliable) Judge(_ int64, _, _ int, _ uint64, rng *xrand.Source) Verdict {
	return Verdict{Delay: r.D.Delay(rng)}
}

// String implements LinkModel.
func (r Reliable) String() string { return "reliable/" + r.D.String() }

// Bernoulli drops each copy independently with probability P. For P < 1
// it is fair lossy almost surely: a message sent infinitely often gets
// through with probability 1.
type Bernoulli struct {
	P float64
	D Delayer
}

// Judge implements LinkModel.
func (b Bernoulli) Judge(_ int64, _, _ int, _ uint64, rng *xrand.Source) Verdict {
	if rng.Bool(b.P) {
		return Verdict{Drop: true}
	}
	return Verdict{Delay: b.D.Delay(rng)}
}

// String implements LinkModel.
func (b Bernoulli) String() string { return fmt.Sprintf("bernoulli(p=%g)/%s", b.P, b.D) }

// GilbertElliott is the classic two-state burst-loss model: a link
// alternates between a Good state (loss PGood) and a Bad state (loss
// PBad), switching with the given per-attempt probabilities. It models
// bursty real-world loss while remaining fair lossy a.s. as long as the
// good state is reachable and PGood < 1.
//
// State is per directed link and lives in the Network wrapper, so the
// model value itself stays immutable and shareable.
type GilbertElliott struct {
	PGood, PBad          float64
	GoodToBad, BadToGood float64
	D                    Delayer
}

// String implements LinkModel.
func (g GilbertElliott) String() string {
	return fmt.Sprintf("gilbert(pg=%g,pb=%g,g2b=%g,b2g=%g)/%s",
		g.PGood, g.PBad, g.GoodToBad, g.BadToGood, g.D)
}

// Judge implements LinkModel, but without burst state; use it only via
// Network, which tracks the per-link state. Standalone Judge behaves as
// the stationary mix and exists so the interface is satisfied.
func (g GilbertElliott) Judge(_ int64, _, _ int, _ uint64, rng *xrand.Source) Verdict {
	// Stationary probability of Bad ≈ g2b/(g2b+b2g).
	pBadState := 0.5
	if g.GoodToBad+g.BadToGood > 0 {
		pBadState = g.GoodToBad / (g.GoodToBad + g.BadToGood)
	}
	p := g.PGood
	if rng.Bool(pBadState) {
		p = g.PBad
	}
	if rng.Bool(p) {
		return Verdict{Drop: true}
	}
	return Verdict{Delay: g.D.Delay(rng)}
}

// DropFirst drops the first K attempts on every directed link, then
// behaves as Then. It is deterministically fair lossy and is the
// worst-case model for "retransmit until it sticks" liveness tests.
type DropFirst struct {
	K    uint64
	Then LinkModel
}

// Judge implements LinkModel.
func (d DropFirst) Judge(now int64, src, dst int, attempt uint64, rng *xrand.Source) Verdict {
	if attempt < d.K {
		return Verdict{Drop: true}
	}
	return d.Then.Judge(now, src, dst, attempt, rng)
}

// String implements LinkModel.
func (d DropFirst) String() string { return fmt.Sprintf("dropfirst(%d)->%s", d.K, d.Then) }

// Partition drops every copy crossing between the two groups until the
// given virtual time, then behaves as Then everywhere. Membership is by
// simulator index: InGroupA reports side A. With a finite Until the model
// remains fair lossy.
type Partition struct {
	Until    int64
	InGroupA func(proc int) bool
	Then     LinkModel
}

// Judge implements LinkModel.
func (p Partition) Judge(now int64, src, dst int, attempt uint64, rng *xrand.Source) Verdict {
	if now < p.Until && p.InGroupA(src) != p.InGroupA(dst) {
		return Verdict{Drop: true}
	}
	return p.Then.Judge(now, src, dst, attempt, rng)
}

// String implements LinkModel.
func (p Partition) String() string { return fmt.Sprintf("partition(until=%d)->%s", p.Until, p.Then) }

// Blackhole drops everything, forever. It is NOT fair lossy; it exists
// solely for the Theorem 2 construction, where all copies sent by the
// soon-to-crash group are lost (legal because those processes send only
// finitely many copies before crashing).
type Blackhole struct{}

// Judge implements LinkModel.
func (Blackhole) Judge(int64, int, int, uint64, *xrand.Source) Verdict {
	return Verdict{Drop: true}
}

// String implements LinkModel.
func (Blackhole) String() string { return "blackhole" }

// SlowSink drops the first K copies on every link INTO process Dst and
// defers to Then everywhere else (and on Dst's links after K attempts).
// It stays deterministically fair lossy while making one process
// arbitrarily late — the adversary for the failure detector ablation
// (experiment T4), where a premature retirement starves exactly such a
// slow-but-correct process.
type SlowSink struct {
	Dst  int
	K    uint64
	Then LinkModel
}

// Judge implements LinkModel.
func (s SlowSink) Judge(now int64, src, dst int, attempt uint64, rng *xrand.Source) Verdict {
	if dst == s.Dst && attempt < s.K {
		return Verdict{Drop: true}
	}
	return s.Then.Judge(now, src, dst, attempt, rng)
}

// String implements LinkModel.
func (s SlowSink) String() string { return fmt.Sprintf("slowsink(p%d,%d)->%s", s.Dst, s.K, s.Then) }

// Script replays a scripted decision sequence per directed link; attempts
// beyond the script fall through to Then. It gives tests exact control
// over which copies survive.
type Script struct {
	// Drops[src][dst] lists, per attempt index, whether that attempt is
	// dropped. Missing links or attempts defer to Then.
	Drops map[int]map[int][]bool
	Then  LinkModel
}

// Judge implements LinkModel.
func (s Script) Judge(now int64, src, dst int, attempt uint64, rng *xrand.Source) Verdict {
	if byDst, ok := s.Drops[src]; ok {
		if seq, ok := byDst[dst]; ok && attempt < uint64(len(seq)) {
			if seq[attempt] {
				return Verdict{Drop: true}
			}
			// Scripted "keep": still ask Then for the delay but never drop.
			v := s.Then.Judge(now, src, dst, attempt, rng)
			v.Drop = false
			return v
		}
	}
	return s.Then.Judge(now, src, dst, attempt, rng)
}

// String implements LinkModel.
func (s Script) String() string { return fmt.Sprintf("script(%d links)->%s", len(s.Drops), s.Then) }
