package rb

import (
	"testing"

	"anonurb/internal/channel"
	"anonurb/internal/ident"
	"anonurb/internal/sim"
	"anonurb/internal/trace"
	"anonurb/internal/urb"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

func src(seed uint64) *ident.Source { return ident.NewSource(xrand.New(seed)) }

func TestBestEffortDeliversOnceOnReception(t *testing.T) {
	p := NewBestEffort(src(1))
	id := wire.MsgID{Tag: ident.Tag{Hi: 1, Lo: 1}, Body: "m"}
	s := p.Receive(wire.NewMsg(id))
	if len(s.Deliveries) != 1 {
		t.Fatal("no delivery on first reception")
	}
	s = p.Receive(wire.NewMsg(id))
	if len(s.Deliveries) != 0 {
		t.Fatal("duplicate delivery")
	}
	if p.Stats().Delivered != 1 {
		t.Fatal("stats")
	}
}

func TestBestEffortBroadcastSelfDelivers(t *testing.T) {
	p := NewBestEffort(src(2))
	id, s := p.Broadcast([]byte("x"))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].Kind != wire.KindMsg {
		t.Fatal("must transmit exactly once")
	}
	if len(s.Deliveries) != 1 || s.Deliveries[0].ID != id {
		t.Fatal("sender must self-deliver")
	}
	// No periodic retransmission.
	if ticks := p.Tick(); len(ticks.Broadcasts) != 0 {
		t.Fatal("best effort must not retransmit")
	}
}

func TestBestEffortIgnoresAcks(t *testing.T) {
	p := NewBestEffort(src(3))
	s := p.Receive(wire.NewAck(wire.MsgID{Tag: ident.Tag{Hi: 1}, Body: "m"}, ident.Tag{Hi: 2}))
	if len(s.Deliveries)+len(s.Broadcasts) != 0 {
		t.Fatal("BEB has no ACK handling")
	}
}

func TestEagerRBRelaysExactlyOnce(t *testing.T) {
	p := NewEagerRB(src(4))
	id := wire.MsgID{Tag: ident.Tag{Hi: 1, Lo: 1}, Body: "m"}
	s := p.Receive(wire.NewMsg(id))
	if len(s.Broadcasts) != 1 || len(s.Deliveries) != 1 {
		t.Fatalf("first reception should relay+deliver: %v", s)
	}
	s = p.Receive(wire.NewMsg(id))
	if len(s.Broadcasts)+len(s.Deliveries) != 0 {
		t.Fatal("relay must happen exactly once")
	}
}

func TestIDedMajorityByIdentity(t *testing.T) {
	p := NewIDed(0, 3, src(5))
	id := wire.MsgID{Tag: ident.Tag{Hi: 1, Lo: 1}, Body: "m"}
	ackFrom := func(who uint64) wire.Message {
		return wire.NewAck(id, ident.Tag{Hi: idSentinel, Lo: who})
	}
	p.Receive(ackFrom(1))
	s := p.Receive(ackFrom(1)) // duplicate identity
	if len(s.Deliveries) != 0 {
		t.Fatal("duplicate identity counted")
	}
	s = p.Receive(ackFrom(2))
	if len(s.Deliveries) != 1 {
		t.Fatal("majority of identities should deliver")
	}
	// Receiving MSG generates an identity-ACK.
	s = p.Receive(wire.NewMsg(id))
	if len(s.Broadcasts) != 1 || s.Broadcasts[0].AckTag.Lo != 0 ||
		s.Broadcasts[0].AckTag.Hi != idSentinel {
		t.Fatalf("identity ack malformed: %v", s.Broadcasts)
	}
	// Non-identity acks are ignored.
	s = p.Receive(wire.NewAck(id, ident.Tag{Hi: 7, Lo: 7}))
	if len(s.Deliveries) != 0 {
		t.Fatal("foreign ack accepted")
	}
}

func TestIDedRetransmitsForever(t *testing.T) {
	p := NewIDed(1, 3, src(6))
	p.Broadcast([]byte("m"))
	for i := 0; i < 10; i++ {
		if len(p.Tick().Broadcasts) != 1 {
			t.Fatal("IDed URB must retransmit like Algorithm 1")
		}
	}
	if p.Stats().MsgSet != 1 {
		t.Fatal("stats")
	}
}

// simFactoryBEB et al. adapt the baselines to the simulator.
func beFactory() sim.Factory {
	return func(env sim.Env) urb.Process { return NewBestEffort(env.Tags) }
}

func eagerFactory() sim.Factory {
	return func(env sim.Env) urb.Process { return NewEagerRB(env.Tags) }
}

func idedFactory(n int) sim.Factory {
	return func(env sim.Env) urb.Process { return NewIDed(env.Index, n, env.Tags) }
}

func TestBestEffortLosesAgreementUnderLoss(t *testing.T) {
	// One shot over a 60%-lossy network: with high probability some
	// process misses the single copy and BEB never recovers — that is
	// the gap URB closes. (Deterministic seed: the gap reliably shows.)
	const n = 8
	res := sim.NewEngine(sim.Config{
		N:          n,
		Factory:    beFactory(),
		Link:       channel.Bernoulli{P: 0.6, D: channel.FixedDelay(2)},
		Seed:       12,
		MaxTime:    2_000,
		Broadcasts: []sim.ScheduledBroadcast{{At: 5, Proc: 0, Body: []byte("m")}},
	}).Run()
	got := 0
	for _, ds := range res.Deliveries {
		got += len(ds)
	}
	if got == 0 || got == n {
		t.Fatalf("seed should produce partial delivery for the demo, got %d/%d", got, n)
	}
	rep := trace.CheckResult(res)
	agreementBroken := false
	for _, v := range rep.Violations {
		if v.Property == "uniform-agreement" {
			agreementBroken = true
		}
	}
	if !agreementBroken {
		t.Fatal("expected the checker to flag BEB's missing agreement")
	}
}

func TestEagerRBConvergesOnReliableChannels(t *testing.T) {
	// On reliable channels eager RB delivers everywhere in one round —
	// its home turf.
	const n = 6
	res := sim.NewEngine(sim.Config{
		N:                n,
		Factory:          eagerFactory(),
		Link:             channel.Reliable{D: channel.FixedDelay(2)},
		Seed:             13,
		MaxTime:          2_000,
		Broadcasts:       []sim.ScheduledBroadcast{{At: 5, Proc: 0, Body: []byte("m")}},
		ExpectDeliveries: 1,
	}).Run()
	rep := trace.CheckResult(res)
	if err := rep.Err(); err != nil {
		t.Fatalf("eager RB on reliable channels must be clean: %v", err)
	}
	for i, ds := range res.Deliveries {
		if len(ds) != 1 {
			t.Fatalf("p%d delivered %d", i, len(ds))
		}
	}
}

func TestIDedConvergesUnderLossAndCrashes(t *testing.T) {
	const n = 5
	res := sim.NewEngine(sim.Config{
		N:                n,
		Factory:          idedFactory(n),
		Link:             channel.Bernoulli{P: 0.3, D: channel.UniformDelay{Min: 1, Max: 4}},
		Seed:             14,
		MaxTime:          50_000,
		CrashAt:          []sim.Time{sim.Never, sim.Never, sim.Never, sim.Never, 40},
		Broadcasts:       []sim.ScheduledBroadcast{{At: 5, Proc: 0, Body: []byte("m")}},
		ExpectDeliveries: 1,
	}).Run()
	rep := trace.CheckResult(res)
	if err := rep.Err(); err != nil {
		t.Fatalf("IDed URB run not clean: %v", err)
	}
	for i := 0; i < 4; i++ {
		if len(res.Deliveries[i]) != 1 {
			t.Fatalf("correct p%d did not deliver", i)
		}
	}
}

func TestAnonymousRBDeliverOnFirstReception(t *testing.T) {
	p := NewAnonymousRB(src(7))
	id := wire.MsgID{Tag: ident.Tag{Hi: 4, Lo: 4}, Body: "m"}
	s := p.Receive(wire.NewMsg(id))
	if len(s.Deliveries) != 1 {
		t.Fatal("no delivery on first reception")
	}
	if len(p.Tick().Broadcasts) != 1 {
		t.Fatal("receiver must join the forever-retransmission")
	}
	if len(p.Receive(wire.NewMsg(id)).Deliveries) != 0 {
		t.Fatal("duplicate delivery")
	}
}

func TestAnonymousRBBroadcasterSelfDelivers(t *testing.T) {
	p := NewAnonymousRB(src(8))
	id, s := p.Broadcast([]byte("mine"))
	if len(s.Deliveries) != 1 || s.Deliveries[0].ID != id {
		t.Fatal("broadcaster must deliver its own message immediately")
	}
	for i := 0; i < 5; i++ {
		if len(p.Tick().Broadcasts) != 1 {
			t.Fatal("non-quiescent by design")
		}
	}
	if st := p.Stats(); st.MsgSet != 1 || st.Delivered != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestAnonymousRBIgnoresAcksAndBeats(t *testing.T) {
	p := NewAnonymousRB(src(9))
	id := wire.MsgID{Tag: ident.Tag{Hi: 4, Lo: 4}, Body: "m"}
	if s := p.Receive(wire.NewAck(id, ident.Tag{Hi: 1, Lo: 1})); len(s.Deliveries) != 0 {
		t.Fatal("ACKs are not AnonymousRB traffic")
	}
	if s := p.Receive(wire.NewBeat(ident.Tag{Hi: 2, Lo: 2})); len(s.Deliveries) != 0 {
		t.Fatal("beats are not AnonymousRB traffic")
	}
}

func TestAnonymousRBCorrectAgreementUnderLoss(t *testing.T) {
	// All-correct run over a 40%-lossy mesh: forever-retransmission gets
	// everything everywhere (the companion TR's claim).
	const n = 5
	res := sim.NewEngine(sim.Config{
		N:                n,
		Factory:          func(env sim.Env) urb.Process { return NewAnonymousRB(env.Tags) },
		Link:             channel.Bernoulli{P: 0.4, D: channel.UniformDelay{Min: 1, Max: 4}},
		Seed:             41,
		MaxTime:          100_000,
		Broadcasts:       []sim.ScheduledBroadcast{{At: 5, Proc: 0, Body: []byte("rb")}},
		ExpectDeliveries: 1,
	}).Run()
	for i, ds := range res.Deliveries {
		if len(ds) != 1 {
			t.Fatalf("p%d delivered %d", i, len(ds))
		}
	}
	if err := trace.CheckResult(res).Err(); err != nil {
		t.Fatal(err)
	}
}
