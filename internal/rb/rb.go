// Package rb provides the baseline broadcast abstractions the paper
// positions URB against (Section I): best-effort broadcast and (eager,
// non-uniform) reliable broadcast, plus a classic identifier-based URB
// for quantifying the cost of anonymity.
//
// All baselines implement the same urb.Process interface, so the
// simulator, the checkers and the benchmark harness treat them
// uniformly. Their *failures* are the point: under crashes and fair
// lossy channels the trace checker shows exactly which guarantee each
// abstraction loses (experiment T5), and the ID-based URB isolates what
// anonymity costs on the wire (experiment F7).
package rb

import (
	"anonurb/internal/ident"
	"anonurb/internal/urb"
	"anonurb/internal/wire"
)

// BestEffort is best-effort broadcast: the sender transmits once; whoever
// receives, delivers. No retransmission, no acknowledgements.
//
// Guarantees: integrity only. If the sender crashes — or the channel
// drops a copy, which a fair lossy channel may do to any FINITE set of
// sends — some correct processes deliver and others never do.
type BestEffort struct {
	tags      *ident.Source
	delivered map[wire.MsgID]bool
	wireSent  uint64
	deliverCt int
}

var _ urb.Process = (*BestEffort)(nil)

// NewBestEffort builds a best-effort broadcast process.
func NewBestEffort(tags *ident.Source) *BestEffort {
	return &BestEffort{tags: tags, delivered: make(map[wire.MsgID]bool)}
}

// Broadcast implements urb.Process: transmit once, immediately.
func (p *BestEffort) Broadcast(body []byte) (wire.MsgID, urb.Step) {
	id := wire.NewMsgID(p.tags.Next(), body)
	p.wireSent++
	var out urb.Step
	out.Broadcasts = append(out.Broadcasts, wire.NewMsg(id))
	// The sender delivers locally at once (it is its own recipient in
	// spirit; the self copy may be lost by the channel, so deliver here
	// to give BEB its best shot at validity).
	p.deliver(&out, id)
	return id, out
}

func (p *BestEffort) deliver(out *urb.Step, id wire.MsgID) {
	if p.delivered[id] {
		return
	}
	p.delivered[id] = true
	p.deliverCt++
	out.Deliveries = append(out.Deliveries, urb.Delivery{ID: id})
}

// Receive implements urb.Process: deliver on first reception.
func (p *BestEffort) Receive(m wire.Message) urb.Step {
	var out urb.Step
	if m.Kind == wire.KindMsg {
		p.deliver(&out, m.ID())
	}
	return out
}

// Tick implements urb.Process: best-effort broadcast has no periodic
// task.
func (p *BestEffort) Tick() urb.Step { return urb.Step{} }

// Stats implements urb.Process.
func (p *BestEffort) Stats() urb.Stats {
	return urb.Stats{Delivered: p.deliverCt, WireSent: p.wireSent}
}

// EagerRB is the classic eager (flooding) reliable broadcast: on FIRST
// reception of a message, re-broadcast it once, then deliver.
//
// Guarantees on reliable channels: agreement among correct processes
// (not uniform — a process may deliver and crash before its relay gets
// out... actually the relay goes out first, but the relay copies can be
// lost). On fair lossy channels even correct-process agreement breaks:
// each process relays only once, so the channel may drop every copy of a
// finite relay set. The paper's algorithms retransmit forever precisely
// to beat this.
type EagerRB struct {
	tags      *ident.Source
	delivered map[wire.MsgID]bool
	wireSent  uint64
}

var _ urb.Process = (*EagerRB)(nil)

// NewEagerRB builds an eager reliable broadcast process.
func NewEagerRB(tags *ident.Source) *EagerRB {
	return &EagerRB{tags: tags, delivered: make(map[wire.MsgID]bool)}
}

// Broadcast implements urb.Process.
func (p *EagerRB) Broadcast(body []byte) (wire.MsgID, urb.Step) {
	id := wire.NewMsgID(p.tags.Next(), body)
	var out urb.Step
	p.wireSent++
	out.Broadcasts = append(out.Broadcasts, wire.NewMsg(id))
	p.delivered[id] = true
	out.Deliveries = append(out.Deliveries, urb.Delivery{ID: id})
	return id, out
}

// Receive implements urb.Process: relay once, then deliver.
func (p *EagerRB) Receive(m wire.Message) urb.Step {
	var out urb.Step
	if m.Kind != wire.KindMsg {
		return out
	}
	id := m.ID()
	if p.delivered[id] {
		return out
	}
	p.delivered[id] = true
	p.wireSent++
	out.Broadcasts = append(out.Broadcasts, wire.NewMsg(id)) // relay first
	out.Deliveries = append(out.Deliveries, urb.Delivery{ID: id})
	return out
}

// Tick implements urb.Process: eager RB has no periodic task.
func (p *EagerRB) Tick() urb.Step { return urb.Step{} }

// Stats implements urb.Process.
func (p *EagerRB) Stats() urb.Stats {
	return urb.Stats{Delivered: len(p.delivered), WireSent: p.wireSent}
}

// IDed is the classic NON-anonymous majority URB (Hadzilacos & Toueg
// style, adapted to fair lossy channels): processes have identifiers, an
// acknowledgement carries the acker's identity, and a message is
// delivered once a majority of DISTINCT IDENTIFIERS acknowledged it.
// Task 1 retransmits forever, exactly like Algorithm 1.
//
// It exists to isolate the cost of anonymity: Algorithm 1 replaces the
// 8-byte identity with a 16-byte random tag_ack pinned per message —
// same message count, slightly larger ACKs, plus the (vanishing) tag
// collision risk. Experiment F7 measures the difference.
//
// The identity is encoded in the wire ACK's AckTag as {Hi: idSentinel,
// Lo: id}; the codec and channels are reused unchanged.
type IDed struct {
	id        int
	n         int
	msgs      []wire.MsgID
	have      map[wire.MsgID]bool
	acks      map[wire.MsgID]map[uint64]bool
	delivered map[wire.MsgID]bool
	tags      *ident.Source
	wireSent  uint64
}

var _ urb.Process = (*IDed)(nil)

// idSentinel marks an AckTag that carries a process identifier rather
// than a random tag.
const idSentinel = ^uint64(0)

// NewIDed builds a non-anonymous URB process with the given identity.
func NewIDed(id, n int, tags *ident.Source) *IDed {
	return &IDed{
		id: id, n: n, tags: tags,
		have:      make(map[wire.MsgID]bool),
		acks:      make(map[wire.MsgID]map[uint64]bool),
		delivered: make(map[wire.MsgID]bool),
	}
}

// Broadcast implements urb.Process.
func (p *IDed) Broadcast(body []byte) (wire.MsgID, urb.Step) {
	id := wire.NewMsgID(p.tags.Next(), body)
	p.addMsg(id)
	return id, urb.Step{}
}

func (p *IDed) addMsg(id wire.MsgID) {
	if !p.have[id] {
		p.have[id] = true
		p.msgs = append(p.msgs, id)
	}
}

// Receive implements urb.Process.
func (p *IDed) Receive(m wire.Message) urb.Step {
	var out urb.Step
	//urbvet:partial the ID-based baseline speaks MSG/ACK only; everything else is other layers' traffic
	switch m.Kind {
	case wire.KindMsg:
		id := m.ID()
		p.addMsg(id)
		// ACK with our identity — no MY_ACK set needed: the identity IS
		// the stable acknowledgement key, which is the whole point of
		// having identifiers.
		p.wireSent++
		out.Broadcasts = append(out.Broadcasts,
			wire.NewAck(id, ident.Tag{Hi: idSentinel, Lo: uint64(p.id)}))
	case wire.KindAck:
		if m.AckTag.Hi != idSentinel {
			return out
		}
		id := m.ID()
		set := p.acks[id]
		if set == nil {
			set = make(map[uint64]bool)
			p.acks[id] = set
		}
		set[m.AckTag.Lo] = true
		if 2*len(set) > p.n && !p.delivered[id] {
			p.delivered[id] = true
			out.Deliveries = append(out.Deliveries, urb.Delivery{ID: id, Fast: !p.have[id]})
		}
	}
	return out
}

// Tick implements urb.Process: retransmit every known message (Task 1).
func (p *IDed) Tick() urb.Step {
	var out urb.Step
	for _, id := range p.msgs {
		p.wireSent++
		out.Broadcasts = append(out.Broadcasts, wire.NewMsg(id))
	}
	return out
}

// Stats implements urb.Process.
func (p *IDed) Stats() urb.Stats {
	entries := 0
	for _, s := range p.acks {
		entries += len(s)
	}
	return urb.Stats{
		MsgSet:     len(p.msgs),
		AckEntries: entries,
		Delivered:  len(p.delivered),
		WireSent:   p.wireSent,
	}
}

// AnonymousRB is the paper's companion algorithm (technical report
// EHU-KAT-IK-03-14, reference [21]): RELIABLE — not uniform — broadcast
// in the same anonymous fair-lossy model. A process delivers a message on
// FIRST reception and retransmits it forever (Task 1), with no
// acknowledgements at all.
//
// With fair lossy channels the forever-retransmission yields agreement
// among CORRECT processes: any correct process that received m keeps
// broadcasting it, so every correct process eventually receives and
// delivers m. What is lost relative to URB is exactly uniformity: a
// process may deliver m (first reception — e.g. the broadcaster hearing
// its own copy) and crash before any copy survives anywhere else; correct
// processes then never deliver. Experiment T6 measures both sides of
// that trade: RB delivers in one hop where URB waits for a majority of
// ACKs, and RB breaks under the deliver-then-crash adversary where URB
// holds.
type AnonymousRB struct {
	tags      *ident.Source
	msgs      []wire.MsgID
	have      map[wire.MsgID]bool
	delivered map[wire.MsgID]bool
	wireSent  uint64
}

var _ urb.Process = (*AnonymousRB)(nil)

// NewAnonymousRB builds an anonymous reliable (non-uniform) broadcast
// process.
func NewAnonymousRB(tags *ident.Source) *AnonymousRB {
	return &AnonymousRB{
		tags:      tags,
		have:      make(map[wire.MsgID]bool),
		delivered: make(map[wire.MsgID]bool),
	}
}

// Broadcast implements urb.Process: insert into the retransmission set
// and deliver locally (first "reception" is the broadcaster's own).
func (p *AnonymousRB) Broadcast(body []byte) (wire.MsgID, urb.Step) {
	id := wire.NewMsgID(p.tags.Next(), body)
	var out urb.Step
	p.add(id)
	p.delivered[id] = true
	out.Deliveries = append(out.Deliveries, urb.Delivery{ID: id})
	return id, out
}

func (p *AnonymousRB) add(id wire.MsgID) {
	if !p.have[id] {
		p.have[id] = true
		p.msgs = append(p.msgs, id)
	}
}

// Receive implements urb.Process: deliver on first reception, then join
// the retransmission.
func (p *AnonymousRB) Receive(m wire.Message) urb.Step {
	var out urb.Step
	if m.Kind != wire.KindMsg {
		return out
	}
	id := m.ID()
	p.add(id)
	if !p.delivered[id] {
		p.delivered[id] = true
		out.Deliveries = append(out.Deliveries, urb.Delivery{ID: id})
	}
	return out
}

// Tick implements urb.Process: retransmit everything, forever.
func (p *AnonymousRB) Tick() urb.Step {
	var out urb.Step
	for _, id := range p.msgs {
		p.wireSent++
		out.Broadcasts = append(out.Broadcasts, wire.NewMsg(id))
	}
	return out
}

// Stats implements urb.Process.
func (p *AnonymousRB) Stats() urb.Stats {
	return urb.Stats{
		MsgSet:    len(p.msgs),
		Delivered: len(p.delivered),
		WireSent:  p.wireSent,
	}
}
