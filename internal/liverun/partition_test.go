package liverun_test

import (
	"fmt"
	"testing"
	"time"

	"anonurb/internal/channel"
	"anonurb/internal/ident"
	"anonurb/internal/liverun"
	"anonurb/internal/nemesis"
	"anonurb/internal/urb"
)

// TestPartitionHealAgreement splits a live 5-node mesh 2/3, broadcasts
// on both sides of the cut, heals, and requires every node to reach
// uniform agreement on the full message set with zero re-deliveries.
// The heartbeat trust timeout (800 units) deliberately outlives the
// partition window (300 units): a detector that gives up on the far
// side mid-partition retires messages without its acks and heals into
// permanent disagreement (DESIGN.md §15).
func TestPartitionHealAgreement(t *testing.T) {
	campaign, err := nemesis.Parse("name=liverun-split;split@100-400:0,1;deadline=12000")
	if err != nil {
		t.Fatal(err)
	}
	cfg := liverun.Config{
		N: 5,
		Factory: func(index int, tags *ident.Source, clock func() int64) urb.Process {
			return urb.NewHeartbeatHost(tags, 800, 1, clock, urb.Config{})
		},
		Link:      channel.Bernoulli{P: 0.05, D: channel.UniformDelay{Min: 1, Max: 3}},
		Unit:      200 * time.Microsecond,
		TickEvery: 5,
		Seed:      42,
	}
	var bs []nemesis.LiveBroadcast
	for p := 0; p < 5; p++ {
		// One broadcast per node before the cut, one mid-partition: the
		// mid-partition ones can only cross after heal.
		bs = append(bs,
			nemesis.LiveBroadcast{At: 40 + int64(p), Proc: p,
				Body: []byte(fmt.Sprintf("pre-split-%d", p))},
			nemesis.LiveBroadcast{At: 200 + int64(p), Proc: p,
				Body: []byte(fmt.Sprintf("mid-split-%d", p))})
	}
	res, err := nemesis.RunLive(nemesis.LiveRun{Config: cfg, Campaign: campaign, Broadcasts: bs})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Audit.OK() {
		t.Fatalf("partition heal failed:\n%s", res.Audit.Report())
	}
	if res.Audit.Survivors != 5 {
		t.Fatalf("survivors %d, want all 5", res.Audit.Survivors)
	}
	if res.Audit.Redelivered != 0 {
		t.Fatalf("%d re-deliveries across the heal", res.Audit.Redelivered)
	}
}
