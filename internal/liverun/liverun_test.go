package liverun

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"anonurb/internal/channel"
	"anonurb/internal/fd"
	"anonurb/internal/ident"
	"anonurb/internal/store"
	"anonurb/internal/urb"
	"anonurb/internal/wire"
)

// collector accumulates deliveries thread-safely.
type collector struct {
	mu   sync.Mutex
	byID map[wire.MsgID]map[int]bool
	all  []Delivery
}

func newCollector() *collector {
	return &collector{byID: make(map[wire.MsgID]map[int]bool)}
}

func (c *collector) onDeliver(d Delivery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byID[d.ID] == nil {
		c.byID[d.ID] = make(map[int]bool)
	}
	if c.byID[d.ID][d.Proc] {
		panic("duplicate delivery at one process")
	}
	c.byID[d.ID][d.Proc] = true
	c.all = append(c.all, d)
}

// deliveredBy reports how many processes delivered the message with the
// given body.
func (c *collector) deliveredBy(body string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, procs := range c.byID {
		if id.Body == body {
			return len(procs)
		}
	}
	return 0
}

// waitFor polls cond every ms up to limit.
func waitFor(t *testing.T, limit time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func majorityFactory(n int) Factory {
	return func(_ int, tags *ident.Source, _ func() int64) urb.Process {
		return urb.NewMajority(n, tags, urb.Config{})
	}
}

func fastCfg(n int, f Factory, loss float64, onDeliver func(Delivery)) Config {
	return Config{
		N:         n,
		Factory:   f,
		Link:      channel.Bernoulli{P: loss, D: channel.UniformDelay{Min: 1, Max: 3}},
		Unit:      200 * time.Microsecond,
		TickEvery: 5,
		Seed:      42,
		OnDeliver: onDeliver,
	}
}

func TestLiveMajorityAllDeliver(t *testing.T) {
	const n = 5
	col := newCollector()
	c := Start(fastCfg(n, majorityFactory(n), 0.2, col.onDeliver))
	defer c.Stop()

	if !c.Broadcast(0, []byte("hello")) || !c.Broadcast(3, []byte("world")) {
		t.Fatal("broadcast refused")
	}
	ok := waitFor(t, 5*time.Second, func() bool {
		return col.deliveredBy("hello") == n && col.deliveredBy("world") == n
	})
	if !ok {
		t.Fatalf("cluster did not converge: hello=%d world=%d",
			col.deliveredBy("hello"), col.deliveredBy("world"))
	}
	sends, _ := c.NetStats()
	if sends == 0 {
		t.Fatal("no traffic")
	}
}

func TestLiveMajorityCrashTolerance(t *testing.T) {
	const n = 5
	col := newCollector()
	c := Start(fastCfg(n, majorityFactory(n), 0.15, col.onDeliver))
	defer c.Stop()

	c.Broadcast(0, []byte("m"))
	// Crash a minority while the message is in flight.
	c.Crash(4)
	ok := waitFor(t, 5*time.Second, func() bool {
		return col.deliveredBy("m") >= n-1
	})
	if !ok {
		t.Fatalf("survivors did not converge: %d", col.deliveredBy("m"))
	}
	if c.Broadcast(4, []byte("zombie")) {
		t.Fatal("crashed process accepted a broadcast")
	}
	if st := c.Stats(4); st.Delivered != 0 || st.MsgSet != 0 {
		t.Fatal("crashed process returned live stats")
	}
}

func TestLiveQuiescentDeliversAndGoesQuiet(t *testing.T) {
	const n = 4
	correct := []bool{true, true, true, true}
	oracle := fd.NewOracle(fd.OracleConfig{N: n, Noise: fd.NoiseExact, Seed: 5}, correct)
	col := newCollector()
	factory := func(i int, tags *ident.Source, clock func() int64) urb.Process {
		return urb.NewQuiescent(oracle.Handle(i, clock), tags, urb.Config{})
	}
	c := Start(fastCfg(n, factory, 0.1, col.onDeliver))
	defer c.Stop()

	c.Broadcast(1, []byte("quiet-please"))
	if !waitFor(t, 5*time.Second, func() bool { return col.deliveredBy("quiet-please") == n }) {
		t.Fatalf("not converged: %d", col.deliveredBy("quiet-please"))
	}
	// After delivery everywhere, retirement must silence the cluster.
	if !waitFor(t, 10*time.Second, func() bool { return c.QuietFor(20 * time.Millisecond) }) {
		t.Fatal("cluster never went quiet — Algorithm 2 should be quiescent")
	}
	// And the retransmission sets must be empty.
	for i := 0; i < n; i++ {
		if st := c.Stats(i); st.MsgSet != 0 {
			t.Fatalf("p%d still holds %d messages", i, st.MsgSet)
		}
	}
}

func TestLiveStopIdempotentAndSafe(t *testing.T) {
	const n = 3
	c := Start(fastCfg(n, majorityFactory(n), 0, nil))
	c.Broadcast(0, []byte("x"))
	c.Stop()
	c.Stop() // idempotent
	if c.Broadcast(0, []byte("y")) {
		t.Fatal("stopped cluster accepted a broadcast")
	}
	if c.String() == "" {
		t.Fatal("string")
	}
}

func TestLiveConfigValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("n", func() { Start(Config{}) })
	mustPanic("factory", func() { Start(Config{N: 1, Link: channel.Blackhole{}}) })
}

func TestLiveElapsedAdvances(t *testing.T) {
	c := Start(fastCfg(2, majorityFactory(2), 0, nil))
	defer c.Stop()
	a := c.ElapsedUnits()
	time.Sleep(5 * time.Millisecond)
	if c.ElapsedUnits() <= a {
		t.Fatal("clock did not advance")
	}
}

func TestLiveConcurrentBroadcastStress(t *testing.T) {
	// Many writers broadcasting concurrently from outside goroutines
	// while a node crashes mid-run: no races (run with -race), no
	// duplicate deliveries (collector panics on dup), and all surviving
	// nodes converge on every message from a correct writer.
	const n = 6
	const perWriter = 5
	col := newCollector()
	c := Start(fastCfg(n, majorityFactory(n), 0.1, col.onDeliver))
	defer c.Stop()

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				c.Broadcast(w, []byte(fmt.Sprintf("w%d-%d", w, k)))
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	c.Crash(5)

	ok := waitFor(t, 15*time.Second, func() bool {
		for w := 0; w < 3; w++ {
			for k := 0; k < perWriter; k++ {
				if col.deliveredBy(fmt.Sprintf("w%d-%d", w, k)) < n-1 {
					return false
				}
			}
		}
		return true
	})
	if !ok {
		t.Fatal("stress run did not converge")
	}
}

func TestLiveQuiescentHeartbeatStack(t *testing.T) {
	// The oracle-free live stack: heartbeat hosts over the cluster.
	testLiveHeartbeatStack(t, urb.Config{})
}

func TestLiveQuiescentHeartbeatStackDeltaBeats(t *testing.T) {
	// The full steady-state configuration over a lossy mesh: delta ACKs,
	// post-delivery compaction, and BEATΔ streams — lost beat snapshots
	// must heal through the BEATREQ path for the detectors to converge.
	testLiveHeartbeatStack(t, urb.Config{DeltaAcks: true, CompactDelivered: true, DeltaBeats: true})
}

func testLiveHeartbeatStack(t *testing.T, cfg urb.Config) {
	const n = 3
	col := newCollector()
	factory := func(_ int, tags *ident.Source, clock func() int64) urb.Process {
		return urb.NewHeartbeatHost(tags, 200, 1, clock, cfg)
	}
	c := Start(fastCfg(n, factory, 0.1, col.onDeliver))
	defer c.Stop()

	// Let detectors learn each other.
	time.Sleep(30 * time.Millisecond)
	c.Broadcast(0, []byte("hb-live"))
	if !waitFor(t, 10*time.Second, func() bool { return col.deliveredBy("hb-live") == n }) {
		t.Fatalf("heartbeat stack did not converge: %d", col.deliveredBy("hb-live"))
	}
	// Algorithm-level quiescence: retransmission sets drain even though
	// beats keep the wire busy.
	if !waitFor(t, 10*time.Second, func() bool {
		for i := 0; i < n; i++ {
			if c.Stats(i).MsgSet != 0 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("algorithm traffic did not retire")
	}
}

func TestLiveJoinLeave(t *testing.T) {
	// Membership churn end to end: a heartbeat-stack cluster grows by
	// one (real snapshot transfer over the lossy mesh), the joiner
	// participates both ways without re-delivering adopted history, and
	// a leaving process goes silent without wedging the survivors.
	col := newCollector()
	const n = 3
	factory := func(_ int, tags *ident.Source, clock func() int64) urb.Process {
		return urb.NewHeartbeatHost(tags, 200, 1, clock, urb.Config{DeltaAcks: true})
	}
	c := Start(fastCfg(n, factory, 0.1, col.onDeliver))
	defer c.Stop()

	time.Sleep(30 * time.Millisecond)
	c.Broadcast(0, []byte("pre-join"))
	if !waitFor(t, 15*time.Second, func() bool { return col.deliveredBy("pre-join") == n }) {
		t.Fatalf("pre-join broadcast stuck at %d/%d", col.deliveredBy("pre-join"), n)
	}

	joiner, err := c.Join(store.NewMem())
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if joiner != n {
		t.Fatalf("joiner index = %d, want %d", joiner, n)
	}
	if c.N() != n+1 {
		t.Fatalf("N after join = %d", c.N())
	}
	if c.Node(joiner).JoinedBytes() == 0 {
		t.Fatal("join transferred zero bytes")
	}

	// The joiner hears new traffic and its own broadcasts reach all.
	if !c.Broadcast(joiner, []byte("from-joiner")) {
		t.Fatal("joiner broadcast refused")
	}
	c.Broadcast(1, []byte("post-join"))
	if !waitFor(t, 15*time.Second, func() bool {
		return col.deliveredBy("from-joiner") == n+1 && col.deliveredBy("post-join") == n+1
	}) {
		t.Fatalf("post-join convergence stuck: from-joiner=%d post-join=%d",
			col.deliveredBy("from-joiner"), col.deliveredBy("post-join"))
	}
	// The collector panics on duplicate delivery, so adopted history
	// re-delivering at the joiner would have crashed the run; check the
	// joiner also never delivered pre-join history late.
	if got := col.deliveredBy("pre-join"); got != n {
		t.Fatalf("pre-join history re-delivered after the join: %d", got)
	}

	// Leave: the departed process goes silent, the rest keep delivering.
	c.Leave(1)
	c.Broadcast(2, []byte("post-leave"))
	if !waitFor(t, 15*time.Second, func() bool { return col.deliveredBy("post-leave") == n }) {
		t.Fatalf("post-leave convergence stuck at %d/%d", col.deliveredBy("post-leave"), n)
	}
}
