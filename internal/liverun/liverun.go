// Package liverun hosts the paper's algorithms as a live in-process
// cluster: N node.Node instances (one goroutine per anonymous process)
// joined by a transport.Mesh of lossy links with wall-clock delays.
//
// The deterministic simulator (internal/sim) is where experiments run;
// liverun exists to demonstrate the same state machines driving a real
// concurrent system — the examples under examples/ are built on it. It
// is deliberately thin: a Cluster is nothing but N nodes on an
// in-process transport plus index-based convenience accessors, so
// everything it does can also be done with the node and transport
// packages directly (see examples/quickstart for the same stack over
// real UDP sockets).
package liverun

import (
	"context"
	"fmt"
	"time"

	"anonurb/internal/admit"
	"anonurb/internal/channel"
	"anonurb/internal/ident"
	"anonurb/internal/node"
	"anonurb/internal/obs"
	"anonurb/internal/replay"
	"anonurb/internal/store"
	"anonurb/internal/transport"
	"anonurb/internal/urb"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// Factory builds the algorithm instance for one live process. index is
// bookkeeping (for wiring failure detector handles); clock reads the
// cluster's elapsed time in link-delay units.
type Factory func(index int, tags *ident.Source, clock func() int64) urb.Process

// Delivery is one URB-delivery observed on the cluster.
type Delivery struct {
	Proc    int
	ID      wire.MsgID
	Fast    bool
	Elapsed time.Duration
}

// Body returns the delivered payload as a fresh byte slice.
func (d Delivery) Body() []byte { return d.ID.Bytes() }

// Config describes a live cluster.
type Config struct {
	// N is the number of processes.
	N int
	// Factory builds each process (required).
	Factory Factory
	// Link is the loss/delay model shared by all directed links
	// (required). Delay values count in Units.
	Link channel.LinkModel
	// Unit converts the link model's abstract delay units and TickEvery
	// into wall-clock time. Defaults to 1ms.
	Unit time.Duration
	// TickEvery is the Task-1 period in Units. Defaults to 10.
	TickEvery int64
	// Seed drives the link randomness, tag streams and tick phases.
	Seed uint64
	// OnDeliver, if set, observes every URB-delivery. It is called from
	// node goroutines and must be safe for concurrent use.
	OnDeliver func(Delivery)
	// InboxDepth bounds each node's mesh mailbox; a full mailbox drops
	// copies (legal: the network is lossy anyway). Defaults to 1024.
	InboxDepth int
	// Stores[i], when non-nil, makes process i durable: its node
	// write-ahead-logs deliveries/pins/broadcasts to the store and
	// checkpoints on the CheckpointEvery cadence, and Cluster.Recover can
	// restart it after a Crash. Requires the Factory to build
	// urb.Durable processes for stored indices.
	Stores []store.Store
	// CheckpointEvery is the durable nodes' checkpoint cadence (default
	// 1s; see node.WithCheckpointEvery).
	CheckpointEvery time.Duration
	// Flows[i], when nonzero, pins process i's broadcast tags to that
	// flow key (ident.NewFlowSource): all of i's broadcasts share
	// Tag.Hi == Flows[i], which is what the admission stage classifies
	// on. nil or a zero entry leaves the process fully anonymous
	// (per-message flows).
	Flows []uint64
	// Admission, when non-nil, interposes a flow-fairness admission
	// stage in front of every node's inbox (node.WithAdmission).
	Admission *admit.Config
	// Chaos, when non-nil, wraps every node's mesh endpoint in its own
	// transport.Chaos with this configuration (per-node seeds derived
	// from the cluster seed, so senders decorrelate): outbound frames
	// are judged twice, once by the node's chaos wrapper and once by the
	// mesh links. Cluster.ChaosStats exposes the per-node drop/send
	// counters. The Seed/Src/Dst fields of the template are overridden
	// per node; Unit defaults to the cluster Unit.
	Chaos *transport.ChaosConfig
	// Trace enables per-node lifecycle tracing (DESIGN.md §14): every
	// node gets an obs.Tracer sized TraceCapacity (0: obs default) and
	// Cluster.Tracers/ServeDebug expose the merged trace. The zero value
	// is off — no tracers, no emit overhead.
	Trace bool
	// TraceCapacity is each node's trace ring size in events.
	TraceCapacity int
}

// Cluster is a running set of live processes: N nodes on one mesh.
type Cluster struct {
	cfg    Config
	start  time.Time
	mesh   *transport.Mesh
	nodes  []*node.Node
	ctx    context.Context
	cancel context.CancelFunc
	// tagClones[i] is process i's tag stream frozen at creation, for
	// rebuilding an identical stream on recovery.
	tagClones []*xrand.Source
	// tagRoot keeps splitting the seed tag stream past the founding N,
	// so processes added by Join draw fresh, non-colliding tags.
	tagRoot *xrand.Source
	// tracers[i] is process i's lifecycle tracer (nil unless cfg.Trace).
	// A recovered process keeps its predecessor's tracer: the ring then
	// shows the crash-spanning lifecycle.
	tracers []*obs.Tracer
	// chaos[i] is process i's current chaos wrapper (nil unless
	// cfg.Chaos); Recover and Join install fresh wrappers, and the
	// retired ones' counters fold into chaosShed so ChaosStats totals
	// survive restarts.
	chaos     []*transport.Chaos
	chaosShed []transport.ChaosStats
}

// observer adapts node events to the cluster's delivery callback.
type observer struct {
	c    *Cluster
	proc int
}

func (o observer) OnSend(wire.Message, []byte) {}
func (o observer) OnReceive(wire.Message)      {}
func (o observer) OnQuiescence(time.Duration)  {}
func (o observer) OnDeliver(d node.Delivery) {
	if o.c.cfg.OnDeliver != nil {
		o.c.cfg.OnDeliver(Delivery{
			Proc:    o.proc,
			ID:      d.ID,
			Fast:    d.Fast,
			Elapsed: time.Since(o.c.start),
		})
	}
}

// Start builds and launches a cluster.
func Start(cfg Config) *Cluster {
	if cfg.N < 1 {
		panic("liverun: N must be >= 1")
	}
	if cfg.Factory == nil || cfg.Link == nil {
		panic("liverun: Factory and Link are required")
	}
	if cfg.Unit <= 0 {
		cfg.Unit = time.Millisecond
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10
	}
	if cfg.InboxDepth <= 0 {
		cfg.InboxDepth = 1024
	}
	c := &Cluster{
		cfg:   cfg,
		start: time.Now(),
		mesh: transport.NewMesh(transport.MeshConfig{
			N:          cfg.N,
			Link:       cfg.Link,
			Unit:       cfg.Unit,
			Seed:       cfg.Seed,
			InboxDepth: cfg.InboxDepth,
		}),
		nodes: make([]*node.Node, cfg.N),
	}
	if cfg.Stores != nil && len(cfg.Stores) != cfg.N {
		panic("liverun: Stores length mismatch")
	}
	if cfg.Flows != nil && len(cfg.Flows) != cfg.N {
		panic("liverun: Flows length mismatch")
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.ctx, c.cancel = ctx, cancel
	c.tagClones = make([]*xrand.Source, cfg.N)
	c.tagRoot = xrand.SplitLabeled(cfg.Seed, "live-tags")
	for i := 0; i < cfg.N; i++ {
		src := c.tagRoot.Split()
		c.tagClones[i] = src.Clone()
		proc := cfg.Factory(i, c.tagSource(i, src), c.ElapsedUnits)
		c.nodes[i] = node.New(proc, c.transportFor(i, c.mesh.Endpoint(i)), c.nodeOptions(i)...)
	}
	for _, nd := range c.nodes {
		if err := nd.Start(ctx); err != nil {
			panic("liverun: node start: " + err.Error())
		}
	}
	return c
}

// transportFor wraps ep in process proc's own chaos wrapper when the
// cluster configures one (Config.Chaos), deriving a per-process seed so
// senders decorrelate. A predecessor wrapper's counters (crash/recover
// installs a fresh one) fold into the shed totals first, so ChaosStats
// stays cumulative across restarts.
func (c *Cluster) transportFor(proc int, ep transport.Transport) transport.Transport {
	if c.cfg.Chaos == nil {
		return ep
	}
	for len(c.chaos) <= proc {
		c.chaos = append(c.chaos, nil)
		c.chaosShed = append(c.chaosShed, transport.ChaosStats{})
	}
	if old := c.chaos[proc]; old != nil {
		s := old.StatsDetail()
		c.chaosShed[proc].Sends += s.Sends
		c.chaosShed[proc].Drops += s.Drops
		c.chaosShed[proc].Delayed += s.Delayed
	}
	ccfg := *c.cfg.Chaos
	ccfg.Seed = xrand.HashStream(c.cfg.Seed, 0xC4A05, uint64(proc))
	if ccfg.Unit <= 0 {
		ccfg.Unit = c.cfg.Unit
	}
	ch := transport.NewChaos(ep, ccfg)
	c.chaos[proc] = ch
	return ch
}

// ChaosStats returns the per-process chaos wrapper counters, cumulative
// across crash/recover restarts; nil when Config.Chaos is unset.
func (c *Cluster) ChaosStats() []transport.ChaosStats {
	if c.cfg.Chaos == nil {
		return nil
	}
	out := make([]transport.ChaosStats, len(c.nodes))
	for i := range out {
		if i < len(c.chaosShed) {
			out[i] = c.chaosShed[i]
		}
		if i < len(c.chaos) && c.chaos[i] != nil {
			s := c.chaos[i].StatsDetail()
			out[i].Sends += s.Sends
			out[i].Drops += s.Drops
			out[i].Delayed += s.Delayed
		}
	}
	return out
}

// LinkStats returns the mesh link network's full statistics, including
// the mutation/duplication counters a nemesis FrameModel feeds.
func (c *Cluster) LinkStats() channel.Stats {
	return c.mesh.LinkStats()
}

// tagSource builds process proc's tag source over src, flow-pinned when
// the cluster configures a flow for it (shared by Start and Recover so
// a restarted process re-derives the same tag stream).
func (c *Cluster) tagSource(proc int, src *xrand.Source) *ident.Source {
	if proc < len(c.cfg.Flows) && c.cfg.Flows[proc] != 0 {
		return ident.NewFlowSource(c.cfg.Flows[proc], src)
	}
	return ident.NewSource(src)
}

// nodeOptions assembles one process's node options (shared by Start and
// Recover so a restarted node is configured like its predecessor).
func (c *Cluster) nodeOptions(proc int) []node.Option {
	opts := []node.Option{
		node.WithTickEvery(time.Duration(c.cfg.TickEvery) * c.cfg.Unit),
		node.WithSeed(xrand.HashStream(c.cfg.Seed, uint64(proc))),
		node.WithObserver(observer{c: c, proc: proc}),
	}
	if tr := c.tracer(proc); tr != nil {
		opts = append(opts, node.WithTracer(tr))
	}
	if c.cfg.Admission != nil {
		opts = append(opts, node.WithAdmission(*c.cfg.Admission))
	}
	if proc < len(c.cfg.Stores) && c.cfg.Stores[proc] != nil {
		opts = append(opts, node.WithStore(c.cfg.Stores[proc]))
		if c.cfg.CheckpointEvery > 0 {
			opts = append(opts, node.WithCheckpointEvery(c.cfg.CheckpointEvery))
		}
	}
	return opts
}

// tracer returns (building on first use) process proc's tracer, or nil
// when tracing is off. Tracer timestamps are wall-clock nanos, so the
// Chrome export uses nanos=true.
func (c *Cluster) tracer(proc int) *obs.Tracer {
	if !c.cfg.Trace {
		return nil
	}
	for len(c.tracers) <= proc {
		c.tracers = append(c.tracers,
			obs.New(len(c.tracers), c.cfg.TraceCapacity, func() int64 { return time.Now().UnixNano() }))
	}
	return c.tracers[proc]
}

// Tracers returns the per-process tracers (nil when tracing is off);
// obs.Merge turns them into one cluster-wide trace.
func (c *Cluster) Tracers() []*obs.Tracer {
	return append([]*obs.Tracer(nil), c.tracers...)
}

// Explain runs the stall explainer for id on process proc (DESIGN.md
// §14), synchronised through its node.
func (c *Cluster) Explain(proc int, id wire.MsgID) (obs.Explanation, error) {
	return c.nodes[proc].Explain(id)
}

// ServeDebug starts the live introspection endpoint on addr ("127.0.0.1:0"
// picks a free port; see Server.Addr): /debug/vars, /debug/pprof,
// /metrics in Prometheus text format over m's aggregates (m may be nil),
// /trace.json (the merged Chrome trace when tracing is on), /report and
// /explain?msg=<id>. The explain route searches every live process and
// returns the first report that knows the message. Close the returned
// server before Stop.
func (c *Cluster) ServeDebug(addr string, m *node.Metrics) (*obs.Server, error) {
	opts := obs.ServeOptions{Tracers: c.Tracers(), Nanos: true}
	if m != nil {
		opts.Gauges = m.Gauges
	}
	opts.Explain = func(msg string) (obs.Explanation, bool) {
		var fallback obs.Explanation
		found := false
		for proc := range c.nodes {
			for _, ev := range c.tracerEvents(proc) {
				if ev.Msg.Body == "" && ev.Msg.Tag.Zero() {
					continue
				}
				if ev.Msg.String() != msg {
					continue
				}
				ex, err := c.nodes[proc].Explain(ev.Msg)
				if err != nil {
					continue
				}
				if ex.Known {
					return ex, true
				}
				fallback, found = ex, true
			}
		}
		return fallback, found
	}
	return obs.Serve(addr, opts)
}

// tracerEvents returns proc's recorded events (nil when untraced).
func (c *Cluster) tracerEvents(proc int) []obs.Event {
	if proc >= len(c.tracers) {
		return nil
	}
	return c.tracers[proc].Events()
}

// Node returns the node hosting process proc, for direct access to the
// node-level API.
func (c *Cluster) Node(proc int) *node.Node { return c.nodes[proc] }

// N returns the current process count, counting processes added by
// Join. Left and crashed slots are included: indices are stable.
func (c *Cluster) N() int { return len(c.nodes) }

// Join grows the running cluster by one process (DESIGN.md §13): the
// mesh gains a fresh endpoint slot, the factory builds a fresh
// algorithm instance for the new index, and node.Join bootstraps it
// from whichever live peer answers the snapshot solicitation before the
// node starts. The factory must build urb.Joiner processes (both paper
// algorithms and the heartbeat host qualify). st, when non-nil, makes
// the joiner durable and becomes its store for a later Recover. The
// call blocks for the transfer, bounded by the cluster's lifetime; on
// error the grown mesh slot stays silent and unused.
//
// Join and Leave reconfigure the cluster and must be driven from one
// goroutine, like Recover and Crash.
func (c *Cluster) Join(st store.Store, opts ...node.Option) (int, error) {
	proc := len(c.nodes)
	src := c.tagRoot.Split()
	clone := src.Clone()
	p := c.cfg.Factory(proc, c.tagSource(proc, src), c.ElapsedUnits)
	jopts := append(c.nodeOptions(proc), opts...)
	if st != nil && c.cfg.CheckpointEvery > 0 {
		jopts = append(jopts, node.WithCheckpointEvery(c.cfg.CheckpointEvery))
	}
	nd, err := node.Join(c.ctx, p, st, c.transportFor(proc, c.mesh.Grow()), jopts...)
	if err != nil {
		return 0, err
	}
	if c.cfg.Stores != nil || st != nil {
		for len(c.cfg.Stores) <= proc {
			c.cfg.Stores = append(c.cfg.Stores, nil)
		}
		c.cfg.Stores[proc] = st
	}
	c.tagClones = append(c.tagClones, clone)
	c.nodes = append(c.nodes, nd)
	return proc, nd.Start(c.ctx)
}

// Leave removes process proc for good: its node stops and its mesh
// endpoint is detached. To the survivors a departed process is
// indistinguishable from a crashed one — its beats stop, its ACKs
// freeze, and the D4 purge eventually forgets its labels; no leave
// announcement exists on the wire, exactly as the paper's crash model
// prescribes. The slot is never reused (indices stay stable) and
// Recover on a left process is unsupported; a returning process Joins
// as a fresh index with a fresh identity.
func (c *Cluster) Leave(proc int) {
	c.nodes[proc].Stop()
	c.mesh.Detach(proc)
}

// Recover restarts a crashed (Stop-ed) durable process from its store:
// a fresh algorithm instance is built by the cluster factory over a
// clone of the original tag stream, the snapshot and WAL are merged into
// it, the process rejoins the mesh on a fresh endpoint, and it resumes
// ACKing and retransmitting — re-delivering nothing it delivered before
// the crash. It fails if the process was never given a store or is
// still running.
func (c *Cluster) Recover(proc int) error {
	if c.cfg.Stores == nil || c.cfg.Stores[proc] == nil {
		return fmt.Errorf("liverun: proc %d has no store", proc)
	}
	// A still-running node must be crashed first; Stop is idempotent.
	c.nodes[proc].Stop()
	p := c.cfg.Factory(proc, c.tagSource(proc, c.tagClones[proc].Clone()), c.ElapsedUnits)
	nd, err := node.Recover(p, c.cfg.Stores[proc], c.transportFor(proc, c.mesh.Reopen(proc)), c.nodeOptions(proc)...)
	if err != nil {
		return err
	}
	c.nodes[proc] = nd
	return nd.Start(c.ctx)
}

// ElapsedUnits returns the cluster age in link-delay units (the live
// counterpart of the simulator's virtual clock, e.g. for failure
// detector handles). It is the mesh's clock, so QuietFor and the
// factory clocks share one epoch.
func (c *Cluster) ElapsedUnits() int64 {
	return c.mesh.ElapsedUnits()
}

// Broadcast has process proc URB-broadcast body. It returns false if the
// process has crashed or the cluster is stopped.
func (c *Cluster) Broadcast(proc int, body []byte) bool {
	_, err := c.nodes[proc].Broadcast(body)
	return err == nil
}

// Play replays a recorded schedule against the cluster at unit pace
// (speed scales the rate as in replay.Drive): each entry URB-broadcasts
// from its recorded process when its wall-clock moment arrives. It
// blocks until the last entry is driven or ctx is cancelled.
func (c *Cluster) Play(ctx context.Context, s *replay.Schedule, unit time.Duration, speed float64) error {
	return replay.Drive(ctx, s, c.N(), unit, speed, func(proc int, body []byte) error {
		_, err := c.nodes[proc].Broadcast(body)
		return err
	})
}

// Crash kills process proc: it stops receiving, ticking and sending.
func (c *Cluster) Crash(proc int) {
	c.nodes[proc].Stop()
}

// Stats fetches a process's algorithm stats, synchronised through its
// node. For crashed (stopped) processes it returns the final snapshot
// taken when the node exited, so post-run quiescence and memory
// accounting keeps working.
func (c *Cluster) Stats(proc int) urb.Stats {
	st, err := c.nodes[proc].Stats()
	if err != nil {
		return urb.Stats{}
	}
	return st
}

// QuietFor reports whether no process has sent for at least d.
func (c *Cluster) QuietFor(d time.Duration) bool {
	return c.mesh.QuietFor(d)
}

// NetStats returns (copies offered, copies dropped) so far.
func (c *Cluster) NetStats() (sends, drops uint64) {
	return c.mesh.Stats()
}

// Stop terminates every process and waits for the node goroutines to
// exit. In-flight link timers become no-ops. Idempotent.
func (c *Cluster) Stop() {
	c.cancel()
	for _, nd := range c.nodes {
		nd.Stop()
	}
	c.mesh.Close()
}

// String describes the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("liverun.Cluster(n=%d, link=%s, unit=%s)",
		c.N(), c.cfg.Link, c.cfg.Unit)
}
