// Package liverun hosts the paper's algorithms on real goroutines and
// channels: one goroutine per anonymous process, lossy links realised as
// delayed hand-offs between them, wall-clock Task-1 ticks.
//
// The deterministic simulator (internal/sim) is where experiments run;
// liverun exists to demonstrate the same state machines driving a real
// concurrent system — the examples under examples/ are built on it. The
// urb.Process implementations are single-threaded by contract, so each
// node goroutine serialises every Receive/Tick/Broadcast against its own
// instance; the only shared state is the link mesh, guarded by one mutex.
package liverun

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anonurb/internal/channel"
	"anonurb/internal/ident"
	"anonurb/internal/urb"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// Factory builds the algorithm instance for one live process. index is
// bookkeeping (for wiring failure detector handles); clock reads the
// cluster's elapsed time in link-delay units.
type Factory func(index int, tags *ident.Source, clock func() int64) urb.Process

// Delivery is one URB-delivery observed by the cluster.
type Delivery struct {
	Proc    int
	ID      wire.MsgID
	Fast    bool
	Elapsed time.Duration
}

// Config describes a live cluster.
type Config struct {
	// N is the number of processes.
	N int
	// Factory builds each process (required).
	Factory Factory
	// Link is the loss/delay model shared by all directed links
	// (required). Delay values count in Units.
	Link channel.LinkModel
	// Unit converts the link model's abstract delay units and TickEvery
	// into wall-clock time. Defaults to 1ms.
	Unit time.Duration
	// TickEvery is the Task-1 period in Units. Defaults to 10.
	TickEvery int64
	// Seed drives the link randomness and tag streams.
	Seed uint64
	// OnDeliver, if set, observes every URB-delivery. It is called from
	// node goroutines and must be safe for concurrent use.
	OnDeliver func(Delivery)
	// InboxDepth bounds each node's mailbox; a full mailbox drops copies
	// (legal: the network is lossy anyway). Defaults to 1024.
	InboxDepth int
}

// Cluster is a running set of live processes.
type Cluster struct {
	cfg   Config
	start time.Time

	netMu sync.Mutex
	net   *channel.Network

	nodes []*node
	wg    sync.WaitGroup

	stopped  atomic.Bool
	lastSend atomic.Int64 // elapsed units of the most recent send
	sends    atomic.Uint64
	drops    atomic.Uint64
}

type node struct {
	index   int
	inbox   chan wire.Message
	actions chan func(urb.Process)
	stop    chan struct{}
	crashed atomic.Bool
}

// Start builds and launches a cluster.
func Start(cfg Config) *Cluster {
	if cfg.N < 1 {
		panic("liverun: N must be >= 1")
	}
	if cfg.Factory == nil || cfg.Link == nil {
		panic("liverun: Factory and Link are required")
	}
	if cfg.Unit <= 0 {
		cfg.Unit = time.Millisecond
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10
	}
	if cfg.InboxDepth <= 0 {
		cfg.InboxDepth = 1024
	}
	c := &Cluster{
		cfg:   cfg,
		start: time.Now(),
		net:   channel.NewNetwork(cfg.N, cfg.Link, xrand.SplitLabeled(cfg.Seed, "live-net")),
		nodes: make([]*node, cfg.N),
	}
	// Two-phase construction: every node slot and process must exist
	// before ANY goroutine starts, because a node's first transmit reads
	// c.nodes[dst] for every destination.
	tagRoot := xrand.SplitLabeled(cfg.Seed, "live-tags")
	procs := make([]urb.Process, cfg.N)
	for i := 0; i < cfg.N; i++ {
		c.nodes[i] = &node{
			index:   i,
			inbox:   make(chan wire.Message, cfg.InboxDepth),
			actions: make(chan func(urb.Process), 64),
			stop:    make(chan struct{}),
		}
		procs[i] = cfg.Factory(i, ident.NewSource(tagRoot.Split()), c.ElapsedUnits)
	}
	for i := 0; i < cfg.N; i++ {
		c.wg.Add(1)
		go c.loop(c.nodes[i], procs[i])
	}
	return c
}

// ElapsedUnits returns the cluster age in link-delay units (the live
// counterpart of the simulator's virtual clock, e.g. for failure detector
// handles).
func (c *Cluster) ElapsedUnits() int64 {
	return int64(time.Since(c.start) / c.cfg.Unit)
}

// loop is the node goroutine: it serialises all access to the algorithm
// instance.
func (c *Cluster) loop(nd *node, proc urb.Process) {
	defer c.wg.Done()
	ticker := time.NewTicker(time.Duration(c.cfg.TickEvery) * c.cfg.Unit)
	defer ticker.Stop()
	for {
		select {
		case <-nd.stop:
			return
		case m := <-nd.inbox:
			c.absorb(nd, proc.Receive(m))
		case <-ticker.C:
			c.absorb(nd, proc.Tick())
		case f := <-nd.actions:
			f(proc)
		}
	}
}

// absorb handles a Step produced by nd's algorithm.
func (c *Cluster) absorb(nd *node, s urb.Step) {
	for _, d := range s.Deliveries {
		if c.cfg.OnDeliver != nil {
			c.cfg.OnDeliver(Delivery{
				Proc:    nd.index,
				ID:      d.ID,
				Fast:    d.Fast,
				Elapsed: time.Since(c.start),
			})
		}
	}
	for _, m := range s.Broadcasts {
		c.transmit(nd.index, m)
	}
}

// transmit offers one wire message to every directed link; surviving
// copies arrive later on the destinations' inboxes.
func (c *Cluster) transmit(src int, m wire.Message) {
	if c.stopped.Load() {
		return
	}
	now := c.ElapsedUnits()
	c.lastSend.Store(now)
	size := m.EncodedSize()
	for dst := 0; dst < c.cfg.N; dst++ {
		c.netMu.Lock()
		v := c.net.Send(now, src, dst, size)
		c.netMu.Unlock()
		c.sends.Add(1)
		if v.Drop {
			c.drops.Add(1)
			continue
		}
		delay := time.Duration(v.Delay) * c.cfg.Unit
		target := c.nodes[dst]
		time.AfterFunc(delay, func() {
			if c.stopped.Load() || target.crashed.Load() {
				return
			}
			select {
			case target.inbox <- m:
			default:
				// Mailbox overflow: the copy is lost, which the fair
				// lossy channel model permits.
				c.drops.Add(1)
			}
		})
	}
}

// Broadcast has process proc URB-broadcast body. It returns false if the
// process has crashed or the cluster is stopped.
func (c *Cluster) Broadcast(proc int, body string) bool {
	nd := c.nodes[proc]
	if c.stopped.Load() || nd.crashed.Load() {
		return false
	}
	select {
	case nd.actions <- func(p urb.Process) {
		_, s := p.Broadcast(body)
		c.absorb(nd, s)
	}:
		return true
	case <-nd.stop:
		return false
	}
}

// Crash kills process proc: it stops receiving, ticking and sending.
func (c *Cluster) Crash(proc int) {
	nd := c.nodes[proc]
	if nd.crashed.CompareAndSwap(false, true) {
		close(nd.stop)
	}
}

// Stats fetches a process's algorithm stats, synchronised through its
// goroutine. It returns zero stats for crashed processes.
func (c *Cluster) Stats(proc int) urb.Stats {
	nd := c.nodes[proc]
	if nd.crashed.Load() || c.stopped.Load() {
		return urb.Stats{}
	}
	reply := make(chan urb.Stats, 1)
	select {
	case nd.actions <- func(p urb.Process) { reply <- p.Stats() }:
	case <-nd.stop:
		return urb.Stats{}
	}
	select {
	case st := <-reply:
		return st
	case <-nd.stop:
		return urb.Stats{}
	}
}

// QuietFor reports whether no process has sent for at least d.
func (c *Cluster) QuietFor(d time.Duration) bool {
	quietUnits := int64(d / c.cfg.Unit)
	return c.ElapsedUnits()-c.lastSend.Load() >= quietUnits
}

// NetStats returns (copies offered, copies dropped) so far.
func (c *Cluster) NetStats() (sends, drops uint64) {
	return c.sends.Load(), c.drops.Load()
}

// Stop terminates every process and waits for the goroutines to exit.
// In-flight timers become no-ops.
func (c *Cluster) Stop() {
	if !c.stopped.CompareAndSwap(false, true) {
		return
	}
	for _, nd := range c.nodes {
		if nd.crashed.CompareAndSwap(false, true) {
			close(nd.stop)
		}
	}
	c.wg.Wait()
}

// String describes the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("liverun.Cluster(n=%d, link=%s, unit=%s)",
		c.cfg.N, c.cfg.Link, c.cfg.Unit)
}
