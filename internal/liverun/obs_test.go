package liverun

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"anonurb/internal/node"
	"anonurb/internal/obs"
)

// TestLiveClusterTracing runs a traced cluster to convergence and checks
// the merged lifecycle trace, the timelines, the explainer and the live
// debug endpoint end to end.
func TestLiveClusterTracing(t *testing.T) {
	const n = 3
	col := newCollector()
	cfg := fastCfg(n, majorityFactory(n), 0.05, col.onDeliver)
	cfg.Trace = true
	c := Start(cfg)
	defer c.Stop()

	id, err := c.Node(0).Broadcast([]byte("traced"))
	if err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool { return col.deliveredBy("traced") == n }) {
		t.Fatalf("cluster did not converge: %d/%d", col.deliveredBy("traced"), n)
	}

	tracers := c.Tracers()
	if len(tracers) != n {
		t.Fatalf("tracers = %d, want %d", len(tracers), n)
	}
	evs := obs.Merge(tracers...)
	var sawBroadcast bool
	delivers := 0
	for _, e := range evs {
		switch e.Kind {
		case obs.EvBroadcast:
			if e.Msg == id && e.Node == 0 {
				sawBroadcast = true
			}
		case obs.EvDeliver:
			if e.Msg == id {
				delivers++
			}
		}
	}
	if !sawBroadcast {
		t.Fatal("merged trace has no BROADCAST event for the message")
	}
	if delivers != n {
		t.Fatalf("merged trace has %d DELIVER events, want %d", delivers, n)
	}

	tls := obs.Timelines(evs)
	var tl *obs.Timeline
	for _, cand := range tls {
		if cand.Msg == id {
			tl = cand
		}
	}
	if tl == nil {
		t.Fatal("no timeline for the message")
	}
	if len(tl.Delivers) != n {
		t.Fatalf("timeline delivers = %d, want %d", len(tl.Delivers), n)
	}
	for i := range tl.Delivers {
		if lat, ok := tl.Latency(i); !ok || lat < 0 {
			t.Fatalf("latency[%d] = %d ok=%v", i, lat, ok)
		}
	}

	ex, err := c.Explain(0, id)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Delivered || ex.Stalled() {
		t.Fatalf("explain after convergence: %+v", ex)
	}

	srv, err := c.ServeDebug("127.0.0.1:0", node.NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body := httpGet(t, base+"/trace.json")
	tr, err := obs.ReadChromeTrace(strings.NewReader(body))
	if err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}
	if err := obs.CheckChromeTrace(tr); err != nil {
		t.Fatalf("trace.json fails validation: %v", err)
	}

	rep := httpGet(t, base+"/explain?msg="+id.String())
	if !strings.Contains(rep, "delivered") {
		t.Fatalf("/explain report:\n%s", rep)
	}

	metrics := httpGet(t, base+"/metrics")
	if !strings.Contains(metrics, "urb_deliveries_total") {
		t.Fatalf("/metrics output:\n%s", metrics)
	}

	report := httpGet(t, base+"/report")
	if !strings.Contains(report, "DELIVER") && !strings.Contains(report, id.String()) {
		t.Fatalf("/report output:\n%s", report)
	}
}

// TestLiveClusterTracingOff checks the zero-valued knob: no tracers, and
// the debug endpoint still serves (with an empty trace).
func TestLiveClusterTracingOff(t *testing.T) {
	const n = 2
	col := newCollector()
	c := Start(fastCfg(n, majorityFactory(n), 0, col.onDeliver))
	defer c.Stop()
	if got := c.Tracers(); len(got) != 0 {
		t.Fatalf("tracing off but %d tracers exist", len(got))
	}
	if c.Node(0).Tracer() != nil {
		t.Fatal("tracing off but node has a tracer")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}
