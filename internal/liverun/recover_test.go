package liverun

import (
	"sync"
	"testing"
	"time"

	"anonurb/internal/channel"
	"anonurb/internal/ident"
	"anonurb/internal/store"
	"anonurb/internal/urb"
	"anonurb/internal/wire"
)

// deliveryLog counts deliveries per (proc, msg) for duplicate detection.
type deliveryLog struct {
	mu    sync.Mutex
	count map[int]map[wire.MsgID]int
}

func newDeliveryLog() *deliveryLog {
	return &deliveryLog{count: make(map[int]map[wire.MsgID]int)}
}

func (l *deliveryLog) add(d Delivery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count[d.Proc] == nil {
		l.count[d.Proc] = make(map[wire.MsgID]int)
	}
	l.count[d.Proc][d.ID]++
}

func (l *deliveryLog) get(proc int, id wire.MsgID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count[proc][id]
}

func (l *deliveryLog) waitFor(t *testing.T, proc int, id wire.MsgID, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		if l.get(proc, id) >= 1 {
			return
		}
		if time.Now().After(end) {
			t.Fatalf("proc %d never delivered %v", proc, id)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClusterCrashRecover kills a durable node mid-run (under 15% frame
// loss), restarts it from its store, and asserts the URB guarantees
// across the restart: no re-delivery, full catch-up, continued service.
func TestClusterCrashRecover(t *testing.T) {
	const n = 5
	log := newDeliveryLog()
	stores := make([]store.Store, n)
	stores[2] = store.NewMem()
	c := Start(Config{
		N: n,
		Factory: func(i int, tags *ident.Source, clock func() int64) urb.Process {
			return urb.NewMajority(n, tags, urb.Config{})
		},
		Link:            channel.Bernoulli{P: 0.15, D: channel.UniformDelay{Min: 0, Max: 2}},
		Unit:            time.Millisecond,
		TickEvery:       2,
		Seed:            2015,
		OnDeliver:       log.add,
		Stores:          stores,
		CheckpointEvery: 10 * time.Millisecond,
	})
	defer c.Stop()

	// Phase 1: a message delivered everywhere, checkpointed on node 2.
	id1, err := c.Node(0).Broadcast([]byte("phase-1"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		log.waitFor(t, i, id1, 10*time.Second)
	}

	// Crash the durable node; survivors keep making progress.
	c.Crash(2)
	id2, err := c.Node(1).Broadcast([]byte("phase-2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 3, 4} {
		log.waitFor(t, i, id2, 10*time.Second)
	}
	if got := log.get(2, id2); got != 0 {
		t.Fatalf("crashed node delivered %d copies of id2", got)
	}

	// Recover node 2 from its store.
	if err := c.Recover(2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	// It catches up on what it missed...
	log.waitFor(t, 2, id2, 10*time.Second)
	// ...serves new traffic...
	id3, err := c.Node(2).Broadcast([]byte("phase-3"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		log.waitFor(t, i, id3, 10*time.Second)
	}
	// ...and re-delivered nothing (uniform integrity across the restart).
	for _, id := range []wire.MsgID{id1, id2, id3} {
		for i := 0; i < n; i++ {
			if got := log.get(i, id); got > 1 {
				t.Fatalf("proc %d delivered %v %d times", i, id, got)
			}
		}
	}
	if got := log.get(2, id1); got != 1 {
		t.Fatalf("node 2 delivered id1 %d times across the restart, want exactly 1 (before the crash)", got)
	}
	// Post-recovery algorithm state: everything delivered, nothing lost.
	st := c.Stats(2)
	if st.Delivered != 3 {
		t.Fatalf("recovered node's delivered set = %d, want 3", st.Delivered)
	}
}

// TestClusterRecoverRequiresStore: Recover on a store-less process fails
// cleanly instead of fabricating an amnesiac restart.
func TestClusterRecoverRequiresStore(t *testing.T) {
	c := Start(Config{
		N: 2,
		Factory: func(i int, tags *ident.Source, clock func() int64) urb.Process {
			return urb.NewMajority(2, tags, urb.Config{})
		},
		Link: channel.Reliable{D: channel.FixedDelay(0)},
		Seed: 1,
	})
	defer c.Stop()
	c.Crash(0)
	if err := c.Recover(0); err == nil {
		t.Fatal("Recover succeeded without a store")
	}
}
