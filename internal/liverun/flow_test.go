package liverun

import (
	"testing"
	"time"

	"anonurb/internal/admit"
	"anonurb/internal/channel"
)

// TestClusterFlowPinningAndAdmission: a cluster with pinned flows and a
// (generous) admission stage attributes every delivery to the
// broadcaster's flow, exposes per-flow counters on every node, and
// demotes nobody when traffic is polite.
func TestClusterFlowPinningAndAdmission(t *testing.T) {
	const n = 4
	flows := []uint64{0xA1, 0xB2, 0xC3, 0xD4}
	cfg := admit.Config{Rate: 64 << 20, Burst: 4 << 20}
	c := Start(Config{
		N:         n,
		Factory:   majorityFactory(n),
		Link:      channel.Reliable{D: channel.FixedDelay(0)},
		Unit:      time.Millisecond,
		TickEvery: 5,
		Seed:      17,
		Flows:     flows,
		Admission: &cfg,
	})
	defer c.Stop()

	for p := 0; p < n; p++ {
		if !c.Broadcast(p, []byte{byte(p), 1}) || !c.Broadcast(p, []byte{byte(p), 2}) {
			t.Fatalf("broadcast from %d failed", p)
		}
	}
	// Every node must deliver 2 messages from each of the 4 flows.
	ok := waitFor(t, 5*time.Second, func() bool {
		for p := 0; p < n; p++ {
			fd := c.Node(p).FlowDeliveries()
			for _, f := range flows {
				if fd[f] != 2 {
					return false
				}
			}
		}
		return true
	})
	if !ok {
		t.Fatalf("flow deliveries incomplete: %v", c.Node(0).FlowDeliveries())
	}
	for p := 0; p < n; p++ {
		st, present := c.Node(p).AdmitStats()
		if !present {
			t.Fatalf("node %d has no admission stage", p)
		}
		if st.Demotions != 0 || len(st.Flows) != 0 {
			t.Fatalf("node %d demoted polite traffic: %+v", p, st)
		}
		if st.AdmittedMsgs == 0 {
			t.Fatalf("node %d admitted nothing", p)
		}
	}
}

// TestClusterWithoutFlows: nil Flows keeps full anonymity — every
// delivery lands under a distinct per-message flow key.
func TestClusterWithoutFlows(t *testing.T) {
	const n = 3
	c := Start(Config{
		N:       n,
		Factory: majorityFactory(n),
		Link:    channel.Reliable{D: channel.FixedDelay(0)},
		Unit:    time.Millisecond,
		Seed:    18,
	})
	defer c.Stop()
	for i := 0; i < 3; i++ {
		if !c.Broadcast(0, []byte{9, byte(i)}) {
			t.Fatal("broadcast failed")
		}
	}
	if !waitFor(t, 5*time.Second, func() bool {
		return len(c.Node(1).FlowDeliveries()) == 3
	}) {
		t.Fatalf("per-message flows collapsed: %v", c.Node(1).FlowDeliveries())
	}
	if _, present := c.Node(0).AdmitStats(); present {
		t.Fatal("admission stage present without configuration")
	}
}
