package wire_test

import (
	"bytes"
	"testing"

	"anonurb/internal/channel"
	"anonurb/internal/ident"
	"anonurb/internal/nemesis"
	"anonurb/internal/wire"
	"anonurb/internal/xrand"
)

// mutatorSeedFrames runs representative single-message and batch
// frames through the nemesis wire mutators — duplication, reorder,
// bit flips gated by FlipGate — and collects every frame that reaches
// a receiver. These are exactly the bytes campaigns put on the wire,
// so they seed the decode fuzzers with realistic near-miss corpora
// instead of only hand-cut truncations.
func mutatorSeedFrames() [][]byte {
	tags := ident.NewSource(xrand.New(1234))
	msgs := []wire.Message{
		wire.NewMsg(wire.MsgID{Tag: tags.Next(), Body: "mutant corpus"}),
		wire.NewAck(wire.MsgID{Tag: tags.Next(), Body: "mutant corpus"}, tags.Next()),
		wire.NewLabeledAck(wire.MsgID{Tag: tags.Next(), Body: ""}, tags.Next(),
			[]ident.Tag{tags.Next(), tags.Next()}),
		wire.NewBeat(tags.Next()),
	}
	single := msgs[0].Encode(nil)
	batch := wire.EncodeBatch(msgs, 1<<20)[0]

	model := channel.Duplicate{P: 0.5, Max: 2,
		Then: channel.Reorder{P: 0.5, Window: 7,
			Then: channel.BitFlip{P: 0.7, Check: nemesis.FlipGate,
				Then: channel.Reliable{D: channel.FixedDelay(1)}}}}
	rng := xrand.New(99)
	frames := [][]byte{single, batch}
	for attempt := 0; attempt < 64; attempt++ {
		for _, orig := range [][]byte{single, batch} {
			for _, c := range model.JudgeFrame(int64(attempt), 0, 1, uint64(attempt), orig, rng) {
				if c.Frame != nil {
					frames = append(frames, c.Frame)
				}
			}
		}
	}
	return frames
}

// FuzzMutatedFrameDecode holds the receiver-side contract on mutated
// wire bytes: whatever a campaign mutator emits (and whatever the
// fuzzer grows from that corpus), DecodePrefix never panics, always
// makes progress, re-encodes every accepted message canonically, and
// DecodeBatch agrees with the manual prefix walk.
func FuzzMutatedFrameDecode(f *testing.F) {
	for _, fr := range mutatorSeedFrames() {
		f.Add(fr)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			m, next, err := wire.DecodePrefix(rest)
			if err != nil {
				break
			}
			if len(next) >= len(rest) {
				t.Fatal("DecodePrefix made no progress")
			}
			re := m.Encode(nil)
			if !bytes.Equal(re, rest[:len(rest)-len(next)]) {
				t.Fatal("accepted message does not re-encode canonically")
			}
			rest = next
		}
		msgs, err := wire.DecodeBatch(data)
		fullyConsumed := len(data) > 0 && len(rest) == 0
		if fullyConsumed != (err == nil) {
			t.Fatalf("DecodeBatch err=%v disagrees with the prefix walk", err)
		}
		if err == nil && len(msgs) == 0 {
			t.Fatal("DecodeBatch accepted a stream but returned no messages")
		}
	})
}

// FuzzFlipGateAgainstDecoder fuzzes the FlipGate admission decision
// directly from the wire side: for any frame and any single-bit flip,
// an admitted mutant must decode to a byte-identical prefix of the
// original — the gate may truncate, never fabricate.
func FuzzFlipGateAgainstDecoder(f *testing.F) {
	for _, fr := range mutatorSeedFrames() {
		f.Add(fr, 0)
		f.Add(fr, len(fr)*4)
	}
	f.Fuzz(func(t *testing.T, frame []byte, bit int) {
		if len(frame) == 0 {
			return
		}
		if bit < 0 {
			bit = -bit
		}
		bit %= len(frame) * 8
		mut := append([]byte(nil), frame...)
		mut[bit/8] ^= 1 << uint(bit%8)
		if !nemesis.FlipGate(frame, mut) {
			return // dropped at the link: always legal
		}
		rest := mut
		for len(rest) > 0 {
			_, next, err := wire.DecodePrefix(rest)
			if err != nil {
				break // permitted truncation: the tail is lost
			}
			off := len(mut) - len(rest)
			used := len(rest) - len(next)
			if off+used > len(frame) || !bytes.Equal(mut[off:off+used], frame[off:off+used]) {
				t.Fatal("gate admitted a frame that decodes from altered bytes")
			}
			rest = next
		}
	})
}
