package wire

import (
	"bytes"
	"errors"
	"testing"
)

// TestRoundTripSnapReq: both request forms survive the codec exactly.
func TestRoundTripSnapReq(t *testing.T) {
	for _, m := range []Message{
		NewSnapReq(0, 0),             // fresh: any peer may open a transfer
		NewSnapReq(0xdeadbeef, 4096), // resume transfer at offset
		NewSnapReq(1, ^uint64(0)>>1), // large offset, still structural
	} {
		enc := m.Encode(nil)
		if len(enc) != m.EncodedSize() {
			t.Fatalf("%v: EncodedSize %d != len %d", m, m.EncodedSize(), len(enc))
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !got.Equal(m) {
			t.Fatalf("round trip mismatch: %v vs %v", got, m)
		}
	}
}

// TestRoundTripSnapChunk: a chunk round-trips with its checksum and
// bounds intact, at every position within the container.
func TestRoundTripSnapChunk(t *testing.T) {
	container := bytes.Repeat([]byte("container-body/"), 20)
	ref := SnapRef(container)
	total := uint64(len(container))
	for off := uint64(0); off < total; off += 100 {
		end := off + 100
		if end > total {
			end = total
		}
		m := NewSnapChunk(ref, total, off, container[off:end])
		enc := m.Encode(nil)
		if len(enc) != m.EncodedSize() {
			t.Fatalf("EncodedSize %d != len %d", m.EncodedSize(), len(enc))
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(m) {
			t.Fatalf("round trip mismatch at offset %d", off)
		}
		if !bytes.Equal(got.Body, container[off:end]) {
			t.Fatalf("chunk bytes mangled at offset %d", off)
		}
	}
}

// TestSnapChunkChecksumRejection: a flipped payload bit fails the
// per-chunk CRC at decode time — the wire treats corruption as loss.
func TestSnapChunkChecksumRejection(t *testing.T) {
	chunk := []byte("sixteen byte pay")
	m := NewSnapChunk(7, 64, 16, chunk)
	enc := m.Encode(nil)
	for i := len(enc) - len(chunk); i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x01
		if _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at byte %d: err %v, want ErrChecksum", i, err)
		}
	}
	// Flipping the stored sum itself must also reject.
	bad := append([]byte(nil), enc...)
	bad[headerLen+24] ^= 0x80
	if _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("sum flip: err %v, want ErrChecksum", err)
	}
}

// TestSnapDecodeValidation: structural bounds the decoder must enforce.
func TestSnapDecodeValidation(t *testing.T) {
	valid := NewSnapChunk(7, 64, 16, []byte("sixteen byte pay"))
	mutate := func(fn func(*Message)) []byte {
		m := valid
		m.Body = append([]byte(nil), valid.Body...)
		fn(&m)
		return m.Encode(nil)
	}
	cases := []struct {
		name string
		enc  []byte
		want error
	}{
		{"zero ref", mutate(func(m *Message) { m.Ref = 0 }), ErrZeroRef},
		{"zero total", mutate(func(m *Message) { m.Total = 0 }), ErrOversize},
		{"total beyond bound", mutate(func(m *Message) { m.Total = MaxSnapshot + 1 }), ErrOversize},
		{"chunk past total", mutate(func(m *Message) { m.Off = 60 }), ErrSnapBounds},
		{"empty chunk", mutate(func(m *Message) { m.Body = nil; m.Sum = 0 }), ErrSnapBounds},
		{"fresh req with offset", func() []byte {
			m := Message{Kind: KindSnapReq, Ref: 0, Off: 9}
			return m.Encode(nil)
		}(), ErrSnapBounds},
	}
	for _, c := range cases {
		if _, err := Decode(c.enc); !errors.Is(err, c.want) {
			t.Errorf("%s: err %v, want %v", c.name, err, c.want)
		}
	}
	// Truncation at every cut must reject without panicking.
	enc := valid.Encode(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("torn chunk accepted at cut %d", cut)
		}
	}
}

// TestSnapRef: deterministic, content-sensitive, never zero.
func TestSnapRef(t *testing.T) {
	a := SnapRef([]byte("container-a"))
	if a != SnapRef([]byte("container-a")) {
		t.Fatal("SnapRef not deterministic")
	}
	if a == SnapRef([]byte("container-b")) {
		t.Fatal("SnapRef ignores content")
	}
	if SnapRef(nil) == 0 {
		t.Fatal("SnapRef returned the reserved zero")
	}
}

// TestSnapKindFamilies: the accounting predicates classify the new kinds
// as snapshot traffic and nothing else.
func TestSnapKindFamilies(t *testing.T) {
	for _, k := range []Kind{KindSnapReq, KindSnapChunk} {
		if !k.IsSnap() || k.IsAck() || k.IsBeat() {
			t.Fatalf("%v misclassified", k)
		}
	}
	for _, k := range []Kind{KindMsg, KindAck, KindBeat, KindAckDelta, KindAckReq, KindBeatDelta, KindBeatReq} {
		if k.IsSnap() {
			t.Fatalf("%v claims to be snapshot traffic", k)
		}
	}
}
