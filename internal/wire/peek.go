package wire

import (
	"encoding/binary"

	"anonurb/internal/ident"
)

// FlowOf extracts the flow key of a broadcast tag: its Hi half. Nodes
// built with a flow-pinned tag source (ident.NewFlowSource) share one Hi
// across all their broadcasts, so the key groups a broadcaster's whole
// output; unpinned nodes degrade gracefully to one flow per message.
func FlowOf(t ident.Tag) uint64 { return t.Hi }

// PeekFlow scans the first encoded message in b without decoding it and
// returns its kind, its flow key, and its exact encoded size, so callers
// can split batch frames into per-message (or per-run) subslices with
// zero allocation and route each by flow. It is the admission stage's
// classifier (internal/admit): peeking costs a few length checks and two
// 8-byte loads where DecodePrefix would copy the body and label sets.
//
// The flow key is the broadcast Tag's Hi half for KindMsg and the whole
// ACK family (MSG retransmissions and every ACK form carry the original
// message's Tag, so a message and all traffic it induces share one key).
// Beat-family messages and the legacy KindBeat — detector traffic, not
// attributable to any broadcaster — report flow 0, which admission always
// admits.
//
// PeekFlow validates only what it needs to walk the frame: version,
// kind, and the declared lengths against len(b) and the codec bounds.
// A frame it accepts can still fail full DecodePrefix validation (zero
// tags, bad flags); that is the consumer's check. Errors are the codec's
// (ErrShort, ErrVersion, ErrKind, ErrOversize).
//
//urb:hotpath
func PeekFlow(b []byte) (kind Kind, flow uint64, size int, err error) {
	if len(b) < headerLen {
		return 0, 0, 0, ErrShort
	}
	if b[0] != codecVersion {
		return 0, 0, 0, ErrVersion
	}
	kind = Kind(b[1])
	o := headerLen
	// need reports whether n more bytes exist past offset o.
	need := func(n int) bool { return uint64(len(b)) >= uint64(o)+uint64(n) }
	// skipTags walks one count-prefixed tag list.
	skipTags := func() error {
		if !need(4) {
			return ErrShort
		}
		count := binary.BigEndian.Uint32(b[o:])
		if count > MaxLabels {
			return ErrOversize
		}
		o += 4
		if !need(int(count) * tagLen) {
			return ErrShort
		}
		o += int(count) * tagLen
		return nil
	}
	switch kind {
	case KindBeatReq:
		if !need(8) {
			return 0, 0, 0, ErrShort
		}
		return kind, 0, o + 8, nil
	case KindSnapReq:
		if !need(16) {
			return 0, 0, 0, ErrShort
		}
		return kind, 0, o + 16, nil
	case KindSnapChunk:
		// ref u64 | total u64 | off u64 | sum u32 | chunkLen u32 | chunk.
		// Snapshot transfers are membership traffic, not attributable to
		// any broadcaster: flow 0, which admission always admits.
		if !need(8 + 8 + 8 + 4 + 4) {
			return 0, 0, 0, ErrShort
		}
		chunkLen := binary.BigEndian.Uint32(b[o+28:])
		if chunkLen > MaxBody {
			return 0, 0, 0, ErrOversize
		}
		o += 8 + 8 + 8 + 4 + 4
		if !need(int(chunkLen)) {
			return 0, 0, 0, ErrShort
		}
		return kind, 0, o + int(chunkLen), nil
	case KindBeatDelta:
		if !need(1 + 4 + 8) {
			return 0, 0, 0, ErrShort
		}
		flags := b[o]
		o += 1 + 4 + 8
		if flags&BeatFlagSnapshot != 0 {
			if err := skipTags(); err != nil {
				return 0, 0, 0, err
			}
		}
		if flags&BeatFlagDelta != 0 {
			if err := skipTags(); err != nil {
				return 0, 0, 0, err
			}
			if err := skipTags(); err != nil {
				return 0, 0, 0, err
			}
		}
		return kind, 0, o, nil
	case KindMsg, KindAck, KindBeat, KindAckDelta, KindAckReq:
	default:
		return 0, 0, 0, ErrKind
	}
	if !need(4) {
		return 0, 0, 0, ErrShort
	}
	bodyLen := binary.BigEndian.Uint32(b[o:])
	if bodyLen > MaxBody {
		return 0, 0, 0, ErrOversize
	}
	o += 4
	if !need(int(bodyLen) + tagLen) {
		return 0, 0, 0, ErrShort
	}
	o += int(bodyLen)
	hi := binary.BigEndian.Uint64(b[o:])
	o += tagLen
	if kind != KindBeat {
		// KindBeat's Tag is a detector label, not a broadcast tag; its
		// Hi half is no broadcaster's flow key.
		flow = hi
	}
	//urbvet:partial beat-family kinds returned from the first switch; only tag-prefixed kinds reach here
	switch kind {
	case KindMsg, KindBeat:
		return kind, flow, o, nil
	}
	// ACK family: acker tag next.
	if !need(tagLen) {
		return 0, 0, 0, ErrShort
	}
	o += tagLen
	//urbvet:partial only the three ACK-family kinds fall through to here
	switch kind {
	case KindAckReq:
		return kind, flow, o, nil
	case KindAckDelta:
		if !need(8 + 1) {
			return 0, 0, 0, ErrShort
		}
		o += 8 + 1
		if err := skipTags(); err != nil {
			return 0, 0, 0, err
		}
		if err := skipTags(); err != nil {
			return 0, 0, 0, err
		}
		return kind, flow, o, nil
	default: // KindAck
		if err := skipTags(); err != nil {
			return 0, 0, 0, err
		}
		return kind, flow, o, nil
	}
}
