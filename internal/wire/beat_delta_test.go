package wire

import (
	"encoding/binary"
	"errors"
	"testing"

	"anonurb/internal/ident"
)

func TestBeatRefNonZeroAndStable(t *testing.T) {
	a := ident.Tag{Hi: 1, Lo: 2}
	if BeatRef(a) == 0 {
		t.Fatal("BeatRef returned the reserved zero value")
	}
	if BeatRef(a) != BeatRef(a) {
		t.Fatal("BeatRef is not a pure function of the label")
	}
	if BeatRef(a) == BeatRef(ident.Tag{Hi: 2, Lo: 1}) {
		t.Fatal("trivially distinct labels collided")
	}
}

func TestBeatDeltaRoundTrip(t *testing.T) {
	ref := BeatRef(ident.Tag{Hi: 7, Lo: 7})
	cases := []Message{
		NewBeatRefresh(ref, 1),
		NewBeatRefresh(ref, 1<<32-1),
		NewBeatSnapshot(ref, 1, []ident.Tag{{Hi: 1, Lo: 1}, {Hi: 2, Lo: 2}}),
		NewBeatSnapshot(ref, 3, nil),
		NewBeatChange(ref, 2, []ident.Tag{{Hi: 3, Lo: 3}}, []ident.Tag{{Hi: 1, Lo: 1}}),
		// Overlapping add/remove sets are structurally legal on the wire
		// (receivers resolve them deterministically).
		NewBeatChange(ref, 4, []ident.Tag{{Hi: 5, Lo: 5}}, []ident.Tag{{Hi: 5, Lo: 5}}),
		NewBeatChange(ref, 5, nil, nil),
		NewBeatResync(ref),
	}
	for i, m := range cases {
		enc := m.Encode(nil)
		if len(enc) != m.EncodedSize() {
			t.Fatalf("case %d: EncodedSize %d != encoded %d", i, m.EncodedSize(), len(enc))
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !got.Equal(m) {
			t.Fatalf("case %d: round-trip mismatch:\n got %v\nwant %v", i, got, m)
		}
	}
}

func TestBeatRefreshIsSmallerThanLegacyBeat(t *testing.T) {
	label := ident.Tag{Hi: 9, Lo: 9}
	legacy := NewBeat(label).EncodedSize()
	refresh := NewBeatRefresh(BeatRef(label), 1).EncodedSize()
	req := NewBeatResync(BeatRef(label)).EncodedSize()
	if refresh >= legacy {
		t.Fatalf("refresh beat (%dB) not smaller than legacy beat (%dB)", refresh, legacy)
	}
	if req >= legacy {
		t.Fatalf("beat resync (%dB) not smaller than legacy beat (%dB)", req, legacy)
	}
}

func TestBeatDeltaRejectsMalformed(t *testing.T) {
	ref := BeatRef(ident.Tag{Hi: 7, Lo: 7})
	check := func(name string, b []byte, want error) {
		t.Helper()
		if _, err := Decode(b); !errors.Is(err, want) {
			t.Fatalf("%s: err=%v, want %v", name, err, want)
		}
	}
	// Zero epoch.
	m := NewBeatRefresh(ref, 1)
	b := m.Encode(nil)
	binary.BigEndian.PutUint32(b[3:7], 0)
	check("zero epoch", b, ErrZeroEpoch)
	// Zero ref.
	b = NewBeatRefresh(ref, 1).Encode(nil)
	binary.BigEndian.PutUint64(b[7:15], 0)
	check("zero ref", b, ErrZeroRef)
	// Zero ref on a resync request.
	b = NewBeatResync(ref).Encode(nil)
	binary.BigEndian.PutUint64(b[2:10], 0)
	check("zero req ref", b, ErrZeroRef)
	// Unknown flag bits, and snapshot+delta together.
	b = NewBeatRefresh(ref, 1).Encode(nil)
	b[2] = 1 << 4
	check("unknown flags", b, ErrBadFlags)
	b = NewBeatSnapshot(ref, 1, nil).Encode(nil)
	b[2] = BeatFlagSnapshot | BeatFlagDelta
	check("snapshot+delta flags", b, ErrBadFlags)
	// Truncations at every boundary of a change delta.
	full := NewBeatChange(ref, 2, []ident.Tag{{Hi: 1, Lo: 1}}, []ident.Tag{{Hi: 2, Lo: 2}}).Encode(nil)
	for cut := 1; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Oversized label count.
	b = NewBeatSnapshot(ref, 1, nil).Encode(nil)
	binary.BigEndian.PutUint32(b[15:19], MaxLabels+1)
	check("oversized count", b, ErrOversize)
}

func TestBeatDeltaInBatches(t *testing.T) {
	ref := BeatRef(ident.Tag{Hi: 7, Lo: 7})
	msgs := []Message{
		NewMsg(MsgID{Tag: ident.Tag{Hi: 1, Lo: 1}, Body: "x"}),
		NewBeatSnapshot(ref, 1, []ident.Tag{{Hi: 7, Lo: 7}}),
		NewBeatRefresh(ref, 1),
		NewBeatResync(ref),
		NewBeat(ident.Tag{Hi: 7, Lo: 7}),
	}
	var frame []byte
	for _, m := range msgs {
		frame = m.Encode(frame)
	}
	got, err := DecodeBatch(frame)
	if err != nil {
		t.Fatalf("batched beat deltas do not decode: %v", err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !got[i].Equal(msgs[i]) {
			t.Fatalf("message %d mangled in batch", i)
		}
	}
}
