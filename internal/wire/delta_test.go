package wire

import (
	"errors"
	"testing"

	"anonurb/internal/ident"
)

func deltaID() MsgID {
	return MsgID{Tag: ident.Tag{Hi: 0xaa, Lo: 0xbb}, Body: "payload"}
}

func TestAckDeltaRoundTrip(t *testing.T) {
	cases := []Message{
		NewAckDelta(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 1, nil, nil),
		NewAckDelta(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 7,
			[]ident.Tag{{Hi: 3, Lo: 1}, {Hi: 3, Lo: 2}}, []ident.Tag{{Hi: 4, Lo: 1}}),
		NewAckDelta(deltaID(), ident.Tag{Hi: 1, Lo: 2}, ^uint64(0),
			nil, []ident.Tag{{Hi: 4, Lo: 1}}),
		NewAckSnapshot(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 3,
			[]ident.Tag{{Hi: 5, Lo: 1}, {Hi: 5, Lo: 2}, {Hi: 5, Lo: 3}}),
		NewAckSnapshot(MsgID{Tag: ident.Tag{Hi: 9, Lo: 9}, Body: ""}, ident.Tag{Hi: 1, Lo: 2}, 1, nil),
		NewAckResync(deltaID(), ident.Tag{Hi: 6, Lo: 6}),
	}
	for i, m := range cases {
		enc := m.Encode(nil)
		if len(enc) != m.EncodedSize() {
			t.Fatalf("case %d: EncodedSize %d != encoded %d", i, m.EncodedSize(), len(enc))
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !got.Equal(m) {
			t.Fatalf("case %d: round-trip mismatch:\n got %v\nwant %v", i, got, m)
		}
	}
}

func TestAckDeltaConstructorsCopySlices(t *testing.T) {
	adds := []ident.Tag{{Hi: 1, Lo: 1}}
	dels := []ident.Tag{{Hi: 2, Lo: 2}}
	m := NewAckDelta(deltaID(), ident.Tag{Hi: 3, Lo: 3}, 2, adds, dels)
	adds[0] = ident.Tag{Hi: 9, Lo: 9}
	dels[0] = ident.Tag{Hi: 9, Lo: 9}
	if m.Labels[0] != (ident.Tag{Hi: 1, Lo: 1}) || m.DelLabels[0] != (ident.Tag{Hi: 2, Lo: 2}) {
		t.Fatal("constructor aliased caller slices")
	}
	labels := []ident.Tag{{Hi: 4, Lo: 4}}
	s := NewAckSnapshot(deltaID(), ident.Tag{Hi: 3, Lo: 3}, 1, labels)
	labels[0] = ident.Tag{Hi: 9, Lo: 9}
	if s.Labels[0] != (ident.Tag{Hi: 4, Lo: 4}) {
		t.Fatal("snapshot constructor aliased caller slice")
	}
}

func TestAckDeltaRejectsZeroEpoch(t *testing.T) {
	m := NewAckDelta(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 1, nil, nil)
	m.Epoch = 0
	if _, err := Decode(m.Encode(nil)); !errors.Is(err, ErrZeroEpoch) {
		t.Fatalf("want ErrZeroEpoch, got %v", err)
	}
}

func TestAckDeltaRejectsUnknownFlags(t *testing.T) {
	m := NewAckDelta(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 1, nil, nil)
	m.Flags = 0x80
	if _, err := Decode(m.Encode(nil)); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("want ErrBadFlags, got %v", err)
	}
}

func TestAckDeltaRejectsSnapshotWithRemovals(t *testing.T) {
	m := NewAckSnapshot(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 1, []ident.Tag{{Hi: 3, Lo: 3}})
	m.DelLabels = []ident.Tag{{Hi: 4, Lo: 4}}
	if _, err := Decode(m.Encode(nil)); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("want ErrBadFlags, got %v", err)
	}
}

func TestAckDeltaRejectsZeroAckTag(t *testing.T) {
	m := NewAckDelta(deltaID(), ident.Tag{}, 1, nil, nil)
	if _, err := Decode(m.Encode(nil)); !errors.Is(err, ErrZeroAckTag) {
		t.Fatalf("want ErrZeroAckTag, got %v", err)
	}
	r := NewAckResync(deltaID(), ident.Tag{})
	if _, err := Decode(r.Encode(nil)); !errors.Is(err, ErrZeroAckTag) {
		t.Fatalf("resync: want ErrZeroAckTag, got %v", err)
	}
}

func TestAckDeltaTruncationsRejected(t *testing.T) {
	m := NewAckDelta(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 5,
		[]ident.Tag{{Hi: 3, Lo: 1}}, []ident.Tag{{Hi: 4, Lo: 1}, {Hi: 4, Lo: 2}})
	enc := m.Encode(nil)
	for cut := 1; cut < len(enc); cut++ {
		if _, err := Decode(enc[:len(enc)-cut]); err == nil {
			t.Fatalf("truncation of %d bytes accepted", cut)
		}
	}
}

func TestAckDeltaOversizedLabelCountRejected(t *testing.T) {
	m := NewAckDelta(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 1, nil, nil)
	enc := m.Encode(nil)
	// The add-count field sits right after body|tag|ackTag|epoch|flags.
	off := headerLen + 4 + len(m.Body) + tagLen + tagLen + 8 + 1
	enc[off] = 0xff // count = 0xff000000 > MaxLabels
	if _, err := Decode(enc); !errors.Is(err, ErrOversize) {
		t.Fatalf("want ErrOversize, got %v", err)
	}
}

// TestAckDeltaOverlappingSetsDecode: the decoder is permissive about a
// label appearing in both the add and the remove list (the algorithm
// layer defines the fold order); it must round-trip canonically.
func TestAckDeltaOverlappingSetsDecode(t *testing.T) {
	shared := ident.Tag{Hi: 7, Lo: 7}
	m := NewAckDelta(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 2,
		[]ident.Tag{shared, {Hi: 8, Lo: 8}}, []ident.Tag{shared})
	got, err := Decode(m.Encode(nil))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.Equal(m) {
		t.Fatal("overlapping delta mangled in round-trip")
	}
}

func TestAckDeltaInsideBatch(t *testing.T) {
	msgs := []Message{
		NewMsg(deltaID()),
		NewAckSnapshot(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 1, []ident.Tag{{Hi: 5, Lo: 5}}),
		NewAckDelta(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 2, []ident.Tag{{Hi: 6, Lo: 6}}, nil),
		NewAckResync(deltaID(), ident.Tag{Hi: 1, Lo: 2}),
		NewLabeledAck(deltaID(), ident.Tag{Hi: 2, Lo: 2}, []ident.Tag{{Hi: 5, Lo: 5}}),
	}
	frames := EncodeBatch(msgs, 0)
	if len(frames) != 1 {
		t.Fatalf("unbudgeted batch split into %d frames", len(frames))
	}
	got, err := DecodeBatch(frames[0])
	if err != nil {
		t.Fatalf("batch decode: %v", err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("batch returned %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !got[i].Equal(msgs[i]) {
			t.Fatalf("batch member %d mangled", i)
		}
	}
}

// TestAckDeltaSizeAdvantage pins the point of the encoding: an unchanged
// re-ACK and a small delta are an order of magnitude smaller than the
// full-set ACK they replace at n=100.
func TestAckDeltaSizeAdvantage(t *testing.T) {
	labels := make([]ident.Tag, 100)
	for i := range labels {
		labels[i] = ident.Tag{Hi: uint64(i) + 1, Lo: 1}
	}
	full := NewLabeledAck(deltaID(), ident.Tag{Hi: 1, Lo: 2}, labels)
	empty := NewAckDelta(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 5, nil, nil)
	small := NewAckDelta(deltaID(), ident.Tag{Hi: 1, Lo: 2}, 6, labels[:1], labels[1:2])
	if empty.EncodedSize()*10 >= full.EncodedSize() {
		t.Fatalf("empty delta %dB not ≫ smaller than full ACK %dB", empty.EncodedSize(), full.EncodedSize())
	}
	if small.EncodedSize()*10 >= full.EncodedSize() {
		t.Fatalf("±1 delta %dB not ≫ smaller than full ACK %dB", small.EncodedSize(), full.EncodedSize())
	}
}
