package wire

import (
	"strings"
	"testing"
	"testing/quick"

	"anonurb/internal/ident"
	"anonurb/internal/xrand"
)

func tag(h, l uint64) ident.Tag { return ident.Tag{Hi: h, Lo: l} }

func TestKindString(t *testing.T) {
	if KindMsg.String() != "MSG" || KindAck.String() != "ACK" {
		t.Fatal("kind strings")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
}

func TestRoundTripMsg(t *testing.T) {
	m := NewMsg(MsgID{Tag: tag(3, 4), Body: "hello"})
	enc := m.Encode(nil)
	if len(enc) != m.EncodedSize() {
		t.Fatalf("EncodedSize %d != len %d", m.EncodedSize(), len(enc))
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round trip mismatch: %v vs %v", got, m)
	}
}

func TestRoundTripAck(t *testing.T) {
	m := NewAck(MsgID{Tag: tag(1, 2), Body: "payload"}, tag(9, 9))
	enc := m.Encode(nil)
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round trip mismatch")
	}
	if got.Labels != nil {
		t.Fatal("algorithm-1 ACK must decode with nil labels")
	}
}

func TestRoundTripLabeledAck(t *testing.T) {
	labels := []ident.Tag{tag(5, 5), tag(6, 6), tag(7, 7)}
	m := NewLabeledAck(MsgID{Tag: tag(1, 1), Body: "x"}, tag(2, 2), labels)
	enc := m.Encode(nil)
	if len(enc) != m.EncodedSize() {
		t.Fatalf("EncodedSize mismatch")
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip mismatch")
	}
	// NewLabeledAck must copy the label slice.
	labels[0] = tag(99, 99)
	if m.Labels[0] == labels[0] {
		t.Fatal("NewLabeledAck did not copy labels")
	}
}

func TestRoundTripEmptyBodyAndLabels(t *testing.T) {
	m := NewLabeledAck(MsgID{Tag: tag(1, 1), Body: ""}, tag(2, 2), nil)
	got, err := Decode(m.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("empty round trip mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	m := NewMsg(MsgID{Tag: tag(3, 4), Body: "hello"})
	enc := m.Encode(nil)

	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrShort},
		{"truncated header", enc[:3], ErrShort},
		{"truncated body", enc[:8], ErrShort},
		{"truncated tag", enc[:len(enc)-1], ErrShort},
		{"bad version", append([]byte{99}, enc[1:]...), ErrVersion},
		{"bad kind", append([]byte{enc[0], 77}, enc[2:]...), ErrKind},
		{"trailing", append(append([]byte(nil), enc...), 0), ErrTrailing},
	}
	for _, c := range cases {
		if _, err := Decode(c.buf); err != c.want {
			t.Errorf("%s: err=%v, want %v", c.name, err, c.want)
		}
	}
}

func TestDecodeRejectsZeroTags(t *testing.T) {
	m := Message{Kind: KindMsg, Body: []byte("b")} // zero Tag
	if _, err := Decode(m.Encode(nil)); err != ErrZeroTag {
		t.Fatalf("err=%v, want ErrZeroTag", err)
	}
	a := Message{Kind: KindAck, Body: []byte("b"), Tag: tag(1, 1)} // zero AckTag
	if _, err := Decode(a.Encode(nil)); err != ErrZeroAckTag {
		t.Fatalf("err=%v, want ErrZeroAckTag", err)
	}
}

func TestDecodeOversizeBody(t *testing.T) {
	// Forge a header claiming a gigantic body.
	b := []byte{codecVersion, byte(KindMsg), 0xff, 0xff, 0xff, 0xff}
	if _, err := Decode(b); err != ErrOversize {
		t.Fatalf("err=%v, want ErrOversize", err)
	}
}

func TestDecodeOversizeLabels(t *testing.T) {
	m := NewAck(MsgID{Tag: tag(1, 1), Body: ""}, tag(2, 2))
	enc := m.Encode(nil)
	// The label count is the last 4 bytes for an empty-label ACK.
	enc[len(enc)-4] = 0xff
	enc[len(enc)-3] = 0xff
	enc[len(enc)-2] = 0xff
	enc[len(enc)-1] = 0xff
	if _, err := Decode(enc); err != ErrOversize {
		t.Fatalf("err=%v, want ErrOversize", err)
	}
}

func TestDecodePrefixStream(t *testing.T) {
	a := NewMsg(MsgID{Tag: tag(1, 1), Body: "one"})
	b := NewAck(MsgID{Tag: tag(2, 2), Body: "two"}, tag(3, 3))
	c := NewLabeledAck(MsgID{Tag: tag(4, 4), Body: "three"}, tag(5, 5), []ident.Tag{tag(6, 6)})
	stream := a.Encode(nil)
	stream = b.Encode(stream)
	stream = c.Encode(stream)

	want := []Message{a, b, c}
	rest := stream
	for i, w := range want {
		var got Message
		var err error
		got, rest, err = DecodePrefix(rest)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !got.Equal(w) {
			t.Fatalf("msg %d mismatch", i)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("stream has %d leftover bytes", len(rest))
	}
}

func TestRoundTripQuick(t *testing.T) {
	rng := xrand.New(1234)
	f := func(body string, h1, l1, h2, l2 uint64, labelCount uint8, isAck bool) bool {
		if len(body) > 4096 {
			body = body[:4096]
		}
		tg := tag(h1|1, l1) // avoid zero tag
		var m Message
		if isAck {
			labels := make([]ident.Tag, labelCount%16)
			for i := range labels {
				labels[i] = tag(rng.Uint64()|1, rng.Uint64())
			}
			m = NewLabeledAck(MsgID{Tag: tg, Body: body}, tag(h2|1, l2), labels)
		} else {
			m = NewMsg(MsgID{Tag: tg, Body: body})
		}
		enc := m.Encode(nil)
		if len(enc) != m.EncodedSize() {
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		return got.Equal(m) && got.ID() == m.ID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsOnCorruptInput(t *testing.T) {
	// Fuzz-ish robustness: flip bytes of valid encodings and random blobs.
	rng := xrand.New(777)
	base := NewLabeledAck(MsgID{Tag: tag(1, 2), Body: "corrupt-me"}, tag(3, 4),
		[]ident.Tag{tag(5, 6), tag(7, 8)}).Encode(nil)
	for trial := 0; trial < 5000; trial++ {
		buf := append([]byte(nil), base...)
		flips := 1 + rng.Intn(4)
		for i := 0; i < flips; i++ {
			buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
		}
		_, _ = Decode(buf) // must not panic
	}
	for trial := 0; trial < 2000; trial++ {
		buf := make([]byte, rng.Intn(200))
		for i := range buf {
			buf[i] = byte(rng.Uint64())
		}
		_, _ = Decode(buf) // must not panic
	}
}

func TestMsgIDString(t *testing.T) {
	long := MsgID{Tag: tag(1, 1), Body: strings.Repeat("z", 50)}
	s := long.String()
	if len(s) > 60 {
		t.Fatalf("MsgID.String did not truncate: %q", s)
	}
}

func TestMessageString(t *testing.T) {
	m := NewMsg(MsgID{Tag: tag(1, 1), Body: "b"})
	if !strings.HasPrefix(m.String(), "MSG(") {
		t.Fatalf("%q", m.String())
	}
	a := NewLabeledAck(MsgID{Tag: tag(1, 1), Body: "b"}, tag(2, 2), []ident.Tag{tag(3, 3)})
	if !strings.Contains(a.String(), "labels=1") {
		t.Fatalf("%q", a.String())
	}
	plain := NewAck(MsgID{Tag: tag(1, 1), Body: "b"}, tag(2, 2))
	if strings.Contains(plain.String(), "labels") {
		t.Fatalf("%q", plain.String())
	}
}

func TestEqualDiscriminates(t *testing.T) {
	base := NewLabeledAck(MsgID{Tag: tag(1, 1), Body: "b"}, tag(2, 2), []ident.Tag{tag(3, 3)})
	variants := []Message{
		NewMsg(MsgID{Tag: tag(1, 1), Body: "b"}),
		NewLabeledAck(MsgID{Tag: tag(1, 1), Body: "c"}, tag(2, 2), []ident.Tag{tag(3, 3)}),
		NewLabeledAck(MsgID{Tag: tag(1, 2), Body: "b"}, tag(2, 2), []ident.Tag{tag(3, 3)}),
		NewLabeledAck(MsgID{Tag: tag(1, 1), Body: "b"}, tag(2, 3), []ident.Tag{tag(3, 3)}),
		NewLabeledAck(MsgID{Tag: tag(1, 1), Body: "b"}, tag(2, 2), []ident.Tag{tag(3, 4)}),
		NewLabeledAck(MsgID{Tag: tag(1, 1), Body: "b"}, tag(2, 2), nil),
	}
	for i, v := range variants {
		if base.Equal(v) {
			t.Fatalf("variant %d should differ", i)
		}
	}
	if !base.Equal(base) {
		t.Fatal("self equality")
	}
}
