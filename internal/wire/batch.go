package wire

// Batch framing: a batch frame is nothing but the concatenation of
// canonical single-message encodings — there is no extra header, length
// prefix or checksum, so batching adds exactly zero bytes of overhead to
// the wire and any batch frame decodes with DecodePrefix one message at
// a time. EncodeBatch/DecodeBatch are the packing helpers the node
// runtime and the benchmarks use; EncodeCache removes the per-tick
// re-encoding cost of Task-1 retransmission (the same MSG frames are
// encoded again on every tick, forever, in steady state).

import (
	"sync/atomic"

	"anonurb/internal/ident"
)

// DefaultEncodeCacheSize is the entry bound EncodeCache uses when built
// with a non-positive capacity. Entries are one encoded MSG frame each
// (tens of bytes for typical payloads), so the default is cheap.
const DefaultEncodeCacheSize = 1024

// EncodeBatch packs the canonical encodings of msgs into as few
// concatenated batch frames as possible, none exceeding budget bytes
// (budget <= 0 means no bound: everything lands in one frame). Messages
// are packed greedily in order; a message whose encoding alone exceeds
// the budget is emitted as its own (oversized) frame — the caller
// decides whether its transport can carry it, exactly as for a single
// encoded message today.
func EncodeBatch(msgs []Message, budget int) [][]byte {
	if len(msgs) == 0 {
		return nil
	}
	var frames [][]byte
	var cur []byte
	for _, m := range msgs {
		if SplitsBatch(len(cur), m, budget) {
			frames = append(frames, cur)
			cur = nil
		}
		cur = m.Encode(cur)
	}
	if len(cur) > 0 {
		frames = append(frames, cur)
	}
	return frames
}

// SplitsBatch is the greedy packing rule shared by EncodeBatch and
// batching senders (the node runtime): appending m to a batch frame
// currently curLen bytes long must start a new frame iff the frame is
// non-empty and would exceed budget (<= 0: no bound). A message whose
// encoding alone exceeds the budget therefore still travels, alone.
func SplitsBatch(curLen int, m Message, budget int) bool {
	return budget > 0 && curLen > 0 && curLen+m.EncodedSize() > budget
}

// DecodeBatch parses a batch frame — one or more concatenated canonical
// message encodings — into its messages. It is strict: an empty frame,
// a corrupt message anywhere in the stream, or trailing garbage rejects
// the whole batch (receivers that want the valid prefix of a damaged
// frame use DecodePrefix directly, as the node runtime does).
func DecodeBatch(frame []byte) ([]Message, error) {
	if len(frame) == 0 {
		return nil, ErrShort
	}
	var msgs []Message
	rest := frame
	for len(rest) > 0 {
		m, next, err := DecodePrefix(rest)
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, m)
		rest = next
	}
	return msgs, nil
}

// EncodeCache memoises canonical MSG encodings by MsgID. MSG frames are
// a pure function of the message identity and Task 1 retransmits the
// same identities tick after tick, so a steady-state tick can append
// cached bytes instead of re-encoding every body. ACK frames carry the
// acker's current label view (they change between sends) and BEAT
// frames are two tags — neither is cached.
//
// Delta ACKs (KindAckDelta) are position-dependent — the same identity
// encodes differently at every epoch — so, like full labeled ACKs, they
// are never cached.
//
// The cache is bounded: once capacity entries are held, the oldest entry
// is evicted first (retired messages age out on their own). It is not
// safe for concurrent use — every node owns its own cache — except for
// Stats, whose counters are atomic so monitors may poll them while the
// owner encodes.
type EncodeCache struct {
	capacity int
	// entries is keyed tag-first, then body: indexing the inner map
	// with string(m.Body) lets the compiler elide the string conversion
	// on lookups, so a cache hit — the per-tick steady-state path —
	// allocates nothing.
	entries map[ident.Tag]map[string][]byte
	count   int
	// order is a FIFO of cached ids; head indexes the oldest live entry
	// (the slice is compacted when the dead prefix grows large). Every
	// slot is live when popped: entries are unique and removed only by
	// eviction, which consumes the slot.
	order []MsgID
	head  int

	hits, misses atomic.Uint64
}

// NewEncodeCache builds a cache bounded to capacity entries
// (DefaultEncodeCacheSize if capacity <= 0).
func NewEncodeCache(capacity int) *EncodeCache {
	if capacity <= 0 {
		capacity = DefaultEncodeCacheSize
	}
	return &EncodeCache{
		capacity: capacity,
		entries:  make(map[ident.Tag]map[string][]byte, capacity),
	}
}

// AppendEncoded appends m's canonical encoding to dst and returns the
// extended slice, serving MSG encodings from the cache when possible.
// The cached bytes are copied into dst; the cache never aliases caller
// memory.
func (c *EncodeCache) AppendEncoded(dst []byte, m Message) []byte {
	if m.Kind != KindMsg {
		return m.Encode(dst)
	}
	if enc, ok := c.entries[m.Tag][string(m.Body)]; ok {
		c.hits.Add(1)
		return append(dst, enc...)
	}
	c.misses.Add(1)
	enc := m.Encode(make([]byte, 0, m.EncodedSize()))
	if c.count >= c.capacity {
		c.evictOldest()
	}
	byBody, ok := c.entries[m.Tag]
	if !ok {
		byBody = make(map[string][]byte, 1)
		c.entries[m.Tag] = byBody
	}
	byBody[string(m.Body)] = enc
	c.count++
	c.order = append(c.order, m.ID())
	return append(dst, enc...)
}

// evictOldest removes the oldest cached entry.
func (c *EncodeCache) evictOldest() {
	if c.head >= len(c.order) {
		return
	}
	id := c.order[c.head]
	c.head++
	if byBody, ok := c.entries[id.Tag]; ok {
		if _, ok := byBody[id.Body]; ok {
			delete(byBody, id.Body)
			c.count--
			if len(byBody) == 0 {
				delete(c.entries, id.Tag)
			}
		}
	}
	// Compact the consumed prefix once it dominates the slice.
	if c.head > len(c.order)/2 && c.head > 64 {
		c.order = append(c.order[:0], c.order[c.head:]...)
		c.head = 0
	}
}

// Len reports the number of cached encodings.
func (c *EncodeCache) Len() int { return c.count }

// Stats reports (cache hits, cache misses) so far. Safe to call
// concurrently with the owner's AppendEncoded.
func (c *EncodeCache) Stats() (hits, misses uint64) { return c.hits.Load(), c.misses.Load() }
